GO ?= go
# PR number stamped into the benchmark snapshot file name; bump (or
# override: `make bench-snapshot PR=5`) each PR so trajectories of all
# PRs stay side by side.
PR ?= 10

# Pipelines (bench-snapshot) must fail when any stage fails, not just
# the last one, or a broken benchmark run would silently overwrite the
# snapshot with a partial one.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build vet test test-race soak chaos bot-smoke crash-matrix bench bench-smoke bench-worldfile bench-snapshot bench-compare examples-smoke

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detector pass over the concurrency-heavy packages (the sharded
# pipeline, parallel substrate build and artefact fan-out all have
# dedicated concurrent tests).
test-race:
	$(GO) test -race ./...

# Churn soak: 1000 randomized join/leave/re-join deltas through one
# persistent engine under the race detector, with the incremental
# report checked byte-for-byte against a cold rebuild every 100
# deltas. Env-gated so the tier-1 suite stays fast.
soak:
	RPEER_SOAK=1 $(GO) test -race -run 'TestChurnSoak' ./pkg/rpi -count=1 -v

# Chaos harness for the serving plane: mixed readers, streamers,
# stalled consumers, appliers and deadline storms against the
# supervised HTTP front end while engine panics and WAL append
# failures are injected mid-apply; asserts the liveness SLOs (reads
# never fail hard, recovery within bound, recovered state
# byte-identical to a cold rebuild, sequence continuity). Runs under
# the race detector. Short deterministic mode by default (2 fault
# cycles); set RPEER_CHAOS=1 for the long soak (8 cycles).
chaos:
	$(GO) run -race ./cmd/rpi-chaos

# Fleet load generator smoke: an in-process 4-tenant host driven by
# mixed readers/appliers/streamers for a few seconds under the race
# detector, then the per-tenant byte-identity check (host bytes ==
# single-engine bytes over the same inputs). Fails on any protocol
# violation (a status outside the allowed set) or identity mismatch.
bot-smoke:
	$(GO) run -race ./cmd/rpi-bot -tenants 4 -duration 3s

# The fault-injection matrix: kill the simulated machine at every
# filesystem operation across an engine lifetime and prove recovery
# lands on the acknowledged prefix with byte-identical reports, plus
# the torn-tail / interior-corruption / replay suites around it.
crash-matrix:
	$(GO) test -run 'TestCrashRecovery|TestTornTail|TestInteriorCorruption|TestOpenCloseReopen|TestOpenBaseMismatch|TestReplayToAnyIndex|TestBrokenPersistence|TestCheckpointRotates' ./pkg/rpi ./internal/wal ./internal/snapshot -count=1

# Full benchmark sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem

# One-iteration smoke of the headline benchmarks (CI): the pipeline,
# the substrate build, the engine apply path, the HTTP front end and
# the 1x scaling rung all execute once, so a benchmark that rots (or
# an API drift that only benchmarks exercise) fails the build instead
# of surfacing at the next snapshot. The heavy scaling rungs (4x+)
# stay out — they build multi-gigabyte worlds.
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFullPipeline$$|BenchmarkContextBuild|BenchmarkEngineApply/1x|BenchmarkServeHTTP|BenchmarkServeOverload|BenchmarkHostServe|BenchmarkScaleWorld/1x|BenchmarkRecovery/1x' -benchmem -benchtime=1x

# Compare a fresh run of the fast headline benchmarks against a
# committed baseline snapshot and fail on >20% ns/op regression
# (override: THRESHOLD=0.5; CI uses a loose threshold because runner
# hardware differs from the snapshot machine). The fresh run covers
# the same cheap set as bench-smoke, at 3 iterations to damp noise.
BASE ?= BENCH_PR$(PR).json
THRESHOLD ?= 0.20
bench-compare:
	tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) run ./cmd/rpi-benchsnap \
		-bench 'BenchmarkFullPipeline$$|BenchmarkContextBuild$$|BenchmarkEngineApply/1x|BenchmarkServeHTTP|BenchmarkScaleWorld/1x$$|BenchmarkScaleWorld/16x-worldfile' \
		-benchtime 3x -o $$tmp; \
	$(GO) run ./cmd/rpi-benchdiff -base $(BASE) -new $$tmp -threshold $(THRESHOLD)

# The world-interchange rungs at the 16x scale: binary world-file load,
# cold-to-serving from the file, and the pipeline over the loaded
# world. The 16x .rpw is generated once into .benchcache (or
# $$RPI_WORLD_CACHE) and reused across runs — CI restores it from the
# actions cache so the rungs measure loading, not generation.
bench-worldfile:
	$(GO) test -run '^$$' -timeout 30m -bench 'BenchmarkScaleWorld/16x-worldfile' -benchmem -benchtime=1x

# Build and run every example binary once (the public-API canaries;
# CI runs this alongside the test jobs).
examples-smoke:
	$(GO) build ./examples/...
	set -e; for d in examples/*/; do echo "== $$d"; $(GO) run "./$$d" > /dev/null; done

# Snapshot the perf-critical benchmarks to BENCH_PR$(PR).json so
# future PRs have a trajectory to compare against. The scaling suite
# runs at one iteration (the 16x world alone costs tens of seconds).
# All go-test stages land in a temp file first and the snapshot is
# written only if every stage succeeded — a mid-run failure must not
# leave a plausible-looking partial snapshot behind (the -e shell
# aborts on the failing stage; the EXIT trap cleans the temp file up).
# The fleet SLO rows (per-tenant p50/p99/shed% from the rpi-bot load
# run) merge into the same file last.
bench-snapshot:
	tmp=$$(mktemp); trap 'rm -f "$$tmp"' EXIT; \
	$(GO) test -run '^$$' -timeout 30m -bench 'BenchmarkFullPipeline$$|BenchmarkFullPipelineCold|BenchmarkContextBuild|BenchmarkAblation|BenchmarkAllArtefacts|BenchmarkParallelPingCampaign|BenchmarkEngineApply|BenchmarkServeHTTP|BenchmarkServeOverload|BenchmarkHostServe' \
		-benchmem -benchtime=3x > $$tmp; \
	$(GO) test -run '^$$' -timeout 120m -bench 'BenchmarkScaleWorld|BenchmarkRecovery' -benchmem -benchtime=1x >> $$tmp; \
	$(GO) run ./cmd/rpi-benchsnap -o BENCH_PR$(PR).json < $$tmp; \
	$(GO) run ./cmd/rpi-bot -tenants 4 -duration 5s -o BENCH_PR$(PR).json -merge
