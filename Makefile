GO ?= go

# Pipelines (bench-snapshot) must fail when any stage fails, not just
# the last one, or a broken benchmark run would silently overwrite the
# snapshot with a partial one.
SHELL := /bin/bash
.SHELLFLAGS := -o pipefail -ec

.PHONY: all build vet test bench bench-smoke bench-snapshot

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full benchmark sweep (slow).
bench:
	$(GO) test -run '^$$' -bench . -benchmem

# One-iteration smoke of the headline pipeline benchmark (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench 'BenchmarkFullPipeline$$' -benchmem -benchtime=1x

# Snapshot the perf-critical benchmarks to BENCH_PR1.json so future
# PRs have a trajectory to compare against.
bench-snapshot:
	$(GO) test -run '^$$' -bench 'BenchmarkFullPipeline$$|BenchmarkFullPipelineCold|BenchmarkContextBuild|BenchmarkAblation|BenchmarkAllArtefacts|BenchmarkParallelPingCampaign' \
		-benchmem -benchtime=3x | $(GO) run ./cmd/rpi-benchsnap -o BENCH_PR1.json
