package rpeer

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"testing"

	"rpeer/internal/netsim"
	"rpeer/pkg/rpi"
)

// TestReportsBitIdenticalUnderInterning pins the columnar substrate's
// determinism contract: the report a worker-W engine produces over a
// scaled world must be byte-identical on the /v1 wire for every worker
// count, and identical again after a membership delta round-trips
// through Apply. Combined with the committed wire golden
// (pkg/rpi/testdata, re-pinned once in PR 5 with the hashed-stream
// RNG), this pins "the substrate changes no verdict" at 1x and
// extends the worker-invariance pin to the 4x world.
func TestReportsBitIdenticalUnderInterning(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 4x world")
	}
	workerSet := []int{1, 4, runtime.NumCPU()}
	for _, factor := range []int{1, 4} {
		factor := factor
		t.Run(fmt.Sprintf("%dx", factor), func(t *testing.T) {
			in, err := rpi.SyntheticInputs(1, factor)
			if err != nil {
				t.Fatal(err)
			}
			var ref []byte
			for _, w := range workerSet {
				eng, err := rpi.New(in, rpi.WithWorkers(w))
				if err != nil {
					t.Fatal(err)
				}
				wire, err := rpi.MarshalReport(eng.Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = wire
				} else if !bytes.Equal(ref, wire) {
					t.Fatalf("workers=%d: wire bytes diverge from workers=%d (%d vs %d bytes)",
						w, workerSet[0], len(wire), len(ref))
				}

				// A delta absorbed incrementally and then reverted must
				// land back on the identical wire bytes: the interned ID
				// space grew (joins append, leaves tombstone) but no
				// verdict may move.
				fwd := rpi.ChurnDelta(eng.Inputs(), 0.02, 1234)
				rev := rpi.InvertDelta(eng.Inputs(), fwd)
				if _, err := eng.Apply(context.Background(), fwd); err != nil {
					t.Fatal(err)
				}
				if _, err := eng.Apply(context.Background(), rev); err != nil {
					t.Fatal(err)
				}
				wire2, err := rpi.MarshalReport(eng.Snapshot())
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(ref, wire2) {
					t.Fatalf("workers=%d: wire bytes changed after delta round-trip", w)
				}
			}
		})
	}
}

// TestScaledConfig64x pins the 64x preset the new benchmark rung runs
// on: membership growth must stay roughly linear in the factor so
// "324k memberships" keeps meaning what BENCH_PR4.json says it means.
func TestScaledConfig64x(t *testing.T) {
	c1, c64 := netsim.DefaultConfig(), netsim.ScaledConfig(64)
	if c64.NASes < 60*c1.NASes {
		t.Fatalf("64x ASes = %d, want >= 60x default (%d)", c64.NASes, c1.NASes)
	}
	members1 := c1.NIXPs * (c1.MinIXPMembers + c1.LargestIXPMembers) / 2
	members64 := c64.NIXPs * (c64.MinIXPMembers + c64.LargestIXPMembers) / 2
	if members64 < 50*members1 {
		t.Fatalf("64x rough membership estimate %d, want >= 50x the default's %d", members64, members1)
	}
}
