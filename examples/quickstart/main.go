// Quickstart: generate a synthetic IXP ecosystem, run the five-step
// remote peering inference methodology end to end, and print the
// headline numbers — the shortest possible tour of the public API.
package main

import (
	"fmt"
	"log"

	"rpeer/internal/core"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/tracesim"
)

func main() {
	log.SetFlags(0)

	// 1. A seeded world: cities, facilities, IXPs, ASes, ground truth.
	world, err := netsim.Generate(netsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// 2. The observable inputs: merged registry data, colocation DB,
	//    a ping campaign from the IXP-hosted vantage points, and a
	//    traceroute corpus.
	dataset := registry.Build(world, registry.DefaultNoise(), 42)
	colo := registry.BuildColo(world, registry.DefaultColoNoise(), 43)
	vps := pingsim.DeriveVPs(world, 44)
	ping := pingsim.Run(world, vps, pingsim.DefaultCampaign())
	paths := tracesim.Generate(world, tracesim.DefaultConfig())

	// 3. Run the methodology.
	rep, err := core.Run(core.Inputs{
		World: world, Dataset: dataset, Colo: colo,
		Ping: ping, Paths: paths,
		Speed: geo.DefaultSpeedModel(), Seed: 45,
	}, core.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 4. Headline numbers.
	var local, remote, unknown int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case core.ClassLocal:
			local++
		case core.ClassRemote:
			remote++
		default:
			unknown++
		}
	}
	fmt.Printf("interfaces classified: %d\n", local+remote+unknown)
	fmt.Printf("  local:   %d\n", local)
	fmt.Printf("  remote:  %d (%.1f%% of decided)\n", remote,
		100*float64(remote)/float64(local+remote))
	fmt.Printf("  unknown: %d\n", unknown)
	fmt.Printf("multi-IXP routers observed: %d\n", len(rep.MultiRouters))

	// 5. Score against ground truth.
	val := core.BuildValidation(world, core.DefaultValidationConfig())
	m := core.Evaluate(rep, val.InIXPs(val.TestIXPs))
	fmt.Printf("validation (test subset): ACC=%.1f%% PRE=%.1f%% COV=%.1f%%\n",
		100*m.ACC, 100*m.PRE, 100*m.COV)
}
