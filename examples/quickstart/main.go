// Quickstart: generate a synthetic IXP ecosystem, stand up a
// long-lived inference engine from the public SDK (pkg/rpi), read the
// headline verdicts, absorb a membership-churn delta incrementally,
// and score the result against ground truth — the shortest possible
// tour of the public API.
package main

import (
	"context"
	"fmt"
	"log"

	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)

	// 1. A complete synthetic input world: seeded topology, merged
	//    registry dataset, colocation DB, ping campaign, traceroutes.
	inputs, err := rpi.SyntheticInputs(1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// 2. The engine: builds the shared inference substrate once and
	//    runs the five-step methodology over it.
	eng, err := rpi.New(inputs, rpi.WithWorkers(0))
	if err != nil {
		log.Fatal(err)
	}
	rep := eng.Snapshot()

	// 3. Headline numbers.
	var local, remote, unknown int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case rpi.ClassLocal:
			local++
		case rpi.ClassRemote:
			remote++
		default:
			unknown++
		}
	}
	fmt.Printf("interfaces classified: %d\n", local+remote+unknown)
	fmt.Printf("  local:   %d\n", local)
	fmt.Printf("  remote:  %d (%.1f%% of decided)\n", remote,
		100*float64(remote)/float64(local+remote))
	fmt.Printf("  unknown: %d\n", unknown)
	fmt.Printf("multi-IXP routers observed: %d\n", len(rep.MultiRouters))

	// 4. The world churns: absorb a 1% membership delta incrementally
	//    (no context rebuild) and see which verdicts moved.
	update, err := eng.Apply(context.Background(), rpi.ChurnDelta(eng.Inputs(), 0.01, 42))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("applied delta #%d: %d joins, %d leaves -> %d verdict changes\n",
		update.Seq, update.Joined, update.Left, len(update.Changes))

	// 5. Score against ground truth.
	val := rpi.BuildValidation(inputs.World, rpi.DefaultValidationConfig())
	m := rpi.Evaluate(eng.Snapshot(), val.InIXPs(val.TestIXPs))
	fmt.Printf("validation (test subset): ACC=%.1f%% PRE=%.1f%% COV=%.1f%%\n",
		100*m.ACC, 100*m.PRE, 100*m.COV)
}
