// Reseller ecosystem: this example exercises Step 1 of the
// methodology in isolation. Port resellers split physical IXP ports
// into fractional virtual ports; any member whose recorded capacity is
// below the exchange's minimum physical port must therefore be a
// reseller customer — a high-precision remote-peering signal. The
// example detects reseller customers across the world's IXPs, shows
// the precision of the signal against ground truth, and summarises the
// reseller market it uncovers.
package main

import (
	"fmt"
	"log"
	"sort"

	"rpeer/internal/exp"
	"rpeer/internal/netsim"
	"rpeer/internal/report"
	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)

	env, err := exp.NewEnv(1)
	if err != nil {
		log.Fatal(err)
	}
	world := env.World

	// Step 1 standalone: the port-capacity rule in isolation, over the
	// environment's shared inference engine.
	rep, err := env.Engine.RunStep(rpi.StepPortCapacity)
	if err != nil {
		log.Fatal(err)
	}

	var flagged, trueRemote, trueReseller int
	byIXP := make(map[string]int)
	truth := make(map[string]*netsim.Member)
	for _, m := range world.Members {
		truth[m.Iface.String()] = m
	}
	for k, inf := range rep.Inferences {
		if inf.Class != rpi.ClassRemote {
			continue
		}
		flagged++
		byIXP[k.IXP]++
		if m := truth[k.Iface.String()]; m != nil {
			if m.Remote() {
				trueRemote++
			}
			if m.Kind == netsim.ConnReseller {
				trueReseller++
			}
		}
	}
	fmt.Printf("fractional-port members flagged: %d\n", flagged)
	fmt.Printf("  truly remote:            %d (precision %.1f%%)\n",
		trueRemote, 100*float64(trueRemote)/float64(flagged))
	fmt.Printf("  truly reseller customers: %d\n\n", trueReseller)

	// Which IXPs host the most reseller customers?
	type row struct {
		name string
		n    int
	}
	var rows []row
	for name, n := range byIXP {
		rows = append(rows, row{name, n})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].n != rows[j].n {
			return rows[i].n > rows[j].n
		}
		return rows[i].name < rows[j].name
	})
	t := report.NewTable("Reseller customers by IXP (top 8)",
		"IXP", "flagged", "allows resellers", "min physical port")
	for i, r := range rows {
		if i >= 8 {
			break
		}
		ix := env.IXPByName(r.name)
		t.AddRow(r.name, r.n, ix.AllowsResellers, fmt.Sprintf("%d Mbps", ix.MinPortMbps))
	}
	fmt.Println(t.String())

	// The reseller organisations themselves.
	t2 := report.NewTable("Reseller organisations", "Reseller", "POP facilities", "home")
	for _, asn := range world.Resellers {
		r := world.AS(asn)
		t2.AddRow(r.Name, len(r.ResellerPOPs), r.HomeCity)
	}
	fmt.Println(t2.String())
}
