// Wide-area IXP pitfalls: this example reproduces the paper's Section
// 4 argument. It picks the largest wide-area IXP of a generated world
// (an NL-IX/NET-IX analogue whose switching fabric spans many metros),
// shows the inter-facility Y.1731 delays, and then compares what the
// naive 10ms RTT threshold and the colocation-informed Step 3 infer
// for that IXP's *local* members.
package main

import (
	"fmt"
	"log"
	"sort"

	"rpeer/internal/exp"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/report"
	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)

	env, err := exp.NewEnv(1)
	if err != nil {
		log.Fatal(err)
	}
	world := env.World

	// The geographically widest IXP that also hosts a usable vantage
	// point (so the RTT-threshold baseline is actually measurable).
	var wide *netsim.IXP
	var wideSpread float64
	for _, ix := range env.StudiedIXPs(len(world.IXPs)) {
		if !ix.WideArea {
			continue
		}
		d, _, _ := geo.MaxPairwiseKm(world.FacilityLocs(ix.ID))
		if d > wideSpread {
			wide, wideSpread = ix, d
		}
	}
	if wide == nil {
		log.Fatal("no wide-area IXP in this world")
	}
	fmt.Printf("wide-area IXP: %s — %d facilities, max spread %.0f km\n\n",
		wide.Name, len(wide.Facilities), wideSpread)

	// Y.1731-style inter-facility delays (Fig 2a).
	delays := world.Latency().InterFacilityDelays(wide.ID)
	sort.Slice(delays, func(i, j int) bool { return delays[i].RTTMs > delays[j].RTTMs })
	over10 := 0
	for _, d := range delays {
		if d.RTTMs > 10 {
			over10++
		}
	}
	fmt.Printf("inter-facility delay pairs: %d, of which %.0f%% above 10 ms\n",
		len(delays), 100*float64(over10)/float64(len(delays)))
	for _, d := range delays[:3] {
		fmt.Printf("  worst pairs: %.0f km apart -> %.1f ms\n", d.DistanceKm, d.RTTMs)
	}

	// How the naive threshold and the methodology treat this IXP's
	// ground-truth local members.
	var naiveWrong, methodWrong, locals int
	rtts := env.Ping.MinRTTByIface()
	for _, m := range world.MembersOf(wide.ID) {
		if m.Remote() {
			continue
		}
		locals++
		if rtt, ok := rtts[m.Iface]; ok && rtt > rpi.DefaultBaselineThresholdMs {
			naiveWrong++
		}
		k := rpi.Key{IXP: wide.Name, Iface: m.Iface}
		if inf, ok := env.Report.Inferences[k]; ok && inf.Class == rpi.ClassRemote {
			methodWrong++
		}
	}
	t := report.NewTable(fmt.Sprintf("\nLocal members of %s misclassified as remote", wide.Name),
		"Approach", "wrong", "of", "error")
	t.AddRow("RTTmin > 10ms (Castro et al.)", naiveWrong, locals,
		report.Pct(float64(naiveWrong)/float64(locals)))
	t.AddRow("five-step methodology", methodWrong, locals,
		report.Pct(float64(methodWrong)/float64(locals)))
	fmt.Println(t.String())
	fmt.Println("A remoteness RTT threshold is meaningless for wide-area IXPs:")
	fmt.Println("members patched in at a distant facility are local by definition,")
	fmt.Println("yet sit tens of milliseconds away from the measurement VP.")
}
