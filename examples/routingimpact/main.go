// Routing impact (paper Section 6.4): once remote peers at a flagship
// exchange are known, their routing behaviour can be audited. For
// every inferred remote member and every peer it shares a second
// exchange with, this example checks whether traffic crosses the
// latency-optimal interconnection, and quantifies the two failure
// modes: using the remote link although a closer exchange exists, and
// ignoring a remote link that would have been closer.
package main

import (
	"fmt"
	"log"
	"sort"

	"rpeer/internal/exp"
	"rpeer/internal/netsim"
	"rpeer/internal/report"
	"rpeer/internal/routing"
	"rpeer/pkg/rpi"
)

func main() {
	log.SetFlags(0)

	env, err := exp.NewEnv(1)
	if err != nil {
		log.Fatal(err)
	}
	flagship := env.StudiedIXPs(1)[0]

	// The remote members our methodology inferred at the flagship.
	var remotes []netsim.ASN
	seen := make(map[netsim.ASN]bool)
	for _, inf := range env.Report.Inferences {
		if inf.IXP == flagship.Name && inf.Class == rpi.ClassRemote && !seen[inf.ASN] {
			seen[inf.ASN] = true
			remotes = append(remotes, inf.ASN)
		}
	}
	fmt.Printf("flagship IXP: %s (%d members, %d inferred remote)\n\n",
		flagship.Name, len(env.World.MembersOf(flagship.ID)), len(remotes))

	a := routing.Analyze(env.World, flagship.ID, remotes, routing.DefaultConfig())
	hot, farther, closer := a.Fractions()
	t := report.NewTable("Exit choices of remote members (per peer pair)",
		"Outcome", "pairs", "share")
	t.AddRow("hot-potato compliant", a.HotPotato, report.Pct(hot))
	t.AddRow("crossed remote link, closer IXP existed", a.FartherRP, report.Pct(farther))
	t.AddRow("crossed other IXP, remote link was closer", a.CloserRP, report.Pct(closer))
	fmt.Println(t.String())

	// How much distance is being wasted by the non-compliant pairs?
	var deltas []float64
	for _, p := range a.Pairs {
		if p.Outcome != routing.HotPotato {
			deltas = append(deltas, p.DeltaKm)
		}
	}
	sort.Float64s(deltas)
	if len(deltas) > 0 {
		e := report.NewECDF(deltas)
		fmt.Printf("wasted exit distance across %d non-compliant pairs:\n", len(deltas))
		fmt.Printf("  median %.0f km, p90 %.0f km, max %.0f km\n",
			e.Median(), e.Quantile(0.9), e.Quantile(1))
		fmt.Println("\nEvery 100 km of detour costs roughly a millisecond of RTT;")
		fmt.Println("traffic engineering with remote-peering visibility recovers it.")
	}
}
