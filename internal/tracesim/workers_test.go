package tracesim

import (
	"runtime"
	"testing"

	"rpeer/internal/netsim"
)

// TestGenerateWorkersIdentical pins the corpus fan-out: per-membership
// and per-link streams make the path list identical for every worker
// count, in the same order.
func TestGenerateWorkersIdentical(t *testing.T) {
	w, err := netsim.Generate(netsim.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	ref := GenerateWorkers(w, cfg, 1)
	if len(ref) == 0 {
		t.Fatal("empty corpus")
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := GenerateWorkers(w, cfg, workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d paths, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if ref[i].Dst != got[i].Dst || len(ref[i].Hops) != len(got[i].Hops) {
				t.Fatalf("workers=%d: path %d differs", workers, i)
			}
			for h := range ref[i].Hops {
				if ref[i].Hops[h] != got[i].Hops[h] {
					t.Fatalf("workers=%d: path %d hop %d differs", workers, i, h)
				}
			}
		}
	}
}
