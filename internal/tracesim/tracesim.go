// Package tracesim synthesizes the traceroute corpus the methodology
// mines (Section 3.1: 3.15B RIPE Atlas paths; here a seeded, targeted
// corpus with the same structural features): paths crossing IXP
// peering LANs, paths over private facility interconnections, transit
// lead-ins, unresponsive hops and per-hop RTTs from globally
// distributed probes.
package tracesim

import (
	"math/rand"
	"net/netip"
	"runtime"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/par"
	"rpeer/internal/rng"
	"rpeer/internal/traix"
)

// Config controls corpus generation.
type Config struct {
	Seed int64
	// PathsPerMembership is how many crossing paths enter each IXP
	// through each membership (the membership acting as near member).
	PathsPerMembership int
	// PrivatePathProb is the probability that a private link is
	// traversed by a path (per direction).
	PrivatePathProb float64
	// LeadInProb adds transit hops in front of a path.
	LeadInProb float64
	// StarProb replaces a hop with an unresponsive "*".
	StarProb float64
}

// DefaultConfig returns the corpus parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		PathsPerMembership: 3,
		PrivatePathProb:    0.9,
		LeadInProb:         0.5,
		StarProb:           0.02,
	}
}

// Stream salts for the corpus's per-entity RNG streams.
const (
	streamCrossing uint64 = iota + 0x60
	streamPrivate
)

// Generate builds the corpus. The output is deterministic for a given
// world and config, regardless of worker count.
func Generate(w *netsim.World, cfg Config) []*traix.Path {
	return GenerateWorkers(w, cfg, 0)
}

// GenerateWorkers is Generate with an explicit worker count for the
// fan-out (workers <= 0 uses GOMAXPROCS). Crossing paths are planned
// one IXP per task and private-link paths one link chunk per task;
// every membership and link draws from its own stream keyed by (seed,
// entity), so the corpus is bit-identical for every worker count. The
// batches concatenate in (IXP rank, membership, path) then (link,
// direction) order — the order the serial generator produced.
func GenerateWorkers(w *netsim.World, cfg Config, workers int) []*traix.Path {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Crossing paths: each membership acts as the near member entering
	// its IXP towards randomly chosen far members.
	ixpBatches := make([][]*traix.Path, len(w.IXPs))
	par.Do(workers, len(w.IXPs), func(rank int) {
		ix := w.IXPs[rank]
		members := w.MembersOf(ix.ID)
		if len(members) < 2 {
			return
		}
		g := &pathGen{w: w, cfg: cfg}
		g.src = &rng.Source{}
		g.r = rand.New(g.src)
		batch := make([]*traix.Path, 0, len(members)*cfg.PathsPerMembership)
		for mi, near := range members {
			g.src.SetKey(rng.Key3(cfg.Seed, streamCrossing, uint64(rank), uint64(mi)))
			for k := 0; k < cfg.PathsPerMembership; k++ {
				far := members[g.r.Intn(len(members))]
				if far == near {
					continue
				}
				if p := g.crossingPath(near, far); p != nil {
					batch = append(batch, p)
				}
			}
		}
		ixpBatches[rank] = batch
	})

	// Private-interconnect paths, both directions, one stream per link.
	const linkChunk = 512
	nChunks := (len(w.Private) + linkChunk - 1) / linkChunk
	privBatches := make([][]*traix.Path, nChunks)
	par.Do(workers, nChunks, func(ci int) {
		lo, hi := ci*linkChunk, (ci+1)*linkChunk
		if hi > len(w.Private) {
			hi = len(w.Private)
		}
		g := &pathGen{w: w, cfg: cfg}
		g.src = &rng.Source{}
		g.r = rand.New(g.src)
		var batch []*traix.Path
		for i := lo; i < hi; i++ {
			pl := &w.Private[i]
			g.src.SetKey(rng.Key2(cfg.Seed, streamPrivate, uint64(i)))
			if g.r.Float64() < cfg.PrivatePathProb {
				if p := g.privatePath(pl, false); p != nil {
					batch = append(batch, p)
				}
			}
			if g.r.Float64() < cfg.PrivatePathProb {
				if p := g.privatePath(pl, true); p != nil {
					batch = append(batch, p)
				}
			}
		}
		privBatches[ci] = batch
	})

	total := 0
	for _, b := range ixpBatches {
		total += len(b)
	}
	for _, b := range privBatches {
		total += len(b)
	}
	paths := make([]*traix.Path, 0, total)
	for _, b := range ixpBatches {
		paths = append(paths, b...)
	}
	for _, b := range privBatches {
		paths = append(paths, b...)
	}
	return paths
}

type pathGen struct {
	w   *netsim.World
	cfg Config
	src *rng.Source
	r   *rand.Rand
}

// probeLoc picks a random probe location (anywhere in the world).
func (g *pathGen) probeLoc() geo.Point {
	c := g.w.Cities[g.r.Intn(len(g.w.Cities))]
	return c.Loc
}

// synthIP fabricates a stable non-interface address inside the AS's
// first prefix (from the top of the range, far away from allocated
// interface addresses).
func (g *pathGen) synthIP(asn netsim.ASN) (netip.Addr, bool) {
	ps := g.w.ASPrefixes(asn)
	if len(ps) == 0 {
		return netip.Addr{}, false
	}
	p := ps[0]
	b := p.Addr().As4()
	// Last /24 of the prefix, random final octet >= 1.
	size := uint32(1) << (32 - p.Bits())
	base := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	off := size - 256 + uint32(1+g.r.Intn(250))
	u := base + off
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}), true
}

// hopRTT models the probe-to-hop RTT of the first path hop (heavier
// noise than pings: traceroute samples once).
func (g *pathGen) hopRTT(src geo.Point, srcKey uint64, r *netsim.Router) float64 {
	base := g.w.Latency().PointToRouterRTT(src, srcKey, r)
	return g.w.Latency().Sample(g.r, base) + g.r.ExpFloat64()*0.5
}

// nextHopRTT extends a path to the next router: hop RTTs accumulate
// along the forward path (RTT to hop k ≈ RTT to hop k-1 plus the
// inter-router segment RTT, plus per-hop reply jitter), which is what
// makes consecutive-hop RTT differences usable as inter-peer delay
// estimates — the "Beyond Pings" idea of the paper's Section 8.
func (g *pathGen) nextHopRTT(prevRTT float64, prev, cur *netsim.Router) float64 {
	seg := g.w.Latency().RouterRTT(prev, cur)
	return prevRTT + g.w.Latency().Sample(g.r, seg) + g.r.ExpFloat64()*0.4
}

func (g *pathGen) star(h traix.Hop) traix.Hop {
	if g.r.Float64() < g.cfg.StarProb {
		return traix.Hop{}
	}
	return h
}

// crossingPath builds probe -> [transit] -> near router -> far member
// IXP interface -> far AS interior.
func (g *pathGen) crossingPath(near, far *netsim.Member) *traix.Path {
	w := g.w
	nearR := w.Router(near.Router)
	farR := w.Router(far.Router)
	if nearR == nil || farR == nil {
		return nil
	}
	dst, ok := g.synthIP(far.ASN)
	if !ok {
		return nil
	}
	src := g.probeLoc()
	srcKey := uint64(g.r.Int63()) | 1<<58

	hops := make([]traix.Hop, 0, 4)
	if g.r.Float64() < g.cfg.LeadInProb {
		if tip, ok := g.leadInHop(near.ASN); ok {
			hops = append(hops, g.star(traix.Hop{IP: tip, RTTMs: g.r.Float64() * 20}))
		}
	}
	// Near member's router: replies with its infrastructure interface.
	nearRTT := g.hopRTT(src, srcKey, nearR)
	hops = append(hops, traix.Hop{IP: nearR.Ifaces[0], RTTMs: nearRTT})
	// The far member's peering-LAN interface: this hop must stay
	// responsive for the crossing to be detectable; traIXroute-style
	// pipelines simply never see the paths where it is not. Its RTT
	// accumulates the near->far segment on top of the near hop.
	farRTT := g.nextHopRTT(nearRTT, nearR, farR)
	hops = append(hops, traix.Hop{IP: far.Iface, RTTMs: farRTT})
	// Interior of the far AS.
	hops = append(hops, g.star(traix.Hop{IP: dst, RTTMs: farRTT + 0.3}))

	return &traix.Path{SrcASN: 0, Dst: dst, Hops: hops}
}

// leadInHop fabricates a transit hop owned by one of the member's
// providers.
func (g *pathGen) leadInHop(asn netsim.ASN) (netip.Addr, bool) {
	as := g.w.AS(asn)
	if as == nil || len(as.Providers) == 0 {
		return netip.Addr{}, false
	}
	p := as.Providers[g.r.Intn(len(as.Providers))]
	return g.synthIP(p)
}

// privatePath builds probe -> A router -> B router over a private
// cross-connect (or B -> A when reversed).
func (g *pathGen) privatePath(pl *netsim.PrivateLink, reverse bool) *traix.Path {
	w := g.w
	ra, rb := w.Router(pl.A), w.Router(pl.B)
	aIface, bIface := pl.AIface, pl.BIface
	if reverse {
		ra, rb = rb, ra
		aIface, bIface = bIface, aIface
	}
	if ra == nil || rb == nil {
		return nil
	}
	dst, ok := g.synthIP(rb.Owner)
	if !ok {
		return nil
	}
	src := g.probeLoc()
	srcKey := uint64(g.r.Int63()) | 1<<57

	aRTT := g.hopRTT(src, srcKey, ra)
	bRTT := g.nextHopRTT(aRTT, ra, rb)
	hops := make([]traix.Hop, 0, 3)
	// The near router replies with its side of the cross-connect.
	hops = append(hops,
		traix.Hop{IP: aIface, RTTMs: aRTT},
		traix.Hop{IP: bIface, RTTMs: bRTT})
	hops = append(hops, g.star(traix.Hop{IP: dst, RTTMs: bRTT + 0.2}))
	return &traix.Path{Dst: dst, Hops: hops}
}

// FromVP generates traceroute-style RTT observations from a fixed
// vantage location towards every member interface of one IXP,
// reproducing the Fig 12b comparison (traceroute-derived RTTs carry
// more noise than the ping campaign minimums).
func FromVP(w *netsim.World, ixp netsim.IXPID, vpLoc geo.Point, seed int64) map[netip.Addr]float64 {
	r := rand.New(rng.NewSource(rng.Key(seed, 0x66)))
	out := make(map[netip.Addr]float64)
	vpKey := uint64(seed)<<32 | 1<<56
	for _, m := range w.MembersOf(ixp) {
		rt := w.Router(m.Router)
		if rt == nil {
			continue
		}
		base := w.Latency().PointToRouterRTT(vpLoc, vpKey, rt)
		// One-shot sample + traceroute artefacts (load balancing,
		// reverse-path asymmetry).
		rtt := w.Latency().Sample(r, base) + r.ExpFloat64()*0.8
		out[m.Iface] = rtt
	}
	return out
}
