// Package tracesim synthesizes the traceroute corpus the methodology
// mines (Section 3.1: 3.15B RIPE Atlas paths; here a seeded, targeted
// corpus with the same structural features): paths crossing IXP
// peering LANs, paths over private facility interconnections, transit
// lead-ins, unresponsive hops and per-hop RTTs from globally
// distributed probes.
package tracesim

import (
	"math/rand"
	"net/netip"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/traix"
)

// Config controls corpus generation.
type Config struct {
	Seed int64
	// PathsPerMembership is how many crossing paths enter each IXP
	// through each membership (the membership acting as near member).
	PathsPerMembership int
	// PrivatePathProb is the probability that a private link is
	// traversed by a path (per direction).
	PrivatePathProb float64
	// LeadInProb adds transit hops in front of a path.
	LeadInProb float64
	// StarProb replaces a hop with an unresponsive "*".
	StarProb float64
}

// DefaultConfig returns the corpus parameters used by the experiments.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		PathsPerMembership: 3,
		PrivatePathProb:    0.9,
		LeadInProb:         0.5,
		StarProb:           0.02,
	}
}

// Generate builds the corpus. The output is deterministic for a given
// world and config.
func Generate(w *netsim.World, cfg Config) []*traix.Path {
	g := &pathGen{w: w, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	var paths []*traix.Path

	// Crossing paths: each membership acts as the near member entering
	// its IXP towards randomly chosen far members.
	for _, ix := range w.IXPs {
		members := w.MembersOf(ix.ID)
		if len(members) < 2 {
			continue
		}
		for _, near := range members {
			for k := 0; k < cfg.PathsPerMembership; k++ {
				far := members[g.rng.Intn(len(members))]
				if far == near {
					continue
				}
				if p := g.crossingPath(near, far); p != nil {
					paths = append(paths, p)
				}
			}
		}
	}

	// Private-interconnect paths, both directions.
	for i := range w.Private {
		pl := &w.Private[i]
		if g.rng.Float64() < cfg.PrivatePathProb {
			if p := g.privatePath(pl, false); p != nil {
				paths = append(paths, p)
			}
		}
		if g.rng.Float64() < cfg.PrivatePathProb {
			if p := g.privatePath(pl, true); p != nil {
				paths = append(paths, p)
			}
		}
	}
	return paths
}

type pathGen struct {
	w   *netsim.World
	cfg Config
	rng *rand.Rand
}

// probeLoc picks a random probe location (anywhere in the world).
func (g *pathGen) probeLoc() geo.Point {
	c := g.w.Cities[g.rng.Intn(len(g.w.Cities))]
	return c.Loc
}

// synthIP fabricates a stable non-interface address inside the AS's
// first prefix (from the top of the range, far away from allocated
// interface addresses).
func (g *pathGen) synthIP(asn netsim.ASN) (netip.Addr, bool) {
	ps := g.w.ASPrefixes(asn)
	if len(ps) == 0 {
		return netip.Addr{}, false
	}
	p := ps[0]
	b := p.Addr().As4()
	// Last /24 of the prefix, random final octet >= 1.
	size := uint32(1) << (32 - p.Bits())
	base := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	off := size - 256 + uint32(1+g.rng.Intn(250))
	u := base + off
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)}), true
}

// hopRTT models the probe-to-hop RTT of the first path hop (heavier
// noise than pings: traceroute samples once).
func (g *pathGen) hopRTT(src geo.Point, srcKey uint64, r *netsim.Router) float64 {
	base := g.w.Latency().PointToRouterRTT(src, srcKey, r)
	return g.w.Latency().Sample(g.rng, base) + g.rng.ExpFloat64()*0.5
}

// nextHopRTT extends a path to the next router: hop RTTs accumulate
// along the forward path (RTT to hop k ≈ RTT to hop k-1 plus the
// inter-router segment RTT, plus per-hop reply jitter), which is what
// makes consecutive-hop RTT differences usable as inter-peer delay
// estimates — the "Beyond Pings" idea of the paper's Section 8.
func (g *pathGen) nextHopRTT(prevRTT float64, prev, cur *netsim.Router) float64 {
	seg := g.w.Latency().RouterRTT(prev, cur)
	return prevRTT + g.w.Latency().Sample(g.rng, seg) + g.rng.ExpFloat64()*0.4
}

func (g *pathGen) star(h traix.Hop) traix.Hop {
	if g.rng.Float64() < g.cfg.StarProb {
		return traix.Hop{}
	}
	return h
}

// crossingPath builds probe -> [transit] -> near router -> far member
// IXP interface -> far AS interior.
func (g *pathGen) crossingPath(near, far *netsim.Member) *traix.Path {
	w := g.w
	nearR := w.Router(near.Router)
	farR := w.Router(far.Router)
	if nearR == nil || farR == nil {
		return nil
	}
	dst, ok := g.synthIP(far.ASN)
	if !ok {
		return nil
	}
	src := g.probeLoc()
	srcKey := uint64(g.rng.Int63()) | 1<<58

	var hops []traix.Hop
	if g.rng.Float64() < g.cfg.LeadInProb {
		if tip, ok := g.leadInHop(near.ASN); ok {
			hops = append(hops, g.star(traix.Hop{IP: tip, RTTMs: g.rng.Float64() * 20}))
		}
	}
	// Near member's router: replies with its infrastructure interface.
	nearRTT := g.hopRTT(src, srcKey, nearR)
	hops = append(hops, traix.Hop{IP: nearR.Ifaces[0], RTTMs: nearRTT})
	// The far member's peering-LAN interface: this hop must stay
	// responsive for the crossing to be detectable; traIXroute-style
	// pipelines simply never see the paths where it is not. Its RTT
	// accumulates the near->far segment on top of the near hop.
	farRTT := g.nextHopRTT(nearRTT, nearR, farR)
	hops = append(hops, traix.Hop{IP: far.Iface, RTTMs: farRTT})
	// Interior of the far AS.
	hops = append(hops, g.star(traix.Hop{IP: dst, RTTMs: farRTT + 0.3}))

	return &traix.Path{SrcASN: 0, Dst: dst, Hops: hops}
}

// leadInHop fabricates a transit hop owned by one of the member's
// providers.
func (g *pathGen) leadInHop(asn netsim.ASN) (netip.Addr, bool) {
	as := g.w.AS(asn)
	if as == nil || len(as.Providers) == 0 {
		return netip.Addr{}, false
	}
	p := as.Providers[g.rng.Intn(len(as.Providers))]
	return g.synthIP(p)
}

// privatePath builds probe -> A router -> B router over a private
// cross-connect (or B -> A when reversed).
func (g *pathGen) privatePath(pl *netsim.PrivateLink, reverse bool) *traix.Path {
	w := g.w
	ra, rb := w.Router(pl.A), w.Router(pl.B)
	aIface, bIface := pl.AIface, pl.BIface
	if reverse {
		ra, rb = rb, ra
		aIface, bIface = bIface, aIface
	}
	if ra == nil || rb == nil {
		return nil
	}
	dst, ok := g.synthIP(rb.Owner)
	if !ok {
		return nil
	}
	src := g.probeLoc()
	srcKey := uint64(g.rng.Int63()) | 1<<57

	aRTT := g.hopRTT(src, srcKey, ra)
	bRTT := g.nextHopRTT(aRTT, ra, rb)
	hops := []traix.Hop{
		// The near router replies with its side of the cross-connect.
		{IP: aIface, RTTMs: aRTT},
		{IP: bIface, RTTMs: bRTT},
	}
	hops = append(hops, g.star(traix.Hop{IP: dst, RTTMs: bRTT + 0.2}))
	return &traix.Path{Dst: dst, Hops: hops}
}

// FromVP generates traceroute-style RTT observations from a fixed
// vantage location towards every member interface of one IXP,
// reproducing the Fig 12b comparison (traceroute-derived RTTs carry
// more noise than the ping campaign minimums).
func FromVP(w *netsim.World, ixp netsim.IXPID, vpLoc geo.Point, seed int64) map[netip.Addr]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make(map[netip.Addr]float64)
	vpKey := uint64(seed)<<32 | 1<<56
	for _, m := range w.MembersOf(ixp) {
		r := w.Router(m.Router)
		if r == nil {
			continue
		}
		base := w.Latency().PointToRouterRTT(vpLoc, vpKey, r)
		// One-shot sample + traceroute artefacts (load balancing,
		// reverse-path asymmetry).
		rtt := w.Latency().Sample(rng, base) + rng.ExpFloat64()*0.8
		out[m.Iface] = rtt
	}
	return out
}
