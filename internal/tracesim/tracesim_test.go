package tracesim

import (
	"testing"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

var (
	cw    *netsim.World
	paths []*traix.Path
	det   *traix.Detector
)

func fixtures(t testing.TB) (*netsim.World, []*traix.Path, *traix.Detector) {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
		paths = Generate(w, DefaultConfig())
		ds := registry.Build(w, registry.DefaultNoise(), 42)
		det = traix.NewDetector(ds, registry.BuildIPMap(w))
	}
	return cw, paths, det
}

func TestGenerateProducesCorpus(t *testing.T) {
	w, ps, _ := fixtures(t)
	if len(ps) < len(w.Members)*2 {
		t.Fatalf("corpus = %d paths, want >= %d", len(ps), len(w.Members)*2)
	}
	for _, p := range ps[:100] {
		if len(p.Hops) < 2 {
			t.Fatalf("path with %d hops", len(p.Hops))
		}
	}
}

func TestCrossingsDetectable(t *testing.T) {
	w, ps, d := fixtures(t)
	crossings := d.DetectAll(ps)
	if len(crossings) < len(w.Members) {
		t.Fatalf("crossings = %d, want >= member count %d", len(crossings), len(w.Members))
	}
	// Near-member coverage: most memberships should appear as the near
	// member of at least one crossing (modulo dataset noise).
	seen := make(map[string]bool)
	for _, c := range crossings {
		seen[c.IXP+"/"+c.NearAS.String()] = true
	}
	covered := 0
	for _, ix := range w.IXPs {
		for _, m := range w.MembersOf(ix.ID) {
			if seen[ix.Name+"/"+m.ASN.String()] {
				covered++
			}
		}
	}
	if frac := float64(covered) / float64(len(w.Members)); frac < 0.75 {
		t.Errorf("near-member crossing coverage = %.2f, want >= 0.75", frac)
	}
}

func TestCrossingsMostlyAccurate(t *testing.T) {
	w, ps, d := fixtures(t)
	crossings := d.DetectAll(ps)
	good := 0
	for _, c := range crossings {
		// Ground truth: the near AS must really be a member of the IXP
		// whose LAN was crossed (by construction of the corpus).
		truth := false
		for _, ix := range w.IXPs {
			if ix.Name != c.IXP {
				continue
			}
			for _, m := range w.MembersOf(ix.ID) {
				if m.ASN == c.NearAS {
					truth = true
					break
				}
			}
		}
		if truth {
			good++
		}
	}
	if frac := float64(good) / float64(len(crossings)); frac < 0.98 {
		t.Errorf("crossing accuracy = %.3f, want >= 0.98", frac)
	}
}

func TestPrivateHopsDetectable(t *testing.T) {
	w, ps, d := fixtures(t)
	priv := d.DetectPrivateAll(ps)
	if len(priv) < len(w.Private)/2 {
		t.Fatalf("private hops = %d, want >= %d", len(priv), len(w.Private)/2)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w, _, _ := fixtures(t)
	a := Generate(w, DefaultConfig())
	b := Generate(w, DefaultConfig())
	if len(a) != len(b) {
		t.Fatalf("path counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i].Hops) != len(b[i].Hops) || a[i].Dst != b[i].Dst {
			t.Fatalf("path %d differs", i)
		}
		for j := range a[i].Hops {
			if a[i].Hops[j].IP != b[i].Hops[j].IP {
				t.Fatalf("path %d hop %d differs", i, j)
			}
		}
	}
}

func TestFromVP(t *testing.T) {
	w, _, _ := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	vpLoc := w.Facility(ix.Facilities[0]).Loc
	rtts := FromVP(w, ix.ID, vpLoc, 5)
	if len(rtts) != len(w.MembersOf(ix.ID)) {
		t.Fatalf("FromVP covered %d of %d members", len(rtts), len(w.MembersOf(ix.ID)))
	}
	for ip, rtt := range rtts {
		if rtt <= 0 {
			t.Fatalf("non-positive traceroute RTT for %v", ip)
		}
	}
}

func BenchmarkGenerateCorpus(b *testing.B) {
	w, _, _ := fixtures(b)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(w, cfg)
	}
}
