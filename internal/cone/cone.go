// Package cone computes AS-relationship-derived customer cones, the
// CAIDA dataset analogue used by the paper's Fig 11a analysis of
// remote/local/hybrid member features, plus the PDB-style traffic
// bands of Fig 11b.
package cone

import (
	"sort"

	"rpeer/internal/netsim"
)

// Graph is the AS relationship graph: provider-to-customer edges
// derived from the world's transit relationships.
type Graph struct {
	// customers maps a provider ASN to its direct customers.
	customers map[netsim.ASN][]netsim.ASN
	// cones caches computed cone sizes.
	cones map[netsim.ASN]int
}

// Build derives the graph from the world.
func Build(w *netsim.World) *Graph {
	g := &Graph{
		customers: make(map[netsim.ASN][]netsim.ASN),
		cones:     make(map[netsim.ASN]int),
	}
	for _, asn := range w.ASNs {
		for _, p := range w.AS(asn).Providers {
			g.customers[p] = append(g.customers[p], asn)
		}
	}
	for p := range g.customers {
		sort.Slice(g.customers[p], func(i, j int) bool { return g.customers[p][i] < g.customers[p][j] })
	}
	return g
}

// Customers returns the direct customers of an AS.
func (g *Graph) Customers(asn netsim.ASN) []netsim.ASN { return g.customers[asn] }

// ConeSize returns the size of the AS's customer cone: the number of
// ASes reachable by walking provider-to-customer edges, including the
// AS itself (CAIDA convention: a stub has cone size 1).
func (g *Graph) ConeSize(asn netsim.ASN) int {
	if n, ok := g.cones[asn]; ok {
		return n
	}
	seen := map[netsim.ASN]bool{asn: true}
	stack := []netsim.ASN{asn}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range g.customers[cur] {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	g.cones[asn] = len(seen)
	return len(seen)
}

// MemberClass is the Fig 11 taxonomy of IXP member networks.
type MemberClass uint8

const (
	// ClassLocalOnly: all the AS's IXP connections are local.
	ClassLocalOnly MemberClass = iota
	// ClassRemoteOnly: all connections are remote.
	ClassRemoteOnly
	// ClassHybrid: both kinds (in the same or different IXPs).
	ClassHybrid
)

// String implements fmt.Stringer.
func (c MemberClass) String() string {
	switch c {
	case ClassLocalOnly:
		return "local"
	case ClassRemoteOnly:
		return "remote"
	default:
		return "hybrid"
	}
}

// Classify buckets an AS by the remoteness verdicts of its memberships
// (true = remote). ok is false when the slice is empty.
func Classify(remotes []bool) (MemberClass, bool) {
	if len(remotes) == 0 {
		return ClassLocalOnly, false
	}
	any, all := false, true
	for _, r := range remotes {
		if r {
			any = true
		} else {
			all = false
		}
	}
	switch {
	case any && all:
		return ClassRemoteOnly, true
	case any:
		return ClassHybrid, true
	default:
		return ClassLocalOnly, true
	}
}
