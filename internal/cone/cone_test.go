package cone

import (
	"testing"

	"rpeer/internal/netsim"
)

var cw *netsim.World

func world(t testing.TB) *netsim.World {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
	}
	return cw
}

func TestConeSizes(t *testing.T) {
	w := world(t)
	g := Build(w)
	// Tier-1s must have large cones, stubs cone size 1.
	var t1Max, stubMax int
	stubCount := 0
	for _, asn := range w.ASNs {
		as := w.AS(asn)
		c := g.ConeSize(asn)
		if c < 1 {
			t.Fatalf("cone size %d < 1 for %v", c, asn)
		}
		switch as.Tier {
		case 1:
			if c > t1Max {
				t1Max = c
			}
		case 3:
			if len(g.Customers(asn)) == 0 {
				stubCount++
				if c != 1 {
					t.Fatalf("childless stub %v has cone %d", asn, c)
				}
				if c > stubMax {
					stubMax = c
				}
			}
		}
	}
	if t1Max < 100 {
		t.Errorf("largest tier-1 cone = %d, want >= 100", t1Max)
	}
	if stubCount == 0 {
		t.Fatal("no stubs found")
	}
}

func TestConeMonotoneOverProviders(t *testing.T) {
	w := world(t)
	g := Build(w)
	// A provider's cone strictly contains each customer's cone members,
	// so its size must be at least the customer's.
	for _, asn := range w.ASNs[:500] {
		for _, p := range w.AS(asn).Providers {
			if g.ConeSize(p) < g.ConeSize(asn) {
				t.Fatalf("provider %v cone %d < customer %v cone %d", p, g.ConeSize(p), asn, g.ConeSize(asn))
			}
		}
	}
}

func TestConeCached(t *testing.T) {
	w := world(t)
	g := Build(w)
	a := g.ConeSize(w.ASNs[0])
	b := g.ConeSize(w.ASNs[0])
	if a != b {
		t.Fatal("cone size not stable")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		in   []bool
		want MemberClass
		ok   bool
	}{
		{nil, ClassLocalOnly, false},
		{[]bool{false}, ClassLocalOnly, true},
		{[]bool{false, false}, ClassLocalOnly, true},
		{[]bool{true}, ClassRemoteOnly, true},
		{[]bool{true, true}, ClassRemoteOnly, true},
		{[]bool{true, false}, ClassHybrid, true},
	}
	for _, c := range cases {
		got, ok := Classify(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("Classify(%v) = (%v,%v), want (%v,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestMemberClassShares(t *testing.T) {
	// Paper: 63.7% local-only, 23.4% remote-only, 12.9% hybrid among
	// AS-peers of the 30 IXPs (ground-truth version here).
	w := world(t)
	counts := map[MemberClass]int{}
	tot := 0
	for _, asn := range w.ASNs {
		var rs []bool
		for _, m := range w.MembershipsOf(asn) {
			rs = append(rs, m.Remote())
		}
		if cls, ok := Classify(rs); ok {
			counts[cls]++
			tot++
		}
	}
	local := float64(counts[ClassLocalOnly]) / float64(tot)
	remote := float64(counts[ClassRemoteOnly]) / float64(tot)
	hybrid := float64(counts[ClassHybrid]) / float64(tot)
	t.Logf("member classes: local=%.3f remote=%.3f hybrid=%.3f (n=%d)", local, remote, hybrid, tot)
	if local < 0.45 || local > 0.80 {
		t.Errorf("local-only share %.2f, want ~0.64", local)
	}
	if remote < 0.10 || remote > 0.40 {
		t.Errorf("remote-only share %.2f, want ~0.23", remote)
	}
	if hybrid < 0.03 || hybrid > 0.30 {
		t.Errorf("hybrid share %.2f, want ~0.13", hybrid)
	}
}
