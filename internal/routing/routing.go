// Package routing reproduces the Section 6.4 analysis of remote
// peering's interplay with Internet routing: for every remote member
// of a large flagship IXP and every other member it shares a second
// exchange with, which interconnection does the traffic actually
// cross, and is that the latency-optimal (hot-potato) choice?
package routing

import (
	"math"
	"math/rand"
	"sort"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
)

// Outcome classifies one {remote member, peer} pair (paper buckets:
// 66% / 18% / 16%).
type Outcome uint8

const (
	// HotPotato: traffic exits at the common IXP closest to the remote
	// member — the expected strategy.
	HotPotato Outcome = iota
	// FartherRP: traffic crosses the remote-peering link at the
	// flagship although another common IXP is closer to the member.
	FartherRP
	// CloserRPUnused: traffic crosses another exchange although the
	// flagship's remote-peering link is the closer option.
	CloserRPUnused
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case HotPotato:
		return "hot-potato"
	case FartherRP:
		return "farther-RP-used"
	default:
		return "closer-RP-unused"
	}
}

// Config parametrises the simulated routing policies.
type Config struct {
	Seed int64
	// PolicyCompliance is the probability that a member's BGP policy
	// actually implements the hot-potato exit; the remainder picks the
	// other candidate for opaque business reasons.
	PolicyCompliance float64
	// MaxPairs caps the analysed pairs (the paper probes ~245k pairs
	// with at most 5 Atlas probes per source AS).
	MaxPairs int
}

// DefaultConfig mirrors the observed compliance level.
func DefaultConfig() Config {
	return Config{Seed: 1, PolicyCompliance: 0.66, MaxPairs: 250000}
}

// Pair is one analysed {remote member, other member} combination.
type Pair struct {
	RemoteASN netsim.ASN
	OtherASN  netsim.ASN
	// ViaIXP is the exchange the simulated traceroute crossed.
	ViaIXP netsim.IXPID
	// ClosestIXP is the hot-potato-optimal candidate.
	ClosestIXP netsim.IXPID
	// DeltaKm is how much closer the optimal exit is than the chosen
	// one (0 for compliant pairs).
	DeltaKm float64
	Outcome Outcome
}

// Analysis aggregates the Section 6.4 numbers.
type Analysis struct {
	Flagship  netsim.IXPID
	Pairs     []Pair
	HotPotato int
	FartherRP int
	CloserRP  int
}

// Fractions returns the outcome shares.
func (a *Analysis) Fractions() (hot, farther, closer float64) {
	n := float64(len(a.Pairs))
	if n == 0 {
		return 0, 0, 0
	}
	return float64(a.HotPotato) / n, float64(a.FartherRP) / n, float64(a.CloserRP) / n
}

// Analyze runs the study against the flagship IXP for the given set of
// (inferred) remote member ASNs.
func Analyze(w *netsim.World, flagship netsim.IXPID, remoteASNs []netsim.ASN, cfg Config) *Analysis {
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Analysis{Flagship: flagship}

	remoteSet := make(map[netsim.ASN]bool, len(remoteASNs))
	for _, asn := range remoteASNs {
		remoteSet[asn] = true
	}
	members := w.MembersOf(flagship)
	// Index: AS -> set of IXPs it belongs to.
	ixpsOf := make(map[netsim.ASN]map[netsim.IXPID]bool)
	for _, asn := range w.ASNs {
		set := make(map[netsim.IXPID]bool)
		for _, m := range w.MembershipsOf(asn) {
			set[m.IXP] = true
		}
		ixpsOf[asn] = set
	}
	// Facility locations per IXP, resolved once — the pair loop used to
	// re-assemble this slice (one allocation plus a haversine per
	// facility) for every candidate exchange of every pair, which made
	// this artefact the whole experiment suite's straggler.
	facLocs := make([][]geo.Point, len(w.IXPs))
	for _, ix := range w.IXPs {
		facLocs[ix.ID] = w.FacilityLocs(ix.ID)
	}

	sortedMembers := append([]*netsim.Member(nil), members...)
	sort.Slice(sortedMembers, func(i, j int) bool { return sortedMembers[i].ASN < sortedMembers[j].ASN })

	// distTo caches the remote member's distance to each IXP (-1 =
	// not yet computed); it only depends on the member's router, so one
	// fill serves all of the member's pairs.
	distTo := make([]float64, len(w.IXPs))
	for _, mr := range sortedMembers {
		if !remoteSet[mr.ASN] {
			continue
		}
		rLoc := w.Router(mr.Router).Loc
		for i := range distTo {
			distTo[i] = -1
		}
		dist := func(ix netsim.IXPID) float64 {
			if d := distTo[ix]; d >= 0 {
				return d
			}
			best := math.Inf(1)
			for _, p := range facLocs[ix] {
				if d := geo.DistanceKm(rLoc, p); d < best {
					best = d
				}
			}
			distTo[ix] = best
			return best
		}
		flagD := dist(flagship)
		for _, mx := range sortedMembers {
			if mx.ASN == mr.ASN {
				continue
			}
			if len(a.Pairs) >= cfg.MaxPairs {
				return finish(a)
			}
			// Closest other common IXP (besides the flagship).
			other := netsim.IXPID(-1)
			otherD := math.Inf(1)
			bSet := ixpsOf[mx.ASN]
			for ix := range ixpsOf[mr.ASN] {
				if ix == flagship || !bSet[ix] {
					continue
				}
				if d := dist(ix); d < otherD {
					other, otherD = ix, d
				}
			}
			if other < 0 {
				continue
			}
			closest, closestD := flagship, flagD
			if otherD < flagD {
				closest, closestD = other, otherD
			}
			if math.Abs(otherD-flagD) < 1 {
				// Indistinguishable exits (sub-km difference): any
				// choice is latency-optimal; skip the pair like the
				// paper's analysis skips ambiguous crossings.
				continue
			}
			// Policy: hot-potato with probability PolicyCompliance,
			// otherwise the member's BGP preferences pick the other
			// candidate.
			chosen := closest
			if rng.Float64() >= cfg.PolicyCompliance {
				if closest == flagship {
					chosen = other
				} else {
					chosen = flagship
				}
			}
			p := Pair{
				RemoteASN: mr.ASN, OtherASN: mx.ASN,
				ViaIXP: chosen, ClosestIXP: closest,
			}
			switch {
			case chosen == closest:
				p.Outcome = HotPotato
			case chosen == flagship:
				p.Outcome = FartherRP
				p.DeltaKm = flagD - closestD
			default:
				p.Outcome = CloserRPUnused
				p.DeltaKm = otherD - closestD
			}
			a.Pairs = append(a.Pairs, p)
		}
	}
	return finish(a)
}

func finish(a *Analysis) *Analysis {
	for _, p := range a.Pairs {
		switch p.Outcome {
		case HotPotato:
			a.HotPotato++
		case FartherRP:
			a.FartherRP++
		default:
			a.CloserRP++
		}
	}
	return a
}
