// Package routing reproduces the Section 6.4 analysis of remote
// peering's interplay with Internet routing: for every remote member
// of a large flagship IXP and every other member it shares a second
// exchange with, which interconnection does the traffic actually
// cross, and is that the latency-optimal (hot-potato) choice?
package routing

import (
	"math"
	"math/rand"
	"sort"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
)

// Outcome classifies one {remote member, peer} pair (paper buckets:
// 66% / 18% / 16%).
type Outcome uint8

const (
	// HotPotato: traffic exits at the common IXP closest to the remote
	// member — the expected strategy.
	HotPotato Outcome = iota
	// FartherRP: traffic crosses the remote-peering link at the
	// flagship although another common IXP is closer to the member.
	FartherRP
	// CloserRPUnused: traffic crosses another exchange although the
	// flagship's remote-peering link is the closer option.
	CloserRPUnused
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case HotPotato:
		return "hot-potato"
	case FartherRP:
		return "farther-RP-used"
	default:
		return "closer-RP-unused"
	}
}

// Config parametrises the simulated routing policies.
type Config struct {
	Seed int64
	// PolicyCompliance is the probability that a member's BGP policy
	// actually implements the hot-potato exit; the remainder picks the
	// other candidate for opaque business reasons.
	PolicyCompliance float64
	// MaxPairs caps the analysed pairs (the paper probes ~245k pairs
	// with at most 5 Atlas probes per source AS).
	MaxPairs int
}

// DefaultConfig mirrors the observed compliance level.
func DefaultConfig() Config {
	return Config{Seed: 1, PolicyCompliance: 0.66, MaxPairs: 250000}
}

// Pair is one analysed {remote member, other member} combination.
type Pair struct {
	RemoteASN netsim.ASN
	OtherASN  netsim.ASN
	// ViaIXP is the exchange the simulated traceroute crossed.
	ViaIXP netsim.IXPID
	// ClosestIXP is the hot-potato-optimal candidate.
	ClosestIXP netsim.IXPID
	// DeltaKm is how much closer the optimal exit is than the chosen
	// one (0 for compliant pairs).
	DeltaKm float64
	Outcome Outcome
}

// Analysis aggregates the Section 6.4 numbers.
type Analysis struct {
	Flagship  netsim.IXPID
	Pairs     []Pair
	HotPotato int
	FartherRP int
	CloserRP  int
}

// Fractions returns the outcome shares.
func (a *Analysis) Fractions() (hot, farther, closer float64) {
	n := float64(len(a.Pairs))
	if n == 0 {
		return 0, 0, 0
	}
	return float64(a.HotPotato) / n, float64(a.FartherRP) / n, float64(a.CloserRP) / n
}

// Analyze runs the study against the flagship IXP for the given set of
// (inferred) remote member ASNs.
func Analyze(w *netsim.World, flagship netsim.IXPID, remoteASNs []netsim.ASN, cfg Config) *Analysis {
	rng := rand.New(rand.NewSource(cfg.Seed))
	a := &Analysis{Flagship: flagship}

	remoteSet := make(map[netsim.ASN]bool, len(remoteASNs))
	for _, asn := range remoteASNs {
		remoteSet[asn] = true
	}
	members := w.MembersOf(flagship)
	// Index: AS -> set of IXPs it belongs to.
	ixpsOf := make(map[netsim.ASN]map[netsim.IXPID]bool)
	for _, asn := range w.ASNs {
		set := make(map[netsim.IXPID]bool)
		for _, m := range w.MembershipsOf(asn) {
			set[m.IXP] = true
		}
		ixpsOf[asn] = set
	}

	sortedMembers := append([]*netsim.Member(nil), members...)
	sort.Slice(sortedMembers, func(i, j int) bool { return sortedMembers[i].ASN < sortedMembers[j].ASN })

	for _, mr := range sortedMembers {
		if !remoteSet[mr.ASN] {
			continue
		}
		rLoc := w.Router(mr.Router).Loc
		for _, mx := range sortedMembers {
			if mx.ASN == mr.ASN {
				continue
			}
			if len(a.Pairs) >= cfg.MaxPairs {
				return finish(a)
			}
			// Closest other common IXP (besides the flagship).
			other, otherD, ok := closestCommonIXP(w, ixpsOf, mr.ASN, mx.ASN, flagship, rLoc)
			if !ok {
				continue
			}
			flagD := distToIXP(w, flagship, rLoc)
			closest, closestD := flagship, flagD
			if otherD < flagD {
				closest, closestD = other, otherD
			}
			if math.Abs(otherD-flagD) < 1 {
				// Indistinguishable exits (sub-km difference): any
				// choice is latency-optimal; skip the pair like the
				// paper's analysis skips ambiguous crossings.
				continue
			}
			// Policy: hot-potato with probability PolicyCompliance,
			// otherwise the member's BGP preferences pick the other
			// candidate.
			chosen := closest
			if rng.Float64() >= cfg.PolicyCompliance {
				if closest == flagship {
					chosen = other
				} else {
					chosen = flagship
				}
			}
			p := Pair{
				RemoteASN: mr.ASN, OtherASN: mx.ASN,
				ViaIXP: chosen, ClosestIXP: closest,
			}
			switch {
			case chosen == closest:
				p.Outcome = HotPotato
			case chosen == flagship:
				p.Outcome = FartherRP
				p.DeltaKm = flagD - closestD
			default:
				p.Outcome = CloserRPUnused
				p.DeltaKm = otherD - closestD
			}
			a.Pairs = append(a.Pairs, p)
		}
	}
	return finish(a)
}

func finish(a *Analysis) *Analysis {
	for _, p := range a.Pairs {
		switch p.Outcome {
		case HotPotato:
			a.HotPotato++
		case FartherRP:
			a.FartherRP++
		default:
			a.CloserRP++
		}
	}
	return a
}

// closestCommonIXP finds the common IXP (excluding the flagship) whose
// nearest facility is closest to the member location.
func closestCommonIXP(w *netsim.World, ixpsOf map[netsim.ASN]map[netsim.IXPID]bool, a, b netsim.ASN, flagship netsim.IXPID, loc geo.Point) (netsim.IXPID, float64, bool) {
	best := netsim.IXPID(-1)
	bestD := math.Inf(1)
	for ix := range ixpsOf[a] {
		if ix == flagship || !ixpsOf[b][ix] {
			continue
		}
		if d := distToIXP(w, ix, loc); d < bestD {
			best, bestD = ix, d
		}
	}
	return best, bestD, best >= 0
}

// distToIXP is the distance from loc to the IXP's nearest facility.
func distToIXP(w *netsim.World, ix netsim.IXPID, loc geo.Point) float64 {
	best := math.Inf(1)
	for _, p := range w.FacilityLocs(ix) {
		if d := geo.DistanceKm(loc, p); d < best {
			best = d
		}
	}
	return best
}
