package routing

import (
	"testing"

	"rpeer/internal/netsim"
)

var (
	cw  *netsim.World
	can *Analysis
)

func analysis(t testing.TB) (*netsim.World, *Analysis) {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
		flagship := w.LargestIXPs(1)[0]
		var remotes []netsim.ASN
		for _, m := range w.MembersOf(flagship.ID) {
			if m.Remote() {
				remotes = append(remotes, m.ASN)
			}
		}
		can = Analyze(w, flagship.ID, remotes, DefaultConfig())
	}
	return cw, can
}

func TestAnalyzeProducesPairs(t *testing.T) {
	_, a := analysis(t)
	if len(a.Pairs) < 1000 {
		t.Fatalf("only %d pairs analysed", len(a.Pairs))
	}
	if a.HotPotato+a.FartherRP+a.CloserRP != len(a.Pairs) {
		t.Fatal("outcome counts do not sum to pairs")
	}
}

func TestOutcomeFractionsShape(t *testing.T) {
	_, a := analysis(t)
	hot, farther, closer := a.Fractions()
	t.Logf("hot-potato=%.3f fartherRP=%.3f closerRP=%.3f (n=%d)", hot, farther, closer, len(a.Pairs))
	// Paper Section 6.4: 66% / 18% / 16%.
	if hot < 0.55 || hot > 0.78 {
		t.Errorf("hot-potato share = %.3f, want ~0.66", hot)
	}
	if farther < 0.05 || farther > 0.30 {
		t.Errorf("farther-RP share = %.3f, want ~0.18", farther)
	}
	if closer < 0.05 || closer > 0.30 {
		t.Errorf("closer-RP-unused share = %.3f, want ~0.16", closer)
	}
}

func TestNonCompliantPairsHavePositiveDelta(t *testing.T) {
	_, a := analysis(t)
	for _, p := range a.Pairs {
		if p.Outcome == HotPotato {
			if p.ViaIXP != p.ClosestIXP {
				t.Fatal("hot-potato pair crossed non-closest IXP")
			}
			continue
		}
		if p.DeltaKm <= 0 {
			t.Fatalf("non-compliant pair with delta %.1f km", p.DeltaKm)
		}
		if p.ViaIXP == p.ClosestIXP {
			t.Fatal("non-compliant pair crossed the closest IXP")
		}
	}
}

func TestDeterministic(t *testing.T) {
	w, a := analysis(t)
	flagship := w.LargestIXPs(1)[0]
	var remotes []netsim.ASN
	for _, m := range w.MembersOf(flagship.ID) {
		if m.Remote() {
			remotes = append(remotes, m.ASN)
		}
	}
	b := Analyze(w, flagship.ID, remotes, DefaultConfig())
	if len(a.Pairs) != len(b.Pairs) || a.HotPotato != b.HotPotato {
		t.Fatal("analysis not deterministic")
	}
}

func TestEmptyRemotes(t *testing.T) {
	w, _ := analysis(t)
	flagship := w.LargestIXPs(1)[0]
	a := Analyze(w, flagship.ID, nil, DefaultConfig())
	if len(a.Pairs) != 0 {
		t.Fatal("pairs produced without remote members")
	}
	hot, _, _ := a.Fractions()
	if hot != 0 {
		t.Fatal("fractions on empty analysis should be zero")
	}
}

func TestMaxPairsCap(t *testing.T) {
	w, _ := analysis(t)
	flagship := w.LargestIXPs(1)[0]
	var remotes []netsim.ASN
	for _, m := range w.MembersOf(flagship.ID) {
		if m.Remote() {
			remotes = append(remotes, m.ASN)
		}
	}
	cfg := DefaultConfig()
	cfg.MaxPairs = 100
	a := Analyze(w, flagship.ID, remotes, cfg)
	if len(a.Pairs) != 100 {
		t.Fatalf("cap not honoured: %d pairs", len(a.Pairs))
	}
}
