// Package par holds the one worker-pool primitive the cold-start
// fan-out phases share: an index-parallel loop whose tasks write only
// to slots owned by their index, so scheduling can never affect the
// output. netsim's world generation, tracesim's corpus generation and
// traix's hop scan / candidate settle all ride on it.
package par

import (
	"sync"
	"sync/atomic"
)

// chunk is the number of consecutive indexes a worker claims per
// cursor bump: large enough to amortize the atomic and keep writes
// cache-friendly, small enough to balance skewed per-index costs.
const chunk = 64

// Do runs f(i) for every i in [0, n) across a pool of workers
// (workers <= 1 runs inline). Every f(i) must touch only state owned
// by index i; Do returns when all calls have completed.
func Do(workers, n int, f func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(chunk)) - chunk
				if lo >= n {
					return
				}
				hi := lo + chunk
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					f(i)
				}
			}
		}()
	}
	wg.Wait()
}
