package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
)

// ErrInjected is the error returned by a FaultError / FaultShortWrite
// injection (wrapped with op detail).
var ErrInjected = errors.New("wal: injected fault")

// ErrCrashed is returned by every mutating operation after a
// FaultCrash injection fired: the simulated machine is down until
// PowerFail resets it.
var ErrCrashed = errors.New("wal: simulated machine crash")

// FaultMode selects what an injection does when its operation index is
// reached.
type FaultMode int

const (
	// FaultError fails the operation (nothing is applied) and lets the
	// process continue — a transient EIO.
	FaultError FaultMode = iota
	// FaultShortWrite applies only Partial bytes of a write, then
	// fails it — a disk-full or interrupted write.
	FaultShortWrite
	// FaultCrash applies Partial bytes of the operation (writes only),
	// then takes the machine down: the op and every later mutating op
	// return ErrCrashed until PowerFail.
	FaultCrash
)

// Fault is one injected failure.
type Fault struct {
	Mode FaultMode
	// Partial is the number of bytes of a write to apply before
	// failing (FaultShortWrite / FaultCrash).
	Partial int
	// Err overrides the returned error (FaultError / FaultShortWrite).
	Err error
}

// MemFS is an in-memory FS that models the durability semantics of a
// real disk for crash testing:
//
//   - file data is durable only up to the last Sync; a power failure
//     discards unsynced bytes (PowerFail can be told to keep a prefix
//     of them, modeling pages that hit the platter before the cord was
//     pulled — the torn-record case);
//   - directory entries (creates, renames, removes) are durable only
//     after SyncDir on the parent; a power failure rolls unsynced
//     entry operations back.
//
// Mutating operations (Create, Write, Sync, Rename, Remove, Truncate,
// SyncDir) are counted, and a Fault can be injected at any 1-based
// operation index — the lever the crash-point matrix tests turn.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	dirs    map[string]bool
	ops     int
	faults  map[int]Fault
	crashed bool

	// entry ops since the last SyncDir, newest last, for crash rollback.
	pending []entryOp
}

type memFile struct {
	data    []byte
	durable int // bytes guaranteed to survive PowerFail
}

type entryOp struct {
	kind     string // "create", "rename", "remove"
	path     string
	from     string   // rename source
	prev     *memFile // overwritten/removed file state, if any
	prevWas  bool
	fromPrev *memFile // rename: source file object
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool), faults: make(map[int]Fault)}
}

// InjectAt arms a fault at the n-th mutating operation from now
// (1-based). Multiple injections may be armed at distinct indexes.
func (m *MemFS) InjectAt(n int, f Fault) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.faults[m.ops+n] = f
}

// Ops returns the number of mutating operations performed so far.
func (m *MemFS) Ops() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether a FaultCrash has fired.
func (m *MemFS) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// PowerFail simulates the power cut that follows a crash: unsynced
// file bytes are discarded — except the first keepUnsynced bytes of
// each file's unsynced tail, modeling pages that reached the platter
// — and entry operations not covered by a SyncDir are rolled back.
// The machine then "reboots": the crashed flag and all armed faults
// are cleared, so recovery code can run against the surviving state.
func (m *MemFS) PowerFail(keepUnsynced int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Roll back entry ops newest-first.
	for i := len(m.pending) - 1; i >= 0; i-- {
		op := m.pending[i]
		switch op.kind {
		case "create":
			if op.prevWas {
				m.files[op.path] = op.prev
			} else {
				delete(m.files, op.path)
			}
		case "rename":
			if op.prevWas {
				m.files[op.path] = op.prev
			} else {
				delete(m.files, op.path)
			}
			m.files[op.from] = op.fromPrev
		case "remove":
			m.files[op.path] = op.prev
		}
	}
	m.pending = nil
	for _, f := range m.files {
		keep := f.durable + keepUnsynced
		if keep < len(f.data) {
			f.data = f.data[:keep]
		}
		if f.durable > len(f.data) {
			f.durable = len(f.data)
		}
	}
	m.crashed = false
	m.faults = make(map[int]Fault)
}

// step accounts one mutating operation and returns the fault to apply,
// if any. Caller holds the lock.
func (m *MemFS) step(op string) (Fault, bool, error) {
	if m.crashed {
		return Fault{}, false, fmt.Errorf("%w (%s)", ErrCrashed, op)
	}
	m.ops++
	f, ok := m.faults[m.ops]
	if ok {
		delete(m.faults, m.ops)
		if f.Mode == FaultCrash {
			m.crashed = true
		}
	}
	return f, ok, nil
}

func faultErr(f Fault, op string) error {
	if f.Err != nil {
		return f.Err
	}
	if f.Mode == FaultCrash {
		return fmt.Errorf("%w (%s)", ErrCrashed, op)
	}
	return fmt.Errorf("%w (%s)", ErrInjected, op)
}

// MkdirAll implements FS (not fault-counted: directory creation
// happens once at open, before any interesting crash window).
func (m *MemFS) MkdirAll(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dirs[dir] = true
	return nil
}

// Create implements FS.
func (m *MemFS) Create(path string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok, err := m.step("create " + path)
	if err != nil {
		return nil, err
	}
	if ok {
		return nil, faultErr(f, "create "+path)
	}
	prev, was := m.files[path]
	m.pending = append(m.pending, entryOp{kind: "create", path: path, prev: prev, prevWas: was})
	nf := &memFile{}
	m.files[path] = nf
	return &memHandle{fs: m, f: nf, path: path}, nil
}

// Open implements FS. Reads see the current (possibly unsynced) state,
// like a live filesystem.
func (m *MemFS) Open(path string) (io.ReadCloser, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, &os.PathError{Op: "open", Path: path, Err: os.ErrNotExist}
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for p := range m.files {
		if strings.HasPrefix(p, prefix) && !strings.Contains(p[len(prefix):], "/") {
			names = append(names, p[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldPath, newPath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok, err := m.step("rename " + oldPath)
	if err != nil {
		return err
	}
	if ok {
		return faultErr(f, "rename "+oldPath)
	}
	src, has := m.files[oldPath]
	if !has {
		return &os.PathError{Op: "rename", Path: oldPath, Err: os.ErrNotExist}
	}
	prev, was := m.files[newPath]
	m.pending = append(m.pending, entryOp{kind: "rename", path: newPath, from: oldPath, prev: prev, prevWas: was, fromPrev: src})
	m.files[newPath] = src
	delete(m.files, oldPath)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok, err := m.step("remove " + path)
	if err != nil {
		return err
	}
	if ok {
		return faultErr(f, "remove "+path)
	}
	prev, has := m.files[path]
	if !has {
		return &os.PathError{Op: "remove", Path: path, Err: os.ErrNotExist}
	}
	m.pending = append(m.pending, entryOp{kind: "remove", path: path, prev: prev})
	delete(m.files, path)
	return nil
}

// Truncate implements FS.
func (m *MemFS) Truncate(path string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok, err := m.step("truncate " + path)
	if err != nil {
		return err
	}
	if ok {
		return faultErr(f, "truncate "+path)
	}
	file, has := m.files[path]
	if !has {
		return &os.PathError{Op: "truncate", Path: path, Err: os.ErrNotExist}
	}
	if int(size) < len(file.data) {
		file.data = file.data[:size]
	}
	if file.durable > len(file.data) {
		file.durable = len(file.data)
	}
	return nil
}

// SyncDir implements FS: all pending entry operations become durable.
// (Entry durability is modeled filesystem-wide rather than per
// directory — the WAL keeps everything in one directory.)
func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok, err := m.step("syncdir " + dir)
	if err != nil {
		return err
	}
	if ok {
		return faultErr(f, "syncdir "+dir)
	}
	m.pending = nil
	return nil
}

// ReadFile returns a copy of a file's current content (test helper).
func (m *MemFS) ReadFile(path string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), f.data...), true
}

// WriteFile replaces a file's content and marks it durable (test
// helper for corruption injection).
func (m *MemFS) WriteFile(path string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[path] = &memFile{data: append([]byte(nil), data...), durable: len(data)}
}

type memHandle struct {
	fs     *MemFS
	f      *memFile
	path   string
	closed bool
}

// Write implements io.Writer with fault injection.
func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return 0, os.ErrClosed
	}
	f, ok, err := h.fs.step("write " + h.path)
	if err != nil {
		return 0, err
	}
	if ok {
		switch f.Mode {
		case FaultError:
			return 0, faultErr(f, "write "+h.path)
		case FaultShortWrite, FaultCrash:
			k := f.Partial
			if k > len(p) {
				k = len(p)
			}
			h.f.data = append(h.f.data, p[:k]...)
			return k, faultErr(f, "write "+h.path)
		}
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

// Sync implements File with fault injection.
func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return os.ErrClosed
	}
	f, ok, err := h.fs.step("sync " + h.path)
	if err != nil {
		return err
	}
	if ok {
		return faultErr(f, "sync "+h.path)
	}
	h.f.durable = len(h.f.data)
	return nil
}

// Close implements File (not fault-counted).
func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	h.closed = true
	return nil
}
