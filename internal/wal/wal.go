// Package wal is the append-only delta log underneath the persistent
// inference engine: length-prefixed, CRC32C-checksummed frames in
// append-only segment files, written through a pluggable filesystem
// seam (FS) so that crash behavior is testable, not hoped for.
//
// A segment file is
//
//	header frame | record frame | record frame | ...
//
// where every frame is
//
//	u32 payload length | u32 CRC32C(payload) | payload
//
// (little-endian). The header frame carries the segment magic, the
// format version, the owner's base-world fingerprint and the sequence
// number of the segment's first record; record payloads are opaque to
// this package (the rpi layer serializes one engine delta per record).
//
// Crash anatomy on scan: a frame that runs past the end of the file,
// or whose checksum fails on the very last bytes of the file, is a
// torn tail — the half-written victim of a crash mid-append — and is
// reported for truncate-and-continue recovery. A checksum failure with
// intact data after it is silent corruption and fails the scan with a
// typed *CorruptError naming the byte offset: recovery must stop,
// because records past the damage cannot be trusted to be the records
// that were written.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
	"time"
)

// Magic identifies a WAL segment file (8 bytes, versioned separately).
const Magic = "RPIWAL01"

// FormatVersion is the current frame/header format. Readers reject
// segments from a newer format instead of misparsing them.
const FormatVersion = 1

// MaxFrameLen bounds a single frame payload. A length prefix beyond it
// is treated as corruption outright (no real record is this large; an
// insane length is almost always a damaged length field).
const MaxFrameLen = 64 << 20

const frameHeader = 8 // u32 length + u32 crc

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SyncMode selects when appended records are fsynced.
type SyncMode int

const (
	// SyncEveryRecord fsyncs after every append: an append that
	// returned is durable. The zero delta loss mode.
	SyncEveryRecord SyncMode = iota
	// SyncEveryInterval fsyncs at most once per Policy.Interval (and on
	// Close). A crash can lose up to one interval of acknowledged
	// records.
	SyncEveryInterval
	// SyncNever leaves flushing to the OS (and Close). Benchmarks and
	// replay tooling only.
	SyncNever
)

// Policy is a sync mode plus its interval.
type Policy struct {
	Mode     SyncMode
	Interval time.Duration
}

// String renders the policy for logs and flags.
func (p Policy) String() string {
	switch p.Mode {
	case SyncEveryRecord:
		return "per-record"
	case SyncEveryInterval:
		return fmt.Sprintf("interval(%s)", p.Interval)
	default:
		return "off"
	}
}

// SegmentName renders the canonical file name of a segment whose
// first record carries sequence firstSeq+1. The fixed-width hex means
// lexical directory order equals sequence order.
func SegmentName(firstSeq uint64) string {
	return fmt.Sprintf("wal-%016x.log", firstSeq)
}

// ParseSegmentName extracts the FirstSeq a segment file name encodes,
// rejecting foreign files (snapshots, temp files) sharing the
// directory.
func ParseSegmentName(name string) (uint64, bool) {
	if len(name) != len("wal-")+16+len(".log") ||
		!strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[4:20], 16, 64)
	if err != nil || name != SegmentName(seq) {
		return 0, false
	}
	return seq, true
}

// CorruptError reports unrecoverable damage inside a segment: a frame
// whose checksum fails (or whose length field is insane) with intact
// data after it. Offset is the byte offset of the damaged frame.
type CorruptError struct {
	Path   string
	Offset int64
	Reason string
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("wal: corrupt segment %s at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Header is the decoded segment header frame.
type Header struct {
	Version     int
	Fingerprint uint64
	// FirstSeq is the sequence number the segment's first record will
	// carry (records are appended contiguously).
	FirstSeq uint64
}

func encodeHeader(h Header) []byte {
	b := make([]byte, 0, len(Magic)+2+8+8)
	b = append(b, Magic...)
	b = append(b, byte(h.Version), 0)
	b = binary.LittleEndian.AppendUint64(b, h.Fingerprint)
	b = binary.LittleEndian.AppendUint64(b, h.FirstSeq)
	return b
}

func decodeHeader(payload []byte) (Header, error) {
	if len(payload) != len(Magic)+2+8+8 || string(payload[:len(Magic)]) != Magic {
		return Header{}, errors.New("not a WAL segment header")
	}
	h := Header{Version: int(payload[len(Magic)])}
	if h.Version > FormatVersion {
		return Header{}, fmt.Errorf("segment format v%d is newer than supported v%d", h.Version, FormatVersion)
	}
	h.Fingerprint = binary.LittleEndian.Uint64(payload[len(Magic)+2:])
	h.FirstSeq = binary.LittleEndian.Uint64(payload[len(Magic)+10:])
	return h, nil
}

// Writer appends framed records to one segment file.
type Writer struct {
	fs       FS
	f        File
	path     string
	pol      Policy
	lastSync time.Time
	buf      []byte
	// unsynced counts appends since the last fsync (interval mode).
	unsynced int
}

// Create starts a new segment at path (truncating any leftover file of
// the same name — the caller guarantees, via its naming scheme, that a
// colliding file holds nothing that is not already recovered). The
// header frame is written and, unless the policy is SyncNever, synced
// along with the parent directory before Create returns.
func Create(fsys FS, dir, name string, h Header, pol Policy) (*Writer, error) {
	h.Version = FormatVersion
	path := dir + "/" + name
	f, err := fsys.Create(path)
	if err != nil {
		return nil, fmt.Errorf("wal: create segment: %w", err)
	}
	w := &Writer{fs: fsys, f: f, path: path, pol: pol, lastSync: time.Now()}
	if err := w.append(encodeHeader(h)); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: write segment header: %w", err)
	}
	if pol.Mode != SyncNever {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync segment header: %w", err)
		}
		if err := fsys.SyncDir(dir); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: sync segment directory: %w", err)
		}
	}
	return w, nil
}

// Path returns the segment's file path.
func (w *Writer) Path() string { return w.path }

// append frames and writes one payload (no sync-policy handling).
func (w *Writer) append(payload []byte) error {
	if len(payload) > MaxFrameLen {
		return fmt.Errorf("wal: record of %d bytes exceeds frame limit", len(payload))
	}
	w.buf = w.buf[:0]
	w.buf = binary.LittleEndian.AppendUint32(w.buf, uint32(len(payload)))
	w.buf = binary.LittleEndian.AppendUint32(w.buf, crc32.Checksum(payload, castagnoli))
	w.buf = append(w.buf, payload...)
	// One Write call per frame: a frame is either fully handed to the
	// OS or not written at all, so only a crash below the syscall (a
	// partially persisted page) can tear it.
	_, err := w.f.Write(w.buf)
	return err
}

// Append frames, writes and — per the sync policy — fsyncs one record.
// When Append returns nil under SyncEveryRecord, the record is
// durable.
func (w *Writer) Append(payload []byte) error {
	if err := w.append(payload); err != nil {
		return err
	}
	switch w.pol.Mode {
	case SyncEveryRecord:
		return w.f.Sync()
	case SyncEveryInterval:
		w.unsynced++
		if time.Since(w.lastSync) >= w.pol.Interval {
			return w.Sync()
		}
	}
	return nil
}

// Sync flushes outstanding appends to stable storage.
func (w *Writer) Sync() error {
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.lastSync = time.Now()
	w.unsynced = 0
	return nil
}

// Close syncs and closes the segment.
func (w *Writer) Close() error {
	syncErr := w.f.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// ScanInfo summarises one segment scan.
type ScanInfo struct {
	Header Header
	// Records is the number of valid record frames (header excluded).
	Records int
	// GoodLen is the byte offset just past the last valid frame — the
	// truncation point when the tail is torn.
	GoodLen int64
	// Torn reports a partial or checksum-failing frame at the very end
	// of the file: the signature of a crash mid-append. TornReason says
	// what was wrong with it.
	Torn       bool
	TornReason string
}

// Scan reads a segment, calling fn with every valid record payload (in
// order, with its byte offset). The payload slice is reused across
// calls; fn must not retain it.
//
// Damage classification: a frame cut off by the end of the file, or a
// checksum failure on the file's final bytes, is reported as a torn
// tail in the returned ScanInfo (scan succeeds, the caller truncates);
// a checksum failure with data after it returns a *CorruptError.
func Scan(fsys FS, path string, fn func(off int64, payload []byte) error) (ScanInfo, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return ScanInfo{}, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return ScanInfo{}, fmt.Errorf("wal: read segment %s: %w", path, err)
	}

	info := ScanInfo{}
	off := int64(0)
	n := int64(len(data))
	sawHeader := false
	for off < n {
		if off+frameHeader > n {
			info.Torn, info.TornReason = true, "partial frame header"
			break
		}
		length := int64(binary.LittleEndian.Uint32(data[off:]))
		sum := binary.LittleEndian.Uint32(data[off+4:])
		if length > MaxFrameLen {
			// An insane length is a damaged length field, not a huge
			// record; there is no way to find the next frame boundary.
			return info, &CorruptError{Path: path, Offset: off, Reason: fmt.Sprintf("frame length %d exceeds limit", length)}
		}
		end := off + frameHeader + length
		if end > n {
			info.Torn, info.TornReason = true, "frame runs past end of file"
			break
		}
		payload := data[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			if end == n {
				// The final bytes of the file: indistinguishable from a
				// torn append whose tail pages never hit the platter.
				info.Torn, info.TornReason = true, "checksum mismatch on final frame"
				break
			}
			return info, &CorruptError{Path: path, Offset: off, Reason: "checksum mismatch"}
		}
		if !sawHeader {
			h, err := decodeHeader(payload)
			if err != nil {
				return info, &CorruptError{Path: path, Offset: off, Reason: err.Error()}
			}
			info.Header = h
			sawHeader = true
		} else {
			if fn != nil {
				if err := fn(off, payload); err != nil {
					return info, err
				}
			}
			info.Records++
		}
		off = end
		info.GoodLen = end
	}
	if !sawHeader && !info.Torn {
		// Zero-length file: a segment created but never header-written.
		info.Torn, info.TornReason = true, "empty segment"
	}
	return info, nil
}
