package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the writable half of the filesystem seam: what the WAL
// writer and the snapshot publisher need from an open file.
type File interface {
	io.Writer
	// Sync flushes written data to stable storage. Until it returns,
	// nothing written since the previous Sync is guaranteed to survive
	// a crash.
	Sync() error
	Close() error
}

// FS is the filesystem seam every durable write in the system goes
// through. Production code uses OS(); the fault-injection tests swap
// in a MemFS that models the durability semantics of a real disk
// (unsynced data and unsynced directory entries are lost on power
// failure) and can fail, short-write or "crash the machine" at any
// chosen operation.
type FS interface {
	MkdirAll(dir string) error
	// Create opens path for writing, truncating any existing file.
	Create(path string) (File, error)
	Open(path string) (io.ReadCloser, error)
	// ReadDir lists the file names (not paths) inside dir, sorted.
	ReadDir(dir string) ([]string, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	Truncate(path string, size int64) error
	// SyncDir flushes the directory entries of dir: until it returns,
	// files created in (or renamed into) dir may not survive a crash.
	SyncDir(dir string) error
}

// OS returns the real-filesystem implementation of the seam.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(filepath.Clean(dir))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
