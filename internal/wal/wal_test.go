package wal

import (
	"errors"
	"fmt"
	"testing"
)

func collect(t *testing.T, fsys FS, path string) (ScanInfo, [][]byte) {
	t.Helper()
	var got [][]byte
	info, err := Scan(fsys, path, func(_ int64, p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	return info, got
}

func TestWriterScanRoundTrip(t *testing.T) {
	fsys := NewMemFS()
	if err := fsys.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	w, err := Create(fsys, "d", "wal-1.log", Header{Fingerprint: 42, FirstSeq: 7}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 10; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	info, got := collect(t, fsys, "d/wal-1.log")
	if info.Header.Fingerprint != 42 || info.Header.FirstSeq != 7 || info.Header.Version != FormatVersion {
		t.Fatalf("header = %+v", info.Header)
	}
	if info.Torn || info.Records != 10 || len(got) != 10 {
		t.Fatalf("info = %+v, %d payloads", info, len(got))
	}
	for i := range want {
		if string(got[i]) != string(want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestTornTailAtEveryByte cuts the segment at every possible byte
// boundary and verifies the scan classifies the damage as a torn tail
// (never corruption), truncating to a whole-record prefix.
func TestTornTailAtEveryByte(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "d", "wal-1.log", Header{}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, _ := fsys.ReadFile("d/wal-1.log")
	fullInfo, _ := collect(t, fsys, "d/wal-1.log")

	// Whole-frame boundaries at which a cut leaves no torn frame.
	clean := map[int]bool{0: true, len(full): true}
	boundary := 0
	for _, frameLen := range frameLens(full) {
		boundary += frameLen
		clean[boundary] = true
	}

	for cut := 0; cut < len(full); cut++ {
		fsys.WriteFile("d/cut.log", full[:cut])
		info, err := Scan(fsys, "d/cut.log", nil)
		if err != nil {
			t.Fatalf("cut at %d: unexpected error %v", cut, err)
		}
		if !info.Torn && !clean[cut] {
			t.Fatalf("cut at %d: not reported torn", cut)
		}
		if info.GoodLen > int64(cut) {
			t.Fatalf("cut at %d: GoodLen %d past the cut", cut, info.GoodLen)
		}
		if !clean[int(info.GoodLen)] {
			t.Fatalf("cut at %d: GoodLen %d is not a frame boundary", cut, info.GoodLen)
		}
		if info.Records > fullInfo.Records {
			t.Fatalf("cut at %d: %d records from a shorter file", cut, info.Records)
		}
	}
}

// frameLens parses the frame lengths out of a well-formed segment.
func frameLens(data []byte) []int {
	var out []int
	for off := 0; off+frameHeader <= len(data); {
		l := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		out = append(out, frameHeader+l)
		off += frameHeader + l
	}
	return out
}

// TestInteriorCorruptionDetected flips one byte in every interior
// record and expects a typed CorruptError carrying the frame offset.
func TestInteriorCorruptionDetected(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "d", "wal-1.log", Header{}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append([]byte(fmt.Sprintf("interior-payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, _ := fsys.ReadFile("d/wal-1.log")
	lens := frameLens(full)
	lastFrameStart := len(full) - lens[len(lens)-1]

	// Frame-header bytes (length + crc fields) of each frame: a flip
	// there is detected, but a damaged length field can be
	// indistinguishable from a torn tail (the frame seems to run past
	// EOF) — the classic WAL ambiguity. Payload bytes must always
	// produce a typed CorruptError with the frame's offset.
	header := make(map[int]bool)
	off := 0
	starts := []int{}
	for _, l := range lens {
		starts = append(starts, off)
		for i := 0; i < frameHeader; i++ {
			header[off+i] = true
		}
		off += l
	}
	frameStart := func(pos int) int64 {
		s := 0
		for _, st := range starts {
			if st <= pos {
				s = st
			}
		}
		return int64(s)
	}

	for pos := 0; pos < lastFrameStart; pos++ {
		damaged := append([]byte(nil), full...)
		damaged[pos] ^= 0xff
		fsys.WriteFile("d/bad.log", damaged)
		info, err := Scan(fsys, "d/bad.log", nil)
		var ce *CorruptError
		switch {
		case errors.As(err, &ce):
			if ce.Offset != frameStart(pos) {
				t.Fatalf("flip at %d: offset %d, want frame start %d", pos, ce.Offset, frameStart(pos))
			}
		case err == nil && header[pos] && info.Torn:
			// A flipped length field made the frame appear to run past
			// EOF: reported as damage (torn), never silently accepted.
		default:
			t.Fatalf("flip at %d: err=%v info=%+v, want CorruptError or torn", pos, err, info)
		}
		if !header[pos] {
			if !errors.As(err, &ce) {
				t.Fatalf("payload flip at %d: err = %v, want CorruptError", pos, err)
			}
		}
	}

	// Damage inside the final frame is a torn tail, not corruption.
	damaged := append([]byte(nil), full...)
	damaged[len(full)-1] ^= 0xff
	fsys.WriteFile("d/tail.log", damaged)
	info, err := Scan(fsys, "d/tail.log", nil)
	if err != nil || !info.Torn {
		t.Fatalf("tail flip: err=%v torn=%v, want torn tail", err, info.Torn)
	}
	if info.Records != 3 {
		t.Fatalf("tail flip: %d records survive, want 3", info.Records)
	}
}

// TestPowerFailDurability pins the MemFS crash model: synced bytes and
// syncdir-covered entries survive, everything else is lost or rolled
// back.
func TestPowerFailDurability(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "d", "wal-1.log", Header{}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("durable")); err != nil { // per-record sync
		t.Fatal(err)
	}
	// Switch to manual control: append without syncing.
	w.pol.Mode = SyncNever
	if err := w.Append([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	durableLen := int64(0)
	{
		info, _ := collect(t, fsys, "d/wal-1.log")
		if info.Records != 2 {
			t.Fatalf("pre-crash records = %d", info.Records)
		}
		_ = durableLen
	}
	fsys.PowerFail(0)
	info, _ := collect(t, fsys, "d/wal-1.log")
	if info.Records != 1 || info.Torn {
		t.Fatalf("post-crash info = %+v, want exactly the synced record", info)
	}

	// A torn tail: keep 5 unsynced bytes of the next append.
	w2, err := Create(fsys, "d", "wal-2.log", Header{}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	w2.pol.Mode = SyncNever
	if err := w2.Append([]byte("another-record")); err != nil {
		t.Fatal(err)
	}
	fsys.PowerFail(5)
	info, err = Scan(fsys, "d/wal-2.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Torn || info.Records != 0 {
		t.Fatalf("torn-tail info = %+v, want torn with 0 records", info)
	}

	// Rename not covered by SyncDir rolls back.
	fsys.WriteFile("d/tmp", []byte("x"))
	if err := fsys.Rename("d/tmp", "d/published"); err != nil {
		t.Fatal(err)
	}
	fsys.PowerFail(0)
	if _, ok := fsys.ReadFile("d/published"); ok {
		t.Fatal("unsynced rename survived the crash")
	}
	if _, ok := fsys.ReadFile("d/tmp"); !ok {
		t.Fatal("rename rollback lost the source file")
	}

	// Rename covered by SyncDir survives.
	fsys.WriteFile("d/tmp2", []byte("y"))
	if err := fsys.Rename("d/tmp2", "d/published2"); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	fsys.PowerFail(0)
	if _, ok := fsys.ReadFile("d/published2"); !ok {
		t.Fatal("synced rename did not survive the crash")
	}
}

// TestInjectedFaults exercises the three fault modes.
func TestInjectedFaults(t *testing.T) {
	fsys := NewMemFS()
	w, err := Create(fsys, "d", "wal-1.log", Header{}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}

	// FaultError on the next write: append fails, nothing applied.
	before, _ := fsys.ReadFile("d/wal-1.log")
	fsys.InjectAt(1, Fault{Mode: FaultError})
	if err := w.Append([]byte("rejected")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	after, _ := fsys.ReadFile("d/wal-1.log")
	if len(after) != len(before) {
		t.Fatal("failed write left bytes behind")
	}

	// FaultShortWrite: half the frame lands, then the error.
	fsys.InjectAt(1, Fault{Mode: FaultShortWrite, Partial: 6})
	if err := w.Append([]byte("short-write-victim")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	info, err := Scan(fsys, "d/wal-1.log", nil)
	if err != nil || !info.Torn {
		t.Fatalf("short write: err=%v info=%+v, want torn tail", err, info)
	}

	// FaultCrash on a sync: machine goes down, every later op fails.
	fsys2 := NewMemFS()
	w2, err := Create(fsys2, "d", "wal-1.log", Header{}, Policy{Mode: SyncEveryRecord})
	if err != nil {
		t.Fatal(err)
	}
	fsys2.InjectAt(2, Fault{Mode: FaultCrash}) // write succeeds, sync crashes
	if err := w2.Append([]byte("doomed")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("err = %v, want ErrCrashed", err)
	}
	if err := w2.Append([]byte("post-crash")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash append err = %v, want ErrCrashed", err)
	}
	if !fsys2.Crashed() {
		t.Fatal("fs not marked crashed")
	}
	fsys2.PowerFail(0)
	info, err = Scan(fsys2, "d/wal-1.log", nil)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 {
		t.Fatalf("unsynced record survived the crash: %+v", info)
	}
}
