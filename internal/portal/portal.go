// Package portal implements the web service of the paper's Section 9
// ("Prototype and Portal"): an HTTP API publishing remote peering
// inference snapshots per IXP, with the member-level verdicts and the
// geographic footprint data the public portal visualises.
package portal

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"time"

	"rpeer/internal/core"
	"rpeer/internal/exp"
)

// Server serves inference snapshots.
type Server struct {
	env *exp.Env
	mux *http.ServeMux
	// Now is injected for testability; defaults to time.Now.
	Now func() time.Time
}

// New builds a server over an assembled experiment environment.
func New(env *exp.Env) *Server {
	s := &Server{env: env, mux: http.NewServeMux(), Now: time.Now}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	s.mux.HandleFunc("GET /api/ixps", s.handleIXPs)
	s.mux.HandleFunc("GET /api/ixps/{name}", s.handleIXP)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok", "time": s.Now().UTC().Format(time.RFC3339)})
}

// Summary is the headline snapshot.
type Summary struct {
	GeneratedAt string  `json:"generated_at"`
	IXPs        int     `json:"ixps"`
	Interfaces  int     `json:"interfaces"`
	Local       int     `json:"local"`
	Remote      int     `json:"remote"`
	Unknown     int     `json:"unknown"`
	RemoteShare float64 `json:"remote_share"`
}

func (s *Server) summary() Summary {
	sum := Summary{GeneratedAt: s.Now().UTC().Format(time.RFC3339)}
	names := make(map[string]bool)
	for _, inf := range s.env.Report.Inferences {
		names[inf.IXP] = true
		sum.Interfaces++
		switch inf.Class {
		case core.ClassLocal:
			sum.Local++
		case core.ClassRemote:
			sum.Remote++
		default:
			sum.Unknown++
		}
	}
	sum.IXPs = len(names)
	if d := sum.Local + sum.Remote; d > 0 {
		sum.RemoteShare = float64(sum.Remote) / float64(d)
	}
	return sum
}

func (s *Server) handleSummary(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.summary())
}

// IXPEntry is one row of the /api/ixps listing.
type IXPEntry struct {
	Name        string  `json:"name"`
	Members     int     `json:"members"`
	Local       int     `json:"local"`
	Remote      int     `json:"remote"`
	Unknown     int     `json:"unknown"`
	RemoteShare float64 `json:"remote_share"`
	WideArea    bool    `json:"wide_area"`
	Facilities  int     `json:"facilities"`
}

func (s *Server) ixpEntries() []IXPEntry {
	byName := make(map[string]*IXPEntry)
	for _, inf := range s.env.Report.Inferences {
		e := byName[inf.IXP]
		if e == nil {
			e = &IXPEntry{Name: inf.IXP}
			if ix := s.env.IXPByName(inf.IXP); ix != nil {
				e.WideArea = ix.WideArea
				e.Facilities = len(ix.Facilities)
			}
			byName[inf.IXP] = e
		}
		e.Members++
		switch inf.Class {
		case core.ClassLocal:
			e.Local++
		case core.ClassRemote:
			e.Remote++
		default:
			e.Unknown++
		}
	}
	var out []IXPEntry
	for _, e := range byName {
		if d := e.Local + e.Remote; d > 0 {
			e.RemoteShare = float64(e.Remote) / float64(d)
		}
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Members != out[j].Members {
			return out[i].Members > out[j].Members
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func (s *Server) handleIXPs(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.ixpEntries())
}

// MemberVerdict is one member row of an IXP detail page.
type MemberVerdict struct {
	Iface    string  `json:"iface"`
	ASN      uint32  `json:"asn"`
	Class    string  `json:"class"`
	Step     string  `json:"step"`
	RTTMinMs float64 `json:"rtt_min_ms,omitempty"`
}

// IXPDetail is the /api/ixps/{name} payload.
type IXPDetail struct {
	IXPEntry
	PeeringLAN string          `json:"peering_lan,omitempty"`
	Members    []MemberVerdict `json:"member_verdicts"`
}

func (s *Server) handleIXP(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var detail IXPDetail
	found := false
	for _, e := range s.ixpEntries() {
		if e.Name == name {
			detail.IXPEntry = e
			found = true
			break
		}
	}
	if !found {
		http.Error(w, fmt.Sprintf("unknown IXP %q", name), http.StatusNotFound)
		return
	}
	if ix := s.env.IXPByName(name); ix != nil {
		detail.PeeringLAN = ix.PeeringLAN.String()
	}
	for _, inf := range s.env.Report.Inferences {
		if inf.IXP != name {
			continue
		}
		mv := MemberVerdict{
			Iface: inf.Iface.String(), ASN: uint32(inf.ASN),
			Class: inf.Class.String(), Step: inf.Step.String(),
		}
		if inf.HasRTT() {
			mv.RTTMinMs = inf.RTTMinMs
		}
		detail.Members = append(detail.Members, mv)
	}
	sort.Slice(detail.Members, func(i, j int) bool { return detail.Members[i].Iface < detail.Members[j].Iface })
	s.writeJSON(w, detail)
}
