package portal

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"rpeer/internal/exp"
)

var cenv *exp.Env

func server(t testing.TB) *Server {
	t.Helper()
	if cenv == nil {
		e, err := exp.NewEnv(1)
		if err != nil {
			t.Fatal(err)
		}
		cenv = e
	}
	s := New(cenv)
	s.Now = func() time.Time { return time.Date(2018, 4, 9, 12, 0, 0, 0, time.UTC) }
	return s
}

func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	return rr
}

func TestHealthz(t *testing.T) {
	rr := get(t, server(t), "/healthz")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rr.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Errorf("status field = %q", body["status"])
	}
	if body["time"] != "2018-04-09T12:00:00Z" {
		t.Errorf("time field = %q (clock injection broken)", body["time"])
	}
}

func TestSummary(t *testing.T) {
	rr := get(t, server(t), "/api/summary")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var sum Summary
	if err := json.Unmarshal(rr.Body.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Interfaces < 5000 {
		t.Errorf("interfaces = %d, want thousands", sum.Interfaces)
	}
	if sum.RemoteShare < 0.15 || sum.RemoteShare > 0.45 {
		t.Errorf("remote share = %.3f, want ~0.28", sum.RemoteShare)
	}
	if sum.Local+sum.Remote+sum.Unknown != sum.Interfaces {
		t.Error("summary counts inconsistent")
	}
}

func TestIXPList(t *testing.T) {
	rr := get(t, server(t), "/api/ixps")
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d", rr.Code)
	}
	var list []IXPEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	if len(list) < 30 {
		t.Fatalf("ixps = %d", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i].Members > list[i-1].Members {
			t.Fatal("list not sorted by size")
		}
	}
}

func TestIXPDetail(t *testing.T) {
	s := server(t)
	rr := get(t, s, "/api/ixps")
	var list []IXPEntry
	if err := json.Unmarshal(rr.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	name := list[0].Name
	rr = get(t, s, "/api/ixps/"+name)
	if rr.Code != http.StatusOK {
		t.Fatalf("status = %d body=%s", rr.Code, rr.Body.String())
	}
	var detail IXPDetail
	if err := json.Unmarshal(rr.Body.Bytes(), &detail); err != nil {
		t.Fatal(err)
	}
	if detail.Name != name || len(detail.Members) != detail.IXPEntry.Members {
		t.Errorf("detail inconsistent: %s members=%d rows=%d", detail.Name, detail.IXPEntry.Members, len(detail.Members))
	}
	if detail.PeeringLAN == "" {
		t.Error("missing peering LAN")
	}
	seen := map[string]bool{}
	for _, m := range detail.Members {
		if m.Class != "local" && m.Class != "remote" && m.Class != "unknown" {
			t.Fatalf("bad class %q", m.Class)
		}
		if seen[m.Iface] {
			t.Fatalf("duplicate iface %s", m.Iface)
		}
		seen[m.Iface] = true
	}
}

func TestIXPNotFound(t *testing.T) {
	rr := get(t, server(t), "/api/ixps/Nowhere-IX")
	if rr.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rr.Code)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	s := server(t)
	req := httptest.NewRequest(http.MethodPost, "/api/summary", nil)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rr.Code)
	}
}
