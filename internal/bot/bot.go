// Package bot is the fleet-scale load generator for the serving plane:
// it drives N tenants × many mixed workers (full-report readers, cheap
// per-IXP readers, delta appliers, SSE streamers) against a serving
// host over plain HTTP, and reports per-tenant, per-class counters and
// latency quantiles — the p50/p99-under-load numbers the SLO benchmark
// records.
//
// The bot speaks only the public wire surface (it works against an
// in-process httptest server or a remote rpi-serve -multi), and it
// classifies every response the way an operator would: 200 admitted,
// 503 shed (admission or quarantine), 400/422 rejected (a delta that
// lost a validation race), 499/timeouts abandoned. Shedding is load
// working as designed, so it is counted, not failed.
//
// Appliers keep each tenant's world bounded no matter how long the run
// is: every forward churn delta is followed by its inverse, the same
// discipline as the chaos harness.
package bot

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"rpeer/pkg/rpi"
	"rpeer/pkg/rpi/serve"
)

// Config tunes one load run.
type Config struct {
	// BaseURL is the serving host ("http://127.0.0.1:8090").
	BaseURL string
	// Tenants are the tenant names to drive. A single empty name drives
	// the legacy single-tenant routes instead of /v1/t/{tenant}.
	Tenants []string
	// Per-tenant worker populations.
	Readers, Appliers, Streamers int
	// Duration bounds the run (the context can end it earlier).
	Duration time.Duration
	// ChurnFrac sizes each applier delta (default 0.02 of memberships).
	ChurnFrac float64
	// Inputs returns a tenant's *current* engine inputs, used to build
	// valid churn deltas (and to pick an IXP for cheap reads). The bot
	// serializes calls per tenant. Nil starves the appliers and demotes
	// readers to full reports only.
	Inputs func(tenant string) (rpi.Inputs, error)
	// Logger receives progress lines (default log.Default()).
	Logger *log.Logger
}

// ClassStats is one (tenant, class) outcome: counters plus latency
// quantiles over admitted requests.
type ClassStats struct {
	Requests uint64  `json:"requests"`
	Admitted uint64  `json:"admitted"`
	Shed     uint64  `json:"shed"`
	Rejected uint64  `json:"rejected,omitempty"`
	Errors   uint64  `json:"errors,omitempty"`
	P50Ms    float64 `json:"p50_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MeanMs   float64 `json:"mean_ms"`
}

// ShedPct is the fraction of requests shed, in percent.
func (c ClassStats) ShedPct() float64 {
	if c.Requests == 0 {
		return 0
	}
	return 100 * float64(c.Shed) / float64(c.Requests)
}

// Report is one run's outcome: per tenant, per class.
type Report struct {
	Duration time.Duration                   `json:"duration_ns"`
	Tenants  map[string]map[string]ClassStats `json:"tenants"`
	// StreamEvents counts SSE update events received across all
	// streams, per tenant.
	StreamEvents map[string]uint64 `json:"stream_events,omitempty"`
	// BadStatus records the first response that violated the protocol
	// (a status outside the allowed set), empty on a clean run.
	BadStatus string `json:"bad_status,omitempty"`
}

// collector accumulates one (tenant, class).
type collector struct {
	requests, admitted, shed, rejected, errs atomic.Uint64
	hist                                     hist
}

func (c *collector) observe(status int, d time.Duration) {
	c.requests.Add(1)
	switch {
	case status >= 200 && status < 300:
		c.admitted.Add(1)
		c.hist.observe(d)
	case status == http.StatusServiceUnavailable:
		c.shed.Add(1)
	case status == http.StatusBadRequest || status == http.StatusUnprocessableEntity:
		c.rejected.Add(1)
	case status == serve.StatusClientClosedRequest || status == 0: // 0: client-side error/timeout
		c.errs.Add(1)
	default:
		c.errs.Add(1)
	}
}

func (c *collector) stats() ClassStats {
	return ClassStats{
		Requests: c.requests.Load(),
		Admitted: c.admitted.Load(),
		Shed:     c.shed.Load(),
		Rejected: c.rejected.Load(),
		Errors:   c.errs.Load(),
		P50Ms:    c.hist.quantileMs(0.50),
		P99Ms:    c.hist.quantileMs(0.99),
		MeanMs:   c.hist.meanMs(),
	}
}

// hist collects latency samples with bounded memory: past the cap it
// decimates (keeps every other sample, doubles the sampling stride),
// which preserves the distribution's shape for quantile estimation.
type hist struct {
	mu      sync.Mutex
	samples []time.Duration
	stride  int
	skip    int
}

const histCap = 1 << 16

func (h *hist) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.stride == 0 {
		h.stride = 1
	}
	h.skip++
	if h.skip < h.stride {
		return
	}
	h.skip = 0
	h.samples = append(h.samples, d)
	if len(h.samples) >= histCap {
		keep := h.samples[:0]
		for i := 0; i < len(h.samples); i += 2 {
			keep = append(keep, h.samples[i])
		}
		h.samples = keep
		h.stride *= 2
	}
}

func (h *hist) quantileMs(q float64) float64 {
	h.mu.Lock()
	sorted := append([]time.Duration(nil), h.samples...)
	h.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func (h *hist) meanMs() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range h.samples {
		sum += d
	}
	return float64(sum) / float64(len(h.samples)) / float64(time.Millisecond)
}

// run carries one execution's shared state.
type run struct {
	cfg     Config
	cols    map[string]map[string]*collector // tenant -> class -> collector
	events  map[string]*atomic.Uint64        // tenant -> SSE update events
	applyMu map[string]*sync.Mutex           // tenant -> delta-generation lock
	ixp     map[string]string                // tenant -> a known IXP for cheap reads
	bad     atomic.Value                     // string: first protocol violation
}

// Run drives the configured load until Duration (or ctx) ends and
// returns the per-tenant report. Worker counts are per tenant: 4
// tenants × 8 readers is 32 reader goroutines.
func Run(ctx context.Context, cfg Config) (*Report, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("bot: no tenants configured")
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 5 * time.Second
	}
	if cfg.ChurnFrac <= 0 {
		cfg.ChurnFrac = 0.02
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	r := &run{
		cfg:     cfg,
		cols:    make(map[string]map[string]*collector),
		events:  make(map[string]*atomic.Uint64),
		applyMu: make(map[string]*sync.Mutex),
		ixp:     make(map[string]string),
	}
	for _, tn := range cfg.Tenants {
		r.cols[tn] = map[string]*collector{
			"read": {}, "cheap": {}, "write": {}, "stream": {},
		}
		r.events[tn] = &atomic.Uint64{}
		r.applyMu[tn] = &sync.Mutex{}
		if cfg.Inputs != nil {
			in, err := cfg.Inputs(tn)
			if err != nil {
				return nil, fmt.Errorf("bot: tenant %q inputs: %w", tn, err)
			}
			for _, name := range in.Dataset.PrefixIXP {
				r.ixp[tn] = name
				break
			}
		}
	}

	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for ti, tn := range cfg.Tenants {
		for i := 0; i < cfg.Readers; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); r.reader(ctx, tn, i) }()
		}
		if cfg.Inputs != nil {
			for i := 0; i < cfg.Appliers; i++ {
				wg.Add(1)
				seed := int64(ti*1000 + i + 1)
				go func() { defer wg.Done(); r.applier(ctx, tn, seed) }()
			}
		}
		for i := 0; i < cfg.Streamers; i++ {
			wg.Add(1)
			go func() { defer wg.Done(); r.streamer(ctx, tn) }()
		}
	}
	wg.Wait()

	rep := &Report{
		Duration:     time.Since(start),
		Tenants:      make(map[string]map[string]ClassStats, len(cfg.Tenants)),
		StreamEvents: make(map[string]uint64, len(cfg.Tenants)),
	}
	for tn, classes := range r.cols {
		out := make(map[string]ClassStats, len(classes))
		for cl, col := range classes {
			out[cl] = col.stats()
		}
		rep.Tenants[tn] = out
		rep.StreamEvents[tn] = r.events[tn].Load()
	}
	if v, ok := r.bad.Load().(string); ok {
		rep.BadStatus = v
	}
	return rep, nil
}

// path joins the tenant route prefix: /v1/t/{tenant}/suffix, or the
// legacy /v1/suffix for the empty tenant name.
func (r *run) path(tenant, suffix string) string {
	if tenant == "" {
		return r.cfg.BaseURL + "/v1/" + suffix
	}
	return r.cfg.BaseURL + "/v1/t/" + tenant + "/" + suffix
}

// violation records a status outside the protocol's allowed set.
func (r *run) violation(method, url string, status int) {
	r.bad.CompareAndSwap(nil, fmt.Sprintf("%s %s -> %d", method, url, status))
}

func allowedRead(status int) bool {
	switch status {
	case http.StatusOK, http.StatusServiceUnavailable, serve.StatusClientClosedRequest, 0:
		return true
	}
	return false
}

// reader alternates full-report and cheap per-IXP reads.
func (r *run) reader(ctx context.Context, tenant string, id int) {
	cl := &http.Client{Timeout: 5 * time.Second}
	ixp := r.ixp[tenant]
	for i := id; ctx.Err() == nil; i++ {
		class, url := "read", r.path(tenant, "infer")
		if ixp != "" && i%2 == 1 {
			class, url = "cheap", r.path(tenant, "report/"+ixp)
		}
		t0 := time.Now()
		status := 0
		resp, err := cl.Get(url)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			status = resp.StatusCode
		}
		r.cols[tenant][class].observe(status, time.Since(t0))
		if !allowedRead(status) {
			r.violation("GET", url, status)
		}
	}
}

// applier posts a churn delta, then its inverse: the tenant's world
// wanders but always returns, so a run of any length leaves the state
// equivalent to its own input set (the byte-identity check the fleet
// harness performs afterwards rides on the engine's inputs, which
// track every applied delta either way).
func (r *run) applier(ctx context.Context, tenant string, seed int64) {
	cl := &http.Client{Timeout: 10 * time.Second}
	rng := rand.New(rand.NewSource(seed))
	mu := r.applyMu[tenant]
	for ctx.Err() == nil {
		mu.Lock()
		in, err := r.cfg.Inputs(tenant)
		if err != nil {
			mu.Unlock()
			time.Sleep(50 * time.Millisecond)
			continue
		}
		d := rpi.ChurnDelta(in, r.cfg.ChurnFrac, rng.Int63())
		inv := rpi.InvertDelta(in, d)
		ok := r.postDelta(cl, tenant, d)
		if ok {
			// Only a committed forward delta needs (and can accept) its
			// inverse.
			r.postDelta(cl, tenant, inv)
		}
		mu.Unlock()
		if !ok {
			time.Sleep(10 * time.Millisecond)
		}
	}
}

func (r *run) postDelta(cl *http.Client, tenant string, d rpi.Delta) bool {
	body, err := marshalWireDelta(d)
	if err != nil {
		r.bad.CompareAndSwap(nil, "marshal delta: "+err.Error())
		return false
	}
	url := r.path(tenant, "apply")
	t0 := time.Now()
	status := 0
	resp, err := cl.Post(url, "application/json", strings.NewReader(string(body)))
	if err == nil {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status = resp.StatusCode
	}
	r.cols[tenant]["write"].observe(status, time.Since(t0))
	switch status {
	case http.StatusOK:
		return true
	case http.StatusServiceUnavailable, http.StatusBadRequest,
		http.StatusUnprocessableEntity, serve.StatusClientClosedRequest, 0:
		return false
	}
	r.violation("POST", url, status)
	return false
}

// streamer holds an SSE subscription, counting update events; the
// "stream" latency is time-to-hello (subscription establishment under
// load). A dropped stream (reset, server close, shed) reconnects.
func (r *run) streamer(ctx context.Context, tenant string) {
	for ctx.Err() == nil {
		r.streamOnce(ctx, tenant)
	}
}

func (r *run) streamOnce(ctx context.Context, tenant string) {
	url := r.path(tenant, "stream")
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return
	}
	t0 := time.Now()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		r.cols[tenant]["stream"].observe(0, time.Since(t0))
		sleepCtx(ctx, 20*time.Millisecond)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		r.cols[tenant]["stream"].observe(resp.StatusCode, time.Since(t0))
		if !allowedRead(resp.StatusCode) {
			r.violation("GET", url, resp.StatusCode)
		}
		sleepCtx(ctx, 50*time.Millisecond) // shed: back off before resubscribing
		return
	}
	sc := bufio.NewScanner(resp.Body)
	hello := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "event: hello":
			r.cols[tenant]["stream"].observe(http.StatusOK, time.Since(t0))
			hello = true
		case line == "event: updates":
			r.events[tenant].Add(1)
		case line == "event: reset":
			return // engine swapped: resynchronize by resubscribing
		}
	}
	if !hello {
		r.cols[tenant]["stream"].observe(0, time.Since(t0))
	}
}

func sleepCtx(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// marshalWireDelta renders an rpi.Delta as the /v1/apply JSON body
// (joins and leaves; bot churn carries no RTT overrides).
func marshalWireDelta(d rpi.Delta) ([]byte, error) {
	wd := serve.WireDelta{}
	for _, j := range d.Joins {
		wd.Joins = append(wd.Joins, serve.WireJoin{
			IXP: j.IXP, Iface: j.Iface.String(), ASN: uint32(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range d.Leaves {
		wd.Leaves = append(wd.Leaves, serve.WireKey{IXP: l.IXP, Iface: l.Iface.String()})
	}
	return json.Marshal(wd)
}
