// Package ip4 holds the one conversion the columnar substrate leans
// on everywhere: IPv4 addresses as uint32 words. Interning tables,
// prefix planes, stream keys and sort fast paths all move addresses
// through this package so the byte-shift arithmetic exists exactly
// once.
package ip4

import "net/netip"

// U32 converts an IPv4 address to its integer form. The caller
// guarantees a.Is4() (every address this repository's simulators and
// datasets produce).
func U32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// Addr is the inverse of U32.
func Addr(u uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}
