package registry

import (
	"math/rand"
	"net/netip"
	"testing"

	"rpeer/internal/netsim"
)

var cachedWorld *netsim.World

func world(t testing.TB) *netsim.World {
	t.Helper()
	if cachedWorld == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
	}
	return cachedWorld
}

func TestBuildSnapshotCoverage(t *testing.T) {
	w := world(t)
	rng := rand.New(rand.NewSource(42))
	he := BuildSnapshot(w, SrcHE, DefaultNoise(), rng)
	pch := BuildSnapshot(w, SrcPCH, DefaultNoise(), rng)
	if len(he.Interfaces) <= len(pch.Interfaces) {
		t.Errorf("HE (%d ifaces) should cover far more than PCH (%d)", len(he.Interfaces), len(pch.Interfaces))
	}
	total := len(w.Members)
	if got := float64(len(he.Interfaces)) / float64(total); got < 0.85 || got > 1.0 {
		t.Errorf("HE coverage = %.2f, want ~0.94", got)
	}
	if got := float64(len(pch.Interfaces)) / float64(total); got < 0.1 || got > 0.35 {
		t.Errorf("PCH coverage = %.2f, want ~0.20", got)
	}
}

func TestWebsiteHasMinPort(t *testing.T) {
	w := world(t)
	rng := rand.New(rand.NewSource(42))
	web := BuildSnapshot(w, SrcWebsite, DefaultNoise(), rng)
	if len(web.MinPortMbps) == 0 {
		t.Fatal("website snapshot has no pricing data")
	}
	for name, min := range web.MinPortMbps {
		if min <= 0 {
			t.Errorf("IXP %s advertises min port %d", name, min)
		}
	}
	he := BuildSnapshot(w, SrcHE, DefaultNoise(), rng)
	if len(he.MinPortMbps) != 0 {
		t.Error("only websites provide pricing data")
	}
}

func TestMergePreferenceOrder(t *testing.T) {
	// Construct two tiny snapshots disagreeing on one interface: the
	// website record must win and the HE record must count as conflict.
	ip := mustAddr(t, "185.0.0.10")
	web := &Snapshot{Source: SrcWebsite, Interfaces: []InterfaceRecord{{IP: ip, ASN: 100, IXP: "X"}}}
	he := &Snapshot{Source: SrcHE, Interfaces: []InterfaceRecord{{IP: ip, ASN: 999, IXP: "X"}}}
	d := Merge([]*Snapshot{he, web}) // order of args must not matter
	if got := d.IfaceASN[ip]; got != 100 {
		t.Errorf("merged ASN = %d, want 100 (website wins)", got)
	}
	var heStats *SourceStats
	for i := range d.Stats {
		if d.Stats[i].Source == SrcHE {
			heStats = &d.Stats[i]
		}
	}
	if heStats == nil || heStats.ConflictInterfaces != 1 {
		t.Errorf("HE conflicts = %+v, want 1", heStats)
	}
}

func TestMergeTable1Shape(t *testing.T) {
	w := world(t)
	d := Build(w, DefaultNoise(), 42)
	if len(d.Stats) != int(numSources) {
		t.Fatalf("stats rows = %d, want %d", len(d.Stats), numSources)
	}
	// Conflict rates must stay in the sub-percent Table 1 regime.
	for _, st := range d.Stats[1:] { // skip websites (baseline)
		if st.Interfaces == 0 {
			continue
		}
		rate := float64(st.ConflictInterfaces) / float64(st.Interfaces)
		if rate > 0.02 {
			t.Errorf("%s conflict rate %.4f too high", st.Source, rate)
		}
	}
	// Merged coverage must be near-total: every ground-truth interface
	// should be known thanks to HE's 94% + the other sources.
	known := 0
	for _, m := range w.Members {
		if _, ok := d.IfaceASN[m.Iface]; ok {
			known++
		}
	}
	if frac := float64(known) / float64(len(w.Members)); frac < 0.95 {
		t.Errorf("merged interface coverage %.3f, want >= 0.95", frac)
	}
}

func TestMergedMostlyAccurate(t *testing.T) {
	w := world(t)
	d := Build(w, DefaultNoise(), 42)
	wrong := 0
	tot := 0
	for _, m := range w.Members {
		asn, ok := d.IfaceASN[m.Iface]
		if !ok {
			continue
		}
		tot++
		if asn != m.ASN {
			wrong++
		}
	}
	if rate := float64(wrong) / float64(tot); rate > 0.01 {
		t.Errorf("merged wrong-ASN rate = %.4f, want < 1%%", rate)
	}
}

func TestIXPOf(t *testing.T) {
	w := world(t)
	d := Build(w, DefaultNoise(), 42)
	ix := w.IXPs[0]
	m := w.MembersOf(ix.ID)[0]
	name, ok := d.IXPOf(m.Iface)
	if !ok {
		t.Fatalf("IXPOf(%v) found nothing", m.Iface)
	}
	if name != ix.Name {
		t.Errorf("IXPOf = %q, want %q", name, ix.Name)
	}
	if _, ok := d.IXPOf(mustAddr(t, "8.8.8.8")); ok {
		t.Error("IXPOf matched a non-IXP address")
	}
}

func TestMembersOfSortedAndComplete(t *testing.T) {
	w := world(t)
	d := Build(w, DefaultNoise(), 42)
	ix := w.LargestIXPs(1)[0]
	recs := d.MembersOf(ix.Name)
	if len(recs) < len(w.MembersOf(ix.ID))*9/10 {
		t.Errorf("only %d of %d members known", len(recs), len(w.MembersOf(ix.ID)))
	}
	for i := 1; i < len(recs); i++ {
		if !recs[i-1].IP.Less(recs[i].IP) {
			t.Fatal("MembersOf not sorted by IP")
		}
	}
}

func TestColoDBFig5Shape(t *testing.T) {
	w := world(t)
	db := BuildColo(w, DefaultColoNoise(), 42)

	var remoteNoData, remoteCommon, remoteTotal int
	var localNoCommon, localTotal int
	for _, ix := range w.IXPs {
		for _, m := range w.MembersOf(ix.ID) {
			common, has := db.CommonWithIXP(m.ASN, ix.Name)
			if m.Remote() {
				remoteTotal++
				if !has {
					remoteNoData++
				} else if len(common) > 0 {
					remoteCommon++
				}
			} else {
				localTotal++
				if has && len(common) == 0 {
					localNoCommon++
				}
			}
		}
	}
	// Fig 5: ~18% of remote peers without data; ~5% with one common
	// facility; locals almost always share a facility with the IXP.
	if frac := float64(remoteNoData) / float64(remoteTotal); frac < 0.08 || frac > 0.35 {
		t.Errorf("remote no-data fraction = %.2f, want ~0.18", frac)
	}
	if frac := float64(remoteCommon) / float64(remoteTotal); frac < 0.02 || frac > 0.30 {
		t.Errorf("remote common-facility fraction = %.2f, want ~0.05-0.20", frac)
	}
	if frac := float64(localNoCommon) / float64(localTotal); frac > 0.15 {
		t.Errorf("locals lacking a common facility = %.2f, want small", frac)
	}
}

func TestColoDBDeterministic(t *testing.T) {
	w := world(t)
	a := BuildColo(w, DefaultColoNoise(), 7)
	b := BuildColo(w, DefaultColoNoise(), 7)
	if len(a.ASFacilities) != len(b.ASFacilities) {
		t.Fatal("colo DB not deterministic")
	}
	for asn, fa := range a.ASFacilities {
		fb := b.ASFacilities[asn]
		if len(fa) != len(fb) {
			t.Fatalf("AS%d records differ", asn)
		}
		for i := range fa {
			if fa[i] != fb[i] {
				t.Fatalf("AS%d facility %d differs", asn, i)
			}
		}
	}
}

func mustAddr(t *testing.T, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
