package registry

import (
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
)

// IPMap performs longest-prefix IP-to-AS mapping, the analogue of the
// CAIDA Routeviews prefix2as dataset the paper uses for traceroute
// interpretation (Section 5.2, Step 5).
type IPMap struct {
	entries []ipMapEntry
}

type ipMapEntry struct {
	prefix netip.Prefix
	asn    netsim.ASN
}

// BuildIPMap compiles the map from the world's per-AS infrastructure
// prefixes. IXP peering LANs are deliberately not included: those
// addresses belong to the IXP's address space, not to member ASes.
func BuildIPMap(w *netsim.World) *IPMap {
	m := &IPMap{}
	for _, asn := range w.ASNs {
		for _, p := range w.ASPrefixes(asn) {
			m.entries = append(m.entries, ipMapEntry{p, asn})
		}
	}
	sort.Slice(m.entries, func(i, j int) bool {
		a, b := m.entries[i].prefix, m.entries[j].prefix
		if a.Addr() != b.Addr() {
			return a.Addr().Less(b.Addr())
		}
		return a.Bits() < b.Bits()
	})
	return m
}

// ASOf returns the AS originating the longest matching prefix for ip.
func (m *IPMap) ASOf(ip netip.Addr) (netsim.ASN, bool) {
	// The world's infrastructure prefixes never overlap, so the first
	// containing prefix is the answer. Binary search for the last entry
	// whose base address is <= ip, then check containment.
	i := sort.Search(len(m.entries), func(i int) bool {
		return ip.Less(m.entries[i].prefix.Addr())
	})
	for j := i - 1; j >= 0 && j >= i-2; j-- {
		if m.entries[j].prefix.Contains(ip) {
			return m.entries[j].asn, true
		}
	}
	return 0, false
}

// Len returns the number of mapped prefixes.
func (m *IPMap) Len() int { return len(m.entries) }
