package registry

import (
	"net/netip"
	"sort"

	"rpeer/internal/ip4"
	"rpeer/internal/netsim"
)

// IPMap performs longest-prefix IP-to-AS mapping, the analogue of the
// CAIDA Routeviews prefix2as dataset the paper uses for traceroute
// interpretation (Section 5.2, Step 5). Entries are columnar over the
// IPv4 integer domain: a lookup is one binary search over a []uint32
// with no netip comparisons on the hot path.
type IPMap struct {
	base []uint32 // masked prefix base addresses, ascending
	last []uint32 // inclusive last address per prefix
	asn  []netsim.ASN
}

// BuildIPMap compiles the map from the world's per-AS infrastructure
// prefixes. IXP peering LANs are deliberately not included: those
// addresses belong to the IXP's address space, not to member ASes.
func BuildIPMap(w *netsim.World) *IPMap {
	m := &IPMap{}
	for _, asn := range w.ASNs {
		for _, p := range w.ASPrefixes(asn) {
			base := ip4.U32(p.Masked().Addr())
			size := uint32(1) << (32 - p.Bits())
			m.base = append(m.base, base)
			m.last = append(m.last, base+size-1)
			m.asn = append(m.asn, asn)
		}
	}
	order := make([]int, len(m.base))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool { return m.base[order[i]] < m.base[order[j]] })
	base := make([]uint32, len(order))
	last := make([]uint32, len(order))
	asns := make([]netsim.ASN, len(order))
	for i, o := range order {
		base[i], last[i], asns[i] = m.base[o], m.last[o], m.asn[o]
	}
	m.base, m.last, m.asn = base, last, asns
	return m
}

// ASOf returns the AS originating the longest matching prefix for ip.
func (m *IPMap) ASOf(ip netip.Addr) (netsim.ASN, bool) {
	if !ip.Is4() {
		return 0, false
	}
	u := ip4.U32(ip)
	// The world's infrastructure prefixes never overlap, so the last
	// entry whose base is <= u decides.
	lo, hi := 0, len(m.base)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if m.base[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && u <= m.last[lo-1] {
		return m.asn[lo-1], true
	}
	return 0, false
}

// Len returns the number of mapped prefixes.
func (m *IPMap) Len() int { return len(m.base) }
