package registry

import (
	"runtime"
	"testing"
)

// TestBuildWorkersIdentical pins the registry fan-out: per-(source,
// IXP) streams make the merged dataset identical for every worker
// count.
func TestBuildWorkersIdentical(t *testing.T) {
	w := world(t)
	ref := BuildWorkers(w, DefaultNoise(), 42, 1)
	for _, workers := range []int{4, runtime.NumCPU()} {
		got := BuildWorkers(w, DefaultNoise(), 42, workers)
		if len(got.IfaceASN) != len(ref.IfaceASN) || len(got.PrefixIXP) != len(ref.PrefixIXP) {
			t.Fatalf("workers=%d: dataset sizes differ", workers)
		}
		for ip, asn := range ref.IfaceASN {
			if got.IfaceASN[ip] != asn {
				t.Fatalf("workers=%d: %v maps to AS%d, want AS%d", workers, ip, got.IfaceASN[ip], asn)
			}
		}
		for ip, name := range ref.IfaceIXP {
			if got.IfaceIXP[ip] != name {
				t.Fatalf("workers=%d: %v IXP differs", workers, ip)
			}
		}
		for k, v := range ref.Ports {
			if got.Ports[k] != v {
				t.Fatalf("workers=%d: port %v differs", workers, k)
			}
		}
		for i, st := range ref.Stats {
			if got.Stats[i] != st {
				t.Fatalf("workers=%d: stats row %d differs: %+v vs %+v", workers, i, got.Stats[i], st)
			}
		}
	}
}
