package registry

import (
	"math/rand"
	"sort"

	"rpeer/internal/netsim"
)

// ColoDB is the PDB/Inflect-style colocation database (Section 3.4):
// which facilities each AS and each IXP is present at. Like its
// real-world counterpart it is incomplete (ASes missing entirely,
// facilities missing from records) and noisy (spurious presence, most
// notoriously remote peers listing their port reseller's facility).
type ColoDB struct {
	// ASFacilities maps an AS to its recorded facilities. ASes absent
	// from the map have no colocation data at all.
	ASFacilities map[netsim.ASN][]netsim.FacilityID
	// IXPFacilities maps an IXP name to its recorded switch facilities.
	IXPFacilities map[string][]netsim.FacilityID
}

// ColoNoise controls colocation-data degradation, with defaults chosen
// to reproduce Fig 5: ~18% of remote peers without any data, ~5%
// showing one spurious IXP facility, locals essentially complete.
type ColoNoise struct {
	// MissingAS is the probability an AS has no colocation record.
	MissingAS float64
	// MissingASRemoteOnly is the extra missing probability for ASes
	// with no local membership anywhere (pure remotes are the ones that
	// never bothered filling PDB in).
	MissingASRemoteOnly float64
	// DropFacility is the per-facility omission probability inside a
	// record.
	DropFacility float64
	// ResellerArtifact is the probability a reseller customer lists the
	// reseller's POP facility as its own.
	ResellerArtifact float64
	// SpuriousFacility is the probability of one random bogus facility
	// in a record.
	SpuriousFacility float64
	// MissingIXPFacility is the per-facility omission probability for
	// IXP records (websites backfill most of these; Section 3.4).
	MissingIXPFacility float64
}

// DefaultColoNoise returns the Fig 5-calibrated noise rates.
func DefaultColoNoise() ColoNoise {
	return ColoNoise{
		MissingAS:           0.06,
		MissingASRemoteOnly: 0.16,
		DropFacility:        0.04,
		ResellerArtifact:    0.05,
		SpuriousFacility:    0.02,
		MissingIXPFacility:  0.02,
	}
}

// BuildColo projects the world's ground-truth colocation data into a
// noisy ColoDB.
func BuildColo(w *netsim.World, n ColoNoise, seed int64) *ColoDB {
	rng := rand.New(rand.NewSource(seed))
	db := &ColoDB{
		ASFacilities:  make(map[netsim.ASN][]netsim.FacilityID),
		IXPFacilities: make(map[string][]netsim.FacilityID),
	}
	for _, ix := range w.IXPs {
		var facs []netsim.FacilityID
		for _, f := range ix.Facilities {
			if rng.Float64() >= n.MissingIXPFacility {
				facs = append(facs, f)
			}
		}
		if len(facs) == 0 && len(ix.Facilities) > 0 {
			facs = append(facs, ix.Facilities[0])
		}
		db.IXPFacilities[ix.Name] = facs
	}

	for _, asn := range w.ASNs {
		as := w.AS(asn)
		miss := n.MissingAS
		hasLocal := false
		var resellers []netsim.ASN
		for _, m := range w.MembershipsOf(asn) {
			if m.Kind == netsim.ConnLocal {
				hasLocal = true
			}
			if m.Kind == netsim.ConnReseller && m.Reseller != 0 {
				resellers = append(resellers, m.Reseller)
			}
		}
		if !hasLocal && len(w.MembershipsOf(asn)) > 0 {
			miss += n.MissingASRemoteOnly
		}
		if rng.Float64() < miss {
			continue // AS entirely absent from PDB
		}
		var rec []netsim.FacilityID
		for _, f := range as.Facilities {
			if rng.Float64() >= n.DropFacility {
				rec = append(rec, f)
			}
		}
		// Reseller artefact: list the reseller's POP facility.
		if len(resellers) > 0 && rng.Float64() < n.ResellerArtifact {
			r := w.AS(resellers[rng.Intn(len(resellers))])
			if r != nil && len(r.ResellerPOPs) > 0 {
				rec = appendUniqueFac(rec, r.ResellerPOPs[rng.Intn(len(r.ResellerPOPs))])
			}
		}
		if rng.Float64() < n.SpuriousFacility && len(w.Facilities) > 0 {
			rec = appendUniqueFac(rec, w.Facilities[rng.Intn(len(w.Facilities))].ID)
		}
		if len(rec) == 0 && len(as.Facilities) == 0 {
			// ASes with no ground-truth presence legitimately appear
			// with an empty record only if they registered at all.
			if rng.Float64() < 0.5 {
				continue
			}
		}
		sort.Slice(rec, func(i, j int) bool { return rec[i] < rec[j] })
		db.ASFacilities[asn] = rec
	}
	return db
}

func appendUniqueFac(s []netsim.FacilityID, f netsim.FacilityID) []netsim.FacilityID {
	for _, x := range s {
		if x == f {
			return s
		}
	}
	return append(s, f)
}

// Facilities returns the AS's recorded facilities and whether the AS
// has any colocation data at all.
func (db *ColoDB) Facilities(asn netsim.ASN) ([]netsim.FacilityID, bool) {
	rec, ok := db.ASFacilities[asn]
	return rec, ok
}

// CommonWithIXP returns the facilities the AS record shares with the
// IXP record, and whether the AS has any colocation data at all.
func (db *ColoDB) CommonWithIXP(asn netsim.ASN, ixp string) (common []netsim.FacilityID, hasData bool) {
	rec, ok := db.ASFacilities[asn]
	if !ok {
		return nil, false
	}
	return netsim.CommonFacilities(rec, db.IXPFacilities[ixp]), true
}
