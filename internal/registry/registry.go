// Package registry models the IXP-related data sources the paper
// combines (Section 3.2): IXP websites (Euro-IX style machine-readable
// exports), Hurricane Electric, PeeringDB and Packet Clearing House,
// plus the PDB/Inflect colocation-facility database (Section 3.4).
//
// Each source is a noisy, incomplete projection of the ground truth in
// a netsim.World; Merge resolves conflicts with the paper's preference
// ordering (Websites > HE > PDB > PCH) and reports the per-source
// contribution and conflict statistics of Table 1.
package registry

import (
	"fmt"
	"math/rand"
	"net/netip"
	"runtime"
	"sort"
	"sync"

	"rpeer/internal/netsim"
	"rpeer/internal/rng"
)

// Source identifies an IXP data source.
type Source int

// Sources in decreasing trust order (the paper's conflict-resolution
// preference).
const (
	SrcWebsite Source = iota
	SrcHE
	SrcPDB
	SrcPCH
	numSources
)

// String implements fmt.Stringer.
func (s Source) String() string {
	switch s {
	case SrcWebsite:
		return "Websites"
	case SrcHE:
		return "HE"
	case SrcPDB:
		return "PDB"
	case SrcPCH:
		return "PCH"
	default:
		return fmt.Sprintf("Source(%d)", int(s))
	}
}

// PrefixRecord maps an IXP peering-LAN prefix to an IXP name.
type PrefixRecord struct {
	Prefix netip.Prefix
	IXP    string
}

// InterfaceRecord maps a peering-LAN address to the member AS holding
// it, within the named IXP.
type InterfaceRecord struct {
	IP  netip.Addr
	ASN netsim.ASN
	IXP string
}

// PortRecord reports the port capacity of a member at an IXP.
type PortRecord struct {
	IXP      string
	ASN      netsim.ASN
	PortMbps int
}

// Snapshot is one source's view of the IXP ecosystem.
type Snapshot struct {
	Source     Source
	Prefixes   []PrefixRecord
	Interfaces []InterfaceRecord
	Ports      []PortRecord
	// MinPortMbps is the minimum physical port capacity from the IXP's
	// pricing page (websites only).
	MinPortMbps map[string]int
}

// NoiseConfig controls how lossy each synthesized source is. All rates
// are probabilities in [0, 1].
type NoiseConfig struct {
	// Coverage is the probability that a ground-truth record appears in
	// the source at all.
	Coverage map[Source]float64
	// WrongASN is the probability that an interface record carries a
	// wrong AS (Table 1 conflict rates are a fraction of a percent).
	WrongASN map[Source]float64
	// PortCoverage and StalePort control port-capacity records: Website
	// data is authoritative; PDB entries may be missing or stale.
	PortCoverage map[Source]float64
	StalePort    map[Source]float64
	// WebsiteIXPFrac is the fraction of IXPs that publish
	// machine-readable member lists on their website.
	WebsiteIXPFrac float64
}

// DefaultNoise mirrors the orders of magnitude observed in Table 1:
// HE covers nearly everything, PDB most, PCH a fifth, and conflicting
// entries stay in the 0.1-0.4% range.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{
		Coverage: map[Source]float64{
			SrcWebsite: 1.0, // for IXPs that publish at all
			SrcHE:      0.94,
			SrcPDB:     0.78,
			SrcPCH:     0.20,
		},
		WrongASN: map[Source]float64{
			SrcWebsite: 0.0005,
			SrcHE:      0.0027,
			SrcPDB:     0.0028,
			SrcPCH:     0.0037,
		},
		PortCoverage: map[Source]float64{
			SrcWebsite: 0.97,
			SrcPDB:     0.80,
		},
		StalePort: map[Source]float64{
			SrcWebsite: 0.005,
			SrcPDB:     0.03,
		},
		WebsiteIXPFrac: 0.70,
	}
}

// BuildSnapshot projects the world into one source's snapshot.
// Randomness is drawn from rng, so snapshots are reproducible given a
// seeded generator.
func BuildSnapshot(w *netsim.World, src Source, n NoiseConfig, rng *rand.Rand) *Snapshot {
	s := &Snapshot{Source: src, MinPortMbps: make(map[string]int)}
	for _, ix := range w.IXPs {
		snapshotIXP(s, w, ix, src, n, rng)
	}
	return s
}

// snapshotIXP projects one IXP into a source snapshot, drawing from
// rng. The per-IXP record order is the ground-truth membership order.
func snapshotIXP(s *Snapshot, w *netsim.World, ix *netsim.IXP, src Source, n NoiseConfig, rng *rand.Rand) {
	cov := n.Coverage[src]
	wrong := n.WrongASN[src]
	portCov := n.PortCoverage[src]
	stale := n.StalePort[src]

	published := true
	if src == SrcWebsite {
		published = ix.ID < 10 || rng.Float64() < n.WebsiteIXPFrac
	}
	if !published {
		return
	}
	if rng.Float64() < cov {
		s.Prefixes = append(s.Prefixes, PrefixRecord{Prefix: ix.PeeringLAN, IXP: ix.Name})
	}
	if src == SrcWebsite {
		s.MinPortMbps[ix.Name] = ix.MinPortMbps
	}
	for _, m := range w.MembersOf(ix.ID) {
		if rng.Float64() >= cov {
			continue
		}
		asn := m.ASN
		if rng.Float64() < wrong {
			// Conflicting entry: attribute the interface to a random
			// other member of the same IXP (the typical real-world
			// artefact: stale reassignment).
			others := w.MembersOf(ix.ID)
			asn = others[rng.Intn(len(others))].ASN
		}
		s.Interfaces = append(s.Interfaces, InterfaceRecord{IP: m.Iface, ASN: asn, IXP: ix.Name})
		if portCov > 0 && rng.Float64() < portCov {
			p := m.PortMbps
			if rng.Float64() < stale {
				// Stale record: report the IXP's base physical port
				// instead of the member's true capacity.
				p = ix.MinPortMbps
			}
			s.Ports = append(s.Ports, PortRecord{IXP: ix.Name, ASN: m.ASN, PortMbps: p})
		}
	}
}

// SourceStats summarises one source's contribution to the merged
// dataset (one row of Table 1).
type SourceStats struct {
	Source             Source
	Prefixes           int // total prefixes contributed
	UniquePrefixes     int // prefixes no higher-preference source had
	ConflictPrefixes   int // prefixes disagreeing with a higher source
	Interfaces         int
	UniqueInterfaces   int
	ConflictInterfaces int
}

// Dataset is the merged, conflict-resolved IXP dataset the inference
// pipeline consumes.
type Dataset struct {
	// PrefixIXP maps each peering-LAN prefix to the IXP name.
	PrefixIXP map[netip.Prefix]string
	// IfaceASN maps each known IXP interface to its member AS.
	IfaceASN map[netip.Addr]netsim.ASN
	// IfaceIXP maps each known IXP interface to the IXP name.
	IfaceIXP map[netip.Addr]string
	// Ports maps (IXP name, ASN) to the reported port capacity.
	Ports map[PortKey]int
	// MinPort maps IXP name to the advertised minimum physical port
	// capacity (absent for IXPs without website pricing data).
	MinPort map[string]int
	// Stats holds the per-source Table 1 rows, in preference order.
	Stats []SourceStats
}

// PortKey identifies one membership in the Ports map.
type PortKey struct {
	IXP string
	ASN netsim.ASN
}

// Merge combines snapshots with the preference ordering
// Websites > HE > PDB > PCH, counting per-source contributions and
// conflicts (Table 1).
func Merge(snaps []*Snapshot) *Dataset {
	d := &Dataset{
		PrefixIXP: make(map[netip.Prefix]string),
		IfaceASN:  make(map[netip.Addr]netsim.ASN),
		IfaceIXP:  make(map[netip.Addr]string),
		Ports:     make(map[PortKey]int),
		MinPort:   make(map[string]int),
	}
	ordered := append([]*Snapshot(nil), snaps...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Source < ordered[j].Source })

	// Presize the merged maps to the largest single source: lower-
	// preference sources mostly re-cover the same records, so the
	// largest contributor approximates the final cardinality.
	maxIfaces, maxPrefixes, maxPorts := 0, 0, 0
	for _, s := range ordered {
		maxIfaces = max(maxIfaces, len(s.Interfaces))
		maxPrefixes = max(maxPrefixes, len(s.Prefixes))
		maxPorts = max(maxPorts, len(s.Ports))
	}
	d.PrefixIXP = make(map[netip.Prefix]string, maxPrefixes)
	d.IfaceASN = make(map[netip.Addr]netsim.ASN, maxIfaces)
	d.IfaceIXP = make(map[netip.Addr]string, maxIfaces)
	d.Ports = make(map[PortKey]int, maxPorts)

	for _, s := range ordered {
		st := SourceStats{Source: s.Source}
		for _, p := range s.Prefixes {
			st.Prefixes++
			if prev, ok := d.PrefixIXP[p.Prefix]; ok {
				if prev != p.IXP {
					st.ConflictPrefixes++
				}
				continue // higher-preference source wins
			}
			st.UniquePrefixes++
			d.PrefixIXP[p.Prefix] = p.IXP
		}
		for _, r := range s.Interfaces {
			st.Interfaces++
			if prev, ok := d.IfaceASN[r.IP]; ok {
				if prev != r.ASN {
					st.ConflictInterfaces++
				}
				continue
			}
			st.UniqueInterfaces++
			d.IfaceASN[r.IP] = r.ASN
			d.IfaceIXP[r.IP] = r.IXP
		}
		for _, p := range s.Ports {
			k := PortKey{p.IXP, p.ASN}
			if _, ok := d.Ports[k]; !ok {
				d.Ports[k] = p.PortMbps
			}
		}
		for name, min := range s.MinPortMbps {
			if _, ok := d.MinPort[name]; !ok {
				d.MinPort[name] = min
			}
		}
		d.Stats = append(d.Stats, st)
	}
	return d
}

// Clone returns a deep copy of the dataset's maps (Stats is copied
// shallowly; its rows are values). Long-lived consumers that mutate
// their view of the registry — the rpi engine absorbing membership
// deltas — clone first so the caller's dataset stays frozen.
func (d *Dataset) Clone() *Dataset {
	c := &Dataset{
		PrefixIXP: make(map[netip.Prefix]string, len(d.PrefixIXP)),
		IfaceASN:  make(map[netip.Addr]netsim.ASN, len(d.IfaceASN)),
		IfaceIXP:  make(map[netip.Addr]string, len(d.IfaceIXP)),
		Ports:     make(map[PortKey]int, len(d.Ports)),
		MinPort:   make(map[string]int, len(d.MinPort)),
		Stats:     append([]SourceStats(nil), d.Stats...),
	}
	for k, v := range d.PrefixIXP {
		c.PrefixIXP[k] = v
	}
	for k, v := range d.IfaceASN {
		c.IfaceASN[k] = v
	}
	for k, v := range d.IfaceIXP {
		c.IfaceIXP[k] = v
	}
	for k, v := range d.Ports {
		c.Ports[k] = v
	}
	for k, v := range d.MinPort {
		c.MinPort[k] = v
	}
	return c
}

// IXPOf returns the IXP name whose peering LAN contains ip, if any.
func (d *Dataset) IXPOf(ip netip.Addr) (string, bool) {
	for p, name := range d.PrefixIXP {
		if p.Contains(ip) {
			return name, true
		}
	}
	return "", false
}

// MembersOf returns the interface records of one IXP, sorted by
// address for determinism.
func (d *Dataset) MembersOf(ixp string) []InterfaceRecord {
	var out []InterfaceRecord
	for ip, name := range d.IfaceIXP {
		if name == ixp {
			out = append(out, InterfaceRecord{IP: ip, ASN: d.IfaceASN[ip], IXP: name})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP.Less(out[j].IP) })
	return out
}

// streamSnapshot salts the per-(source, IXP) RNG streams of Build.
const streamSnapshot uint64 = 0x40

// Build generates all four source snapshots from the world and merges
// them. It is the one-call entry point used by the experiments.
// Snapshot synthesis fans out over (source, IXP) tasks, each drawing
// from a stream keyed by (seed, source, IXP), so the dataset is
// bit-identical for every worker count.
func Build(w *netsim.World, n NoiseConfig, seed int64) *Dataset {
	return BuildWorkers(w, n, seed, 0)
}

// BuildWorkers is Build with an explicit worker count (<= 0 uses
// GOMAXPROCS).
func BuildWorkers(w *netsim.World, n NoiseConfig, seed int64, workers int) *Dataset {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nIXPs := len(w.IXPs)
	// One fragment snapshot per (source, IXP) task; assembled in
	// (source, IXP rank) order afterwards.
	frags := make([]*Snapshot, int(numSources)*nIXPs)
	tasks := make(chan int)
	var wg sync.WaitGroup
	nw := workers
	if nw > len(frags) {
		nw = len(frags)
	}
	if nw < 1 {
		nw = 1
	}
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := &rng.Source{}
			r := rand.New(src)
			for ti := range tasks {
				s := Source(ti / nIXPs)
				ix := w.IXPs[ti%nIXPs]
				src.SetKey(rng.Key3(seed, streamSnapshot, uint64(s), uint64(ix.ID)))
				f := &Snapshot{Source: s, MinPortMbps: make(map[string]int, 1)}
				snapshotIXP(f, w, ix, s, n, r)
				frags[ti] = f
			}
		}()
	}
	for ti := range frags {
		tasks <- ti
	}
	close(tasks)
	wg.Wait()

	snaps := make([]*Snapshot, 0, numSources)
	for s := SrcWebsite; s < numSources; s++ {
		nPre, nIf, nPort := 0, 0, 0
		for rank := 0; rank < nIXPs; rank++ {
			f := frags[int(s)*nIXPs+rank]
			nPre += len(f.Prefixes)
			nIf += len(f.Interfaces)
			nPort += len(f.Ports)
		}
		snap := &Snapshot{
			Source:      s,
			Prefixes:    make([]PrefixRecord, 0, nPre),
			Interfaces:  make([]InterfaceRecord, 0, nIf),
			Ports:       make([]PortRecord, 0, nPort),
			MinPortMbps: make(map[string]int, nIXPs),
		}
		for rank := 0; rank < nIXPs; rank++ {
			f := frags[int(s)*nIXPs+rank]
			snap.Prefixes = append(snap.Prefixes, f.Prefixes...)
			snap.Interfaces = append(snap.Interfaces, f.Interfaces...)
			snap.Ports = append(snap.Ports, f.Ports...)
			for name, min := range f.MinPortMbps {
				snap.MinPortMbps[name] = min
			}
		}
		snaps = append(snaps, snap)
	}
	return Merge(snaps)
}
