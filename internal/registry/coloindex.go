package registry

import (
	"rpeer/internal/ident"
	"rpeer/internal/netsim"
)

// ColoIndex is the ID-indexed columnar view of the colocation and
// port-capacity tables the per-membership classification reads on
// every entry: AS facility records by dense MemberID, IXP facility
// records and minimum port capacities by dense IXPID, and reported
// port capacities by packed (IXPID, MemberID) key. One array index (or
// one uint64 hash, for the sparse port table) replaces a string or
// ASN map hash per lookup.
//
// The index is a projection: the ColoDB and Dataset stay the source of
// truth at the ingestion edge. Membership deltas only ever touch the
// port table (joins can refresh a member's reported capacity) — the
// facility plane is fixed — so SetPort is the only mutation and Grow
// the only resize hook.
type ColoIndex struct {
	// asFacs and asHasColo are indexed by MemberID; an AS outside the
	// colo DB has hasColo false (the paper's "no colocation data"
	// distinction, which Rule 3 of Step 3 depends on).
	asFacs    [][]netsim.FacilityID
	asHasColo ident.Bits

	// ixpFacs and minPort are indexed by IXPID; minPort is -1 for IXPs
	// without website pricing data.
	ixpFacs [][]netsim.FacilityID
	minPort []int32

	// ports maps packed (IXPID, MemberID) to the reported capacity.
	ports map[uint64]int32
}

// portKey packs an (IXP, member) pair into one map key.
func portKey(ixp ident.IXPID, m ident.MemberID) uint64 {
	return uint64(ixp)<<32 | uint64(m)
}

// NewColoIndex projects the colo DB and the dataset's port tables into
// ID space. Every AS in the colo DB and every (IXP, ASN) port record
// is interned through tab; IXPs must already be interned (records for
// names outside tab's roster are dropped — they cannot appear in the
// inference domain either).
func NewColoIndex(db *ColoDB, ds *Dataset, tab *ident.Table) *ColoIndex {
	ix := &ColoIndex{
		ixpFacs: make([][]netsim.FacilityID, tab.NumIXPs()),
		minPort: make([]int32, tab.NumIXPs()),
		ports:   make(map[uint64]int32, len(ds.Ports)),
	}
	for name, facs := range db.IXPFacilities {
		if id, ok := tab.IXP(name); ok {
			ix.ixpFacs[id] = facs
		}
	}
	for i := range ix.minPort {
		ix.minPort[i] = -1
	}
	for name, min := range ds.MinPort {
		if id, ok := tab.IXP(name); ok {
			ix.minPort[id] = int32(min)
		}
	}
	for asn, facs := range db.ASFacilities {
		m := tab.AddMember(asn)
		ix.Grow(tab)
		ix.asFacs[m] = facs
		ix.asHasColo.Set(uint32(m))
	}
	for k, mbps := range ds.Ports {
		id, ok := tab.IXP(k.IXP)
		if !ok {
			continue
		}
		m := tab.AddMember(k.ASN)
		ix.ports[portKey(id, m)] = int32(mbps)
	}
	ix.Grow(tab)
	return ix
}

// Grow extends the member-indexed columns to the table's current
// member space (Apply interns new member ASes; their columns default
// to "no colocation data").
func (ix *ColoIndex) Grow(tab *ident.Table) {
	for len(ix.asFacs) < tab.NumMembers() {
		ix.asFacs = append(ix.asFacs, nil)
	}
}

// Facilities returns the member's recorded facilities and whether the
// member has any colocation data at all.
func (ix *ColoIndex) Facilities(m ident.MemberID) ([]netsim.FacilityID, bool) {
	if int(m) >= len(ix.asFacs) {
		return nil, false
	}
	return ix.asFacs[m], ix.asHasColo.Get(uint32(m))
}

// IXPFacilities returns the IXP's recorded switch facilities.
func (ix *ColoIndex) IXPFacilities(id ident.IXPID) []netsim.FacilityID {
	return ix.ixpFacs[id]
}

// MinPort returns the IXP's advertised minimum physical port capacity
// and whether pricing data exists.
func (ix *ColoIndex) MinPort(id ident.IXPID) (int, bool) {
	v := ix.minPort[id]
	return int(v), v >= 0
}

// Port returns the reported capacity of one membership.
func (ix *ColoIndex) Port(ixp ident.IXPID, m ident.MemberID) (int, bool) {
	v, ok := ix.ports[portKey(ixp, m)]
	return int(v), ok
}

// SetPort records (or refreshes) a membership's reported capacity —
// the one mutation membership deltas can cause here.
func (ix *ColoIndex) SetPort(ixp ident.IXPID, m ident.MemberID, mbps int) {
	ix.ports[portKey(ixp, m)] = int32(mbps)
}
