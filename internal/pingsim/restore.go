package pingsim

import (
	"fmt"
	"net/netip"
)

// This file is the restore seam for campaign results persisted in
// aggregate form (internal/worldfile): a world file carries the VP
// roster, the usable-VP selection, the route-server RTTs and the folded
// per-interface aggregates — not the raw measurement set, which is an
// order of magnitude larger and regenerable from the base inputs. A
// restored Result answers every aggregate query (IfaceIndex, AggRows,
// MinRTTByIface, VPRounding) and composes with WithOverrides exactly
// like a freshly run campaign; only ByVP, the raw per-VP measurement
// view some offline experiment artefacts read, is absent.

// VPHidden packs the vantage point's hidden ground-truth attributes —
// the fields campaigns consult but inference never sees. Serialisers
// round-trip them so a restored roster can still drive re-campaigns
// (exp's control measurements, RTT refreshes) faithfully.
type VPHidden struct {
	MgmtLAN     bool
	MgmtExtraMs float64
	Dead        bool
}

// Hidden captures the VP's hidden ground-truth attributes.
func (vp *VP) Hidden() VPHidden {
	return VPHidden{MgmtLAN: vp.mgmtLAN, MgmtExtraMs: vp.mgmtExtraMs, Dead: vp.dead}
}

// SetHidden restores hidden ground-truth attributes on a deserialised
// VP.
func (vp *VP) SetHidden(h VPHidden) {
	vp.mgmtLAN, vp.mgmtExtraMs, vp.dead = h.MgmtLAN, h.MgmtExtraMs, h.Dead
}

// RestoredResult assembles a campaign Result from persisted aggregate
// columns: the full VP roster, the IDs of the VPs that survived the
// route-server filter (in original UsableVPs order), the per-VP route
// server RTTs, and the folded per-interface aggregates. The aggs map is
// adopted, not copied — the caller must not mutate it afterwards — and
// each aggregate's BestVP must point into the given roster.
func RestoredResult(vps []*VP, usableIDs []int, rsRTT map[int]float64, aggs map[netip.Addr]*IfaceAgg) (*Result, error) {
	byID := make(map[int]*VP, len(vps))
	for _, vp := range vps {
		if _, dup := byID[vp.ID]; dup {
			return nil, fmt.Errorf("pingsim: restore: duplicate VP id %d", vp.ID)
		}
		byID[vp.ID] = vp
	}
	usable := make([]*VP, len(usableIDs))
	for i, id := range usableIDs {
		vp := byID[id]
		if vp == nil {
			return nil, fmt.Errorf("pingsim: restore: usable VP %d is not in the roster", id)
		}
		usable[i] = vp
	}
	for ip, a := range aggs {
		if a == nil {
			return nil, fmt.Errorf("pingsim: restore: nil aggregate for %s", ip)
		}
	}
	if aggs == nil {
		aggs = make(map[netip.Addr]*IfaceAgg)
	}
	return &Result{
		VPs:            vps,
		RouteServerRTT: rsRTT,
		UsableVPs:      usable,
		baseAgg:        aggs,
	}, nil
}
