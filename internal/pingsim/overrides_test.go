package pingsim

import (
	"math"
	"net/netip"
	"testing"

	"rpeer/internal/netsim"
)

func overrideFixtures(t testing.TB) (*netsim.World, []*VP, *Result) {
	t.Helper()
	w, err := netsim.Generate(netsim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	vps := DeriveVPs(w, 11)
	return w, vps, Run(w, vps, DefaultCampaign())
}

func TestWithOverridesReplacesAndRemoves(t *testing.T) {
	_, _, res := overrideFixtures(t)
	base := res.IfaceIndex()
	if len(base) == 0 {
		t.Fatal("campaign measured nothing")
	}
	// Pick two measured interfaces: one to replace, one to drop.
	var replace, drop netip.Addr
	for ip := range base {
		if !replace.IsValid() {
			replace = ip
			continue
		}
		drop = ip
		break
	}
	vp := base[replace].BestVP
	ov := map[netip.Addr]Override{
		replace: {RTTMinMs: 123.5, BestVP: vp, BestRoundsUp: true, AnyRounding: true},
		drop:    {RTTMinMs: math.NaN()},
	}
	view := res.WithOverrides(ov)
	idx := view.IfaceIndex()
	if got := idx[replace]; got == nil || got.RTTMinMs != 123.5 || !got.BestRoundsUp {
		t.Fatalf("override not applied: %+v", idx[replace])
	}
	if idx[drop] != nil {
		t.Fatal("NaN override did not remove the interface")
	}
	if len(idx) != len(base)-1 {
		t.Fatalf("index size %d, want %d", len(idx), len(base)-1)
	}
	// The receiver stays frozen.
	if got := res.IfaceIndex()[replace]; got.RTTMinMs == 123.5 {
		t.Fatal("WithOverrides mutated the receiver")
	}
	// Stacked overrides: the latest wins, removal is reversible.
	view2 := view.WithOverrides(map[netip.Addr]Override{
		replace: {RTTMinMs: 7.25, BestVP: vp},
		drop:    {RTTMinMs: 1.0, BestVP: vp},
	})
	idx2 := view2.IfaceIndex()
	if idx2[replace].RTTMinMs != 7.25 || idx2[drop].RTTMinMs != 1.0 {
		t.Fatalf("stacked overrides wrong: %+v %+v", idx2[replace], idx2[drop])
	}
}

// TestOverridesFromRecampaign checks the re-campaign fold: a second
// campaign's usable aggregates replace the originals, everything else
// keeps the first campaign's values.
func TestOverridesFromRecampaign(t *testing.T) {
	w, vps, res := overrideFixtures(t)
	cfg := DefaultCampaign()
	cfg.Seed = 99
	refresh := Run(w, vps, cfg)

	merged := res.WithOverrides(Overrides(refresh)).IfaceIndex()
	ridx := refresh.IfaceIndex()
	bidx := res.IfaceIndex()
	if len(ridx) == 0 {
		t.Fatal("refresh measured nothing")
	}
	for ip, a := range merged {
		if ra, ok := ridx[ip]; ok {
			if a.RTTMinMs != ra.RTTMinMs || a.BestVP != ra.BestVP {
				t.Fatalf("refreshed iface %v kept stale aggregate", ip)
			}
			continue
		}
		if ba := bidx[ip]; ba == nil || a.RTTMinMs != ba.RTTMinMs {
			t.Fatalf("unrefreshed iface %v lost its base aggregate", ip)
		}
	}
	for ip := range bidx {
		if _, ok := merged[ip]; !ok {
			t.Fatalf("iface %v vanished from the merged view", ip)
		}
	}
}
