// Package pingsim simulates the paper's ping measurement plane
// (Sections 3.1 and 5.2, Step 2): vantage points inside IXPs (looking
// glasses on the peering LAN and RIPE-Atlas-style probes colocated
// with the IXP), repeated ping campaigns against member peering
// interfaces, reply-TTL modelling, and the TTL-match / TTL-switch
// filters plus minimum-RTT aggregation the methodology applies.
package pingsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
)

// VPKind distinguishes vantage point flavours.
type VPKind uint8

const (
	// KindLG is a looking glass directly attached to the IXP peering
	// LAN. LGs respond reliably but many round RTTs up to whole
	// milliseconds.
	KindLG VPKind = iota
	// KindAtlas is a RIPE-Atlas-style probe colocated with the IXP but
	// outside the peering LAN (one router hop away).
	KindAtlas
)

// String implements fmt.Stringer.
func (k VPKind) String() string {
	if k == KindLG {
		return "LG"
	}
	return "Atlas"
}

// VP is a measurement vantage point inside (or believed inside) an IXP.
type VP struct {
	ID   int
	IXP  netsim.IXPID
	Kind VPKind
	// Facility hosting the VP (-1 for management-LAN probes parked at
	// the IXP NOC, which may be outside any listed facility).
	Facility netsim.FacilityID
	Loc      geo.Point
	SrcIP    netip.Addr
	// RoundsUp marks LGs that report integer milliseconds (rounded up).
	RoundsUp bool

	// Hidden ground-truth attributes (not consulted by the inference):
	// mgmtLAN probes have inflated base RTT; dead probes never answer.
	mgmtLAN     bool
	mgmtExtraMs float64
	dead        bool
}

// CampaignConfig parametrises a ping campaign.
type CampaignConfig struct {
	// Samples per (VP, target) pair: the paper pings every two hours
	// for two days = 24 samples.
	Samples int
	// TargetResponseLG / TargetResponseAtlas are the probabilities that
	// a member interface answers pings from each VP kind at all
	// (Table 5: 95% vs 75%).
	TargetResponseLG    float64
	TargetResponseAtlas float64
	// PerSampleLoss is the per-ping loss probability for responsive
	// targets.
	PerSampleLoss float64
	// ExtraHopProb is the probability that replies arrive with an
	// unexpected extra TTL decrement (reply beyond the IXP subnet;
	// dropped by the TTL-match filter).
	ExtraHopProb float64
	// TTLSwitchProb is the probability that a target's reply TTL
	// flip-flops during the campaign (dropped by the TTL-switch
	// filter).
	TTLSwitchProb float64
	// DisableTTLFilters keeps the noisy pairs in the result instead of
	// flagging them (the TTL-filter ablation): RTT minimums then
	// include replies sourced beyond the IXP subnet.
	DisableTTLFilters bool
	// Seed drives all randomness of the campaign.
	Seed int64
}

// DefaultCampaign mirrors the paper's setup.
func DefaultCampaign() CampaignConfig {
	return CampaignConfig{
		Samples:             24,
		TargetResponseLG:    0.95,
		TargetResponseAtlas: 0.75,
		PerSampleLoss:       0.08,
		ExtraHopProb:        0.015,
		TTLSwitchProb:       0.01,
		Seed:                1,
	}
}

// DeriveVPs instantiates the vantage points the world offers: one LG
// per LG-operating IXP plus the IXP's Atlas probes. Roughly a quarter
// of Atlas probes sit in the management LAN (inflated RTT, to be
// caught by the route-server sanity filter) and some are dead.
func DeriveVPs(w *netsim.World, seed int64) []*VP {
	rng := rand.New(rand.NewSource(seed))
	var vps []*VP
	id := 0
	for _, ix := range w.IXPs {
		if ix.HasLG {
			f := ix.Facilities[0]
			vps = append(vps, &VP{
				ID: id, IXP: ix.ID, Kind: KindLG,
				Facility: f, Loc: w.Facility(f).Loc,
				SrcIP:    ix.RouteServer,
				RoundsUp: rng.Float64() < 0.5,
			})
			id++
		}
		for p := 0; p < ix.AtlasProbes; p++ {
			f := ix.Facilities[rng.Intn(len(ix.Facilities))]
			vp := &VP{
				ID: id, IXP: ix.ID, Kind: KindAtlas,
				Facility: f, Loc: w.Facility(f).Loc,
			}
			ip, err := mgmtAddr(w, ix, p)
			if err == nil {
				vp.SrcIP = ip
			}
			switch {
			case rng.Float64() < 0.20:
				vp.dead = true
			case rng.Float64() < 0.30:
				// Management-LAN probe: the NOC is elsewhere in town (or
				// in another town); every RTT is inflated.
				vp.mgmtLAN = true
				vp.mgmtExtraMs = 1 + rng.ExpFloat64()*6
				vp.Facility = -1
			}
			vps = append(vps, vp)
			id++
		}
	}
	return vps
}

func mgmtAddr(w *netsim.World, ix *netsim.IXP, n int) (netip.Addr, error) {
	ip := ix.MgmtLAN.Addr()
	for i := 0; i <= n; i++ {
		ip = ip.Next()
	}
	if !ix.MgmtLAN.Contains(ip) {
		return netip.Addr{}, fmt.Errorf("pingsim: mgmt LAN of %s exhausted", ix.Name)
	}
	return ip, nil
}

// Measurement is the filtered outcome for one (VP, interface) pair.
type Measurement struct {
	VP    *VP
	Iface netip.Addr
	ASN   netsim.ASN
	// RTTMinMs is the minimum RTT across surviving samples;
	// math.NaN() when no usable sample survived.
	RTTMinMs float64
	// Replies is the number of echo replies received (pre-filter).
	Replies int
	// FilteredTTL is true when the TTL-match or TTL-switch filter
	// discarded the pair.
	FilteredTTL bool
}

// Responsive reports whether at least one reply arrived.
func (m *Measurement) Responsive() bool { return m.Replies > 0 }

// Usable reports whether the measurement yields an RTTmin the
// inference may consume.
func (m *Measurement) Usable() bool {
	return m.Replies > 0 && !m.FilteredTTL && !math.IsNaN(m.RTTMinMs)
}

// Result is the outcome of a campaign.
type Result struct {
	VPs []*VP
	// ByVP maps VP id to its measurements (ordered by target address).
	ByVP map[int][]*Measurement
	// RouteServerRTT maps VP id to its RTTmin towards the IXP route
	// server (the VP-usability sanity check).
	RouteServerRTT map[int]float64
	// UsableVPs lists VPs that survive the route-server filter
	// (RTTmin < 1 ms) and answered at all.
	UsableVPs []*VP

	// overrides are per-interface replacement aggregates layered over
	// the campaign fold by WithOverrides (re-campaign refreshes).
	overrides map[netip.Addr]Override

	// baseAgg, when set, replaces the ByVP fold as the campaign's
	// aggregate layer: Results restored from a world file carry folded
	// per-interface aggregates, not the raw measurement set (which is
	// regenerable and an order of magnitude larger). The map is shared
	// across WithOverrides views and must never be mutated.
	baseAgg map[netip.Addr]*IfaceAgg

	idxOnce sync.Once
	idx     map[netip.Addr]*IfaceAgg

	rowsOnce sync.Once
	rows     []AggRow
}

// AggRow is one interface's campaign aggregate in the address-ordered
// columnar view (see AggRows).
type AggRow struct {
	Iface netip.Addr
	Agg   *IfaceAgg
}

// AggRows returns the per-interface aggregates as rows sorted
// ascending by address — the form bulk consumers (core's context
// build) ingest without re-sorting map keys. Built once per Result;
// the campaign builds it eagerly so the cost lands in the campaign
// stage, not in the consumer.
func (r *Result) AggRows() []AggRow {
	r.rowsOnce.Do(func() {
		idx := r.IfaceIndex()
		rows := make([]AggRow, 0, len(idx))
		for ip, a := range idx {
			rows = append(rows, AggRow{Iface: ip, Agg: a})
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].Iface.Less(rows[j].Iface) })
		r.rows = rows
	})
	return r.rows
}

// IfaceAgg is the campaign aggregate for one member interface across
// all usable VPs: the minimum RTT, the VP achieving it, and the
// rounding flags Step 3 consumes. It is built once per Result (see
// IfaceIndex) so per-interface queries stop re-scanning the full
// measurement set.
type IfaceAgg struct {
	// RTTMinMs is the campaign minimum across usable VPs.
	RTTMinMs float64
	// BestVP is the usable VP that measured RTTMinMs (ties resolve to
	// the earlier VP in UsableVPs order).
	BestVP *VP
	// BestRoundsUp reports whether BestVP rounds RTTs up.
	BestRoundsUp bool
	// AnyRounding reports whether any usable rounding VP measured the
	// interface at all (the VPRounding predicate).
	AnyRounding bool
}

// IfaceIndex returns the per-interface campaign aggregates, building
// them on first use (one pass over all usable-VP measurements, then
// any overrides layered on top). The returned map is shared and must
// be treated as read-only; concurrent callers are safe.
func (r *Result) IfaceIndex() map[netip.Addr]*IfaceAgg {
	r.idxOnce.Do(func() {
		if r.baseAgg != nil {
			// Restored campaign: the folded aggregates were persisted;
			// layer overrides over a copy (entries are immutable and
			// shared, the map itself is per-view).
			idx := make(map[netip.Addr]*IfaceAgg, len(r.baseAgg))
			for ip, a := range r.baseAgg {
				idx[ip] = a
			}
			r.applyOverrides(idx)
			r.idx = idx
			return
		}
		idx := make(map[netip.Addr]*IfaceAgg)
		for _, vp := range r.UsableVPs {
			for _, m := range r.ByVP[vp.ID] {
				if !m.Usable() {
					continue
				}
				a := idx[m.Iface]
				if a == nil {
					a = &IfaceAgg{RTTMinMs: math.Inf(1)}
					idx[m.Iface] = a
				}
				if m.RTTMinMs < a.RTTMinMs {
					a.RTTMinMs = m.RTTMinMs
					a.BestVP = vp
					a.BestRoundsUp = vp.RoundsUp
				}
				if vp.RoundsUp {
					a.AnyRounding = true
				}
			}
		}
		r.applyOverrides(idx)
		r.idx = idx
	})
	return r.idx
}

// applyOverrides layers the cumulative override overlay over a folded
// aggregate index (NaN RTT removes the interface).
func (r *Result) applyOverrides(idx map[netip.Addr]*IfaceAgg) {
	for ip, o := range r.overrides {
		if math.IsNaN(o.RTTMinMs) {
			delete(idx, ip)
			continue
		}
		idx[ip] = &IfaceAgg{
			RTTMinMs:     o.RTTMinMs,
			BestVP:       o.BestVP,
			BestRoundsUp: o.BestRoundsUp,
			AnyRounding:  o.AnyRounding,
		}
	}
}

// Override is a per-interface replacement campaign aggregate: the
// refreshed measurement state a re-campaign produced for one member
// interface. An Override with a NaN RTTMinMs removes the interface
// from the index (the refresh found it unmeasurable).
type Override struct {
	RTTMinMs     float64
	BestVP       *VP
	BestRoundsUp bool
	AnyRounding  bool
}

// WithOverrides returns a view of the campaign with the given
// per-interface aggregates replacing the folded ones. The receiver is
// not modified; the returned Result shares its measurement slices.
// Repeated applications stack, latest override winning per interface.
func (r *Result) WithOverrides(ov map[netip.Addr]Override) *Result {
	merged := make(map[netip.Addr]Override, len(r.overrides)+len(ov))
	for ip, o := range r.overrides {
		merged[ip] = o
	}
	for ip, o := range ov {
		merged[ip] = o
	}
	return &Result{
		VPs: r.VPs, ByVP: r.ByVP,
		RouteServerRTT: r.RouteServerRTT,
		UsableVPs:      r.UsableVPs,
		baseAgg:        r.baseAgg,
		overrides:      merged,
	}
}

// Overlay returns a copy of the cumulative per-interface overrides
// layered over the campaign by WithOverrides — the mutable slice of a
// campaign's state, and therefore exactly what the engine's snapshot
// persists (the underlying measurements are regenerable from the base
// inputs; the overrides are not).
func (r *Result) Overlay() map[netip.Addr]Override {
	out := make(map[netip.Addr]Override, len(r.overrides))
	for ip, o := range r.overrides {
		out[ip] = o
	}
	return out
}

// Overrides folds a re-campaign result into the override form
// WithOverrides consumes: every interface the refresh measured usably
// gets its refreshed aggregate (latest campaign wins). Interfaces the
// refresh could not measure are left untouched — a re-campaign
// narrows staleness, it does not revoke history.
func Overrides(refresh *Result) map[netip.Addr]Override {
	idx := refresh.IfaceIndex()
	out := make(map[netip.Addr]Override, len(idx))
	for ip, a := range idx {
		out[ip] = Override{
			RTTMinMs:     a.RTTMinMs,
			BestVP:       a.BestVP,
			BestRoundsUp: a.BestRoundsUp,
			AnyRounding:  a.AnyRounding,
		}
	}
	return out
}

// Run executes a ping campaign from every VP towards all member
// peering interfaces of the VP's IXP, applying the TTL filters and the
// route-server VP-usability filter, and aggregating minimum RTTs.
//
// Run is RunParallel with a single worker: every (VP, target) pair
// derives its own RNG from a stable hash of (seed, VP id, interface),
// so campaign results are bit-identical across all worker counts and
// callers can switch freely between Run and RunParallel.
func Run(w *netsim.World, vps []*VP, cfg CampaignConfig) *Result {
	return RunParallel(w, vps, cfg, 1)
}

// routeServerRTT simulates the VP's ping to the IXP route server.
func routeServerRTT(w *netsim.World, vp *VP, rng *rand.Rand) float64 {
	if vp.dead {
		return math.NaN()
	}
	ix := w.IXP(vp.IXP)
	rsLoc := w.Facility(ix.Facilities[0]).Loc
	base := 0.1 + 0.3*rng.Float64()
	if vp.Facility >= 0 && vp.Facility != ix.Facilities[0] {
		base = w.Latency().BaseRTT(vp.Loc, rsLoc, uint64(vp.ID)|1<<61, uint64(ix.ID)|1<<62)
	}
	if vp.mgmtLAN {
		base += vp.mgmtExtraMs
	}
	return base
}

// pingTarget runs the per-pair sample loop with reply-TTL modelling,
// filling the caller-owned measurement in place (campaign measurements
// live in per-VP slabs).
func pingTarget(m *Measurement, w *netsim.World, vp *VP, mem *netsim.Member, cfg CampaignConfig, rng *rand.Rand) {
	*m = Measurement{VP: vp, Iface: mem.Iface, ASN: mem.ASN, RTTMinMs: math.NaN()}
	if vp.dead {
		return
	}
	respond := cfg.TargetResponseLG
	if vp.Kind == KindAtlas {
		respond = cfg.TargetResponseAtlas
	}
	if rng.Float64() >= respond {
		return // interface filters this VP's pings entirely
	}

	r := w.Router(mem.Router)
	base := w.Latency().PointToRouterRTT(vp.Loc, uint64(vp.ID), r)
	if vp.mgmtLAN {
		base += vp.mgmtExtraMs
	}

	// Reply TTL model: replies sourced on the peering LAN arrive with
	// the initial TTL (LG case) or one less (Atlas probes sit one hop
	// off the LAN). A misbehaving target replies from deeper inside the
	// member network.
	initTTL := 255
	if rng.Float64() < 0.4 {
		initTTL = 64
	}
	expected := initTTL
	if vp.Kind == KindAtlas {
		expected = initTTL - 1
	}
	extraHops := 0
	if rng.Float64() < cfg.ExtraHopProb {
		extraHops = 1 + rng.Intn(3)
	}
	switches := rng.Float64() < cfg.TTLSwitchProb

	min := math.NaN()
	seenTTL := -1
	for s := 0; s < cfg.Samples; s++ {
		if rng.Float64() < cfg.PerSampleLoss {
			continue
		}
		m.Replies++
		ttl := expected - extraHops
		if switches && s%2 == 1 {
			ttl = expected - 1 - extraHops
		}
		if seenTTL >= 0 && ttl != seenTTL && !cfg.DisableTTLFilters {
			m.FilteredTTL = true // TTL-switch filter
		}
		seenTTL = ttl
		if ttl != expected {
			if !cfg.DisableTTLFilters {
				m.FilteredTTL = true // TTL-match filter
				continue
			}
			// Filters disabled: the reply comes from beyond the IXP
			// subnet and drags extra path latency into the minimum.
			rtt := w.Latency().Sample(rng, base) + float64(expected-ttl)*1.5
			if math.IsNaN(min) || rtt < min {
				min = rtt
			}
			continue
		}
		rtt := w.Latency().Sample(rng, base)
		if vp.Kind == KindLG && vp.RoundsUp {
			rtt = math.Ceil(rtt)
		}
		if math.IsNaN(min) || rtt < min {
			min = rtt
		}
	}
	m.RTTMinMs = min
}

// MinRTTByIface folds a campaign result into the per-interface RTTmin
// across all *usable* VPs of the interface's IXP, applying the paper's
// LG rounding correction downstream consumers need the raw value for:
// the minimum over VPs of each VP's RTTmin.
func (r *Result) MinRTTByIface() map[netip.Addr]float64 {
	idx := r.IfaceIndex()
	out := make(map[netip.Addr]float64, len(idx))
	for ip, a := range idx {
		out[ip] = a.RTTMinMs
	}
	return out
}

// VPRounding reports whether any usable VP that measured iface rounds
// RTTs up; Step 3 widens the lower distance bound for such targets.
func (r *Result) VPRounding(iface netip.Addr) bool {
	a := r.IfaceIndex()[iface]
	return a != nil && a.AnyRounding
}
