package pingsim

import (
	"math"
	"testing"

	"rpeer/internal/netsim"
)

var cachedWorld *netsim.World
var cachedResult *Result

func world(t testing.TB) *netsim.World {
	t.Helper()
	if cachedWorld == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
	}
	return cachedWorld
}

func campaign(t testing.TB) (*netsim.World, *Result) {
	t.Helper()
	w := world(t)
	if cachedResult == nil {
		vps := DeriveVPs(w, 11)
		cachedResult = Run(w, vps, DefaultCampaign())
	}
	return w, cachedResult
}

func TestDeriveVPs(t *testing.T) {
	w := world(t)
	vps := DeriveVPs(w, 11)
	if len(vps) < 20 {
		t.Fatalf("only %d VPs derived", len(vps))
	}
	lgs, atlas := 0, 0
	ids := make(map[int]bool)
	for _, vp := range vps {
		if ids[vp.ID] {
			t.Fatalf("duplicate VP id %d", vp.ID)
		}
		ids[vp.ID] = true
		switch vp.Kind {
		case KindLG:
			lgs++
			if !vp.SrcIP.IsValid() {
				t.Error("LG without source IP")
			}
			ix := w.IXP(vp.IXP)
			if !ix.PeeringLAN.Contains(vp.SrcIP) {
				t.Errorf("LG source %v outside peering LAN of %s", vp.SrcIP, ix.Name)
			}
		case KindAtlas:
			atlas++
		}
	}
	if lgs == 0 || atlas == 0 {
		t.Fatalf("lgs=%d atlas=%d, want both > 0", lgs, atlas)
	}
}

func TestRouteServerFilterDropsMgmtProbes(t *testing.T) {
	_, res := campaign(t)
	usable := make(map[int]bool)
	for _, vp := range res.UsableVPs {
		usable[vp.ID] = true
	}
	for _, vp := range res.VPs {
		rs := res.RouteServerRTT[vp.ID]
		if vp.mgmtLAN && usable[vp.ID] {
			t.Errorf("management-LAN probe %d (rsRTT=%.2f) classified usable", vp.ID, rs)
		}
		if vp.dead && usable[vp.ID] {
			t.Errorf("dead probe %d classified usable", vp.ID)
		}
		if usable[vp.ID] && !(rs < 1.0) {
			t.Errorf("usable VP %d has route-server RTT %.2f >= 1ms", vp.ID, rs)
		}
	}
	if len(res.UsableVPs) < 10 {
		t.Fatalf("only %d usable VPs", len(res.UsableVPs))
	}
}

func TestResponseRatesByKind(t *testing.T) {
	_, res := campaign(t)
	type acc struct{ resp, tot int }
	var lg, at acc
	for _, vp := range res.VPs {
		if vp.dead {
			continue
		}
		for _, m := range res.ByVP[vp.ID] {
			if vp.Kind == KindLG {
				lg.tot++
				if m.Responsive() {
					lg.resp++
				}
			} else {
				at.tot++
				if m.Responsive() {
					at.resp++
				}
			}
		}
	}
	lgRate := float64(lg.resp) / float64(lg.tot)
	atRate := float64(at.resp) / float64(at.tot)
	// Table 5: LGs ~95% responsive targets, Atlas ~75%.
	if lgRate < 0.90 || lgRate > 0.99 {
		t.Errorf("LG response rate = %.3f, want ~0.95", lgRate)
	}
	if atRate < 0.65 || atRate > 0.85 {
		t.Errorf("Atlas response rate = %.3f, want ~0.75", atRate)
	}
	if atRate >= lgRate {
		t.Error("Atlas response rate should be below LG rate")
	}
}

func TestTTLFiltersFire(t *testing.T) {
	_, res := campaign(t)
	filtered, tot := 0, 0
	for _, ms := range res.ByVP {
		for _, m := range ms {
			if !m.Responsive() {
				continue
			}
			tot++
			if m.FilteredTTL {
				filtered++
			}
		}
	}
	frac := float64(filtered) / float64(tot)
	if frac == 0 {
		t.Error("TTL filters never fired; noise model broken")
	}
	if frac > 0.10 {
		t.Errorf("TTL filters dropped %.2f of pairs, want a few percent", frac)
	}
}

func TestMinRTTSanityAgainstGroundTruth(t *testing.T) {
	w, res := campaign(t)
	rtts := res.MinRTTByIface()
	if len(rtts) < 2000 {
		t.Fatalf("only %d interfaces measured", len(rtts))
	}
	// Locals at the VP's IXP should overwhelmingly be fast; remotes via
	// distant homes should often exceed 2ms (Fig 1b shape).
	var localOver2, locals, remoteOver2, remotes int
	byIface := make(map[string]*netsim.Member)
	for _, m := range w.Members {
		byIface[m.Iface.String()] = m
	}
	for ip, rtt := range rtts {
		m := byIface[ip.String()]
		if m == nil {
			t.Fatalf("measured unknown interface %v", ip)
		}
		if math.IsNaN(rtt) || rtt < 0 {
			t.Fatalf("bad RTT %v for %v", rtt, ip)
		}
		if m.Remote() {
			remotes++
			if rtt > 2 {
				remoteOver2++
			}
		} else {
			locals++
			if rtt > 2 {
				localOver2++
			}
		}
	}
	if locals == 0 || remotes == 0 {
		t.Fatal("campaign missed a whole class")
	}
	// Locals above 2ms exist only at wide-area IXPs; keep it a small
	// minority. Remotes above 2ms must be the majority.
	if frac := float64(localOver2) / float64(locals); frac > 0.25 {
		t.Errorf("%.2f of locals above 2ms, want < 0.25", frac)
	}
	if frac := float64(remoteOver2) / float64(remotes); frac < 0.5 {
		t.Errorf("only %.2f of remotes above 2ms", frac)
	}
}

func TestLGRoundingYieldsIntegers(t *testing.T) {
	_, res := campaign(t)
	checked := 0
	for _, vp := range res.UsableVPs {
		if vp.Kind != KindLG || !vp.RoundsUp {
			continue
		}
		for _, m := range res.ByVP[vp.ID] {
			if !m.Usable() {
				continue
			}
			if m.RTTMinMs != math.Trunc(m.RTTMinMs) {
				t.Fatalf("rounding LG reported fractional RTT %v", m.RTTMinMs)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Skip("no rounding LG in this seed")
	}
}

func TestVPRounding(t *testing.T) {
	_, res := campaign(t)
	found := false
	for _, vp := range res.UsableVPs {
		if vp.Kind == KindLG && vp.RoundsUp {
			for _, m := range res.ByVP[vp.ID] {
				if m.Usable() {
					if !res.VPRounding(m.Iface) {
						t.Fatalf("VPRounding false for iface measured by rounding LG")
					}
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Skip("no rounding LG in this seed")
	}
}

func TestCampaignDeterminism(t *testing.T) {
	w := world(t)
	vps1 := DeriveVPs(w, 3)
	vps2 := DeriveVPs(w, 3)
	r1 := Run(w, vps1, DefaultCampaign())
	r2 := Run(w, vps2, DefaultCampaign())
	m1 := r1.MinRTTByIface()
	m2 := r2.MinRTTByIface()
	if len(m1) != len(m2) {
		t.Fatalf("determinism: %d vs %d interfaces", len(m1), len(m2))
	}
	for ip, v1 := range m1 {
		if v2 := m2[ip]; v1 != v2 {
			t.Fatalf("determinism: %v: %v vs %v", ip, v1, v2)
		}
	}
}

func BenchmarkCampaign(b *testing.B) {
	w := world(b)
	vps := DeriveVPs(w, 11)
	cfg := DefaultCampaign()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(w, vps, cfg)
	}
}

func TestRunParallelDeterministicAcrossWorkerCounts(t *testing.T) {
	w := world(t)
	vps := DeriveVPs(w, 11)
	cfg := DefaultCampaign()
	r1 := RunParallel(w, vps, cfg, 1)
	r8 := RunParallel(w, vps, cfg, 8)
	m1 := r1.MinRTTByIface()
	m8 := r8.MinRTTByIface()
	if len(m1) == 0 || len(m1) != len(m8) {
		t.Fatalf("interface counts differ: %d vs %d", len(m1), len(m8))
	}
	for ip, v1 := range m1 {
		if v8, ok := m8[ip]; !ok || v1 != v8 {
			t.Fatalf("worker-count dependence at %v: %v vs %v", ip, v1, v8)
		}
	}
	if len(r1.UsableVPs) != len(r8.UsableVPs) {
		t.Fatal("usable VP sets differ")
	}
	for i := range r1.UsableVPs {
		if r1.UsableVPs[i].ID != r8.UsableVPs[i].ID {
			t.Fatal("usable VP order differs")
		}
	}
}

func TestRunIdenticalToRunParallel(t *testing.T) {
	// Run delegates to the hashed-RNG path, so the sequential campaign
	// must be bit-identical to any parallel worker count, per
	// measurement, not just in distribution.
	w := world(t)
	vps := DeriveVPs(w, 11)
	cfg := DefaultCampaign()
	seq := Run(w, vps, cfg)
	par := RunParallel(w, vps, cfg, 0)
	if len(seq.UsableVPs) != len(par.UsableVPs) {
		t.Fatalf("usable VPs differ: %d vs %d", len(seq.UsableVPs), len(par.UsableVPs))
	}
	for vpID, sms := range seq.ByVP {
		pms := par.ByVP[vpID]
		if len(sms) != len(pms) {
			t.Fatalf("VP %d: measurement counts differ: %d vs %d", vpID, len(sms), len(pms))
		}
		for i := range sms {
			s, p := sms[i], pms[i]
			sameRTT := s.RTTMinMs == p.RTTMinMs ||
				(math.IsNaN(s.RTTMinMs) && math.IsNaN(p.RTTMinMs))
			if s.Iface != p.Iface || !sameRTT || s.Replies != p.Replies ||
				s.FilteredTTL != p.FilteredTTL {
				t.Fatalf("VP %d measurement %d differs: %+v vs %+v", vpID, i, s, p)
			}
		}
		if seq.RouteServerRTT[vpID] != par.RouteServerRTT[vpID] &&
			!(math.IsNaN(seq.RouteServerRTT[vpID]) && math.IsNaN(par.RouteServerRTT[vpID])) {
			t.Fatalf("VP %d route-server RTT differs", vpID)
		}
	}
}
