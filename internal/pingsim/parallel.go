package pingsim

import (
	"math"
	"math/rand"
	"net/netip"
	"runtime"
	"slices"
	"sync"

	"rpeer/internal/ip4"
	"rpeer/internal/netsim"
	"rpeer/internal/rng"
)

// Stream salts for the campaign's per-entity RNG streams.
const (
	streamRouteServer uint64 = iota + 0x50
	streamPair
)

// RunParallel executes the campaign across a worker pool, one VP per
// task. Every (VP, target) pair draws from its own stream keyed by
// (seed, VP id, interface), so scheduling order cannot leak into the
// measurements: results are bit-identical for every worker count,
// including the single-worker path Run delegates to. Workers keep one
// generator and re-key it between pairs, and each VP's measurements
// live in one slab, so the campaign allocates O(VPs), not O(pairs).
//
// Use workers > 1 (or 0 = GOMAXPROCS) for large worlds.
func RunParallel(w *netsim.World, vps []*VP, cfg CampaignConfig, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{
		VPs:            vps,
		ByVP:           make(map[int][]*Measurement, len(vps)),
		RouteServerRTT: make(map[int]float64, len(vps)),
	}

	type vpOut struct {
		vp     *VP
		rsRTT  float64
		ms     []*Measurement
		usable bool
	}
	tasks := make(chan *VP)
	outs := make(chan vpOut, len(vps))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			src := &rng.Source{}
			r := rand.New(src)
			for vp := range tasks {
				src.SetKey(rng.Key3(cfg.Seed, streamRouteServer, uint64(vp.ID), 0))
				rsRTT := routeServerRTT(w, vp, r)
				usable := !vp.dead && !math.IsNaN(rsRTT) && rsRTT < 1.0

				members := w.MembersOf(vp.IXP)
				slab := make([]Measurement, len(members))
				ms := make([]*Measurement, len(members))
				for i, mem := range members {
					src.SetKey(pairKey(cfg.Seed, vp.ID, mem.Iface))
					pingTarget(&slab[i], w, vp, mem, cfg, r)
					ms[i] = &slab[i]
				}
				slices.SortFunc(ms, func(a, b *Measurement) int { return a.Iface.Compare(b.Iface) })
				outs <- vpOut{vp: vp, rsRTT: rsRTT, ms: ms, usable: usable}
			}
		}()
	}
	go func() {
		for _, vp := range vps {
			tasks <- vp
		}
		close(tasks)
		wg.Wait()
		close(outs)
	}()

	for o := range outs {
		res.ByVP[o.vp.ID] = o.ms
		res.RouteServerRTT[o.vp.ID] = o.rsRTT
		if o.usable {
			res.UsableVPs = append(res.UsableVPs, o.vp)
		}
	}
	// Deterministic order regardless of completion order.
	slices.SortFunc(res.UsableVPs, func(a, b *VP) int { return a.ID - b.ID })
	// Fold the per-interface aggregates eagerly: the campaign is the
	// stage that runs on the worker pool, so downstream consumers
	// (core's context build) read finished columns instead of paying
	// the fold serially.
	res.IfaceIndex()
	res.AggRows()
	return res
}

// pairKey derives the stream key for one (seed, vp, target) pair.
func pairKey(seed int64, vpID int, ip netip.Addr) uint64 {
	return rng.Key3(seed, streamPair, uint64(vpID), uint64(ip4.U32(ip)))
}
