package pingsim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"rpeer/internal/netsim"
)

// RunParallel executes the campaign across a worker pool, one VP per
// task. Every (VP, target) pair derives its own RNG from a stable hash
// of (seed, VP id, interface), so scheduling order cannot leak into
// the measurements: results are bit-identical for every worker count,
// including the single-worker path Run delegates to.
//
// Use workers > 1 (or 0 = GOMAXPROCS) for large worlds; the default
// world campaign is ~3x faster on 8 cores.
func RunParallel(w *netsim.World, vps []*VP, cfg CampaignConfig, workers int) *Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	res := &Result{
		VPs:            vps,
		ByVP:           make(map[int][]*Measurement, len(vps)),
		RouteServerRTT: make(map[int]float64, len(vps)),
	}

	type vpOut struct {
		vp     *VP
		rsRTT  float64
		ms     []*Measurement
		usable bool
	}
	tasks := make(chan *VP)
	outs := make(chan vpOut, len(vps))
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for vp := range tasks {
				rng := pairRand(cfg.Seed, vp.ID, 0, 0)
				rsRTT := routeServerRTT(w, vp, rng)
				usable := !vp.dead && !math.IsNaN(rsRTT) && rsRTT < 1.0

				members := w.MembersOf(vp.IXP)
				ms := make([]*Measurement, 0, len(members))
				for _, mem := range members {
					prng := pairRandAddr(cfg.Seed, vp.ID, mem.Iface)
					ms = append(ms, pingTarget(w, vp, mem, cfg, prng))
				}
				sort.Slice(ms, func(i, j int) bool { return ms[i].Iface.Less(ms[j].Iface) })
				outs <- vpOut{vp: vp, rsRTT: rsRTT, ms: ms, usable: usable}
			}
		}()
	}
	go func() {
		for _, vp := range vps {
			tasks <- vp
		}
		close(tasks)
		wg.Wait()
		close(outs)
	}()

	for o := range outs {
		res.ByVP[o.vp.ID] = o.ms
		res.RouteServerRTT[o.vp.ID] = o.rsRTT
		if o.usable {
			res.UsableVPs = append(res.UsableVPs, o.vp)
		}
	}
	// Deterministic order regardless of completion order.
	sort.Slice(res.UsableVPs, func(i, j int) bool { return res.UsableVPs[i].ID < res.UsableVPs[j].ID })
	return res
}

// pairRand derives a deterministic RNG for a (seed, vp, lo, hi) tuple.
func pairRand(seed int64, vpID int, lo, hi uint64) *rand.Rand {
	h := fnv.New64a()
	var buf [32]byte
	put64(buf[0:], uint64(seed))
	put64(buf[8:], uint64(vpID))
	put64(buf[16:], lo)
	put64(buf[24:], hi)
	_, _ = h.Write(buf[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

// pairRandAddr derives a deterministic RNG for a (seed, vp, address)
// tuple.
func pairRandAddr(seed int64, vpID int, ip interface{ As4() [4]byte }) *rand.Rand {
	b := ip.As4()
	lo := uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3])
	return pairRand(seed, vpID, lo, 0x9e3779b97f4a7c15)
}

func put64(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
