// Package rng provides the cheap deterministic random streams the
// cold-start pipeline runs on: a splitmix64-based rand.Source64 plus
// hash helpers that derive independent stream seeds from entity
// identities.
//
// The simulators draw randomness per *entity* (one stream per ping
// pair, per world membership, per traceroute path), so that output is
// a pure function of (seed, entity) and never of scheduling or
// iteration order — the property every "bit-identical across worker
// counts" guarantee in this repository rests on. Before this package,
// each such stream was seeded through math/rand.NewSource, which
// initialises a 607-word lagged-Fibonacci table per stream; profiles
// of the 16x cold start showed ~25% of all CPU inside that seeding.
// A splitmix64 source carries 8 bytes of state and seeds in a few
// arithmetic instructions, making per-entity streams effectively free.
//
// Streams are derived, not split: Stream(seed, a, b, ...) mixes each
// identity component through the splitmix64 finaliser, so neighbouring
// entities (member 17, member 18) get statistically independent
// sequences. The generator is *not* the math/rand default stream —
// swapping a simulator onto this package moves its sampled values
// once, after which they are pinned again.
package rng

import "math/rand"

// mix64 is the splitmix64 finaliser (Steele, Lea & Flood, OOPSLA'14):
// a full-avalanche 64-bit permutation.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Mix folds one identity component into a running stream key.
func Mix(h, v uint64) uint64 {
	return mix64(h + 0x9e3779b97f4a7c15 + v)
}

// Key derives a stream key from a base seed and up to three identity
// components (fixed arity keeps the call alloc-free on every inlining
// tier; chain Mix for deeper identities).
func Key(seed int64, a uint64) uint64 { return Mix(mix64(uint64(seed)), a) }

// Key2 derives a stream key from a seed and two components.
func Key2(seed int64, a, b uint64) uint64 { return Mix(Key(seed, a), b) }

// Key3 derives a stream key from a seed and three components.
func Key3(seed int64, a, b, c uint64) uint64 { return Mix(Key2(seed, a, b), c) }

// Source is a splitmix64 rand.Source64: 8 bytes of state, constant-
// time seeding. The zero value is a valid stream (key 0); use Seed or
// the Key helpers to place it.
type Source struct {
	state uint64
}

// NewSource returns a source positioned on the given stream key.
func NewSource(key uint64) *Source { return &Source{state: key} }

// New returns a *rand.Rand drawing from the given stream key. The
// returned generator is cheap enough to create per entity, but hot
// loops that process many entities should allocate one Rand per worker
// and re-place it with Seed between entities (zero further allocation).
func New(key uint64) *rand.Rand { return rand.New(&Source{state: key}) }

// Uint64 implements rand.Source64.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	return mix64(s.state)
}

// Int63 implements rand.Source.
func (s *Source) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed re-places the source on a stream key (rand.Source interface).
func (s *Source) Seed(seed int64) { s.state = uint64(seed) }

// SetKey re-places the source on a stream key without going through
// the deprecated rand.Rand.Seed: workers keep one (Source, Rand) pair
// and call SetKey between entities, so per-entity streams cost zero
// allocations.
func (s *Source) SetKey(key uint64) { s.state = key }
