package rng

import (
	"math"
	"testing"
)

func TestStreamsAreDeterministic(t *testing.T) {
	a := New(Key2(7, 3, 9))
	b := New(Key2(7, 3, 9))
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same key diverged at draw %d", i)
		}
	}
}

func TestNeighbouringKeysDecorrelate(t *testing.T) {
	// Adjacent entity identities must produce unrelated streams: the
	// first draws of keys (seed, i) for consecutive i should look
	// uniform, not shifted copies.
	var mean float64
	const n = 2000
	for i := 0; i < n; i++ {
		mean += New(Key(1, uint64(i))).Float64()
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("first-draw mean %v, want ~0.5", mean)
	}
}

func TestSetKeyMatchesFreshSource(t *testing.T) {
	src := &Source{}
	r := New(0)
	_ = r
	reused := NewSource(0)
	for _, key := range []uint64{42, 0, 1 << 63, 0xdeadbeef} {
		src.SetKey(key)
		fresh := NewSource(key)
		for i := 0; i < 8; i++ {
			if g, w := src.Uint64(), fresh.Uint64(); g != w {
				t.Fatalf("key %#x draw %d: SetKey stream %v != fresh stream %v", key, i, g, w)
			}
		}
		_ = reused
	}
}

func TestUniformity(t *testing.T) {
	// Coarse bucket test over one long stream.
	r := New(Key(99, 1))
	var buckets [16]int
	const n = 160000
	for i := 0; i < n; i++ {
		buckets[r.Uint64()>>60]++
	}
	for b, c := range buckets {
		if math.Abs(float64(c)-n/16) > n/16*0.05 {
			t.Fatalf("bucket %d count %d deviates >5%% from %d", b, c, n/16)
		}
	}
}
