// Package ipam provides deterministic IPv4 address allocation for the
// synthetic Internet used by the reproduction: IXP peering LANs, IXP
// management LANs, per-AS infrastructure prefixes, and point-to-point
// link addresses. Allocations are sequential and collision-free within
// one Allocator, which makes generated worlds reproducible for a given
// seed and generation order.
package ipam

import (
	"fmt"
	"net/netip"
)

// Allocator hands out IPv4 prefixes from a root prefix, and individual
// addresses from previously allocated prefixes. The zero value is not
// usable; construct with New.
type Allocator struct {
	root netip.Prefix
	// next is the first address of the next unallocated block.
	next netip.Addr
	// cursors tracks the next free host address inside each allocated
	// prefix.
	cursors map[netip.Prefix]netip.Addr
}

// New returns an Allocator that carves blocks out of root. Root must be
// a valid IPv4 prefix.
func New(root netip.Prefix) (*Allocator, error) {
	if !root.IsValid() || !root.Addr().Is4() {
		return nil, fmt.Errorf("ipam: root %v is not a valid IPv4 prefix", root)
	}
	root = root.Masked()
	return &Allocator{
		root:    root,
		next:    root.Addr(),
		cursors: make(map[netip.Prefix]netip.Addr),
	}, nil
}

// MustNew is New, panicking on error; intended for package-level
// defaults with constant inputs.
func MustNew(root netip.Prefix) *Allocator {
	a, err := New(root)
	if err != nil {
		panic(err)
	}
	return a
}

// Root returns the allocator's root prefix.
func (a *Allocator) Root() netip.Prefix { return a.root }

// AllocPrefix carves the next /bits prefix from the root. It returns an
// error when bits is coarser than the root or when the root is
// exhausted.
func (a *Allocator) AllocPrefix(bits int) (netip.Prefix, error) {
	if bits < a.root.Bits() || bits > 32 {
		return netip.Prefix{}, fmt.Errorf("ipam: cannot allocate /%d from %v", bits, a.root)
	}
	// Align next up to a /bits boundary.
	start := alignUp(a.next, bits)
	p := netip.PrefixFrom(start, bits).Masked()
	if !a.root.Contains(start) || !a.root.Contains(lastAddr(p)) {
		return netip.Prefix{}, fmt.Errorf("ipam: root %v exhausted allocating /%d", a.root, bits)
	}
	a.next = nextAddrAfter(p)
	a.cursors[p] = p.Addr().Next() // skip network address
	return p, nil
}

// AllocAddr returns the next unused host address from a prefix
// previously returned by AllocPrefix on the same allocator.
func (a *Allocator) AllocAddr(p netip.Prefix) (netip.Addr, error) {
	cur, ok := a.cursors[p]
	if !ok {
		return netip.Addr{}, fmt.Errorf("ipam: prefix %v was not allocated here", p)
	}
	if !p.Contains(cur) || cur == lastAddr(p) {
		return netip.Addr{}, fmt.Errorf("ipam: prefix %v exhausted", p)
	}
	a.cursors[p] = cur.Next()
	return cur, nil
}

// Remaining reports how many host addresses are still available in p
// (excluding the broadcast address).
func (a *Allocator) Remaining(p netip.Prefix) int {
	cur, ok := a.cursors[p]
	if !ok {
		return 0
	}
	n := 0
	for p.Contains(cur) && cur != lastAddr(p) {
		n++
		cur = cur.Next()
	}
	return n
}

// alignUp rounds addr up to the next /bits block boundary.
func alignUp(addr netip.Addr, bits int) netip.Addr {
	u := addrToUint32(addr)
	size := uint32(1) << (32 - bits)
	if r := u % size; r != 0 {
		u += size - r
	}
	return uint32ToAddr(u)
}

// nextAddrAfter returns the first address after prefix p.
func nextAddrAfter(p netip.Prefix) netip.Addr {
	u := addrToUint32(p.Addr())
	size := uint32(1) << (32 - p.Bits())
	return uint32ToAddr(u + size)
}

// lastAddr returns the highest address inside p.
func lastAddr(p netip.Prefix) netip.Addr {
	u := addrToUint32(p.Addr())
	size := uint32(1) << (32 - p.Bits())
	return uint32ToAddr(u + size - 1)
}

func addrToUint32(a netip.Addr) uint32 {
	b := a.As4()
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func uint32ToAddr(u uint32) netip.Addr {
	return netip.AddrFrom4([4]byte{byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u)})
}
