package ipam

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func mustPrefix(t *testing.T, s string) netip.Prefix {
	t.Helper()
	p, err := netip.ParsePrefix(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewRejectsInvalid(t *testing.T) {
	if _, err := New(netip.Prefix{}); err == nil {
		t.Error("want error for zero prefix")
	}
	v6 := netip.MustParsePrefix("2001:db8::/32")
	if _, err := New(v6); err == nil {
		t.Error("want error for IPv6 root")
	}
}

func TestAllocPrefixSequential(t *testing.T) {
	a, err := New(mustPrefix(t, "10.0.0.0/8"))
	if err != nil {
		t.Fatal(err)
	}
	p1, err := a.AllocPrefix(22)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.AllocPrefix(22)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != "10.0.0.0/22" {
		t.Errorf("first prefix = %v, want 10.0.0.0/22", p1)
	}
	if p2.String() != "10.0.4.0/22" {
		t.Errorf("second prefix = %v, want 10.0.4.0/22", p2)
	}
	if p1.Overlaps(p2) {
		t.Error("allocated prefixes overlap")
	}
}

func TestAllocPrefixMixedSizesNoOverlap(t *testing.T) {
	a := MustNew(mustPrefix(t, "10.0.0.0/8"))
	var ps []netip.Prefix
	for _, bits := range []int{24, 30, 22, 28, 24, 16, 30} {
		p, err := a.AllocPrefix(bits)
		if err != nil {
			t.Fatalf("alloc /%d: %v", bits, err)
		}
		ps = append(ps, p)
	}
	for i := range ps {
		for j := i + 1; j < len(ps); j++ {
			if ps[i].Overlaps(ps[j]) {
				t.Errorf("prefixes overlap: %v and %v", ps[i], ps[j])
			}
		}
	}
}

func TestAllocPrefixExhaustion(t *testing.T) {
	a := MustNew(mustPrefix(t, "192.168.0.0/24"))
	if _, err := a.AllocPrefix(25); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocPrefix(25); err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocPrefix(25); err == nil {
		t.Error("want exhaustion error on third /25 from a /24")
	}
	if _, err := a.AllocPrefix(8); err == nil {
		t.Error("want error allocating /8 from /24 root")
	}
}

func TestAllocAddr(t *testing.T) {
	a := MustNew(mustPrefix(t, "10.0.0.0/8"))
	p, err := a.AllocPrefix(30)
	if err != nil {
		t.Fatal(err)
	}
	ip1, err := a.AllocAddr(p)
	if err != nil {
		t.Fatal(err)
	}
	ip2, err := a.AllocAddr(p)
	if err != nil {
		t.Fatal(err)
	}
	if ip1 == ip2 {
		t.Error("duplicate addresses allocated")
	}
	if !p.Contains(ip1) || !p.Contains(ip2) {
		t.Errorf("addresses %v, %v outside prefix %v", ip1, ip2, p)
	}
	if ip1 == p.Addr() {
		t.Error("network address must be skipped")
	}
	// A /30 has 2 usable hosts (network and broadcast excluded).
	if _, err := a.AllocAddr(p); err == nil {
		t.Error("want exhaustion after 2 hosts in a /30")
	}
}

func TestAllocAddrUnknownPrefix(t *testing.T) {
	a := MustNew(mustPrefix(t, "10.0.0.0/8"))
	if _, err := a.AllocAddr(mustPrefix(t, "172.16.0.0/24")); err == nil {
		t.Error("want error for foreign prefix")
	}
}

func TestRemaining(t *testing.T) {
	a := MustNew(mustPrefix(t, "10.0.0.0/8"))
	p, _ := a.AllocPrefix(29) // 6 usable hosts
	if got := a.Remaining(p); got != 6 {
		t.Errorf("Remaining fresh /29 = %d, want 6", got)
	}
	_, _ = a.AllocAddr(p)
	if got := a.Remaining(p); got != 5 {
		t.Errorf("Remaining after one alloc = %d, want 5", got)
	}
	if got := a.Remaining(mustPrefix(t, "172.16.0.0/24")); got != 0 {
		t.Errorf("Remaining of foreign prefix = %d, want 0", got)
	}
}

func TestUniqueAddressesProperty(t *testing.T) {
	f := func(n uint8) bool {
		a := MustNew(netip.MustParsePrefix("10.0.0.0/8"))
		p, err := a.AllocPrefix(20)
		if err != nil {
			return false
		}
		seen := make(map[netip.Addr]bool)
		for i := 0; i < int(n); i++ {
			ip, err := a.AllocAddr(p)
			if err != nil {
				return false
			}
			if seen[ip] {
				return false
			}
			seen[ip] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []string {
		a := MustNew(netip.MustParsePrefix("100.64.0.0/10"))
		var out []string
		for i := 0; i < 5; i++ {
			p, err := a.AllocPrefix(24)
			if err != nil {
				t.Fatal(err)
			}
			ip, err := a.AllocAddr(p)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, p.String(), ip.String())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("allocation not deterministic at %d: %s vs %s", i, a[i], b[i])
		}
	}
}
