package host

import (
	"context"
	"errors"
	"io"
	"log"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpeer/internal/netsim"
	"rpeer/pkg/rpi"
)

// tinyFactory builds millisecond-scale worlds: the standard inputs
// seam for host tests (each tenant's world derives from its seed).
func tinyFactory() func(TenantSpec) (rpi.Inputs, error) {
	return func(sp TenantSpec) (rpi.Inputs, error) {
		cfg := netsim.TinyConfig()
		if sp.Seed != 0 {
			cfg.Seed = sp.Seed
		}
		return rpi.InputsFromConfig(cfg, sp.Seed)
	}
}

func quiet() *log.Logger { return log.New(io.Discard, "", 0) }

func newHost(t *testing.T, cfg Config) *Host {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Inputs == nil {
		cfg.Inputs = tinyFactory()
	}
	if cfg.Logger == nil {
		cfg.Logger = quiet()
	}
	h, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	return h
}

func mustCreate(t *testing.T, h *Host, name string, seed int64) {
	t.Helper()
	if err := h.Create(TenantSpec{Name: name, Seed: seed}); err != nil {
		t.Fatal(err)
	}
}

// churn returns a small valid delta for the tenant's world.
func churn(t *testing.T, h *Host, lease *Lease) rpi.Delta {
	t.Helper()
	eng := lease.Guard().Engine()
	if eng == nil {
		t.Fatal("no engine under lease")
	}
	return rpi.ChurnDelta(eng.Inputs(), 0.02, 7)
}

func TestLifecycleBasics(t *testing.T) {
	h := newHost(t, Config{MaxTenants: 2})
	mustCreate(t, h, "a", 1)

	if err := h.Create(TenantSpec{Name: "a"}); !errors.Is(err, ErrTenantExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := h.Create(TenantSpec{Name: "../evil"}); !errors.Is(err, ErrBadTenantName) {
		t.Fatalf("bad name: %v", err)
	}
	mustCreate(t, h, "b", 2)
	if err := h.Create(TenantSpec{Name: "c"}); !errors.Is(err, ErrTooManyTenants) {
		t.Fatalf("over limit: %v", err)
	}
	if _, err := h.Lease(context.Background(), "nope"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("unknown lease: %v", err)
	}

	// Registered tenants are cold until first touch.
	if st := h.Tenants(); st[0].State != "cold" || st[1].State != "cold" {
		t.Fatalf("fresh tenants not cold: %+v", st)
	}
	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if rep, err := lease.Guard().Snapshot(); err != nil || len(rep.Inferences) == 0 {
		t.Fatalf("snapshot under lease: %v (%d inferences)", err, len(rep.Inferences))
	}
	if st := h.Tenants()[0]; st.State != "serving" || st.Leases != 1 || st.Opens != 1 {
		t.Fatalf("leased tenant status: %+v", st)
	}
	lease.Release()
	lease.Release() // double release must not double-decrement
	if st := h.Tenants()[0]; st.Leases != 0 {
		t.Fatalf("leases did not drain: %+v", st)
	}

	if err := h.Delete("a", true); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Lease(context.Background(), "a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("deleted lease: %v", err)
	}
	if err := h.Delete("a", false); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("double delete: %v", err)
	}
}

// TestManifestPersistsTenants: tenants survive a host restart (cold —
// engines reopen lazily from their directories).
func TestManifestPersistsTenants(t *testing.T) {
	dir := t.TempDir()
	h := newHost(t, Config{Dir: dir})
	mustCreate(t, h, "a", 1)
	mustCreate(t, h, "b", 2)

	// Touch "a" and move its world so the restart has state to recover.
	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	up, err := lease.Guard().Apply(context.Background(), churn(t, h, lease))
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	h2 := newHost(t, Config{Dir: dir})
	st := h2.Tenants()
	if len(st) != 2 || st[0].Name != "a" || st[1].Name != "b" || st[0].State != "cold" {
		t.Fatalf("reloaded tenants: %+v", st)
	}
	lease2, err := h2.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer lease2.Release()
	if got := lease2.Guard().Engine().Seq(); got != up.Seq {
		t.Fatalf("recovered seq = %d, want %d", got, up.Seq)
	}
}

// TestIdleEvictionAndReopen: an idle tenant is evicted with a final
// checkpoint; the next lease reopens it at the same seq, under a fresh
// guard.
func TestIdleEvictionAndReopen(t *testing.T) {
	h := newHost(t, Config{IdleTimeout: time.Hour})
	mustCreate(t, h, "a", 1)

	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	g1 := lease.Guard()
	up, err := g1.Apply(context.Background(), churn(t, h, lease))
	if err != nil {
		t.Fatal(err)
	}

	// An active lease pins the tenant: no eviction however idle the
	// clock claims it is.
	if n := h.Sweep(time.Now().Add(2 * time.Hour)); n != 0 {
		t.Fatalf("evicted %d tenants under an active lease", n)
	}
	lease.Release()
	if n := h.Sweep(time.Now()); n != 0 {
		t.Fatalf("evicted %d tenants before IdleTimeout", n)
	}
	if n := h.Sweep(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("idle sweep evicted %d tenants, want 1", n)
	}
	if st := h.Tenants()[0]; st.State != "cold" || st.Evictions != 1 {
		t.Fatalf("evicted status: %+v", st)
	}

	lease2, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer lease2.Release()
	if lease2.Guard() == g1 {
		t.Fatal("reopened tenant kept the old guard")
	}
	if got := lease2.Guard().Engine().Seq(); got != up.Seq {
		t.Fatalf("reopened seq = %d, want %d", got, up.Seq)
	}
	if st := h.Tenants()[0]; st.Opens != 2 {
		t.Fatalf("opens = %d, want 2", st.Opens)
	}
}

// TestDeleteDrainsActiveLeases: deletion under load is graceful — the
// tenant vanishes from the registry immediately, in-flight holders
// keep a working engine, and the engine closes on the last release.
func TestDeleteDrainsActiveLeases(t *testing.T) {
	h := newHost(t, Config{})
	mustCreate(t, h, "a", 1)

	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Delete("a", false); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Lease(context.Background(), "a"); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("lease after delete: %v", err)
	}
	// The holder's engine still serves — reads and writes both.
	if _, err := lease.Guard().Snapshot(); err != nil {
		t.Fatalf("read under draining delete: %v", err)
	}
	if _, err := lease.Guard().Apply(context.Background(), churn(t, h, lease)); err != nil {
		t.Fatalf("write under draining delete: %v", err)
	}
	g := lease.Guard()
	lease.Release()
	// Drained: the engine is closed now.
	if _, err := g.Apply(context.Background(), rpi.Delta{}); err == nil {
		t.Fatal("apply after drain-close succeeded")
	}
}

// TestEvictionRacesLease hammers Sweep against lease/release churn
// under -race: every admitted lease must observe a working engine, and
// the sweep must never close one out from under a holder.
func TestEvictionRacesLease(t *testing.T) {
	h := newHost(t, Config{IdleTimeout: time.Nanosecond})
	mustCreate(t, h, "a", 1)

	// Warm once so the race runs over reopen, not first build.
	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	lease.Release()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				h.Sweep(time.Now().Add(time.Hour))
			}
		}
	}()
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				l, err := h.Lease(context.Background(), "a")
				if err != nil {
					t.Errorf("lease: %v", err)
					return
				}
				if _, _, _, err := l.Guard().Published(); err != nil {
					t.Errorf("published under lease: %v", err)
				}
				l.Release()
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()

	l, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Release()
	if _, err := l.Guard().Snapshot(); err != nil {
		t.Fatal(err)
	}
}

// TestCreateDeleteRacingTraffic churns one tenant's existence while
// readers hammer all three: the only error a reader may see is
// ErrUnknownTenant, and the survivors never miss a beat.
func TestCreateDeleteRacingTraffic(t *testing.T) {
	h := newHost(t, Config{})
	for i, name := range []string{"t0", "t1", "t2"} {
		mustCreate(t, h, name, int64(i+1))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, name := range []string{"t0", "t1", "t2"} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l, err := h.Lease(context.Background(), name)
				if err != nil {
					if errors.Is(err, ErrUnknownTenant) {
						continue // t1 mid-recreate
					}
					t.Errorf("lease %s: %v", name, err)
					return
				}
				if _, err := l.Guard().Snapshot(); err != nil {
					t.Errorf("snapshot %s: %v", name, err)
				}
				l.Release()
			}
		}()
	}
	for i := 0; i < 10; i++ {
		if err := h.Delete("t1", true); err != nil {
			t.Fatalf("delete round %d: %v", i, err)
		}
		if err := h.Create(TenantSpec{Name: "t1", Seed: 2}); err != nil {
			t.Fatalf("recreate round %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()

	for _, st := range h.Tenants() {
		if st.Leases != 0 {
			t.Fatalf("%s leases did not drain: %+v", st.Name, st)
		}
	}
}

// TestQuarantineIsolation: a fault in one tenant quarantines and heals
// that tenant alone; its sibling keeps serving and writing throughout.
func TestQuarantineIsolation(t *testing.T) {
	var bomb atomic.Bool
	h := newHost(t, Config{
		Options: []rpi.Option{rpi.WithApplyHook(func(uint64, rpi.Delta) {
			if bomb.CompareAndSwap(true, false) {
				panic("host_test: injected engine fault")
			}
		})},
	})
	mustCreate(t, h, "a", 1)
	mustCreate(t, h, "b", 2)

	la, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer la.Release()
	lb, err := h.Lease(context.Background(), "b")
	if err != nil {
		t.Fatal(err)
	}
	defer lb.Release()

	bomb.Store(true)
	if _, err := la.Guard().Apply(context.Background(), churn(t, h, la)); err == nil {
		t.Fatal("faulting apply succeeded")
	}
	if !la.Guard().Quarantined() {
		t.Fatal("tenant a not quarantined")
	}
	// Sibling untouched: b still reads and writes.
	if _, err := lb.Guard().Apply(context.Background(), churn(t, h, lb)); err != nil {
		t.Fatalf("sibling apply during a's quarantine: %v", err)
	}
	if lb.Guard().Stats().Faults != 0 {
		t.Fatal("sibling counted a fault")
	}
	// And a heals in place (same guard — the lease keeps working).
	deadline := time.Now().Add(10 * time.Second)
	for la.Guard().Quarantined() {
		if time.Now().After(deadline) {
			t.Fatal("tenant a never recovered")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := la.Guard().Apply(context.Background(), churn(t, h, la)); err != nil {
		t.Fatalf("apply after recovery: %v", err)
	}
	if st := h.Tenants(); st[0].Recoveries != 1 || st[1].Faults != 0 {
		t.Fatalf("isolation accounting: %+v", st)
	}
}
