// Package host multiplexes many independent inference engines — one
// per tenant — behind a single serving process. Each tenant owns a
// private world (its own base inputs, derived deterministically from
// its spec), a private data directory (write-ahead log + snapshots,
// via rpi.Open), and a private supervisor.Guard, so a fault in one
// tenant quarantines and heals that tenant alone; its siblings never
// notice.
//
// The host is lazy and elastic: registering a tenant costs a manifest
// entry, the engine is built (or recovered from its directory) on the
// first lease, and a tenant idle past IdleTimeout is evicted — its
// engine closes cleanly, publishing a final snapshot so the next lease
// reopens from the snapshot without replay. Active leases pin a tenant:
// a long-lived subscriber blocks eviction for exactly as long as it is
// attached.
//
// Tenant lifecycle, as the serving plane sees it:
//
//	registered ──first lease──▶ serving ──idle──▶ evicted (cold)
//	     ▲                        │  ▲              │
//	     │                 fault  ▼  │ healed       │ lease
//	  Create              quarantined               ▼
//	                                             serving
//
// Deletion is graceful under load: the tenant disappears from the
// registry immediately (new leases fail with ErrUnknownTenant), while
// requests already holding a lease finish against the old guard; the
// engine closes when the last lease releases.
package host

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"

	"rpeer/internal/supervisor"
	"rpeer/pkg/rpi"
)

var (
	// ErrUnknownTenant is returned for a tenant that was never created
	// or has been deleted. Upstream maps it to 404.
	ErrUnknownTenant = errors.New("host: unknown tenant")
	// ErrTenantExists is returned by Create for a duplicate name (409).
	ErrTenantExists = errors.New("host: tenant already exists")
	// ErrBadTenantName rejects names that are not path- and URL-safe.
	ErrBadTenantName = errors.New("host: bad tenant name (want [a-zA-Z0-9][a-zA-Z0-9_-]{0,63})")
	// ErrTooManyTenants is returned by Create past Config.MaxTenants.
	ErrTooManyTenants = errors.New("host: tenant limit reached")
	// ErrHostClosed is returned once Close has begun: the process is
	// draining (503 upstream).
	ErrHostClosed = errors.New("host: shutting down")
)

// tenantName is the path-safe shape of a tenant name: it becomes a
// directory under Dir and a URL segment under /v1/t/.
var tenantName = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9_-]{0,63}$`)

// TenantSpec is the durable identity of a tenant: everything needed to
// rebuild its base world deterministically. It is what the manifest
// persists and what Create accepts over the wire.
type TenantSpec struct {
	Name string `json:"name"`
	// Seed derives the tenant's base world; two tenants with the same
	// seed and profile hold identical (but fully independent) worlds.
	Seed int64 `json:"seed,omitempty"`
	// Profile selects the world scale; interpretation belongs to the
	// Config.Inputs factory (cmd/rpi-serve maps "tiny" and "default").
	Profile string `json:"profile,omitempty"`
}

// Config tunes a Host.
type Config struct {
	// Dir is the root data directory; each tenant persists under
	// Dir/tenants/<name>. Empty disables the manifest (tenants live
	// only as long as the process) — pair it with a memory-backed WAL
	// via Options for fully in-memory hosts.
	Dir string
	// Inputs builds a tenant's base world from its spec. Required.
	Inputs func(TenantSpec) (rpi.Inputs, error)
	// Options is passed through to every rpi.Open (WAL filesystem,
	// snapshot cadence, ...).
	Options []rpi.Option
	// MaxTenants bounds the registry (default 64).
	MaxTenants int
	// IdleTimeout evicts a tenant with no active leases after this long
	// since its last release; zero disables eviction.
	IdleTimeout time.Duration
	// SweepInterval is how often the eviction sweep runs (default
	// IdleTimeout/4, floored at 1s).
	SweepInterval time.Duration
	// DrainTimeout bounds how long Close waits for active leases before
	// closing engines under them (default 5s).
	DrainTimeout time.Duration
	// Logger receives open/evict/delete events (default log.Default()).
	Logger *log.Logger
}

// tenant is one registry entry. Its mutex serializes lifecycle
// transitions (open, evict, delete, drain) for this tenant only —
// tenants never block one another.
type tenant struct {
	spec TenantSpec
	dir  string

	mu      sync.Mutex
	guard   *supervisor.Guard // nil while cold
	leases  int               // active leases; nonzero pins the engine
	lastUse time.Time         // of the most recent release
	deleted bool
	purge   bool // remove the data directory once drained

	opens     uint64
	evictions uint64
}

// Host is the tenant registry.
type Host struct {
	cfg Config

	mu      sync.Mutex
	tenants map[string]*tenant
	closed  bool
	stop    chan struct{}
	done    chan struct{}
}

// Open builds a Host and reloads the tenant manifest from Dir (specs
// only — engines stay cold until first lease, so a host fronting a
// hundred tenants restarts in milliseconds and pays recovery per
// tenant on first touch).
func Open(cfg Config) (*Host, error) {
	if cfg.Inputs == nil {
		return nil, errors.New("host: Config.Inputs factory is required")
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = 64
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 5 * time.Second
	}
	if cfg.Logger == nil {
		cfg.Logger = log.Default()
	}
	if cfg.IdleTimeout > 0 && cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.IdleTimeout / 4
		if cfg.SweepInterval < time.Second {
			cfg.SweepInterval = time.Second
		}
	}
	h := &Host{
		cfg:     cfg,
		tenants: make(map[string]*tenant),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	specs, err := h.loadManifest()
	if err != nil {
		return nil, err
	}
	for _, sp := range specs {
		h.tenants[sp.Name] = h.newTenant(sp)
	}
	if cfg.IdleTimeout > 0 {
		go h.sweepLoop()
	} else {
		close(h.done)
	}
	return h, nil
}

func (h *Host) newTenant(sp TenantSpec) *tenant {
	return &tenant{
		spec:    sp,
		dir:     filepath.Join(h.cfg.Dir, "tenants", sp.Name),
		lastUse: time.Now(),
	}
}

// Create registers a tenant. The engine is not built yet — the first
// lease pays for the world.
func (h *Host) Create(sp TenantSpec) error {
	if !tenantName.MatchString(sp.Name) {
		return fmt.Errorf("%w: %q", ErrBadTenantName, sp.Name)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrHostClosed
	}
	if _, ok := h.tenants[sp.Name]; ok {
		return fmt.Errorf("%w: %q", ErrTenantExists, sp.Name)
	}
	if len(h.tenants) >= h.cfg.MaxTenants {
		return fmt.Errorf("%w (%d)", ErrTooManyTenants, h.cfg.MaxTenants)
	}
	h.tenants[sp.Name] = h.newTenant(sp)
	if err := h.saveManifestLocked(); err != nil {
		delete(h.tenants, sp.Name)
		return err
	}
	h.cfg.Logger.Printf("host: tenant %q created (seed %d, profile %q)", sp.Name, sp.Seed, sp.Profile)
	return nil
}

// Delete unregisters a tenant. New leases fail immediately with
// ErrUnknownTenant; leases already held finish against the old guard
// and the engine closes when the last one releases. With purge the
// tenant's data directory is removed once drained — otherwise the
// durable state stays on disk and re-Creating the tenant resumes it.
func (h *Host) Delete(name string, purge bool) error {
	h.mu.Lock()
	t, ok := h.tenants[name]
	if !ok {
		h.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	delete(h.tenants, name)
	err := h.saveManifestLocked()
	h.mu.Unlock()
	if err != nil {
		h.cfg.Logger.Printf("host: tenant %q deleted but manifest rewrite failed: %v", name, err)
	}

	t.mu.Lock()
	t.deleted = true
	t.purge = purge
	drained := t.leases == 0
	if drained {
		t.closeLocked("deleted")
	}
	t.mu.Unlock()
	if drained {
		h.cfg.Logger.Printf("host: tenant %q deleted", name)
	} else {
		h.cfg.Logger.Printf("host: tenant %q deleted; draining active leases", name)
	}
	return nil
}

// Lease pins a tenant's engine for the duration of one request (or one
// stream): the engine is opened — built fresh or recovered from its
// directory — on first touch, and cannot be evicted or finally closed
// while leases are outstanding. Callers must Release.
func (h *Host) Lease(ctx context.Context, name string) (*Lease, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHostClosed
	}
	t, ok := h.tenants[name]
	h.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}

	t.mu.Lock()
	defer t.mu.Unlock()
	if t.deleted {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	if t.guard == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := h.openLocked(t); err != nil {
			return nil, err
		}
	}
	t.leases++
	return &Lease{host: h, t: t, g: t.guard}, nil
}

// openLocked builds the tenant's guard and engine. Called with t.mu
// held: concurrent first leases build the world exactly once, and an
// open can never interleave with an eviction's close on the same
// directory.
func (h *Host) openLocked(t *tenant) error {
	in, err := h.cfg.Inputs(t.spec)
	if err != nil {
		return fmt.Errorf("host: tenant %q inputs: %w", t.spec.Name, err)
	}
	dir, opts, logger := t.dir, h.cfg.Options, h.cfg.Logger
	reopen := func() (*rpi.Engine, *rpi.RecoveryInfo, error) {
		return rpi.Open(dir, in, opts...)
	}
	start := time.Now()
	eng, info, err := reopen()
	if err != nil {
		return fmt.Errorf("host: tenant %q open: %w", t.spec.Name, err)
	}
	g := supervisor.New(supervisor.Options{Reopen: reopen, Logger: logger})
	g.Publish(eng)
	t.guard = g
	t.opens++
	logger.Printf("host: tenant %q open: seq %d (replayed %d) in %s",
		t.spec.Name, info.Seq, info.Replayed, time.Since(start).Round(time.Millisecond))
	return nil
}

// closeLocked tears the engine down (final snapshot via Engine.Close
// inside Guard.Close) and purges the directory if requested. Called
// with t.mu held and t.leases == 0.
func (t *tenant) closeLocked(why string) {
	if t.guard != nil {
		if err := t.guard.Close(); err != nil {
			log.Printf("host: tenant %q close (%s): %v", t.spec.Name, why, err)
		}
		t.guard = nil
	}
	if t.deleted && t.purge && t.dir != "" {
		_ = os.RemoveAll(t.dir)
	}
}

// Lease pins one tenant's guard. The guard pointer is stable for the
// lease's lifetime even if the tenant is deleted or the host closes
// underneath it.
type Lease struct {
	host *Host
	t    *tenant
	g    *supervisor.Guard

	mu       sync.Mutex
	released bool
}

// Guard returns the tenant's supervisor for the duration of the lease.
func (l *Lease) Guard() *supervisor.Guard { return l.g }

// Tenant returns the tenant name.
func (l *Lease) Tenant() string { return l.t.spec.Name }

// Release unpins the tenant. The last release of a deleted tenant
// closes its engine (and purges its directory if requested). Safe to
// call more than once.
func (l *Lease) Release() {
	l.mu.Lock()
	if l.released {
		l.mu.Unlock()
		return
	}
	l.released = true
	l.mu.Unlock()

	t := l.t
	t.mu.Lock()
	t.leases--
	t.lastUse = time.Now()
	if t.deleted && t.leases == 0 {
		t.closeLocked("drained after delete")
	}
	t.mu.Unlock()
}

// sweepLoop evicts idle tenants until the host closes.
func (h *Host) sweepLoop() {
	defer close(h.done)
	tick := time.NewTicker(h.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-tick.C:
			h.Sweep(time.Now())
		}
	}
}

// Sweep evicts every tenant whose engine is open, lease-free and idle
// since before now-IdleTimeout, returning how many were evicted. The
// background loop calls it on SweepInterval; tests call it directly to
// make eviction deterministic. Eviction closes the engine cleanly —
// final snapshot published — so the next lease reopens without replay.
func (h *Host) Sweep(now time.Time) int {
	if h.cfg.IdleTimeout <= 0 {
		return 0
	}
	h.mu.Lock()
	ts := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		ts = append(ts, t)
	}
	h.mu.Unlock()

	n := 0
	for _, t := range ts {
		t.mu.Lock()
		if t.guard != nil && t.leases == 0 && !t.deleted && now.Sub(t.lastUse) >= h.cfg.IdleTimeout {
			// A quarantined tenant is healing in the background; let the
			// recovery finish rather than racing its republish.
			if !t.guard.Quarantined() {
				t.closeLocked("idle")
				t.evictions++
				n++
				h.cfg.Logger.Printf("host: tenant %q evicted after %s idle", t.spec.Name, h.cfg.IdleTimeout)
			}
		}
		t.mu.Unlock()
	}
	return n
}

// TenantStatus is one tenant's observable state.
type TenantStatus struct {
	Name    string `json:"name"`
	Seed    int64  `json:"seed,omitempty"`
	Profile string `json:"profile,omitempty"`
	// State is cold (registered, engine not open), serving, or
	// quarantined (healing; reads keep serving the last good snapshot).
	State     string `json:"state"`
	Leases    int    `json:"leases"`
	Opens     uint64 `json:"opens"`
	Evictions uint64 `json:"evictions"`
	// Supervisor detail, present while the engine is open.
	AckedSeq   uint64 `json:"acked_seq,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	Faults     uint64 `json:"faults,omitempty"`
	Recoveries uint64 `json:"recoveries,omitempty"`
}

// Tenants lists every registered tenant's status, sorted by name.
func (h *Host) Tenants() []TenantStatus {
	h.mu.Lock()
	ts := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		ts = append(ts, t)
	}
	h.mu.Unlock()

	out := make([]TenantStatus, 0, len(ts))
	for _, t := range ts {
		t.mu.Lock()
		st := TenantStatus{
			Name: t.spec.Name, Seed: t.spec.Seed, Profile: t.spec.Profile,
			State: "cold", Leases: t.leases, Opens: t.opens, Evictions: t.evictions,
		}
		if t.guard != nil {
			gs := t.guard.Stats()
			st.State = "serving"
			if gs.Quarantined {
				st.State = "quarantined"
			}
			st.AckedSeq, st.Generation = gs.AckedSeq, gs.Generation
			st.Faults, st.Recoveries = gs.Faults, gs.Recoveries
		}
		t.mu.Unlock()
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Close drains the host: new leases fail with ErrHostClosed, active
// leases get up to DrainTimeout to release, then every open engine is
// closed cleanly (final snapshot). Safe to call more than once.
func (h *Host) Close() error {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		<-h.done
		return nil
	}
	h.closed = true
	close(h.stop)
	ts := make([]*tenant, 0, len(h.tenants))
	for _, t := range h.tenants {
		ts = append(ts, t)
	}
	h.mu.Unlock()
	<-h.done

	deadline := time.Now().Add(h.cfg.DrainTimeout)
	for _, t := range ts {
		for {
			t.mu.Lock()
			if t.leases == 0 || time.Now().After(deadline) {
				if t.leases != 0 {
					h.cfg.Logger.Printf("host: tenant %q closing with %d leases still active", t.spec.Name, t.leases)
				}
				t.closeLocked("host shutdown")
				t.mu.Unlock()
				break
			}
			t.mu.Unlock()
			time.Sleep(5 * time.Millisecond)
		}
	}
	return nil
}

// manifestPath is where the tenant specs persist under Dir.
func (h *Host) manifestPath() string { return filepath.Join(h.cfg.Dir, "tenants.json") }

type manifest struct {
	Tenants []TenantSpec `json:"tenants"`
}

func (h *Host) loadManifest() ([]TenantSpec, error) {
	if h.cfg.Dir == "" {
		return nil, nil
	}
	b, err := os.ReadFile(h.manifestPath())
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("host: read manifest: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("host: parse manifest: %w", err)
	}
	for _, sp := range m.Tenants {
		if !tenantName.MatchString(sp.Name) {
			return nil, fmt.Errorf("%w: %q (in manifest)", ErrBadTenantName, sp.Name)
		}
	}
	return m.Tenants, nil
}

// saveManifestLocked rewrites the manifest atomically (temp + rename).
// Called with h.mu held.
func (h *Host) saveManifestLocked() error {
	if h.cfg.Dir == "" {
		return nil
	}
	m := manifest{Tenants: make([]TenantSpec, 0, len(h.tenants))}
	for _, t := range h.tenants {
		m.Tenants = append(m.Tenants, t.spec)
	}
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].Name < m.Tenants[j].Name })
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(h.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("host: manifest dir: %w", err)
	}
	tmp := h.manifestPath() + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("host: write manifest: %w", err)
	}
	if err := os.Rename(tmp, h.manifestPath()); err != nil {
		return fmt.Errorf("host: publish manifest: %w", err)
	}
	return nil
}
