// Package admission is the overload valve of the serving plane:
// per-endpoint-class concurrency limits with a bounded, deadline-aware
// wait queue in front of each, and load shedding once the queue is
// full. The design goal is that the server's answer to saturation is
// a fast 503 (+ Retry-After upstream), never an unbounded queue whose
// latency grows until every caller times out anyway.
//
// Work is divided into classes because the endpoints have wildly
// different costs: a per-IXP report is a filtered map walk, a full
// wire report marshals the whole world, an apply holds the engine's
// write lock through a re-inference, and a stream parks a goroutine
// for minutes. One shared limit would let the cheap traffic starve
// behind the expensive traffic (or vice versa); per-class gates keep
// each population independently bounded.
//
// Admission order inside one class is slot-first, then FIFO-free
// queue: an arriving request takes a free slot immediately; otherwise
// it waits — bounded by the queue cap, its own context deadline, and
// the class's MaxWait — for a slot to free up. A request that would
// push the queue past its cap is shed immediately with ErrOverloaded;
// a queued request whose wait expires is shed the same way; a queued
// request whose caller disconnects leaves with the context's error.
package admission

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded is returned when a request is shed: every slot busy
// and the wait queue full, or the bounded wait expired before a slot
// freed. The caller should answer 503 with a Retry-After hint.
var ErrOverloaded = errors.New("admission: overloaded, try again")

// Class buckets requests by cost profile.
type Class int

const (
	// Cheap is the light read traffic: per-IXP reports, small queries.
	Cheap Class = iota
	// Read is the heavy read traffic: full wire-report marshals.
	Read
	// Write is the mutating traffic: applies, which serialize behind
	// the engine's write lock.
	Write
	// Stream is the long-lived subscription traffic (SSE). Streams
	// never queue: a free slot or an immediate 503.
	Stream
	numClasses
)

// String names a class for metrics and logs.
func (c Class) String() string {
	switch c {
	case Cheap:
		return "cheap"
	case Read:
		return "read"
	case Write:
		return "write"
	case Stream:
		return "stream"
	}
	return fmt.Sprintf("class(%d)", int(c))
}

// Limits bounds one class.
type Limits struct {
	// Slots is the number of requests of this class allowed to run
	// concurrently.
	Slots int
	// Queue is how many requests may wait for a slot; an arrival
	// beyond Slots+Queue is shed immediately.
	Queue int
	// MaxWait caps how long a queued request waits before it is shed,
	// independent of (and in addition to) its own context deadline.
	// Zero means "wait as long as the context allows".
	MaxWait time.Duration
}

// Config bounds every class.
type Config struct {
	Cheap, Read, Write, Stream Limits

	// TenantShare caps the fraction of any class's slots one tenant
	// may occupy under AdmitTenant (admitted plus queued), so a hot
	// tenant cannot starve its siblings. Zero takes
	// DefaultTenantShare; >= 1 disables the fairness cap.
	TenantShare float64
}

// DefaultConfig scales the limits to the machine: cheap reads fan out
// wide (they share the engine's read lock), full-report reads are
// bounded tighter (each one marshals the world), applies keep a short
// queue (they serialize anyway — queue depth is pure latency), and
// streams get a generous but finite population.
func DefaultConfig() Config {
	ncpu := runtime.GOMAXPROCS(0)
	return Config{
		Cheap:  Limits{Slots: 8 * ncpu, Queue: 16 * ncpu, MaxWait: 2 * time.Second},
		Read:   Limits{Slots: 2 * ncpu, Queue: 4 * ncpu, MaxWait: 2 * time.Second},
		Write:  Limits{Slots: 1, Queue: 2 * ncpu, MaxWait: 5 * time.Second},
		Stream: Limits{Slots: 64 * ncpu, Queue: 0},
	}
}

// merged fills zero-valued classes of cfg from the defaults, so a
// caller can override one class without restating the rest.
func merged(cfg Config) Config {
	def := DefaultConfig()
	pick := func(l, d Limits) Limits {
		if l.Slots <= 0 {
			return d
		}
		return l
	}
	return Config{
		Cheap:       pick(cfg.Cheap, def.Cheap),
		Read:        pick(cfg.Read, def.Read),
		Write:       pick(cfg.Write, def.Write),
		Stream:      pick(cfg.Stream, def.Stream),
		TenantShare: cfg.TenantShare,
	}
}

// gate is one class's semaphore plus its counters.
type gate struct {
	limits Limits
	slots  chan struct{}

	inflight atomic.Int64
	queued   atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64 // queue full or wait expired
	canceled atomic.Uint64 // caller gone while queued
}

// Controller admits requests against per-class gates, with optional
// per-tenant fairness and attribution (see AdmitTenant in tenant.go).
type Controller struct {
	gates   [numClasses]*gate
	share   float64  // one tenant's max share of a class's slots
	tenants sync.Map // string -> *tenantState
}

// New builds a controller; zero-valued classes in cfg take defaults.
func New(cfg Config) *Controller {
	cfg = merged(cfg)
	c := &Controller{share: cfg.TenantShare}
	if c.share <= 0 {
		c.share = DefaultTenantShare
	}
	for cl, l := range map[Class]Limits{Cheap: cfg.Cheap, Read: cfg.Read, Write: cfg.Write, Stream: cfg.Stream} {
		g := &gate{limits: l, slots: make(chan struct{}, l.Slots)}
		c.gates[cl] = g
	}
	return c
}

// Admit asks for a slot in class cl. On success it returns a release
// function the caller must invoke exactly once when the work is done.
// On failure it returns ErrOverloaded (shed: answer 503) or the
// context's error wrapped (caller gone: nothing to answer).
func (c *Controller) Admit(ctx context.Context, cl Class) (release func(), err error) {
	g := c.gates[cl]
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	default:
	}
	// No free slot: queue, unless the queue is full or this class
	// never queues.
	if g.limits.Queue <= 0 || g.queued.Add(1) > int64(g.limits.Queue) {
		if g.limits.Queue > 0 {
			g.queued.Add(-1)
		}
		g.shed.Add(1)
		return nil, fmt.Errorf("%w (%s: %d running, %d queued)", ErrOverloaded, cl, g.inflight.Load(), g.queued.Load())
	}
	defer g.queued.Add(-1)

	var expire <-chan time.Time
	if g.limits.MaxWait > 0 {
		t := time.NewTimer(g.limits.MaxWait)
		defer t.Stop()
		expire = t.C
	}
	select {
	case g.slots <- struct{}{}:
		return g.admit(), nil
	case <-expire:
		g.shed.Add(1)
		return nil, fmt.Errorf("%w (%s: queued longer than %s)", ErrOverloaded, cl, g.limits.MaxWait)
	case <-ctx.Done():
		g.canceled.Add(1)
		return nil, fmt.Errorf("admission: %s request abandoned while queued: %w", cl, ctx.Err())
	}
}

// admit finalizes a successful slot acquisition.
func (g *gate) admit() func() {
	g.inflight.Add(1)
	g.admitted.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			g.inflight.Add(-1)
			<-g.slots
		}
	}
}

// ClassStats is one class's live counters.
type ClassStats struct {
	Inflight int64  `json:"inflight"`
	Queued   int64  `json:"queued"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Canceled uint64 `json:"canceled"`
}

// Stats snapshots every class.
type Stats map[string]ClassStats

// Stats returns the live counters per class name.
func (c *Controller) Stats() Stats {
	out := make(Stats, numClasses)
	for cl := Class(0); cl < numClasses; cl++ {
		g := c.gates[cl]
		out[cl.String()] = ClassStats{
			Inflight: g.inflight.Load(),
			Queued:   g.queued.Load(),
			Admitted: g.admitted.Load(),
			Shed:     g.shed.Load(),
			Canceled: g.canceled.Load(),
		}
	}
	return out
}

// TotalShed sums the shed counters across classes.
func (c *Controller) TotalShed() uint64 {
	var n uint64
	for cl := Class(0); cl < numClasses; cl++ {
		n += c.gates[cl].shed.Load()
	}
	return n
}

// Expvar renders the live stats as an expvar.Var; the serving binary
// publishes it as "rpi.admission" next to rpi.dropped_updates. The
// counters are broken out twice: "classes" is the per-endpoint-class
// view, "tenants" attributes the same traffic per tenant per class, so
// shedding is traceable to the tenant causing it.
func (c *Controller) Expvar() expvar.Var {
	return expvar.Func(func() interface{} {
		return map[string]interface{}{
			"classes": c.Stats(),
			"tenants": c.TenantStats(),
		}
	})
}
