package admission

// Multi-tenant admission. One controller guards one listener's worth
// of traffic; with many engines behind that listener the per-class
// gates alone are not enough: a single hot tenant could hold every
// Read slot and starve its siblings while still being "within class
// limits". AdmitTenant layers two things over Admit:
//
//   - a fairness cap: one tenant may hold at most TenantShare of a
//     class's slots (counting its queued waiters), so the other
//     tenants always have headroom to be admitted;
//   - attribution: per-(tenant, class) admitted/shed/canceled
//     counters, so an operator can see *whose* traffic is being shed
//     instead of one global number.
//
// Tenant state is created lazily on first use and dropped by
// ForgetTenant when the tenant is deleted.

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// DefaultTenantShare is the fraction of a class's slots one tenant may
// occupy when Config.TenantShare is unset.
const DefaultTenantShare = 0.5

// tenantClass is one tenant's live counters for one class. inflight
// counts requests admitted or queued (the population the fairness cap
// bounds).
type tenantClass struct {
	inflight atomic.Int64
	admitted atomic.Uint64
	shed     atomic.Uint64
	canceled atomic.Uint64
}

// tenantState is one tenant's counters across all classes.
type tenantState struct {
	classes [numClasses]tenantClass
}

// AdmitTenant is Admit with the request attributed to a tenant: the
// per-class gate still bounds the total population, and additionally
// the tenant may hold at most its fair share of the class (slots plus
// queue occupancy). A request beyond the tenant's share is shed
// immediately with ErrOverloaded — the class may have free slots, but
// they are being kept available for the other tenants. An empty tenant
// name skips fairness and attribution entirely (the single-tenant
// path).
func (c *Controller) AdmitTenant(ctx context.Context, cl Class, tenant string) (release func(), err error) {
	if tenant == "" {
		return c.Admit(ctx, cl)
	}
	tc := &c.tenantState(tenant).classes[cl]
	if limit := c.tenantCap(cl); limit > 0 {
		if n := tc.inflight.Add(1); n > int64(limit) {
			tc.inflight.Add(-1)
			tc.shed.Add(1)
			c.gates[cl].shed.Add(1)
			return nil, fmt.Errorf("%w (%s: tenant %q at fair-share cap %d)", ErrOverloaded, cl, tenant, limit)
		}
	} else {
		tc.inflight.Add(1)
	}
	rel, err := c.Admit(ctx, cl)
	if err != nil {
		tc.inflight.Add(-1)
		if errors.Is(err, ErrOverloaded) {
			tc.shed.Add(1)
		} else {
			tc.canceled.Add(1)
		}
		return nil, err
	}
	tc.admitted.Add(1)
	var done atomic.Bool
	return func() {
		if done.CompareAndSwap(false, true) {
			tc.inflight.Add(-1)
			rel()
		}
	}, nil
}

// tenantCap is the maximum number of class-cl requests one tenant may
// have admitted or queued: ceil(TenantShare × Slots), at least 1.
// Zero means "no cap" (TenantShare >= 1 disables fairness).
func (c *Controller) tenantCap(cl Class) int {
	if c.share >= 1 {
		return 0
	}
	slots := c.gates[cl].limits.Slots
	limit := int(c.share * float64(slots))
	if float64(limit) < c.share*float64(slots) {
		limit++ // ceil
	}
	if limit < 1 {
		limit = 1
	}
	return limit
}

// tenantState returns (creating if needed) the counters for a tenant.
func (c *Controller) tenantState(tenant string) *tenantState {
	if ts, ok := c.tenants.Load(tenant); ok {
		return ts.(*tenantState)
	}
	ts, _ := c.tenants.LoadOrStore(tenant, &tenantState{})
	return ts.(*tenantState)
}

// ForgetTenant drops a deleted tenant's counters. In-flight requests
// of the old tenant still decrement their captured counters harmlessly;
// a recreated tenant starts from zero only if it is forgotten between.
func (c *Controller) ForgetTenant(tenant string) { c.tenants.Delete(tenant) }

// TenantClassStats is one tenant's live counters for one class.
// Inflight counts admitted plus queued requests (the fairness-capped
// population).
type TenantClassStats struct {
	Inflight int64  `json:"inflight"`
	Admitted uint64 `json:"admitted"`
	Shed     uint64 `json:"shed"`
	Canceled uint64 `json:"canceled"`
}

// TenantStats returns the live counters per tenant per class name.
// Classes a tenant never touched are elided.
func (c *Controller) TenantStats() map[string]map[string]TenantClassStats {
	out := make(map[string]map[string]TenantClassStats)
	c.tenants.Range(func(k, v any) bool {
		ts := v.(*tenantState)
		m := make(map[string]TenantClassStats, numClasses)
		for cl := Class(0); cl < numClasses; cl++ {
			tc := &ts.classes[cl]
			s := TenantClassStats{
				Inflight: tc.inflight.Load(),
				Admitted: tc.admitted.Load(),
				Shed:     tc.shed.Load(),
				Canceled: tc.canceled.Load(),
			}
			if s != (TenantClassStats{}) {
				m[cl.String()] = s
			}
		}
		out[k.(string)] = m
		return true
	})
	return out
}

// TenantShed sums one tenant's shed counters across classes.
func (c *Controller) TenantShed(tenant string) uint64 {
	v, ok := c.tenants.Load(tenant)
	if !ok {
		return 0
	}
	ts := v.(*tenantState)
	var n uint64
	for cl := Class(0); cl < numClasses; cl++ {
		n += ts.classes[cl].shed.Load()
	}
	return n
}
