package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// cfg1 is a one-slot, one-queue Read class for deterministic tests.
func cfg1(maxWait time.Duration) Config {
	return Config{Read: Limits{Slots: 1, Queue: 1, MaxWait: maxWait}}
}

func TestAdmitAndRelease(t *testing.T) {
	c := New(cfg1(time.Second))
	rel, err := c.Admit(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats()["read"]; got.Inflight != 1 || got.Admitted != 1 {
		t.Fatalf("stats after admit: %+v", got)
	}
	rel()
	rel() // double release must be a no-op, not a double slot return
	if got := c.Stats()["read"]; got.Inflight != 0 {
		t.Fatalf("stats after release: %+v", got)
	}
	if _, err := c.Admit(context.Background(), Read); err != nil {
		t.Fatalf("slot not reusable after release: %v", err)
	}
}

// TestQueueFullSheds: slot busy + queue occupied → third arrival is
// shed immediately with ErrOverloaded.
func TestQueueFullSheds(t *testing.T) {
	c := New(cfg1(time.Minute))
	rel, err := c.Admit(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	queuedErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, err := c.Admit(ctx, Read) // parks in the queue
		queuedErr <- err
	}()
	// Wait until the second request is visibly queued.
	for i := 0; c.Stats()["read"].Queued == 0; i++ {
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Admit(context.Background(), Read); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third arrival: err = %v, want ErrOverloaded", err)
	}
	if got := c.Stats()["read"]; got.Shed != 1 {
		t.Fatalf("shed = %d, want 1", got.Shed)
	}
	rel() // free the slot: the queued request gets in
	if err := <-queuedErr; err != nil {
		t.Fatalf("queued request: %v", err)
	}
}

// TestQueuedWaitExpires: a queued request is shed after MaxWait.
func TestQueuedWaitExpires(t *testing.T) {
	c := New(cfg1(10 * time.Millisecond))
	rel, err := c.Admit(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := c.Admit(context.Background(), Read); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("wait did not respect MaxWait")
	}
}

// TestQueuedCallerCancels: a queued request whose context dies leaves
// with the context error, counted as canceled, not shed.
func TestQueuedCallerCancels(t *testing.T) {
	c := New(cfg1(time.Minute))
	rel, err := c.Admit(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Admit(ctx, Read)
		done <- err
	}()
	for i := 0; c.Stats()["read"].Queued == 0; i++ {
		if i > 1000 {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := c.Stats()["read"]; got.Canceled != 1 || got.Shed != 0 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestStreamNeverQueues: the stream class has no queue — a full class
// sheds instantly.
func TestStreamNeverQueues(t *testing.T) {
	c := New(Config{Stream: Limits{Slots: 1}})
	rel, err := c.Admit(context.Background(), Stream)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	start := time.Now()
	if _, err := c.Admit(context.Background(), Stream); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("no-queue class waited instead of shedding")
	}
}

// TestClassesAreIndependent: saturating Read leaves Cheap admitting.
func TestClassesAreIndependent(t *testing.T) {
	c := New(Config{
		Read:  Limits{Slots: 1, Queue: 0, MaxWait: time.Millisecond},
		Cheap: Limits{Slots: 4, Queue: 4, MaxWait: time.Second},
	})
	rel, err := c.Admit(context.Background(), Read)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := c.Admit(context.Background(), Read); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("read not saturated: %v", err)
	}
	rel2, err := c.Admit(context.Background(), Cheap)
	if err != nil {
		t.Fatalf("cheap class starved by read saturation: %v", err)
	}
	rel2()
}

// TestConcurrentChurn hammers one gate from many goroutines under the
// race detector: every admit is either released or a typed failure,
// and the final inflight/queued gauges drain to zero.
func TestConcurrentChurn(t *testing.T) {
	c := New(Config{Write: Limits{Slots: 2, Queue: 4, MaxWait: 50 * time.Millisecond}})
	var wg sync.WaitGroup
	var admitted, refused atomic64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rel, err := c.Admit(context.Background(), Write)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					refused.add(1)
					continue
				}
				admitted.add(1)
				rel()
			}
		}()
	}
	wg.Wait()
	st := c.Stats()["write"]
	if st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("gauges did not drain: %+v", st)
	}
	if st.Admitted != admitted.load() || st.Shed != refused.load() {
		t.Fatalf("counters disagree: stats %+v, local admitted=%d refused=%d",
			st, admitted.load(), refused.load())
	}
	if admitted.load() == 0 {
		t.Fatal("nothing admitted")
	}
}

type atomic64 struct {
	mu sync.Mutex
	n  uint64
}

func (a *atomic64) add(d uint64) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.n }
