package admission

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestTenantFairShareCapsHotTenant: with 4 Read slots and a 0.5 share,
// one tenant is capped at 2 concurrent requests — the third is shed
// even though the class has free slots — and a sibling tenant is still
// admitted into the protected headroom.
func TestTenantFairShareCapsHotTenant(t *testing.T) {
	c := New(Config{
		Read:        Limits{Slots: 4, Queue: 4, MaxWait: time.Second},
		TenantShare: 0.5,
	})
	var rels []func()
	for i := 0; i < 2; i++ {
		rel, err := c.AdmitTenant(context.Background(), Read, "hot")
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		rels = append(rels, rel)
	}
	if _, err := c.AdmitTenant(context.Background(), Read, "hot"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third hot request: err = %v, want ErrOverloaded", err)
	}
	rel, err := c.AdmitTenant(context.Background(), Read, "cold")
	if err != nil {
		t.Fatalf("cold tenant starved: %v", err)
	}
	rel()
	ts := c.TenantStats()
	if got := ts["hot"]["read"]; got.Admitted != 2 || got.Shed != 1 || got.Inflight != 2 {
		t.Fatalf("hot stats = %+v", got)
	}
	if got := ts["cold"]["read"]; got.Admitted != 1 || got.Shed != 0 || got.Inflight != 0 {
		t.Fatalf("cold stats = %+v", got)
	}
	for _, r := range rels {
		r()
		r() // double release must not double-decrement
	}
	if got := c.TenantStats()["hot"]["read"]; got.Inflight != 0 {
		t.Fatalf("hot inflight did not drain: %+v", got)
	}
}

// TestTenantShareDisabled: TenantShare >= 1 removes the cap — one
// tenant may hold the whole class (the global gate still bounds it).
func TestTenantShareDisabled(t *testing.T) {
	c := New(Config{
		Read:        Limits{Slots: 2, Queue: 0, MaxWait: time.Millisecond},
		TenantShare: 1,
	})
	r1, err := c.AdmitTenant(context.Background(), Read, "only")
	if err != nil {
		t.Fatal(err)
	}
	defer r1()
	r2, err := c.AdmitTenant(context.Background(), Read, "only")
	if err != nil {
		t.Fatalf("uncapped tenant refused below class limit: %v", err)
	}
	defer r2()
	if _, err := c.AdmitTenant(context.Background(), Read, "only"); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("class gate gone: err = %v", err)
	}
}

// TestTenantEmptyNameSkipsAttribution: the single-tenant path leaves
// no tenant state behind.
func TestTenantEmptyNameSkipsAttribution(t *testing.T) {
	c := New(Config{Read: Limits{Slots: 1, Queue: 1, MaxWait: time.Second}})
	rel, err := c.AdmitTenant(context.Background(), Read, "")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	if ts := c.TenantStats(); len(ts) != 0 {
		t.Fatalf("tenant stats for anonymous traffic: %v", ts)
	}
}

// TestTenantCancellationAttributed: a queued tenant request whose
// caller disconnects counts as canceled for that tenant, not shed.
func TestTenantCancellationAttributed(t *testing.T) {
	c := New(Config{Read: Limits{Slots: 1, Queue: 1, MaxWait: time.Minute}, TenantShare: 1})
	rel, err := c.AdmitTenant(context.Background(), Read, "a")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.AdmitTenant(ctx, Read, "a")
		done <- err
	}()
	for i := 0; c.Stats()["read"].Queued == 0; i++ {
		if i > 1000 {
			t.Fatal("request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := c.TenantStats()["a"]["read"]; got.Canceled != 1 || got.Shed != 0 || got.Inflight != 1 {
		t.Fatalf("stats = %+v", got)
	}
}

// TestForgetTenant drops the counters; traffic after recreation starts
// from zero.
func TestForgetTenant(t *testing.T) {
	c := New(Config{Read: Limits{Slots: 2, Queue: 0, MaxWait: time.Millisecond}})
	rel, err := c.AdmitTenant(context.Background(), Read, "gone")
	if err != nil {
		t.Fatal(err)
	}
	rel()
	c.ForgetTenant("gone")
	if _, ok := c.TenantStats()["gone"]; ok {
		t.Fatal("forgotten tenant still listed")
	}
}

// TestTenantChurnUnderRace hammers AdmitTenant from many goroutines
// and tenants: every admit is released, gauges drain to zero, and
// admitted+shed accounting matches per tenant.
func TestTenantChurnUnderRace(t *testing.T) {
	c := New(Config{Read: Limits{Slots: 4, Queue: 2, MaxWait: 10 * time.Millisecond}, TenantShare: 0.5})
	tenants := []string{"t0", "t1", "t2"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		tn := tenants[i%len(tenants)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rel, err := c.AdmitTenant(context.Background(), Read, tn)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("unexpected error: %v", err)
						return
					}
					continue
				}
				rel()
			}
		}()
	}
	wg.Wait()
	for _, tn := range tenants {
		got := c.TenantStats()[tn]["read"]
		if got.Inflight != 0 {
			t.Fatalf("%s inflight did not drain: %+v", tn, got)
		}
		if got.Admitted+got.Shed != 200 {
			t.Fatalf("%s accounting: admitted %d + shed %d != 200", tn, got.Admitted, got.Shed)
		}
	}
	if st := c.Stats()["read"]; st.Inflight != 0 || st.Queued != 0 {
		t.Fatalf("class gauges did not drain: %+v", st)
	}
}
