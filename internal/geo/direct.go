package geo

import "math"

// Destination solves the direct geodesic problem on a spherical Earth:
// the point reached by travelling distKm kilometres from p on the
// initial bearing bearingDeg (degrees clockwise from true north). The
// spherical model keeps the direct and inverse (DistanceKm) problems
// consistent to well under one percent, which is ample for placing
// synthetic infrastructure and for test geometry.
func Destination(p Point, bearingDeg, distKm float64) Point {
	if distKm == 0 {
		return p
	}
	delta := distKm / earthRadiusKm // angular distance
	theta := bearingDeg * degToRad
	lat1 := p.Lat * degToRad
	lon1 := p.Lon * degToRad

	sinLat1, cosLat1 := math.Sincos(lat1)
	sinDelta, cosDelta := math.Sincos(delta)

	sinLat2 := sinLat1*cosDelta + cosLat1*sinDelta*math.Cos(theta)
	lat2 := math.Asin(clamp(sinLat2, -1, 1))
	y := math.Sin(theta) * sinDelta * cosLat1
	x := cosDelta - sinLat1*sinLat2
	lon2 := lon1 + math.Atan2(y, x)

	// Normalise longitude into [-180, 180).
	lonDeg := math.Mod(lon2/degToRad+540, 360) - 180
	return Point{Lat: lat2 / degToRad, Lon: lonDeg}
}

// InitialBearing returns the initial great-circle bearing (degrees
// clockwise from north, in [0, 360)) to travel from a to b.
func InitialBearing(a, b Point) float64 {
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLon := (b.Lon - a.Lon) * degToRad
	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	brng := math.Atan2(y, x) / degToRad
	return math.Mod(brng+360, 360)
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
