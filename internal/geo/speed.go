package geo

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SpeedModel converts round-trip times to feasible geographic distance
// ranges, following Step 3 of the inference methodology (Section 5.2).
//
// The upper bound uses the maximum end-to-end probe packet speed of
// Katz-Bassett et al. [54], vmax = 4/9 * c, so that
//
//	dmax = vmax * RTTmin.
//
// The lower bound uses a logarithmic effective-speed curve fitted on
// inter-facility Y.1731 delay measurements (Fig 6 in the paper):
//
//	vmin(d) = A * (ln(d) - B)   [km/ms], d in km,
//
// which captures that short-haul paths achieve a much lower effective
// speed (routing detours, serialization, DWDM add/drop) than long-haul
// ones. dmin is the fixed point of d = vmin(d) * RTTmin.
type SpeedModel struct {
	// VMaxKmPerMs is the maximum effective probe speed in km/ms.
	VMaxKmPerMs float64
	// A and B parametrise the minimum-speed curve vmin(d) = A*(ln d - B).
	A float64
	// B is the log-offset; vmin is zero at d = e^B km, i.e. below that
	// distance no lower bound applies.
	B float64
}

// DefaultSpeedModel is the model used throughout the reproduction. VMax
// follows the paper exactly; A and B were fitted (see FitMinSpeed) on
// the synthetic Y.1731 inter-facility corpus so that, like in Fig 6,
// the curve lower-bounds all observed facility-to-facility samples.
func DefaultSpeedModel() SpeedModel {
	return SpeedModel{
		VMaxKmPerMs: 4.0 / 9.0 * SpeedOfLightKmPerMs, // ~133.24 km/ms
		A:           10.0,
		B:           3.0,
	}
}

// VMin returns the minimum effective speed (km/ms) at distance d km.
// It is zero for distances at or below e^B km.
func (m SpeedModel) VMin(dKm float64) float64 {
	if dKm <= 0 {
		return 0
	}
	v := m.A * (math.Log(dKm) - m.B)
	if v < 0 {
		return 0
	}
	return v
}

// DMax returns the maximum distance (km) a target can be from the
// vantage point given the measured minimum RTT (ms).
func (m SpeedModel) DMax(rttMs float64) float64 {
	if rttMs <= 0 {
		return 0
	}
	return m.VMaxKmPerMs * rttMs
}

// DMin returns the minimum distance (km) consistent with the measured
// minimum RTT (ms): the largest fixed point of d = vmin(d)*rtt. A zero
// result means the target may be arbitrarily close to the vantage
// point (typical for RTTs of a few ms or less).
func (m SpeedModel) DMin(rttMs float64) float64 {
	if rttMs <= 0 || m.A <= 0 {
		return 0
	}
	// Solve d = A*(ln d - B)*t for the stable (upper) fixed point by
	// iterating from dmax downwards; g(d) = A*(ln d - B)*t is concave
	// and increasing, so iteration from any point at or above the upper
	// fixed point converges to it monotonically.
	t := rttMs
	d := m.DMax(rttMs)
	if d <= math.Exp(m.B) {
		return 0
	}
	for i := 0; i < 128; i++ {
		next := m.A * (math.Log(d) - m.B) * t
		if next <= 0 {
			return 0
		}
		if math.Abs(next-d) < 1e-9 {
			return next
		}
		d = next
	}
	return d
}

// FeasibleRing returns the [DMin, DMax] distance interval (km) in which
// a ping target can lie given the measured RTTmin (Fig 7's green ring).
func (m SpeedModel) FeasibleRing(rttMs float64) (dMinKm, dMaxKm float64) {
	return m.DMin(rttMs), m.DMax(rttMs)
}

// InRing reports whether distance d (km) is consistent with rtt (ms)
// under the model.
func (m SpeedModel) InRing(dKm, rttMs float64) bool {
	lo, hi := m.FeasibleRing(rttMs)
	return dKm >= lo && dKm <= hi
}

// DelaySample is one inter-facility delay observation: the geodesic
// distance between the two facilities and the measured (Y.1731-style)
// round-trip time.
type DelaySample struct {
	DistanceKm float64
	RTTMs      float64
}

// ErrInsufficientData is returned by FitMinSpeed when fewer than two
// usable samples are available.
var ErrInsufficientData = errors.New("geo: insufficient samples to fit speed model")

// FitMinSpeed fits the lower-bound speed curve vmin(d) = A*(ln d - B)
// on a corpus of inter-facility delay samples, reproducing the data
// fitting of Fig 6. Each sample yields an effective speed v = d/rtt;
// the fit performs a least-squares regression of v on ln d and then
// shifts the intercept down so the curve lower-bounds every sample
// (the paper's curve is an *approximate lower bound*, so we allow the
// quantile q of samples to fall below it; q=0 bounds all samples).
func FitMinSpeed(samples []DelaySample, q float64) (SpeedModel, error) {
	type obs struct{ lnD, v float64 }
	var o []obs
	for _, s := range samples {
		if s.DistanceKm <= 1 || s.RTTMs <= 0 {
			continue
		}
		o = append(o, obs{math.Log(s.DistanceKm), s.DistanceKm / s.RTTMs})
	}
	if len(o) < 2 {
		return SpeedModel{}, ErrInsufficientData
	}
	// Least squares v = a*lnD + c.
	var sx, sy, sxx, sxy float64
	for _, p := range o {
		sx += p.lnD
		sy += p.v
		sxx += p.lnD * p.lnD
		sxy += p.lnD * p.v
	}
	n := float64(len(o))
	den := n*sxx - sx*sx
	if den == 0 {
		return SpeedModel{}, fmt.Errorf("geo: degenerate sample set (all at same distance): %w", ErrInsufficientData)
	}
	a := (n*sxy - sx*sy) / den
	c := (sy - a*sx) / n
	if a <= 0 {
		// The corpus does not exhibit the expected speed-vs-distance
		// growth; fall back to the default curve's slope and only fit
		// the offset.
		a = DefaultSpeedModel().A
		c = (sy - a*sx) / n
	}
	// Shift intercept so that at most a q-fraction of the samples lie
	// below the curve: residual r = v - (a*lnD + c); choose the shift as
	// the q-quantile of residuals.
	res := make([]float64, len(o))
	for i, p := range o {
		res[i] = p.v - (a*p.lnD + c)
	}
	sort.Float64s(res)
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	idx := int(q * float64(len(res)-1))
	shift := res[idx]
	c += shift
	// vmin(d) = a*lnD + c = a*(lnD - (-c/a)) => B = -c/a.
	return SpeedModel{
		VMaxKmPerMs: 4.0 / 9.0 * SpeedOfLightKmPerMs,
		A:           a,
		B:           -c / a,
	}, nil
}
