package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDestinationZeroDistance(t *testing.T) {
	if got := Destination(amsterdam, 123, 0); got != amsterdam {
		t.Errorf("zero-distance destination moved: %v", got)
	}
}

func TestDestinationDueNorth(t *testing.T) {
	p := Point{Lat: 0, Lon: 10}
	got := Destination(p, 0, 111.195) // ~1 degree of latitude
	if math.Abs(got.Lat-1) > 0.01 || math.Abs(got.Lon-10) > 0.01 {
		t.Errorf("due north 111km from equator = %v, want ~(1, 10)", got)
	}
}

func TestDestinationRoundTripProperty(t *testing.T) {
	// Direct then inverse: travelling d km and measuring the distance
	// back must recover d (within the sphere-vs-ellipsoid tolerance).
	f := func(lat, lon, bearing, dist float64) bool {
		p := Point{clampLat(lat), clampLon(lon)}
		// Stay away from the poles, where bearings degenerate.
		if p.Lat > 85 || p.Lat < -85 {
			return true
		}
		b := math.Mod(math.Abs(bearing), 360)
		d := math.Mod(math.Abs(dist), 5000)
		if math.IsNaN(b) || math.IsNaN(d) || d < 1 {
			return true
		}
		q := Destination(p, b, d)
		if !q.Valid() {
			return false
		}
		back := DistanceKm(p, q)
		return math.Abs(back-d) < 0.01*d+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestInitialBearingCardinal(t *testing.T) {
	origin := Point{Lat: 10, Lon: 10}
	cases := []struct {
		to   Point
		want float64
		tol  float64
	}{
		{Point{Lat: 20, Lon: 10}, 0, 0.5},  // north
		{Point{Lat: 0, Lon: 10}, 180, 0.5}, // south
		{Point{Lat: 10, Lon: 20}, 90, 2.0}, // roughly east
		{Point{Lat: 10, Lon: 0}, 270, 2.0}, // roughly west
	}
	for _, c := range cases {
		got := InitialBearing(origin, c.to)
		diff := math.Abs(got - c.want)
		if diff > 180 {
			diff = 360 - diff
		}
		if diff > c.tol {
			t.Errorf("bearing to %v = %.1f, want %.1f±%.1f", c.to, got, c.want, c.tol)
		}
	}
}

func TestBearingDestinationConsistency(t *testing.T) {
	// Travelling from A towards B by the initial bearing for the full
	// A-B distance must land near B.
	pairs := [][2]Point{{amsterdam, london}, {london, bucharest}, {newYork, london}}
	for _, pr := range pairs {
		a, b := pr[0], pr[1]
		d := DistanceKm(a, b)
		brng := InitialBearing(a, b)
		got := Destination(a, brng, d)
		if miss := DistanceKm(got, b); miss > 0.01*d+5 {
			t.Errorf("direct(%v->%v): landed %.1f km off target", a, b, miss)
		}
	}
}
