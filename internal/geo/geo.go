// Package geo provides the geographic primitives used by the remote
// peering inference methodology: WGS-84 coordinates, geodesic distances
// (Karney/Vincenty-style inverse problem), metropolitan-area clustering,
// and the RTT-to-distance speed model of Section 5.2 (Step 3) of the
// paper.
//
// All distances are expressed in kilometres and all round-trip times in
// milliseconds unless stated otherwise.
package geo

import (
	"fmt"
	"math"
)

// Point is a WGS-84 geographic coordinate in decimal degrees.
type Point struct {
	Lat float64 // latitude, degrees north, in [-90, 90]
	Lon float64 // longitude, degrees east, in [-180, 180]
}

// Valid reports whether the point lies within the WGS-84 coordinate
// domain.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.4f, %.4f)", p.Lat, p.Lon)
}

// Earth model constants (WGS-84 ellipsoid).
const (
	earthRadiusKm    = 6371.0088    // mean Earth radius (IUGG)
	wgs84MajorAxisKm = 6378.137     // semi-major axis a
	wgs84MinorAxisKm = 6356.7523142 // semi-minor axis b
	wgs84Flattening  = 1 / 298.257223563
	degToRad         = math.Pi / 180
	// SpeedOfLightKmPerMs is the vacuum speed of light in km/ms.
	SpeedOfLightKmPerMs = 299.792458
)

// HaversineKm returns the great-circle distance between two points on a
// spherical Earth. It is cheaper but slightly less accurate than
// DistanceKm; the error versus the ellipsoidal distance is below 0.5%.
func HaversineKm(a, b Point) float64 {
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * earthRadiusKm * math.Asin(math.Sqrt(h))
}

// DistanceKm returns the geodesic distance between two points on the
// WGS-84 ellipsoid, following the classic Vincenty inverse formula with
// a spherical fallback for the rare non-converging antipodal cases.
// The paper applies Karney's method [53]; Vincenty agrees with Karney
// to well under a metre for all non-antipodal pairs, which is far below
// the 50 km metro threshold the methodology operates at.
func DistanceKm(p1, p2 Point) float64 {
	if p1 == p2 {
		return 0
	}
	a := wgs84MajorAxisKm
	b := wgs84MinorAxisKm
	f := wgs84Flattening

	l := (p2.Lon - p1.Lon) * degToRad
	u1 := math.Atan((1 - f) * math.Tan(p1.Lat*degToRad))
	u2 := math.Atan((1 - f) * math.Tan(p2.Lat*degToRad))
	sinU1, cosU1 := math.Sincos(u1)
	sinU2, cosU2 := math.Sincos(u2)

	lambda := l
	var sinSigma, cosSigma, sigma, cosSqAlpha, cos2SigmaM float64
	for i := 0; i < 200; i++ {
		sinLambda, cosLambda := math.Sincos(lambda)
		t1 := cosU2 * sinLambda
		t2 := cosU1*sinU2 - sinU1*cosU2*cosLambda
		sinSigma = math.Sqrt(t1*t1 + t2*t2)
		if sinSigma == 0 {
			return 0 // coincident points
		}
		cosSigma = sinU1*sinU2 + cosU1*cosU2*cosLambda
		sigma = math.Atan2(sinSigma, cosSigma)
		sinAlpha := cosU1 * cosU2 * sinLambda / sinSigma
		cosSqAlpha = 1 - sinAlpha*sinAlpha
		if cosSqAlpha == 0 {
			cos2SigmaM = 0 // equatorial line
		} else {
			cos2SigmaM = cosSigma - 2*sinU1*sinU2/cosSqAlpha
		}
		c := f / 16 * cosSqAlpha * (4 + f*(4-3*cosSqAlpha))
		lambdaPrev := lambda
		lambda = l + (1-c)*f*sinAlpha*
			(sigma+c*sinSigma*(cos2SigmaM+c*cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)))
		if math.Abs(lambda-lambdaPrev) < 1e-12 {
			uSq := cosSqAlpha * (a*a - b*b) / (b * b)
			bigA := 1 + uSq/16384*(4096+uSq*(-768+uSq*(320-175*uSq)))
			bigB := uSq / 1024 * (256 + uSq*(-128+uSq*(74-47*uSq)))
			deltaSigma := bigB * sinSigma * (cos2SigmaM + bigB/4*
				(cosSigma*(-1+2*cos2SigmaM*cos2SigmaM)-
					bigB/6*cos2SigmaM*(-3+4*sinSigma*sinSigma)*(-3+4*cos2SigmaM*cos2SigmaM)))
			return b * bigA * (sigma - deltaSigma)
		}
	}
	// Vincenty fails to converge only for near-antipodal points; fall
	// back to the spherical great-circle distance there.
	return HaversineKm(p1, p2)
}

// MetroDiameterKm is the diameter of a metropolitan area as defined in
// the paper (Section 2, footnote 2: "a disk with diameter 100 km").
const MetroDiameterKm = 100

// MetroSeparationKm is the inter-facility distance above which two
// facilities are considered to belong to different metropolitan areas
// (Section 4.2: "facilities more than 50 km apart").
const MetroSeparationKm = 50

// SameMetro reports whether two points belong to the same metropolitan
// area under the paper's 50 km separation rule.
func SameMetro(a, b Point) bool {
	return DistanceKm(a, b) <= MetroSeparationKm
}

// ClusterMetros greedily groups points into metropolitan areas: each
// point joins the first existing cluster whose seed lies within
// MetroSeparationKm, otherwise it seeds a new cluster. The return value
// maps each input index to a cluster id in [0, n).
//
// Greedy seeding is order-dependent in degenerate chains of points that
// are pairwise 50 km apart; real facility sets are strongly clumped
// around cities, where the assignment is stable.
func ClusterMetros(points []Point) []int {
	ids := make([]int, len(points))
	var seeds []Point
	for i, p := range points {
		assigned := -1
		for c, s := range seeds {
			if DistanceKm(p, s) <= MetroSeparationKm {
				assigned = c
				break
			}
		}
		if assigned < 0 {
			assigned = len(seeds)
			seeds = append(seeds, p)
		}
		ids[i] = assigned
	}
	return ids
}

// MaxPairwiseKm returns the maximum geodesic distance between any two
// of the given points, and the indices achieving it. It returns 0 and
// (-1, -1) when fewer than two points are given. The paper uses this to
// classify wide-area IXPs (Fig 2b).
func MaxPairwiseKm(points []Point) (maxKm float64, i, j int) {
	i, j = -1, -1
	for x := 0; x < len(points); x++ {
		for y := x + 1; y < len(points); y++ {
			if d := DistanceKm(points[x], points[y]); d > maxKm {
				maxKm, i, j = d, x, y
			}
		}
	}
	return maxKm, i, j
}
