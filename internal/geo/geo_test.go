package geo

import (
	"math"
	"testing"
	"testing/quick"
)

// Reference city coordinates used across the tests.
var (
	amsterdam = Point{52.3676, 4.9041}
	london    = Point{51.5072, -0.1276}
	frankfurt = Point{50.1109, 8.6821}
	bucharest = Point{44.4268, 26.1025}
	rotterdam = Point{51.9244, 4.4777}
	newYork   = Point{40.7128, -74.0060}
	sydney    = Point{-33.8688, 151.2093}
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		name   string
		a, b   Point
		wantKm float64
		tolKm  float64
	}{
		{"ams-london", amsterdam, london, 357, 10},
		{"ams-rotterdam", amsterdam, rotterdam, 57, 5}, // paper: "a peer located in Rotterdam ... (57km distance)"
		{"london-bucharest", london, bucharest, 2100, 60},
		{"ams-frankfurt", amsterdam, frankfurt, 360, 15},
		{"london-newyork", london, newYork, 5570, 60},
		{"london-sydney", london, sydney, 16990, 120},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := DistanceKm(c.a, c.b)
			if math.Abs(got-c.wantKm) > c.tolKm {
				t.Errorf("DistanceKm(%v, %v) = %.1f km, want %.0f±%.0f", c.a, c.b, got, c.wantKm, c.tolKm)
			}
		})
	}
}

func TestDistanceZero(t *testing.T) {
	if d := DistanceKm(amsterdam, amsterdam); d != 0 {
		t.Errorf("distance to self = %v, want 0", d)
	}
}

func TestDistanceAntipodalFallback(t *testing.T) {
	a := Point{0, 0}
	b := Point{0.01, 179.99} // near-antipodal: Vincenty may not converge
	d := DistanceKm(a, b)
	if d < 19000 || d > 20100 {
		t.Errorf("antipodal distance = %.0f km, want ~20000", d)
	}
}

func TestHaversineCloseToVincenty(t *testing.T) {
	pairs := [][2]Point{{amsterdam, london}, {london, bucharest}, {london, newYork}}
	for _, p := range pairs {
		h := HaversineKm(p[0], p[1])
		v := DistanceKm(p[0], p[1])
		if v == 0 {
			t.Fatalf("vincenty returned 0 for %v", p)
		}
		if rel := math.Abs(h-v) / v; rel > 0.006 {
			t.Errorf("haversine %0.1f vs vincenty %0.1f: rel err %.4f > 0.006", h, v, rel)
		}
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d1 := DistanceKm(a, b)
		d2 := DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6*(1+d1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDistanceNonNegativeAndBoundedProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Point{clampLat(lat1), clampLon(lon1)}
		b := Point{clampLat(lat2), clampLon(lon2)}
		d := DistanceKm(a, b)
		// Half the Earth's circumference is an absolute upper bound.
		return d >= 0 && d <= 20100
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func clampLat(v float64) float64 { return clampTo(v, 90) }
func clampLon(v float64) float64 { return clampTo(v, 180) }

func clampTo(v, lim float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, lim)
}

func TestMetroRules(t *testing.T) {
	// Amsterdam-Rotterdam is 57 km: the paper's 50 km rule places them
	// in *different* metropolitan areas.
	if SameMetro(amsterdam, rotterdam) {
		t.Error("Amsterdam and Rotterdam are 57 km apart; want different metros under the 50 km rule")
	}
	near := Point{52.37, 4.95} // a few km from Amsterdam centre
	if !SameMetro(amsterdam, near) {
		t.Error("points a few km apart must share a metro")
	}
}

func TestClusterMetros(t *testing.T) {
	pts := []Point{amsterdam, {52.35, 4.92}, london, {51.52, -0.10}, frankfurt}
	ids := ClusterMetros(pts)
	if ids[0] != ids[1] {
		t.Errorf("both Amsterdam points should share a cluster: %v", ids)
	}
	if ids[2] != ids[3] {
		t.Errorf("both London points should share a cluster: %v", ids)
	}
	if ids[0] == ids[2] || ids[0] == ids[4] || ids[2] == ids[4] {
		t.Errorf("Amsterdam, London, Frankfurt must be distinct clusters: %v", ids)
	}
}

func TestClusterMetrosEmpty(t *testing.T) {
	if ids := ClusterMetros(nil); len(ids) != 0 {
		t.Errorf("ClusterMetros(nil) = %v, want empty", ids)
	}
}

func TestMaxPairwise(t *testing.T) {
	pts := []Point{amsterdam, london, bucharest}
	d, i, j := MaxPairwiseKm(pts)
	if i != 1 || j != 2 {
		t.Errorf("max pair = (%d,%d), want (1,2) London-Bucharest", i, j)
	}
	if d < 2000 || d > 2200 {
		t.Errorf("max distance = %.0f, want ~2100", d)
	}
	if d, i, j := MaxPairwiseKm(pts[:1]); d != 0 || i != -1 || j != -1 {
		t.Errorf("single point: got (%v,%d,%d), want (0,-1,-1)", d, i, j)
	}
}

func TestSpeedModelDMax(t *testing.T) {
	m := DefaultSpeedModel()
	// Fig 7: RTT of 4 ms => dmax = 4/9*c*4ms = 532.9 km ("d1 = 532km").
	got := m.DMax(4)
	if math.Abs(got-532.96) > 1.0 {
		t.Errorf("DMax(4ms) = %.2f km, want ~532.9", got)
	}
	if m.DMax(0) != 0 || m.DMax(-1) != 0 {
		t.Error("DMax of non-positive RTT must be 0")
	}
}

func TestSpeedModelDMinFixedPoint(t *testing.T) {
	m := DefaultSpeedModel()
	for _, rtt := range []float64{2, 4, 10, 40, 100} {
		dmin := m.DMin(rtt)
		dmax := m.DMax(rtt)
		if dmin < 0 {
			t.Fatalf("DMin(%v) negative", rtt)
		}
		if dmin > dmax {
			t.Errorf("DMin(%v)=%.1f exceeds DMax=%.1f", rtt, dmin, dmax)
		}
		if dmin > 0 {
			// Verify the fixed-point equation d = vmin(d)*rtt.
			if got := m.VMin(dmin) * rtt; math.Abs(got-dmin) > 0.01*dmin {
				t.Errorf("fixed point violated at rtt=%v: d=%.2f, vmin(d)*rtt=%.2f", rtt, dmin, got)
			}
		}
	}
}

func TestSpeedModelTinyRTTNoLowerBound(t *testing.T) {
	m := DefaultSpeedModel()
	// For sub-millisecond RTTs the feasible ring must start at 0: the
	// peer may be in the same rack.
	if d := m.DMin(0.2); d != 0 {
		t.Errorf("DMin(0.2ms) = %.2f, want 0", d)
	}
}

func TestSpeedModelRingMonotonicProperty(t *testing.T) {
	m := DefaultSpeedModel()
	f := func(r1, r2 float64) bool {
		a := math.Abs(math.Mod(r1, 200))
		b := math.Abs(math.Mod(r2, 200))
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		// Both bounds must be monotone non-decreasing in RTT.
		return m.DMax(a) <= m.DMax(b)+1e-9 && m.DMin(a) <= m.DMin(b)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestInRing(t *testing.T) {
	m := DefaultSpeedModel()
	// Fig 7 scenario: 4ms RTT; London at ~357 km from Amsterdam must be
	// feasible; Bucharest at ~1770 km must not.
	dAmsLon := DistanceKm(amsterdam, london)
	if !m.InRing(dAmsLon, 4) {
		lo, hi := m.FeasibleRing(4)
		t.Errorf("London (%.0f km) not in 4ms ring [%.0f, %.0f]", dAmsLon, lo, hi)
	}
	dAmsBuc := DistanceKm(amsterdam, bucharest)
	if m.InRing(dAmsBuc, 4) {
		t.Errorf("Bucharest (%.0f km) unexpectedly in 4ms ring", dAmsBuc)
	}
}

func TestFitMinSpeed(t *testing.T) {
	// Build a synthetic corpus whose effective speed grows with ln(d),
	// around v = 12*(ln d - 2.5), plus positive noise (real paths are
	// never faster than the physics floor).
	var samples []DelaySample
	for _, d := range []float64{30, 50, 80, 120, 200, 350, 500, 800, 1200, 2000, 3000} {
		base := 12 * (math.Log(d) - 2.5)
		for i := 0; i < 5; i++ {
			v := base * (1 + 0.08*float64(i)) // slower... higher v means faster; add spread upward
			samples = append(samples, DelaySample{DistanceKm: d, RTTMs: d / v})
		}
	}
	m, err := FitMinSpeed(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.A <= 0 {
		t.Fatalf("fitted slope A = %v, want > 0", m.A)
	}
	// With q=0 the curve must lower-bound every sample.
	for _, s := range samples {
		v := s.DistanceKm / s.RTTMs
		if vm := m.VMin(s.DistanceKm); vm > v+1e-6 {
			t.Errorf("fit not a lower bound at d=%.0f: vmin=%.2f > observed %.2f", s.DistanceKm, vm, v)
		}
	}
}

func TestFitMinSpeedErrors(t *testing.T) {
	if _, err := FitMinSpeed(nil, 0); err == nil {
		t.Error("want error for empty corpus")
	}
	same := []DelaySample{{100, 2}, {100, 3}, {100, 4}}
	if _, err := FitMinSpeed(same, 0); err == nil {
		t.Error("want error for degenerate corpus at a single distance")
	}
}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func BenchmarkDistanceKm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		DistanceKm(amsterdam, bucharest)
	}
}

func BenchmarkHaversineKm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		HaversineKm(amsterdam, bucharest)
	}
}
