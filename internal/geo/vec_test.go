package geo

import (
	"math"
	"testing"
)

var vecPairs = []struct {
	a, b Point
}{
	{Point{52.3, 4.9}, Point{50.1, 8.7}},    // Amsterdam - Frankfurt
	{Point{51.5, -0.1}, Point{40.7, -74.0}}, // London - New York
	{Point{1.3, 103.8}, Point{35.7, 139.7}}, // Singapore - Tokyo
	{Point{0, 0}, Point{0, 0}},              // coincident
	{Point{10, 20}, Point{10.001, 20.001}},  // sub-km
	{Point{45, 0}, Point{-45, 180}},         // near-antipodal
}

func TestArcKmMatchesHaversine(t *testing.T) {
	for _, p := range vecPairs {
		want := HaversineKm(p.a, p.b)
		got := ArcKm(UnitVec(p.a), UnitVec(p.b))
		if math.Abs(got-want) > 1e-6*(want+1) {
			t.Errorf("ArcKm(%v,%v) = %v, haversine = %v", p.a, p.b, got, want)
		}
	}
}

func TestArcKmCloseToGeodesic(t *testing.T) {
	for _, p := range vecPairs {
		geod := DistanceKm(p.a, p.b)
		arc := ArcKm(UnitVec(p.a), UnitVec(p.b))
		if geod == 0 {
			if arc > 1e-6 {
				t.Errorf("coincident points: arc = %v", arc)
			}
			continue
		}
		if rel := math.Abs(arc-geod) / geod; rel > 0.006 {
			t.Errorf("spherical error %v for %v-%v exceeds flattening bound", rel, p.a, p.b)
		}
	}
}

func BenchmarkArcKm(b *testing.B) {
	v1, v2 := UnitVec(Point{52.3, 4.9}), UnitVec(Point{50.1, 8.7})
	for i := 0; i < b.N; i++ {
		sinkF = ArcKm(v1, v2)
	}
}

var sinkF float64
