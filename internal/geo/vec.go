package geo

import "math"

// Vec3 is a point on the unit sphere, the precomputed form the
// inference hot path uses for distance work: converting a WGS-84
// coordinate to a unit vector once turns every subsequent distance
// query into a dot product plus an arccosine, instead of the iterative
// Vincenty solution of DistanceKm (two to three orders of magnitude
// cheaper per pair).
//
// The spherical arc differs from the ellipsoidal geodesic by at most
// ~0.5% of the distance (the WGS-84 flattening): sub-kilometre at the
// metro scales where the 50 km thresholds bite, and only reaching tens
// of kilometres on intercontinental pairs, where the feasible rings
// span thousands of kilometres. core.Context standardises on it for
// all feasible-ring and facility-distance computations.
type Vec3 struct {
	X, Y, Z float64
}

// UnitVec converts a WGS-84 point to its unit vector.
func UnitVec(p Point) Vec3 {
	sinLat, cosLat := math.Sincos(p.Lat * degToRad)
	sinLon, cosLon := math.Sincos(p.Lon * degToRad)
	return Vec3{X: cosLat * cosLon, Y: cosLat * sinLon, Z: sinLat}
}

// Dot returns the inner product of two vectors. For unit vectors this
// is the cosine of the central angle between the two points.
func (v Vec3) Dot(o Vec3) float64 {
	return v.X*o.X + v.Y*o.Y + v.Z*o.Z
}

// ArcKm returns the great-circle distance in kilometres between two
// unit vectors on the mean-radius Earth sphere.
func ArcKm(a, b Vec3) float64 {
	if a == b {
		return 0 // |v|² lands at 1-ε in floats; identical points are 0 by definition
	}
	d := a.Dot(b)
	// Guard against |dot| creeping past 1 from rounding (coincident or
	// antipodal points), which would make Acos return NaN.
	if d > 1 {
		d = 1
	} else if d < -1 {
		d = -1
	}
	return earthRadiusKm * math.Acos(d)
}
