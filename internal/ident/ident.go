// Package ident is the interning layer of the inference substrate: it
// assigns dense integer identities to the entities the pipeline keeps
// referring to — interface addresses, member ASes, colocation
// facilities and IXPs — so that every layer above it can store its
// state in ID-indexed columns instead of hash maps.
//
// The paper's methodology runs over hundreds of thousands of member
// interfaces; before interning, the hot paths were dominated by
// map[netip.Addr] and map[string] lookups, each paying a hash of a
// 16-byte address or an IXP name per access. A dense ID turns each of
// those into one array index. Strings and netip.Addr values survive
// only at the edges: ingestion (netsim, registry, tracesim parsing)
// and the public report / wire surfaces.
//
// A Table is built once over frozen inputs and then patched by world
// deltas: new entities append (IDs are stable — an ID once assigned
// never changes meaning), and departed interfaces are tombstoned
// rather than removed, so a later re-join of the same address revives
// the same ID and every ID-indexed column stays valid. The IXP space
// is fixed at construction: membership deltas never touch the prefix
// plane.
//
// Interning orders are chosen so that, over the frozen inputs, ID
// order is isomorphic to the natural sort order of the underlying
// value (addresses ascending, ASNs ascending, IXP names ascending).
// Entities appended by deltas break the isomorphism, so order-
// sensitive consumers must compare underlying values (one column read
// per comparison) rather than IDs.
package ident

import (
	"net/netip"

	"rpeer/internal/ip4"
	"rpeer/internal/netsim"
)

// IfaceID densely identifies an interned interface address.
type IfaceID uint32

// MemberID densely identifies an interned member AS.
type MemberID uint32

// FacID densely identifies an interned colocation facility.
type FacID uint32

// IXPID densely identifies an interned IXP (by merged-dataset name).
type IXPID uint32

// NoIface is the sentinel for "no interface".
const NoIface = IfaceID(^uint32(0))

// NoMember is the sentinel for "no member".
const NoMember = MemberID(^uint32(0))

// Table is the interning table. It is not safe for concurrent
// mutation; the owning core.Context serializes Apply against runs, and
// lookups during runs are read-only.
//
// The interface index is split by address family: IPv4 addresses — the
// overwhelming majority in every input this system ingests — key a
// map[uint32]IfaceID (one integer hash per lookup instead of hashing a
// 24-byte netip.Addr), and everything else spills into a netip.Addr
// map. The hot loops of context construction and corpus compaction
// run entirely on the uint32 path.
type Table struct {
	addrs    []netip.Addr // column: IfaceID -> address
	iface4   map[uint32]IfaceID
	ifaceGen map[netip.Addr]IfaceID // non-IPv4 spill
	dead     Bits                   // tombstones (departed memberships)

	asns      []netsim.ASN // column: MemberID -> ASN
	memberIDs map[netsim.ASN]MemberID

	facs   []netsim.FacilityID // column: FacID -> netsim id
	facIDs map[netsim.FacilityID]FacID

	ixpNames []string // column: IXPID -> merged-dataset name
	ixpIDs   map[string]IXPID
}

// NewTable returns an empty table with capacity hints for the three
// append-able spaces.
func NewTable(ifaceCap, memberCap, facCap int) *Table {
	return &Table{
		addrs:     make([]netip.Addr, 0, ifaceCap),
		iface4:    make(map[uint32]IfaceID, ifaceCap),
		asns:      make([]netsim.ASN, 0, memberCap),
		memberIDs: make(map[netsim.ASN]MemberID, memberCap),
		facs:      make([]netsim.FacilityID, 0, facCap),
		facIDs:    make(map[netsim.FacilityID]FacID, facCap),
		ixpIDs:    make(map[string]IXPID),
	}
}

// ---------------------------------------------------------------------------
// Interfaces

// AddIface interns an address, returning its stable ID. Re-adding a
// known address revives its tombstoned ID (and returns it unchanged).
func (t *Table) AddIface(a netip.Addr) IfaceID {
	if a.Is4() {
		k := ip4.U32(a)
		if id, ok := t.iface4[k]; ok {
			t.dead.Clear(uint32(id))
			return id
		}
		id := IfaceID(len(t.addrs))
		t.addrs = append(t.addrs, a)
		t.iface4[k] = id
		return id
	}
	if id, ok := t.ifaceGen[a]; ok {
		t.dead.Clear(uint32(id))
		return id
	}
	if t.ifaceGen == nil {
		t.ifaceGen = make(map[netip.Addr]IfaceID)
	}
	id := IfaceID(len(t.addrs))
	t.addrs = append(t.addrs, a)
	t.ifaceGen[a] = id
	return id
}

// Iface resolves an address to its ID (tombstoned IDs still resolve:
// a departed interface keeps its identity).
func (t *Table) Iface(a netip.Addr) (IfaceID, bool) {
	if a.Is4() {
		id, ok := t.iface4[ip4.U32(a)]
		return id, ok
	}
	id, ok := t.ifaceGen[a]
	return id, ok
}

// Addr returns the address behind an interface ID.
func (t *Table) Addr(id IfaceID) netip.Addr { return t.addrs[id] }

// NumIfaces returns the interface ID space size (tombstones included).
func (t *Table) NumIfaces() int { return len(t.addrs) }

// RetireIface tombstones an interface ID. The ID stays resolvable and
// its column slots stay valid — entries are never deleted or
// compacted, which is the property every ID-indexed cache relies on.
// The tombstone itself is bookkeeping: it records that the entity
// departed (introspection, the round-trip tests); domain membership
// is driven by the registry dataset, not by this bit.
func (t *Table) RetireIface(id IfaceID) { t.dead.Set(uint32(id)) }

// IfaceRetired reports whether the ID is tombstoned.
func (t *Table) IfaceRetired(id IfaceID) bool { return t.dead.Get(uint32(id)) }

// AddrLess orders two interface IDs by their underlying addresses
// (ID order itself is only address-ordered over the frozen inputs).
func (t *Table) AddrLess(a, b IfaceID) bool { return t.addrs[a].Less(t.addrs[b]) }

// Ifaces returns the interface address column (IfaceID -> address,
// tombstones included) — the column-dump hook the snapshot layer walks
// to persist membership state in a deterministic order without
// sorting: ID order is append order, which is fixed by the delta
// history. The slice is the table's live backing array and must be
// treated as read-only.
func (t *Table) Ifaces() []netip.Addr { return t.addrs }

// ---------------------------------------------------------------------------
// Members

// AddMember interns an AS, returning its stable ID.
func (t *Table) AddMember(asn netsim.ASN) MemberID {
	if id, ok := t.memberIDs[asn]; ok {
		return id
	}
	id := MemberID(len(t.asns))
	t.asns = append(t.asns, asn)
	t.memberIDs[asn] = id
	return id
}

// Member resolves an ASN to its ID.
func (t *Table) Member(asn netsim.ASN) (MemberID, bool) {
	id, ok := t.memberIDs[asn]
	return id, ok
}

// ASN returns the AS number behind a member ID.
func (t *Table) ASN(id MemberID) netsim.ASN { return t.asns[id] }

// NumMembers returns the member ID space size.
func (t *Table) NumMembers() int { return len(t.asns) }

// ---------------------------------------------------------------------------
// Facilities

// AddFac interns a facility.
func (t *Table) AddFac(f netsim.FacilityID) FacID {
	if id, ok := t.facIDs[f]; ok {
		return id
	}
	id := FacID(len(t.facs))
	t.facs = append(t.facs, f)
	t.facIDs[f] = id
	return id
}

// Fac resolves a netsim facility id to its dense ID.
func (t *Table) Fac(f netsim.FacilityID) (FacID, bool) {
	id, ok := t.facIDs[f]
	return id, ok
}

// FacilityID returns the netsim id behind a dense facility ID.
func (t *Table) FacilityID(id FacID) netsim.FacilityID { return t.facs[id] }

// NumFacs returns the facility ID space size.
func (t *Table) NumFacs() int { return len(t.facs) }

// ---------------------------------------------------------------------------
// IXPs

// SetIXPs fixes the IXP space from a sorted name list. It may be
// called once; the order is preserved, so when names arrive sorted
// (as core's dataset roster does), IXPID order equals name order.
func (t *Table) SetIXPs(names []string) {
	t.ixpNames = append(t.ixpNames[:0], names...)
	for i, n := range t.ixpNames {
		t.ixpIDs[n] = IXPID(i)
	}
}

// IXP resolves an IXP name to its ID.
func (t *Table) IXP(name string) (IXPID, bool) {
	id, ok := t.ixpIDs[name]
	return id, ok
}

// IXPName returns the name behind an IXP ID.
func (t *Table) IXPName(id IXPID) string { return t.ixpNames[id] }

// NumIXPs returns the IXP ID space size.
func (t *Table) NumIXPs() int { return len(t.ixpNames) }
