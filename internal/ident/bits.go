package ident

// Bits is a growable bitset, the columnar replacement for the
// map[netip.Addr]bool flag maps the substrate used to keep (rounding
// interfaces, traceroute-derived interfaces, tombstones). The zero
// value is ready to use; Set grows on demand.
type Bits struct {
	words []uint64
}

// Set sets bit i, growing the set as needed.
func (b *Bits) Set(i uint32) {
	w := int(i >> 6)
	if w >= len(b.words) {
		b.grow(w + 1)
	}
	b.words[w] |= 1 << (i & 63)
}

// Clear clears bit i (a no-op beyond the current size).
func (b *Bits) Clear(i uint32) {
	w := int(i >> 6)
	if w < len(b.words) {
		b.words[w] &^= 1 << (i & 63)
	}
}

// Get reports bit i (false beyond the current size).
func (b *Bits) Get(i uint32) bool {
	w := int(i >> 6)
	return w < len(b.words) && b.words[w]&(1<<(i&63)) != 0
}

// Reset clears every bit, keeping the backing array.
func (b *Bits) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// CopyFrom makes b an exact copy of src, reusing b's capacity.
func (b *Bits) CopyFrom(src *Bits) {
	if cap(b.words) < len(src.words) {
		b.words = make([]uint64, len(src.words))
	} else {
		b.words = b.words[:len(src.words)]
	}
	copy(b.words, src.words)
}

func (b *Bits) grow(words int) {
	if cap(b.words) >= words {
		old := len(b.words)
		b.words = b.words[:words]
		for i := old; i < words; i++ {
			b.words[i] = 0
		}
		return
	}
	next := make([]uint64, words, words+words/2+4)
	copy(next, b.words)
	b.words = next
}
