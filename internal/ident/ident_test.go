package ident

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"

	"rpeer/internal/netsim"
)

// TestIfaceRoundTripOverGeneratedWorlds interns every member interface
// of generated worlds and checks the Addr <-> IfaceID round-trip, ID
// density and idempotence.
func TestIfaceRoundTripOverGeneratedWorlds(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		cfg := netsim.TinyConfig()
		cfg.Seed = seed
		w, err := netsim.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		tab := NewTable(len(w.Members), len(w.ASNs), len(w.Facilities))
		want := make(map[netip.Addr]IfaceID)
		for _, m := range w.Members {
			id := tab.AddIface(m.Iface)
			if prev, ok := want[m.Iface]; ok && prev != id {
				t.Fatalf("seed %d: re-interning %s moved %d -> %d", seed, m.Iface, prev, id)
			}
			want[m.Iface] = id
		}
		if tab.NumIfaces() != len(want) {
			t.Fatalf("seed %d: %d distinct addresses interned into %d IDs", seed, len(want), tab.NumIfaces())
		}
		for ip, id := range want {
			got, ok := tab.Iface(ip)
			if !ok || got != id {
				t.Fatalf("seed %d: Iface(%s) = (%v,%v), want (%v,true)", seed, ip, got, ok, id)
			}
			if back := tab.Addr(id); back != ip {
				t.Fatalf("seed %d: Addr(%v) = %s, want %s", seed, id, back, ip)
			}
		}
	}
}

// TestTableRoundTripProperty drives a randomized add/retire/revive
// sequence and checks the invariants the columnar substrate depends
// on: IDs are dense, stable across deltas, tombstoning never moves or
// invalidates an ID, and name/ASN/facility round-trips hold.
func TestTableRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	tab := NewTable(0, 0, 0)

	names := make([]string, 40)
	for i := range names {
		names[i] = fmt.Sprintf("IXP-%03d", i)
	}
	tab.SetIXPs(names)
	for i, n := range names {
		id, ok := tab.IXP(n)
		if !ok || id != IXPID(i) {
			t.Fatalf("IXP(%q) = (%v,%v), want (%d,true)", n, id, ok, i)
		}
		if tab.IXPName(id) != n {
			t.Fatalf("IXPName(%v) = %q, want %q", id, tab.IXPName(id), n)
		}
	}

	assigned := make(map[netip.Addr]IfaceID)
	addrAt := func(i int) netip.Addr {
		return netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
	}
	for step := 0; step < 5000; step++ {
		i := rng.Intn(2000)
		ip := addrAt(i)
		switch rng.Intn(3) {
		case 0: // intern (or revive)
			id := tab.AddIface(ip)
			if prev, ok := assigned[ip]; ok && prev != id {
				t.Fatalf("step %d: %s moved %d -> %d", step, ip, prev, id)
			}
			assigned[ip] = id
			if tab.IfaceRetired(id) {
				t.Fatalf("step %d: AddIface left %s tombstoned", step, ip)
			}
		case 1: // retire
			if id, ok := assigned[ip]; ok {
				tab.RetireIface(id)
				if !tab.IfaceRetired(id) {
					t.Fatalf("step %d: retire of %v did not stick", step, id)
				}
				if got, ok := tab.Iface(ip); !ok || got != id {
					t.Fatalf("step %d: tombstoned %s no longer resolves", step, ip)
				}
			}
		case 2: // member round-trip
			asn := netsim.ASN(64500 + rng.Intn(500))
			m := tab.AddMember(asn)
			if tab.ASN(m) != asn {
				t.Fatalf("step %d: ASN(Member(%v)) = %v", step, asn, tab.ASN(m))
			}
			if again := tab.AddMember(asn); again != m {
				t.Fatalf("step %d: member %v moved %v -> %v", step, asn, m, again)
			}
		}
	}
	// Density: every ID below NumIfaces resolves back to an address
	// that resolves to it.
	if tab.NumIfaces() != len(assigned) {
		t.Fatalf("%d addresses, %d IDs", len(assigned), tab.NumIfaces())
	}
	for i := 0; i < tab.NumIfaces(); i++ {
		ip := tab.Addr(IfaceID(i))
		if id, ok := tab.Iface(ip); !ok || id != IfaceID(i) {
			t.Fatalf("ID %d: Addr/Iface round-trip broken (%v, %v)", i, id, ok)
		}
	}

	// Facility round-trip.
	for i := 0; i < 100; i++ {
		f := netsim.FacilityID(rng.Intn(50))
		id := tab.AddFac(f)
		if tab.FacilityID(id) != f {
			t.Fatalf("FacilityID(Fac(%v)) = %v", f, tab.FacilityID(id))
		}
	}
}

// TestBits exercises the bitset across word boundaries and the
// capacity-reusing copy.
func TestBits(t *testing.T) {
	var b Bits
	for _, i := range []uint32{0, 1, 63, 64, 65, 127, 128, 1000} {
		if b.Get(i) {
			t.Fatalf("bit %d set in empty set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	b.Clear(64)
	if b.Get(64) || !b.Get(63) || !b.Get(65) {
		t.Fatal("Clear(64) disturbed neighbours")
	}
	var c Bits
	c.Set(5000) // larger than b; CopyFrom must shrink
	c.CopyFrom(&b)
	for _, i := range []uint32{0, 1, 63, 65, 127, 128, 1000} {
		if !c.Get(i) {
			t.Fatalf("copy lost bit %d", i)
		}
	}
	if c.Get(64) || c.Get(5000) {
		t.Fatal("copy carried stale bits")
	}
	b.Reset()
	if b.Get(0) || b.Get(1000) {
		t.Fatal("Reset left bits behind")
	}
}
