// Package evolve simulates the longitudinal evolution of IXP
// membership (Section 6.3): monthly joins and departures per peering
// type, the 2x faster growth of remote peers, their higher (+25%)
// departure rates, and occasional remote-to-local conversions.
package evolve

import (
	"math"
	"math/rand"

	"rpeer/internal/netsim"
)

// Config controls the simulation.
type Config struct {
	Seed int64
	// Months is the observation window (the paper observes ~14 months:
	// 2017-07 to 2018-09).
	Months int
	// JoinLocalPerIXP is the mean number of new local members one IXP
	// attracts per month.
	JoinLocalPerIXP float64
	// RemoteJoinFactor multiplies the local join rate for remote joins
	// (the paper measures ~2x).
	RemoteJoinFactor float64
	// DepartLocalRate is the monthly departure probability per local
	// member.
	DepartLocalRate float64
	// DepartRemoteFactor multiplies it for remote members (+25%).
	DepartRemoteFactor float64
	// SwitchToLocalPerMonth is the expected number of remote members
	// converting to local interconnections per month across all IXPs.
	SwitchToLocalPerMonth float64
}

// DefaultConfig mirrors the paper's observation window.
func DefaultConfig() Config {
	return Config{
		Seed:                  1,
		Months:                14,
		JoinLocalPerIXP:       1.7,
		RemoteJoinFactor:      2.0,
		DepartLocalRate:       0.006,
		DepartRemoteFactor:    1.25,
		SwitchToLocalPerMonth: 1.3,
	}
}

// MonthStats is one month's membership churn across the tracked IXPs.
type MonthStats struct {
	Month                   int
	NewLocal, NewRemote     int
	GoneLocal, GoneRemote   int
	Switched                int // remote -> local conversions
	TotalLocal, TotalRemote int // totals at end of month
}

// Series is the simulated evolution.
type Series struct {
	IXPs   []netsim.IXPID
	Months []MonthStats
}

// Simulate evolves the membership of the given IXPs from their
// base-world totals.
func Simulate(w *netsim.World, ixps []netsim.IXPID, cfg Config) *Series {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var local, remote int
	for _, id := range ixps {
		for _, m := range w.MembersOf(id) {
			if m.Remote() {
				remote++
			} else {
				local++
			}
		}
	}
	s := &Series{IXPs: append([]netsim.IXPID(nil), ixps...)}
	for month := 1; month <= cfg.Months; month++ {
		st := MonthStats{Month: month}
		for range ixps {
			st.NewLocal += poisson(rng, cfg.JoinLocalPerIXP)
			st.NewRemote += poisson(rng, cfg.JoinLocalPerIXP*cfg.RemoteJoinFactor)
		}
		st.GoneLocal = binomial(rng, local, cfg.DepartLocalRate)
		st.GoneRemote = binomial(rng, remote, cfg.DepartLocalRate*cfg.DepartRemoteFactor)
		st.Switched = poisson(rng, cfg.SwitchToLocalPerMonth)
		if st.Switched > remote {
			st.Switched = remote
		}
		local += st.NewLocal - st.GoneLocal + st.Switched
		remote += st.NewRemote - st.GoneRemote - st.Switched
		if local < 0 {
			local = 0
		}
		if remote < 0 {
			remote = 0
		}
		st.TotalLocal, st.TotalRemote = local, remote
		s.Months = append(s.Months, st)
	}
	return s
}

// GrowthRates returns the mean monthly joins per peering type.
func (s *Series) GrowthRates() (localPerMonth, remotePerMonth float64) {
	if len(s.Months) == 0 {
		return 0, 0
	}
	var l, r int
	for _, m := range s.Months {
		l += m.NewLocal
		r += m.NewRemote
	}
	n := float64(len(s.Months))
	return float64(l) / n, float64(r) / n
}

// DepartureRates returns the mean monthly departures per peering type,
// normalised by the mean membership of that type.
func (s *Series) DepartureRates() (localRate, remoteRate float64) {
	if len(s.Months) == 0 {
		return 0, 0
	}
	var gl, gr, tl, tr float64
	for _, m := range s.Months {
		gl += float64(m.GoneLocal)
		gr += float64(m.GoneRemote)
		tl += float64(m.TotalLocal)
		tr += float64(m.TotalRemote)
	}
	if tl > 0 {
		localRate = gl / tl
	}
	if tr > 0 {
		remoteRate = gr / tr
	}
	return localRate, remoteRate
}

// Switches returns the total remote-to-local conversions observed.
func (s *Series) Switches() int {
	n := 0
	for _, m := range s.Months {
		n += m.Switched
	}
	return n
}

func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

func binomial(rng *rand.Rand, n int, p float64) int {
	c := 0
	for i := 0; i < n; i++ {
		if rng.Float64() < p {
			c++
		}
	}
	return c
}

// RemoteShares returns the remote membership share at the end of each
// month — the longitudinal trajectory the paper's Section 8 proposes
// tracking over years.
func (s *Series) RemoteShares() []float64 {
	out := make([]float64, 0, len(s.Months))
	for _, m := range s.Months {
		tot := m.TotalLocal + m.TotalRemote
		if tot == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(m.TotalRemote)/float64(tot))
	}
	return out
}
