package evolve

import (
	"testing"

	"rpeer/internal/netsim"
)

var cw *netsim.World

func world(t testing.TB) *netsim.World {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
	}
	return cw
}

func trackedIXPs(w *netsim.World) []netsim.IXPID {
	var ids []netsim.IXPID
	for _, ix := range w.LargestIXPs(5) {
		ids = append(ids, ix.ID)
	}
	return ids
}

func TestSimulateGrowthTwiceLocal(t *testing.T) {
	w := world(t)
	s := Simulate(w, trackedIXPs(w), DefaultConfig())
	if len(s.Months) != DefaultConfig().Months {
		t.Fatalf("months = %d", len(s.Months))
	}
	l, r := s.GrowthRates()
	if l <= 0 || r <= 0 {
		t.Fatal("no growth")
	}
	ratio := r / l
	t.Logf("growth: local=%.2f/mo remote=%.2f/mo ratio=%.2f", l, r, ratio)
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("remote/local growth ratio = %.2f, want ~2.0", ratio)
	}
}

func TestDepartureRatesHigherForRemote(t *testing.T) {
	w := world(t)
	cfg := DefaultConfig()
	cfg.Months = 48 // longer window for a stable estimate
	s := Simulate(w, trackedIXPs(w), cfg)
	lr, rr := s.DepartureRates()
	if lr <= 0 || rr <= 0 {
		t.Fatal("no departures observed")
	}
	ratio := rr / lr
	t.Logf("departures: local=%.4f remote=%.4f ratio=%.2f", lr, rr, ratio)
	// Paper: +25% higher departure rate for remote peers.
	if ratio < 1.02 || ratio > 1.6 {
		t.Errorf("departure ratio = %.2f, want ~1.25", ratio)
	}
}

func TestSwitchesObserved(t *testing.T) {
	w := world(t)
	s := Simulate(w, trackedIXPs(w), DefaultConfig())
	// Paper: 18 remote-to-local switches over the window.
	if got := s.Switches(); got < 5 || got > 40 {
		t.Errorf("switches = %d, want ~18", got)
	}
}

func TestTotalsConsistent(t *testing.T) {
	w := world(t)
	cfg := DefaultConfig()
	s := Simulate(w, trackedIXPs(w), cfg)
	var local, remote int
	for _, id := range trackedIXPs(w) {
		for _, m := range w.MembersOf(id) {
			if m.Remote() {
				remote++
			} else {
				local++
			}
		}
	}
	for _, m := range s.Months {
		local += m.NewLocal - m.GoneLocal + m.Switched
		remote += m.NewRemote - m.GoneRemote - m.Switched
		if m.TotalLocal != local || m.TotalRemote != remote {
			t.Fatalf("month %d totals inconsistent: have (%d,%d), want (%d,%d)",
				m.Month, m.TotalLocal, m.TotalRemote, local, remote)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	w := world(t)
	a := Simulate(w, trackedIXPs(w), DefaultConfig())
	b := Simulate(w, trackedIXPs(w), DefaultConfig())
	for i := range a.Months {
		if a.Months[i] != b.Months[i] {
			t.Fatalf("month %d differs", i)
		}
	}
}

func TestZeroMonths(t *testing.T) {
	w := world(t)
	cfg := DefaultConfig()
	cfg.Months = 0
	s := Simulate(w, trackedIXPs(w), cfg)
	if len(s.Months) != 0 {
		t.Fatal("expected empty series")
	}
	l, r := s.GrowthRates()
	if l != 0 || r != 0 {
		t.Fatal("rates on empty series should be zero")
	}
}

func TestRemoteSharesGrow(t *testing.T) {
	w := world(t)
	cfg := DefaultConfig()
	cfg.Months = 36
	s := Simulate(w, trackedIXPs(w), cfg)
	shares := s.RemoteShares()
	if len(shares) != 36 {
		t.Fatalf("shares = %d months", len(shares))
	}
	for _, v := range shares {
		if v < 0 || v > 1 {
			t.Fatalf("share %v out of range", v)
		}
	}
	// Remote joins outpace local joins 2:1, so the share must trend up.
	if shares[len(shares)-1] <= shares[0] {
		t.Errorf("remote share did not grow: %.3f -> %.3f", shares[0], shares[len(shares)-1])
	}
}
