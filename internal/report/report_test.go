package report

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestECDFBasics(t *testing.T) {
	e := NewECDF([]float64{1, 2, 3, 4})
	if e.Len() != 4 {
		t.Fatalf("Len = %d", e.Len())
	}
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestECDFDropsNaN(t *testing.T) {
	e := NewECDF([]float64{1, math.NaN(), 2})
	if e.Len() != 2 {
		t.Fatalf("Len = %d, want 2", e.Len())
	}
}

func TestECDFEmpty(t *testing.T) {
	e := NewECDF(nil)
	if got := e.At(5); got != 0 {
		t.Errorf("At on empty = %v", got)
	}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Error("Quantile on empty should be NaN")
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	f := func(samples []float64, a, b float64) bool {
		clean := make([]float64, 0, len(samples))
		for _, v := range samples {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		e := NewECDF(clean)
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuantileOrderProperty(t *testing.T) {
	f := func(samples []float64) bool {
		clean := make([]float64, 0, len(samples))
		for _, v := range samples {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				clean = append(clean, v)
			}
		}
		if len(clean) == 0 {
			return true
		}
		e := NewECDF(clean)
		qs := []float64{0, 0.25, 0.5, 0.75, 1}
		vals := make([]float64, len(qs))
		for i, q := range qs {
			vals[i] = e.Quantile(q)
		}
		return sort.Float64sAreSorted(vals)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(
		[]float64{100, 200, 500, 1000, 1000, 10000, 100000},
		[]float64{500, 1000, 10000, math.Inf(1)},
		[]string{"<=FE5", "1GE", "10GE", "100GE+"},
	)
	if h.Total != 7 {
		t.Fatalf("Total = %d", h.Total)
	}
	wants := []int{3, 2, 1, 1}
	for i, w := range wants {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if got := h.Frac(0); math.Abs(got-3.0/7) > 1e-9 {
		t.Errorf("Frac(0) = %v", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Table X", "IXP", "ACC")
	tab.AddRow("Amsterdam-IX", 0.956)
	tab.AddRow("Frankfurt-IX", 0.91)
	out := tab.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "Amsterdam-IX") {
		t.Errorf("render missing content:\n%s", out)
	}
	if !strings.Contains(out, "0.96") {
		t.Errorf("float formatting broken:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("line count = %d, want 5:\n%s", len(lines), out)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(0.283); got != "28.3%" {
		t.Errorf("Pct = %q", got)
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty sparkline = %q", got)
	}
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if runes := []rune(s); len(runes) != 8 {
		t.Fatalf("sparkline length = %d, want 8", len(runes))
	}
	if s != "▁▂▃▄▅▆▇█" {
		t.Errorf("monotone sparkline = %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▅' {
			t.Errorf("flat sparkline = %q, want mid-height blocks", flat)
		}
	}
	withNaN := []rune(Sparkline([]float64{1, math.NaN(), 2}))
	if withNaN[1] != ' ' {
		t.Errorf("NaN should render as space: %q", string(withNaN))
	}
}
