// Package report provides the presentation-layer helpers shared by the
// experiment harness: empirical CDFs, histograms, percentiles, and
// fixed-width ASCII tables matching the paper's tables and figures.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// ECDF is an empirical cumulative distribution function over float64
// samples.
type ECDF struct {
	sorted []float64
}

// NewECDF copies and sorts the samples. NaNs are dropped.
func NewECDF(samples []float64) *ECDF {
	s := make([]float64, 0, len(samples))
	for _, v := range samples {
		if !math.IsNaN(v) {
			s = append(s, v)
		}
	}
	sort.Float64s(s)
	return &ECDF{sorted: s}
}

// Len returns the number of samples.
func (e *ECDF) Len() int { return len(e.sorted) }

// At returns P(X <= x).
func (e *ECDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Quantile returns the q-quantile (q in [0,1]).
func (e *ECDF) Quantile(q float64) float64 {
	if len(e.sorted) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return e.sorted[0]
	}
	if q >= 1 {
		return e.sorted[len(e.sorted)-1]
	}
	i := int(q * float64(len(e.sorted)-1))
	return e.sorted[i]
}

// Median is the 0.5 quantile.
func (e *ECDF) Median() float64 { return e.Quantile(0.5) }

// Histogram buckets samples into labelled bins.
type Histogram struct {
	Labels []string
	Counts []int
	Total  int
}

// NewHistogram buckets each sample into the first bin whose upper
// bound is >= the sample (bounds ascending; +Inf as last catches all).
func NewHistogram(samples []float64, bounds []float64, labels []string) *Histogram {
	h := &Histogram{Labels: labels, Counts: make([]int, len(bounds))}
	for _, v := range samples {
		if math.IsNaN(v) {
			continue
		}
		for i, b := range bounds {
			if v <= b {
				h.Counts[i]++
				h.Total++
				break
			}
		}
	}
	return h
}

// Frac returns the fraction of samples in bin i.
func (h *Histogram) Frac(i int) float64 {
	if h.Total == 0 {
		return 0
	}
	return float64(h.Counts[i]) / float64(h.Total)
}

// Table renders fixed-width ASCII tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(t.Headers)
	fmt.Fprintf(w, "|-%s-|\n", strings.Join(sep, "-|-"))
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Pct formats a ratio as a percentage string.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sparkRunes are the eight block heights used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a compact unicode trend line of the values, useful
// for longitudinal series in terminal reports. NaNs render as spaces;
// a flat series renders at half height.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, 0, len(values))
	for _, v := range values {
		switch {
		case math.IsNaN(v):
			out = append(out, ' ')
		case hi == lo:
			out = append(out, sparkRunes[len(sparkRunes)/2])
		default:
			i := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
			out = append(out, sparkRunes[i])
		}
	}
	return string(out)
}
