// Package exp regenerates every table and figure of the paper's
// evaluation from a synthetic world: the same pipeline, measurements
// and statistics, with one constructor per artefact. The cmd/rpi-
// experiments binary and the repository-root benchmarks are thin
// wrappers around this package.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rpeer/internal/core"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/report"
	"rpeer/internal/tracesim"
	"rpeer/internal/traix"
	"rpeer/pkg/rpi"
)

// Env is the assembled experimental environment: one world, its
// datasets, one measurement campaign, one shared inference engine,
// one pipeline run and the validation split. Build it once and feed it
// to every experiment.
//
// Engine is the long-lived rpi.Engine the environment rides on; Ctx is
// its shared core.Context over Inputs. Constructors that re-run the
// pipeline under modified options (Table 4's per-step rows, the
// Section 8 extension) go through Ctx so the RTT indexes, traceroute
// detections, geo rings and alias clusters are computed once per
// environment rather than once per artefact. Both are safe for the
// concurrent use All makes of them.
//
// Dataset and Inputs reflect the engine's view (a private clone of the
// generated registry data), so applied deltas and experiment reads
// stay coherent.
type Env struct {
	World      *netsim.World
	Dataset    *registry.Dataset
	Colo       *registry.ColoDB
	VPs        []*pingsim.VP
	Ping       *pingsim.Result
	Paths      []*traix.Path
	Inputs     core.Inputs
	Engine     *rpi.Engine
	Ctx        *core.Context
	Report     *core.Report
	BaseReport *core.Report
	Validation *core.Validation

	ixpByName map[string]*netsim.IXP
}

// NewEnv builds the environment with the default configuration.
// Options configure the underlying engine (worker count, baseline
// threshold, ...).
func NewEnv(seed int64, opts ...rpi.Option) (*Env, error) {
	return NewEnvWithConfig(netsim.DefaultConfig(), seed, opts...)
}

// NewEnvWithConfig builds the environment over an explicit world
// configuration (the scaling suite feeds it netsim.ScaledConfig
// presets); cfg.Seed is overridden by seed. The build is a dataflow
// DAG, not a barrier pipeline: once the world is generated, the
// registry, colocation DB, ping campaign, traceroute corpus and
// validation split all start concurrently, the engine (whose shared
// context again shards its own index construction) starts as soon as
// its four inputs — dataset, colo, campaign, corpus — are ready, and
// the validation split (pure experiment metadata no inference stage
// reads) only joins at the very end. The result is identical to a
// fully sequential build — every stage draws from its own seeded
// streams and no stage reads another's output.
func NewEnvWithConfig(cfg netsim.Config, seed int64, opts ...rpi.Option) (*Env, error) {
	cfg.Seed = seed
	w, err := netsim.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: generate world: %w", err)
	}

	var (
		wgIn  sync.WaitGroup // the engine's input stages
		wgVal sync.WaitGroup // validation: joins last
		ds    *registry.Dataset
		colo  *registry.ColoDB
		vps   []*pingsim.VP
		ping  *pingsim.Result
		paths []*traix.Path
		val   *core.Validation
	)
	wgIn.Add(4)
	go func() {
		defer wgIn.Done()
		ds = registry.Build(w, registry.DefaultNoise(), seed+1)
	}()
	go func() {
		defer wgIn.Done()
		colo = registry.BuildColo(w, registry.DefaultColoNoise(), seed+2)
	}()
	go func() {
		defer wgIn.Done()
		vps = pingsim.DeriveVPs(w, seed+3)
		pcfg := pingsim.DefaultCampaign()
		pcfg.Seed = seed + 4
		ping = pingsim.RunParallel(w, vps, pcfg, 0)
	}()
	go func() {
		defer wgIn.Done()
		tcfg := tracesim.DefaultConfig()
		tcfg.Seed = seed + 5
		paths = tracesim.Generate(w, tcfg)
	}()
	wgVal.Add(1)
	go func() {
		defer wgVal.Done()
		vcfg := core.DefaultValidationConfig()
		vcfg.Seed = seed + 7
		val = core.BuildValidation(w, vcfg)
	}()
	wgIn.Wait()

	in := core.Inputs{
		World: w, Dataset: ds, Colo: colo, Ping: ping, Paths: paths,
		Speed: geo.DefaultSpeedModel(), Seed: seed + 6,
	}
	eng, err := rpi.New(in, opts...)
	if err != nil {
		return nil, fmt.Errorf("exp: engine: %w", err)
	}
	base, err := eng.Baseline()
	if err != nil {
		return nil, fmt.Errorf("exp: baseline: %w", err)
	}
	wgVal.Wait()

	// The engine owns a private dataset clone; expose its view so
	// experiment reads and applied deltas stay coherent.
	in = eng.Inputs()
	env := &Env{
		World: w, Dataset: in.Dataset, Colo: colo, VPs: vps, Ping: ping,
		Paths: paths, Inputs: in, Engine: eng, Ctx: eng.Context(),
		Report: eng.Snapshot(), BaseReport: base,
		Validation: val,
		ixpByName:  make(map[string]*netsim.IXP, len(w.IXPs)),
	}
	for _, ix := range w.IXPs {
		env.ixpByName[ix.Name] = ix
	}
	return env, nil
}

// NewEnvFromInputs builds the environment over a pre-assembled input
// bundle — the path a world file (internal/worldfile, written by
// rpi-gen -o world.rpw) takes into the experiment and benchmark
// harnesses: no generation, just the engine build and pipeline run.
// The validation split is re-derived from the world with the same
// seed layout NewEnvWithConfig uses (base+7, where in.Seed is base+6),
// so an env loaded from a file and one generated in-process over the
// same (seed, config) are interchangeable.
func NewEnvFromInputs(in core.Inputs, opts ...rpi.Option) (*Env, error) {
	var (
		wgVal sync.WaitGroup
		val   *core.Validation
	)
	wgVal.Add(1)
	go func() {
		defer wgVal.Done()
		vcfg := core.DefaultValidationConfig()
		vcfg.Seed = in.Seed + 1
		val = core.BuildValidation(in.World, vcfg)
	}()
	eng, err := rpi.New(in, opts...)
	if err != nil {
		return nil, fmt.Errorf("exp: engine: %w", err)
	}
	base, err := eng.Baseline()
	if err != nil {
		return nil, fmt.Errorf("exp: baseline: %w", err)
	}
	wgVal.Wait()

	engIn := eng.Inputs()
	env := &Env{
		World: in.World, Dataset: engIn.Dataset, Colo: in.Colo,
		VPs: in.Ping.VPs, Ping: in.Ping, Paths: in.Paths,
		Inputs: engIn, Engine: eng, Ctx: eng.Context(),
		Report: eng.Snapshot(), BaseReport: base,
		Validation: val,
		ixpByName:  make(map[string]*netsim.IXP, len(in.World.IXPs)),
	}
	for _, ix := range in.World.IXPs {
		env.ixpByName[ix.Name] = ix
	}
	return env, nil
}

// IXPByName resolves an IXP name to the world object.
func (e *Env) IXPByName(name string) *netsim.IXP { return e.ixpByName[name] }

// TestSubset returns the validation data restricted to the test IXPs.
func (e *Env) TestSubset() *core.Validation {
	return e.Validation.InIXPs(e.Validation.TestIXPs)
}

// ControlSubset returns the validation data restricted to the control
// IXPs.
func (e *Env) ControlSubset() *core.Validation {
	return e.Validation.InIXPs(e.Validation.ControlIXPs)
}

// StudiedIXPs returns the n largest IXPs with at least one usable VP —
// the paper's "30 largest IXPs with usable VPs" selection.
func (e *Env) StudiedIXPs(n int) []*netsim.IXP {
	usable := make(map[netsim.IXPID]bool)
	for _, vp := range e.Ping.UsableVPs {
		usable[vp.IXP] = true
	}
	var out []*netsim.IXP
	for _, ix := range e.World.LargestIXPs(len(e.World.IXPs)) {
		if usable[ix.ID] {
			out = append(out, ix)
		}
		if len(out) == n {
			break
		}
	}
	return out
}

// Result is one regenerated artefact: an identifier matching the paper
// (e.g. "Table 4"), the paper's claim for comparison, and the measured
// table.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	Table      *report.Table
	Notes      []string
}

// artefact couples one constructor with its measured warm-cache serial
// cost on the default world (rough microseconds; re-measure with
// TestMeasureArtefactCosts, see DESIGN.md section 7). Only the
// relative order matters: AllWorkers hands expensive artefacts out
// first, so the straggler — Sec 6.4, even after its PR 5 distance-
// memoization cut it 618 -> ~59 ms; Table 4 collapsed from 2.6 s to
// ~40 ms with the PR 4/PR 5 speedups — starts immediately instead of
// gating the suite from the tail of the queue.
type artefact struct {
	fn     func(*Env) Result
	costUs int
}

// artefacts lists every artefact in paper order (the output order of
// All and friends, regardless of the execution schedule).
var artefacts = []artefact{
	{Table1, 8},
	{Table2, 2812},
	{Fig1a, 163},
	{Fig1b, 6406},
	{Fig2a, 107},
	{Fig2b, 208},
	{Fig4, 2125},
	{Fig5, 1195},
	{Fig6, 401},
	{Table4, 41293},
	{Fig8, 642},
	{Table5, 2251},
	{Fig9a, 32},
	{Fig9b, 794},
	{Fig9c, 220},
	{Fig9d, 4},
	{Fig10a, 377},
	{Fig10b, 3028},
	{Fig11a, 2159},
	{Fig11b, 958},
	{Fig12a, 136},
	{Fig12b, 878},
	{Sec64, 58610},
	{Sec7, 5009},
	{Sec8, 7834},
	{Sec8Longitudinal, 326},
}

// schedule is the execution order of the worker pool: artefact indexes
// sorted by descending cost (longest-first), ties in paper order.
var schedule = func() []int {
	idx := make([]int, len(artefacts))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return artefacts[idx[a]].costUs > artefacts[idx[b]].costUs
	})
	return idx
}()

// All regenerates every artefact, fanning the independent constructors
// out across one worker per CPU with a longest-first schedule. Results
// are returned in paper order and are value-identical to the serial
// path (see AllSerial and the determinism test).
func All(env *Env) []Result {
	return AllWorkers(env, 0)
}

// AllSerial regenerates every artefact on the calling goroutine, for
// callers that need single-threaded execution (or a reference output
// to compare the parallel path against).
func AllSerial(env *Env) []Result {
	return AllWorkers(env, 1)
}

// AllWorkers is All with an explicit worker count; workers <= 0 uses
// GOMAXPROCS, and the pool never exceeds the number of artefacts (a
// worker with no work to claim would be a leaked-goroutine hazard for
// nothing). Each artefact is independent: constructors only read the
// environment and share the thread-safe core.Context. Workers claim
// artefacts in schedule order (longest-first) and write results back
// by paper-order index, so the output is deterministic regardless of
// completion order.
func AllWorkers(env *Env, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(artefacts) {
		workers = len(artefacts)
	}
	out := make([]Result, len(artefacts))
	if workers <= 1 {
		for i, a := range artefacts {
			out[i] = a.fn(env)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				n := int(next.Add(1)) - 1
				if n >= len(schedule) {
					return
				}
				i := schedule[n]
				out[i] = artefacts[i].fn(env)
			}
		}()
	}
	wg.Wait()
	return out
}

// controlCampaign runs the "one-time access" LG-style measurements the
// paper obtained inside the control IXPs (Section 4.1), returning
// per-interface minimum RTTs for each control IXP.
func (e *Env) controlCampaign() *pingsim.Result {
	var vps []*pingsim.VP
	id := 10000
	for _, name := range e.Validation.ControlIXPs {
		ix := e.IXPByName(name)
		if ix == nil {
			continue
		}
		f := ix.Facilities[0]
		vps = append(vps, &pingsim.VP{
			ID: id, IXP: ix.ID, Kind: pingsim.KindLG,
			Facility: f, Loc: e.World.Facility(f).Loc,
			SrcIP: ix.RouteServer,
		})
		id++
	}
	cfg := pingsim.DefaultCampaign()
	cfg.Seed = e.World.Cfg.Seed + 99
	return pingsim.Run(e.World, vps, cfg)
}

// sortedIXPNames returns IXP names sorted by descending ground-truth
// size then name, for stable table output.
func (e *Env) sortedIXPNames(names map[string]bool) []string {
	var out []string
	for n := range names {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := e.IXPByName(out[i]), e.IXPByName(out[j])
		na, nb := 0, 0
		if a != nil {
			na = len(e.World.MembersOf(a.ID))
		}
		if b != nil {
			nb = len(e.World.MembersOf(b.ID))
		}
		if na != nb {
			return na > nb
		}
		return out[i] < out[j]
	})
	return out
}
