// Package exp regenerates every table and figure of the paper's
// evaluation from a synthetic world: the same pipeline, measurements
// and statistics, with one constructor per artefact. The cmd/rpi-
// experiments binary and the repository-root benchmarks are thin
// wrappers around this package.
package exp

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rpeer/internal/core"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/report"
	"rpeer/internal/tracesim"
	"rpeer/internal/traix"
)

// Env is the assembled experimental environment: one world, its
// datasets, one measurement campaign, one shared inference context,
// one pipeline run and the validation split. Build it once and feed it
// to every experiment.
//
// Ctx is the shared core.Context over Inputs: constructors that re-run
// the pipeline under modified options (Table 4's per-step rows, the
// Section 8 extension) go through it so the RTT indexes, traceroute
// detections, geo rings and alias clusters are computed once per
// environment rather than once per artefact. The context is safe for
// the concurrent use All makes of it.
type Env struct {
	World      *netsim.World
	Dataset    *registry.Dataset
	Colo       *registry.ColoDB
	VPs        []*pingsim.VP
	Ping       *pingsim.Result
	Paths      []*traix.Path
	Inputs     core.Inputs
	Ctx        *core.Context
	Report     *core.Report
	BaseReport *core.Report
	Validation *core.Validation

	ixpByName map[string]*netsim.IXP
}

// NewEnv builds the environment with the default configuration.
func NewEnv(seed int64) (*Env, error) {
	cfg := netsim.DefaultConfig()
	cfg.Seed = seed
	w, err := netsim.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("exp: generate world: %w", err)
	}
	ds := registry.Build(w, registry.DefaultNoise(), seed+1)
	colo := registry.BuildColo(w, registry.DefaultColoNoise(), seed+2)
	vps := pingsim.DeriveVPs(w, seed+3)
	pcfg := pingsim.DefaultCampaign()
	pcfg.Seed = seed + 4
	ping := pingsim.Run(w, vps, pcfg)
	tcfg := tracesim.DefaultConfig()
	tcfg.Seed = seed + 5
	paths := tracesim.Generate(w, tcfg)

	in := core.Inputs{
		World: w, Dataset: ds, Colo: colo, Ping: ping, Paths: paths,
		Speed: geo.DefaultSpeedModel(), Seed: seed + 6,
	}
	ctx, err := core.NewContext(in)
	if err != nil {
		return nil, fmt.Errorf("exp: context: %w", err)
	}
	rep, err := ctx.Run(core.DefaultOptions())
	if err != nil {
		return nil, fmt.Errorf("exp: pipeline: %w", err)
	}
	base, err := ctx.Baseline(core.DefaultBaselineThresholdMs)
	if err != nil {
		return nil, fmt.Errorf("exp: baseline: %w", err)
	}
	vcfg := core.DefaultValidationConfig()
	vcfg.Seed = seed + 7
	val := core.BuildValidation(w, vcfg)

	env := &Env{
		World: w, Dataset: ds, Colo: colo, VPs: vps, Ping: ping,
		Paths: paths, Inputs: in, Ctx: ctx, Report: rep, BaseReport: base,
		Validation: val,
		ixpByName:  make(map[string]*netsim.IXP, len(w.IXPs)),
	}
	for _, ix := range w.IXPs {
		env.ixpByName[ix.Name] = ix
	}
	return env, nil
}

// IXPByName resolves an IXP name to the world object.
func (e *Env) IXPByName(name string) *netsim.IXP { return e.ixpByName[name] }

// TestSubset returns the validation data restricted to the test IXPs.
func (e *Env) TestSubset() *core.Validation {
	return e.Validation.InIXPs(e.Validation.TestIXPs)
}

// ControlSubset returns the validation data restricted to the control
// IXPs.
func (e *Env) ControlSubset() *core.Validation {
	return e.Validation.InIXPs(e.Validation.ControlIXPs)
}

// StudiedIXPs returns the n largest IXPs with at least one usable VP —
// the paper's "30 largest IXPs with usable VPs" selection.
func (e *Env) StudiedIXPs(n int) []*netsim.IXP {
	usable := make(map[netsim.IXPID]bool)
	for _, vp := range e.Ping.UsableVPs {
		usable[vp.IXP] = true
	}
	var out []*netsim.IXP
	for _, ix := range e.World.LargestIXPs(len(e.World.IXPs)) {
		if usable[ix.ID] {
			out = append(out, ix)
		}
		if len(out) == n {
			break
		}
	}
	return out
}

// Result is one regenerated artefact: an identifier matching the paper
// (e.g. "Table 4"), the paper's claim for comparison, and the measured
// table.
type Result struct {
	ID         string
	Title      string
	PaperClaim string
	Table      *report.Table
	Notes      []string
}

// constructors lists every artefact in paper order.
var constructors = []func(*Env) Result{
	Table1,
	Table2,
	Fig1a,
	Fig1b,
	Fig2a,
	Fig2b,
	Fig4,
	Fig5,
	Fig6,
	Table4,
	Fig8,
	Table5,
	Fig9a,
	Fig9b,
	Fig9c,
	Fig9d,
	Fig10a,
	Fig10b,
	Fig11a,
	Fig11b,
	Fig12a,
	Fig12b,
	Sec64,
	Sec7,
	Sec8,
	Sec8Longitudinal,
}

// All regenerates every artefact in paper order, fanning the
// independent constructors out across one worker per CPU. Results are
// returned in the same deterministic order as the serial path and are
// value-identical to it (see AllSerial and the determinism test).
func All(env *Env) []Result {
	return AllWorkers(env, 0)
}

// AllSerial regenerates every artefact on the calling goroutine, for
// callers that need single-threaded execution (or a reference output
// to compare the parallel path against).
func AllSerial(env *Env) []Result {
	return AllWorkers(env, 1)
}

// AllWorkers is All with an explicit worker count; workers <= 0 uses
// GOMAXPROCS. Each artefact is independent: constructors only read the
// environment and share the thread-safe core.Context.
func AllWorkers(env *Env, workers int) []Result {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(constructors) {
		workers = len(constructors)
	}
	out := make([]Result, len(constructors))
	if workers <= 1 {
		for i, f := range constructors {
			out[i] = f(env)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(constructors) {
					return
				}
				out[i] = constructors[i](env)
			}
		}()
	}
	wg.Wait()
	return out
}

// controlCampaign runs the "one-time access" LG-style measurements the
// paper obtained inside the control IXPs (Section 4.1), returning
// per-interface minimum RTTs for each control IXP.
func (e *Env) controlCampaign() *pingsim.Result {
	var vps []*pingsim.VP
	id := 10000
	for _, name := range e.Validation.ControlIXPs {
		ix := e.IXPByName(name)
		if ix == nil {
			continue
		}
		f := ix.Facilities[0]
		vps = append(vps, &pingsim.VP{
			ID: id, IXP: ix.ID, Kind: pingsim.KindLG,
			Facility: f, Loc: e.World.Facility(f).Loc,
			SrcIP: ix.RouteServer,
		})
		id++
	}
	cfg := pingsim.DefaultCampaign()
	cfg.Seed = e.World.Cfg.Seed + 99
	return pingsim.Run(e.World, vps, cfg)
}

// sortedIXPNames returns IXP names sorted by descending ground-truth
// size then name, for stable table output.
func (e *Env) sortedIXPNames(names map[string]bool) []string {
	var out []string
	for n := range names {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := e.IXPByName(out[i]), e.IXPByName(out[j])
		na, nb := 0, 0
		if a != nil {
			na = len(e.World.MembersOf(a.ID))
		}
		if b != nil {
			nb = len(e.World.MembersOf(b.ID))
		}
		if na != nb {
			return na > nb
		}
		return out[i] < out[j]
	})
	return out
}
