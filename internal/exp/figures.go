package exp

import (
	"math"

	"rpeer/internal/core"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/report"
)

// Fig1a regenerates the facility-presence distribution of ASes and
// IXPs (how many facilities each is present at).
func Fig1a(env *Env) Result {
	var asCounts, ixpCounts []float64
	for asn, facs := range env.Colo.ASFacilities {
		_ = asn
		asCounts = append(asCounts, float64(len(facs)))
	}
	for _, facs := range env.Colo.IXPFacilities {
		ixpCounts = append(ixpCounts, float64(len(facs)))
	}
	asE, ixE := report.NewECDF(asCounts), report.NewECDF(ixpCounts)
	t := report.NewTable("Fig 1a: facility presence distribution",
		"Entity", "n", "P(<=1 facility)", "P(<=10)", "P(>10)")
	t.AddRow("ASes", asE.Len(), report.Pct(asE.At(1)), report.Pct(asE.At(10)), report.Pct(1-asE.At(10)))
	t.AddRow("IXPs", ixE.Len(), report.Pct(ixE.At(1)), report.Pct(ixE.At(10)), report.Pct(1-ixE.At(10)))
	return Result{
		ID:         "Fig 1a",
		Title:      "Distribution of ASNs and IXP facilities",
		PaperClaim: "~60% of IXPs and ASes present in a single facility; only ~5% in more than 10",
		Table:      t,
	}
}

// Fig1b regenerates the control-subset minimum-RTT ECDFs for remote
// and local peers.
func Fig1b(env *Env) Result {
	res := env.controlCampaign()
	rtts := res.MinRTTByIface()
	control := env.ControlSubset()
	var local, remote []float64
	for k := range control.Local {
		if v, ok := rtts[k.Iface]; ok {
			local = append(local, v)
		}
	}
	for k := range control.Remote {
		if v, ok := rtts[k.Iface]; ok {
			remote = append(remote, v)
		}
	}
	le, re := report.NewECDF(local), report.NewECDF(remote)
	t := report.NewTable("Fig 1b: control-subset RTTmin ECDF",
		"Class", "n", "P(<1ms)", "P(<2ms)", "P(<10ms)", "median ms")
	t.AddRow("local", le.Len(), report.Pct(le.At(1)), report.Pct(le.At(2)), report.Pct(le.At(10)), le.Median())
	t.AddRow("remote", re.Len(), report.Pct(re.At(1)), report.Pct(re.At(2)), report.Pct(re.At(10)), re.Median())
	return Result{
		ID:    "Fig 1b",
		Title: "Minimum RTTs of remote and local peers (control subset)",
		PaperClaim: "99% of local peers below 1ms; yet 18% of remote peers below " +
			"1ms and 40% below the 10ms threshold of prior work",
		Table: t,
	}
}

// Fig2a regenerates the wide-area IXP inter-facility delay matrix
// summary (NET-IX analogue).
func Fig2a(env *Env) Result {
	wide := widestIXP(env)
	t := report.NewTable("Fig 2a: inter-facility RTTs of a wide-area IXP",
		"IXP", "#Facilities", "#Pairs", "P(RTT>10ms)", "median ms", "max ms")
	if wide != nil {
		ds := env.World.Latency().InterFacilityDelays(wide.ID)
		var rtts []float64
		over10 := 0
		for _, s := range ds {
			rtts = append(rtts, s.RTTMs)
			if s.RTTMs > 10 {
				over10++
			}
		}
		e := report.NewECDF(rtts)
		frac := 0.0
		if len(ds) > 0 {
			frac = float64(over10) / float64(len(ds))
		}
		t.AddRow(wide.Name, len(wide.Facilities), len(ds), report.Pct(frac), e.Median(), e.Quantile(1))
	}
	return Result{
		ID:         "Fig 2a",
		Title:      "Median RTTs between wide-area IXP facilities",
		PaperClaim: "for 87% of NET-IX facility pairs the median RTT exceeds 10ms",
		Table:      t,
	}
}

// widestIXP picks the wide-area IXP with the most facilities.
func widestIXP(env *Env) *netsim.IXP {
	var best *netsim.IXP
	for _, ix := range env.World.IXPs {
		if !ix.WideArea {
			continue
		}
		if best == nil || len(ix.Facilities) > len(best.Facilities) {
			best = ix
		}
	}
	return best
}

// Fig2b regenerates the wide-area IXP prevalence analysis: maximum
// facility spread vs membership, and the wide-area share among all
// IXPs and the largest 50% of IXPs.
func Fig2b(env *Env) Result {
	t := report.NewTable("Fig 2b: wide-area IXPs (facility spread vs members)",
		"Scope", "IXPs", "Wide-area", "Share")
	nAll, wideAll := 0, 0
	nTop, wideTop := 0, 0
	ranked := env.World.LargestIXPs(len(env.World.IXPs))
	for rank, ix := range ranked {
		locs := env.World.FacilityLocs(ix.ID)
		maxD, _, _ := geo.MaxPairwiseKm(locs)
		isWide := len(locs) > 1 && maxD > geo.MetroSeparationKm
		nAll++
		if isWide {
			wideAll++
		}
		if rank < len(ranked)/2 {
			nTop++
			if isWide {
				wideTop++
			}
		}
	}
	t.AddRow("all IXPs", nAll, wideAll, report.Pct(float64(wideAll)/float64(nAll)))
	t.AddRow("largest half", nTop, wideTop, report.Pct(float64(wideTop)/float64(nTop)))
	return Result{
		ID:         "Fig 2b",
		Title:      "Prevalence of wide-area IXPs",
		PaperClaim: "64 of 446 IXPs (14.4%) are wide-area; 10 of the 50 largest (20%)",
		Table:      t,
	}
}

// Fig4 regenerates the port-capacity comparison of remote vs local
// peers in the control subset.
func Fig4(env *Env) Result {
	control := env.ControlSubset()
	memberPort := make(map[string]int) // iface -> port
	for _, m := range env.World.Members {
		memberPort[m.Iface.String()] = m.PortMbps
	}
	collect := func(keys map[core.Key]bool) []float64 {
		var out []float64
		for k := range keys {
			if p, ok := memberPort[k.Iface.String()]; ok {
				out = append(out, float64(p))
			}
		}
		return out
	}
	bounds := []float64{999, 9999, 99999, math.Inf(1)}
	labels := []string{"<1GE (fractional)", "1GE", "10-40GE", "100GE+"}
	lh := report.NewHistogram(collect(control.Local), bounds, labels)
	rh := report.NewHistogram(collect(control.Remote), bounds, labels)
	t := report.NewTable("Fig 4: port capacities, remote vs local (control subset)",
		"Capacity", "Local", "Local %", "Remote", "Remote %")
	for i, lab := range labels {
		t.AddRow(lab, lh.Counts[i], report.Pct(lh.Frac(i)), rh.Counts[i], report.Pct(rh.Frac(i)))
	}
	return Result{
		ID:    "Fig 4",
		Title: "Port capacities of remote and local peers",
		PaperClaim: "no local peer below 1GE; 27% of remote peers on fractional " +
			"(FE) ports; 100GE ports exclusively local",
		Table: t,
	}
}

// Fig5 regenerates the common-facility analysis of remote vs local
// peers in the control subset.
func Fig5(env *Env) Result {
	control := env.ControlSubset()
	type counts struct{ noData, zero, one, more int }
	tally := func(keys map[core.Key]bool) counts {
		var c counts
		for k := range keys {
			asn := env.Dataset.IfaceASN[k.Iface]
			common, ok := env.Colo.CommonWithIXP(asn, k.IXP)
			switch {
			case !ok:
				c.noData++
			case len(common) == 0:
				c.zero++
			case len(common) == 1:
				c.one++
			default:
				c.more++
			}
		}
		return c
	}
	lc, rc := tally(control.Local), tally(control.Remote)
	t := report.NewTable("Fig 5: IXP facilities shared with the IXP (control subset)",
		"Common facilities", "Local", "Remote")
	t.AddRow("no colo data", lc.noData, rc.noData)
	t.AddRow("0", lc.zero, rc.zero)
	t.AddRow("1", lc.one, rc.one)
	t.AddRow(">1", lc.more, rc.more)
	return Result{
		ID:    "Fig 5",
		Title: "Facility overlap of members with their IXP",
		PaperClaim: "all local peers share >=1 facility with the IXP; 95% of " +
			"remote peers share none; 18% of remotes lack data; ~5% show one " +
			"(reseller-facility artefacts and colocated reseller customers)",
		Table: t,
	}
}

// Fig6 regenerates the inter-facility RTT-vs-distance fit: the Y.1731
// corpus of the wide-area IXPs, the fitted lower-bound speed curve and
// the 4/9c upper bound.
func Fig6(env *Env) Result {
	var samples []geo.DelaySample
	for _, ix := range env.World.IXPs {
		if ix.WideArea {
			samples = append(samples, env.World.Latency().InterFacilityDelays(ix.ID)...)
		}
	}
	model, err := geo.FitMinSpeed(samples, 0)
	t := report.NewTable("Fig 6: inter-facility RTT vs distance and speed bounds",
		"Quantity", "Value")
	t.AddRow("Y.1731 samples", len(samples))
	if err == nil {
		t.AddRow("fitted vmin slope A (km/ms per ln km)", model.A)
		t.AddRow("fitted vmin offset B (ln km)", model.B)
		inBounds := 0
		for _, s := range samples {
			v := s.DistanceKm / s.RTTMs
			if v <= model.VMaxKmPerMs+1e-9 && v >= model.VMin(s.DistanceKm)-1e-9 {
				inBounds++
			}
		}
		t.AddRow("samples within [vmin, 4/9c]", report.Pct(float64(inBounds)/float64(len(samples))))
		def := geo.DefaultSpeedModel()
		t.AddRow("default-model dmax at 4ms (km)", def.DMax(4))
		t.AddRow("default-model dmin at 4ms (km)", def.DMin(4))
	} else {
		t.AddRow("fit error", err.Error())
	}
	return Result{
		ID:    "Fig 6",
		Title: "Inter-facility RTT as a function of distance",
		PaperClaim: "all facility-to-facility samples below the 4/9c packet speed " +
			"(Katz-Bassett et al.); fitted log lower bound vmin(d) approximates " +
			"the slowest observed effective speeds",
		Table: t,
	}
}
