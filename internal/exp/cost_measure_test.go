package exp

import (
	"os"
	"testing"
	"time"
)

// TestMeasureArtefactCosts prints a freshly measured cost table for
// the AllWorkers schedule. Run manually with:
//
//	RPEER_MEASURE_COSTS=1 go test ./internal/exp -run MeasureArtefactCosts -v
func TestMeasureArtefactCosts(t *testing.T) {
	if os.Getenv("RPEER_MEASURE_COSTS") == "" {
		t.Skip("set RPEER_MEASURE_COSTS=1 to run")
	}
	e := env(t)
	names := []string{
		"Table1", "Table2", "Fig1a", "Fig1b", "Fig2a", "Fig2b", "Fig4", "Fig5",
		"Fig6", "Table4", "Fig8", "Table5", "Fig9a", "Fig9b", "Fig9c", "Fig9d",
		"Fig10a", "Fig10b", "Fig11a", "Fig11b", "Fig12a", "Fig12b", "Sec64",
		"Sec7", "Sec8", "Sec8Longitudinal",
	}
	// Warm the shared caches once (the schedule orders the warm-cache
	// costs; first-touch costs belong to whichever artefact runs first
	// and are dominated by the same heavy rows).
	for _, a := range artefacts {
		a.fn(e)
	}
	for i, a := range artefacts {
		best := time.Duration(1 << 62)
		for r := 0; r < 3; r++ {
			start := time.Now()
			a.fn(e)
			if d := time.Since(start); d < best {
				best = d
			}
		}
		t.Logf("{%s, %d},", names[i], best.Microseconds())
	}
}
