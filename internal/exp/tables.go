package exp

import (
	"fmt"

	"rpeer/internal/core"
	"rpeer/internal/pingsim"
	"rpeer/internal/report"
)

// Table1 regenerates the dataset-merge overview: per-source totals,
// unique contributions and conflicting entries for IXP prefixes and
// interfaces.
func Table1(env *Env) Result {
	t := report.NewTable("Table 1: IXP dataset and per-source contribution",
		"Source", "Prefixes", "Unique", "Conflicts", "Interfaces", "Unique", "Conflicts")
	for _, st := range env.Dataset.Stats {
		t.AddRow(st.Source.String(),
			st.Prefixes, st.UniquePrefixes, st.ConflictPrefixes,
			st.Interfaces, st.UniqueInterfaces, st.ConflictInterfaces)
	}
	t.AddRow("Merged", len(env.Dataset.PrefixIXP), "-", "-", len(env.Dataset.IfaceASN), "-", "-")
	return Result{
		ID:    "Table 1",
		Title: "IXP dataset overview",
		PaperClaim: "731 prefixes / 31,690 interfaces merged; conflict rates " +
			"per source in the 0.005%-0.37% range; HE near-complete, PCH sparse",
		Table: t,
	}
}

// Table2 regenerates the validation-dataset overview: per validation
// IXP, facility count, member totals and validated local/remote splits.
func Table2(env *Env) Result {
	t := report.NewTable("Table 2: validation data per IXP",
		"IXP", "Source", "Subset", "#Facilities", "#Peers", "#Validated", "#Local", "#Remote")
	names := make(map[string]bool)
	for _, n := range env.Validation.ControlIXPs {
		names[n] = true
	}
	for _, n := range env.Validation.TestIXPs {
		names[n] = true
	}
	control := make(map[string]bool)
	for _, n := range env.Validation.ControlIXPs {
		control[n] = true
	}
	var totPeers, totVal, totLoc, totRem int
	for _, name := range env.sortedIXPNames(names) {
		ix := env.IXPByName(name)
		if ix == nil {
			continue
		}
		sub := env.Validation.InIXPs([]string{name})
		src := "website"
		if env.Validation.FromOperator[name] {
			src = "operator"
		}
		subset := "test"
		if control[name] {
			subset = "control"
		}
		peers := len(env.World.MembersOf(ix.ID))
		t.AddRow(name, src, subset, len(ix.Facilities), peers,
			sub.Size(), len(sub.Local), len(sub.Remote))
		totPeers += peers
		totVal += sub.Size()
		totLoc += len(sub.Local)
		totRem += len(sub.Remote)
	}
	t.AddRow("Total", "-", "-", "-", totPeers, totVal, totLoc, totRem)
	return Result{
		ID:    "Table 2",
		Title: "Validation dataset",
		PaperClaim: "15 IXPs (6 operator + 9 website lists), 4,823 peers of which " +
			"2,410 validated: 1,293 local / 1,117 remote",
		Table: t,
	}
}

// Table4 regenerates the per-step validation: the Castro RTT-threshold
// baseline, each step of the methodology, and the combined pipeline,
// scored on the test subset.
func Table4(env *Env) Result {
	test := env.TestSubset()
	t := report.NewTable("Table 4: validation of each step (test subset)",
		"Feature", "FPR", "FNR", "PRE", "ACC", "COV")
	row := func(name string, m core.Metrics, remoteOnly bool) {
		fpr, fnr, acc := report.Pct(m.FPR), report.Pct(m.FNR), report.Pct(m.ACC)
		if remoteOnly {
			fpr, fnr, acc = "-", "-", "-"
		}
		t.AddRow(name, fpr, fnr, report.Pct(m.PRE), acc, report.Pct(m.COV))
	}
	// Per-step rows evaluate each step standalone over the full domain
	// (their coverages overlap, exactly as in the paper's Table 4).
	stepRow := func(name string, s core.Step, remoteOnly bool) {
		rep, err := env.Ctx.RunStep(core.DefaultOptions(), s)
		if err != nil {
			t.AddRow(name, "error", err.Error(), "-", "-", "-")
			return
		}
		row(name, core.Evaluate(rep, test), remoteOnly)
	}
	row("RTTmin (Castro et al.)", core.Evaluate(env.BaseReport, test), false)
	stepRow("Step 1: port capacity", core.StepPortCapacity, true)
	stepRow("Step 2+3: RTTmin+colo", core.StepRTTColo, false)
	stepRow("Step 4: multi-IXP", core.StepMultiIXP, false)
	stepRow("Step 5: private links", core.StepPrivate, false)
	row("Combined", core.Evaluate(env.Report, test), false)
	return Result{
		ID:    "Table 4",
		Title: "Step-by-step validation",
		PaperClaim: "baseline 77% ACC / 84% COV with 17.5% FPR, 25.7% FNR; " +
			"step 1 PRE 96% COV 11%; steps 2+3 ACC 95.6%; combined ACC 94.5%, " +
			"PRE 95%, COV 93%, FPR 4%, FNR 7.2%",
		Table: t,
	}
}

// Table5 regenerates the ping-campaign interface statistics per VP
// type.
func Table5(env *Env) Result {
	type acc struct {
		vps, queried, resp int
		members            map[string]bool
		ixps               map[int]bool
	}
	mk := func() *acc {
		return &acc{members: make(map[string]bool), ixps: make(map[int]bool)}
	}
	stats := map[pingsim.VPKind]*acc{pingsim.KindLG: mk(), pingsim.KindAtlas: mk()}
	usable := make(map[int]bool)
	for _, vp := range env.Ping.UsableVPs {
		usable[vp.ID] = true
	}
	for _, vp := range env.Ping.VPs {
		if !usable[vp.ID] {
			continue
		}
		a := stats[vp.Kind]
		a.vps++
		a.ixps[int(vp.IXP)] = true
		for _, m := range env.Ping.ByVP[vp.ID] {
			a.queried++
			if m.Responsive() {
				a.resp++
				a.members[fmt.Sprintf("%d/%d", vp.IXP, m.ASN)] = true
			}
		}
	}
	t := report.NewTable("Table 5: ping campaign statistics (usable VPs)",
		"VP type", "#VPs", "Queried", "Responsive", "Resp. %", "#Members", "#IXPs")
	for _, k := range []pingsim.VPKind{pingsim.KindLG, pingsim.KindAtlas} {
		a := stats[k]
		frac := 0.0
		if a.queried > 0 {
			frac = float64(a.resp) / float64(a.queried)
		}
		t.AddRow(k.String(), a.vps, a.queried, a.resp, report.Pct(frac), len(a.members), len(a.ixps))
	}
	return Result{
		ID:    "Table 5",
		Title: "Ping campaign statistics",
		PaperClaim: "45 VPs (23 LG + 22 Atlas), 10,578 interfaces queried, 73% " +
			"responsive (95% via LGs, 75% via Atlas), 30 IXPs covered",
		Table: t,
	}
}
