package exp

import (
	"strings"
	"testing"
)

var cenv *Env

func env(t testing.TB) *Env {
	t.Helper()
	if cenv == nil {
		e, err := NewEnv(1)
		if err != nil {
			t.Fatal(err)
		}
		cenv = e
	}
	return cenv
}

func TestAllExperimentsRun(t *testing.T) {
	results := All(env(t))
	if len(results) != 26 {
		t.Fatalf("experiments = %d, want 26", len(results))
	}
	seen := make(map[string]bool)
	for _, r := range results {
		if r.ID == "" || r.Title == "" || r.PaperClaim == "" {
			t.Errorf("experiment %q incomplete metadata", r.ID)
		}
		if seen[r.ID] {
			t.Errorf("duplicate experiment id %q", r.ID)
		}
		seen[r.ID] = true
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("experiment %q produced empty table", r.ID)
		}
		out := r.Table.String()
		if !strings.Contains(out, "|") {
			t.Errorf("experiment %q renders nothing", r.ID)
		}
	}
}

func TestTable4ShapeMatchesPaper(t *testing.T) {
	r := Table4(env(t))
	out := r.Table.String()
	t.Logf("\n%s", out)
	if len(r.Table.Rows) != 6 {
		t.Fatalf("Table 4 rows = %d, want 6", len(r.Table.Rows))
	}
	// The combined row must be last and carry high accuracy.
	last := r.Table.Rows[len(r.Table.Rows)-1]
	if last[0] != "Combined" {
		t.Fatalf("last row = %q", last[0])
	}
}

func TestFig1bRemoteBelowThresholdExists(t *testing.T) {
	r := Fig1b(env(t))
	t.Logf("\n%s", r.Table.String())
	if len(r.Table.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Table.Rows))
	}
}

func TestFig10bAggregateRemoteShare(t *testing.T) {
	r := Fig10b(env(t))
	t.Logf("\n%s", r.Table.String())
	// The aggregate row is second-to-last.
	if len(r.Table.Rows) < 3 {
		t.Fatal("too few rows")
	}
}

func TestStudiedIXPs(t *testing.T) {
	e := env(t)
	studied := e.StudiedIXPs(30)
	if len(studied) < 15 {
		t.Fatalf("only %d studied IXPs with usable VPs", len(studied))
	}
	// Sorted by size descending.
	for i := 1; i < len(studied); i++ {
		a := len(e.World.MembersOf(studied[i-1].ID))
		b := len(e.World.MembersOf(studied[i].ID))
		if b > a {
			t.Fatal("studied IXPs not size-ordered")
		}
	}
}

func TestEnvDeterministic(t *testing.T) {
	e1, err := NewEnv(5)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEnv(5)
	if err != nil {
		t.Fatal(err)
	}
	m1 := core0(e1)
	m2 := core0(e2)
	if m1 != m2 {
		t.Fatalf("environment not deterministic: %v vs %v", m1, m2)
	}
}

func core0(e *Env) [2]int {
	remote := 0
	for _, inf := range e.Report.Inferences {
		if inf.Class.String() == "remote" {
			remote++
		}
	}
	return [2]int{len(e.Report.Inferences), remote}
}
