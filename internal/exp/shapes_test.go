package exp

import (
	"strconv"
	"strings"
	"testing"

	"rpeer/internal/core"
)

// These tests pin the paper's *qualitative* claims — the shapes the
// reproduction must preserve even though absolute numbers differ.

// cell parses a numeric table cell ("12", "95.6%", "0.44").
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSpace(s), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", s, err)
	}
	return v
}

// rowByFirst finds a table row by its first cell.
func rowByFirst(t *testing.T, r Result, first string) []string {
	t.Helper()
	for _, row := range r.Table.Rows {
		if row[0] == first {
			return row
		}
	}
	t.Fatalf("%s: no row %q in:\n%s", r.ID, first, r.Table.String())
	return nil
}

func TestFig4ShapeNoFractionalLocals(t *testing.T) {
	r := Fig4(env(t))
	frac := rowByFirst(t, r, "<1GE (fractional)")
	if locals := cell(t, frac[1]); locals != 0 {
		t.Errorf("Fig 4: %v local peers on fractional ports, paper says none", locals)
	}
	if remotes := cell(t, frac[3]); remotes == 0 {
		t.Error("Fig 4: no remote peers on fractional ports; paper says 27%")
	}
	top := rowByFirst(t, r, "100GE+")
	if remotes := cell(t, top[3]); remotes != 0 {
		t.Errorf("Fig 4: %v remote peers on 100GE, paper says 100GE is local-only", remotes)
	}
}

func TestFig5ShapeRemotesShareNoFacility(t *testing.T) {
	r := Fig5(env(t))
	zero := rowByFirst(t, r, "0")
	one := rowByFirst(t, r, "1")
	noData := rowByFirst(t, r, "no colo data")
	remoteZero := cell(t, zero[2])
	remoteOne := cell(t, one[2])
	remoteNoData := cell(t, noData[2])
	localZero := cell(t, zero[1])
	localOne := cell(t, one[1])
	// Remote peers overwhelmingly share no facility with their IXP;
	// a small artefact population shares exactly one.
	if remoteZero < 3*remoteOne {
		t.Errorf("Fig 5: remote 0-common (%v) should dwarf 1-common (%v)", remoteZero, remoteOne)
	}
	if remoteNoData == 0 {
		t.Error("Fig 5: expected a no-data population among remotes (~18%)")
	}
	// Locals overwhelmingly share at least one facility.
	if localZero > localOne/4 {
		t.Errorf("Fig 5: %v locals share no facility vs %v sharing one; want few", localZero, localOne)
	}
}

func TestFig6ShapeSamplesWithinBounds(t *testing.T) {
	r := Fig6(env(t))
	within := rowByFirst(t, r, "samples within [vmin, 4/9c]")
	if v := cell(t, within[1]); v < 95 {
		t.Errorf("Fig 6: only %.1f%% of Y.1731 samples within the speed bounds", v)
	}
	dmax := rowByFirst(t, r, "default-model dmax at 4ms (km)")
	if v := cell(t, dmax[1]); v < 525 || v < 1 || v > 540 {
		t.Errorf("Fig 6: dmax(4ms) = %v km, want ~533 (Fig 7's 532 km)", v)
	}
}

func TestFig9cShapeRemotesLackFeasibleFacility(t *testing.T) {
	r := Fig9c(env(t))
	remote := rowByFirst(t, r, "remote")
	zero := cell(t, remote[1])
	some := cell(t, remote[2])
	// Paper: 94% of remote interfaces have no feasible common facility.
	// Our world deliberately hosts more nearby remotes (the Rotterdam
	// scenario, 22% of remotes), so the bar sits lower.
	if frac := zero / (zero + some); frac < 0.60 {
		t.Errorf("Fig 9c: only %.2f of remotes lack a feasible facility, paper says 94%%", frac)
	}
}

func TestFig9dShapeRemoteRoutersDominate(t *testing.T) {
	r := Fig9d(env(t))
	remote := rowByFirst(t, r, "remote")
	hybrid := rowByFirst(t, r, "hybrid")
	if cell(t, remote[5]) <= cell(t, hybrid[5]) {
		t.Error("Fig 9d: remote multi-IXP routers must outnumber hybrid ones")
	}
}

func TestFig11aShapeHybridConesLargest(t *testing.T) {
	r := Fig11a(env(t))
	local := rowByFirst(t, r, "local")
	remote := rowByFirst(t, r, "remote")
	hybrid := rowByFirst(t, r, "hybrid")
	// Hybrid members have much larger cones; local and remote are of
	// the same order (paper: hybrids ~1 order of magnitude larger).
	// Stub-dominated synthetic membership puts every median at 1, so
	// the order-of-magnitude gap shows at the 90th percentile.
	lp, rp, hp := cell(t, local[4]), cell(t, remote[4]), cell(t, hybrid[4])
	if hp < 2*lp || hp < 2*rp {
		t.Errorf("Fig 11a: hybrid p90 cone %v not clearly larger than local %v / remote %v", hp, lp, rp)
	}
	// Class shares roughly 64/23/13.
	ls, rs, hs := cell(t, local[2]), cell(t, remote[2]), cell(t, hybrid[2])
	if ls < rs || rs < 5 || hs < 3 {
		t.Errorf("Fig 11a: class shares local=%v%% remote=%v%% hybrid=%v%% off-shape", ls, rs, hs)
	}
}

func TestFig11bShapeHybridTrafficHighest(t *testing.T) {
	r := Fig11b(env(t))
	local := rowByFirst(t, r, "local")
	hybrid := rowByFirst(t, r, "hybrid")
	if cell(t, hybrid[2]) <= cell(t, local[2]) {
		t.Error("Fig 11b: hybrid median traffic should exceed local")
	}
}

func TestFig12aShapeGrowthFactors(t *testing.T) {
	r := Fig12a(env(t))
	joins := rowByFirst(t, r, "joins per month")
	ratio := cell(t, joins[3])
	if ratio < 1.5 || ratio > 2.6 {
		t.Errorf("Fig 12a: remote/local join ratio = %v, paper says 2x", ratio)
	}
	dep := rowByFirst(t, r, "departure rate")
	if dr := cell(t, dep[3]); dr < 1.0 || dr > 1.6 {
		t.Errorf("Fig 12a: departure ratio = %v, paper says +25%%", dr)
	}
}

func TestSec64ShapeBuckets(t *testing.T) {
	r := Sec64(env(t))
	hot := rowByFirst(t, r, "hot-potato compliant")
	if v := cell(t, hot[2]); v < 55 || v > 78 {
		t.Errorf("Sec 6.4: hot-potato share = %v%%, paper says 66%%", v)
	}
}

func TestSec7ShapeFailureDomains(t *testing.T) {
	r := Sec7(env(t))
	ports := rowByFirst(t, r, "reseller ports shared by >=2 customers")
	if cell(t, ports[1]) == 0 {
		t.Error("Sec 7: no shared reseller ports")
	}
	far := rowByFirst(t, r, "shared ports reaching members >500km away")
	if cell(t, far[1]) == 0 {
		t.Error("Sec 7: outages should propagate beyond 500 km")
	}
}

func TestSec8ShapeCoverageGain(t *testing.T) {
	r := Sec8(env(t))
	ping := rowByFirst(t, r, "ping-only (paper's pipeline)")
	ext := rowByFirst(t, r, "ping + traceroute RTTs")
	if cell(t, ext[1]) <= cell(t, ping[1]) {
		t.Errorf("Sec 8: traceroute RTTs did not raise coverage (%s -> %s)", ping[1], ext[1])
	}
	if cell(t, ext[2]) < cell(t, ping[2])-8 {
		t.Errorf("Sec 8: accuracy collapsed (%s -> %s)", ping[2], ext[2])
	}
}

func TestTable4ShapeOrderings(t *testing.T) {
	r := Table4(env(t))
	base := rowByFirst(t, r, "RTTmin (Castro et al.)")
	combined := rowByFirst(t, r, "Combined")
	step1 := rowByFirst(t, r, "Step 1: port capacity")
	// The paper's three headline orderings.
	if cell(t, combined[4]) <= cell(t, base[4]) {
		t.Error("Table 4: combined ACC must beat the baseline")
	}
	if cell(t, combined[5]) <= cell(t, base[5]) {
		t.Error("Table 4: combined COV must beat the baseline")
	}
	if cell(t, base[1]) < 2*cell(t, combined[1]) {
		t.Error("Table 4: combined FPR should be several times below the baseline")
	}
	if cell(t, step1[3]) < 90 {
		t.Errorf("Table 4: step-1 precision %s, paper says 96%%", step1[3])
	}
	if core.DefaultBaselineThresholdMs != 10 {
		t.Error("baseline threshold drifted from the paper's 10ms")
	}
}
