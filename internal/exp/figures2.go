package exp

import (
	"math"

	"rpeer/internal/cone"
	"rpeer/internal/core"
	"rpeer/internal/evolve"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/report"
	"rpeer/internal/resilience"
	"rpeer/internal/routing"
	"rpeer/internal/tracesim"
)

// Fig8 regenerates the per-IXP precision and accuracy validation over
// the test subset, ordered by IXP size.
func Fig8(env *Env) Result {
	test := env.TestSubset()
	per := core.EvaluatePerIXP(env.Report, test)
	names := make(map[string]bool, len(per))
	for n := range per {
		names[n] = true
	}
	t := report.NewTable("Fig 8: per-IXP validation (test subset)",
		"IXP", "Validated", "PRE", "ACC", "COV")
	for _, name := range env.sortedIXPNames(names) {
		m := per[name]
		t.AddRow(name, m.Validated, report.Pct(m.PRE), report.Pct(m.ACC), report.Pct(m.COV))
	}
	return Result{
		ID:    "Fig 8",
		Title: "Validation results per IXP",
		PaperClaim: "precision and accuracy consistent across IXPs; lowest " +
			"precision 92% (SeattleIX, incomplete colo data), lowest accuracy 91%",
		Table: t,
	}
}

// Fig9a regenerates the VP response-rate analysis.
func Fig9a(env *Env) Result {
	t := report.NewTable("Fig 9a: VP response rates",
		"VP kind", "#VPs", "usable", "dead/filtered", "mean resp. rate")
	for _, kind := range []pingsim.VPKind{pingsim.KindLG, pingsim.KindAtlas} {
		var n, usable int
		var rates []float64
		usableSet := make(map[int]bool)
		for _, vp := range env.Ping.UsableVPs {
			usableSet[vp.ID] = true
		}
		for _, vp := range env.Ping.VPs {
			if vp.Kind != kind {
				continue
			}
			n++
			if usableSet[vp.ID] {
				usable++
			}
			var resp, tot int
			for _, m := range env.Ping.ByVP[vp.ID] {
				tot++
				if m.Responsive() {
					resp++
				}
			}
			if tot > 0 {
				rates = append(rates, float64(resp)/float64(tot))
			}
		}
		mean := 0.0
		for _, r := range rates {
			mean += r
		}
		if len(rates) > 0 {
			mean /= float64(len(rates))
		}
		t.AddRow(kind.String(), n, usable, n-usable, report.Pct(mean))
	}
	return Result{
		ID:    "Fig 9a",
		Title: "Response rate of LGs and Atlas probes",
		PaperClaim: "LGs respond at high rates (peering-LAN attached); 14 of 66 " +
			"Atlas probes silent and 21 more dropped by the route-server filter",
		Table: t,
	}
}

// Fig9b regenerates the all-interface RTTmin ECDF of the main
// campaign.
func Fig9b(env *Env) Result {
	rtts := env.Ping.MinRTTByIface()
	var vals []float64
	for _, v := range rtts {
		vals = append(vals, v)
	}
	e := report.NewECDF(vals)
	t := report.NewTable("Fig 9b: RTTmin ECDF over all measured interfaces",
		"Quantity", "Value")
	t.AddRow("interfaces", e.Len())
	t.AddRow("P(<2ms)", report.Pct(e.At(2)))
	t.AddRow("P(<10ms)", report.Pct(e.At(10)))
	t.AddRow("P(>10ms)", report.Pct(1-e.At(10)))
	t.AddRow("median ms", e.Median())
	return Result{
		ID:    "Fig 9b",
		Title: "Minimum RTT per responsive interface",
		PaperClaim: "75% of interfaces within 2ms of their VP; more than 20% " +
			"above 10ms (a 2x increase since 2014)",
		Table: t,
	}
}

// Fig9c regenerates the Step-3 cross-tabulation: inference outcome vs
// number of feasible IXP facilities.
func Fig9c(env *Env) Result {
	type bucket struct{ zeroFac, someFac, over2ms int }
	perClass := map[core.PeerClass]*bucket{
		core.ClassLocal:   {},
		core.ClassRemote:  {},
		core.ClassUnknown: {},
	}
	for _, inf := range env.Report.Inferences {
		if inf.Step != core.StepRTTColo && !(inf.Step == core.StepNone && inf.FeasibleIXPFacilities >= 0) {
			continue
		}
		b := perClass[inf.Class]
		if inf.FeasibleIXPFacilities == 0 {
			b.zeroFac++
		} else if inf.FeasibleIXPFacilities > 0 {
			b.someFac++
			if inf.RTTMinMs > 2 {
				b.over2ms++
			}
		}
	}
	t := report.NewTable("Fig 9c: Step-3 outcome vs feasible IXP facilities",
		"Outcome", "0 feasible fac", ">=1 feasible fac", "of which RTT>2ms")
	for _, c := range []core.PeerClass{core.ClassLocal, core.ClassRemote, core.ClassUnknown} {
		b := perClass[c]
		t.AddRow(c.String(), b.zeroFac, b.someFac, b.over2ms)
	}
	rb := perClass[core.ClassRemote]
	n := rb.zeroFac + rb.someFac
	if n > 0 {
		t.AddRow("remote: % with no feasible fac", report.Pct(float64(rb.zeroFac)/float64(n)), "-", "-")
	}
	return Result{
		ID:    "Fig 9c",
		Title: "Inference vs feasible facilities and RTTmin",
		PaperClaim: "94% of remote interfaces have no feasible common facility " +
			"with the IXP; of the rest, 40% show RTT>2ms (spurious colo data)",
		Table: t,
	}
}

// Fig9d regenerates the multi-IXP router taxonomy vs next-hop IXP
// counts.
func Fig9d(env *Env) Result {
	t := report.NewTable("Fig 9d: multi-IXP routers by class and next-hop IXPs",
		"Class", "2 IXPs", "3-5", "6-10", ">10", "total")
	classes := []core.RouterClass{core.RouterLocal, core.RouterRemote, core.RouterHybrid, core.RouterUnclassified}
	buckets := func(rs []*core.MultiIXPRouter, c core.RouterClass) (b2, b35, b610, b10, tot int) {
		for _, r := range rs {
			if r.Class != c {
				continue
			}
			tot++
			switch n := len(r.IXPs); {
			case n == 2:
				b2++
			case n <= 5:
				b35++
			case n <= 10:
				b610++
			default:
				b10++
			}
		}
		return
	}
	for _, c := range classes {
		b2, b35, b610, b10, tot := buckets(env.Report.MultiRouters, c)
		t.AddRow(c.String(), b2, b35, b610, b10, tot)
	}
	return Result{
		ID:    "Fig 9d",
		Title: "Multi-IXP router types",
		PaperClaim: "~80% of routers behind unknown interfaces face multiple " +
			"IXPs, 25% of them more than 10; remote multi-IXP routers outnumber " +
			"hybrid ones",
		Table: t,
	}
}

// Fig10a regenerates the per-step inference contribution for the
// studied IXPs.
func Fig10a(env *Env) Result {
	shares := env.Report.StepShare()
	t := report.NewTable("Fig 10a: contribution of each inference step (top studied IXPs)",
		"IXP", "port-capacity", "rtt+colo", "multi-ixp", "private-links")
	for i, ix := range env.StudiedIXPs(30) {
		if i >= 12 { // keep the rendered table digestible
			break
		}
		s := shares[ix.Name]
		t.AddRow(ix.Name,
			report.Pct(s[core.StepPortCapacity]), report.Pct(s[core.StepRTTColo]),
			report.Pct(s[core.StepMultiIXP]), report.Pct(s[core.StepPrivate]))
	}
	return Result{
		ID:    "Fig 10a",
		Title: "Contribution of each inference step per IXP",
		PaperClaim: "steps 2+3 (RTT+colo) and 4 account for most inferences; " +
			"port capacity contributes ~10% on average (up to 40% at reseller-" +
			"heavy IXPs, 0% where reselling is not offered); step 5 needed at " +
			"only 11 of 30 IXPs",
		Table: t,
	}
}

// Fig10b regenerates the headline per-IXP local/remote shares.
func Fig10b(env *Env) Result {
	studied := env.StudiedIXPs(30)
	t := report.NewTable("Fig 10b: inferred remote share per IXP (top 10 shown + aggregate)",
		"IXP", "inferred", "remote", "remote %")
	var totDecided, totRemote, over10 int
	for i, ix := range studied {
		var dec, rem int
		for _, inf := range env.Report.Inferences {
			if inf.IXP != ix.Name || inf.Class == core.ClassUnknown {
				continue
			}
			dec++
			if inf.Class == core.ClassRemote {
				rem++
			}
		}
		totDecided += dec
		totRemote += rem
		if dec > 0 && float64(rem)/float64(dec) > 0.10 {
			over10++
		}
		if i < 10 {
			share := 0.0
			if dec > 0 {
				share = float64(rem) / float64(dec)
			}
			t.AddRow(ix.Name, dec, rem, report.Pct(share))
		}
	}
	t.AddRow("ALL (30 IXPs)", totDecided, totRemote, report.Pct(float64(totRemote)/float64(totDecided)))
	t.AddRow("IXPs with >10% remote", over10, "-", report.Pct(float64(over10)/float64(len(studied))))
	return Result{
		ID:    "Fig 10b",
		Title: "Inference results for the largest IXPs",
		PaperClaim: "28% of all inferred interfaces are remote; >90% of IXPs " +
			"above 10% remote share; the two largest IXPs near 40%",
		Table: t,
	}
}

// memberClasses buckets ASes by the remoteness of their *inferred*
// memberships.
func memberClasses(env *Env) map[netsim.ASN]cone.MemberClass {
	perAS := make(map[netsim.ASN][]bool)
	for _, inf := range env.Report.Inferences {
		if inf.Class == core.ClassUnknown {
			continue
		}
		perAS[inf.ASN] = append(perAS[inf.ASN], inf.Class == core.ClassRemote)
	}
	out := make(map[netsim.ASN]cone.MemberClass, len(perAS))
	for asn, rs := range perAS {
		if cls, ok := cone.Classify(rs); ok {
			out[asn] = cls
		}
	}
	return out
}

// Fig11a regenerates the customer-cone comparison of local, remote and
// hybrid members.
func Fig11a(env *Env) Result {
	g := cone.Build(env.World)
	classes := memberClasses(env)
	samples := map[cone.MemberClass][]float64{}
	for asn, cls := range classes {
		samples[cls] = append(samples[cls], float64(g.ConeSize(asn)))
	}
	t := report.NewTable("Fig 11a: customer cones by member class",
		"Class", "n", "share", "median cone", "p90 cone", "max cone")
	tot := len(classes)
	for _, cls := range []cone.MemberClass{cone.ClassLocalOnly, cone.ClassRemoteOnly, cone.ClassHybrid} {
		e := report.NewECDF(samples[cls])
		t.AddRow(cls.String(), e.Len(), report.Pct(float64(e.Len())/float64(tot)),
			e.Median(), e.Quantile(0.9), e.Quantile(1))
	}
	return Result{
		ID:    "Fig 11a",
		Title: "Customer cones of local/remote/hybrid members",
		PaperClaim: "63.7% local-only / 23.4% remote-only / 12.9% hybrid; local " +
			"and remote cones similar; hybrid members ~1 order of magnitude larger",
		Table: t,
	}
}

// Fig11b regenerates the self-reported traffic-level comparison.
func Fig11b(env *Env) Result {
	classes := memberClasses(env)
	samples := map[cone.MemberClass][]float64{}
	for asn, cls := range classes {
		if as := env.World.AS(asn); as != nil {
			samples[cls] = append(samples[cls], as.TrafficMbps)
		}
	}
	t := report.NewTable("Fig 11b: self-reported traffic by member class",
		"Class", "n", "median Mbps", "p90 Mbps", "max Mbps")
	for _, cls := range []cone.MemberClass{cone.ClassLocalOnly, cone.ClassRemoteOnly, cone.ClassHybrid} {
		e := report.NewECDF(samples[cls])
		t.AddRow(cls.String(), e.Len(), e.Median(), e.Quantile(0.9), e.Quantile(1))
	}
	return Result{
		ID:    "Fig 11b",
		Title: "Traffic levels of local/remote/hybrid members",
		PaperClaim: "remote and local traffic distributions similar; hybrids " +
			"reach the highest levels; RP spans 100s of Mbps to 100s of Gbps",
		Table: t,
	}
}

// Fig12a regenerates the growth analysis: remote vs local join and
// departure rates over the observation window.
func Fig12a(env *Env) Result {
	var ids []netsim.IXPID
	for _, ix := range env.World.LargestIXPs(5) {
		ids = append(ids, ix.ID)
	}
	s := evolve.Simulate(env.World, ids, evolve.DefaultConfig())
	l, r := s.GrowthRates()
	dl, dr := s.DepartureRates()
	t := report.NewTable("Fig 12a: membership evolution (5 tracked IXPs)",
		"Quantity", "Local", "Remote", "Remote/Local")
	t.AddRow("joins per month", l, r, r/l)
	t.AddRow("departure rate", dl, dr, dr/dl)
	t.AddRow("remote->local switches", "-", s.Switches(), "-")
	return Result{
		ID:    "Fig 12a",
		Title: "Remote vs local growth",
		PaperClaim: "remote members join 2x faster than local ones; remote " +
			"departure rates +25%; 18 remote-to-local switches observed",
		Table: t,
	}
}

// Fig12b regenerates the ping vs traceroute RTT comparison for the
// members of the largest LG-equipped IXP.
func Fig12b(env *Env) Result {
	var lgIXP *netsim.IXP
	for _, ix := range env.StudiedIXPs(30) {
		if ix.HasLG {
			lgIXP = ix
			break
		}
	}
	t := report.NewTable("Fig 12b: ping vs traceroute RTTs",
		"Method", "n", "P(<2ms)", "P(<10ms)", "median ms")
	if lgIXP != nil {
		pingRTTs := env.Ping.MinRTTByIface()
		var ping []float64
		for _, m := range env.World.MembersOf(lgIXP.ID) {
			if v, ok := pingRTTs[m.Iface]; ok {
				ping = append(ping, v)
			}
		}
		vpLoc := env.World.Facility(lgIXP.Facilities[0]).Loc
		var trace []float64
		for _, v := range tracesim.FromVP(env.World, lgIXP.ID, vpLoc, env.World.Cfg.Seed+42) {
			trace = append(trace, v)
		}
		pe, te := report.NewECDF(ping), report.NewECDF(trace)
		t.AddRow("ping", pe.Len(), report.Pct(pe.At(2)), report.Pct(pe.At(10)), pe.Median())
		t.AddRow("traceroute", te.Len(), report.Pct(te.At(2)), report.Pct(te.At(10)), te.Median())
		if math.Abs(pe.Median()-te.Median()) > 5 {
			return Result{ID: "Fig 12b", Title: "Ping vs traceroute RTTs", Table: t,
				PaperClaim: "the two RTT patterns are close",
				Notes:      []string{"WARNING: medians diverge more than expected"}}
		}
	}
	return Result{
		ID:    "Fig 12b",
		Title: "Ping vs traceroute RTTs (LINX-LON analogue)",
		PaperClaim: "traceroute-derived RTT patterns track the LG ping patterns " +
			"closely, supporting a traceroute-based scale-up",
		Table: t,
	}
}

// Sec64 regenerates the routing-implications analysis at the flagship
// IXP.
func Sec64(env *Env) Result {
	flagship := env.StudiedIXPs(1)[0]
	var remotes []netsim.ASN
	seen := make(map[netsim.ASN]bool)
	for _, inf := range env.Report.Inferences {
		if inf.IXP == flagship.Name && inf.Class == core.ClassRemote && !seen[inf.ASN] {
			seen[inf.ASN] = true
			remotes = append(remotes, inf.ASN)
		}
	}
	a := routing.Analyze(env.World, flagship.ID, remotes, routing.DefaultConfig())
	hot, farther, closer := a.Fractions()
	t := report.NewTable("Section 6.4: routing implications at the flagship IXP",
		"Outcome", "pairs", "share")
	t.AddRow("hot-potato compliant", a.HotPotato, report.Pct(hot))
	t.AddRow("crossed RP at flagship though closer IXP exists", a.FartherRP, report.Pct(farther))
	t.AddRow("crossed other IXP though flagship RP closer", a.CloserRP, report.Pct(closer))
	t.AddRow("total pairs", len(a.Pairs), "-")
	t.AddRow("inferred remote members", len(remotes), "-")
	return Result{
		ID:    "Sec 6.4",
		Title: "RP routing implications (DE-CIX-FRA analogue)",
		PaperClaim: "66% of crossings comply with hot-potato exit; 18% use the " +
			"remote link although a closer common IXP exists; 16% ignore a " +
			"closer remote link",
		Table: t,
	}
}

// Sec8 evaluates the "Beyond Pings" extension (paper Section 8,
// implemented in core/beyondpings.go): traceroute-derived RTT minimums
// fill interfaces the ping campaign cannot reach, trading a little
// accuracy for a large coverage gain.
func Sec8(env *Env) Result {
	test := env.TestSubset()
	opt := core.DefaultOptions()
	opt.UseTracerouteRTT = true
	ext, err := env.Ctx.Run(opt)
	t := report.NewTable("Section 8: traceroute-derived RTTs (Beyond Pings)",
		"Variant", "COV", "ACC", "PRE", "FPR", "trace-derived ifaces")
	if err == nil {
		mb := core.Evaluate(env.Report, test)
		me := core.Evaluate(ext, test)
		t.AddRow("ping-only (paper's pipeline)", report.Pct(mb.COV), report.Pct(mb.ACC),
			report.Pct(mb.PRE), report.Pct(mb.FPR), 0)
		t.AddRow("ping + traceroute RTTs", report.Pct(me.COV), report.Pct(me.ACC),
			report.Pct(me.PRE), report.Pct(me.FPR), ext.TraceDerived())
	} else {
		t.AddRow("error", err.Error(), "-", "-", "-", "-")
	}
	return Result{
		ID:    "Sec 8",
		Title: "Beyond Pings extension (future work implemented)",
		PaperClaim: "traceroutes from VPs anywhere can replace scarce in-IXP " +
			"pings: RTT patterns track the LG pings (Fig 12b), at the cost of " +
			"asymmetric-path and load-balancing artefacts",
		Table: t,
		Notes: []string{"This implements the paper's proposed follow-up; there is no paper table to compare against, only the Fig 12b premise."},
	}
}

// Sec8Longitudinal implements the paper's proposed longitudinal study
// (Section 8): tracking the remote membership share of the five
// monitored IXPs over a three-year horizon instead of the paper's
// 14-month window.
func Sec8Longitudinal(env *Env) Result {
	var ids []netsim.IXPID
	for _, ix := range env.World.LargestIXPs(5) {
		ids = append(ids, ix.ID)
	}
	cfg := evolve.DefaultConfig()
	cfg.Months = 36
	s := evolve.Simulate(env.World, ids, cfg)
	shares := s.RemoteShares()

	t := report.NewTable("Section 8: longitudinal remote-share trajectory (36 months, 5 IXPs)",
		"Quantity", "Value")
	if len(shares) > 0 {
		t.AddRow("remote share month 1", report.Pct(shares[0]))
		t.AddRow("remote share month 18", report.Pct(shares[len(shares)/2]))
		t.AddRow("remote share month 36", report.Pct(shares[len(shares)-1]))
		t.AddRow("trend", report.Sparkline(shares))
		t.AddRow("remote->local switches", s.Switches())
	}
	return Result{
		ID:    "Sec 8b",
		Title: "Longitudinal study extension (future work implemented)",
		PaperClaim: "the 14-month window shows remote peers driving IXP growth; " +
			"the proposed longitudinal study checks whether the trend persists " +
			"over years",
		Table: t,
		Notes: []string{"Extension of Fig 12a beyond the paper's observation window; no paper numbers exist for direct comparison."},
	}
}

// Sec7 quantifies the resilience implications discussed in the paper's
// Section 7: shared reseller ports and multi-IXP routers as failure
// domains that propagate outages far beyond the IXP's metro.
func Sec7(env *Env) Result {
	s := resilience.Analyze(env.World).Summarize()
	t := report.NewTable("Section 7: remote peering failure domains",
		"Quantity", "Value")
	t.AddRow("reseller ports shared by >=2 customers", s.SharedPorts)
	t.AddRow("mean customers per shared port", s.MeanCustomersPerPort)
	t.AddRow("largest single-port failure domain", s.MaxCustomersPerPort)
	t.AddRow("shared ports reaching members >500km away", s.PortsReachingOver500Km)
	t.AddRow("single routers serving >=2 IXPs", s.MultiIXPRouters)
	t.AddRow("max IXPs behind one router", s.MaxIXPsPerRouter)
	t.AddRow("memberships sharing a router across IXPs", s.MembershipsBehindMultiIXPRouters)
	return Result{
		ID:    "Sec 7",
		Title: "Resilience implications of remote peering",
		PaperClaim: "multiple peers share one reseller port; one remote router " +
			"connects to >10 IXPs; a single port or router outage propagates " +
			"far beyond the IXP metro and affects several members at once",
		Table: t,
	}
}
