//go:build race

package exp

// raceEnabled reports whether the race detector instruments this
// build (wall-clock assertions are meaningless under its
// serialization).
const raceEnabled = true
