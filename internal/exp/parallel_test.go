package exp

import (
	"runtime"
	"testing"
	"time"
)

// TestAllParallelMatchesSerial pins the determinism contract of the
// parallel artefact fan-out: every table rendered by the worker pool
// must be byte-identical to the serial path, in the same order. The
// parallel pass runs first, on a freshly built environment, so the
// workers exercise concurrent first-touch construction of the
// context's lazy caches rather than a pre-warmed fast path.
func TestAllParallelMatchesSerial(t *testing.T) {
	e, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel := AllWorkers(e, 8)
	serial := AllSerial(e)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("order differs at %d: %q vs %q", i, serial[i].ID, parallel[i].ID)
		}
		ss, ps := serial[i].Table.String(), parallel[i].Table.String()
		if ss != ps {
			t.Errorf("%s differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
				serial[i].ID, ss, ps)
		}
	}
}

// TestAllWorkersMoreWorkersThanItems is the regression test for the
// worker-pool bound: asking for far more workers than there are
// artefacts must neither deadlock, nor drop or reorder results, nor
// leak goroutines after the call returns.
func TestAllWorkersMoreWorkersThanItems(t *testing.T) {
	e := env(t)
	before := runtime.NumGoroutine()
	ref := AllSerial(e)
	got := AllWorkers(e, 50*len(artefacts))
	if len(got) != len(ref) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i].ID != got[i].ID {
			t.Fatalf("order differs at %d: %q vs %q", i, ref[i].ID, got[i].ID)
		}
		if ref[i].Table.String() != got[i].Table.String() {
			t.Errorf("%s differs under oversubscribed worker pool", ref[i].ID)
		}
	}
	// The pool must wind down: allow the runtime a moment to retire
	// worker goroutines, then require the count back near the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestScheduleCoversAllArtefactsLongestFirst pins the straggler-aware
// schedule: it must be a permutation of all artefact indexes, ordered
// by non-increasing cost.
func TestScheduleCoversAllArtefactsLongestFirst(t *testing.T) {
	if len(schedule) != len(artefacts) {
		t.Fatalf("schedule covers %d of %d artefacts", len(schedule), len(artefacts))
	}
	seen := make(map[int]bool, len(schedule))
	for pos, i := range schedule {
		if i < 0 || i >= len(artefacts) || seen[i] {
			t.Fatalf("schedule position %d holds invalid or duplicate index %d", pos, i)
		}
		seen[i] = true
		if pos > 0 && artefacts[schedule[pos-1]].costUs < artefacts[i].costUs {
			t.Fatalf("schedule not longest-first at position %d", pos)
		}
	}
	// Table 4 is the measured straggler; it must lead the schedule.
	if artefacts[schedule[0]].costUs < 1_000_000 {
		t.Errorf("heaviest artefact scheduled first costs only %dus", artefacts[schedule[0]].costUs)
	}
}
