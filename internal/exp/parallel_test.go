package exp

import "testing"

// TestAllParallelMatchesSerial pins the determinism contract of the
// parallel artefact fan-out: every table rendered by the worker pool
// must be byte-identical to the serial path, in the same order. The
// parallel pass runs first, on a freshly built environment, so the
// workers exercise concurrent first-touch construction of the
// context's lazy caches rather than a pre-warmed fast path.
func TestAllParallelMatchesSerial(t *testing.T) {
	e, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel := AllWorkers(e, 8)
	serial := AllSerial(e)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("order differs at %d: %q vs %q", i, serial[i].ID, parallel[i].ID)
		}
		ss, ps := serial[i].Table.String(), parallel[i].Table.String()
		if ss != ps {
			t.Errorf("%s differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
				serial[i].ID, ss, ps)
		}
	}
}
