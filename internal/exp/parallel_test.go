package exp

import (
	"runtime"
	"testing"
	"time"
)

// TestAllParallelMatchesSerial pins the determinism contract of the
// parallel artefact fan-out: every table rendered by the worker pool
// must be byte-identical to the serial path, in the same order. The
// parallel pass runs first, on a freshly built environment, so the
// workers exercise concurrent first-touch construction of the
// context's lazy caches rather than a pre-warmed fast path.
func TestAllParallelMatchesSerial(t *testing.T) {
	e, err := NewEnv(1)
	if err != nil {
		t.Fatal(err)
	}
	parallel := AllWorkers(e, 8)
	serial := AllSerial(e)
	if len(serial) != len(parallel) {
		t.Fatalf("result counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].ID != parallel[i].ID {
			t.Fatalf("order differs at %d: %q vs %q", i, serial[i].ID, parallel[i].ID)
		}
		ss, ps := serial[i].Table.String(), parallel[i].Table.String()
		if ss != ps {
			t.Errorf("%s differs between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
				serial[i].ID, ss, ps)
		}
	}
}

// TestAllWorkersMoreWorkersThanItems is the regression test for the
// worker-pool bound: asking for far more workers than there are
// artefacts must neither deadlock, nor drop or reorder results, nor
// leak goroutines after the call returns.
func TestAllWorkersMoreWorkersThanItems(t *testing.T) {
	e := env(t)
	before := runtime.NumGoroutine()
	ref := AllSerial(e)
	got := AllWorkers(e, 50*len(artefacts))
	if len(got) != len(ref) {
		t.Fatalf("result counts differ: %d vs %d", len(got), len(ref))
	}
	for i := range ref {
		if ref[i].ID != got[i].ID {
			t.Fatalf("order differs at %d: %q vs %q", i, ref[i].ID, got[i].ID)
		}
		if ref[i].Table.String() != got[i].Table.String() {
			t.Errorf("%s differs under oversubscribed worker pool", ref[i].ID)
		}
	}
	// The pool must wind down: allow the runtime a moment to retire
	// worker goroutines, then require the count back near the baseline.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestScheduleCoversAllArtefactsLongestFirst pins the straggler-aware
// schedule: it must be a permutation of all artefact indexes, ordered
// by non-increasing cost.
func TestScheduleCoversAllArtefactsLongestFirst(t *testing.T) {
	if len(schedule) != len(artefacts) {
		t.Fatalf("schedule covers %d of %d artefacts", len(schedule), len(artefacts))
	}
	seen := make(map[int]bool, len(schedule))
	for pos, i := range schedule {
		if i < 0 || i >= len(artefacts) || seen[i] {
			t.Fatalf("schedule position %d holds invalid or duplicate index %d", pos, i)
		}
		seen[i] = true
		if pos > 0 && artefacts[schedule[pos-1]].costUs < artefacts[i].costUs {
			t.Fatalf("schedule not longest-first at position %d", pos)
		}
	}
	// The measured straggler (Sec 6.4 since the PR 4/PR 5 speedups)
	// must lead the schedule.
	max := 0
	for _, a := range artefacts {
		if a.costUs > max {
			max = a.costUs
		}
	}
	if artefacts[schedule[0]].costUs != max {
		t.Errorf("schedule leads with %dus artefact, want the %dus straggler", artefacts[schedule[0]].costUs, max)
	}
}

// TestParallelSuiteBeatsSerial is the wall-clock regression test for
// the artefact fan-out: with real parallelism available, the worker
// pool must finish the suite in well under the serial time (the PR 2
// cost table had gone stale by PR 4 — parallel ran at ~1.0x serial —
// which this test exists to catch). Both paths run on a pre-warmed
// environment so the comparison measures scheduling, not first-touch
// cache construction; the serial reference is the best of two runs.
func TestParallelSuiteBeatsSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock comparison")
	}
	if raceEnabled {
		t.Skip("race instrumentation serializes execution; wall-clock bound is meaningless")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("needs >= 4 CPUs for a meaningful speedup bound, have %d", runtime.NumCPU())
	}
	e := env(t)
	AllSerial(e) // warm every lazy cache once

	serial := time.Duration(1 << 62)
	for r := 0; r < 2; r++ {
		start := time.Now()
		AllSerial(e)
		if d := time.Since(start); d < serial {
			serial = d
		}
	}
	par := time.Duration(1 << 62)
	for r := 0; r < 2; r++ {
		start := time.Now()
		All(e)
		if d := time.Since(start); d < par {
			par = d
		}
	}
	if par >= serial*8/10 {
		t.Errorf("parallel suite %v >= 0.8x serial %v", par, serial)
	}
}
