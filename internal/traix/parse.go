package traix

import (
	"bufio"
	"fmt"
	"io"
	"net/netip"
	"strconv"
	"strings"
)

// ParseTraceroute parses classic `traceroute`/`mtr --raw`-style text
// output into a Path, so external measurement data can be fed to the
// detector. Supported line shapes (one hop per line, leading hop
// number):
//
//	1  192.0.2.1  0.431 ms  0.389 ms  0.402 ms
//	2  203.0.113.9 (203.0.113.9)  1.2 ms
//	3  * * *
//	4  198.51.100.3  12 ms !X
//
// The first RTT of each hop is kept (the detector only needs one);
// unresponsive hops become zero-value entries. Lines that do not start
// with a hop number (e.g. the "traceroute to ..." banner) are skipped.
func ParseTraceroute(r io.Reader) (*Path, error) {
	p := &Path{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	lastHop := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		hopNum, err := strconv.Atoi(fields[0])
		if err != nil {
			// Banner or continuation line: try to extract the target
			// from "traceroute to host (addr), ..." banners.
			if p.Dst == (netip.Addr{}) {
				if addr, ok := bannerTarget(line); ok {
					p.Dst = addr
				}
			}
			continue
		}
		if hopNum != lastHop+1 {
			// Fill gaps with unresponsive hops so indices stay aligned.
			for h := lastHop + 1; h < hopNum; h++ {
				p.Hops = append(p.Hops, Hop{})
			}
		}
		lastHop = hopNum
		p.Hops = append(p.Hops, parseHopLine(fields[1:]))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("traix: parse traceroute: %w", err)
	}
	if len(p.Hops) == 0 {
		return nil, fmt.Errorf("traix: no hops found")
	}
	return p, nil
}

// bannerTarget extracts the target address from a traceroute banner.
func bannerTarget(line string) (netip.Addr, bool) {
	if !strings.HasPrefix(strings.ToLower(line), "traceroute to") {
		return netip.Addr{}, false
	}
	// "traceroute to example.net (198.51.100.3), 30 hops max"
	if open := strings.IndexByte(line, '('); open >= 0 {
		if close := strings.IndexByte(line[open:], ')'); close > 0 {
			if a, err := netip.ParseAddr(line[open+1 : open+close]); err == nil {
				return a, true
			}
		}
	}
	// Or a bare address: "traceroute to 198.51.100.3, 30 hops max"
	fields := strings.Fields(line)
	if len(fields) >= 3 {
		cand := strings.TrimSuffix(fields[2], ",")
		if a, err := netip.ParseAddr(cand); err == nil {
			return a, true
		}
	}
	return netip.Addr{}, false
}

// parseHopLine parses the fields after the hop number.
func parseHopLine(fields []string) Hop {
	var h Hop
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		if f == "*" {
			continue
		}
		// Parenthesised repeats of the address: "(203.0.113.9)".
		f = strings.TrimPrefix(strings.TrimSuffix(f, ")"), "(")
		if !h.IP.IsValid() {
			if a, err := netip.ParseAddr(f); err == nil {
				h.IP = a
				continue
			}
		}
		if h.RTTMs == 0 {
			if v, err := strconv.ParseFloat(f, 64); err == nil &&
				i+1 < len(fields) && strings.HasPrefix(fields[i+1], "ms") {
				h.RTTMs = v
				i++
			}
		}
	}
	return h
}

// FormatPath renders a Path in the classic traceroute text format; the
// inverse of ParseTraceroute for logging and fixtures.
func FormatPath(p *Path) string {
	var b strings.Builder
	if p.Dst.IsValid() {
		fmt.Fprintf(&b, "traceroute to %s (%s), %d hops max\n", p.Dst, p.Dst, len(p.Hops))
	}
	for i, h := range p.Hops {
		if !h.IP.IsValid() {
			fmt.Fprintf(&b, "%2d  * * *\n", i+1)
			continue
		}
		fmt.Fprintf(&b, "%2d  %s  %.3f ms\n", i+1, h.IP, h.RTTMs)
	}
	return b.String()
}
