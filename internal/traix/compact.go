package traix

import (
	"rpeer/internal/ident"
)

// This file holds the interned, columnar form of the detection
// products. Detection itself stays in the address/name domain — paths,
// the registry dataset and the prefix-to-AS map are ingestion-edge
// artefacts — but everything the inference pipeline consumes
// repeatedly (crossings for the multi-IXP rules and the traceroute-RTT
// extension, private hops for the facility voting) is compacted into
// ID-indexed struct-of-arrays right after each detection pass, so the
// hot loops above never hash an address or an IXP name again.

// CrossingTab is the columnar form of a []Crossing, reduced to the
// columns the multi-IXP observation index actually folds: the crossed
// IXP and the near-side interface and AS. (The far side and the hop
// RTTs stay on the raw []Crossing, which the traceroute-RTT estimator
// consumes at the ingestion edge.) IXP interfaces are still interned —
// they anchor the "Beyond Pings" estimates downstream.
type CrossingTab struct {
	IXP    []ident.IXPID
	Near   []ident.IfaceID
	NearAS []ident.MemberID
}

// Len returns the number of crossings.
func (t *CrossingTab) Len() int { return len(t.IXP) }

// CompactCrossings rebuilds the tab from a detection pass, interning
// previously unseen entities and reusing the tab's column capacity
// (Apply re-detects after every membership delta; the columns must not
// be reallocated from zero each time). Rows keep detection order.
func (t *CrossingTab) CompactCrossings(cs []Crossing, tab *ident.Table) {
	if cap(t.IXP) < len(cs) {
		t.IXP = make([]ident.IXPID, 0, len(cs))
		t.Near = make([]ident.IfaceID, 0, len(cs))
		t.NearAS = make([]ident.MemberID, 0, len(cs))
	}
	t.IXP = t.IXP[:0]
	t.Near = t.Near[:0]
	t.NearAS = t.NearAS[:0]
	for _, c := range cs {
		ixp, ok := tab.IXP(c.IXP)
		if !ok {
			continue // crossing at an IXP outside the interned roster
		}
		t.IXP = append(t.IXP, ixp)
		t.Near = append(t.Near, tab.AddIface(c.NearIP))
		t.NearAS = append(t.NearAS, tab.AddMember(c.NearAS))
		tab.AddIface(c.IXPIP)
	}
}

// PrivateTab is the columnar form of a []PrivateHop.
type PrivateTab struct {
	A, B     []ident.IfaceID
	AAS, BAS []ident.MemberID
}

// Len returns the number of private hops.
func (t *PrivateTab) Len() int { return len(t.A) }

// CompactPrivate rebuilds the tab from a detection pass, interning
// previously unseen entities and reusing column capacity. Rows keep
// detection order.
func (t *PrivateTab) CompactPrivate(hs []PrivateHop, tab *ident.Table) {
	if cap(t.A) < len(hs) {
		t.A = make([]ident.IfaceID, 0, len(hs))
		t.B = make([]ident.IfaceID, 0, len(hs))
		t.AAS = make([]ident.MemberID, 0, len(hs))
		t.BAS = make([]ident.MemberID, 0, len(hs))
	}
	t.A = t.A[:0]
	t.B = t.B[:0]
	t.AAS = t.AAS[:0]
	t.BAS = t.BAS[:0]
	for _, h := range hs {
		t.A = append(t.A, tab.AddIface(h.AIP))
		t.B = append(t.B, tab.AddIface(h.BIP))
		t.AAS = append(t.AAS, tab.AddMember(h.AAS))
		t.BAS = append(t.BAS, tab.AddMember(h.BAS))
	}
}
