// Package traix reimplements the traIXroute methodology (Nomikos &
// Dimitropoulos, PAM 2016; paper Section 3.3) for detecting IXP
// crossings in traceroute paths.
//
// A crossing is detected on an IP triplet (IP1, IP2, IP3) when:
//
//  1. IP2 belongs to an IXP peering-LAN prefix and is assigned to the
//     same AS as IP3 (the far member),
//  2. the AS of IP1 differs from that AS (the near member), and
//  3. both ASes are members of the IXP owning the prefix.
package traix

import (
	"net/netip"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
)

// Hop is one traceroute hop. A zero IP marks a non-responding hop
// ("*" in traceroute output).
type Hop struct {
	IP netip.Addr
	// RTTMs is the RTT from the traceroute source to this hop.
	RTTMs float64
}

// Path is one traceroute measurement.
type Path struct {
	// SrcASN is the AS hosting the probe (0 when unknown).
	SrcASN netsim.ASN
	Dst    netip.Addr
	Hops   []Hop
}

// Crossing is one detected IXP crossing.
type Crossing struct {
	Path *Path
	// Index of the IXP interface hop within Path.Hops.
	Index int
	// IXP is the merged-dataset name of the exchange.
	IXP string
	// NearIP precedes the IXP interface; it belongs to NearAS, the
	// member entering the exchange.
	NearIP netip.Addr
	NearAS netsim.ASN
	// IXPIP is the peering-LAN interface, owned by FarAS.
	IXPIP netip.Addr
	FarAS netsim.ASN
}

// Detector holds the datasets needed to interpret paths.
type Detector struct {
	ds    *registry.Dataset
	ipmap *registry.IPMap
	// members caches IXP name -> member AS set.
	members map[string]map[netsim.ASN]bool
}

// NewDetector builds a Detector over the merged IXP dataset and the
// IP-to-AS map.
func NewDetector(ds *registry.Dataset, ipmap *registry.IPMap) *Detector {
	d := &Detector{ds: ds, ipmap: ipmap, members: make(map[string]map[netsim.ASN]bool)}
	for ip, name := range ds.IfaceIXP {
		set, ok := d.members[name]
		if !ok {
			set = make(map[netsim.ASN]bool)
			d.members[name] = set
		}
		set[ds.IfaceASN[ip]] = true
	}
	return d
}

// asOf resolves an address to an AS: member interfaces on peering LANs
// resolve through the IXP dataset, everything else through the
// prefix-to-AS map.
func (d *Detector) asOf(ip netip.Addr) (netsim.ASN, bool) {
	if asn, ok := d.ds.IfaceASN[ip]; ok {
		return asn, true
	}
	return d.ipmap.ASOf(ip)
}

// Detect scans one path and returns its IXP crossings.
func (d *Detector) Detect(p *Path) []Crossing {
	var out []Crossing
	for i := 1; i < len(p.Hops); i++ {
		if c, ok := d.crossingAt(p, i); ok {
			out = append(out, c)
		}
	}
	return out
}

// crossingAt applies the crossing rules to the triplet centred on hop
// i (which must be >= 1).
func (d *Detector) crossingAt(p *Path, i int) (Crossing, bool) {
	ixpIP := p.Hops[i].IP
	if !ixpIP.IsValid() {
		return Crossing{}, false
	}
	ixpName, ok := d.ds.IfaceIXP[ixpIP]
	if !ok {
		return Crossing{}, false // not a known IXP interface
	}
	farAS, ok := d.ds.IfaceASN[ixpIP]
	if !ok {
		return Crossing{}, false
	}
	// Rule 1 second half: the hop after the IXP IP must belong to
	// the same AS, when present and responsive.
	if i+1 >= len(p.Hops) || !p.Hops[i+1].IP.IsValid() {
		// IXP IP as last hop, or unresponsive far hop: cannot confirm.
		return Crossing{}, false
	}
	if asn, ok := d.asOf(p.Hops[i+1].IP); !ok || asn != farAS {
		return Crossing{}, false
	}
	// Rule 2: the preceding hop belongs to a different AS.
	nearIP := p.Hops[i-1].IP
	if !nearIP.IsValid() {
		return Crossing{}, false
	}
	nearAS, ok := d.asOf(nearIP)
	if !ok || nearAS == farAS {
		return Crossing{}, false
	}
	// Rule 3: both ASes are members of the exchange.
	set := d.members[ixpName]
	if !set[nearAS] || !set[farAS] {
		return Crossing{}, false
	}
	return Crossing{
		Path: p, Index: i, IXP: ixpName,
		NearIP: nearIP, NearAS: nearAS,
		IXPIP: ixpIP, FarAS: farAS,
	}, true
}

// DetectAll scans a corpus of paths.
func (d *Detector) DetectAll(paths []*Path) []Crossing {
	var out []Crossing
	for _, p := range paths {
		out = append(out, d.Detect(p)...)
	}
	return out
}

// PrivateHop is a consecutive-hop pair traversing a private (non-IXP)
// interconnection between two different ASes (Step 5 input).
type PrivateHop struct {
	Path     *Path
	Index    int // index of the second hop
	AIP, BIP netip.Addr
	AAS, BAS netsim.ASN
}

// DetectPrivate extracts private AS-level interconnections: pairs of
// consecutive responsive hops in different ASes where neither address
// is on an IXP peering LAN.
func (d *Detector) DetectPrivate(p *Path) []PrivateHop {
	var out []PrivateHop
	for i := 1; i < len(p.Hops); i++ {
		if ph, ok := d.privateAt(p, i); ok {
			out = append(out, ph)
		}
	}
	return out
}

// privateAt applies the private-interconnection rules to the pair
// ending at hop i (which must be >= 1).
func (d *Detector) privateAt(p *Path, i int) (PrivateHop, bool) {
	a, b := p.Hops[i-1].IP, p.Hops[i].IP
	if !a.IsValid() || !b.IsValid() {
		return PrivateHop{}, false
	}
	if _, onIXP := d.ds.IfaceIXP[a]; onIXP {
		return PrivateHop{}, false
	}
	if _, onIXP := d.ds.IfaceIXP[b]; onIXP {
		return PrivateHop{}, false
	}
	aAS, okA := d.asOf(a)
	bAS, okB := d.asOf(b)
	if !okA || !okB || aAS == bAS {
		return PrivateHop{}, false
	}
	return PrivateHop{Path: p, Index: i, AIP: a, BIP: b, AAS: aAS, BAS: bAS}, true
}

// DetectPrivateAll extracts private interconnections from a corpus.
func (d *Detector) DetectPrivateAll(paths []*Path) []PrivateHop {
	var out []PrivateHop
	for _, p := range paths {
		out = append(out, d.DetectPrivate(p)...)
	}
	return out
}
