// Package traix reimplements the traIXroute methodology (Nomikos &
// Dimitropoulos, PAM 2016; paper Section 3.3) for detecting IXP
// crossings in traceroute paths.
//
// A crossing is detected on an IP triplet (IP1, IP2, IP3) when:
//
//  1. IP2 belongs to an IXP peering-LAN prefix and is assigned to the
//     same AS as IP3 (the far member),
//  2. the AS of IP1 differs from that AS (the near member), and
//  3. both ASes are members of the IXP owning the prefix.
package traix

import (
	"net/netip"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
)

// Hop is one traceroute hop. A zero IP marks a non-responding hop
// ("*" in traceroute output).
type Hop struct {
	IP netip.Addr
	// RTTMs is the RTT from the traceroute source to this hop.
	RTTMs float64
}

// Path is one traceroute measurement.
type Path struct {
	// SrcASN is the AS hosting the probe (0 when unknown).
	SrcASN netsim.ASN
	Dst    netip.Addr
	Hops   []Hop
}

// Crossing is one detected IXP crossing.
type Crossing struct {
	Path *Path
	// Index of the IXP interface hop within Path.Hops.
	Index int
	// IXP is the merged-dataset name of the exchange.
	IXP string
	// NearIP precedes the IXP interface; it belongs to NearAS, the
	// member entering the exchange.
	NearIP netip.Addr
	NearAS netsim.ASN
	// IXPIP is the peering-LAN interface, owned by FarAS.
	IXPIP netip.Addr
	FarAS netsim.ASN
}

// Detector holds the datasets needed to interpret paths. Its per-IXP
// member sets are refcounted (one count per dataset interface record)
// and name-indexed — corpus candidates reference a set by dense int32
// index, not by string — and membership deltas adjust the counts
// incrementally through NoteJoin / NoteLeave instead of rebuilding the
// detector over the full dataset.
type Detector struct {
	ds    *registry.Dataset
	ipmap *registry.IPMap
	// names / byName assign dense indexes to IXP names; sets holds the
	// member AS -> interface-record refcounts per index.
	names  []string
	byName map[string]int32
	sets   []map[netsim.ASN]int
}

// NewDetector builds a Detector over the merged IXP dataset and the
// IP-to-AS map.
func NewDetector(ds *registry.Dataset, ipmap *registry.IPMap) *Detector {
	d := &Detector{ds: ds, ipmap: ipmap, byName: make(map[string]int32)}
	for ip, name := range ds.IfaceIXP {
		idx := d.nameIndex(name) // hoisted: nameIndex may grow d.sets
		d.sets[idx][ds.IfaceASN[ip]]++
	}
	return d
}

// nameIndex returns the dense index of an IXP name, assigning one (and
// an empty member set) on first sight. Indexes are stable for the
// detector's lifetime, which is what lets a corpus cache them.
func (d *Detector) nameIndex(name string) int32 {
	if i, ok := d.byName[name]; ok {
		return i
	}
	i := int32(len(d.names))
	d.names = append(d.names, name)
	d.sets = append(d.sets, make(map[netsim.ASN]int))
	d.byName[name] = i
	return i
}

// NoteJoin records one interface record appearing at (ixp, asn). The
// caller updates the underlying dataset; the detector only maintains
// its member-set refcounts (O(1) per note, vs. NewDetector's full
// dataset scan).
func (d *Detector) NoteJoin(ixp string, asn netsim.ASN) {
	idx := d.nameIndex(ixp) // hoisted: nameIndex may grow d.sets
	d.sets[idx][asn]++
}

// NoteLeave records one interface record departing from (ixp, asn).
func (d *Detector) NoteLeave(ixp string, asn netsim.ASN) {
	if i, ok := d.byName[ixp]; ok {
		set := d.sets[i]
		if set[asn] > 1 {
			set[asn]--
		} else {
			delete(set, asn)
		}
	}
}

// resolveTriplet applies rules 1 and 2 to the triplet centred on hop i
// of p: the anchor must be a known IXP interface whose AS matches the
// next hop's and differs from the previous hop's. It returns the IXP's
// dense name index and the two ASes; rule 3 (both ASes members of the
// exchange) is the caller's to apply against current membership state.
func (d *Detector) resolveTriplet(p *Path, i int) (ixp int32, nearAS, farAS netsim.ASN, ok bool) {
	ixpIP := p.Hops[i].IP
	if !ixpIP.IsValid() {
		return -1, 0, 0, false
	}
	ixpName, known := d.ds.IfaceIXP[ixpIP]
	if !known {
		return -1, 0, 0, false // not a known IXP interface
	}
	far, known := d.ds.IfaceASN[ixpIP]
	if !known {
		return -1, 0, 0, false
	}
	// Rule 1 second half: the hop after the IXP IP must belong to
	// the same AS, when present and responsive.
	if i+1 >= len(p.Hops) || !p.Hops[i+1].IP.IsValid() {
		// IXP IP as last hop, or unresponsive far hop: cannot confirm.
		return -1, 0, 0, false
	}
	if asn, known := d.asOf(p.Hops[i+1].IP); !known || asn != far {
		return -1, 0, 0, false
	}
	// Rule 2: the preceding hop belongs to a different AS.
	nearIP := p.Hops[i-1].IP
	if !nearIP.IsValid() {
		return -1, 0, 0, false
	}
	near, known := d.asOf(nearIP)
	if !known || near == far {
		return -1, 0, 0, false
	}
	// Every dataset record's name was indexed at construction (or by
	// the NoteJoin that introduced it), so this is a read-only lookup —
	// resolveTriplet runs inside the corpus's parallel settle.
	idx, known := d.byName[ixpName]
	if !known {
		return -1, 0, 0, false
	}
	return idx, near, far, true
}

// asOf resolves an address to an AS: member interfaces on peering LANs
// resolve through the IXP dataset, everything else through the
// prefix-to-AS map.
func (d *Detector) asOf(ip netip.Addr) (netsim.ASN, bool) {
	if asn, ok := d.ds.IfaceASN[ip]; ok {
		return asn, true
	}
	return d.ipmap.ASOf(ip)
}

// Detect scans one path and returns its IXP crossings.
func (d *Detector) Detect(p *Path) []Crossing {
	var out []Crossing
	for i := 1; i < len(p.Hops); i++ {
		if c, ok := d.crossingAt(p, i); ok {
			out = append(out, c)
		}
	}
	return out
}

// crossingAt applies the crossing rules to the triplet centred on hop
// i (which must be >= 1).
func (d *Detector) crossingAt(p *Path, i int) (Crossing, bool) {
	idx, nearAS, farAS, ok := d.resolveTriplet(p, i)
	if !ok {
		return Crossing{}, false
	}
	// Rule 3: both ASes are members of the exchange.
	set := d.sets[idx]
	if set[nearAS] == 0 || set[farAS] == 0 {
		return Crossing{}, false
	}
	return Crossing{
		Path: p, Index: i, IXP: d.names[idx],
		NearIP: p.Hops[i-1].IP, NearAS: nearAS,
		IXPIP: p.Hops[i].IP, FarAS: farAS,
	}, true
}

// DetectAll scans a corpus of paths.
func (d *Detector) DetectAll(paths []*Path) []Crossing {
	var out []Crossing
	for _, p := range paths {
		out = append(out, d.Detect(p)...)
	}
	return out
}

// PrivateHop is a consecutive-hop pair traversing a private (non-IXP)
// interconnection between two different ASes (Step 5 input).
type PrivateHop struct {
	Path     *Path
	Index    int // index of the second hop
	AIP, BIP netip.Addr
	AAS, BAS netsim.ASN
}

// DetectPrivate extracts private AS-level interconnections: pairs of
// consecutive responsive hops in different ASes where neither address
// is on an IXP peering LAN.
func (d *Detector) DetectPrivate(p *Path) []PrivateHop {
	var out []PrivateHop
	for i := 1; i < len(p.Hops); i++ {
		if ph, ok := d.privateAt(p, i); ok {
			out = append(out, ph)
		}
	}
	return out
}

// privateAt applies the private-interconnection rules to the pair
// ending at hop i (which must be >= 1).
func (d *Detector) privateAt(p *Path, i int) (PrivateHop, bool) {
	a, b := p.Hops[i-1].IP, p.Hops[i].IP
	if !a.IsValid() || !b.IsValid() {
		return PrivateHop{}, false
	}
	if _, onIXP := d.ds.IfaceIXP[a]; onIXP {
		return PrivateHop{}, false
	}
	if _, onIXP := d.ds.IfaceIXP[b]; onIXP {
		return PrivateHop{}, false
	}
	aAS, okA := d.asOf(a)
	bAS, okB := d.asOf(b)
	if !okA || !okB || aAS == bAS {
		return PrivateHop{}, false
	}
	return PrivateHop{Path: p, Index: i, AIP: a, BIP: b, AAS: aAS, BAS: bAS}, true
}

// DetectPrivateAll extracts private interconnections from a corpus.
func (d *Detector) DetectPrivateAll(paths []*Path) []PrivateHop {
	var out []PrivateHop
	for _, p := range paths {
		out = append(out, d.DetectPrivate(p)...)
	}
	return out
}
