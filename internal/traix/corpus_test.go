package traix_test

import (
	"testing"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
	"rpeer/internal/tracesim"
	"rpeer/internal/traix"
)

var (
	fw  *netsim.World
	fds *registry.Dataset
	fim *registry.IPMap
	fps []*traix.Path
)

func corpusFixtures(t testing.TB) (*netsim.World, *registry.Dataset, *registry.IPMap, []*traix.Path) {
	t.Helper()
	if fw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		fw = w
		fds = registry.Build(w, registry.DefaultNoise(), 42)
		fim = registry.BuildIPMap(w)
		fps = tracesim.Generate(w, tracesim.DefaultConfig())
	}
	return fw, fds, fim, fps
}

func sameCrossings(t *testing.T, label string, a, b []traix.Crossing) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d crossings vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: crossing %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

func samePrivate(t *testing.T, label string, a, b []traix.PrivateHop) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d private hops vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: private hop %d differs: %+v vs %+v", label, i, a[i], b[i])
		}
	}
}

// TestCorpusMatchesColdDetection pins the corpus contract: Detect must
// reproduce the full DetectAll / DetectPrivateAll passes exactly, in
// content and order.
func TestCorpusMatchesColdDetection(t *testing.T) {
	w, ds, im, paths := corpusFixtures(t)
	d := traix.NewDetector(ds, im)
	corpus := traix.NewCorpus(paths, traix.NewLANSet(traix.LANPrefixes(w)), im)

	gotC, gotP := corpus.Detect(d)
	sameCrossings(t, "cold", gotC, d.DetectAll(paths))
	samePrivate(t, "cold", gotP, d.DetectPrivateAll(paths))

	if len(gotC) == 0 || len(gotP) == 0 {
		t.Fatalf("degenerate corpus: %d crossings, %d private hops", len(gotC), len(gotP))
	}
}

// TestCorpusTracksMembershipChurn is the incremental-update contract:
// after membership joins and leaves, re-evaluating only the dynamic
// candidates must match a full scan against the mutated dataset.
func TestCorpusTracksMembershipChurn(t *testing.T) {
	w, ds, im, paths := corpusFixtures(t)
	corpus := traix.NewCorpus(paths, traix.NewLANSet(traix.LANPrefixes(w)), im)

	// Mutate a private clone of the dataset: drop every 7th known
	// interface, add every ground-truth member the noise had hidden.
	mut := ds.Clone()
	i := 0
	for ip := range ds.IfaceIXP {
		if i%7 == 0 {
			delete(mut.IfaceIXP, ip)
			delete(mut.IfaceASN, ip)
		}
		i++
	}
	added := 0
	for _, m := range w.Members {
		if _, known := mut.IfaceASN[m.Iface]; known {
			continue
		}
		mut.IfaceASN[m.Iface] = m.ASN
		mut.IfaceIXP[m.Iface] = w.IXP(m.IXP).Name
		added++
	}
	if added == 0 {
		t.Fatal("noise hid no members; churn test is vacuous")
	}

	d := traix.NewDetector(mut, im)
	gotC, gotP := corpus.Detect(d)
	sameCrossings(t, "churned", gotC, d.DetectAll(paths))
	samePrivate(t, "churned", gotP, d.DetectPrivateAll(paths))
}

func TestLANSetContains(t *testing.T) {
	w, _, _, _ := corpusFixtures(t)
	set := traix.NewLANSet(traix.LANPrefixes(w))
	for _, ix := range w.IXPs {
		if !set.Contains(ix.PeeringLAN.Addr().Next()) {
			t.Fatalf("LAN address of %s not recognised", ix.Name)
		}
		if set.Contains(ix.MgmtLAN.Addr()) {
			t.Fatalf("management address of %s misclassified as peering LAN", ix.Name)
		}
	}
}
