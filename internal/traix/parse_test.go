package traix

import (
	"net/netip"
	"strings"
	"testing"
)

const sampleTraceroute = `traceroute to example.net (198.51.100.3), 30 hops max, 60 byte packets
 1  192.0.2.1  0.431 ms  0.389 ms  0.402 ms
 2  203.0.113.9 (203.0.113.9)  1.2 ms
 3  * * *
 4  198.51.100.3  12.750 ms !X
`

func TestParseTraceroute(t *testing.T) {
	p, err := ParseTraceroute(strings.NewReader(sampleTraceroute))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dst != netip.MustParseAddr("198.51.100.3") {
		t.Errorf("dst = %v", p.Dst)
	}
	if len(p.Hops) != 4 {
		t.Fatalf("hops = %d, want 4", len(p.Hops))
	}
	if p.Hops[0].IP != netip.MustParseAddr("192.0.2.1") || p.Hops[0].RTTMs != 0.431 {
		t.Errorf("hop 1 = %+v", p.Hops[0])
	}
	if p.Hops[1].IP != netip.MustParseAddr("203.0.113.9") || p.Hops[1].RTTMs != 1.2 {
		t.Errorf("hop 2 = %+v", p.Hops[1])
	}
	if p.Hops[2].IP.IsValid() {
		t.Errorf("hop 3 should be unresponsive: %+v", p.Hops[2])
	}
	if p.Hops[3].RTTMs != 12.75 {
		t.Errorf("hop 4 = %+v", p.Hops[3])
	}
}

func TestParseTracerouteGaps(t *testing.T) {
	in := ` 1  192.0.2.1  1 ms
 4  192.0.2.4  4 ms
`
	p, err := ParseTraceroute(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hops) != 4 {
		t.Fatalf("hops = %d, want 4 (gap-filled)", len(p.Hops))
	}
	if p.Hops[1].IP.IsValid() || p.Hops[2].IP.IsValid() {
		t.Error("gap hops should be unresponsive")
	}
	if p.Hops[3].IP != netip.MustParseAddr("192.0.2.4") {
		t.Errorf("hop 4 = %+v", p.Hops[3])
	}
}

func TestParseTracerouteEmpty(t *testing.T) {
	if _, err := ParseTraceroute(strings.NewReader("")); err == nil {
		t.Error("want error for empty input")
	}
	if _, err := ParseTraceroute(strings.NewReader("banner only\n")); err == nil {
		t.Error("want error for hopless input")
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	orig := &Path{
		Dst: netip.MustParseAddr("198.51.100.3"),
		Hops: []Hop{
			{IP: netip.MustParseAddr("192.0.2.1"), RTTMs: 0.5},
			{},
			{IP: netip.MustParseAddr("198.51.100.3"), RTTMs: 11.25},
		},
	}
	p, err := ParseTraceroute(strings.NewReader(FormatPath(orig)))
	if err != nil {
		t.Fatal(err)
	}
	if p.Dst != orig.Dst || len(p.Hops) != len(orig.Hops) {
		t.Fatalf("round trip lost structure: %+v", p)
	}
	for i := range orig.Hops {
		if p.Hops[i].IP != orig.Hops[i].IP {
			t.Errorf("hop %d IP = %v, want %v", i, p.Hops[i].IP, orig.Hops[i].IP)
		}
		if orig.Hops[i].IP.IsValid() && p.Hops[i].RTTMs != orig.Hops[i].RTTMs {
			t.Errorf("hop %d RTT = %v, want %v", i, p.Hops[i].RTTMs, orig.Hops[i].RTTMs)
		}
	}
}

func TestParsedPathFeedsDetector(t *testing.T) {
	// End-to-end: format a synthetic crossing path as text, parse it
	// back, and confirm the detector still finds the crossing.
	w, ds, im := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	near := knownMember(t, w, ds, ix, 0)
	far := knownMember(t, w, ds, ix, 1)
	orig := &Path{Hops: []Hop{
		{IP: w.Router(near.Router).Ifaces[0], RTTMs: 3},
		{IP: far.Iface, RTTMs: 4},
		{IP: w.ASPrefixes(far.ASN)[0].Addr().Next(), RTTMs: 4.5},
	}}
	parsed, err := ParseTraceroute(strings.NewReader(FormatPath(orig)))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDetector(ds, im)
	if got := d.Detect(parsed); len(got) != 1 {
		t.Fatalf("crossings after text round trip = %d, want 1", len(got))
	}
}

func FuzzParseTraceroute(f *testing.F) {
	f.Add(sampleTraceroute)
	f.Add(" 1  10.0.0.1  1 ms\n")
	f.Add("garbage\n 2 * * *\n")
	f.Fuzz(func(t *testing.T, in string) {
		p, err := ParseTraceroute(strings.NewReader(in))
		if err != nil {
			return
		}
		// Parsed paths must be internally consistent and re-parseable.
		if len(p.Hops) == 0 {
			t.Fatal("nil-hop path without error")
		}
		if _, err := ParseTraceroute(strings.NewReader(FormatPath(p))); err != nil {
			t.Fatalf("formatted output unparseable: %v", err)
		}
	})
}
