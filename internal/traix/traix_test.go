package traix

import (
	"net/netip"
	"testing"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
)

var (
	cw  *netsim.World
	cds *registry.Dataset
	cim *registry.IPMap
)

func fixtures(t testing.TB) (*netsim.World, *registry.Dataset, *registry.IPMap) {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
		cds = registry.Build(w, registry.DefaultNoise(), 42)
		cim = registry.BuildIPMap(w)
	}
	return cw, cds, cim
}

// member returns the i-th ground-truth member of the IXP that is known
// to the merged dataset.
func knownMember(t *testing.T, w *netsim.World, ds *registry.Dataset, ix *netsim.IXP, skip int) *netsim.Member {
	t.Helper()
	for _, m := range w.MembersOf(ix.ID) {
		if asn, ok := ds.IfaceASN[m.Iface]; ok && asn == m.ASN {
			if skip == 0 {
				return m
			}
			skip--
		}
	}
	t.Fatal("no member known to dataset")
	return nil
}

func TestDetectCrossing(t *testing.T) {
	w, ds, im := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	near := knownMember(t, w, ds, ix, 0)
	far := knownMember(t, w, ds, ix, 1)
	nearR := w.Router(near.Router)
	farInterior := w.ASPrefixes(far.ASN)[0].Addr().Next()

	p := &Path{Hops: []Hop{
		{IP: nearR.Ifaces[0], RTTMs: 10},
		{IP: far.Iface, RTTMs: 11},
		{IP: farInterior, RTTMs: 11.5},
	}}
	d := NewDetector(ds, im)
	got := d.Detect(p)
	if len(got) != 1 {
		t.Fatalf("crossings = %d, want 1", len(got))
	}
	c := got[0]
	if c.IXP != ix.Name || c.NearAS != near.ASN || c.FarAS != far.ASN {
		t.Errorf("crossing = %+v, want %s near=%d far=%d", c, ix.Name, near.ASN, far.ASN)
	}
	if c.NearIP != nearR.Ifaces[0] || c.IXPIP != far.Iface {
		t.Error("crossing IPs wrong")
	}
}

func TestDetectRejectsWrongFarAS(t *testing.T) {
	w, ds, im := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	near := knownMember(t, w, ds, ix, 0)
	far := knownMember(t, w, ds, ix, 1)
	other := knownMember(t, w, ds, ix, 2)
	nearR := w.Router(near.Router)
	// Hop after the IXP IP belongs to a third AS: rule 1 fails.
	p := &Path{Hops: []Hop{
		{IP: nearR.Ifaces[0]},
		{IP: far.Iface},
		{IP: w.ASPrefixes(other.ASN)[0].Addr().Next()},
	}}
	d := NewDetector(ds, im)
	if got := d.Detect(p); len(got) != 0 {
		t.Errorf("crossings = %d, want 0 (far-AS mismatch)", len(got))
	}
}

func TestDetectRejectsSameNearAS(t *testing.T) {
	w, ds, im := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	far := knownMember(t, w, ds, ix, 1)
	interior := w.ASPrefixes(far.ASN)[0].Addr().Next()
	// Near hop in the same AS as the IXP interface: rule 2 fails.
	p := &Path{Hops: []Hop{
		{IP: interior},
		{IP: far.Iface},
		{IP: interior.Next()},
	}}
	d := NewDetector(ds, im)
	if got := d.Detect(p); got != nil {
		t.Errorf("crossings = %v, want none (near AS == far AS)", got)
	}
}

func TestDetectRejectsTrailingIXPHop(t *testing.T) {
	w, ds, im := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	near := knownMember(t, w, ds, ix, 0)
	far := knownMember(t, w, ds, ix, 1)
	p := &Path{Hops: []Hop{
		{IP: w.Router(near.Router).Ifaces[0]},
		{IP: far.Iface},
	}}
	d := NewDetector(ds, im)
	if got := d.Detect(p); len(got) != 0 {
		t.Error("crossing accepted without far-side confirmation")
	}
}

func TestDetectPrivate(t *testing.T) {
	w, ds, im := fixtures(t)
	if len(w.Private) == 0 {
		t.Fatal("no private links in world")
	}
	pl := w.Private[0]
	p := &Path{Hops: []Hop{
		{IP: pl.AIface},
		{IP: pl.BIface},
	}}
	d := NewDetector(ds, im)
	got := d.DetectPrivate(p)
	if len(got) != 1 {
		t.Fatalf("private hops = %d, want 1", len(got))
	}
	aOwner := w.Router(pl.A).Owner
	bOwner := w.Router(pl.B).Owner
	if got[0].AAS != aOwner || got[0].BAS != bOwner {
		t.Errorf("private ASes = (%d,%d), want (%d,%d)", got[0].AAS, got[0].BAS, aOwner, bOwner)
	}
}

func TestDetectPrivateSkipsIXPLAN(t *testing.T) {
	w, ds, im := fixtures(t)
	ix := w.LargestIXPs(1)[0]
	near := knownMember(t, w, ds, ix, 0)
	far := knownMember(t, w, ds, ix, 1)
	p := &Path{Hops: []Hop{
		{IP: w.Router(near.Router).Ifaces[0]},
		{IP: far.Iface}, // peering LAN: not private
	}}
	d := NewDetector(ds, im)
	if got := d.DetectPrivate(p); len(got) != 0 {
		t.Error("IXP LAN hop misclassified as private interconnection")
	}
}

func TestIPMapRoundTrip(t *testing.T) {
	w, _, im := fixtures(t)
	checked := 0
	for _, asn := range w.ASNs[:200] {
		for _, p := range w.ASPrefixes(asn) {
			got, ok := im.ASOf(p.Addr().Next())
			if !ok || got != asn {
				t.Fatalf("ASOf(%v) = (%d,%v), want %d", p.Addr().Next(), got, ok, asn)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no prefixes checked")
	}
	if _, ok := im.ASOf(netip.MustParseAddr("9.9.9.9")); ok {
		t.Error("unknown address resolved")
	}
}
