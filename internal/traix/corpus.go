package traix

import (
	"net/netip"
	"runtime"
	"sort"
	"sync"

	"rpeer/internal/ident"
	"rpeer/internal/ip4"
	"rpeer/internal/netsim"
	"rpeer/internal/par"
	"rpeer/internal/registry"
)

// Corpus is a detection-ready index over a fixed traceroute path set.
//
// Crossing detection reads three kinds of state, and the corpus splits
// the work along those lines so that a membership delta re-does only
// the sliver it can reach:
//
//   - the corpus itself (immutable): which hops lie on a peering-LAN
//     prefix at all. These are the only hops that can anchor an IXP
//     crossing; they are indexed once, in NewCorpus.
//   - the address assignments of the dataset (which churn only at
//     join/leave addresses): rules 1 and 2 of the traIXroute triplet —
//     the IXP owning the anchor address, the far AS holding it, the
//     near/far neighbour ASes. Settled once per candidate (Settle / the
//     first Detect) and re-resolved per delta only for candidates
//     touching a changed address (DetectDelta).
//   - the per-IXP member AS sets (which churn with every delta): rule 3.
//     Re-evaluated on every Detect from the detector's refcounted sets —
//     two set probes per surviving candidate.
//
// Private-hop detection is *fully static*: a consecutive-hop pair with
// a peering-LAN address can never classify as a private interconnect
// (a LAN address known to the dataset is rejected as an IXP interface,
// and one unknown to the dataset resolves through neither the dataset
// nor the infrastructure prefix-to-AS map, so the pair's ASes cannot
// both be established), and a pair without one cannot be affected by
// membership state. The static verdicts are computed once in NewCorpus
// from the prefix-to-AS map alone and shared by every Detect call.
type Corpus struct {
	paths []*Path
	set   *LANSet

	// The static private-hop verdicts in path-then-hop order, columnar
	// (no per-row pointers for the garbage collector to chase): path
	// and hop index, the IPv4 endpoint words, and the two ASes. The
	// endpoints are always IPv4: a static pair's ASes resolve through
	// the prefix-to-AS map, which only maps IPv4 infrastructure
	// prefixes (the whole detection plane is IPv4, like the simulators
	// and datasets feeding it).
	sPath, sHop []int32
	sA, sB      []uint32
	sAAS, sBAS  []netsim.ASN

	// staticOnce materializes the []PrivateHop view on demand (the
	// compatibility surface of Detect; core consumes the columns).
	staticOnce sync.Once
	staticRows []PrivateHop

	// Crossing candidates in path-then-hop order (columnar).
	candPath []int32
	candHop  []int32

	// Settled per-candidate stage-1 state (rules 1+2, address-
	// assignment-dependent): whether the triplet resolves, and to
	// whom. setIdx is the detector's dense name index — the rule-3
	// probes in emit are integer-keyed, no string hashing.
	settled     bool
	settledWith *Detector
	ok12        []bool
	setIdx      []int32
	nearAS      []netsim.ASN
	farAS       []netsim.ASN

	// byLAN maps each candidate's peering-LAN addresses (the anchor,
	// plus LAN-resident neighbours, whose AS resolution also rides on
	// the dataset) to candidate indexes. Built lazily on the first
	// DetectDelta — cold starts never pay for it.
	byLANOnce sync.Once
	byLAN     map[netip.Addr][]int32
}

// LANSet answers "is this address on any peering-LAN prefix?" with a
// single binary search over sorted, merged address intervals in the
// IPv4 integer domain (peering-LAN plans are disjoint prefixes). The
// corpus split relies on the invariant that member interfaces only
// ever carry peering-LAN addresses; callers that grow the dataset
// (membership joins) use a LANSet to uphold it.
type LANSet struct {
	// base and last are the inclusive interval bounds, base ascending.
	base []uint32
	last []uint32
}

// NewLANSet indexes a peering-LAN prefix plan.
func NewLANSet(lans []netip.Prefix) *LANSet {
	type iv struct{ base, last uint32 }
	ivs := make([]iv, 0, len(lans))
	for _, p := range lans {
		if !p.IsValid() || !p.Addr().Is4() {
			continue
		}
		u := ip4.U32(p.Masked().Addr())
		size := uint32(1) << (32 - p.Bits())
		ivs = append(ivs, iv{u, u + size - 1})
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].base < ivs[j].base })
	s := &LANSet{base: make([]uint32, 0, len(ivs)), last: make([]uint32, 0, len(ivs))}
	for _, v := range ivs {
		// Merge duplicates and (defensively) overlaps.
		if n := len(s.base); n > 0 && v.base <= s.last[n-1] {
			if v.last > s.last[n-1] {
				s.last[n-1] = v.last
			}
			continue
		}
		s.base = append(s.base, v.base)
		s.last = append(s.last, v.last)
	}
	return s
}

// Contains reports whether ip lies on any indexed prefix.
func (s *LANSet) Contains(ip netip.Addr) bool {
	if !ip.Is4() {
		return false
	}
	u := ip4.U32(ip)
	lo, hi := 0, len(s.base)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.base[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo > 0 && u <= s.last[lo-1]
}

// NewCorpus indexes a path corpus. set must index every peering-LAN
// prefix member interfaces can be drawn from (the world's LAN plan, a
// superset of whatever the registry dataset happens to cover — see
// LANPrefixes), and ipmap is the membership-independent prefix-to-AS
// map used to settle the static private pairs. The hop scan fans out
// over path chunks; the result is independent of worker count.
func NewCorpus(paths []*Path, set *LANSet, ipmap *registry.IPMap) *Corpus {
	c := &Corpus{paths: paths, set: set}

	const chunk = 2048
	nChunks := (len(paths) + chunk - 1) / chunk
	type chunkOut struct {
		candPath []int32
		candHop  []int32
		sPath    []int32
		sHop     []int32
		sA, sB   []uint32
		sAAS     []netsim.ASN
		sBAS     []netsim.ASN
	}
	outs := make([]chunkOut, nChunks)
	par.Do(runtime.GOMAXPROCS(0), nChunks, func(ci int) {
		lo, hi := ci*chunk, (ci+1)*chunk
		if hi > len(paths) {
			hi = len(paths)
		}
		var o chunkOut
		var onLAN []bool
		for pi := lo; pi < hi; pi++ {
			p := paths[pi]
			onLAN = onLAN[:0]
			for _, h := range p.Hops {
				onLAN = append(onLAN, h.IP.IsValid() && set.Contains(h.IP))
			}
			for i := 1; i < len(p.Hops); i++ {
				if onLAN[i] {
					o.candPath = append(o.candPath, int32(pi))
					o.candHop = append(o.candHop, int32(i))
				}
				a, b := p.Hops[i-1].IP, p.Hops[i].IP
				if !a.IsValid() || !b.IsValid() {
					continue
				}
				if onLAN[i-1] || onLAN[i] {
					continue // can never classify (see type comment)
				}
				// Static pair: no peering-LAN address involved, so the
				// dataset's exclusion and AS maps can never apply.
				aAS, okA := ipmap.ASOf(a)
				bAS, okB := ipmap.ASOf(b)
				if !okA || !okB || aAS == bAS {
					continue
				}
				o.sPath = append(o.sPath, int32(pi))
				o.sHop = append(o.sHop, int32(i))
				o.sA = append(o.sA, ip4.U32(a))
				o.sB = append(o.sB, ip4.U32(b))
				o.sAAS = append(o.sAAS, aAS)
				o.sBAS = append(o.sBAS, bAS)
			}
		}
		outs[ci] = o
	})
	nc, ns := 0, 0
	for _, o := range outs {
		nc += len(o.candPath)
		ns += len(o.sPath)
	}
	c.candPath = make([]int32, 0, nc)
	c.candHop = make([]int32, 0, nc)
	c.sPath = make([]int32, 0, ns)
	c.sHop = make([]int32, 0, ns)
	c.sA = make([]uint32, 0, ns)
	c.sB = make([]uint32, 0, ns)
	c.sAAS = make([]netsim.ASN, 0, ns)
	c.sBAS = make([]netsim.ASN, 0, ns)
	for _, o := range outs {
		c.candPath = append(c.candPath, o.candPath...)
		c.candHop = append(c.candHop, o.candHop...)
		c.sPath = append(c.sPath, o.sPath...)
		c.sHop = append(c.sHop, o.sHop...)
		c.sA = append(c.sA, o.sA...)
		c.sB = append(c.sB, o.sB...)
		c.sAAS = append(c.sAAS, o.sAAS...)
		c.sBAS = append(c.sBAS, o.sBAS...)
	}
	return c
}

// settleAll resolves stage 1 (rules 1+2) for every candidate against
// the detector's current dataset, fanning out over candidate chunks.
func (c *Corpus) settleAll(d *Detector) {
	n := len(c.candPath)
	if cap(c.ok12) < n {
		c.ok12 = make([]bool, n)
		c.setIdx = make([]int32, n)
		c.nearAS = make([]netsim.ASN, n)
		c.farAS = make([]netsim.ASN, n)
	}
	c.ok12 = c.ok12[:n]
	c.setIdx = c.setIdx[:n]
	c.nearAS = c.nearAS[:n]
	c.farAS = c.farAS[:n]
	const chunk = 4096
	nChunks := (n + chunk - 1) / chunk
	par.Do(runtime.GOMAXPROCS(0), nChunks, func(ci int) {
		lo, hi := ci*chunk, (ci+1)*chunk
		if hi > n {
			hi = n
		}
		for i := lo; i < hi; i++ {
			c.settleOne(d, i)
		}
	})
	c.settled = true
	c.settledWith = d
}

// settleOne resolves one candidate's stage-1 state.
func (c *Corpus) settleOne(d *Detector, i int) {
	p := c.paths[c.candPath[i]]
	hop := int(c.candHop[i])
	idx, nearAS, farAS, ok := d.resolveTriplet(p, hop)
	c.ok12[i] = ok
	c.setIdx[i] = idx
	c.nearAS[i] = nearAS
	c.farAS[i] = farAS
}

// Detect evaluates the corpus against the detector's current dataset
// state. The returned crossing slice is freshly allocated and ordered
// exactly as DetectAll over the same paths would order it: by path,
// then by hop index. The private-hop slice is the corpus's static
// verdict list (identical to DetectPrivateAll; shared, read-only).
//
// The first Detect settles the per-candidate stage-1 state against d;
// later calls with the same detector only re-evaluate rule 3. A call
// with a *different* detector re-settles everything (a corpus follows
// one detector's dataset; core contexts pair them one-to-one).
func (c *Corpus) Detect(d *Detector) ([]Crossing, []PrivateHop) {
	return c.DetectCrossings(d), c.StaticPrivate()
}

// DetectCrossings is Detect without materializing the static private
// rows (bulk consumers read those through CompactStaticInto).
func (c *Corpus) DetectCrossings(d *Detector) []Crossing {
	if !c.settled || c.settledWith != d {
		c.settleAll(d)
	}
	return c.emit(d)
}

// DetectDelta is DetectCrossings after a membership delta: candidates
// whose peering-LAN addresses appear in changed are re-settled (their
// address assignments moved); everything else keeps its stage-1 state
// and only rule 3 is re-evaluated during the emit walk.
func (c *Corpus) DetectDelta(d *Detector, changed map[netip.Addr]bool) []Crossing {
	if !c.settled || c.settledWith != d {
		c.settleAll(d)
		return c.emit(d)
	}
	if len(changed) > 0 {
		c.byLANOnce.Do(c.buildByLAN)
		seen := make(map[int32]bool)
		for ip := range changed {
			for _, i := range c.byLAN[ip] {
				if !seen[i] {
					seen[i] = true
					c.settleOne(d, int(i))
				}
			}
		}
	}
	return c.emit(d)
}

// buildByLAN indexes candidates by the peering-LAN addresses their
// stage-1 resolution reads: the anchor hop, plus neighbours that are
// themselves LAN addresses (their AS resolves through the dataset).
// Infrastructure neighbours resolve through the static prefix-to-AS
// map and need no index.
func (c *Corpus) buildByLAN() {
	idx := make(map[netip.Addr][]int32, len(c.candPath))
	for i := range c.candPath {
		p := c.paths[c.candPath[i]]
		hop := int(c.candHop[i])
		add := func(ip netip.Addr) {
			if ip.IsValid() && c.set.Contains(ip) {
				idx[ip] = append(idx[ip], int32(i))
			}
		}
		add(p.Hops[hop].IP)
		add(p.Hops[hop-1].IP)
		if hop+1 < len(p.Hops) {
			add(p.Hops[hop+1].IP)
		}
	}
	c.byLAN = idx
}

// emit assembles the crossing list from the settled candidates,
// applying rule 3 (both ASes are current members of the exchange).
func (c *Corpus) emit(d *Detector) []Crossing {
	out := make([]Crossing, 0, len(c.candPath)/2)
	for i := range c.candPath {
		if !c.ok12[i] {
			continue
		}
		if set := d.sets[c.setIdx[i]]; set[c.nearAS[i]] == 0 || set[c.farAS[i]] == 0 {
			continue
		}
		p := c.paths[c.candPath[i]]
		hop := int(c.candHop[i])
		out = append(out, Crossing{
			Path: p, Index: hop, IXP: d.names[c.setIdx[i]],
			NearIP: p.Hops[hop-1].IP, NearAS: c.nearAS[i],
			IXPIP: p.Hops[hop].IP, FarAS: c.farAS[i],
		})
	}
	return out
}

// StaticPrivate materializes the static private hops as rows
// (identical to DetectPrivateAll over the corpus paths). The rows are
// built once and shared; callers must treat them as read-only. Bulk
// consumers should prefer CompactStaticInto, which feeds the columnar
// form straight into an intern table without materializing rows.
func (c *Corpus) StaticPrivate() []PrivateHop {
	c.staticOnce.Do(func() {
		rows := make([]PrivateHop, len(c.sPath))
		for i := range c.sPath {
			rows[i] = PrivateHop{
				Path: c.paths[c.sPath[i]], Index: int(c.sHop[i]),
				AIP: ip4.Addr(c.sA[i]), BIP: ip4.Addr(c.sB[i]),
				AAS: c.sAAS[i], BAS: c.sBAS[i],
			}
		}
		c.staticRows = rows
	})
	return c.staticRows
}

// CompactStaticInto fills a PrivateTab from the static columns,
// interning endpoints as it goes — the cold-build path that never
// materializes a []PrivateHop.
func (c *Corpus) CompactStaticInto(t *PrivateTab, tab *ident.Table) {
	n := len(c.sPath)
	if cap(t.A) < n {
		t.A = make([]ident.IfaceID, 0, n)
		t.B = make([]ident.IfaceID, 0, n)
		t.AAS = make([]ident.MemberID, 0, n)
		t.BAS = make([]ident.MemberID, 0, n)
	}
	t.A = t.A[:0]
	t.B = t.B[:0]
	t.AAS = t.AAS[:0]
	t.BAS = t.BAS[:0]
	for i := 0; i < n; i++ {
		t.A = append(t.A, tab.AddIface(ip4.Addr(c.sA[i])))
		t.B = append(t.B, tab.AddIface(ip4.Addr(c.sB[i])))
		t.AAS = append(t.AAS, tab.AddMember(c.sAAS[i]))
		t.BAS = append(t.BAS, tab.AddMember(c.sBAS[i]))
	}
}

// LANPrefixes extracts the peering-LAN plan of a world, the lans input
// of NewCorpus.
func LANPrefixes(w *netsim.World) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(w.IXPs))
	for _, ix := range w.IXPs {
		out = append(out, ix.PeeringLAN)
	}
	return out
}
