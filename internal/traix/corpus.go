package traix

import (
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
	"rpeer/internal/registry"
)

// Corpus is a detection-ready index over a fixed traceroute path set.
//
// Crossing and private-hop detection read two kinds of state: the
// corpus itself (immutable) and the IXP membership dataset (which
// churns — members join and leave between inference runs). The corpus
// splits each path's detection work along that line once, so that a
// membership change never forces a full re-scan of every hop:
//
//   - hops whose address lies on a peering-LAN prefix are *dynamic*
//     candidates: whether they form an IXP crossing, or poison a
//     private-hop pair, depends on the current membership maps;
//   - consecutive-hop pairs touching no peering-LAN address are
//     *static*: member interfaces only ever carry peering-LAN
//     addresses, so no dataset state can change how these pairs
//     classify. Their private-hop verdicts are computed once here,
//     from the prefix-to-AS map alone.
//
// Detect then re-evaluates only the dynamic candidates against a
// Detector (typically after a membership delta) and merges the static
// results back in path-and-hop order, producing slices identical to a
// cold DetectAll / DetectPrivateAll pass over the same dataset state.
type Corpus struct {
	paths []*Path
	per   []pathCands
}

// pathCands is one path's split detection state.
type pathCands struct {
	// cross lists hop indexes i (>= 1) whose address is on a
	// peering-LAN prefix: the only hops that can anchor a crossing.
	cross []int
	// priv lists second-hop indexes i of consecutive responsive pairs
	// where at least one address is on a peering-LAN prefix: the only
	// pairs whose private-hop verdict depends on membership state.
	priv []int
	// static holds the membership-independent private hops, ascending
	// by Index.
	static []PrivateHop
}

// LANSet answers "is this address on any peering-LAN prefix?" with a
// binary search over a sorted base-address column per distinct prefix
// length — no per-query prefix hashing. The corpus split relies on the
// invariant that member interfaces only ever carry peering-LAN
// addresses; callers that grow the dataset (membership joins) use a
// LANSet to uphold it.
type LANSet struct {
	bits []int
	// bases[i] holds the masked base addresses of the bits[i]-long
	// prefixes, sorted ascending.
	bases [][]netip.Addr
}

// NewLANSet indexes a peering-LAN prefix plan.
func NewLANSet(lans []netip.Prefix) *LANSet {
	byBits := make(map[int][]netip.Addr)
	for _, p := range lans {
		if !p.IsValid() {
			continue
		}
		byBits[p.Bits()] = append(byBits[p.Bits()], p.Masked().Addr())
	}
	s := &LANSet{}
	for b := range byBits {
		s.bits = append(s.bits, b)
	}
	sort.Ints(s.bits)
	for _, b := range s.bits {
		col := byBits[b]
		sort.Slice(col, func(i, j int) bool { return col[i].Less(col[j]) })
		// Dedup: duplicate prefixes collapse to one base.
		out := col[:0]
		for i, a := range col {
			if i == 0 || a != col[i-1] {
				out = append(out, a)
			}
		}
		s.bases = append(s.bases, out)
	}
	return s
}

// Contains reports whether ip lies on any indexed prefix.
func (s *LANSet) Contains(ip netip.Addr) bool {
	for i, b := range s.bits {
		p, err := ip.Prefix(b)
		if err != nil {
			continue
		}
		base := p.Addr()
		col := s.bases[i]
		j := sort.Search(len(col), func(k int) bool { return !col[k].Less(base) })
		if j < len(col) && col[j] == base {
			return true
		}
	}
	return false
}

// NewCorpus indexes a path corpus. set must index every peering-LAN
// prefix member interfaces can be drawn from (the world's LAN plan, a
// superset of whatever the registry dataset happens to cover — see
// LANPrefixes), and ipmap is the membership-independent prefix-to-AS
// map used to settle the static pairs.
func NewCorpus(paths []*Path, set *LANSet, ipmap *registry.IPMap) *Corpus {
	c := &Corpus{paths: paths, per: make([]pathCands, len(paths))}
	for pi, p := range paths {
		pc := &c.per[pi]
		onLAN := make([]bool, len(p.Hops))
		for i, h := range p.Hops {
			onLAN[i] = h.IP.IsValid() && set.Contains(h.IP)
		}
		for i := 1; i < len(p.Hops); i++ {
			if onLAN[i] {
				pc.cross = append(pc.cross, i)
			}
			a, b := p.Hops[i-1].IP, p.Hops[i].IP
			if !a.IsValid() || !b.IsValid() {
				continue
			}
			if onLAN[i-1] || onLAN[i] {
				pc.priv = append(pc.priv, i)
				continue
			}
			// Static pair: no peering-LAN address involved, so the
			// dataset's exclusion and AS maps can never apply.
			aAS, okA := ipmap.ASOf(a)
			bAS, okB := ipmap.ASOf(b)
			if !okA || !okB || aAS == bAS {
				continue
			}
			pc.static = append(pc.static, PrivateHop{Path: p, Index: i, AIP: a, BIP: b, AAS: aAS, BAS: bAS})
		}
	}
	return c
}

// Detect evaluates the corpus against the detector's current dataset
// state. The returned slices are freshly allocated and ordered exactly
// as DetectAll / DetectPrivateAll over the same paths would order
// them: by path, then by hop index.
func (c *Corpus) Detect(d *Detector) ([]Crossing, []PrivateHop) {
	var crossings []Crossing
	var priv []PrivateHop
	for pi, p := range c.paths {
		pc := &c.per[pi]
		for _, i := range pc.cross {
			if cr, ok := d.crossingAt(p, i); ok {
				crossings = append(crossings, cr)
			}
		}
		// Merge static results with the dynamic pair verdicts in hop
		// order; both lists are ascending and disjoint.
		si := 0
		for _, i := range pc.priv {
			for si < len(pc.static) && pc.static[si].Index < i {
				priv = append(priv, pc.static[si])
				si++
			}
			if ph, ok := d.privateAt(p, i); ok {
				priv = append(priv, ph)
			}
		}
		priv = append(priv, pc.static[si:]...)
	}
	return crossings, priv
}

// LANPrefixes extracts the peering-LAN plan of a world, the lans input
// of NewCorpus.
func LANPrefixes(w *netsim.World) []netip.Prefix {
	out := make([]netip.Prefix, 0, len(w.IXPs))
	for _, ix := range w.IXPs {
		out = append(out, ix.PeeringLAN)
	}
	return out
}
