// Package supervisor keeps the serving plane alive across internal
// engine faults. A Guard owns the atomic engine pointer the HTTP
// front end reads through, and turns the two ways an engine dies —
// a panic escaping Apply, or the write-ahead log declaring itself
// broken (rpi.ErrPersistence) — into a *quarantine* instead of a dead
// process:
//
//	healthy ──panic/persistence fault──▶ quarantined ──re-Open ok──▶ healthy'
//	                                        │   ▲
//	                                        └───┘ re-Open failed: back off, retry
//
// While quarantined, reads keep serving the last good snapshot (the
// engine's report pointer is only ever swapped after a fully
// successful apply, so it is trustworthy even when the substrate
// underneath is half-mutated), writes answer ErrQuarantined (503
// upstream), and a background goroutine re-Opens the engine from the
// data directory — the PR 6 durability contract guarantees the
// recovered state is exactly the acknowledged prefix. The recovered
// engine is swapped in through the same atomic pointer and the plane
// is writable again; the process never exits.
//
// Sequence continuity is asserted on every recovery: the recovered
// seq must be at least the highest acknowledged seq (no acknowledged
// delta may be lost) and at most one past it (only the in-flight
// delta that was journaled but never acknowledged may surface).
// Violations are counted and logged — they would mean the WAL broke
// its contract.
package supervisor

import (
	"errors"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"rpeer/pkg/rpi"
)

// ErrQuarantined is returned for writes while the engine is healing
// (and for writes that themselves triggered the quarantine). Upstream
// maps it to 503 + Retry-After; reads are unaffected.
var ErrQuarantined = errors.New("supervisor: engine quarantined, recovering")

// ErrNoEngine is returned before the first Publish: the listener is
// up but cold start or crash recovery has not finished.
var ErrNoEngine = errors.New("supervisor: no engine published yet")

// Reopen rebuilds an engine from durable state (rpi.Open over the
// same data directory and base inputs). It runs on the supervisor's
// recovery goroutine, possibly many times.
type Reopen func() (*rpi.Engine, *rpi.RecoveryInfo, error)

// Options configures a Guard.
type Options struct {
	// Reopen enables self-healing. Nil (an in-memory engine with no
	// durable state to recover from) leaves a quarantine permanent:
	// reads keep serving, writes keep answering 503.
	Reopen Reopen
	// RetryInterval is the base backoff between failed re-Opens
	// (default 1s, doubling to 10x).
	RetryInterval time.Duration
	// Logger receives quarantine and recovery events (default
	// log.Default()).
	Logger *log.Logger
}

// published is the read state captured from a healthy engine: the
// report plus the IXP name set (fixed at construction — membership
// deltas never touch the prefix plane) for 404 semantics while the
// engine itself cannot be trusted.
type published struct {
	rep  *rpi.Report
	seq  uint64
	ixps map[string]bool
}

// Guard supervises one replaceable engine.
type Guard struct {
	opts Options

	eng      atomic.Pointer[rpi.Engine]
	lastGood atomic.Pointer[published]
	gen      atomic.Uint64
	sick     atomic.Bool

	// acked is the highest delta seq a caller has been told succeeded
	// (or the recovery seq of the last publication).
	acked atomic.Uint64

	faults     atomic.Uint64
	recoveries atomic.Uint64
	violations atomic.Uint64
	lastFault  atomic.Value // string

	mu     sync.Mutex // quarantine/publish/close transitions
	closed bool
	stop   chan struct{}
}

// New builds a Guard in the pending state; Publish arms it.
func New(opts Options) *Guard {
	if opts.RetryInterval <= 0 {
		opts.RetryInterval = time.Second
	}
	if opts.Logger == nil {
		opts.Logger = log.Default()
	}
	return &Guard{opts: opts, stop: make(chan struct{})}
}

// Publish installs an engine (initial cold start, crash recovery, or
// a manual replacement) and clears any quarantine.
func (g *Guard) Publish(eng *rpi.Engine) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.publishLocked(eng)
}

func (g *Guard) publishLocked(eng *rpi.Engine) {
	ixps := make(map[string]bool)
	in := eng.Inputs()
	if in.Dataset != nil {
		for _, name := range in.Dataset.PrefixIXP {
			ixps[name] = true
		}
	}
	rep, seq := eng.SnapshotSeq()
	g.lastGood.Store(&published{rep: rep, seq: seq, ixps: ixps})
	g.acked.Store(seq)
	g.eng.Store(eng)
	g.gen.Add(1)
	g.sick.Store(false)
}

// Engine returns the current engine (nil before the first Publish).
// During a quarantine it still returns the sick engine — Snapshot on
// it is safe; anything touching the substrate is not, which is why
// reads go through the Guard's methods instead.
func (g *Guard) Engine() *rpi.Engine { return g.eng.Load() }

// Ready reports "published and writable": the /readyz signal.
func (g *Guard) Ready() bool { return g.eng.Load() != nil && !g.sick.Load() }

// Quarantined reports whether the engine is currently healing.
func (g *Guard) Quarantined() bool { return g.sick.Load() }

// Generation counts publications; it bumps on every engine swap, so
// per-engine caches key on it.
func (g *Guard) Generation() uint64 { return g.gen.Load() }

// Stats is the guard's observable state.
type Stats struct {
	Published            bool   `json:"published"`
	Quarantined          bool   `json:"quarantined"`
	Generation           uint64 `json:"generation"`
	AckedSeq             uint64 `json:"acked_seq"`
	Faults               uint64 `json:"faults"`
	Recoveries           uint64 `json:"recoveries"`
	ContinuityViolations uint64 `json:"continuity_violations"`
	LastFault            string `json:"last_fault,omitempty"`
}

// Stats snapshots the guard.
func (g *Guard) Stats() Stats {
	s := Stats{
		Published:            g.eng.Load() != nil,
		Quarantined:          g.sick.Load(),
		Generation:           g.gen.Load(),
		AckedSeq:             g.acked.Load(),
		Faults:               g.faults.Load(),
		Recoveries:           g.recoveries.Load(),
		ContinuityViolations: g.violations.Load(),
	}
	if v, ok := g.lastFault.Load().(string); ok {
		s.LastFault = v
	}
	return s
}

// Snapshot returns the current report: the live engine's when healthy,
// the last good one while quarantined.
func (g *Guard) Snapshot() (*rpi.Report, error) {
	rep, _, _, err := g.Published()
	return rep, err
}

// Published returns the current report together with the publication
// generation and the delta seq the report reflects, all coherent with
// one another: the (generation, seq) pair uniquely keys the report's
// bytes, which is what the serving plane's pre-marshaled report cache
// rides on. While quarantined it returns the last good publication
// (whose seq stopped moving when the engine did).
func (g *Guard) Published() (*rpi.Report, uint64, uint64, error) {
	for {
		eng := g.eng.Load()
		if eng == nil {
			return nil, 0, 0, ErrNoEngine
		}
		gen := g.gen.Load()
		var (
			rep *rpi.Report
			seq uint64
		)
		if g.sick.Load() {
			last := g.lastGood.Load()
			rep, seq = last.rep, last.seq
		} else {
			rep, seq = eng.SnapshotSeq()
		}
		// A recovery swapping the engine mid-read could pair the new
		// engine's report with the old generation number (or vice
		// versa); re-read until the generation was stable around the
		// whole capture. Swaps are rare, so this loops ~never.
		if g.gen.Load() == gen {
			return rep, gen, seq, nil
		}
	}
}

// ReportFor returns one IXP's report. While quarantined it is computed
// from the last good snapshot without touching the sick engine's
// substrate (whose indexes may be half-mutated).
func (g *Guard) ReportFor(ctx context.Context, ixp string) (*rpi.Report, error) {
	eng := g.eng.Load()
	if eng == nil {
		return nil, ErrNoEngine
	}
	if !g.sick.Load() {
		return eng.ReportFor(ctx, ixp)
	}
	last := g.lastGood.Load()
	if !last.ixps[ixp] {
		return nil, fmt.Errorf("%w: %q", rpi.ErrUnknownIXP, ixp)
	}
	out := &rpi.Report{Inferences: make(map[rpi.Key]*rpi.Inference)}
	for k, inf := range last.rep.Inferences {
		if k.IXP == ixp {
			out.Inferences[k] = inf
		}
	}
	for _, r := range last.rep.MultiRouters {
		for _, name := range r.IXPs {
			if name == ixp {
				out.MultiRouters = append(out.MultiRouters, r)
				break
			}
		}
	}
	return out, nil
}

// Apply forwards a delta to the current engine with the quarantine
// net underneath: a panic escaping the engine, or the engine declaring
// its persistence broken, quarantines the engine and starts background
// recovery instead of killing the process. The triggering caller gets
// ErrQuarantined (wrapping the original fault).
func (g *Guard) Apply(ctx context.Context, d rpi.Delta) (up *rpi.Update, err error) {
	eng := g.eng.Load()
	if eng == nil {
		return nil, ErrNoEngine
	}
	if g.sick.Load() {
		return nil, ErrQuarantined
	}
	gen := g.gen.Load()
	defer func() {
		if r := recover(); r != nil {
			g.quarantine(gen, eng, fmt.Sprintf("panic in Apply: %v", r), debug.Stack())
			up, err = nil, fmt.Errorf("%w: apply panicked: %v", ErrQuarantined, r)
		}
	}()
	up, err = eng.Apply(ctx, d)
	switch {
	case err == nil:
		g.noteGood(eng, up.Seq)
	case errors.Is(err, rpi.ErrPersistence):
		// The log can no longer be appended to: this engine will never
		// accept a write again, but the durable prefix is intact —
		// re-Open it.
		g.quarantine(gen, eng, "persistence fault: "+err.Error(), nil)
		err = fmt.Errorf("%w: %v", ErrQuarantined, err)
	}
	return up, err
}

// noteGood records a successful apply: the new report becomes the last
// good state and the seq is acknowledged.
func (g *Guard) noteGood(eng *rpi.Engine, seq uint64) {
	last := g.lastGood.Load()
	if last == nil {
		return // unreachable: Publish precedes any Apply
	}
	rep, engSeq := eng.SnapshotSeq()
	g.lastGood.Store(&published{rep: rep, seq: engSeq, ixps: last.ixps})
	for {
		cur := g.acked.Load()
		if seq <= cur || g.acked.CompareAndSwap(cur, seq) {
			return
		}
	}
}

// quarantine transitions to the quarantined state (exactly once per
// generation), abandons the sick engine and starts recovery.
func (g *Guard) quarantine(gen uint64, eng *rpi.Engine, reason string, stack []byte) {
	g.mu.Lock()
	if g.closed || g.gen.Load() != gen || g.sick.Load() {
		// Stale trigger: a concurrent fault already quarantined this
		// generation, or a recovery already replaced the engine.
		g.mu.Unlock()
		return
	}
	g.sick.Store(true)
	g.faults.Add(1)
	g.lastFault.Store(reason)
	g.mu.Unlock()

	if stack != nil {
		g.opts.Logger.Printf("supervisor: quarantining engine (gen %d): %s\n%s", gen, reason, stack)
	} else {
		g.opts.Logger.Printf("supervisor: quarantining engine (gen %d): %s", gen, reason)
	}
	// Abandon closes the WAL so the successor can own the directory,
	// and wakes every subscriber (their channels close — streaming
	// clients resynchronize from the snapshot after recovery). The
	// engine may be arbitrarily corrupt; don't let its failure modes
	// escape.
	func() {
		defer func() {
			if r := recover(); r != nil {
				g.opts.Logger.Printf("supervisor: abandon panicked: %v", r)
			}
		}()
		eng.Abandon()
	}()
	if g.opts.Reopen == nil {
		g.opts.Logger.Printf("supervisor: no reopen configured; quarantine is permanent (reads keep serving)")
		return
	}
	go g.recoverLoop(gen)
}

// recoverLoop re-Opens the engine until it succeeds (or the guard
// closes), then publishes the recovered engine.
func (g *Guard) recoverLoop(gen uint64) {
	backoff := g.opts.RetryInterval
	for attempt := 1; ; attempt++ {
		eng, info, err := g.safeReopen()
		if err == nil {
			acked := g.acked.Load()
			if info.Seq < acked || info.Seq > acked+1 {
				// The durability contract allows losing only the one
				// in-flight delta that was never acknowledged.
				g.violations.Add(1)
				g.opts.Logger.Printf("supervisor: SEQUENCE CONTINUITY VIOLATION: recovered seq %d, acknowledged %d (want %d or %d)",
					info.Seq, acked, acked, acked+1)
			}
			g.mu.Lock()
			if g.closed || g.gen.Load() != gen {
				g.mu.Unlock()
				_ = eng.Close()
				return
			}
			g.publishLocked(eng)
			g.recoveries.Add(1)
			g.mu.Unlock()
			g.opts.Logger.Printf("supervisor: recovered after %d attempt(s): seq %d (replayed %d), writable again",
				attempt, info.Seq, info.Replayed)
			return
		}
		g.opts.Logger.Printf("supervisor: re-open attempt %d failed: %v (retrying in %s)", attempt, err, backoff)
		select {
		case <-g.stop:
			return
		case <-time.After(backoff):
		}
		if backoff < 10*g.opts.RetryInterval {
			backoff *= 2
		}
	}
}

// safeReopen shields the recovery goroutine from a reopen that panics
// (a deterministic engine bug reproducing during replay must keep the
// supervisor retrying/backing off, not kill the process).
func (g *Guard) safeReopen() (eng *rpi.Engine, info *rpi.RecoveryInfo, err error) {
	defer func() {
		if r := recover(); r != nil {
			eng, info, err = nil, nil, fmt.Errorf("reopen panicked: %v", r)
		}
	}()
	return g.opts.Reopen()
}

// Close shuts the guard down: the recovery loop stops and the current
// engine (if healthy) closes cleanly, publishing its final snapshot.
// A quarantined engine was already abandoned; its durable state is the
// acknowledged prefix and needs no further action.
func (g *Guard) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return nil
	}
	g.closed = true
	close(g.stop)
	eng := g.eng.Load()
	sick := g.sick.Load()
	g.mu.Unlock()
	if eng == nil || sick {
		return nil
	}
	return eng.Close()
}
