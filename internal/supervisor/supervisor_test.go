package supervisor

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log"
	"sync/atomic"
	"testing"
	"time"

	"rpeer/internal/netsim"
	"rpeer/internal/wal"
	"rpeer/pkg/rpi"
)

// quiet drops engine/supervisor log noise from test output.
var quiet = log.New(io.Discard, "", 0)

// harness is one supervised persistent engine over a fault-injectable
// in-memory filesystem, with a one-shot arming lever for an apply-time
// panic (the "engine bug" fault) — the same rig cmd/rpi-chaos drives
// over HTTP.
type harness struct {
	t     *testing.T
	fsys  *wal.MemFS
	in    rpi.Inputs
	g     *Guard
	panic atomic.Bool // armed: next Apply panics after journaling
}

func newHarness(t *testing.T, withReopen bool) *harness {
	t.Helper()
	in, err := rpi.InputsFromConfig(netsim.TinyConfig(), 21)
	if err != nil {
		t.Fatal(err)
	}
	h := &harness{t: t, fsys: wal.NewMemFS(), in: in}
	opts := Options{RetryInterval: 5 * time.Millisecond, Logger: quiet}
	if withReopen {
		opts.Reopen = func() (*rpi.Engine, *rpi.RecoveryInfo, error) {
			return h.open()
		}
	}
	h.g = New(opts)
	eng, _, err := h.open()
	if err != nil {
		t.Fatal(err)
	}
	h.g.Publish(eng)
	t.Cleanup(func() { _ = h.g.Close() })
	return h
}

// open builds (or recovers) the persistent engine over the shared
// MemFS. The apply hook panics exactly once per arming, after the
// delta is journaled — the worst-case fault the durability contract
// must absorb.
func (h *harness) open() (*rpi.Engine, *rpi.RecoveryInfo, error) {
	return rpi.Open("data", h.in,
		rpi.WithWALFS(h.fsys),
		rpi.WithSnapshotEvery(0), // keep MemFS ops append-only: injections land on the log
		rpi.WithLogger(quiet),
		rpi.WithApplyHook(func(seq uint64, d rpi.Delta) {
			if h.panic.CompareAndSwap(true, false) {
				panic("supervisor_test: injected engine fault")
			}
		}),
	)
}

func (h *harness) delta(seed int64) rpi.Delta {
	return rpi.ChurnDelta(h.g.Engine().Inputs(), 0.05, seed)
}

// waitReady polls until the guard is writable again (or fails the
// test): the recovery-to-writable bound.
func (h *harness) waitReady() {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !h.g.Ready() {
		if time.Now().After(deadline) {
			h.t.Fatalf("guard not ready after 10s: %+v", h.g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
}

// anyIXP picks one IXP name present in the inputs.
func (h *harness) anyIXP() string {
	for _, name := range h.in.Dataset.PrefixIXP {
		return name
	}
	h.t.Fatal("no IXPs in inputs")
	return ""
}

func TestPanicQuarantineAndRecovery(t *testing.T) {
	h := newHarness(t, true)
	ctx := context.Background()

	// A healthy apply establishes acked state past the initial publish.
	if _, err := h.g.Apply(ctx, h.delta(1)); err != nil {
		t.Fatal(err)
	}
	ackedBefore := h.g.Stats().AckedSeq
	goodRep, err := h.g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sub, cancel := h.g.Engine().Subscribe(4)
	defer cancel()

	// Inject the engine bug: the delta journals, then Apply panics.
	h.panic.Store(true)
	_, err = h.g.Apply(ctx, h.delta(2))
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("faulting apply: err = %v, want ErrQuarantined", err)
	}
	if !h.g.Quarantined() {
		t.Fatal("guard not quarantined after panic")
	}

	// The sick engine's subscribers were woken (channel closed) so
	// streaming clients resynchronize instead of hanging. Quarantine
	// runs synchronously inside the faulting Apply, so the close is
	// already observable; drain any buffered updates first.
	closed := false
	for i := 0; i < 8 && !closed; i++ {
		if _, ok := <-sub; !ok {
			closed = true
		}
	}
	if !closed {
		t.Fatal("subscriber channel not closed after quarantine")
	}

	// Reads keep serving the last good report; writes are refused even
	// if they race in before recovery finishes.
	rep, err := h.g.Snapshot()
	if err != nil || rep != goodRep {
		t.Fatalf("quarantined snapshot: rep=%p want %p, err=%v", rep, goodRep, err)
	}
	if _, err := h.g.ReportFor(ctx, h.anyIXP()); err != nil {
		t.Fatalf("quarantined ReportFor: %v", err)
	}
	if _, err := h.g.ReportFor(ctx, "no-such-ixp"); !errors.Is(err, rpi.ErrUnknownIXP) {
		t.Fatalf("quarantined ReportFor unknown: err = %v, want ErrUnknownIXP", err)
	}

	// Background recovery re-Opens from the WAL and swaps the engine in.
	h.waitReady()
	st := h.g.Stats()
	if st.Faults != 1 || st.Recoveries != 1 || st.ContinuityViolations != 0 {
		t.Fatalf("stats after recovery: %+v", st)
	}
	// The panicking delta was journaled before the fault, so the
	// recovered engine must carry it: exactly acked+1, nothing lost,
	// nothing invented.
	if got := h.g.Engine().Seq(); got != ackedBefore+1 {
		t.Fatalf("recovered seq = %d, want %d (acked %d + journaled in-flight delta)", got, ackedBefore+1, ackedBefore)
	}
	// The recovered engine is writable and its state matches a cold
	// rebuild over its own inputs — the determinism contract held
	// through panic, abandon and replay.
	up, err := h.g.Apply(ctx, h.delta(3))
	if err != nil {
		t.Fatalf("post-recovery apply: %v", err)
	}
	if up.Seq != ackedBefore+2 {
		t.Fatalf("post-recovery seq = %d, want %d", up.Seq, ackedBefore+2)
	}
	cold, err := rpi.New(h.g.Engine().Inputs())
	if err != nil {
		t.Fatal(err)
	}
	recovered, _ := rpi.MarshalReport(h.g.Engine().Snapshot())
	rebuilt, _ := rpi.MarshalReport(cold.Snapshot())
	if !bytes.Equal(recovered, rebuilt) {
		t.Fatal("recovered report differs from cold rebuild")
	}
}

func TestPersistenceFaultQuarantineAndRecovery(t *testing.T) {
	h := newHarness(t, true)
	ctx := context.Background()

	if _, err := h.g.Apply(ctx, h.delta(1)); err != nil {
		t.Fatal(err)
	}
	acked := h.g.Stats().AckedSeq

	// The next log append fails (transient EIO): the engine declares
	// persistence broken, the guard quarantines it.
	h.fsys.InjectAt(1, wal.Fault{Mode: wal.FaultError})
	if _, err := h.g.Apply(ctx, h.delta(2)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}

	h.waitReady()
	// The failed delta was never journaled: the recovered engine is at
	// exactly the acknowledged seq.
	if got := h.g.Engine().Seq(); got != acked {
		t.Fatalf("recovered seq = %d, want %d (failed delta must not surface)", got, acked)
	}
	if st := h.g.Stats(); st.ContinuityViolations != 0 || st.Recoveries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if _, err := h.g.Apply(ctx, h.delta(3)); err != nil {
		t.Fatalf("post-recovery apply: %v", err)
	}
}

func TestNoReopenQuarantineIsPermanent(t *testing.T) {
	h := newHarness(t, false)
	ctx := context.Background()

	h.panic.Store(true)
	if _, err := h.g.Apply(ctx, h.delta(1)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	// No recovery path: stays quarantined, reads keep serving, writes
	// keep refusing.
	time.Sleep(50 * time.Millisecond)
	if h.g.Ready() {
		t.Fatal("guard became ready without a reopen path")
	}
	if _, err := h.g.Snapshot(); err != nil {
		t.Fatalf("read during permanent quarantine: %v", err)
	}
	if _, err := h.g.Apply(ctx, h.delta(2)); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("write during permanent quarantine: err = %v", err)
	}
	if st := h.g.Stats(); st.Faults != 1 || st.Recoveries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestNoEngine(t *testing.T) {
	g := New(Options{Logger: quiet})
	if g.Ready() {
		t.Fatal("empty guard reports ready")
	}
	if _, err := g.Snapshot(); !errors.Is(err, ErrNoEngine) {
		t.Fatalf("Snapshot: err = %v, want ErrNoEngine", err)
	}
	if _, err := g.Apply(context.Background(), rpi.Delta{}); !errors.Is(err, ErrNoEngine) {
		t.Fatalf("Apply: err = %v, want ErrNoEngine", err)
	}
	if _, err := g.ReportFor(context.Background(), "x"); !errors.Is(err, ErrNoEngine) {
		t.Fatalf("ReportFor: err = %v, want ErrNoEngine", err)
	}
}

func TestGenerationBumpsPerPublish(t *testing.T) {
	h := newHarness(t, true)
	if h.g.Generation() != 1 {
		t.Fatalf("generation after first publish = %d, want 1", h.g.Generation())
	}
	h.panic.Store(true)
	_, _ = h.g.Apply(context.Background(), h.delta(1))
	h.waitReady()
	if h.g.Generation() != 2 {
		t.Fatalf("generation after recovery = %d, want 2", h.g.Generation())
	}
}
