// Package netsim generates and hosts the synthetic Internet ecosystem
// on which the remote peering inference methodology runs: cities,
// colocation facilities, IXPs (including wide-area IXPs and IXP
// federations), member ASes, routers, peering-LAN interfaces, resellers
// and private interconnections, together with a hidden ground truth of
// which IXP memberships are local and which are remote.
//
// The real study measured the live Internet; this package substitutes a
// seeded, reproducible world that exposes the same observable artefacts
// (registry records, ping RTTs, traceroute paths, IP-ID side channels)
// with the noise and incompleteness rates reported in the paper, so the
// inference pipeline faces the same ambiguity structure.
package netsim

import (
	"fmt"
	"net/netip"
	"sort"

	"rpeer/internal/geo"
)

// ASN is an autonomous system number.
type ASN uint32

// String implements fmt.Stringer in the conventional "AS64500" form.
func (a ASN) String() string { return fmt.Sprintf("AS%d", uint32(a)) }

// FacilityID identifies a colocation facility.
type FacilityID int32

// IXPID identifies an Internet eXchange Point.
type IXPID int32

// RouterID identifies a physical router.
type RouterID int32

// ConnKind describes how an IXP member reaches the IXP switching
// fabric. Everything except ConnLocal is remote peering under the
// paper's Definition 1.
type ConnKind uint8

const (
	// ConnLocal: the member's router is patched directly to the IXP
	// switch in a facility where the IXP has presence.
	ConnLocal ConnKind = iota
	// ConnReseller: the member buys a (often fractional) virtual port
	// through a port reseller's network.
	ConnReseller
	// ConnLongCable: the member buys a physical port but back-hauls it
	// over an owned or leased layer-2 circuit from a distant location.
	ConnLongCable
	// ConnFederation: the member is local to a sibling IXP of the same
	// federation and reaches this IXP over the inter-IXP interconnect.
	ConnFederation
)

// Remote reports whether the connection kind constitutes remote peering
// under Definition 1 of the paper.
func (k ConnKind) Remote() bool { return k != ConnLocal }

// String implements fmt.Stringer.
func (k ConnKind) String() string {
	switch k {
	case ConnLocal:
		return "local"
	case ConnReseller:
		return "reseller"
	case ConnLongCable:
		return "long-cable"
	case ConnFederation:
		return "federation"
	default:
		return fmt.Sprintf("ConnKind(%d)", uint8(k))
	}
}

// City is a metropolitan area that can host facilities.
type City struct {
	Name    string
	Country string // ISO 3166-1 alpha-2
	Loc     geo.Point
	// Weight steers how much infrastructure the generator places in the
	// city (facilities, AS headquarters, IXP sizes).
	Weight float64
}

// Facility is a colocation data centre.
type Facility struct {
	ID      FacilityID
	Name    string
	City    string
	Country string
	Loc     geo.Point
}

// IXP is an Internet exchange point: a layer-2 switching fabric
// deployed in one or more facilities.
type IXP struct {
	ID   IXPID
	Name string
	// PeeringLAN is the public subnet from which member interfaces are
	// assigned.
	PeeringLAN netip.Prefix
	// MgmtLAN is the IXP's management subnet; some Atlas-like probes
	// land here and must be filtered out by the measurement pipeline.
	MgmtLAN netip.Prefix
	// RouteServer is the IXP route server address on the peering LAN;
	// looking glasses ping from/next to it and VP-sanity filters ping
	// to it.
	RouteServer netip.Addr
	// Facilities where the IXP has deployed switches.
	Facilities []FacilityID
	// MinPortMbps is the minimum *physical* port capacity sold by the
	// IXP itself (Cmin in Step 1). Fractional capacities below this are
	// only available through resellers.
	MinPortMbps int
	// PortOptionsMbps are the physical port capacities on the IXP's
	// price list.
	PortOptionsMbps []int
	// AllowsResellers indicates whether the IXP runs a reseller
	// program.
	AllowsResellers bool
	// FederationID groups sibling IXPs operated by one organisation
	// (0 = none). Members local to one sibling can peer remotely at the
	// others.
	FederationID int
	// HasLG indicates a public looking glass inside the peering LAN.
	HasLG bool
	// AtlasProbes is the number of RIPE-Atlas-like probes colocated
	// with the IXP (some usable, some in the management LAN).
	AtlasProbes int
	// WideArea is true when the switching fabric spans facilities more
	// than one metro area apart (Section 4.2).
	WideArea bool
}

// AS is an autonomous system.
type AS struct {
	ASN      ASN
	Name     string
	Country  string
	HomeCity string
	HomeLoc  geo.Point
	// Facilities lists ground-truth colocation presence.
	Facilities []FacilityID
	// TrafficMbps is the self-reported aggregate traffic level
	// (PeeringDB-style), used by the Fig 11b analysis.
	TrafficMbps float64
	// Tier is 1 (transit-free), 2 (regional) or 3 (stub/edge).
	Tier int
	// Providers are the AS's transit providers (customer-to-provider
	// edges of the relationship graph).
	Providers []ASN
	// IsReseller marks port-reseller organisations (IX-Reach/RETN-like).
	IsReseller bool
	// ResellerPOPs lists the facilities where a reseller offers IXP
	// access.
	ResellerPOPs []FacilityID
}

// Member is one (AS, IXP) membership: the ground-truth record of how
// the AS reaches the IXP. Kind is hidden from the inference pipeline
// and used only for validation.
type Member struct {
	ASN      ASN
	IXP      IXPID
	Iface    netip.Addr // address on the IXP peering LAN
	Router   RouterID
	PortMbps int
	Kind     ConnKind
	// Reseller is the reseller AS used, when Kind == ConnReseller.
	Reseller ASN
	// ViaFed is the sibling IXP through which a federation member is
	// reached, when Kind == ConnFederation.
	ViaFed IXPID
}

// Remote reports the ground-truth remoteness of the membership.
func (m *Member) Remote() bool { return m.Kind.Remote() }

// Router is a physical router. All its interfaces share one IP-ID
// counter, which is what MIDAR-style alias resolution exploits.
type Router struct {
	ID    RouterID
	Owner ASN
	// Facility is the hosting facility, or -1 when the router sits at
	// the owner's off-net location (office, national POP).
	Facility FacilityID
	Loc      geo.Point
	Ifaces   []netip.Addr
	// IXPs lists exchanges this router has layer-3 presence on
	// (multi-IXP routers have more than one).
	IXPs []IXPID
	// IPIDInit and IPIDRate parametrise the router's shared IP-ID
	// counter: id(t) = IPIDInit + IPIDRate*t (mod 65536).
	IPIDInit uint32
	IPIDRate float64
}

// PrivateLink is a private (non-IXP) interconnection between two
// routers, almost always inside a single facility.
type PrivateLink struct {
	A, B           RouterID
	AIface, BIface netip.Addr
	// Facility where the cross-connect lives; -1 for the rare tethered
	// interconnects spanning facilities.
	Facility FacilityID
}

// World is the fully generated ecosystem plus lookup indices.
type World struct {
	Cfg    Config
	Cities []City

	Facilities []*Facility
	IXPs       []*IXP
	ASes       map[ASN]*AS
	ASNs       []ASN // sorted, for deterministic iteration
	Routers    map[RouterID]*Router
	RouterIDs  []RouterID // sorted
	Members    []*Member
	Private    []PrivateLink
	Resellers  []ASN

	ifaceOwner  map[netip.Addr]ASN
	ifaceRouter map[netip.Addr]RouterID
	memberByIXP map[IXPID][]*Member
	asMembers   map[ASN][]*Member
	asPrefixes  map[ASN][]netip.Prefix
	facByID     map[FacilityID]*Facility
	// routerByID is the dense fast path behind Router (router IDs are
	// assigned sequentially by the generator and loader).
	routerByID []*Router

	lat *Latency
}

// Facility returns the facility with the given id, or nil.
func (w *World) Facility(id FacilityID) *Facility { return w.facByID[id] }

// IXP returns the IXP with the given id, or nil.
func (w *World) IXP(id IXPID) *IXP {
	if int(id) < 0 || int(id) >= len(w.IXPs) {
		return nil
	}
	return w.IXPs[id]
}

// AS returns the AS with the given number, or nil.
func (w *World) AS(asn ASN) *AS { return w.ASes[asn] }

// Router returns the router with the given id, or nil.
func (w *World) Router(id RouterID) *Router {
	if id >= 0 && int(id) < len(w.routerByID) {
		return w.routerByID[id]
	}
	return w.Routers[id]
}

// MembersOf returns the ground-truth membership list of an IXP.
func (w *World) MembersOf(id IXPID) []*Member { return w.memberByIXP[id] }

// NumIfaces returns the total number of router interface addresses in
// the world — the capacity bound consumers interning world addresses
// (peering-LAN and infrastructure alike) should presize for.
func (w *World) NumIfaces() int { return len(w.ifaceOwner) }

// MembershipsOf returns all IXP memberships of an AS.
func (w *World) MembershipsOf(asn ASN) []*Member { return w.asMembers[asn] }

// OwnerOf returns the AS owning an interface address and whether the
// address is known.
func (w *World) OwnerOf(ip netip.Addr) (ASN, bool) {
	a, ok := w.ifaceOwner[ip]
	return a, ok
}

// RouterOf returns the router an interface address belongs to and
// whether the address is known.
func (w *World) RouterOf(ip netip.Addr) (RouterID, bool) {
	r, ok := w.ifaceRouter[ip]
	return r, ok
}

// ASPrefixes returns the infrastructure prefixes originated by an AS.
func (w *World) ASPrefixes(asn ASN) []netip.Prefix { return w.asPrefixes[asn] }

// FacilityLocs returns the coordinates of the IXP's facilities.
func (w *World) FacilityLocs(id IXPID) []geo.Point {
	ix := w.IXP(id)
	if ix == nil {
		return nil
	}
	pts := make([]geo.Point, 0, len(ix.Facilities))
	for _, f := range ix.Facilities {
		if fac := w.Facility(f); fac != nil {
			pts = append(pts, fac.Loc)
		}
	}
	return pts
}

// Latency returns the world's latency oracle.
func (w *World) Latency() *Latency { return w.lat }

// LargestIXPs returns the n largest IXPs by ground-truth member count,
// in decreasing size order.
func (w *World) LargestIXPs(n int) []*IXP {
	ixps := make([]*IXP, len(w.IXPs))
	copy(ixps, w.IXPs)
	sort.SliceStable(ixps, func(i, j int) bool {
		return len(w.MembersOf(ixps[i].ID)) > len(w.MembersOf(ixps[j].ID))
	})
	if n > len(ixps) {
		n = len(ixps)
	}
	return ixps[:n]
}

// CommonFacilities returns the facilities shared by the two id sets.
func CommonFacilities(a, b []FacilityID) []FacilityID {
	set := make(map[FacilityID]bool, len(a))
	for _, f := range a {
		set[f] = true
	}
	var out []FacilityID
	for _, f := range b {
		if set[f] {
			out = append(out, f)
			set[f] = false // dedupe
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// buildIndices populates the lookup maps after generation.
func (w *World) buildIndices() {
	nIfaces := 0
	maxRtr := RouterID(-1)
	for _, r := range w.Routers {
		nIfaces += len(r.Ifaces)
		if r.ID > maxRtr {
			maxRtr = r.ID
		}
	}
	w.ifaceOwner = make(map[netip.Addr]ASN, nIfaces)
	w.ifaceRouter = make(map[netip.Addr]RouterID, nIfaces)
	w.memberByIXP = make(map[IXPID][]*Member, len(w.IXPs))
	w.asMembers = make(map[ASN][]*Member, len(w.ASes))
	w.facByID = make(map[FacilityID]*Facility, len(w.Facilities))
	for _, f := range w.Facilities {
		w.facByID[f.ID] = f
	}
	w.routerByID = make([]*Router, maxRtr+1)
	for _, r := range w.Routers {
		w.routerByID[r.ID] = r
		for _, ip := range r.Ifaces {
			w.ifaceOwner[ip] = r.Owner
			w.ifaceRouter[ip] = r.ID
		}
	}
	for _, m := range w.Members {
		w.memberByIXP[m.IXP] = append(w.memberByIXP[m.IXP], m)
		w.asMembers[m.ASN] = append(w.asMembers[m.ASN], m)
	}
	w.ASNs = w.ASNs[:0]
	for asn := range w.ASes {
		w.ASNs = append(w.ASNs, asn)
	}
	sort.Slice(w.ASNs, func(i, j int) bool { return w.ASNs[i] < w.ASNs[j] })
	w.RouterIDs = w.RouterIDs[:0]
	for id := range w.Routers {
		w.RouterIDs = append(w.RouterIDs, id)
	}
	sort.Slice(w.RouterIDs, func(i, j int) bool { return w.RouterIDs[i] < w.RouterIDs[j] })
}
