package netsim

import "math"

// Config controls world generation. The zero value is not useful;
// start from DefaultConfig.
type Config struct {
	// Seed drives all randomness; identical configs generate identical
	// worlds.
	Seed int64

	// NASes is the number of autonomous systems (excluding resellers).
	NASes int
	// NIXPs is the number of IXPs to generate.
	NIXPs int
	// NResellers is the number of port-reseller organisations.
	NResellers int

	// LargestIXPMembers is the membership target of the biggest IXP;
	// subsequent IXPs shrink following a power law with exponent
	// SizeExponent, floored at MinIXPMembers.
	LargestIXPMembers int
	SizeExponent      float64
	MinIXPMembers     int

	// RemoteShareLargest and RemoteShareSmallest set the ground-truth
	// remote fraction of the largest and smallest IXP; intermediate
	// IXPs interpolate linearly in size rank. IXPs without a reseller
	// program get roughly a third of their interpolated share.
	RemoteShareLargest  float64
	RemoteShareSmallest float64

	// WideAreaIXPs is the number of IXPs whose fabric spans multiple
	// metros (NL-IX/NET-IX-style).
	WideAreaIXPs int
	// FederationPairs is the number of two-sibling IXP federations
	// (DE-CIX-style: same operator, separate exchanges).
	FederationPairs int

	// NoResellerIXPs is the number of IXPs that do not allow port
	// resellers (HKIX-style).
	NoResellerIXPs int

	// Fractions of remote members per access kind (must sum to <= 1;
	// the remainder becomes long-cable). Federation access only applies
	// to federated IXPs.
	ResellerFrac   float64
	FederationFrac float64

	// SubMinPortFrac is the probability that a reseller customer buys a
	// fractional (below Cmin) virtual port. The paper observes 27% of
	// remote peers on 1FE-5FE ports in the control dataset.
	SubMinPortFrac float64

	// ColoResellerFrac is the probability that a reseller customer is
	// nevertheless colocated in an IXP facility (buying a discounted
	// virtual port; the "5% of remote peers present in one IXP
	// facility" artefact of Fig 5).
	ColoResellerFrac float64

	// NearbyRemoteFrac is the probability that a non-colocated remote
	// member sits in the IXP's metro area (Rotterdam-style sub-2ms
	// remotes).
	NearbyRemoteFrac float64

	// PrivateLinkPerFacilityAS is the expected number of private
	// interconnections each colocated AS establishes inside a facility.
	PrivateLinkPerFacilityAS float64

	// TetheredPrivateFrac is the fraction of private interconnects that
	// span facilities (rare "tethered" cross-connects).
	TetheredPrivateFrac float64

	// LGFrac is the fraction of IXPs operating a public looking glass;
	// AtlasPerIXP the mean number of colocated Atlas-style probes.
	LGFrac      float64
	AtlasPerIXP float64
}

// DefaultConfig returns the configuration used by the experiments. At
// the default scale a world holds roughly 36 IXPs, 3000 ASes and 6500
// memberships, matching the order of magnitude of the paper's 30-IXP
// study while keeping generation under a second.
func DefaultConfig() Config {
	return Config{
		Seed:                     1,
		NASes:                    3000,
		NIXPs:                    36,
		NResellers:               12,
		LargestIXPMembers:        850,
		SizeExponent:             0.62,
		MinIXPMembers:            45,
		RemoteShareLargest:       0.42,
		RemoteShareSmallest:      0.16,
		WideAreaIXPs:             5,
		FederationPairs:          2,
		NoResellerIXPs:           3,
		ResellerFrac:             0.72,
		FederationFrac:           0.08,
		SubMinPortFrac:           0.38,
		ColoResellerFrac:         0.17,
		NearbyRemoteFrac:         0.22,
		PrivateLinkPerFacilityAS: 1.6,
		TetheredPrivateFrac:      0.03,
		LGFrac:                   0.62,
		AtlasPerIXP:              2.2,
	}
}

// ScaledConfig returns the default configuration grown by the given
// world-size factor: total memberships (the pipeline's inference
// domain) scale roughly linearly with factor, split between more IXPs
// and larger IXPs (each grows ~sqrt(factor), mirroring how the real
// IXP ecosystem adds exchanges and members at once). The paper studies
// the 30 largest IXPs; ScaledConfig(16) models a world an order of
// magnitude beyond that, for the scaling benchmarks
// (BenchmarkScaleWorld) that keep every PR honest about more than the
// toy world. factor <= 1 returns DefaultConfig unchanged.
func ScaledConfig(factor int) Config {
	c := DefaultConfig()
	if factor <= 1 {
		return c
	}
	root := math.Sqrt(float64(factor))
	scale := func(n int, by float64) int {
		v := int(math.Round(float64(n) * by))
		if v < n {
			v = n
		}
		return v
	}
	// The IXP count is capped by the city roster (one exchange per
	// metro); growth the cap absorbs is redirected into per-IXP
	// membership, so total memberships — the pipeline's inference
	// domain — keep scaling roughly linearly with factor.
	ixpBy := root
	if max := len(DefaultCities()); float64(c.NIXPs)*ixpBy > float64(max) {
		ixpBy = float64(max) / float64(c.NIXPs)
	}
	memberBy := float64(factor) / ixpBy
	c.NASes = scale(c.NASes, float64(factor))
	c.NIXPs = scale(c.NIXPs, ixpBy)
	c.NResellers = scale(c.NResellers, root)
	c.LargestIXPMembers = scale(c.LargestIXPMembers, memberBy)
	c.MinIXPMembers = scale(c.MinIXPMembers, memberBy)
	c.WideAreaIXPs = scale(c.WideAreaIXPs, root)
	c.FederationPairs = scale(c.FederationPairs, root)
	c.NoResellerIXPs = scale(c.NoResellerIXPs, root)
	return c
}

// TinyConfig returns a small world for fast unit tests: ~8 IXPs and
// ~400 ASes.
func TinyConfig() Config {
	c := DefaultConfig()
	c.NASes = 400
	c.NIXPs = 8
	c.NResellers = 4
	c.LargestIXPMembers = 150
	c.MinIXPMembers = 25
	c.WideAreaIXPs = 2
	c.FederationPairs = 1
	c.NoResellerIXPs = 1
	return c
}
