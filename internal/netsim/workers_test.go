package netsim

import (
	"bytes"
	"runtime"
	"testing"
)

// TestGenerateWorkersByteIdentical pins the sharded-RNG generation
// contract: the same seed must produce a byte-identical world for
// every worker count, because all randomness is keyed by (seed, stage,
// entity) and shared-resource assignment is a serial realization pass.
func TestGenerateWorkersByteIdentical(t *testing.T) {
	cfgs := map[string]Config{"tiny": TinyConfig(), "default": DefaultConfig()}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 4, runtime.NumCPU()} {
				w, err := GenerateWorkers(cfg, workers)
				if err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := w.Save(&buf); err != nil {
					t.Fatal(err)
				}
				if ref == nil {
					ref = buf.Bytes()
				} else if !bytes.Equal(ref, buf.Bytes()) {
					t.Fatalf("workers=%d world differs from workers=1 (%d vs %d bytes)",
						workers, buf.Len(), len(ref))
				}
			}
		})
	}
}

// TestGenerateWorkersSeedSensitivity guards against a degenerate
// stream-keying bug (every entity on one stream): different seeds must
// produce different worlds.
func TestGenerateWorkersSeedSensitivity(t *testing.T) {
	cfg := TinyConfig()
	w1, err := GenerateWorkers(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	w2, err := GenerateWorkers(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b1, b2 bytes.Buffer
	if err := w1.Save(&b1); err != nil {
		t.Fatal(err)
	}
	if err := w2.Save(&b2); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("seeds 1 and 2 generated identical worlds")
	}
}
