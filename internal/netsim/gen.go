package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"

	"rpeer/internal/geo"
	"rpeer/internal/ipam"
)

// Generate builds a world from the configuration. Identical configs
// produce identical worlds.
func Generate(cfg Config) (*World, error) {
	if cfg.NASes <= 0 || cfg.NIXPs <= 0 {
		return nil, fmt.Errorf("netsim: invalid config: NASes=%d NIXPs=%d", cfg.NASes, cfg.NIXPs)
	}
	g := &gen{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		w:       &World{Cfg: cfg, ASes: make(map[ASN]*AS), Routers: make(map[RouterID]*Router)},
		peering: ipam.MustNew(netip.MustParsePrefix("185.0.0.0/10")),
		mgmt:    ipam.MustNew(netip.MustParsePrefix("186.0.0.0/10")),
		infra:   ipam.MustNew(netip.MustParsePrefix("56.0.0.0/6")),
		routers: make(map[routerKey]RouterID),
	}
	g.w.Cities = DefaultCities()
	g.w.lat = newLatency(g.w, cfg.Seed)
	g.w.asPrefixes = make(map[ASN][]netip.Prefix)

	// Per-AS infrastructure prefixes default to /20 but shrink for
	// scaled worlds so the /6 pool holds ~4 prefixes per AS (ASes that
	// outgrow one prefix allocate more on demand in asAddr). The
	// default configuration stays at /20, keeping default worlds
	// byte-identical across scales of this knob.
	g.infraBits = 20
	for g.infraBits < 26 && (1<<(g.infraBits-6)) < 4*cfg.NASes {
		g.infraBits++
	}

	g.buildFacilities()
	if err := g.buildIXPs(); err != nil {
		return nil, err
	}
	g.buildResellers()
	g.buildASes()
	if err := g.buildMemberships(); err != nil {
		return nil, err
	}
	g.buildPrivateLinks()
	g.w.buildIndices()
	return g.w, nil
}

type routerKey struct {
	asn ASN
	fac FacilityID // -1 = the AS's home router
}

type gen struct {
	cfg Config
	rng *rand.Rand
	w   *World

	peering *ipam.Allocator
	mgmt    *ipam.Allocator
	infra   *ipam.Allocator

	ixpLANs  []netip.Prefix // per IXP, parallel to w.IXPs
	routers  map[routerKey]RouterID
	nextRtr  RouterID
	cityFacs map[string][]FacilityID // city name -> facilities
	homeFac  map[ASN]FacilityID      // chosen home facility per AS (-1 = off-net)
	// infraBits is the per-AS infrastructure prefix length (see
	// Generate; config-derived so scaled worlds fit the address pool).
	infraBits int
}

// homeFacility decides, once per AS, whether the AS's home router sits
// inside a colocation facility in its home city (common for serious
// networks: they rent a rack downtown) or fully off-net. Giving remote
// members real non-IXP facility presence is what lets Step 3 positively
// confirm remoteness and Step 5's voting localise them.
func (g *gen) homeFacility(a *AS) FacilityID {
	if g.homeFac == nil {
		g.homeFac = make(map[ASN]FacilityID)
	}
	if f, ok := g.homeFac[a.ASN]; ok {
		return f
	}
	f := FacilityID(-1)
	if facs := g.cityFacs[a.HomeCity]; len(facs) > 0 && g.rng.Float64() < 0.6 {
		f = facs[g.rng.Intn(len(facs))]
	}
	g.homeFac[a.ASN] = f
	return f
}

// ---------------------------------------------------------------------------
// Facilities

func (g *gen) buildFacilities() {
	g.cityFacs = make(map[string][]FacilityID)
	g.w.facByID = make(map[FacilityID]*Facility)
	var id FacilityID
	for _, c := range g.w.Cities {
		n := 1 + int(c.Weight*0.55+g.rng.Float64()*1.5)
		if n > 7 {
			n = 7
		}
		for i := 0; i < n; i++ {
			loc := geo.Point{
				Lat: c.Loc.Lat + (g.rng.Float64()-0.5)*0.20,
				Lon: c.Loc.Lon + (g.rng.Float64()-0.5)*0.25,
			}
			f := &Facility{
				ID:      id,
				Name:    fmt.Sprintf("%s DC%d", c.Name, i+1),
				City:    c.Name,
				Country: c.Country,
				Loc:     loc,
			}
			g.w.Facilities = append(g.w.Facilities, f)
			g.w.facByID[id] = f
			g.cityFacs[c.Name] = append(g.cityFacs[c.Name], id)
			id++
		}
	}
}

// ---------------------------------------------------------------------------
// IXPs

func (g *gen) buildIXPs() error {
	// Host cities: order by weight (descending, stable), each city hosts
	// at most one IXP until cities run out.
	order := make([]int, len(g.w.Cities))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return g.w.Cities[order[a]].Weight > g.w.Cities[order[b]].Weight
	})

	n := g.cfg.NIXPs
	if n > len(order) {
		n = len(order)
	}
	// Choose which size-ranks become wide-area, federated, reseller-free.
	wide := make(map[int]bool)
	for i := 0; i < g.cfg.WideAreaIXPs && 3+2*i < n; i++ {
		wide[3+2*i] = true // ranks 3,5,7,... (not the two flagships)
	}
	noReseller := make(map[int]bool)
	for i := 0; i < g.cfg.NoResellerIXPs; i++ {
		r := 4 + 5*i
		if r < n {
			noReseller[r] = true
		}
	}

	for i := 0; i < n; i++ {
		city := g.w.Cities[order[i]]
		target := g.sizeTarget(i)
		// Size the peering LAN to the membership target (scaled worlds
		// outgrow a fixed /22): at least /22, widened until the target
		// plus a 12.5% slack (route server, federation joiners) fits.
		// The default world stays within /22, so default-scale worlds
		// are byte-identical to the fixed-size era.
		bits := 22
		for bits > 10 && (1<<(32-bits))-2 < target+target/8+16 {
			bits--
		}
		lan, err := g.peering.AllocPrefix(bits)
		if err != nil {
			return fmt.Errorf("netsim: peering LAN for IXP %d: %w", i, err)
		}
		mlan, err := g.mgmt.AllocPrefix(24)
		if err != nil {
			return fmt.Errorf("netsim: mgmt LAN for IXP %d: %w", i, err)
		}
		rs, err := g.peering.AllocAddr(lan)
		if err != nil {
			return err
		}
		nfac := 1 + target/70
		cityFacs := g.cityFacs[city.Name]
		if nfac > len(cityFacs) {
			nfac = len(cityFacs)
		}
		facs := append([]FacilityID(nil), cityFacs[:nfac]...)

		ix := &IXP{
			ID:              IXPID(i),
			Name:            fmt.Sprintf("%s-IX", city.Name),
			PeeringLAN:      lan,
			MgmtLAN:         mlan,
			RouteServer:     rs,
			Facilities:      facs,
			MinPortMbps:     1000,
			PortOptionsMbps: []int{1000, 10000},
			AllowsResellers: !noReseller[i],
			HasLG:           g.rng.Float64() < g.cfg.LGFrac,
			AtlasProbes:     poisson(g.rng, g.cfg.AtlasPerIXP),
		}
		if i < 8 { // the biggest exchanges sell 100GE
			ix.PortOptionsMbps = append(ix.PortOptionsMbps, 100000)
		}
		if wide[i] {
			g.makeWideArea(ix, city)
			ix.Name = fmt.Sprintf("%s-WideIX", city.Name)
		}
		g.w.IXPs = append(g.w.IXPs, ix)
		g.ixpLANs = append(g.ixpLANs, lan)
	}

	// Federations: pair up distinct-city IXPs of middling rank.
	fed := 1
	for p := 0; p < g.cfg.FederationPairs; p++ {
		a, b := 1+3*p, 9+3*p
		if b >= len(g.w.IXPs) {
			break
		}
		g.w.IXPs[a].FederationID = fed
		g.w.IXPs[b].FederationID = fed
		fed++
	}
	// The two flagship IXPs always have a looking glass: the study's
	// anchor VPs.
	for i := 0; i < 2 && i < len(g.w.IXPs); i++ {
		g.w.IXPs[i].HasLG = true
	}
	return nil
}

// makeWideArea spreads an IXP's fabric across facilities in 5-14 other
// cities (one facility each), NET-IX/NL-IX style.
func (g *gen) makeWideArea(ix *IXP, home City) {
	extra := 5 + g.rng.Intn(10)
	tried := 0
	for len(ix.Facilities) < len(g.cityFacs[home.Name])+extra && tried < 200 {
		tried++
		c := g.w.Cities[g.rng.Intn(len(g.w.Cities))]
		if c.Name == home.Name {
			continue
		}
		facs := g.cityFacs[c.Name]
		if len(facs) == 0 {
			continue
		}
		f := facs[g.rng.Intn(len(facs))]
		if containsFac(ix.Facilities, f) {
			continue
		}
		ix.Facilities = append(ix.Facilities, f)
	}
	ix.WideArea = true
}

func containsFac(s []FacilityID, f FacilityID) bool {
	for _, x := range s {
		if x == f {
			return true
		}
	}
	return false
}

// sizeTarget returns the membership target for size rank i.
func (g *gen) sizeTarget(i int) int {
	t := float64(g.cfg.LargestIXPMembers) / math.Pow(float64(i+1), g.cfg.SizeExponent)
	if t < float64(g.cfg.MinIXPMembers) {
		return g.cfg.MinIXPMembers
	}
	return int(t)
}

// ---------------------------------------------------------------------------
// Resellers

func (g *gen) buildResellers() {
	// Round-robin over reseller-friendly IXPs so that every such IXP is
	// served by at least one reseller.
	var friendly []*IXP
	for _, ix := range g.w.IXPs {
		if ix.AllowsResellers {
			friendly = append(friendly, ix)
		}
	}
	for i := 0; i < g.cfg.NResellers; i++ {
		asn := ASN(58000 + i)
		city := g.w.Cities[g.rng.Intn(len(g.w.Cities))]
		r := &AS{
			ASN:         asn,
			Name:        fmt.Sprintf("Reseller-%d L2 Networks", i+1),
			Country:     city.Country,
			HomeCity:    city.Name,
			HomeLoc:     city.Loc,
			Tier:        2,
			TrafficMbps: 5000 + g.rng.Float64()*40000,
			IsReseller:  true,
		}
		// POPs: 3-10 facilities across reseller-friendly IXPs.
		npops := 3 + g.rng.Intn(8)
		for p := 0; p < npops && len(friendly) > 0; p++ {
			ix := friendly[(i+p*g.cfg.NResellers)%len(friendly)]
			f := ix.Facilities[g.rng.Intn(len(ix.Facilities))]
			if !containsFac(r.ResellerPOPs, f) {
				r.ResellerPOPs = append(r.ResellerPOPs, f)
				r.Facilities = append(r.Facilities, f)
			}
		}
		g.w.ASes[asn] = r
		g.w.Resellers = append(g.w.Resellers, asn)
	}
}

// resellersAt returns resellers with a POP at one of the IXP's
// facilities; if none (possible for small reseller counts), any
// reseller is eligible (it will haul the circuit to its nearest POP).
func (g *gen) resellersAt(ix *IXP) []ASN {
	var out []ASN
	for _, asn := range g.w.Resellers {
		r := g.w.ASes[asn]
		for _, pop := range r.ResellerPOPs {
			if containsFac(ix.Facilities, pop) {
				out = append(out, asn)
				break
			}
		}
	}
	if len(out) == 0 {
		out = append(out, g.w.Resellers...)
	}
	return out
}

// ---------------------------------------------------------------------------
// ASes

func (g *gen) buildASes() {
	// Cumulative city weights for weighted home-city sampling.
	cum := make([]float64, len(g.w.Cities))
	total := 0.0
	for i, c := range g.w.Cities {
		total += c.Weight
		cum[i] = total
	}
	pickCity := func() City {
		x := g.rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(g.w.Cities) {
			i = len(g.w.Cities) - 1
		}
		return g.w.Cities[i]
	}

	var tier1s []ASN
	var tier2s []ASN
	for i := 0; i < g.cfg.NASes; i++ {
		asn := ASN(100 + i)
		city := pickCity()
		tier := 3
		switch {
		case i < 12:
			tier = 1
		case g.rng.Float64() < 0.08:
			tier = 2
		}
		mu := map[int]float64{1: 12.2, 2: 9.9, 3: 6.7}[tier]
		traffic := math.Exp(mu + g.rng.NormFloat64()*1.1)
		a := &AS{
			ASN:      asn,
			Name:     fmt.Sprintf("AS%d-%sNet", asn, city.Name),
			Country:  city.Country,
			HomeCity: city.Name,
			HomeLoc: geo.Point{
				Lat: city.Loc.Lat + (g.rng.Float64()-0.5)*0.3,
				Lon: city.Loc.Lon + (g.rng.Float64()-0.5)*0.3,
			},
			Tier:        tier,
			TrafficMbps: traffic,
		}
		g.w.ASes[asn] = a
		switch tier {
		case 1:
			tier1s = append(tier1s, asn)
		case 2:
			tier2s = append(tier2s, asn)
		}
	}
	// Transit relationships.
	for i := 0; i < g.cfg.NASes; i++ {
		asn := ASN(100 + i)
		a := g.w.ASes[asn]
		switch a.Tier {
		case 2:
			n := 1 + g.rng.Intn(3)
			for j := 0; j < n; j++ {
				p := tier1s[g.rng.Intn(len(tier1s))]
				if p != asn && !containsASN(a.Providers, p) {
					a.Providers = append(a.Providers, p)
				}
			}
		case 3:
			n := 1 + g.rng.Intn(2)
			for j := 0; j < n; j++ {
				var p ASN
				if len(tier2s) > 0 && g.rng.Float64() < 0.85 {
					p = tier2s[g.rng.Intn(len(tier2s))]
				} else {
					p = tier1s[g.rng.Intn(len(tier1s))]
				}
				if p != asn && !containsASN(a.Providers, p) {
					a.Providers = append(a.Providers, p)
				}
			}
		}
	}
}

func containsASN(s []ASN, a ASN) bool {
	for _, x := range s {
		if x == a {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Memberships

func (g *gen) buildMemberships() error {
	// Peering propensity: traffic^0.4, tier-boosted.
	weights := make([]float64, g.cfg.NASes)
	asns := make([]ASN, g.cfg.NASes)
	for i := 0; i < g.cfg.NASes; i++ {
		asn := ASN(100 + i)
		a := g.w.ASes[asn]
		w := math.Pow(a.TrafficMbps, 0.4)
		if a.Tier == 2 {
			w *= 1.6
		}
		asns[i] = asn
		weights[i] = w
	}

	nRanked := len(g.w.IXPs)
	for rank, ix := range g.w.IXPs {
		target := g.sizeTarget(rank)
		frac := 0.0
		if nRanked > 1 {
			frac = float64(rank) / float64(nRanked-1)
		}
		share := g.cfg.RemoteShareLargest + frac*(g.cfg.RemoteShareSmallest-g.cfg.RemoteShareLargest)
		if !ix.AllowsResellers {
			share *= 0.35
		}
		nRemote := int(math.Round(float64(target) * share))
		nLocal := target - nRemote

		members := g.sampleMembers(ix, asns, weights, target)
		if len(members) < target {
			target = len(members)
			if nRemote > target {
				nRemote = target
			}
			nLocal = target - nRemote
		}
		// Nearby ASes make better locals: sort candidates by distance to
		// the IXP home and take locals from the near end (with shuffling
		// inside bands to avoid determinism artifacts).
		home := g.w.Facility(ix.Facilities[0]).Loc
		sort.SliceStable(members, func(a, b int) bool {
			da := geo.HaversineKm(g.w.ASes[members[a]].HomeLoc, home)
			db := geo.HaversineKm(g.w.ASes[members[b]].HomeLoc, home)
			return da < db
		})
		locals := members[:nLocal]
		remotes := members[nLocal:]
		// A slice of faraway ASes still peers locally (global carriers
		// build out to big exchanges): swap ~15% of locals with remotes.
		for i := 0; i < len(locals)*15/100 && i < len(remotes); i++ {
			j := len(locals) - 1 - i
			locals[j], remotes[i] = remotes[i], locals[j]
		}

		for _, asn := range locals {
			if err := g.addLocalMember(ix, asn); err != nil {
				return err
			}
		}
		for _, asn := range remotes {
			if err := g.addRemoteMember(ix, asn); err != nil {
				return err
			}
		}
	}
	return nil
}

// sampleMembers draws up to n distinct ASes by propensity weight.
func (g *gen) sampleMembers(ix *IXP, asns []ASN, weights []float64, n int) []ASN {
	chosen := make(map[ASN]bool, n)
	var out []ASN
	total := 0.0
	cum := make([]float64, len(weights))
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	attempts := 0
	for len(out) < n && attempts < n*30 {
		attempts++
		x := g.rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(asns) {
			i = len(asns) - 1
		}
		asn := asns[i]
		if chosen[asn] {
			continue
		}
		chosen[asn] = true
		out = append(out, asn)
	}
	return out
}

// getRouter returns (creating if needed) the AS's router at a facility,
// or its home router when fac == -1. New routers get one infrastructure
// interface from the owner's prefix.
func (g *gen) getRouter(asn ASN, fac FacilityID, loc geo.Point) (*Router, error) {
	key := routerKey{asn, fac}
	if id, ok := g.routers[key]; ok {
		return g.w.Routers[id], nil
	}
	id := g.nextRtr
	g.nextRtr++
	r := &Router{
		ID:       id,
		Owner:    asn,
		Facility: fac,
		Loc:      loc,
		IPIDInit: uint32(g.rng.Intn(65536)),
		IPIDRate: 40 + g.rng.Float64()*460,
	}
	ip, err := g.asAddr(asn)
	if err != nil {
		return nil, err
	}
	r.Ifaces = append(r.Ifaces, ip)
	g.w.Routers[id] = r
	g.routers[key] = id
	// Ground-truth colocation record.
	if fac >= 0 {
		a := g.w.ASes[asn]
		if !containsFac(a.Facilities, fac) {
			a.Facilities = append(a.Facilities, fac)
		}
	}
	return r, nil
}

// asAddr allocates an address from the AS's infrastructure prefix,
// allocating prefixes on demand.
func (g *gen) asAddr(asn ASN) (netip.Addr, error) {
	for _, p := range g.w.asPrefixes[asn] {
		if ip, err := g.infra.AllocAddr(p); err == nil {
			return ip, nil
		}
	}
	p, err := g.infra.AllocPrefix(g.infraBits)
	if err != nil {
		return netip.Addr{}, fmt.Errorf("netsim: infra prefix for AS%d: %w", asn, err)
	}
	g.w.asPrefixes[asn] = append(g.w.asPrefixes[asn], p)
	return g.infra.AllocAddr(p)
}

func (g *gen) addLocalMember(ix *IXP, asn ASN) error {
	a := g.w.ASes[asn]
	// Pick the IXP facility closest to the AS home (matters for
	// wide-area IXPs: members patch in at their nearest site).
	best := ix.Facilities[0]
	bestD := math.Inf(1)
	for _, f := range ix.Facilities {
		d := geo.HaversineKm(a.HomeLoc, g.w.Facility(f).Loc)
		if d < bestD {
			bestD, best = d, f
		}
	}
	r, err := g.getRouter(asn, best, g.w.Facility(best).Loc)
	if err != nil {
		return err
	}
	ip, err := g.peering.AllocAddr(ix.PeeringLAN)
	if err != nil {
		return fmt.Errorf("netsim: %s peering LAN exhausted: %w", ix.Name, err)
	}
	r.Ifaces = append(r.Ifaces, ip)
	r.IXPs = appendIXP(r.IXPs, ix.ID)
	g.w.Members = append(g.w.Members, &Member{
		ASN: asn, IXP: ix.ID, Iface: ip, Router: r.ID,
		PortMbps: g.localPort(ix), Kind: ConnLocal,
	})
	return nil
}

func (g *gen) addRemoteMember(ix *IXP, asn ASN) error {
	a := g.w.ASes[asn]
	kind := ConnLongCable
	u := g.rng.Float64()
	switch {
	case ix.AllowsResellers && u < g.cfg.ResellerFrac:
		kind = ConnReseller
	case ix.FederationID != 0 && u < g.cfg.ResellerFrac+g.cfg.FederationFrac:
		kind = ConnFederation
	}

	var r *Router
	var err error
	var reseller ASN
	var viaFed IXPID

	switch kind {
	case ConnReseller:
		rs := g.resellersAt(ix)
		reseller = rs[g.rng.Intn(len(rs))]
		if g.rng.Float64() < g.cfg.ColoResellerFrac {
			// Colocated-but-reseller: router in an IXP facility, virtual
			// port anyway (discounted fractional capacity).
			f := ix.Facilities[g.rng.Intn(len(ix.Facilities))]
			r, err = g.getRouter(asn, f, g.w.Facility(f).Loc)
		} else {
			r, err = g.remoteRouter(ix, a)
		}
	case ConnFederation:
		sib := g.federationSibling(ix)
		if sib == nil {
			kind = ConnLongCable
			r, err = g.homeRouter(ix, a)
			break
		}
		viaFed = sib.ID
		f := sib.Facilities[g.rng.Intn(len(sib.Facilities))]
		r, err = g.getRouter(asn, f, g.w.Facility(f).Loc)
	default:
		r, err = g.remoteRouter(ix, a)
	}
	if err != nil {
		return err
	}

	ip, err := g.peering.AllocAddr(ix.PeeringLAN)
	if err != nil {
		return fmt.Errorf("netsim: %s peering LAN exhausted: %w", ix.Name, err)
	}
	r.Ifaces = append(r.Ifaces, ip)
	r.IXPs = appendIXP(r.IXPs, ix.ID)
	g.w.Members = append(g.w.Members, &Member{
		ASN: asn, IXP: ix.ID, Iface: ip, Router: r.ID,
		PortMbps: g.remotePort(ix, kind), Kind: kind,
		Reseller: reseller, ViaFed: viaFed,
	})
	return nil
}

// homeRouter returns the AS's home router for a remote membership at
// ix: either in a non-IXP facility of the AS's home city, or off-net at
// the AS's home location. A home facility that happens to belong to the
// IXP itself is not used (a member racked next to the IXP switch would
// simply patch in locally).
func (g *gen) homeRouter(ix *IXP, a *AS) (*Router, error) {
	f := g.homeFacility(a)
	if f >= 0 && !containsFac(ix.Facilities, f) {
		return g.getRouter(a.ASN, f, g.w.Facility(f).Loc)
	}
	return g.getRouter(a.ASN, -1, a.HomeLoc)
}

// remoteRouter places the router of a remote (non-colocated)
// membership. With probability NearbyRemoteFrac the member connects
// from a regional POP in a nearby city (the paper's Rotterdam-to-
// Amsterdam case: sub-2ms RTT, yet remote); otherwise from home.
func (g *gen) remoteRouter(ix *IXP, a *AS) (*Router, error) {
	if g.rng.Float64() < g.cfg.NearbyRemoteFrac {
		if f, ok := g.nearbyFacility(ix); ok {
			return g.getRouter(a.ASN, f, g.w.Facility(f).Loc)
		}
	}
	return g.homeRouter(ix, a)
}

// nearbyFacility picks a facility in a different metro 20-400 km from
// the IXP's main site, excluding the IXP's own facilities.
func (g *gen) nearbyFacility(ix *IXP) (FacilityID, bool) {
	home := g.w.Facility(ix.Facilities[0]).Loc
	var cands []FacilityID
	for _, f := range g.w.Facilities {
		if containsFac(ix.Facilities, f.ID) {
			continue
		}
		d := geo.HaversineKm(home, f.Loc)
		if d > geo.MetroSeparationKm && d < 400 {
			cands = append(cands, f.ID)
		}
	}
	if len(cands) == 0 {
		return -1, false
	}
	return cands[g.rng.Intn(len(cands))], true
}

func (g *gen) federationSibling(ix *IXP) *IXP {
	if ix.FederationID == 0 {
		return nil
	}
	for _, other := range g.w.IXPs {
		if other.ID != ix.ID && other.FederationID == ix.FederationID {
			return other
		}
	}
	return nil
}

func appendIXP(s []IXPID, id IXPID) []IXPID {
	for _, x := range s {
		if x == id {
			return s
		}
	}
	return append(s, id)
}

// localPort samples a physical port capacity from the IXP price list.
func (g *gen) localPort(ix *IXP) int {
	opts := ix.PortOptionsMbps
	u := g.rng.Float64()
	switch {
	case len(opts) >= 3 && u < 0.12:
		return opts[2] // 100GE, flagship ports: local peers only
	case u < 0.55:
		return opts[0]
	default:
		return opts[1]
	}
}

// remotePort samples the port capacity of a remote member. Only
// reseller customers can hold fractional (sub-Cmin) virtual ports.
func (g *gen) remotePort(ix *IXP, kind ConnKind) int {
	if kind == ConnReseller && g.rng.Float64() < g.cfg.SubMinPortFrac {
		fr := []int{100, 200, 500}
		return fr[g.rng.Intn(len(fr))]
	}
	if g.rng.Float64() < 0.75 {
		return ix.PortOptionsMbps[0]
	}
	return ix.PortOptionsMbps[1]
}

// ---------------------------------------------------------------------------
// Private interconnections

func (g *gen) buildPrivateLinks() {
	// Routers per facility.
	perFac := make(map[FacilityID][]RouterID)
	var ids []RouterID
	for id := range g.w.Routers {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		r := g.w.Routers[id]
		if r.Facility >= 0 {
			perFac[r.Facility] = append(perFac[r.Facility], id)
		}
	}
	var facs []FacilityID
	for f := range perFac {
		facs = append(facs, f)
	}
	sort.Slice(facs, func(i, j int) bool { return facs[i] < facs[j] })

	seen := make(map[[2]RouterID]bool)
	for _, f := range facs {
		rs := perFac[f]
		if len(rs) < 2 {
			continue
		}
		for _, a := range rs {
			n := poisson(g.rng, g.cfg.PrivateLinkPerFacilityAS)
			for k := 0; k < n; k++ {
				var b RouterID
				fac := f
				if g.rng.Float64() < g.cfg.TetheredPrivateFrac && len(facs) > 1 {
					// Tethered interconnect to another facility.
					of := facs[g.rng.Intn(len(facs))]
					cands := perFac[of]
					b = cands[g.rng.Intn(len(cands))]
					fac = -1
				} else {
					b = rs[g.rng.Intn(len(rs))]
				}
				ra, rb := g.w.Routers[a], g.w.Routers[b]
				if a == b || ra.Owner == rb.Owner {
					continue
				}
				key := [2]RouterID{a, b}
				if a > b {
					key = [2]RouterID{b, a}
				}
				if seen[key] {
					continue
				}
				seen[key] = true
				ipa, err1 := g.asAddr(ra.Owner)
				ipb, err2 := g.asAddr(rb.Owner)
				if err1 != nil || err2 != nil {
					continue
				}
				ra.Ifaces = append(ra.Ifaces, ipa)
				rb.Ifaces = append(rb.Ifaces, ipb)
				g.w.Private = append(g.w.Private, PrivateLink{
					A: a, B: b, AIface: ipa, BIface: ipb, Facility: fac,
				})
			}
		}
	}
}

// poisson draws a Poisson-distributed integer with the given mean using
// Knuth's method (fine for small means).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 1000 {
			return k
		}
	}
}
