package netsim

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"rpeer/internal/geo"
)

var defaultWorld *World

func world(t testing.TB) *World {
	t.Helper()
	if defaultWorld == nil {
		w, err := Generate(DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		defaultWorld = w
	}
	return defaultWorld
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{}); err == nil {
		t.Error("want error for zero config")
	}
}

func TestGenerateBasicShape(t *testing.T) {
	w := world(t)
	if len(w.IXPs) != w.Cfg.NIXPs {
		t.Errorf("IXPs = %d, want %d", len(w.IXPs), w.Cfg.NIXPs)
	}
	if got := len(w.ASes); got < w.Cfg.NASes {
		t.Errorf("ASes = %d, want >= %d (plus resellers)", got, w.Cfg.NASes)
	}
	if len(w.Members) < 3000 {
		t.Errorf("memberships = %d, want a few thousand", len(w.Members))
	}
	if len(w.Facilities) < 60 {
		t.Errorf("facilities = %d, want >= 60", len(w.Facilities))
	}
	if len(w.Private) < 500 {
		t.Errorf("private links = %d, want >= 500", len(w.Private))
	}
}

func TestMembershipConsistency(t *testing.T) {
	w := world(t)
	for _, m := range w.Members {
		ix := w.IXP(m.IXP)
		if ix == nil {
			t.Fatalf("member %d of unknown IXP %d", m.ASN, m.IXP)
		}
		if !ix.PeeringLAN.Contains(m.Iface) {
			t.Errorf("member AS%d iface %v outside %s LAN %v", m.ASN, m.Iface, ix.Name, ix.PeeringLAN)
		}
		r := w.Router(m.Router)
		if r == nil {
			t.Fatalf("member AS%d references unknown router", m.ASN)
		}
		if r.Owner != m.ASN {
			t.Errorf("member AS%d rides router owned by AS%d", m.ASN, r.Owner)
		}
		if owner, ok := w.OwnerOf(m.Iface); !ok || owner != m.ASN {
			t.Errorf("iface owner index broken for %v", m.Iface)
		}
		if rid, ok := w.RouterOf(m.Iface); !ok || rid != m.Router {
			t.Errorf("iface router index broken for %v", m.Iface)
		}
		if m.Kind == ConnReseller && m.Reseller == 0 {
			t.Error("reseller membership without reseller ASN")
		}
	}
}

func TestGroundTruthLocalMeansColocated(t *testing.T) {
	w := world(t)
	for _, m := range w.Members {
		if m.Kind != ConnLocal {
			continue
		}
		r := w.Router(m.Router)
		ix := w.IXP(m.IXP)
		if r.Facility < 0 {
			t.Fatalf("local member AS%d at %s has off-facility router", m.ASN, ix.Name)
		}
		if !containsFac(ix.Facilities, r.Facility) {
			t.Errorf("local member AS%d router at facility %d, not an %s facility", m.ASN, r.Facility, ix.Name)
		}
		as := w.AS(m.ASN)
		if len(CommonFacilities(as.Facilities, ix.Facilities)) == 0 {
			t.Errorf("local member AS%d shares no facility with %s", m.ASN, ix.Name)
		}
	}
}

func TestPortCapacityRules(t *testing.T) {
	w := world(t)
	subMinRemote := 0
	remote := 0
	for _, m := range w.Members {
		ix := w.IXP(m.IXP)
		if m.Kind == ConnLocal {
			if m.PortMbps < ix.MinPortMbps {
				t.Errorf("local member AS%d of %s on fractional port %d Mbps", m.ASN, ix.Name, m.PortMbps)
			}
		} else {
			remote++
			if m.PortMbps < ix.MinPortMbps {
				subMinRemote++
				if m.Kind != ConnReseller {
					t.Errorf("sub-Cmin port on non-reseller membership (%s)", m.Kind)
				}
			}
			if m.PortMbps >= 100000 {
				t.Errorf("remote member AS%d holds a 100GE port", m.ASN)
			}
		}
	}
	frac := float64(subMinRemote) / float64(remote)
	// Paper Fig 4: 27% of remote peers on fractional ports. Reseller
	// customers are ~72% of remotes and ~38% of them buy fractional.
	if frac < 0.15 || frac > 0.42 {
		t.Errorf("fractional-port share of remotes = %.2f, want ~0.27±0.15", frac)
	}
}

func TestRemoteShareTargets(t *testing.T) {
	w := world(t)
	totRemote, tot := 0, 0
	ixps := w.LargestIXPs(30)
	below10 := 0
	for _, ix := range ixps {
		r, n := 0, 0
		for _, m := range w.MembersOf(ix.ID) {
			n++
			if m.Remote() {
				r++
			}
		}
		tot += n
		totRemote += r
		if float64(r) < 0.10*float64(n) {
			below10++
		}
	}
	overall := float64(totRemote) / float64(tot)
	if overall < 0.20 || overall > 0.40 {
		t.Errorf("overall remote share = %.2f, want ~0.28", overall)
	}
	// Paper: >90% of IXPs have >10% remote members.
	if below10 > 4 {
		t.Errorf("%d of 30 IXPs below 10%% remote share, want <= 4", below10)
	}
	// The two flagships approach 40%.
	for _, ix := range ixps[:2] {
		r, n := 0, 0
		for _, m := range w.MembersOf(ix.ID) {
			n++
			if m.Remote() {
				r++
			}
		}
		share := float64(r) / float64(n)
		if share < 0.30 || share > 0.52 {
			t.Errorf("flagship %s remote share = %.2f, want ~0.40", ix.Name, share)
		}
	}
}

func TestWideAreaIXPs(t *testing.T) {
	w := world(t)
	nWide := 0
	for _, ix := range w.IXPs {
		if !ix.WideArea {
			continue
		}
		nWide++
		locs := w.FacilityLocs(ix.ID)
		d, _, _ := geo.MaxPairwiseKm(locs)
		if d <= geo.MetroSeparationKm {
			t.Errorf("wide-area IXP %s has max facility spread %.0f km", ix.Name, d)
		}
	}
	if nWide != w.Cfg.WideAreaIXPs {
		t.Errorf("wide-area IXPs = %d, want %d", nWide, w.Cfg.WideAreaIXPs)
	}
}

func TestFederationMembers(t *testing.T) {
	w := world(t)
	found := 0
	for _, m := range w.Members {
		if m.Kind != ConnFederation {
			continue
		}
		found++
		sib := w.IXP(m.ViaFed)
		if sib == nil {
			t.Fatalf("federation member AS%d without sibling IXP", m.ASN)
		}
		if sib.FederationID == 0 || sib.FederationID != w.IXP(m.IXP).FederationID {
			t.Errorf("federation member AS%d: sibling %s not in same federation", m.ASN, sib.Name)
		}
		r := w.Router(m.Router)
		if r.Facility < 0 || !containsFac(sib.Facilities, r.Facility) {
			t.Errorf("federation member AS%d router not at sibling facility", m.ASN)
		}
	}
	if found == 0 {
		t.Error("no federation memberships generated")
	}
}

func TestMultiIXPRoutersExist(t *testing.T) {
	w := world(t)
	multi := 0
	for _, id := range w.RouterIDs {
		if len(w.Routers[id].IXPs) > 1 {
			multi++
		}
	}
	if multi < 50 {
		t.Errorf("multi-IXP routers = %d, want >= 50", multi)
	}
}

func TestLocalRTTBelow1msMostly(t *testing.T) {
	w := world(t)
	lat := w.Latency()
	// For every IXP with an LG, the RTT from the route-server facility
	// to local members must be sub-millisecond in ~99% of cases when
	// they share the facility metro.
	ix := w.LargestIXPs(1)[0]
	vpLoc := w.Facility(ix.Facilities[0]).Loc
	below1, n := 0, 0
	for _, m := range w.MembersOf(ix.ID) {
		if m.Kind != ConnLocal {
			continue
		}
		r := w.Router(m.Router)
		rtt := lat.PointToRouterRTT(vpLoc, 12345, r)
		n++
		if rtt < 1.0 {
			below1++
		}
	}
	if n == 0 {
		t.Fatal("no local members at flagship IXP")
	}
	if frac := float64(below1) / float64(n); frac < 0.93 {
		t.Errorf("only %.2f of flagship locals below 1ms", frac)
	}
}

func TestLatencySampleNeverBelowBase(t *testing.T) {
	w := world(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 1000; i++ {
		base := rng.Float64() * 50
		if s := w.Latency().Sample(rng, base); s < base {
			t.Fatalf("sample %v below base %v", s, base)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := TinyConfig()
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Members) != len(w2.Members) {
		t.Fatalf("member count differs: %d vs %d", len(w1.Members), len(w2.Members))
	}
	for i := range w1.Members {
		a, b := w1.Members[i], w2.Members[i]
		if a.ASN != b.ASN || a.IXP != b.IXP || a.Iface != b.Iface || a.Kind != b.Kind || a.PortMbps != b.PortMbps {
			t.Fatalf("member %d differs: %+v vs %+v", i, a, b)
		}
	}
	if len(w1.Private) != len(w2.Private) {
		t.Fatalf("private link count differs: %d vs %d", len(w1.Private), len(w2.Private))
	}
}

func TestInterFacilityDelays(t *testing.T) {
	w := world(t)
	var wide *IXP
	for _, ix := range w.IXPs {
		if ix.WideArea {
			wide = ix
			break
		}
	}
	if wide == nil {
		t.Fatal("no wide-area IXP")
	}
	ds := w.Latency().InterFacilityDelays(wide.ID)
	if len(ds) < 10 {
		t.Fatalf("only %d facility pairs for %s", len(ds), wide.Name)
	}
	over10ms := 0
	for _, s := range ds {
		if s.RTTMs <= 0 {
			t.Errorf("non-positive RTT sample %+v", s)
		}
		if s.RTTMs > 10 {
			over10ms++
		}
	}
	// Fig 2a: for NET-IX, 87% of facility pairs have median RTT > 10ms.
	if frac := float64(over10ms) / float64(len(ds)); frac < 0.5 {
		t.Errorf("only %.2f of wide-area facility pairs above 10ms", frac)
	}
}

func TestCommonFacilities(t *testing.T) {
	got := CommonFacilities([]FacilityID{1, 2, 3, 3}, []FacilityID{3, 4, 2, 3})
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Errorf("CommonFacilities = %v, want [2 3]", got)
	}
	if got := CommonFacilities(nil, []FacilityID{1}); len(got) != 0 {
		t.Errorf("want empty intersection, got %v", got)
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	cfg := DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	w1, err := Generate(TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := w1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	w2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Members) != len(w1.Members) || len(w2.Routers) != len(w1.Routers) ||
		len(w2.IXPs) != len(w1.IXPs) || len(w2.Facilities) != len(w1.Facilities) {
		t.Fatal("entity counts differ after round trip")
	}
	for i, m1 := range w1.Members {
		m2 := w2.Members[i]
		if m1.ASN != m2.ASN || m1.Iface != m2.Iface || m1.Kind != m2.Kind || m1.Router != m2.Router {
			t.Fatalf("member %d differs: %+v vs %+v", i, m1, m2)
		}
	}
	// Indices rebuilt: interface lookups must work.
	m := w1.Members[0]
	if asn, ok := w2.OwnerOf(m.Iface); !ok || asn != m.ASN {
		t.Fatal("OwnerOf broken after load")
	}
	if rid, ok := w2.RouterOf(m.Iface); !ok || rid != m.Router {
		t.Fatal("RouterOf broken after load")
	}
	// Prefix table survived.
	for _, asn := range w1.ASNs[:50] {
		if len(w2.ASPrefixes(asn)) != len(w1.ASPrefixes(asn)) {
			t.Fatalf("AS%d prefixes differ", asn)
		}
	}
	// The latency oracle reproduces identical base RTTs (same seed).
	r1 := w1.Routers[w1.RouterIDs[0]]
	r2 := w1.Routers[w1.RouterIDs[len(w1.RouterIDs)/2]]
	if got, want := w2.Latency().RouterRTT(w2.Router(r1.ID), w2.Router(r2.ID)),
		w1.Latency().RouterRTT(r1, r2); got != want {
		t.Fatalf("latency oracle differs after load: %v vs %v", got, want)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Error("want error for junk input")
	}
	if _, err := Load(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("want error for unknown version")
	}
}

func TestScaledConfigGrowsTheWorld(t *testing.T) {
	if ScaledConfig(1) != DefaultConfig() {
		t.Fatal("ScaledConfig(1) must be the default configuration")
	}
	if ScaledConfig(0) != DefaultConfig() {
		t.Fatal("ScaledConfig(0) must fall back to the default configuration")
	}
	c4 := ScaledConfig(4)
	d := DefaultConfig()
	if c4.NASes != 4*d.NASes {
		t.Fatalf("NASes = %d, want %d", c4.NASes, 4*d.NASes)
	}
	if c4.NIXPs <= d.NIXPs || c4.LargestIXPMembers <= d.LargestIXPMembers {
		t.Fatal("IXP count and size must both grow")
	}
	// Noise and share knobs must not drift with scale.
	if c4.RemoteShareLargest != d.RemoteShareLargest || c4.ResellerFrac != d.ResellerFrac {
		t.Fatal("behavioural fractions must be scale-invariant")
	}

	// Memberships (the inference domain) grow roughly linearly with
	// the factor: 4x should at least double and at most 8x the domain.
	small, err := Generate(d)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Generate(ScaledConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	ns, nb := len(small.Members), len(big.Members)
	if nb < 2*ns || nb > 8*ns {
		t.Fatalf("4x world has %d memberships vs %d at 1x; want roughly 4x", nb, ns)
	}
}
