package netsim

import (
	"math"
	"math/rand"

	"rpeer/internal/geo"
	"rpeer/internal/rng"
)

// Latency is the world's delay oracle. It produces propagation-model
// RTTs between arbitrary points, routers and facilities. Base RTTs are
// deterministic per unordered endpoint pair (a fixed "path" with a
// fixed stretch factor), while Sample adds per-measurement jitter, so
// that the minimum over a ping campaign converges to the base value —
// exactly the property Step 2's RTTmin aggregation relies on.
type Latency struct {
	w    *World
	seed int64

	// FiberKmPerMs is the one-way signal speed in fibre (~2/3 c).
	FiberKmPerMs float64
	// OutlierProb is the probability that an endpoint pair's layer-2
	// path is pathologically circuitous, producing RTTs outside the
	// vmin bound of the inference speed model (paper footnote 7).
	OutlierProb float64
}

func newLatency(w *World, seed int64) *Latency {
	return &Latency{
		w:            w,
		seed:         seed,
		FiberKmPerMs: 200, // 2/3 of c, the usual engineering figure
		OutlierProb:  0.012,
	}
}

// pairHash derives a deterministic 64-bit value for an unordered pair
// of path endpoints, mixed with the world seed. The mix is inline
// splitmix chaining (this runs once per simulated measurement; the
// old fnv-over-buffer hash was a top-ten CPU line of the cold start).
func (l *Latency) pairHash(a, b uint64) uint64 {
	if a > b {
		a, b = b, a
	}
	return rng.Key3(l.seed, 0x17, a, b)
}

// unit converts a hash to a float in [0, 1).
func unit(h uint64) float64 { return float64(h%1_000_003) / 1_000_003 }

// BaseRTT returns the deterministic floor RTT in milliseconds between
// two geographic points, for the path identified by (keyA, keyB).
//
// The model: sub-kilometre endpoints see only LAN/serialisation
// overhead (0.15-0.9 ms); everything else pays two-way propagation at
// FiberKmPerMs over a geodesic inflated by a per-path stretch factor in
// [1.1, 1.7], plus per-hop queuing overhead. With stretch s, the
// effective end-to-end speed is d/RTT = FiberKmPerMs/(2s), i.e. between
// ~59 and ~91 km/ms — safely inside the inference model's
// [vmin(d), 4/9 c] bounds for all but OutlierProb of paths, which get a
// 3-6x stretch to emulate grossly circuitous layer-2 transport.
func (l *Latency) BaseRTT(a, b geo.Point, keyA, keyB uint64) float64 {
	d := geo.DistanceKm(a, b)
	h := l.pairHash(keyA, keyB)
	u1 := unit(h)
	u2 := unit(h * 2654435761)
	if d < 1 {
		// Same facility / campus: switch and serialisation latency only.
		return 0.15 + 0.75*u1
	}
	stretch := 1.1 + 0.6*u1
	if u2 < l.OutlierProb {
		stretch = 3 + 3*u1
	}
	hops := 1 + math.Log10(1+d)        // rough router count growth
	overhead := 0.08 * hops * (1 + u2) // queuing/serialisation per hop
	return 2*d*stretch/l.FiberKmPerMs + overhead
}

// RouterRTT returns the floor RTT between two routers.
func (l *Latency) RouterRTT(a, b *Router) float64 {
	return l.BaseRTT(a.Loc, b.Loc, uint64(a.ID), uint64(b.ID))
}

// PointToRouterRTT returns the floor RTT between an arbitrary vantage
// location (keyed by vpKey, e.g. a VP index offset) and a router.
func (l *Latency) PointToRouterRTT(vp geo.Point, vpKey uint64, r *Router) float64 {
	return l.BaseRTT(vp, r.Loc, vpKey|1<<60, uint64(r.ID))
}

// FacilityRTT returns the Y.1731-style inter-facility delay between two
// facilities of (typically) a wide-area IXP fabric. Dedicated L2
// transport is less circuitous than the general model, so stretch is
// drawn from [1.05, 1.35].
func (l *Latency) FacilityRTT(f1, f2 FacilityID) float64 {
	a := l.w.Facility(f1)
	b := l.w.Facility(f2)
	if a == nil || b == nil {
		return 0
	}
	d := geo.DistanceKm(a.Loc, b.Loc)
	if d < 1 {
		return 0.1 + 0.4*unit(l.pairHash(uint64(f1)|1<<59, uint64(f2)|1<<59))
	}
	u := unit(l.pairHash(uint64(f1)|1<<59, uint64(f2)|1<<59))
	stretch := 1.05 + 0.30*u
	return 2*d*stretch/l.FiberKmPerMs + 0.1
}

// Sample produces one ping observation around a base RTT: multiplicative
// jitter plus occasional heavy-tailed queueing spikes. Sample never
// returns less than base, so the campaign minimum estimates base.
func (l *Latency) Sample(rng *rand.Rand, base float64) float64 {
	j := math.Abs(rng.NormFloat64()) * 0.04 * base
	if rng.Float64() < 0.07 {
		j += rng.ExpFloat64() * 2.5 // transient congestion spike
	}
	return base + j
}

// InterFacilityDelays returns one DelaySample per facility pair of the
// given IXP, reproducing the Y.1731 performance-monitoring feeds the
// paper obtained from NL-IX and NET-IX (Figs 2a and 6).
func (l *Latency) InterFacilityDelays(id IXPID) []geo.DelaySample {
	ix := l.w.IXP(id)
	if ix == nil {
		return nil
	}
	var out []geo.DelaySample
	for i := 0; i < len(ix.Facilities); i++ {
		for j := i + 1; j < len(ix.Facilities); j++ {
			fa := l.w.Facility(ix.Facilities[i])
			fb := l.w.Facility(ix.Facilities[j])
			if fa == nil || fb == nil {
				continue
			}
			out = append(out, geo.DelaySample{
				DistanceKm: geo.DistanceKm(fa.Loc, fb.Loc),
				RTTMs:      l.FacilityRTT(ix.Facilities[i], ix.Facilities[j]),
			})
		}
	}
	return out
}
