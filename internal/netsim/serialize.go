package netsim

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// worldJSON is the on-disk representation of a World. It stores the
// generated entities verbatim (not the generator config), so a loaded
// world is usable even if generator defaults change between versions.
type worldJSON struct {
	Version    int              `json:"version"`
	Cfg        Config           `json:"config"`
	Cities     []City           `json:"cities"`
	Facilities []*Facility      `json:"facilities"`
	IXPs       []*IXP           `json:"ixps"`
	ASes       []*AS            `json:"ases"`
	Routers    []*Router        `json:"routers"`
	Members    []*Member        `json:"members"`
	Private    []PrivateLink    `json:"private_links"`
	Resellers  []ASN            `json:"resellers"`
	Prefixes   []asPrefixesJSON `json:"as_prefixes"`
}

type asPrefixesJSON struct {
	ASN      ASN      `json:"asn"`
	Prefixes []string `json:"prefixes"`
}

const worldFormatVersion = 1

// Save serialises the world as JSON.
func (w *World) Save(out io.Writer) error {
	doc := worldJSON{
		Version:    worldFormatVersion,
		Cfg:        w.Cfg,
		Cities:     w.Cities,
		Facilities: w.Facilities,
		IXPs:       w.IXPs,
		Members:    w.Members,
		Private:    w.Private,
		Resellers:  w.Resellers,
	}
	for _, asn := range w.ASNs {
		doc.ASes = append(doc.ASes, w.ASes[asn])
		if ps := w.asPrefixes[asn]; len(ps) > 0 {
			e := asPrefixesJSON{ASN: asn}
			for _, p := range ps {
				e.Prefixes = append(e.Prefixes, p.String())
			}
			doc.Prefixes = append(doc.Prefixes, e)
		}
	}
	for _, id := range w.RouterIDs {
		doc.Routers = append(doc.Routers, w.Routers[id])
	}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}

// Load deserialises a world saved with Save, rebuilding all lookup
// indices and the latency oracle.
func Load(in io.Reader) (*World, error) {
	var doc worldJSON
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("netsim: decode world: %w", err)
	}
	if doc.Version != worldFormatVersion {
		return nil, fmt.Errorf("netsim: unsupported world format version %d", doc.Version)
	}
	parts := WorldParts{
		Cfg:        doc.Cfg,
		Cities:     doc.Cities,
		Facilities: doc.Facilities,
		IXPs:       doc.IXPs,
		ASes:       doc.ASes,
		Routers:    doc.Routers,
		Members:    doc.Members,
		Private:    doc.Private,
		Resellers:  doc.Resellers,
		Prefixes:   make(map[ASN][]netip.Prefix, len(doc.Prefixes)),
	}
	for _, e := range doc.Prefixes {
		for _, s := range e.Prefixes {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("netsim: AS%d prefix %q: %w", e.ASN, s, err)
			}
			parts.Prefixes[e.ASN] = append(parts.Prefixes[e.ASN], p)
		}
	}
	return FromParts(parts)
}

// WorldParts is the entity-level content of a World: everything a
// serialised form must carry, none of the derived state (lookup
// indices, the latency oracle) a loader rebuilds. Both world decoders
// — the JSON Load above and the binary columnar internal/worldfile —
// assemble through it.
type WorldParts struct {
	Cfg        Config
	Cities     []City
	Facilities []*Facility
	IXPs       []*IXP
	ASes       []*AS
	Routers    []*Router
	Members    []*Member
	Private    []PrivateLink
	Resellers  []ASN
	Prefixes   map[ASN][]netip.Prefix
}

// Parts decomposes the world into its serialisable entity content.
// Slices and maps are shared with the world, not copied; encoders must
// treat them as read-only. ASes and Routers come out in sorted ID
// order, so an encoder iterating them is deterministic.
func (w *World) Parts() WorldParts {
	p := WorldParts{
		Cfg:        w.Cfg,
		Cities:     w.Cities,
		Facilities: w.Facilities,
		IXPs:       w.IXPs,
		Members:    w.Members,
		Private:    w.Private,
		Resellers:  w.Resellers,
		Prefixes:   w.asPrefixes,
	}
	for _, asn := range w.ASNs {
		p.ASes = append(p.ASes, w.ASes[asn])
	}
	for _, id := range w.RouterIDs {
		p.Routers = append(p.Routers, w.Routers[id])
	}
	return p
}

// FromParts assembles a live World from deserialised entity content:
// lookup maps, dense indices and the latency oracle are rebuilt, and
// member references are sanity-checked. The result is indistinguishable
// from the World the parts were captured from.
func FromParts(parts WorldParts) (*World, error) {
	w := &World{
		Cfg:        parts.Cfg,
		Cities:     parts.Cities,
		Facilities: parts.Facilities,
		IXPs:       parts.IXPs,
		Members:    parts.Members,
		Private:    parts.Private,
		Resellers:  parts.Resellers,
		ASes:       make(map[ASN]*AS, len(parts.ASes)),
		Routers:    make(map[RouterID]*Router, len(parts.Routers)),
		asPrefixes: parts.Prefixes,
	}
	if w.asPrefixes == nil {
		w.asPrefixes = make(map[ASN][]netip.Prefix)
	}
	for _, as := range parts.ASes {
		w.ASes[as.ASN] = as
	}
	for _, r := range parts.Routers {
		w.Routers[r.ID] = r
	}
	w.lat = newLatency(w, parts.Cfg.Seed)
	w.buildIndices()
	// Sanity: every member must reference known entities.
	for _, m := range w.Members {
		if w.IXP(m.IXP) == nil {
			return nil, fmt.Errorf("netsim: member %s references unknown IXP %d", m.ASN, m.IXP)
		}
		if w.Router(m.Router) == nil {
			return nil, fmt.Errorf("netsim: member %s references unknown router %d", m.ASN, m.Router)
		}
	}
	return w, nil
}
