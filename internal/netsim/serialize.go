package netsim

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
)

// worldJSON is the on-disk representation of a World. It stores the
// generated entities verbatim (not the generator config), so a loaded
// world is usable even if generator defaults change between versions.
type worldJSON struct {
	Version    int              `json:"version"`
	Cfg        Config           `json:"config"`
	Cities     []City           `json:"cities"`
	Facilities []*Facility      `json:"facilities"`
	IXPs       []*IXP           `json:"ixps"`
	ASes       []*AS            `json:"ases"`
	Routers    []*Router        `json:"routers"`
	Members    []*Member        `json:"members"`
	Private    []PrivateLink    `json:"private_links"`
	Resellers  []ASN            `json:"resellers"`
	Prefixes   []asPrefixesJSON `json:"as_prefixes"`
}

type asPrefixesJSON struct {
	ASN      ASN      `json:"asn"`
	Prefixes []string `json:"prefixes"`
}

const worldFormatVersion = 1

// Save serialises the world as JSON.
func (w *World) Save(out io.Writer) error {
	doc := worldJSON{
		Version:    worldFormatVersion,
		Cfg:        w.Cfg,
		Cities:     w.Cities,
		Facilities: w.Facilities,
		IXPs:       w.IXPs,
		Members:    w.Members,
		Private:    w.Private,
		Resellers:  w.Resellers,
	}
	for _, asn := range w.ASNs {
		doc.ASes = append(doc.ASes, w.ASes[asn])
		if ps := w.asPrefixes[asn]; len(ps) > 0 {
			e := asPrefixesJSON{ASN: asn}
			for _, p := range ps {
				e.Prefixes = append(e.Prefixes, p.String())
			}
			doc.Prefixes = append(doc.Prefixes, e)
		}
	}
	for _, id := range w.RouterIDs {
		doc.Routers = append(doc.Routers, w.Routers[id])
	}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}

// Load deserialises a world saved with Save, rebuilding all lookup
// indices and the latency oracle.
func Load(in io.Reader) (*World, error) {
	var doc worldJSON
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("netsim: decode world: %w", err)
	}
	if doc.Version != worldFormatVersion {
		return nil, fmt.Errorf("netsim: unsupported world format version %d", doc.Version)
	}
	w := &World{
		Cfg:        doc.Cfg,
		Cities:     doc.Cities,
		Facilities: doc.Facilities,
		IXPs:       doc.IXPs,
		Members:    doc.Members,
		Private:    doc.Private,
		Resellers:  doc.Resellers,
		ASes:       make(map[ASN]*AS, len(doc.ASes)),
		Routers:    make(map[RouterID]*Router, len(doc.Routers)),
		asPrefixes: make(map[ASN][]netip.Prefix, len(doc.Prefixes)),
	}
	for _, as := range doc.ASes {
		w.ASes[as.ASN] = as
	}
	for _, r := range doc.Routers {
		w.Routers[r.ID] = r
	}
	for _, e := range doc.Prefixes {
		for _, s := range e.Prefixes {
			p, err := netip.ParsePrefix(s)
			if err != nil {
				return nil, fmt.Errorf("netsim: AS%d prefix %q: %w", e.ASN, s, err)
			}
			w.asPrefixes[e.ASN] = append(w.asPrefixes[e.ASN], p)
		}
	}
	w.lat = newLatency(w, doc.Cfg.Seed)
	w.buildIndices()
	// Sanity: every member must reference known entities.
	for _, m := range w.Members {
		if w.IXP(m.IXP) == nil {
			return nil, fmt.Errorf("netsim: member %s references unknown IXP %d", m.ASN, m.IXP)
		}
		if w.Router(m.Router) == nil {
			return nil, fmt.Errorf("netsim: member %s references unknown router %d", m.ASN, m.Router)
		}
	}
	return w, nil
}
