// Package lgweb provides an HTTP looking-glass facade over the
// simulated world and a Periscope-style client (Giotsas et al., PAM
// 2016 — the platform the paper uses to automate LG querying): IXP
// looking glasses expose ping endpoints with per-client rate limits,
// and the client fans out queries under a global concurrency cap with
// retries.
package lgweb

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/netip"
	"sync"
	"time"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

// PingResponse is the JSON body of a looking-glass ping query.
type PingResponse struct {
	Target   string    `json:"target"`
	Sent     int       `json:"sent"`
	Received int       `json:"received"`
	RTTsMs   []float64 `json:"rtts_ms"`
	MinMs    float64   `json:"min_ms"`
	AvgMs    float64   `json:"avg_ms"`
	MaxMs    float64   `json:"max_ms"`
}

// Server exposes one IXP looking glass over HTTP.
type Server struct {
	w   *netsim.World
	vp  *pingsim.VP
	mux *http.ServeMux

	// RateLimit is the maximum queries per second per client IP
	// (public LGs throttle aggressively); zero disables limiting.
	RateLimit float64
	// Pings per query, like a typical LG "ping" button.
	Pings int

	mu      sync.Mutex
	buckets map[string]*bucket
	rng     *rand.Rand
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewServer builds a looking glass for the VP's IXP.
func NewServer(w *netsim.World, vp *pingsim.VP, seed int64) *Server {
	s := &Server{
		w: w, vp: vp,
		RateLimit: 2,
		Pings:     4,
		buckets:   make(map[string]*bucket),
		rng:       rand.New(rand.NewSource(seed)),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /ping", s.handlePing)
	s.mux.HandleFunc("GET /about", s.handleAbout)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// allow applies the token-bucket rate limit for one client.
func (s *Server) allow(client string, now time.Time) bool {
	if s.RateLimit <= 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buckets[client]
	if b == nil {
		b = &bucket{tokens: s.RateLimit, last: now}
		s.buckets[client] = b
	}
	b.tokens = math.Min(s.RateLimit, b.tokens+now.Sub(b.last).Seconds()*s.RateLimit)
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

func (s *Server) handleAbout(w http.ResponseWriter, _ *http.Request) {
	ix := s.w.IXP(s.vp.IXP)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(map[string]string{
		"ixp":    ix.Name,
		"source": s.vp.SrcIP.String(),
	})
}

func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	if !s.allow(r.RemoteAddr, time.Now()) {
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	targetStr := r.URL.Query().Get("target")
	target, err := netip.ParseAddr(targetStr)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad target %q", targetStr), http.StatusBadRequest)
		return
	}
	rid, ok := s.w.RouterOf(target)
	if !ok {
		// Unknown target: the LG reports total loss.
		s.writeJSON(w, PingResponse{Target: targetStr, Sent: s.Pings})
		return
	}
	router := s.w.Router(rid)
	base := s.w.Latency().PointToRouterRTT(s.vp.Loc, uint64(s.vp.ID), router)

	resp := PingResponse{Target: targetStr, Sent: s.Pings, MinMs: math.Inf(1)}
	s.mu.Lock()
	rng := s.rng
	var rtts []float64
	for i := 0; i < s.Pings; i++ {
		if rng.Float64() < 0.05 {
			continue // loss
		}
		rtts = append(rtts, s.w.Latency().Sample(rng, base))
	}
	s.mu.Unlock()
	for _, v := range rtts {
		resp.Received++
		resp.RTTsMs = append(resp.RTTsMs, v)
		resp.AvgMs += v
		if v < resp.MinMs {
			resp.MinMs = v
		}
		if v > resp.MaxMs {
			resp.MaxMs = v
		}
	}
	if resp.Received > 0 {
		resp.AvgMs /= float64(resp.Received)
	} else {
		resp.MinMs = 0
	}
	s.writeJSON(w, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client queries many looking glasses Periscope-style: a global
// concurrency cap, per-query timeout and bounded retries with backoff.
type Client struct {
	HTTP *http.Client
	// Concurrency caps in-flight queries across all LGs.
	Concurrency int
	// Retries per query on transient failure (429/5xx/timeouts).
	Retries int
	// Backoff between retries.
	Backoff time.Duration
}

// NewClient returns a client with Periscope-like defaults.
func NewClient() *Client {
	return &Client{
		HTTP:        &http.Client{Timeout: 5 * time.Second},
		Concurrency: 8,
		Retries:     3,
		Backoff:     50 * time.Millisecond,
	}
}

// Query is one (LG base URL, target) request.
type Query struct {
	BaseURL string
	Target  netip.Addr
}

// QueryResult pairs a query with its outcome.
type QueryResult struct {
	Query Query
	Resp  *PingResponse
	Err   error
}

// PingAll fans the queries out under the concurrency cap and returns
// results in input order.
func (c *Client) PingAll(ctx context.Context, queries []Query) []QueryResult {
	out := make([]QueryResult, len(queries))
	sem := make(chan struct{}, max(1, c.Concurrency))
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			resp, err := c.ping(ctx, q)
			out[i] = QueryResult{Query: q, Resp: resp, Err: err}
		}(i, q)
	}
	wg.Wait()
	return out
}

func (c *Client) ping(ctx context.Context, q Query) (*PingResponse, error) {
	url := fmt.Sprintf("%s/ping?target=%s", q.BaseURL, q.Target)
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(c.Backoff << uint(attempt-1)):
			}
		}
		pr, retryable, err := c.pingOnce(ctx, url)
		if err == nil {
			return pr, nil
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return nil, lastErr
}

// pingOnce performs a single HTTP attempt; retryable marks transient
// failures (timeouts, 429, 5xx).
func (c *Client) pingOnce(ctx context.Context, url string) (pr *PingResponse, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, true, err
	}
	defer func() { _ = resp.Body.Close() }()
	switch {
	case resp.StatusCode == http.StatusOK:
		var body PingResponse
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return nil, true, err
		}
		return &body, false, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode >= 500:
		return nil, true, fmt.Errorf("lgweb: %s: status %d (retryable)", url, resp.StatusCode)
	default:
		return nil, false, fmt.Errorf("lgweb: %s: status %d", url, resp.StatusCode)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
