package lgweb

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"testing"
	"time"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

var (
	cw  *netsim.World
	cvp *pingsim.VP
)

func fixture(t testing.TB) (*netsim.World, *pingsim.VP) {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.TinyConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
		vps := pingsim.DeriveVPs(w, 3)
		for _, vp := range vps {
			if vp.Kind == pingsim.KindLG {
				cvp = vp
				break
			}
		}
		if cvp == nil {
			t.Fatal("no LG in tiny world")
		}
	}
	return cw, cvp
}

func newTestServer(t testing.TB) (*Server, *httptest.Server, *netsim.Member) {
	t.Helper()
	w, vp := fixture(t)
	s := NewServer(w, vp, 5)
	s.RateLimit = 0 // disabled unless a test re-enables it
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	target := w.MembersOf(vp.IXP)[0]
	return s, ts, target
}

func TestPingKnownTarget(t *testing.T) {
	_, ts, target := newTestServer(t)
	resp, err := http.Get(ts.URL + "/ping?target=" + target.Iface.String())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var pr PingResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Sent != 4 {
		t.Errorf("sent = %d", pr.Sent)
	}
	if pr.Received == 0 {
		t.Skip("all four pings lost (5% loss each); acceptable")
	}
	if pr.MinMs <= 0 || pr.MinMs > pr.MaxMs || pr.AvgMs < pr.MinMs || pr.AvgMs > pr.MaxMs {
		t.Errorf("inconsistent stats: %+v", pr)
	}
	if len(pr.RTTsMs) != pr.Received {
		t.Errorf("rtts = %d, received = %d", len(pr.RTTsMs), pr.Received)
	}
}

func TestPingUnknownTargetAllLost(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/ping?target=203.0.113.99")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var pr PingResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	if pr.Received != 0 {
		t.Errorf("unknown target got %d replies", pr.Received)
	}
}

func TestPingBadTarget(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/ping?target=not-an-ip")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}

func TestRateLimit(t *testing.T) {
	w, vp := fixture(t)
	s := NewServer(w, vp, 5)
	s.RateLimit = 2
	now := time.Now()
	if !s.allow("1.2.3.4:5", now) || !s.allow("1.2.3.4:5", now) {
		t.Fatal("first two queries must pass")
	}
	if s.allow("1.2.3.4:5", now) {
		t.Fatal("third immediate query must be throttled")
	}
	// Another client is unaffected.
	if !s.allow("5.6.7.8:9", now) {
		t.Fatal("separate client throttled")
	}
	// Tokens refill over time.
	if !s.allow("1.2.3.4:5", now.Add(time.Second)) {
		t.Fatal("token did not refill after 1s")
	}
}

func TestAbout(t *testing.T) {
	_, ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/about")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["ixp"] == "" {
		t.Error("about missing ixp name")
	}
}

func TestClientPingAll(t *testing.T) {
	w, vp := fixture(t)
	_, ts, _ := newTestServer(t)
	c := NewClient()
	c.Concurrency = 4

	members := w.MembersOf(vp.IXP)
	var queries []Query
	for i := 0; i < 20 && i < len(members); i++ {
		queries = append(queries, Query{BaseURL: ts.URL, Target: members[i].Iface})
	}
	results := c.PingAll(context.Background(), queries)
	if len(results) != len(queries) {
		t.Fatalf("results = %d, want %d", len(results), len(queries))
	}
	okCount := 0
	for i, r := range results {
		if r.Query.Target != queries[i].Target {
			t.Fatal("result order scrambled")
		}
		if r.Err == nil && r.Resp != nil {
			okCount++
		}
	}
	if okCount < len(queries)*8/10 {
		t.Errorf("only %d of %d queries succeeded", okCount, len(queries))
	}
}

func TestClientRetriesThenFails(t *testing.T) {
	// A server that always 500s: the client must retry then surface the
	// error.
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()
	c := NewClient()
	c.Retries = 2
	c.Backoff = time.Millisecond
	res := c.PingAll(context.Background(), []Query{{BaseURL: ts.URL, Target: netip.MustParseAddr("10.0.0.1")}})
	if res[0].Err == nil {
		t.Fatal("want error from permanently failing LG")
	}
	if attempts != 3 {
		t.Errorf("attempts = %d, want 3 (1 + 2 retries)", attempts)
	}
}

func TestClientNoRetryOn400(t *testing.T) {
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts++
		http.Error(w, "bad", http.StatusBadRequest)
	}))
	defer ts.Close()
	c := NewClient()
	c.Retries = 3
	c.Backoff = time.Millisecond
	res := c.PingAll(context.Background(), []Query{{BaseURL: ts.URL, Target: netip.MustParseAddr("10.0.0.1")}})
	if res[0].Err == nil {
		t.Fatal("want error")
	}
	if attempts != 1 {
		t.Errorf("attempts = %d, want 1 (client errors are final)", attempts)
	}
}

func TestClientContextCancel(t *testing.T) {
	block := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer ts.Close()
	defer close(block)
	c := NewClient()
	c.HTTP = &http.Client{Timeout: 10 * time.Second}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	res := c.PingAll(ctx, []Query{{BaseURL: ts.URL, Target: netip.MustParseAddr("10.0.0.1")}})
	if res[0].Err == nil {
		t.Fatal("want context error")
	}
}
