package core

import (
	"net/netip"
	"testing"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
)

// tinyFixture builds a miniature, fully hand-controlled inference
// scenario on top of a TinyConfig world: one IXP, a handful of
// fabricated interfaces, and per-test registry/colo/RTT data. It
// exercises each step's decision rules without the noise of the full
// campaign.
type tinyFixture struct {
	w    *netsim.World
	ix   *netsim.IXP
	in   Inputs
	p    *pipeline
	vp   *pingsim.VP
	next netip.Addr
}

func newTinyFixture(t *testing.T) *tinyFixture {
	t.Helper()
	w, err := netsim.Generate(netsim.TinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	ix := w.IXPs[0]
	f := &tinyFixture{
		w:  w,
		ix: ix,
		in: Inputs{
			World: w,
			Dataset: &registry.Dataset{
				PrefixIXP: map[netip.Prefix]string{ix.PeeringLAN: ix.Name},
				IfaceASN:  map[netip.Addr]netsim.ASN{},
				IfaceIXP:  map[netip.Addr]string{},
				Ports:     map[registry.PortKey]int{},
				MinPort:   map[string]int{},
			},
			Colo: &registry.ColoDB{
				ASFacilities:  map[netsim.ASN][]netsim.FacilityID{},
				IXPFacilities: map[string][]netsim.FacilityID{ix.Name: ix.Facilities},
			},
			Speed: geo.DefaultSpeedModel(),
		},
		// Fabricated addresses from the top of the peering LAN cannot
		// collide with real member allocations (which grow upward from
		// the bottom).
		next: lastLANAddr(ix.PeeringLAN),
	}
	fac := w.Facility(ix.Facilities[0])
	f.vp = &pingsim.VP{ID: 9999, IXP: ix.ID, Kind: pingsim.KindLG, Facility: fac.ID, Loc: fac.Loc}
	return f
}

func lastLANAddr(p netip.Prefix) netip.Addr {
	ip := p.Addr()
	var last netip.Addr
	for p.Contains(ip) {
		last = ip
		ip = ip.Next()
		if !p.Contains(ip) {
			break
		}
		// Jump in strides: walking a /22 one by one is fine too, but
		// keep it simple and just walk.
	}
	return last
}

// addIface fabricates one member interface for asn.
func (f *tinyFixture) addIface(asn netsim.ASN) netip.Addr {
	ip := f.next
	// Walk downward to stay inside the LAN and away from real members.
	b := ip.As4()
	b[3]--
	f.next = netip.AddrFrom4(b)
	f.in.Dataset.IfaceASN[ip] = asn
	f.in.Dataset.IfaceIXP[ip] = f.ix.Name
	return ip
}

// pipelineWithRTT builds the pipeline and injects a single RTT
// measurement per interface.
func (f *tinyFixture) pipelineWithRTT(rtts map[netip.Addr]float64) (*pipeline, *Report) {
	p := newContext(f.in).newPipeline(DefaultOptions())
	for ip, rtt := range rtts {
		p.ctx.setPing(ip, rtt, f.vp, false)
	}
	return p, p.newDomain()
}

func TestStep1RuleFractionalPortMeansRemote(t *testing.T) {
	f := newTinyFixture(t)
	asFrac := netsim.ASN(70001)
	asFull := netsim.ASN(70002)
	asNoData := netsim.ASN(70003)
	ipFrac := f.addIface(asFrac)
	ipFull := f.addIface(asFull)
	ipNo := f.addIface(asNoData)

	f.in.Dataset.MinPort[f.ix.Name] = 1000
	f.in.Dataset.Ports[registry.PortKey{IXP: f.ix.Name, ASN: asFrac}] = 100
	f.in.Dataset.Ports[registry.PortKey{IXP: f.ix.Name, ASN: asFull}] = 10000

	p, rep := f.pipelineWithRTT(nil)
	p.stepPortCapacity(rep)

	if got := rep.Inferences[Key{f.ix.Name, ipFrac}]; got.Class != ClassRemote || got.Step != StepPortCapacity {
		t.Errorf("fractional port: got %v via %v, want remote via port-capacity", got.Class, got.Step)
	}
	if got := rep.Inferences[Key{f.ix.Name, ipFull}]; got.Class != ClassUnknown {
		t.Errorf("full port: got %v, want unknown", got.Class)
	}
	if got := rep.Inferences[Key{f.ix.Name, ipNo}]; got.Class != ClassUnknown {
		t.Errorf("no port data: got %v, want unknown", got.Class)
	}
}

func TestStep1RuleNoPricingNoInference(t *testing.T) {
	f := newTinyFixture(t)
	asn := netsim.ASN(70001)
	ip := f.addIface(asn)
	// Port record below any plausible minimum, but no pricing data for
	// the IXP: the rule must not fire.
	f.in.Dataset.Ports[registry.PortKey{IXP: f.ix.Name, ASN: asn}] = 100

	p, rep := f.pipelineWithRTT(nil)
	p.stepPortCapacity(rep)
	if got := rep.Inferences[Key{f.ix.Name, ip}]; got.Class != ClassUnknown {
		t.Errorf("no Cmin: got %v, want unknown", got.Class)
	}
}

func TestStep3RuleLocalColocatedLowRTT(t *testing.T) {
	f := newTinyFixture(t)
	asn := netsim.ASN(70001)
	ip := f.addIface(asn)
	f.in.Colo.ASFacilities[asn] = []netsim.FacilityID{f.ix.Facilities[0]}

	p, rep := f.pipelineWithRTT(map[netip.Addr]float64{ip: 0.4})
	p.stepRTTColo(rep)
	got := rep.Inferences[Key{f.ix.Name, ip}]
	if got.Class != ClassLocal || got.Step != StepRTTColo {
		t.Errorf("colocated sub-ms member: got %v via %v, want local via rtt+colo", got.Class, got.Step)
	}
	if got.FeasibleIXPFacilities < 1 {
		t.Errorf("feasible facilities = %d, want >= 1", got.FeasibleIXPFacilities)
	}
}

func TestStep3RuleRemoteNoFeasibleFacility(t *testing.T) {
	f := newTinyFixture(t)
	asn := netsim.ASN(70001)
	ip := f.addIface(asn)
	// 80 ms from a single-metro IXP: dmin of the ring is far beyond the
	// IXP's facilities; rule 1(i) must fire even with no colo data.
	p, rep := f.pipelineWithRTT(map[netip.Addr]float64{ip: 80})
	p.stepRTTColo(rep)
	got := rep.Inferences[Key{f.ix.Name, ip}]
	if got.Class != ClassRemote {
		t.Errorf("80ms member at single-metro IXP: got %v, want remote (rule 1(i))", got.Class)
	}
	if got.FeasibleIXPFacilities != 0 {
		t.Errorf("feasible facilities = %d, want 0", got.FeasibleIXPFacilities)
	}
}

// nearbyNonIXPFacility finds a facility 60-250 km from the VP that does
// not belong to the IXP (the Rotterdam scenario).
func nearbyNonIXPFacility(f *tinyFixture) (netsim.FacilityID, bool) {
	for _, fac := range f.w.Facilities {
		if containsFacID(f.ix.Facilities, fac.ID) {
			continue
		}
		d := geo.DistanceKm(f.vp.Loc, fac.Loc)
		if d > 60 && d < 250 {
			return fac.ID, true
		}
	}
	return -1, false
}

func containsFacID(s []netsim.FacilityID, id netsim.FacilityID) bool {
	for _, x := range s {
		if x == id {
			return true
		}
	}
	return false
}

func TestStep3RuleRemoteNearbyPeer(t *testing.T) {
	// The paper's Rotterdam case: low RTT, but the member's only
	// feasible facility is not an IXP facility -> remote despite the
	// sub-threshold latency.
	f := newTinyFixture(t)
	facID, ok := nearbyNonIXPFacility(f)
	if !ok {
		t.Skip("no nearby non-IXP facility in this tiny world")
	}
	asn := netsim.ASN(70001)
	ip := f.addIface(asn)
	f.in.Colo.ASFacilities[asn] = []netsim.FacilityID{facID}

	// RTT consistent with the nearby facility: distance/66 km/ms * 2
	// (around 2-6 ms), with dmax comfortably covering it but the ring
	// lower bound excluding the IXP's own metro when RTT is ~2ms+.
	d := geo.DistanceKm(f.vp.Loc, f.w.Facility(facID).Loc)
	rtt := 2 * d / 70
	p, rep := f.pipelineWithRTT(map[netip.Addr]float64{ip: rtt})
	p.stepRTTColo(rep)
	got := rep.Inferences[Key{f.ix.Name, ip}]
	if got.Class == ClassLocal {
		t.Errorf("nearby remote (%.0f km, %.1f ms): inferred local", d, rtt)
	}
}

func TestStep3RuleUnknownWithoutColoData(t *testing.T) {
	f := newTinyFixture(t)
	asn := netsim.ASN(70001)
	ip := f.addIface(asn)
	// 0.5 ms: a feasible IXP facility exists, but without colocation
	// data the rule must defer (rule 3).
	p, rep := f.pipelineWithRTT(map[netip.Addr]float64{ip: 0.5})
	p.stepRTTColo(rep)
	got := rep.Inferences[Key{f.ix.Name, ip}]
	if got.Class != ClassUnknown {
		t.Errorf("no colo data: got %v, want unknown (defer to steps 4/5)", got.Class)
	}
}

func TestStep3RoundingLGWidensRing(t *testing.T) {
	f := newTinyFixture(t)
	asn := netsim.ASN(70001)
	ip := f.addIface(asn)
	f.in.Colo.ASFacilities[asn] = []netsim.FacilityID{f.ix.Facilities[0]}

	p, rep := f.pipelineWithRTT(map[netip.Addr]float64{ip: 1.0})
	p.ctx.setPing(ip, 1.0, f.vp, true) // the LG rounded 0.2ms up to 1ms
	p.stepRTTColo(rep)
	got := rep.Inferences[Key{f.ix.Name, ip}]
	if got.Class != ClassLocal {
		t.Errorf("rounded 1ms local: got %v, want local (dmin from RTT-1)", got.Class)
	}
}

func TestAllShareFacility(t *testing.T) {
	f := newTinyFixture(t)
	p := newContext(f.in).newPipeline(DefaultOptions())
	f.in.Colo.IXPFacilities["A"] = []netsim.FacilityID{1, 2}
	f.in.Colo.IXPFacilities["B"] = []netsim.FacilityID{2, 3}
	f.in.Colo.IXPFacilities["C"] = []netsim.FacilityID{3, 4}
	s := p.ctx.getScratch()
	defer p.ctx.putScratch(s)
	if !p.allShareFacility(s, []string{"A", "B"}) {
		t.Error("A and B share facility 2")
	}
	if p.allShareFacility(s, []string{"A", "B", "C"}) {
		t.Error("A, B, C share nothing in common")
	}
	if p.allShareFacility(s, nil) {
		t.Error("empty set cannot share a facility")
	}
}

func TestFacDist(t *testing.T) {
	f := newTinyFixture(t)
	p := newContext(f.in).newPipeline(DefaultOptions())
	f0 := f.ix.Facilities[0]
	minD, maxD, ok := p.facDist([]netsim.FacilityID{f0}, []netsim.FacilityID{f0})
	if !ok || minD != 0 || maxD != 0 {
		t.Errorf("self distance = (%v,%v,%v), want (0,0,true)", minD, maxD, ok)
	}
	if _, _, ok := p.facDist(nil, []netsim.FacilityID{f0}); ok {
		t.Error("empty set must yield ok=false")
	}
}
