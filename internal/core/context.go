package core

import (
	"fmt"
	"math"
	"net/netip"
	"sort"
	"strings"
	"sync"

	"rpeer/internal/alias"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

// Context is the reusable inference substrate: everything a pipeline
// run needs that depends only on the Inputs, not on the Options. Build
// it once with NewContext and share it across Run / RunWithOrder /
// RunStep / Baseline calls — the ablation suite and the experiment
// harness run the pipeline dozens of times over one input set, and
// rebuilding this state per run dominated their cost.
//
// The context owns:
//
//   - the per-interface RTT / best-VP / rounding indexes folded from
//     the ping campaign (one pass, shared by every run);
//   - the registry IP-to-AS map, the traIXroute detector, and the
//     detected IXP crossings and private hops of the traceroute corpus;
//   - the lazily-built traceroute-RTT augmentation ("Beyond Pings"),
//     shared by every run with Options.UseTracerouteRTT;
//   - the geo fast path: facility coordinates converted once to unit
//     vectors (distance = dot product + arccos, see geo.Vec3) plus a
//     memoized per-(VP location, facility set) sorted-distance index,
//     so each feasible-ring query is a binary search instead of a
//     Vincenty solve per facility;
//   - memoized alias-resolution clusters (sound because alias probing
//     is a pure function of seed, interface and probe time).
//
// All methods are safe for concurrent use; the caches are guarded.
// Inputs must not be mutated after NewContext.
type Context struct {
	in Inputs

	// Ping-only per-interface campaign indexes.
	rtt    map[netip.Addr]float64
	bestVP map[netip.Addr]*pingsim.VP
	rounds map[netip.Addr]bool

	ipmap     *registry.IPMap
	det       *traix.Detector
	corpus    *traix.Corpus
	lans      *traix.LANSet
	crossings []traix.Crossing
	privHops  []traix.PrivateHop

	// byASPriv indexes private-hop neighbours per AS (Step 5 input).
	byASPriv map[netsim.ASN][]privNeighbour

	ixps   []string
	ixpSet map[string]bool

	// domain is built lazily under domMu and patched in place by Apply
	// (a sync.Once would survive deltas it must not survive).
	domMu    sync.Mutex
	domBuilt bool
	domain   []domEntry

	// Traceroute-RTT augmentation, built lazily under traceMu and
	// dropped by Apply (any delta can shift the crossings or the RTT
	// view it folds).
	traceMu      sync.Mutex
	traceBuilt   bool
	traceRTT     map[netip.Addr]float64
	traceBestVP  map[netip.Addr]*pingsim.VP
	traceRounds  map[netip.Addr]bool
	traceDerived map[netip.Addr]bool

	pvMu      sync.Mutex
	pseudoVPs map[string]*pingsim.VP

	// Geo fast path: facility unit vectors indexed by FacilityID.
	facVecs []geo.Vec3
	facOK   []bool

	// ringMu is an RWMutex because ring queries are read-dominated once
	// the per-(VP, facility-set) indexes are warm: parallel shards take
	// the read lock on the fast path and only contend on first touch.
	ringMu sync.RWMutex
	rings  map[ringKey][]ringEntry

	resolvers  map[alias.Mode]*alias.Resolver
	aliasMu    sync.RWMutex
	aliasCache map[string][][]netip.Addr
}

// domEntry is one membership of the inference domain.
type domEntry struct {
	key Key
	asn netsim.ASN
}

// privNeighbour is one private-interconnection neighbour observation.
type privNeighbour struct {
	iface netip.Addr
	other netsim.ASN
}

// ringKey identifies one (VP location, facility set) distance index.
// Facility sets are identified by their registry handle — the IXP name
// or the member ASN — rather than by slice contents.
type ringKey struct {
	loc geo.Point
	ixp string
	asn netsim.ASN
}

// ringEntry is one facility at its precomputed distance from the key's
// VP location, sorted ascending by (distance, id).
type ringEntry struct {
	d  float64
	id netsim.FacilityID
}

// NewContext validates the inputs and builds the shared substrate.
func NewContext(in Inputs) (*Context, error) {
	if in.World == nil || in.Dataset == nil || in.Colo == nil {
		return nil, fmt.Errorf("core: World, Dataset and Colo inputs are required")
	}
	return newContext(in), nil
}

// newContext builds the substrate without input validation (internal
// callers validate at their public entry points).
func newContext(in Inputs) *Context {
	c := &Context{
		in:         in,
		rtt:        make(map[netip.Addr]float64),
		bestVP:     make(map[netip.Addr]*pingsim.VP),
		rounds:     make(map[netip.Addr]bool),
		pseudoVPs:  make(map[string]*pingsim.VP),
		rings:      make(map[ringKey][]ringEntry),
		resolvers:  make(map[alias.Mode]*alias.Resolver),
		aliasCache: make(map[string][][]netip.Addr),
	}
	// The substrate indexes depend only on the (immutable) inputs and
	// not on each other, so they build concurrently: the ping-campaign
	// fold, the traceroute plane (IP map -> detector -> crossings /
	// private hops), and the geo unit vectors each get a goroutine.
	// Each goroutine writes disjoint context fields; wg.Wait is the
	// publication barrier.
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		if in.Ping != nil {
			for ip, a := range in.Ping.IfaceIndex() {
				c.rtt[ip] = a.RTTMinMs
				c.bestVP[ip] = a.BestVP
				c.rounds[ip] = a.BestRoundsUp
			}
		}
	}()
	go func() {
		defer wg.Done()
		c.ipmap = registry.BuildIPMap(in.World)
		c.det = traix.NewDetector(in.Dataset, c.ipmap)
		c.lans = traix.NewLANSet(traix.LANPrefixes(in.World))
		if len(in.Paths) > 0 {
			// The corpus splits the paths into membership-independent
			// detections (settled here, once) and peering-LAN candidates
			// that Detect re-evaluates against the current dataset —
			// both now and after every membership delta (see Apply).
			c.corpus = traix.NewCorpus(in.Paths, c.lans, c.ipmap)
			c.crossings, c.privHops = c.corpus.Detect(c.det)
		}
		c.rebuildByASPriv()
	}()
	go func() {
		defer wg.Done()
		maxID := netsim.FacilityID(-1)
		for _, f := range in.World.Facilities {
			if f != nil && f.ID > maxID {
				maxID = f.ID
			}
		}
		c.facVecs = make([]geo.Vec3, maxID+1)
		c.facOK = make([]bool, maxID+1)
		for _, f := range in.World.Facilities {
			if f == nil || f.ID < 0 {
				continue
			}
			c.facVecs[f.ID] = geo.UnitVec(f.Loc)
			c.facOK[f.ID] = true
		}
	}()
	c.ixps = ixpNames(in)
	c.ixpSet = make(map[string]bool, len(c.ixps))
	for _, name := range c.ixps {
		c.ixpSet[name] = true
	}
	wg.Wait()

	return c
}

// HasIXP reports whether the merged dataset knows the named IXP. The
// set is fixed at construction: membership deltas never touch the
// prefix plane.
func (c *Context) HasIXP(name string) bool { return c.ixpSet[name] }

// BestVP returns the vantage point behind an interface's current
// campaign minimum, reflecting all applied deltas. Callers must not
// run concurrently with Apply (the rpi engine resolves under its
// apply lock).
func (c *Context) BestVP(ip netip.Addr) (*pingsim.VP, bool) {
	vp, ok := c.bestVP[ip]
	return vp, ok
}

// resolverFor returns the memoized resolver for an alias mode,
// creating it on first use (construction is cheap and pure).
func (c *Context) resolverFor(mode alias.Mode) *alias.Resolver {
	c.aliasMu.Lock()
	defer c.aliasMu.Unlock()
	r, ok := c.resolvers[mode]
	if !ok {
		r = alias.NewResolver(alias.NewProber(c.in.World, c.in.Seed), mode)
		c.resolvers[mode] = r
	}
	return r
}

// Inputs returns the inputs the context was built from.
func (c *Context) Inputs() Inputs { return c.in }

// Run executes the methodology over all memberships known to the
// merged dataset, reusing the shared substrate. Reports are identical
// to the package-level Run for the same inputs and options.
func (c *Context) Run(opt Options) (*Report, error) {
	p := c.newPipeline(opt)
	rep := p.newDomain()
	if opt.EnablePortCapacity {
		p.stepPortCapacity(rep)
	}
	if opt.EnableRTTColo {
		p.stepRTTColo(rep)
	}
	if opt.EnableMultiIXP {
		p.stepMultiIXP(rep, nil)
	}
	if opt.EnablePrivate {
		p.stepPrivate(rep)
	}
	return rep, nil
}

// RunWithOrder executes the enabled steps in an explicit order (the
// step-ordering ablation, DESIGN.md section 6). Steps absent from
// order do not run.
func (c *Context) RunWithOrder(opt Options, order []Step) (*Report, error) {
	p := c.newPipeline(opt)
	rep := p.newDomain()
	for _, s := range order {
		switch s {
		case StepPortCapacity:
			p.stepPortCapacity(rep)
		case StepRTTColo:
			p.stepRTTColo(rep)
		case StepMultiIXP:
			p.stepMultiIXP(rep, nil)
		case StepPrivate:
			p.stepPrivate(rep)
		default:
			return nil, fmt.Errorf("core: RunWithOrder does not support %v", s)
		}
	}
	return rep, nil
}

// RunStep evaluates one step of the methodology in isolation over a
// fresh all-unknown domain (the per-step rows of Table 4); see the
// package-level RunStep for the seeding semantics of Step 4.
func (c *Context) RunStep(opt Options, s Step) (*Report, error) {
	p := c.newPipeline(opt)
	overlay := p.newDomain()
	switch s {
	case StepPortCapacity:
		p.stepPortCapacity(overlay)
	case StepRTTColo:
		p.stepRTTColo(overlay)
	case StepMultiIXP:
		base, err := c.Run(opt)
		if err != nil {
			return nil, err
		}
		type memKey struct {
			asn netsim.ASN
			ixp string
		}
		seedIdx := make(map[memKey]PeerClass)
		for k, inf := range base.Inferences {
			if (inf.Step == StepPortCapacity || inf.Step == StepRTTColo) && inf.Class != ClassUnknown {
				mk := memKey{inf.ASN, k.IXP}
				if _, ok := seedIdx[mk]; !ok {
					seedIdx[mk] = inf.Class
				}
			}
		}
		seed := func(asn netsim.ASN, ixp string) PeerClass {
			return seedIdx[memKey{asn, ixp}]
		}
		p.stepMultiIXP(overlay, seed)
	case StepPrivate:
		p.stepPrivate(overlay)
	default:
		return nil, fmt.Errorf("core: RunStep does not support %v", s)
	}
	return overlay, nil
}

// Baseline runs the Castro et al. RTT-threshold inference over the
// shared substrate. Only memberships with a usable campaign minimum
// receive a verdict.
func (c *Context) Baseline(thresholdMs float64) (*Report, error) {
	return c.domainReport(c.rtt, func(inf *Inference, rtt float64) {
		inf.Step = StepBaseline
		if rtt > thresholdMs {
			inf.Class = ClassRemote
		} else {
			inf.Class = ClassLocal
		}
	}), nil
}

// domainReport materializes the all-unknown inference domain in one
// allocation, fills in RTT minimums from the given view, and lets
// measured finish each entry that has one. It backs both newDomain and
// Baseline so domain construction has a single definition.
func (c *Context) domainReport(rtt map[netip.Addr]float64, measured func(inf *Inference, rtt float64)) *Report {
	entries := c.domainEntries()
	infs := make([]Inference, len(entries))
	rep := &Report{Inferences: make(map[Key]*Inference, len(entries))}
	for i, e := range entries {
		inf := &infs[i]
		*inf = Inference{
			IXP: e.key.IXP, Iface: e.key.Iface, ASN: e.asn,
			RTTMinMs:              math.NaN(),
			FeasibleIXPFacilities: -1,
		}
		if v, ok := rtt[e.key.Iface]; ok {
			inf.RTTMinMs = v
			measured(inf, v)
		}
		rep.Inferences[e.key] = inf
	}
	return rep
}

// domainEntries returns the inference domain — one entry per interface
// record of the merged dataset, deduplicated, in deterministic order
// (IXPs sorted by name, interfaces ascending within each) — building
// it on first use.
func (c *Context) domainEntries() []domEntry {
	c.domMu.Lock()
	defer c.domMu.Unlock()
	if !c.domBuilt {
		seen := make(map[Key]bool)
		for _, ixpName := range c.ixps {
			for _, rec := range c.in.Dataset.MembersOf(ixpName) {
				k := Key{IXP: ixpName, Iface: rec.IP}
				if seen[k] {
					continue
				}
				seen[k] = true
				c.domain = append(c.domain, domEntry{key: k, asn: rec.ASN})
			}
		}
		c.domBuilt = true
	}
	return c.domain
}

// rebuildByASPriv reindexes the private-hop neighbours per AS.
func (c *Context) rebuildByASPriv() {
	c.byASPriv = make(map[netsim.ASN][]privNeighbour)
	for _, h := range c.privHops {
		c.byASPriv[h.AAS] = append(c.byASPriv[h.AAS], privNeighbour{h.AIP, h.BAS})
		c.byASPriv[h.BAS] = append(c.byASPriv[h.BAS], privNeighbour{h.BIP, h.AAS})
	}
}

// traceAugmented returns the RTT view extended with traceroute-derived
// estimates ("Beyond Pings", Section 8), building it lazily. Apply
// drops the built view, so it always reflects the current crossings
// and campaign state.
func (c *Context) traceAugmented() (rtt map[netip.Addr]float64, bestVP map[netip.Addr]*pingsim.VP, rounds map[netip.Addr]bool, derived map[netip.Addr]bool) {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	if !c.traceBuilt {
		c.traceRTT = make(map[netip.Addr]float64, len(c.rtt))
		c.traceBestVP = make(map[netip.Addr]*pingsim.VP, len(c.bestVP))
		c.traceRounds = make(map[netip.Addr]bool, len(c.rounds))
		c.traceDerived = make(map[netip.Addr]bool)
		for ip, v := range c.rtt {
			c.traceRTT[ip] = v
		}
		for ip, v := range c.bestVP {
			c.traceBestVP[ip] = v
		}
		for ip, v := range c.rounds {
			c.traceRounds[ip] = v
		}
		for _, e := range DeriveTracerouteRTT(c.crossings) {
			if _, ok := c.traceRTT[e.Iface]; ok {
				continue // ping data always wins
			}
			vp := c.pseudoVP(e.IXP)
			if vp == nil {
				continue
			}
			c.traceRTT[e.Iface] = e.RTTMs
			c.traceBestVP[e.Iface] = vp
			c.traceRounds[e.Iface] = false
			c.traceDerived[e.Iface] = true
		}
		c.traceBuilt = true
	}
	return c.traceRTT, c.traceBestVP, c.traceRounds, c.traceDerived
}

// pseudoVP returns (allocating lazily) a synthetic vantage point at the
// IXP's primary recorded facility, used to anchor the Step 3 geometry
// for traceroute-derived RTTs.
func (c *Context) pseudoVP(ixp string) *pingsim.VP {
	c.pvMu.Lock()
	defer c.pvMu.Unlock()
	if vp, ok := c.pseudoVPs[ixp]; ok {
		return vp
	}
	facs := c.in.Colo.IXPFacilities[ixp]
	if len(facs) == 0 {
		c.pseudoVPs[ixp] = nil
		return nil
	}
	fac := c.in.World.Facility(facs[0])
	if fac == nil {
		c.pseudoVPs[ixp] = nil
		return nil
	}
	vp := &pingsim.VP{
		ID: -1 - len(c.pseudoVPs), IXP: -1, Kind: pingsim.KindLG,
		Facility: fac.ID, Loc: fac.Loc,
	}
	c.pseudoVPs[ixp] = vp
	return vp
}

// facVec returns the precomputed unit vector of a facility.
func (c *Context) facVec(id netsim.FacilityID) (geo.Vec3, bool) {
	if id < 0 || int(id) >= len(c.facVecs) || !c.facOK[id] {
		return geo.Vec3{}, false
	}
	return c.facVecs[id], true
}

// ringEntries returns the sorted facility-distance index for one
// (VP location, facility set) pair, building and memoizing it on first
// use. facs is resolved by the caller from the key's registry handle.
func (c *Context) ringEntries(key ringKey, facs []netsim.FacilityID) []ringEntry {
	c.ringMu.RLock()
	if e, ok := c.rings[key]; ok {
		c.ringMu.RUnlock()
		return e
	}
	c.ringMu.RUnlock()

	v := geo.UnitVec(key.loc)
	entries := make([]ringEntry, 0, len(facs))
	for _, f := range facs {
		vec, ok := c.facVec(f)
		if !ok {
			continue
		}
		entries = append(entries, ringEntry{d: geo.ArcKm(v, vec), id: f})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].d != entries[j].d {
			return entries[i].d < entries[j].d
		}
		return entries[i].id < entries[j].id
	})
	c.ringMu.Lock()
	c.rings[key] = entries
	c.ringMu.Unlock()
	return entries
}

// ringQuery appends to buf the facilities of the keyed set whose
// distance from the key's VP location falls inside [dMin, dMax], in
// ascending distance order, and returns the extended buffer.
func (c *Context) ringQuery(key ringKey, facs []netsim.FacilityID, dMin, dMax float64, buf []netsim.FacilityID) []netsim.FacilityID {
	entries := c.ringEntries(key, facs)
	i := sort.Search(len(entries), func(i int) bool { return entries[i].d >= dMin })
	for ; i < len(entries) && entries[i].d <= dMax; i++ {
		buf = append(buf, entries[i].id)
	}
	return buf
}

// facDist computes min and max great-circle distance between two
// facility sets using the precomputed unit vectors; ok is false when
// either set contributes no locatable facility.
func (c *Context) facDist(a, b []netsim.FacilityID) (minKm, maxKm float64, ok bool) {
	minKm = math.Inf(1)
	for _, fa := range a {
		va, okA := c.facVec(fa)
		if !okA {
			continue
		}
		for _, fb := range b {
			vb, okB := c.facVec(fb)
			if !okB {
				continue
			}
			d := geo.ArcKm(va, vb)
			if d < minKm {
				minKm = d
			}
			if d > maxKm {
				maxKm = d
			}
			ok = true
		}
	}
	return minKm, maxKm, ok
}

// resolve memoizes alias resolution per (mode, interface set). ifaces
// must be sorted ascending (both call sites sort). The returned
// clusters are shared across runs and must be treated as read-only.
func (c *Context) resolve(mode alias.Mode, ifaces []netip.Addr) [][]netip.Addr {
	var sb strings.Builder
	sb.Grow(len(ifaces)*16 + 1)
	sb.WriteByte(byte(mode))
	for _, ip := range ifaces {
		b := ip.As16()
		sb.Write(b[:])
	}
	key := sb.String()

	c.aliasMu.RLock()
	if r, ok := c.aliasCache[key]; ok {
		c.aliasMu.RUnlock()
		return r
	}
	c.aliasMu.RUnlock()

	// Resolution runs outside the lock: it is pure, so a concurrent
	// duplicate computes the identical value.
	res := c.resolverFor(mode).Resolve(ifaces)

	c.aliasMu.Lock()
	c.aliasCache[key] = res
	c.aliasMu.Unlock()
	return res
}
