package core

import (
	"fmt"
	"math"
	"net/netip"
	"slices"
	"sort"
	"sync"

	"rpeer/internal/alias"
	"rpeer/internal/geo"
	"rpeer/internal/ident"
	"rpeer/internal/ip4"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

// Context is the reusable inference substrate: everything a pipeline
// run needs that depends only on the Inputs, not on the Options. Build
// it once with NewContext and share it across Run / RunWithOrder /
// RunStep / Baseline calls — the ablation suite and the experiment
// harness run the pipeline dozens of times over one input set, and
// rebuilding this state per run dominated their cost.
//
// The substrate is columnar: every entity the hot paths touch —
// interface, member AS, IXP, facility — is interned into a dense
// integer ID through internal/ident, and the per-entity state lives in
// ID-indexed slices and bitsets rather than hash maps. netip.Addr
// values and IXP-name strings survive only at the ingestion edge
// (building the context, absorbing a delta) and in the public Report.
//
// The context owns:
//
//   - the per-interface RTT / best-VP / rounding columns folded from
//     the ping campaign (one pass, shared by every run);
//   - the registry IP-to-AS map, the traIXroute detector, the detected
//     IXP crossings and private hops of the traceroute corpus (kept
//     both raw, for the ingestion edge, and compacted into ID columns
//     for the classification loops), and the ID-indexed colocation /
//     port-capacity view;
//   - the lazily-built traceroute-RTT augmentation ("Beyond Pings"),
//     shared by every run with Options.UseTracerouteRTT;
//   - the geo fast path: facility coordinates converted once to unit
//     vectors (distance = dot product + arccos, see geo.Vec3) plus a
//     memoized per-(VP, facility-set) sorted-distance index keyed by
//     packed integer IDs, so each feasible-ring query is a binary
//     search instead of a Vincenty solve per facility;
//   - memoized alias-resolution clusters in ID space (sound because
//     alias probing is a pure function of seed, interface and probe
//     time), and the memoized multi-IXP router observations Step 4
//     re-reads on every run;
//   - a pool of per-shard scratch columns (epoch-stamped mark arrays)
//     so the per-entry classification of Steps 1-3 and 5 allocates
//     nothing in steady state.
//
// All methods are safe for concurrent use; the caches are guarded.
// Inputs must not be mutated after NewContext.
type Context struct {
	in  Inputs
	ids *ident.Table

	// ixps is the inference-domain roster (the IXPs of the merged
	// prefix plane), sorted by name. The interned IXP space is the
	// superset union with interface-record names; roster marks which
	// interned IXPs belong to the domain.
	ixps   []string
	roster ident.Bits

	// vps interns vantage-point pointers into dense slots; ring memo
	// keys and the bestVP column refer to slots, not pointers.
	vpMu   sync.Mutex
	vps    []*pingsim.VP
	vpSlot map[*pingsim.VP]int32

	// Ping-only per-interface campaign columns, indexed by IfaceID:
	// NaN / -1 mark unmeasured interfaces.
	rtt    []float64
	bestVP []int32
	rounds ident.Bits

	ipmap     *registry.IPMap
	det       *traix.Detector
	corpus    *traix.Corpus
	lans      *traix.LANSet
	crossings []traix.Crossing
	cross     traix.CrossingTab
	priv      traix.PrivateTab

	// colo is the ID-indexed colocation and port-capacity view the
	// per-entry classification reads.
	colo *registry.ColoIndex

	// byASPriv indexes private-hop neighbours per member (Step 5
	// input), indexed by MemberID.
	byASPriv [][]privNeighbour

	// domain is built lazily under domMu and patched in place by Apply
	// (a sync.Once would survive deltas it must not survive). memGroups
	// groups domain indexes per (member, IXP) for Step 4's propagation.
	domMu     sync.Mutex
	domBuilt  bool
	domain    []domEntry
	domSpare  []domEntry
	memGroups map[uint64][]int32

	// obs / clusters memoize Step 4's crossing observations and
	// alias-resolved multi-IXP clusters; both depend only on the
	// substrate (not the options, beyond the alias mode), so Apply is
	// the only invalidator.
	obsMu     sync.Mutex
	obsBuilt  bool
	obs       []*asObs
	clusterMu sync.Mutex
	clusters  map[alias.Mode][]cachedRouter

	// Traceroute-RTT augmentation columns, built lazily under traceMu.
	// Apply only clears traceBuilt: the columns keep their capacity and
	// are rewritten in place on the next build (any delta can shift the
	// crossings or the RTT view they fold).
	traceMu      sync.Mutex
	traceBuilt   bool
	traceRTT     []float64
	traceBestVP  []int32
	traceRounds  ident.Bits
	traceDerived ident.Bits

	pvMu      sync.Mutex
	pseudoVPs map[string]*pingsim.VP

	// Geo fast path: facility unit vectors indexed by FacilityID.
	facVecs []geo.Vec3
	facOK   []bool

	// ringMu is an RWMutex because ring queries are read-dominated once
	// the per-(VP slot, facility-set) indexes are warm: parallel shards
	// take the read lock on the fast path and only contend on first
	// touch. Keys are packed integers (see ringKeyFor).
	ringMu sync.RWMutex
	rings  map[uint64][]ringEntry

	resolvers  map[alias.Mode]*alias.Resolver
	aliasMu    sync.RWMutex
	aliasCache map[string][][]ident.IfaceID

	// scratchPool recycles the per-shard classification scratch across
	// runs (the epoch-stamped mark columns are sized to the ID spaces
	// and far too large to allocate per run).
	scratchPool sync.Pool
}

// domEntry is one membership of the inference domain, carrying both
// the public key (report edge) and the interned IDs (hot path).
type domEntry struct {
	key    Key
	asn    netsim.ASN
	iface  ident.IfaceID
	member ident.MemberID
	ixp    ident.IXPID
}

// privNeighbour is one private-interconnection neighbour observation.
type privNeighbour struct {
	iface ident.IfaceID
	other ident.MemberID
}

// ringEntry is one facility at its precomputed distance from the key's
// VP location, sorted ascending by (distance, id).
type ringEntry struct {
	d  float64
	id netsim.FacilityID
}

// Ring-memo set kinds: an IXP's facility list or a member's colocation
// record, identified by its interned ID (the registry handle).
const (
	ringIXP uint8 = iota
	ringMember
)

// ringKeyFor packs one (VP slot, facility-set handle) pair into a
// 64-bit memo key: slot in the high bits, set ID and kind below.
func ringKeyFor(slot int32, kind uint8, set uint32) uint64 {
	return uint64(uint32(slot))<<34 | uint64(set)<<2 | uint64(kind)
}

// NewContext validates the inputs and builds the shared substrate.
func NewContext(in Inputs) (*Context, error) {
	if in.World == nil || in.Dataset == nil || in.Colo == nil {
		return nil, fmt.Errorf("core: World, Dataset and Colo inputs are required")
	}
	return newContext(in), nil
}

// newContext builds the substrate without input validation (internal
// callers validate at their public entry points).
func newContext(in Inputs) *Context {
	c := &Context{
		in:         in,
		vpSlot:     make(map[*pingsim.VP]int32),
		pseudoVPs:  make(map[string]*pingsim.VP),
		rings:      make(map[uint64][]ringEntry),
		resolvers:  make(map[alias.Mode]*alias.Resolver),
		aliasCache: make(map[string][][]ident.IfaceID),
		clusters:   make(map[alias.Mode][]cachedRouter),
	}

	// ---- interning phase (serial; everything after assumes a frozen
	// ID space except where noted) ----
	c.ixps = ixpNames(in)
	// The interface space ultimately holds the dataset's records plus
	// every world interface the traceroute compaction interns (private
	// cross-connect and near-side infrastructure addresses); presizing
	// for both keeps the intern map from rehash-growing through the
	// compaction phase (at 64x that is ~1M late insertions).
	c.ids = ident.NewTable(len(in.Dataset.IfaceASN)+in.World.NumIfaces()/8*9,
		len(in.World.ASNs)+16, len(in.World.Facilities))
	c.ids.SetIXPs(ixpUnion(in))
	for _, name := range c.ixps {
		if id, ok := c.ids.IXP(name); ok {
			c.roster.Set(uint32(id))
		}
	}
	// Members: the world roster (sorted), then any dataset-only ASNs
	// (none in practice — registry noise only reassigns within the
	// world — but interning is the wrong place to rely on that).
	for _, asn := range in.World.ASNs {
		c.ids.AddMember(asn)
	}
	extraASNs := make([]netsim.ASN, 0)
	for _, asn := range in.Dataset.IfaceASN {
		if _, ok := c.ids.Member(asn); !ok {
			extraASNs = append(extraASNs, asn)
		}
	}
	sort.Slice(extraASNs, func(i, j int) bool { return extraASNs[i] < extraASNs[j] })
	for _, asn := range extraASNs {
		c.ids.AddMember(asn)
	}
	// Interfaces: the merged dataset's records, ascending by address,
	// so IfaceID order matches address order over the frozen inputs.
	// Two passes: collect-and-sort (integer-keyed for the all-IPv4
	// common case), then fill the table in one sweep.
	for _, ip := range sortedDatasetIfaces(in.Dataset) {
		c.ids.AddIface(ip)
	}
	// Facilities: the world roster (already dense, interned for the
	// round-trip surface).
	for _, f := range in.World.Facilities {
		if f != nil {
			c.ids.AddFac(f.ID)
		}
	}
	c.growColumns()

	// The substrate indexes depend only on the (immutable) inputs and
	// not on each other, so they build concurrently: the ping-campaign
	// fold (the only goroutine that may intern — campaign targets
	// outside the registry dataset — which is why the other two touch
	// neither the table nor the columns), the traceroute plane (IP map
	// -> detector -> crossings / private hops, all in the address
	// domain), and the geo unit vectors. Each goroutine writes disjoint
	// context fields; wg.Wait is the publication barrier.
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		if in.Ping == nil {
			return
		}
		// The campaign pre-folds its per-interface aggregates into
		// address-ordered rows; the fold here is one linear sweep.
		for _, row := range in.Ping.AggRows() {
			a := row.Agg
			id := c.ids.AddIface(row.Iface)
			c.growColumns()
			c.rtt[id] = a.RTTMinMs
			c.bestVP[id] = c.vpSlotOf(a.BestVP)
			if a.BestRoundsUp {
				c.rounds.Set(uint32(id))
			}
		}
	}()
	go func() {
		defer wg.Done()
		c.ipmap = registry.BuildIPMap(in.World)
		c.det = traix.NewDetector(in.Dataset, c.ipmap)
		c.lans = traix.NewLANSet(traix.LANPrefixes(in.World))
		if len(in.Paths) > 0 {
			// The corpus splits the paths into membership-independent
			// detections (settled here, once) and peering-LAN candidates
			// that Detect re-evaluates against the current dataset —
			// both now and after every membership delta (see Apply).
			c.corpus = traix.NewCorpus(in.Paths, c.lans, c.ipmap)
			c.crossings = c.corpus.DetectCrossings(c.det)
		}
	}()
	go func() {
		defer wg.Done()
		maxID := netsim.FacilityID(-1)
		for _, f := range in.World.Facilities {
			if f != nil && f.ID > maxID {
				maxID = f.ID
			}
		}
		c.facVecs = make([]geo.Vec3, maxID+1)
		c.facOK = make([]bool, maxID+1)
		for _, f := range in.World.Facilities {
			if f == nil || f.ID < 0 {
				continue
			}
			c.facVecs[f.ID] = geo.UnitVec(f.Loc)
			c.facOK[f.ID] = true
		}
	}()
	wg.Wait()

	// ---- back to serial: compact the detections into ID columns
	// (interning crossing participants), project the colocation and
	// port tables, and index the private neighbours. ----
	c.cross.CompactCrossings(c.crossings, c.ids)
	if c.corpus != nil {
		c.corpus.CompactStaticInto(&c.priv, c.ids)
	}
	c.growColumns()
	c.colo = registry.NewColoIndex(in.Colo, in.Dataset, c.ids)
	c.rebuildByASPriv()

	return c
}

// sortedDatasetIfaces returns the dataset's interface addresses in
// ascending order. All-IPv4 datasets (every input this system
// generates) sort in the integer domain — one uint32 compare per
// element instead of a 24-byte netip compare under reflection.
func sortedDatasetIfaces(ds *registry.Dataset) []netip.Addr {
	u32 := make([]uint32, 0, len(ds.IfaceASN))
	for ip := range ds.IfaceASN {
		if !ip.Is4() {
			return sortedDatasetIfacesGeneric(ds)
		}
		u32 = append(u32, ip4.U32(ip))
	}
	slices.Sort(u32)
	out := make([]netip.Addr, len(u32))
	for i, u := range u32 {
		out[i] = ip4.Addr(u)
	}
	return out
}

// sortedDatasetIfacesGeneric is the mixed-family fallback.
func sortedDatasetIfacesGeneric(ds *registry.Dataset) []netip.Addr {
	out := make([]netip.Addr, 0, len(ds.IfaceASN))
	for ip := range ds.IfaceASN {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// ixpUnion lists every IXP name the dataset mentions — the prefix
// plane plus interface records whose prefix record was lost to source
// noise — sorted, so interned IXPID order equals name order.
func ixpUnion(in Inputs) []string {
	seen := make(map[string]bool)
	var names []string
	add := func(name string) {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	for _, name := range in.Dataset.PrefixIXP {
		add(name)
	}
	for _, name := range in.Dataset.IfaceIXP {
		add(name)
	}
	sort.Strings(names)
	return names
}

// growColumns pads the interface-indexed columns to the current ID
// space (NaN / -1 sentinel for unmeasured interfaces), extending in
// bulk rather than element-by-element.
func (c *Context) growColumns() {
	n := c.ids.NumIfaces()
	if old := len(c.rtt); old < n {
		if cap(c.rtt) < n {
			next := make([]float64, n, n+n/8)
			copy(next, c.rtt)
			c.rtt = next
		} else {
			c.rtt = c.rtt[:n]
		}
		nan := math.NaN()
		for i := old; i < n; i++ {
			c.rtt[i] = nan
		}
	}
	if old := len(c.bestVP); old < n {
		if cap(c.bestVP) < n {
			next := make([]int32, n, n+n/8)
			copy(next, c.bestVP)
			c.bestVP = next
		} else {
			c.bestVP = c.bestVP[:n]
		}
		for i := old; i < n; i++ {
			c.bestVP[i] = -1
		}
	}
}

// vpSlotOf interns a vantage-point pointer into a dense slot (-1 for
// nil). Slots feed the bestVP column and the ring memo keys.
func (c *Context) vpSlotOf(vp *pingsim.VP) int32 {
	if vp == nil {
		return -1
	}
	c.vpMu.Lock()
	defer c.vpMu.Unlock()
	if s, ok := c.vpSlot[vp]; ok {
		return s
	}
	s := int32(len(c.vps))
	c.vps = append(c.vps, vp)
	c.vpSlot[vp] = s
	return s
}

// vpAt returns the vantage point behind a slot.
func (c *Context) vpAt(slot int32) *pingsim.VP {
	c.vpMu.Lock()
	defer c.vpMu.Unlock()
	return c.vps[slot]
}

// setPing patches one interface's campaign columns (Apply overrides
// and the step tests inject measurements through here).
func (c *Context) setPing(ip netip.Addr, rtt float64, vp *pingsim.VP, rounds bool) {
	id := c.ids.AddIface(ip)
	c.growColumns()
	c.rtt[id] = rtt
	c.bestVP[id] = c.vpSlotOf(vp)
	if rounds {
		c.rounds.Set(uint32(id))
	} else {
		c.rounds.Clear(uint32(id))
	}
}

// clearPing removes one interface's measurement.
func (c *Context) clearPing(ip netip.Addr) {
	id, ok := c.ids.Iface(ip)
	if !ok || int(id) >= len(c.rtt) {
		return
	}
	c.rtt[id] = math.NaN()
	c.bestVP[id] = -1
	c.rounds.Clear(uint32(id))
}

// HasIXP reports whether the merged dataset's prefix plane knows the
// named IXP. The set is fixed at construction: membership deltas never
// touch the prefix plane.
func (c *Context) HasIXP(name string) bool {
	id, ok := c.ids.IXP(name)
	return ok && c.roster.Get(uint32(id))
}

// BestVP returns the vantage point behind an interface's current
// campaign minimum, reflecting all applied deltas. Callers must not
// run concurrently with Apply (the rpi engine resolves under its
// apply lock).
func (c *Context) BestVP(ip netip.Addr) (*pingsim.VP, bool) {
	id, ok := c.ids.Iface(ip)
	if !ok || int(id) >= len(c.bestVP) {
		return nil, false
	}
	slot := c.bestVP[id]
	if slot < 0 {
		return nil, false
	}
	return c.vpAt(slot), true
}

// resolverFor returns the memoized resolver for an alias mode,
// creating it on first use (construction is cheap and pure).
func (c *Context) resolverFor(mode alias.Mode) *alias.Resolver {
	c.aliasMu.Lock()
	defer c.aliasMu.Unlock()
	r, ok := c.resolvers[mode]
	if !ok {
		r = alias.NewResolver(alias.NewProber(c.in.World, c.in.Seed), mode)
		c.resolvers[mode] = r
	}
	return r
}

// Inputs returns the inputs the context was built from.
func (c *Context) Inputs() Inputs { return c.in }

// Run executes the methodology over all memberships known to the
// merged dataset, reusing the shared substrate. Reports are identical
// to the package-level Run for the same inputs and options.
func (c *Context) Run(opt Options) (*Report, error) {
	p := c.newPipeline(opt)
	rep := p.newDomain()
	if opt.EnablePortCapacity {
		p.stepPortCapacity(rep)
	}
	if opt.EnableRTTColo {
		p.stepRTTColo(rep)
	}
	if opt.EnableMultiIXP {
		p.stepMultiIXP(rep, nil)
	}
	if opt.EnablePrivate {
		p.stepPrivate(rep)
	}
	return rep, nil
}

// RunWithOrder executes the enabled steps in an explicit order (the
// step-ordering ablation, DESIGN.md section 6). Steps absent from
// order do not run.
func (c *Context) RunWithOrder(opt Options, order []Step) (*Report, error) {
	p := c.newPipeline(opt)
	rep := p.newDomain()
	for _, s := range order {
		switch s {
		case StepPortCapacity:
			p.stepPortCapacity(rep)
		case StepRTTColo:
			p.stepRTTColo(rep)
		case StepMultiIXP:
			p.stepMultiIXP(rep, nil)
		case StepPrivate:
			p.stepPrivate(rep)
		default:
			return nil, fmt.Errorf("core: RunWithOrder does not support %v", s)
		}
	}
	return rep, nil
}

// RunStep evaluates one step of the methodology in isolation over a
// fresh all-unknown domain (the per-step rows of Table 4); see the
// package-level RunStep for the seeding semantics of Step 4.
func (c *Context) RunStep(opt Options, s Step) (*Report, error) {
	p := c.newPipeline(opt)
	overlay := p.newDomain()
	switch s {
	case StepPortCapacity:
		p.stepPortCapacity(overlay)
	case StepRTTColo:
		p.stepRTTColo(overlay)
	case StepMultiIXP:
		base, err := c.Run(opt)
		if err != nil {
			return nil, err
		}
		type memKey struct {
			asn netsim.ASN
			ixp string
		}
		seedIdx := make(map[memKey]PeerClass)
		for k, inf := range base.Inferences {
			if (inf.Step == StepPortCapacity || inf.Step == StepRTTColo) && inf.Class != ClassUnknown {
				mk := memKey{inf.ASN, k.IXP}
				if _, ok := seedIdx[mk]; !ok {
					seedIdx[mk] = inf.Class
				}
			}
		}
		seed := func(asn netsim.ASN, ixp string) PeerClass {
			return seedIdx[memKey{asn, ixp}]
		}
		p.stepMultiIXP(overlay, seed)
	case StepPrivate:
		p.stepPrivate(overlay)
	default:
		return nil, fmt.Errorf("core: RunStep does not support %v", s)
	}
	return overlay, nil
}

// Baseline runs the Castro et al. RTT-threshold inference over the
// shared substrate. Only memberships with a usable campaign minimum
// receive a verdict.
func (c *Context) Baseline(thresholdMs float64) (*Report, error) {
	rep, _ := c.domainReport(c.rtt, func(inf *Inference, rtt float64, _ domEntry) {
		inf.Step = StepBaseline
		if rtt > thresholdMs {
			inf.Class = ClassRemote
		} else {
			inf.Class = ClassLocal
		}
	})
	return rep, nil
}

// domainReport materializes the all-unknown inference domain in one
// allocation, fills in RTT minimums from the given column view, and
// lets measured finish each entry that has one. It backs both
// newDomain and Baseline so domain construction has a single
// definition. The returned slice is the report's backing inference
// array, aligned with domainEntries order.
func (c *Context) domainReport(rtt []float64, measured func(inf *Inference, rtt float64, e domEntry)) (*Report, []Inference) {
	entries := c.domainEntries()
	infs := make([]Inference, len(entries))
	rep := &Report{Inferences: make(map[Key]*Inference, len(entries))}
	for i, e := range entries {
		inf := &infs[i]
		*inf = Inference{
			IXP: e.key.IXP, Iface: e.key.Iface, ASN: e.asn,
			RTTMinMs:              math.NaN(),
			FeasibleIXPFacilities: -1,
		}
		if v := rtt[e.iface]; !math.IsNaN(v) {
			inf.RTTMinMs = v
			measured(inf, v, e)
		}
		rep.Inferences[e.key] = inf
	}
	return rep, infs
}

// domainEntries returns the inference domain — one entry per interface
// record of the merged dataset, deduplicated, in deterministic order
// (IXPs sorted by name, interfaces ascending within each) — building
// it on first use.
func (c *Context) domainEntries() []domEntry {
	c.domMu.Lock()
	defer c.domMu.Unlock()
	c.buildDomainLocked()
	return c.domain
}

// memberGroups returns the (member, IXP) -> domain-index grouping Step
// 4's propagation reads, building the domain as needed. Group indexes
// are ascending by interface address (the domain order within one
// IXP), which classOf's first-decided-entry rule depends on.
func (c *Context) memberGroups() map[uint64][]int32 {
	c.domMu.Lock()
	defer c.domMu.Unlock()
	c.buildDomainLocked()
	return c.memGroups
}

func groupKey(m ident.MemberID, x ident.IXPID) uint64 {
	return uint64(m)<<32 | uint64(x)
}

// buildDomainLocked builds the domain and its (member, IXP) grouping;
// the caller holds domMu. One pass over the dataset's interface
// records groups them per roster IXP (the old per-IXP MembersOf scans
// walked the whole record map once per exchange — O(records x IXPs));
// the per-IXP buckets then sort by address and emit in roster-name
// order, which is interned-IXPID order.
func (c *Context) buildDomainLocked() {
	if c.domBuilt {
		return
	}
	buckets := make([][]domEntry, c.ids.NumIXPs())
	for ip, name := range c.in.Dataset.IfaceIXP {
		id, ok := c.ids.IXP(name)
		if !ok || !c.roster.Get(uint32(id)) {
			continue
		}
		buckets[id] = append(buckets[id],
			c.newDomEntry(Key{IXP: name, Iface: ip}, c.in.Dataset.IfaceASN[ip]))
	}
	n := 0
	for _, b := range buckets {
		n += len(b)
	}
	c.domain = make([]domEntry, 0, n)
	for _, b := range buckets {
		slices.SortFunc(b, func(x, y domEntry) int { return x.key.Iface.Compare(y.key.Iface) })
		c.domain = append(c.domain, b...)
	}
	c.rebuildGroupsLocked()
	c.domBuilt = true
}

// newDomEntry resolves one membership's interned IDs. Every entity is
// interned at construction or during Apply, so the lookups always hit;
// AddIface/AddMember keep the failure mode graceful if that invariant
// is ever broken by a caller mutating Inputs behind the context.
func (c *Context) newDomEntry(k Key, asn netsim.ASN) domEntry {
	iface, ok := c.ids.Iface(k.Iface)
	if !ok {
		iface = c.ids.AddIface(k.Iface)
		c.growColumns()
	}
	member, ok := c.ids.Member(asn)
	if !ok {
		member = c.ids.AddMember(asn)
		c.colo.Grow(c.ids)
		c.growByASPriv()
	}
	ixp, _ := c.ids.IXP(k.IXP)
	return domEntry{key: k, asn: asn, iface: iface, member: member, ixp: ixp}
}

// rebuildGroupsLocked reindexes memGroups from the current domain; the
// caller holds domMu.
func (c *Context) rebuildGroupsLocked() {
	groups := make(map[uint64][]int32, len(c.memGroups))
	for i, e := range c.domain {
		gk := groupKey(e.member, e.ixp)
		groups[gk] = append(groups[gk], int32(i))
	}
	c.memGroups = groups
}

// rebuildByASPriv reindexes the private-hop neighbours per member,
// reusing the per-member slice capacity across Apply calls.
func (c *Context) rebuildByASPriv() {
	n := c.ids.NumMembers()
	if cap(c.byASPriv) < n {
		next := make([][]privNeighbour, n)
		copy(next, c.byASPriv)
		c.byASPriv = next
	}
	c.byASPriv = c.byASPriv[:n]
	for i := range c.byASPriv {
		c.byASPriv[i] = c.byASPriv[i][:0]
	}
	for i := 0; i < c.priv.Len(); i++ {
		a, b := c.priv.AAS[i], c.priv.BAS[i]
		c.byASPriv[a] = append(c.byASPriv[a], privNeighbour{c.priv.A[i], b})
		c.byASPriv[b] = append(c.byASPriv[b], privNeighbour{c.priv.B[i], a})
	}
}

// growByASPriv extends the per-member neighbour index to the current
// member space.
func (c *Context) growByASPriv() {
	for len(c.byASPriv) < c.ids.NumMembers() {
		c.byASPriv = append(c.byASPriv, nil)
	}
}

// traceAugmented returns the RTT columns extended with traceroute-
// derived estimates ("Beyond Pings", Section 8), building them lazily.
// Apply clears the built flag, so the view always reflects the current
// crossings and campaign state; the columns are rewritten in place —
// a rebuild after a delta reuses the interned capacity instead of
// reallocating the whole view.
func (c *Context) traceAugmented() (rtt []float64, bestVP []int32, rounds, derived *ident.Bits) {
	c.traceMu.Lock()
	defer c.traceMu.Unlock()
	if !c.traceBuilt {
		n := len(c.rtt)
		if cap(c.traceRTT) < n {
			c.traceRTT = make([]float64, n)
		}
		c.traceRTT = c.traceRTT[:n]
		copy(c.traceRTT, c.rtt)
		if cap(c.traceBestVP) < n {
			c.traceBestVP = make([]int32, n)
		}
		c.traceBestVP = c.traceBestVP[:n]
		copy(c.traceBestVP, c.bestVP)
		c.traceRounds.CopyFrom(&c.rounds)
		c.traceDerived.Reset()
		for _, e := range DeriveTracerouteRTT(c.crossings) {
			id, ok := c.ids.Iface(e.Iface)
			if !ok || int(id) >= n {
				continue
			}
			if !math.IsNaN(c.traceRTT[id]) {
				continue // ping data always wins
			}
			vp := c.pseudoVP(e.IXP)
			if vp == nil {
				continue
			}
			c.traceRTT[id] = e.RTTMs
			c.traceBestVP[id] = c.vpSlotOf(vp)
			c.traceRounds.Clear(uint32(id))
			c.traceDerived.Set(uint32(id))
		}
		c.traceBuilt = true
	}
	return c.traceRTT, c.traceBestVP, &c.traceRounds, &c.traceDerived
}

// pseudoVP returns (allocating lazily) a synthetic vantage point at the
// IXP's primary recorded facility, used to anchor the Step 3 geometry
// for traceroute-derived RTTs.
func (c *Context) pseudoVP(ixp string) *pingsim.VP {
	c.pvMu.Lock()
	defer c.pvMu.Unlock()
	if vp, ok := c.pseudoVPs[ixp]; ok {
		return vp
	}
	facs := c.in.Colo.IXPFacilities[ixp]
	if len(facs) == 0 {
		c.pseudoVPs[ixp] = nil
		return nil
	}
	fac := c.in.World.Facility(facs[0])
	if fac == nil {
		c.pseudoVPs[ixp] = nil
		return nil
	}
	vp := &pingsim.VP{
		ID: -1 - len(c.pseudoVPs), IXP: -1, Kind: pingsim.KindLG,
		Facility: fac.ID, Loc: fac.Loc,
	}
	c.pseudoVPs[ixp] = vp
	return vp
}

// facVec returns the precomputed unit vector of a facility.
func (c *Context) facVec(id netsim.FacilityID) (geo.Vec3, bool) {
	if id < 0 || int(id) >= len(c.facVecs) || !c.facOK[id] {
		return geo.Vec3{}, false
	}
	return c.facVecs[id], true
}

// ringEntries returns the sorted facility-distance index for one
// (VP slot, facility set) pair, building and memoizing it on first
// use. facs is resolved by the caller from the key's registry handle.
func (c *Context) ringEntries(key uint64, slot int32, facs []netsim.FacilityID) []ringEntry {
	c.ringMu.RLock()
	if e, ok := c.rings[key]; ok {
		c.ringMu.RUnlock()
		return e
	}
	c.ringMu.RUnlock()

	v := geo.UnitVec(c.vpAt(slot).Loc)
	entries := make([]ringEntry, 0, len(facs))
	for _, f := range facs {
		vec, ok := c.facVec(f)
		if !ok {
			continue
		}
		entries = append(entries, ringEntry{d: geo.ArcKm(v, vec), id: f})
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].d != entries[j].d {
			return entries[i].d < entries[j].d
		}
		return entries[i].id < entries[j].id
	})
	c.ringMu.Lock()
	c.rings[key] = entries
	c.ringMu.Unlock()
	return entries
}

// ringQuery appends to buf the facilities of the keyed set whose
// distance from the slot's VP location falls inside [dMin, dMax], in
// ascending distance order, and returns the extended buffer.
func (c *Context) ringQuery(slot int32, kind uint8, set uint32, facs []netsim.FacilityID, dMin, dMax float64, buf []netsim.FacilityID) []netsim.FacilityID {
	entries := c.ringEntries(ringKeyFor(slot, kind, set), slot, facs)
	i := sort.Search(len(entries), func(i int) bool { return entries[i].d >= dMin })
	for ; i < len(entries) && entries[i].d <= dMax; i++ {
		buf = append(buf, entries[i].id)
	}
	return buf
}

// facDist computes min and max great-circle distance between two
// facility sets using the precomputed unit vectors; ok is false when
// either set contributes no locatable facility.
func (c *Context) facDist(a, b []netsim.FacilityID) (minKm, maxKm float64, ok bool) {
	minKm = math.Inf(1)
	for _, fa := range a {
		va, okA := c.facVec(fa)
		if !okA {
			continue
		}
		for _, fb := range b {
			vb, okB := c.facVec(fb)
			if !okB {
				continue
			}
			d := geo.ArcKm(va, vb)
			if d < minKm {
				minKm = d
			}
			if d > maxKm {
				maxKm = d
			}
			ok = true
		}
	}
	return minKm, maxKm, ok
}

// resolveIDs memoizes alias resolution per (mode, interface-ID set).
// ids must be sorted ascending by address (all call sites sort), so
// equal address multisets share one cache key. Resolution itself runs
// at the address edge — the resolver probes netip.Addr values — but
// both the memo key and the cached clusters live in ID space. The
// returned clusters are shared across runs and must be treated as
// read-only. keyBuf is scratch for the lookup key (may be nil).
func (c *Context) resolveIDs(mode alias.Mode, ifaceIDs []ident.IfaceID, keyBuf []byte) ([][]ident.IfaceID, []byte) {
	keyBuf = keyBuf[:0]
	keyBuf = append(keyBuf, byte(mode))
	for _, id := range ifaceIDs {
		keyBuf = append(keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}

	c.aliasMu.RLock()
	if r, ok := c.aliasCache[string(keyBuf)]; ok {
		c.aliasMu.RUnlock()
		return r, keyBuf
	}
	c.aliasMu.RUnlock()

	// Resolution runs outside the lock: it is pure, so a concurrent
	// duplicate computes the identical value.
	addrs := make([]netip.Addr, len(ifaceIDs))
	for i, id := range ifaceIDs {
		addrs[i] = c.ids.Addr(id)
	}
	clusters := c.resolverFor(mode).Resolve(addrs)
	res := make([][]ident.IfaceID, len(clusters))
	for i, cl := range clusters {
		out := make([]ident.IfaceID, len(cl))
		for j, ip := range cl {
			id, _ := c.ids.Iface(ip)
			out[j] = id
		}
		res[i] = out
	}

	c.aliasMu.Lock()
	c.aliasCache[string(keyBuf)] = res
	c.aliasMu.Unlock()
	return res, keyBuf
}
