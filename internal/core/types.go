// Package core implements the paper's primary contribution: the
// five-step methodology for inferring whether each IXP member peers
// locally or remotely (Section 5), together with the RTT-threshold
// baseline of Castro et al. it is evaluated against, and the
// validation metrics of Table 3.
//
// The pipeline consumes only observable artefacts — the merged IXP
// registry dataset, the colocation database, ping-campaign minimum
// RTTs, the traceroute corpus and live alias probing. Ground-truth
// membership kinds in the netsim world are touched exclusively by the
// validation helpers.
//
// Callers that run the pipeline once can use the package-level Run /
// RunWithOrder / RunStep / Baseline. Callers that run it repeatedly
// over the same inputs — the ablation suite, the experiment harness —
// should build a Context once with NewContext and call the equivalent
// methods on it: the context precomputes and memoizes everything that
// depends only on the inputs (RTT indexes, traceroute detections,
// facility geometry, alias clusters), is safe for concurrent use, and
// produces reports identical to the package-level functions (see
// DESIGN.md section 4 and the determinism tests in context_test.go).
package core

import (
	"fmt"
	"math"
	"net/netip"

	"rpeer/internal/netsim"
)

// PeerClass is the inference outcome for one IXP membership.
type PeerClass uint8

const (
	// ClassUnknown: the methodology could not decide.
	ClassUnknown PeerClass = iota
	// ClassLocal: the member is physically present at the IXP fabric.
	ClassLocal
	// ClassRemote: the member peers remotely (Definition 1).
	ClassRemote
)

// String implements fmt.Stringer.
func (c PeerClass) String() string {
	switch c {
	case ClassLocal:
		return "local"
	case ClassRemote:
		return "remote"
	default:
		return "unknown"
	}
}

// Step identifies which part of the methodology produced an inference.
type Step uint8

const (
	// StepNone marks memberships without an inference.
	StepNone Step = iota
	// StepPortCapacity is Step 1: fractional ports imply resellers.
	StepPortCapacity
	// StepRTTColo is Steps 2+3: colocation-informed RTT interpretation.
	StepRTTColo
	// StepMultiIXP is Step 4: multi-IXP router propagation.
	StepMultiIXP
	// StepPrivate is Step 5: private-connectivity voting.
	StepPrivate
	// StepBaseline marks the Castro et al. RTT-threshold baseline.
	StepBaseline
)

// String implements fmt.Stringer.
func (s Step) String() string {
	switch s {
	case StepPortCapacity:
		return "port-capacity"
	case StepRTTColo:
		return "rtt+colo"
	case StepMultiIXP:
		return "multi-ixp"
	case StepPrivate:
		return "private-links"
	case StepBaseline:
		return "rtt-threshold"
	default:
		return "none"
	}
}

// Inference is the pipeline verdict for one member interface at one
// IXP.
type Inference struct {
	IXP   string
	Iface netip.Addr
	ASN   netsim.ASN
	Class PeerClass
	Step  Step
	// RTTMinMs is the campaign minimum RTT (NaN when unmeasured).
	RTTMinMs float64
	// FeasibleIXPFacilities is the number of IXP facilities inside the
	// feasible distance ring of Step 3 (-1 when Step 3 did not run).
	FeasibleIXPFacilities int
	// TraceRTT marks RTT minimums derived from traceroute paths
	// (Section 8 "Beyond Pings") instead of the ping campaign.
	TraceRTT bool
}

// HasRTT reports whether a usable RTT minimum was available.
func (inf *Inference) HasRTT() bool { return !math.IsNaN(inf.RTTMinMs) }

// RouterClass is the Fig 3 taxonomy of multi-IXP routers.
type RouterClass uint8

const (
	// RouterUnclassified: the rules could not type the router.
	RouterUnclassified RouterClass = iota
	// RouterLocal: local to all involved IXPs (Fig 3a).
	RouterLocal
	// RouterRemote: remote to all involved IXPs (Fig 3b).
	RouterRemote
	// RouterHybrid: local to some IXPs, remote to others (Fig 3c).
	RouterHybrid
)

// String implements fmt.Stringer.
func (c RouterClass) String() string {
	switch c {
	case RouterLocal:
		return "local"
	case RouterRemote:
		return "remote"
	case RouterHybrid:
		return "hybrid"
	default:
		return "unclassified"
	}
}

// MultiIXPRouter describes one alias-resolved router observed facing
// more than one IXP (Section 5.1.3).
type MultiIXPRouter struct {
	ASN netsim.ASN
	// Ifaces is the alias cluster.
	Ifaces []netip.Addr
	// IXPs lists the next-hop exchanges of the cluster.
	IXPs []string
	// Class is the Fig 3 classification.
	Class RouterClass
}

// Key identifies one membership in inference maps.
type Key struct {
	IXP   string
	Iface netip.Addr
}

// String implements fmt.Stringer.
func (k Key) String() string { return fmt.Sprintf("%s/%s", k.IXP, k.Iface) }

// Report is the pipeline output.
type Report struct {
	// Inferences maps each known membership to its verdict (always
	// populated, possibly with ClassUnknown).
	Inferences map[Key]*Inference
	// MultiRouters lists the classified multi-IXP routers (Fig 9d).
	MultiRouters []*MultiIXPRouter
}

// ByIXP groups inferences per IXP name.
func (r *Report) ByIXP() map[string][]*Inference {
	out := make(map[string][]*Inference)
	for _, inf := range r.Inferences {
		out[inf.IXP] = append(out[inf.IXP], inf)
	}
	return out
}

// StepShare returns, per IXP, the fraction of decided inferences made
// by each step (Fig 10a).
func (r *Report) StepShare() map[string]map[Step]float64 {
	counts := make(map[string]map[Step]int)
	totals := make(map[string]int)
	for _, inf := range r.Inferences {
		if inf.Class == ClassUnknown {
			continue
		}
		m := counts[inf.IXP]
		if m == nil {
			m = make(map[Step]int)
			counts[inf.IXP] = m
		}
		m[inf.Step]++
		totals[inf.IXP]++
	}
	out := make(map[string]map[Step]float64, len(counts))
	for ixp, m := range counts {
		fr := make(map[Step]float64, len(m))
		for s, n := range m {
			fr[s] = float64(n) / float64(totals[ixp])
		}
		out[ixp] = fr
	}
	return out
}
