package core

import (
	"fmt"
	"hash/fnv"
	"math"
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/snapshot"
)

// This file is the bridge between the live context and the durable
// column format (internal/snapshot). The full engine state is huge but
// almost all of it is regenerable: the world, the colo database, the
// traceroute corpus and the base ping campaign are deterministic
// functions of the base inputs. Only the delta-mutable slice needs to
// be durable:
//
//   - registry membership (IfaceIXP / IfaceASN / Ports) — churned by
//     joins and leaves;
//   - the cumulative ping override overlay — layered by re-campaigns.
//
// DumpColumns captures exactly that slice as flat columns, and
// RestoreInputs patches it back over freshly regenerated base inputs.
// The round-trip contract (proved by TestPersistRoundTrip and the rpi
// recovery tests) is that a context built over RestoreInputs(base,
// DumpColumns()) produces byte-identical reports to the context that
// was dumped — it leans on the engine's existing determinism contract
// (post-Apply state ≡ cold rebuild over Inputs()).

// Snapshot column names. The iface columns are parallel (one row per
// live membership, in interned-ID order), as are the port and ping
// groups.
const (
	colIXPName = "ixp.name" // string: local IXP name table

	colIfaceAddr = "iface.addr" // addr: member interface address
	colIfaceASN  = "iface.asn"  // u32: member ASN
	colIfaceIXP  = "iface.ixp"  // u32: index into ixp.name

	colPortIXP  = "port.ixp"  // u32: index into ixp.name
	colPortASN  = "port.asn"  // u32: member ASN
	colPortMbps = "port.mbps" // u64: reported capacity

	colPingAddr  = "ping.addr"  // addr: overridden interface
	colPingRTT   = "ping.rtt"   // f64: RTTmin (NaN = revoked)
	colPingVP    = "ping.vp"    // u32: best VP id (NoPingVP = none)
	colPingFlags = "ping.flags" // u8: rounding flags
)

// NoPingVP is the ping.vp sentinel for an override without a vantage
// point (a measurement revocation).
const NoPingVP = ^uint32(0)

// ping.flags bits.
const (
	pingFlagBestRoundsUp = 1 << 0
	pingFlagAnyRounding  = 1 << 1
)

// Fingerprint hashes the identifying characteristics of base inputs:
// the seed, the prefix plane, the advertised minimum ports, the
// vantage-point roster and the corpus size. Snapshots and WAL segments
// carry it so that recovery refuses to marry durable state to a
// different world (same directory, different -seed/-scale flags).
// It is not a content hash of the full inputs — it fingerprints the
// generator configuration those inputs are a deterministic function
// of.
func Fingerprint(in Inputs) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	u64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	str := func(s string) {
		u64(uint64(len(s)))
		h.Write([]byte(s))
	}
	u64(uint64(in.Seed))
	if ds := in.Dataset; ds != nil {
		prefixes := make([]string, 0, len(ds.PrefixIXP))
		for p, name := range ds.PrefixIXP {
			prefixes = append(prefixes, p.String()+"="+name)
		}
		sort.Strings(prefixes)
		u64(uint64(len(prefixes)))
		for _, s := range prefixes {
			str(s)
		}
		mins := make([]string, 0, len(ds.MinPort))
		for name, mbps := range ds.MinPort {
			mins = append(mins, fmt.Sprintf("%s=%d", name, mbps))
		}
		sort.Strings(mins)
		u64(uint64(len(mins)))
		for _, s := range mins {
			str(s)
		}
	}
	if in.Ping != nil {
		u64(uint64(len(in.Ping.VPs)))
		for _, vp := range in.Ping.VPs {
			u64(uint64(vp.ID))
			str(vp.SrcIP.String())
		}
	}
	u64(uint64(len(in.Paths)))
	return h.Sum64()
}

// DumpColumns captures the delta-mutable slice of the context's state
// as snapshot columns. The caller (the rpi persistence layer) stamps
// Seq and Fingerprint on the returned Snap.
//
// Determinism: membership rows walk the intern table in ID order —
// append order, which is fixed by the delta history — and the port and
// ping groups are sorted by natural key, so the same engine history
// always dumps byte-identical columns.
//
// DumpColumns must not run concurrently with Apply; the rpi engine
// serializes them behind its lock.
func (c *Context) DumpColumns() *snapshot.Snap {
	ds := c.in.Dataset

	// Local IXP name table: every name the membership and port rows
	// reference, sorted. (The interned IXP space would also work, but
	// it can contain roster names no row references; a local table
	// keeps snapshots self-contained and minimal.)
	nameSet := make(map[string]struct{}, c.ids.NumIXPs())
	for _, name := range ds.IfaceIXP {
		nameSet[name] = struct{}{}
	}
	for k := range ds.Ports {
		nameSet[k.IXP] = struct{}{}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)
	nameIdx := make(map[string]uint32, len(names))
	for i, name := range names {
		nameIdx[name] = uint32(i)
	}

	// Membership rows in interned-ID order, skipping tombstones (an
	// address the intern table knows but the dataset no longer lists
	// is a departed membership).
	addrs := c.ids.Ifaces()
	ifAddr := make([]netip.Addr, 0, len(ds.IfaceIXP))
	ifASN := make([]uint32, 0, len(ds.IfaceIXP))
	ifIXP := make([]uint32, 0, len(ds.IfaceIXP))
	for _, a := range addrs {
		ixp, ok := ds.IfaceIXP[a]
		if !ok {
			continue
		}
		ifAddr = append(ifAddr, a)
		ifASN = append(ifASN, uint32(ds.IfaceASN[a]))
		ifIXP = append(ifIXP, nameIdx[ixp])
	}

	// Port rows sorted by (IXP name, ASN).
	portKeys := make([]registry.PortKey, 0, len(ds.Ports))
	for k := range ds.Ports {
		portKeys = append(portKeys, k)
	}
	sort.Slice(portKeys, func(i, j int) bool {
		if portKeys[i].IXP != portKeys[j].IXP {
			return portKeys[i].IXP < portKeys[j].IXP
		}
		return portKeys[i].ASN < portKeys[j].ASN
	})
	portIXP := make([]uint32, len(portKeys))
	portASN := make([]uint32, len(portKeys))
	portMbps := make([]uint64, len(portKeys))
	for i, k := range portKeys {
		portIXP[i] = nameIdx[k.IXP]
		portASN[i] = uint32(k.ASN)
		portMbps[i] = uint64(ds.Ports[k])
	}

	// Ping override overlay sorted by address.
	var overlay map[netip.Addr]pingsim.Override
	if c.in.Ping != nil {
		overlay = c.in.Ping.Overlay()
	}
	pingAddrs := make([]netip.Addr, 0, len(overlay))
	for ip := range overlay {
		pingAddrs = append(pingAddrs, ip)
	}
	sort.Slice(pingAddrs, func(i, j int) bool { return pingAddrs[i].Less(pingAddrs[j]) })
	pingRTT := make([]float64, len(pingAddrs))
	pingVP := make([]uint32, len(pingAddrs))
	pingFlags := make([]uint8, len(pingAddrs))
	for i, ip := range pingAddrs {
		ov := overlay[ip]
		pingRTT[i] = ov.RTTMinMs
		pingVP[i] = NoPingVP
		if ov.BestVP != nil {
			pingVP[i] = uint32(ov.BestVP.ID)
		}
		var fl uint8
		if ov.BestRoundsUp {
			fl |= pingFlagBestRoundsUp
		}
		if ov.AnyRounding {
			fl |= pingFlagAnyRounding
		}
		pingFlags[i] = fl
	}

	s := &snapshot.Snap{}
	s.Add(snapshot.Column{Name: colIXPName, Kind: snapshot.KindString, Str: names})
	s.Add(snapshot.Column{Name: colIfaceAddr, Kind: snapshot.KindAddr, Addr: ifAddr})
	s.Add(snapshot.Column{Name: colIfaceASN, Kind: snapshot.KindU32, U32: ifASN})
	s.Add(snapshot.Column{Name: colIfaceIXP, Kind: snapshot.KindU32, U32: ifIXP})
	s.Add(snapshot.Column{Name: colPortIXP, Kind: snapshot.KindU32, U32: portIXP})
	s.Add(snapshot.Column{Name: colPortASN, Kind: snapshot.KindU32, U32: portASN})
	s.Add(snapshot.Column{Name: colPortMbps, Kind: snapshot.KindU64, U64: portMbps})
	s.Add(snapshot.Column{Name: colPingAddr, Kind: snapshot.KindAddr, Addr: pingAddrs})
	s.Add(snapshot.Column{Name: colPingRTT, Kind: snapshot.KindF64, F64: pingRTT})
	s.Add(snapshot.Column{Name: colPingVP, Kind: snapshot.KindU32, U32: pingVP})
	s.Add(snapshot.Column{Name: colPingFlags, Kind: snapshot.KindU8, U8: pingFlags})
	return s
}

// col fetches a required snapshot column of the given kind.
func col(s *snapshot.Snap, name string, kind snapshot.Kind) (*snapshot.Column, error) {
	c := s.Col(name)
	if c == nil {
		return nil, fmt.Errorf("core: snapshot is missing column %q", name)
	}
	if c.Kind != kind {
		return nil, fmt.Errorf("core: snapshot column %q has kind %d, want %d", name, c.Kind, kind)
	}
	return c, nil
}

// colGroup fetches a group of required columns and checks they are
// parallel (same row count as the first).
func colGroup(s *snapshot.Snap, specs []struct {
	name string
	kind snapshot.Kind
}) ([]*snapshot.Column, error) {
	out := make([]*snapshot.Column, len(specs))
	for i, sp := range specs {
		c, err := col(s, sp.name, sp.kind)
		if err != nil {
			return nil, err
		}
		if i > 0 && c.Len() != out[0].Len() {
			return nil, fmt.Errorf("core: snapshot column %q has %d rows, %q has %d",
				sp.name, c.Len(), specs[0].name, out[0].Len())
		}
		out[i] = c
	}
	return out, nil
}

// RestoreInputs patches the delta-mutable columns of a snapshot over
// regenerated base inputs, returning the Inputs a post-delta context
// would report via Inputs(). The base dataset is cloned, never
// mutated; base.Ping gains the persisted override overlay.
//
// Column-level integrity (checksums, truncation) is the snapshot
// decoder's job; RestoreInputs validates cross-column referential
// integrity — name-table indexes in range, vantage-point ids known to
// the base campaign — because a snapshot from a different world can be
// internally consistent yet reference entities the base lacks.
func RestoreInputs(base Inputs, s *snapshot.Snap) (Inputs, error) {
	if base.Dataset == nil {
		return Inputs{}, fmt.Errorf("core: restore needs base dataset")
	}
	nameCol, err := col(s, colIXPName, snapshot.KindString)
	if err != nil {
		return Inputs{}, err
	}
	names := nameCol.Str

	ifCols, err := colGroup(s, []struct {
		name string
		kind snapshot.Kind
	}{
		{colIfaceAddr, snapshot.KindAddr},
		{colIfaceASN, snapshot.KindU32},
		{colIfaceIXP, snapshot.KindU32},
	})
	if err != nil {
		return Inputs{}, err
	}
	portCols, err := colGroup(s, []struct {
		name string
		kind snapshot.Kind
	}{
		{colPortIXP, snapshot.KindU32},
		{colPortASN, snapshot.KindU32},
		{colPortMbps, snapshot.KindU64},
	})
	if err != nil {
		return Inputs{}, err
	}
	pingCols, err := colGroup(s, []struct {
		name string
		kind snapshot.Kind
	}{
		{colPingAddr, snapshot.KindAddr},
		{colPingRTT, snapshot.KindF64},
		{colPingVP, snapshot.KindU32},
		{colPingFlags, snapshot.KindU8},
	})
	if err != nil {
		return Inputs{}, err
	}

	ds := base.Dataset.Clone()
	ds.IfaceIXP = make(map[netip.Addr]string, len(ifCols[0].Addr))
	ds.IfaceASN = make(map[netip.Addr]netsim.ASN, len(ifCols[0].Addr))
	for i, a := range ifCols[0].Addr {
		ixpIdx := ifCols[2].U32[i]
		if int(ixpIdx) >= len(names) {
			return Inputs{}, fmt.Errorf("core: snapshot membership row %d references IXP index %d of %d", i, ixpIdx, len(names))
		}
		ds.IfaceIXP[a] = names[ixpIdx]
		ds.IfaceASN[a] = netsim.ASN(ifCols[1].U32[i])
	}
	ds.Ports = make(map[registry.PortKey]int, len(portCols[0].U32))
	for i, ixpIdx := range portCols[0].U32 {
		if int(ixpIdx) >= len(names) {
			return Inputs{}, fmt.Errorf("core: snapshot port row %d references IXP index %d of %d", i, ixpIdx, len(names))
		}
		k := registry.PortKey{IXP: names[ixpIdx], ASN: netsim.ASN(portCols[1].U32[i])}
		ds.Ports[k] = int(portCols[2].U64[i])
	}
	base.Dataset = ds

	if n := len(pingCols[0].Addr); n > 0 {
		if base.Ping == nil {
			return Inputs{}, fmt.Errorf("core: snapshot carries %d ping overrides but base has no campaign", n)
		}
		byID := make(map[uint32]*pingsim.VP, len(base.Ping.VPs))
		for _, vp := range base.Ping.VPs {
			byID[uint32(vp.ID)] = vp
		}
		overlay := make(map[netip.Addr]pingsim.Override, n)
		for i, ip := range pingCols[0].Addr {
			ov := pingsim.Override{
				RTTMinMs:     pingCols[1].F64[i],
				BestRoundsUp: pingCols[3].U8[i]&pingFlagBestRoundsUp != 0,
				AnyRounding:  pingCols[3].U8[i]&pingFlagAnyRounding != 0,
			}
			if id := pingCols[2].U32[i]; id != NoPingVP {
				vp, ok := byID[id]
				if !ok {
					return Inputs{}, fmt.Errorf("core: snapshot ping override for %s references unknown vantage point %d", ip, id)
				}
				ov.BestVP = vp
			} else if !math.IsNaN(ov.RTTMinMs) {
				return Inputs{}, fmt.Errorf("core: snapshot ping override for %s is measured (%v ms) but has no vantage point", ip, ov.RTTMinMs)
			}
			overlay[ip] = ov
		}
		base.Ping = base.Ping.WithOverrides(overlay)
	}
	return base, nil
}
