package core

import (
	"fmt"
	"math"
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
)

// Join is one membership appearing in the registry dataset: a member
// interface surfacing on an IXP peering LAN, as the merged data
// sources would eventually report it.
type Join struct {
	IXP   string
	Iface netip.Addr
	ASN   netsim.ASN
	// PortMbps, when positive, records (or refreshes) the member's
	// reported port capacity at the IXP.
	PortMbps int
}

// Delta is one batch of world changes for Context.Apply: membership
// churn (the joins and leaves internal/evolve models) plus refreshed
// per-interface campaign aggregates from a ping re-campaign.
type Delta struct {
	Joins  []Join
	Leaves []Key
	// Ping layers refreshed campaign aggregates over the current ping
	// result (see pingsim.Overrides); a NaN RTTMinMs removes the
	// interface's measurement.
	Ping map[netip.Addr]pingsim.Override
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return len(d.Joins) == 0 && len(d.Leaves) == 0 && len(d.Ping) == 0
}

// Apply absorbs a delta into the context, invalidating only the
// substrate the delta can reach. A context that has applied a delta is
// indistinguishable from one built cold over the post-delta inputs —
// the reports are identical (see the equivalence tests) — but the
// update costs a fraction of a rebuild:
//
//   - new entities append to the intern table (an interface that
//     re-joins revives its tombstoned ID) and the ID-indexed columns
//     grow in place; departing interfaces are tombstoned, never
//     compacted, so every column and memo stays valid;
//   - the RTT columns are patched per overridden interface; the full
//     campaign fold is not repeated;
//   - membership churn re-evaluates only the traceroute corpus's
//     peering-LAN candidates (the membership-dependent sliver of the
//     detection work), recompacts the crossing/private-hop columns in
//     place, and rebuilds the cheap member-set, domain and Step 4
//     observation indexes; the hop-by-hop corpus scan and the IP-to-AS
//     map are never repeated;
//   - the facility geometry, ring memos and alias clusters survive
//     untouched: they are keyed by VP slot, facility set and
//     interface-ID content, none of which a delta invalidates.
//
// The traceroute-RTT augmentation is dropped and rebuilt lazily into
// its existing column capacity.
//
// Apply validates the whole delta before mutating anything: joins must
// introduce new peering-LAN interfaces on IXPs the dataset knows,
// leaves must name existing memberships, and measured overrides must
// carry a vantage point. On error the context is unchanged.
//
// Apply must not run concurrently with pipeline runs or other Apply
// calls; the rpi engine serializes them behind its lock.
func (c *Context) Apply(d Delta) error {
	ds := c.in.Dataset

	// Validation completes before any mutation: a delta that fails
	// leaves the context untouched, and a delta that passes cannot
	// make the mutation phase below fail — the property the write-
	// ahead log relies on (a validated delta is safe to mutate with
	// after its log record is durable).
	leaving, err := c.validateDelta(d)
	if err != nil {
		return err
	}

	// ---- registry dataset + intern table ----
	// The detector's member-set refcounts adjust in step with the
	// dataset records (O(churn); the old path rebuilt the detector over
	// the whole dataset per delta).
	for _, k := range d.Leaves {
		if c.det != nil {
			c.det.NoteLeave(k.IXP, ds.IfaceASN[k.Iface])
		}
		delete(ds.IfaceASN, k.Iface)
		delete(ds.IfaceIXP, k.Iface)
		if id, ok := c.ids.Iface(k.Iface); ok {
			c.ids.RetireIface(id)
		}
	}
	for _, j := range d.Joins {
		if c.det != nil {
			c.det.NoteJoin(j.IXP, j.ASN)
		}
		ds.IfaceASN[j.Iface] = j.ASN
		ds.IfaceIXP[j.Iface] = j.IXP
		c.ids.AddIface(j.Iface) // appends or revives the tombstoned ID
		c.ids.AddMember(j.ASN)
		if j.PortMbps > 0 {
			ds.Ports[registry.PortKey{IXP: j.IXP, ASN: j.ASN}] = j.PortMbps
			ixp, _ := c.ids.IXP(j.IXP)
			m, _ := c.ids.Member(j.ASN)
			c.colo.SetPort(ixp, m, j.PortMbps)
		}
	}
	c.growColumns()
	c.colo.Grow(c.ids)
	c.growByASPriv()

	// ---- ping campaign ----
	if len(d.Ping) > 0 {
		c.in.Ping = c.in.Ping.WithOverrides(d.Ping)
		for ip, ov := range d.Ping {
			if math.IsNaN(ov.RTTMinMs) {
				c.clearPing(ip)
				continue
			}
			c.setPing(ip, ov.RTTMinMs, ov.BestVP, ov.BestRoundsUp)
		}
	}

	// ---- membership-dependent substrate ----
	if len(d.Joins)+len(d.Leaves) > 0 {
		// Only the crossing plane re-evaluates, and only where the
		// delta can reach: candidates anchored on changed addresses
		// re-resolve their address assignments, the rest re-check
		// membership (rule 3) against the incrementally-maintained
		// member sets. The private plane is fully static (see
		// traix.Corpus) and keeps its cold-build columns.
		if c.corpus != nil {
			changed := make(map[netip.Addr]bool, len(d.Joins)+len(d.Leaves))
			for ip := range leaving {
				changed[ip] = true
			}
			for _, j := range d.Joins {
				changed[j.Iface] = true
			}
			c.crossings = c.corpus.DetectDelta(c.det, changed)
		}
		c.cross.CompactCrossings(c.crossings, c.ids)
		c.growColumns()
		c.colo.Grow(c.ids)
		c.growByASPriv()
		c.patchDomain(d, leaving)

		// Step 4's observation and cluster memos fold crossings and
		// member interfaces; both are membership state.
		c.obsMu.Lock()
		c.obsBuilt = false
		c.obs = nil
		c.obsMu.Unlock()
		c.clusterMu.Lock()
		for mode := range c.clusters {
			delete(c.clusters, mode)
		}
		c.clusterMu.Unlock()
	}

	// ---- lazily rebuilt views: drop the built flag, keep capacity ----
	c.traceMu.Lock()
	c.traceBuilt = false
	c.traceMu.Unlock()

	return nil
}

// ValidateDelta runs Apply's validation phase without mutating
// anything: joins must introduce new peering-LAN interfaces on IXPs
// the dataset knows, leaves must name existing memberships, and
// measured overrides must carry a vantage point. A delta that passes
// is guaranteed to Apply cleanly against the current context state —
// the contract the persistence layer needs to log a delta before
// mutating with it.
func (c *Context) ValidateDelta(d Delta) error {
	_, err := c.validateDelta(d)
	return err
}

// validateDelta checks the whole delta against the current dataset and
// returns the set of leaving interfaces (Apply reuses it to build the
// changed-address set). It performs no mutation.
func (c *Context) validateDelta(d Delta) (leaving map[netip.Addr]bool, err error) {
	ds := c.in.Dataset
	leaving = make(map[netip.Addr]bool, len(d.Leaves))
	for _, k := range d.Leaves {
		if !k.Iface.IsValid() {
			return nil, fmt.Errorf("core: leave of invalid interface")
		}
		if leaving[k.Iface] {
			return nil, fmt.Errorf("core: duplicate leave of %s", k.Iface)
		}
		if ixp, ok := ds.IfaceIXP[k.Iface]; !ok || ixp != k.IXP {
			return nil, fmt.Errorf("core: leave of unknown membership %s/%s", k.IXP, k.Iface)
		}
		leaving[k.Iface] = true
	}
	joining := make(map[netip.Addr]bool, len(d.Joins))
	for _, j := range d.Joins {
		if !j.Iface.IsValid() || j.ASN == 0 {
			return nil, fmt.Errorf("core: join needs a valid interface and ASN")
		}
		if !c.HasIXP(j.IXP) {
			return nil, fmt.Errorf("core: join at unknown IXP %q", j.IXP)
		}
		if joining[j.Iface] {
			return nil, fmt.Errorf("core: duplicate join of %s", j.Iface)
		}
		if _, exists := ds.IfaceIXP[j.Iface]; exists && !leaving[j.Iface] {
			return nil, fmt.Errorf("core: join of already-known interface %s", j.Iface)
		}
		// The interface must sit on the peering LAN of the IXP it
		// claims to join: a foreign-LAN join would leave IfaceIXP and
		// the prefix plane permanently disagreeing, and an off-LAN
		// join would break the invariant the incremental detection
		// split (traix.Corpus) relies on.
		if name, ok := ds.IXPOf(j.Iface); !ok || name != j.IXP {
			return nil, fmt.Errorf("core: join of %s: interface is not on the peering LAN of %q", j.Iface, j.IXP)
		}
		joining[j.Iface] = true
	}
	if len(d.Ping) > 0 && c.in.Ping == nil {
		return nil, fmt.Errorf("core: ping overrides without a campaign")
	}
	for ip, ov := range d.Ping {
		if !ip.IsValid() {
			return nil, fmt.Errorf("core: ping override for invalid interface")
		}
		if math.IsNaN(ov.RTTMinMs) {
			continue // measurement revocation
		}
		if ov.RTTMinMs <= 0 || math.IsInf(ov.RTTMinMs, 0) {
			return nil, fmt.Errorf("core: ping override for %s has non-positive RTT %v", ip, ov.RTTMinMs)
		}
		if ov.BestVP == nil {
			return nil, fmt.Errorf("core: measured ping override for %s needs a vantage point", ip)
		}
	}
	return leaving, nil
}

// patchDomain applies membership churn to the built domain, keeping
// the deterministic (IXP name, interface) order a cold build would
// produce and swapping between two retained buffers so repeated deltas
// stop reallocating the table. The surviving domain is already in
// order, so the patch is a drop-filter merged with the (small) sorted
// join batch — O(domain + churn log churn), not a full re-sort. An
// unbuilt domain needs no patching — it will be built from the
// post-delta dataset on first use.
func (c *Context) patchDomain(d Delta, leaving map[netip.Addr]bool) {
	c.domMu.Lock()
	defer c.domMu.Unlock()
	if !c.domBuilt {
		return
	}
	joins := make([]domEntry, 0, len(d.Joins))
	for _, j := range d.Joins {
		joins = append(joins, c.newDomEntry(Key{IXP: j.IXP, Iface: j.Iface}, j.ASN))
	}
	// Interned IXPID order equals name order (the IXP space is fixed
	// and was interned sorted), so the rank compare of the pre-
	// interning code is one integer compare.
	less := func(a, b domEntry) bool {
		if a.ixp != b.ixp {
			return a.ixp < b.ixp
		}
		return a.key.Iface.Less(b.key.Iface)
	}
	sort.Slice(joins, func(i, k int) bool { return less(joins[i], joins[k]) })

	out := c.domSpare[:0]
	if need := len(c.domain) + len(joins); cap(out) < need {
		out = make([]domEntry, 0, need+need/4)
	}
	ji := 0
	for _, e := range c.domain {
		if leaving[e.key.Iface] {
			continue
		}
		for ji < len(joins) && less(joins[ji], e) {
			out = append(out, joins[ji])
			ji++
		}
		out = append(out, e)
	}
	out = append(out, joins[ji:]...)
	c.domSpare = c.domain
	c.domain = out
	c.rebuildGroupsLocked()
}
