package core

import (
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"

	"rpeer/internal/alias"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

// Inputs bundles the observable artefacts the pipeline consumes.
//
// World is used only as the live network substrate (facility
// coordinates, which are public PDB/Inflect data, and alias probing);
// the pipeline never reads ground-truth membership kinds.
type Inputs struct {
	World   *netsim.World
	Dataset *registry.Dataset
	Colo    *registry.ColoDB
	Ping    *pingsim.Result
	Paths   []*traix.Path
	// Speed is the RTT-to-distance model of Step 3.
	Speed geo.SpeedModel
	// Seed drives alias-probing randomness.
	Seed int64
}

// Options toggles steps and knobs, mainly for the ablation benchmarks.
type Options struct {
	EnablePortCapacity bool // Step 1
	EnableRTTColo      bool // Steps 2+3
	EnableMultiIXP     bool // Step 4
	EnablePrivate      bool // Step 5
	// Workers bounds the shard pool the per-membership classification
	// of Steps 1, 2+3 and 5 fans out over (0 = GOMAXPROCS, 1 = serial).
	// Every entry is classified independently from shared read-only
	// state, so the report is bit-identical for every worker count; the
	// cross-membership propagation of Step 4 always runs serially.
	Workers int
	// DisableVminBound zeroes the lower distance bound (ablation: how
	// much does the fitted vmin curve matter?).
	DisableVminBound bool
	// UseTracerouteRTT enables the Section 8 "Beyond Pings" extension:
	// interfaces without ping coverage receive traceroute-derived RTT
	// minimums (see beyondpings.go).
	UseTracerouteRTT bool
	// AliasMode selects the alias-resolution confidence trade-off.
	AliasMode alias.Mode
}

// DefaultOptions enables the full methodology.
func DefaultOptions() Options {
	return Options{
		EnablePortCapacity: true,
		EnableRTTColo:      true,
		EnableMultiIXP:     true,
		EnablePrivate:      true,
		AliasMode:          alias.ModePrecision,
	}
}

// Run executes the methodology over all memberships known to the
// merged dataset and returns a verdict for each.
//
// Run builds a fresh Context per call. Callers that run the pipeline
// more than once over the same inputs (the ablation suite, the
// experiment harness) should build one Context with NewContext and use
// its Run method instead: the reports are identical and the shared
// substrate amortises all input-dependent precomputation.
func Run(in Inputs, opt Options) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.Run(opt)
}

// RunWithOrder executes the enabled steps in an explicit order instead
// of the paper's 1,2+3,4,5 sequence — the step-ordering ablation
// (DESIGN.md section 6). Steps absent from order do not run.
func RunWithOrder(in Inputs, opt Options, order []Step) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.RunWithOrder(opt, order)
}

// RunStep evaluates one step of the methodology in isolation: the full
// pipeline provides the seed context (needed by the multi-IXP rules),
// and the requested step is then re-applied over a fresh, all-unknown
// domain so that its own reach and error rates are visible (the
// per-step rows of Table 4, whose coverages overlap across steps).
func RunStep(in Inputs, opt Options, s Step) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.RunStep(opt, s)
}

// newDomain instantiates the inference domain: one unknown-classified
// entry per interface record of the merged dataset. The entry list is
// precomputed on the shared context; the per-run cost is one Inference
// array and its index map.
func (p *pipeline) newDomain() *Report {
	return p.ctx.domainReport(p.rtt, func(inf *Inference, _ float64) {
		inf.TraceRTT = p.traceDerived[inf.Iface]
	})
}

// pipeline is one run's view over the shared Context: the RTT table
// matching Options.UseTracerouteRTT, the option knobs, and reusable
// scratch buffers. It is cheap to build and must not outlive its
// context.
type pipeline struct {
	in  Inputs
	opt Options
	ctx *Context

	// rtt is the per-interface campaign minimum across usable VPs.
	rtt map[netip.Addr]float64
	// bestVP is the usable VP that measured the interface's minimum.
	bestVP map[netip.Addr]*pingsim.VP
	// rounds marks interfaces whose minimum came from a rounding LG.
	rounds map[netip.Addr]bool
	// traceDerived marks interfaces whose RTT came from traceroutes
	// (nil unless Options.UseTracerouteRTT).
	traceDerived map[netip.Addr]bool

	crossings []traix.Crossing
	privHops  []traix.PrivateHop

	// sc is the scratch used on the serial path; parallel shards each
	// own a private one (see forEachInference).
	sc scratch

	// entries caches the shard snapshot of entriesFor's inference map:
	// all steps of one run classify the same domain, so the snapshot is
	// built once per report, not once per step.
	entriesFor *Report
	entries    []shardEntry
}

// shardEntry is one (key, inference) pair of the shard snapshot.
type shardEntry struct {
	k   Key
	inf *Inference
}

// scratch holds the per-shard reusable buffers of the classification
// hot path. Shards never share a scratch, so the feasible-ring result
// buffers can be reused across entries without synchronisation.
type scratch struct {
	// ringA and ringB are reusable feasible-ring result buffers.
	ringA, ringB []netsim.FacilityID
}

// newPipeline binds a run view to the context. Every pipeline — cold
// package-level entry points included — runs over a Context; there is
// no separate context-free code path.
func (c *Context) newPipeline(opt Options) *pipeline {
	p := &pipeline{in: c.in, opt: opt, ctx: c}
	p.bind()
	return p
}

// bind selects the context state matching the pipeline options.
func (p *pipeline) bind() {
	c := p.ctx
	if p.opt.UseTracerouteRTT {
		p.rtt, p.bestVP, p.rounds, p.traceDerived = c.traceAugmented()
	} else {
		p.rtt, p.bestVP, p.rounds, p.traceDerived = c.rtt, c.bestVP, c.rounds, nil
	}
	p.crossings = c.crossings
	p.privHops = c.privHops
}

// resolve alias-resolves a sorted interface list through the context's
// memoized resolver for the run's alias mode. The returned clusters
// are shared and read-only.
func (p *pipeline) resolve(ifaces []netip.Addr) [][]netip.Addr {
	return p.ctx.resolve(p.opt.AliasMode, ifaces)
}

// ---------------------------------------------------------------------------
// Sharded per-membership execution

// shardChunk is the number of entries a shard claims per grab: large
// enough to amortise the atomic increment, small enough to keep the
// tail balanced.
const shardChunk = 256

// parallelMinEntries is the domain size below which the fan-out
// overhead outweighs the shard parallelism.
const parallelMinEntries = 2 * shardChunk

// workers resolves the effective shard-pool size for n entries.
func (p *pipeline) workers(n int) int {
	w := p.opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := (n + shardChunk - 1) / shardChunk; w > max {
		w = max
	}
	return w
}

// forEachInference applies fn to every inference of the report,
// fanning entries out across a shard pool when both the options and
// the domain size warrant it. fn must classify its entry from shared
// read-only state and write only through inf (plus its private
// scratch); because no entry reads another entry's verdict, the shard
// schedule cannot leak into the report and the output is bit-identical
// for every worker count — the merge is the writes themselves.
func (p *pipeline) forEachInference(rep *Report, fn func(*scratch, Key, *Inference)) {
	n := len(rep.Inferences)
	workers := p.workers(n)
	if workers <= 1 || n < parallelMinEntries {
		for k, inf := range rep.Inferences {
			fn(&p.sc, k, inf)
		}
		return
	}
	entries := p.shardEntries(rep)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var s scratch
			for {
				start := int(next.Add(shardChunk)) - shardChunk
				if start >= len(entries) {
					return
				}
				end := start + shardChunk
				if end > len(entries) {
					end = len(entries)
				}
				for _, e := range entries[start:end] {
					fn(&s, e.k, e.inf)
				}
			}
		}()
	}
	wg.Wait()
}

// shardEntries snapshots rep's inference map into a slice the shards
// can index, reusing the snapshot across the steps of one run.
func (p *pipeline) shardEntries(rep *Report) []shardEntry {
	if p.entriesFor != rep {
		entries := make([]shardEntry, 0, len(rep.Inferences))
		for k, inf := range rep.Inferences {
			entries = append(entries, shardEntry{k, inf})
		}
		p.entries, p.entriesFor = entries, rep
	}
	return p.entries
}

// ---------------------------------------------------------------------------
// Step 1: port capacities (Section 5.2, Step 1)

// stepPortCapacity flags reseller customers: a member whose reported
// port capacity is below the IXP's minimum physical capacity can only
// be buying a virtual port through a reseller, hence is remote.
func (p *pipeline) stepPortCapacity(rep *Report) {
	p.forEachInference(rep, p.classifyPortCapacity)
}

func (p *pipeline) classifyPortCapacity(_ *scratch, k Key, inf *Inference) {
	if inf.Class != ClassUnknown {
		return
	}
	cmin, ok := p.in.Dataset.MinPort[k.IXP]
	if !ok {
		return // no pricing data for this IXP
	}
	port, ok := p.in.Dataset.Ports[registry.PortKey{IXP: k.IXP, ASN: inf.ASN}]
	if !ok {
		return
	}
	if port < cmin {
		inf.Class = ClassRemote
		inf.Step = StepPortCapacity
	}
}

// ---------------------------------------------------------------------------
// Steps 2+3: colocation-informed RTT interpretation (Section 5.2)

// feasibleRing returns the [dmin, dmax] distance ring for an interface
// measurement, applying the rounding-LG correction (dmin computed from
// RTT-1) and the vmin ablation toggle.
func (p *pipeline) feasibleRing(iface netip.Addr, rtt float64) (dMin, dMax float64) {
	dMax = p.in.Speed.DMax(rtt)
	low := rtt
	if p.rounds[iface] {
		low = rtt - 1
		if low < 0 {
			low = 0
		}
	}
	if p.opt.DisableVminBound {
		return 0, dMax
	}
	return p.in.Speed.DMin(low), dMax
}

// ixpRing filters the IXP's facilities to those inside [dMin, dMax]
// from the VP, through the context's memoized distance index, reusing
// buf.
func (p *pipeline) ixpRing(ixp string, vp *pingsim.VP, dMin, dMax float64, buf []netsim.FacilityID) []netsim.FacilityID {
	return p.ctx.ringQuery(ringKey{loc: vp.Loc, ixp: ixp}, p.in.Colo.IXPFacilities[ixp], dMin, dMax, buf[:0])
}

// asRing is ixpRing for a member AS's colocation facilities.
func (p *pipeline) asRing(asn netsim.ASN, facs []netsim.FacilityID, vp *pingsim.VP, dMin, dMax float64, buf []netsim.FacilityID) []netsim.FacilityID {
	return p.ctx.ringQuery(ringKey{loc: vp.Loc, asn: asn}, facs, dMin, dMax, buf[:0])
}

// stepRTTColo applies the Step 3 rules to every membership with a
// usable RTT minimum.
func (p *pipeline) stepRTTColo(rep *Report) {
	p.forEachInference(rep, p.classifyRTTColo)
}

func (p *pipeline) classifyRTTColo(s *scratch, k Key, inf *Inference) {
	if inf.Class != ClassUnknown {
		return
	}
	rtt, ok := p.rtt[k.Iface]
	if !ok {
		return
	}
	vp := p.bestVP[k.Iface]
	dMin, dMax := p.feasibleRing(k.Iface, rtt)

	feasIXP := p.ixpRing(k.IXP, vp, dMin, dMax, s.ringA)
	s.ringA = feasIXP[:0]
	inf.FeasibleIXPFacilities = len(feasIXP)

	asFacs, hasData := p.in.Colo.Facilities(inf.ASN)
	feasAS := p.asRing(inf.ASN, asFacs, vp, dMin, dMax, s.ringB)
	s.ringB = feasAS[:0]

	switch {
	case len(feasIXP) == 0:
		// Rule 1(i): no IXP facility can explain the RTT.
		inf.Class = ClassRemote
		inf.Step = StepRTTColo
	case hasData && intersects(feasAS, feasIXP):
		// Rule 2: member colocated in a feasible IXP facility.
		inf.Class = ClassLocal
		inf.Step = StepRTTColo
	case hasData && len(feasAS) > 0:
		// Rule 1(ii): member sits in a feasible facility where the
		// IXP has no presence.
		inf.Class = ClassRemote
		inf.Step = StepRTTColo
	default:
		// Rule 3: colocation data likely incomplete; defer to the
		// following steps.
	}
}

func intersects(a, b []netsim.FacilityID) bool {
	for _, fa := range a {
		for _, fb := range b {
			if fa == fb {
				return true
			}
		}
	}
	return false
}

// facDist computes min and max distance between two facility sets via
// the context's precomputed unit vectors; ok is false when either set
// is empty.
func (p *pipeline) facDist(a, b []netsim.FacilityID) (minKm, maxKm float64, ok bool) {
	return p.ctx.facDist(a, b)
}
