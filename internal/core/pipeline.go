package core

import (
	"fmt"
	"math"
	"net/netip"

	"rpeer/internal/alias"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

// Inputs bundles the observable artefacts the pipeline consumes.
//
// World is used only as the live network substrate (facility
// coordinates, which are public PDB/Inflect data, and alias probing);
// the pipeline never reads ground-truth membership kinds.
type Inputs struct {
	World   *netsim.World
	Dataset *registry.Dataset
	Colo    *registry.ColoDB
	Ping    *pingsim.Result
	Paths   []*traix.Path
	// Speed is the RTT-to-distance model of Step 3.
	Speed geo.SpeedModel
	// Seed drives alias-probing randomness.
	Seed int64
}

// Options toggles steps and knobs, mainly for the ablation benchmarks.
type Options struct {
	EnablePortCapacity bool // Step 1
	EnableRTTColo      bool // Steps 2+3
	EnableMultiIXP     bool // Step 4
	EnablePrivate      bool // Step 5
	// DisableVminBound zeroes the lower distance bound (ablation: how
	// much does the fitted vmin curve matter?).
	DisableVminBound bool
	// UseTracerouteRTT enables the Section 8 "Beyond Pings" extension:
	// interfaces without ping coverage receive traceroute-derived RTT
	// minimums (see beyondpings.go).
	UseTracerouteRTT bool
	// AliasMode selects the alias-resolution confidence trade-off.
	AliasMode alias.Mode
}

// DefaultOptions enables the full methodology.
func DefaultOptions() Options {
	return Options{
		EnablePortCapacity: true,
		EnableRTTColo:      true,
		EnableMultiIXP:     true,
		EnablePrivate:      true,
		AliasMode:          alias.ModePrecision,
	}
}

// Run executes the methodology over all memberships known to the
// merged dataset and returns a verdict for each.
func Run(in Inputs, opt Options) (*Report, error) {
	if in.World == nil || in.Dataset == nil || in.Colo == nil {
		return nil, fmt.Errorf("core: World, Dataset and Colo inputs are required")
	}
	p := &pipeline{in: in, opt: opt}
	p.init()

	rep := p.newDomain()
	if opt.EnablePortCapacity {
		p.stepPortCapacity(rep)
	}
	if opt.EnableRTTColo {
		p.stepRTTColo(rep)
	}
	if opt.EnableMultiIXP {
		p.stepMultiIXP(rep, nil)
	}
	if opt.EnablePrivate {
		p.stepPrivate(rep)
	}
	return rep, nil
}

// RunWithOrder executes the enabled steps in an explicit order instead
// of the paper's 1,2+3,4,5 sequence — the step-ordering ablation
// (DESIGN.md section 5). Steps absent from order do not run.
func RunWithOrder(in Inputs, opt Options, order []Step) (*Report, error) {
	if in.World == nil || in.Dataset == nil || in.Colo == nil {
		return nil, fmt.Errorf("core: World, Dataset and Colo inputs are required")
	}
	p := &pipeline{in: in, opt: opt}
	p.init()
	rep := p.newDomain()
	for _, s := range order {
		switch s {
		case StepPortCapacity:
			p.stepPortCapacity(rep)
		case StepRTTColo:
			p.stepRTTColo(rep)
		case StepMultiIXP:
			p.stepMultiIXP(rep, nil)
		case StepPrivate:
			p.stepPrivate(rep)
		default:
			return nil, fmt.Errorf("core: RunWithOrder does not support %v", s)
		}
	}
	return rep, nil
}

// RunStep evaluates one step of the methodology in isolation: the full
// pipeline provides the seed context (needed by the multi-IXP rules),
// and the requested step is then re-applied over a fresh, all-unknown
// domain so that its own reach and error rates are visible (the
// per-step rows of Table 4, whose coverages overlap across steps).
func RunStep(in Inputs, opt Options, s Step) (*Report, error) {
	p := &pipeline{in: in, opt: opt}
	if in.World == nil || in.Dataset == nil || in.Colo == nil {
		return nil, fmt.Errorf("core: World, Dataset and Colo inputs are required")
	}
	p.init()
	overlay := p.newDomain()
	switch s {
	case StepPortCapacity:
		p.stepPortCapacity(overlay)
	case StepRTTColo:
		p.stepRTTColo(overlay)
	case StepMultiIXP:
		base, err := Run(in, opt)
		if err != nil {
			return nil, err
		}
		type memKey struct {
			asn netsim.ASN
			ixp string
		}
		seedIdx := make(map[memKey]PeerClass)
		for k, inf := range base.Inferences {
			if (inf.Step == StepPortCapacity || inf.Step == StepRTTColo) && inf.Class != ClassUnknown {
				mk := memKey{inf.ASN, k.IXP}
				if _, ok := seedIdx[mk]; !ok {
					seedIdx[mk] = inf.Class
				}
			}
		}
		seed := func(asn netsim.ASN, ixp string) PeerClass {
			return seedIdx[memKey{asn, ixp}]
		}
		p.stepMultiIXP(overlay, seed)
	case StepPrivate:
		p.stepPrivate(overlay)
	default:
		return nil, fmt.Errorf("core: RunStep does not support %v", s)
	}
	return overlay, nil
}

// newDomain instantiates the inference domain: one unknown-classified
// entry per interface record of the merged dataset.
func (p *pipeline) newDomain() *Report {
	rep := &Report{Inferences: make(map[Key]*Inference)}
	for _, ixpName := range ixpNames(p.in) {
		for _, rec := range p.in.Dataset.MembersOf(ixpName) {
			k := Key{IXP: ixpName, Iface: rec.IP}
			if _, dup := rep.Inferences[k]; dup {
				continue
			}
			inf := &Inference{
				IXP: ixpName, Iface: rec.IP, ASN: rec.ASN,
				RTTMinMs:              math.NaN(),
				FeasibleIXPFacilities: -1,
			}
			if rtt, ok := p.rtt[rec.IP]; ok {
				inf.RTTMinMs = rtt
				inf.TraceRTT = p.traceDerived[rec.IP]
			}
			rep.Inferences[k] = inf
		}
	}
	return rep
}

// pipeline holds the precomputed state shared by the steps.
type pipeline struct {
	in  Inputs
	opt Options

	// rtt is the per-interface campaign minimum across usable VPs.
	rtt map[netip.Addr]float64
	// bestVP is the usable VP that measured the interface's minimum.
	bestVP map[netip.Addr]*pingsim.VP
	// rounds marks interfaces whose minimum came from a rounding LG.
	rounds map[netip.Addr]bool

	det       *traix.Detector
	crossings []traix.Crossing
	privHops  []traix.PrivateHop
	resolver  *alias.Resolver

	// traceDerived marks interfaces whose RTT came from traceroutes.
	traceDerived map[netip.Addr]bool
	pseudoVPs    map[string]*pingsim.VP
}

// pseudoVP returns (allocating lazily) a synthetic vantage point at the
// IXP's primary recorded facility, used to anchor the Step 3 geometry
// for traceroute-derived RTTs.
func (p *pipeline) pseudoVP(ixp string) *pingsim.VP {
	if vp, ok := p.pseudoVPs[ixp]; ok {
		return vp
	}
	facs := p.in.Colo.IXPFacilities[ixp]
	if len(facs) == 0 {
		p.pseudoVPs[ixp] = nil
		return nil
	}
	fac := p.in.World.Facility(facs[0])
	if fac == nil {
		p.pseudoVPs[ixp] = nil
		return nil
	}
	vp := &pingsim.VP{
		ID: -1 - len(p.pseudoVPs), IXP: -1, Kind: pingsim.KindLG,
		Facility: fac.ID, Loc: fac.Loc,
	}
	p.pseudoVPs[ixp] = vp
	return vp
}

func (p *pipeline) init() {
	p.rtt = make(map[netip.Addr]float64)
	p.bestVP = make(map[netip.Addr]*pingsim.VP)
	p.rounds = make(map[netip.Addr]bool)
	if p.in.Ping != nil {
		for _, vp := range p.in.Ping.UsableVPs {
			for _, m := range p.in.Ping.ByVP[vp.ID] {
				if !m.Usable() {
					continue
				}
				if cur, ok := p.rtt[m.Iface]; !ok || m.RTTMinMs < cur {
					p.rtt[m.Iface] = m.RTTMinMs
					p.bestVP[m.Iface] = vp
					p.rounds[m.Iface] = vp.RoundsUp
				}
			}
		}
	}
	p.traceDerived = make(map[netip.Addr]bool)
	p.pseudoVPs = make(map[string]*pingsim.VP)
	ipmap := registry.BuildIPMap(p.in.World)
	p.det = traix.NewDetector(p.in.Dataset, ipmap)
	if len(p.in.Paths) > 0 {
		p.crossings = p.det.DetectAll(p.in.Paths)
		p.privHops = p.det.DetectPrivateAll(p.in.Paths)
	}
	if p.opt.UseTracerouteRTT {
		p.augmentWithTracerouteRTT()
	}
	p.resolver = alias.NewResolver(alias.NewProber(p.in.World, p.in.Seed), p.opt.AliasMode)
}

// ---------------------------------------------------------------------------
// Step 1: port capacities (Section 5.2, Step 1)

// stepPortCapacity flags reseller customers: a member whose reported
// port capacity is below the IXP's minimum physical capacity can only
// be buying a virtual port through a reseller, hence is remote.
func (p *pipeline) stepPortCapacity(rep *Report) {
	for k, inf := range rep.Inferences {
		if inf.Class != ClassUnknown {
			continue
		}
		cmin, ok := p.in.Dataset.MinPort[k.IXP]
		if !ok {
			continue // no pricing data for this IXP
		}
		port, ok := p.in.Dataset.Ports[registry.PortKey{IXP: k.IXP, ASN: inf.ASN}]
		if !ok {
			continue
		}
		if port < cmin {
			inf.Class = ClassRemote
			inf.Step = StepPortCapacity
		}
	}
}

// ---------------------------------------------------------------------------
// Steps 2+3: colocation-informed RTT interpretation (Section 5.2)

// feasibleRing returns the [dmin, dmax] distance ring for an interface
// measurement, applying the rounding-LG correction (dmin computed from
// RTT-1) and the vmin ablation toggle.
func (p *pipeline) feasibleRing(iface netip.Addr, rtt float64) (dMin, dMax float64) {
	dMax = p.in.Speed.DMax(rtt)
	low := rtt
	if p.rounds[iface] {
		low = rtt - 1
		if low < 0 {
			low = 0
		}
	}
	if p.opt.DisableVminBound {
		return 0, dMax
	}
	return p.in.Speed.DMin(low), dMax
}

// stepRTTColo applies the Step 3 rules to every membership with a
// usable RTT minimum.
func (p *pipeline) stepRTTColo(rep *Report) {
	for k, inf := range rep.Inferences {
		if inf.Class != ClassUnknown {
			continue
		}
		rtt, ok := p.rtt[k.Iface]
		if !ok {
			continue
		}
		vp := p.bestVP[k.Iface]
		dMin, dMax := p.feasibleRing(k.Iface, rtt)

		ixpFacs := p.in.Colo.IXPFacilities[k.IXP]
		feasIXP := p.facilitiesInRing(ixpFacs, vp.Loc, dMin, dMax)
		inf.FeasibleIXPFacilities = len(feasIXP)

		asFacs, hasData := p.in.Colo.Facilities(inf.ASN)
		feasAS := p.facilitiesInRing(asFacs, vp.Loc, dMin, dMax)

		switch {
		case len(feasIXP) == 0:
			// Rule 1(i): no IXP facility can explain the RTT.
			inf.Class = ClassRemote
			inf.Step = StepRTTColo
		case hasData && intersects(feasAS, feasIXP):
			// Rule 2: member colocated in a feasible IXP facility.
			inf.Class = ClassLocal
			inf.Step = StepRTTColo
		case hasData && len(feasAS) > 0:
			// Rule 1(ii): member sits in a feasible facility where the
			// IXP has no presence.
			inf.Class = ClassRemote
			inf.Step = StepRTTColo
		default:
			// Rule 3: colocation data likely incomplete; defer to the
			// following steps.
		}
	}
}

// facilitiesInRing filters facility ids whose distance from the VP
// falls inside [dMin, dMax].
func (p *pipeline) facilitiesInRing(facs []netsim.FacilityID, vp geo.Point, dMin, dMax float64) []netsim.FacilityID {
	var out []netsim.FacilityID
	for _, f := range facs {
		fac := p.in.World.Facility(f)
		if fac == nil {
			continue
		}
		d := geo.DistanceKm(vp, fac.Loc)
		if d >= dMin && d <= dMax {
			out = append(out, f)
		}
	}
	return out
}

func intersects(a, b []netsim.FacilityID) bool {
	set := make(map[netsim.FacilityID]bool, len(a))
	for _, f := range a {
		set[f] = true
	}
	for _, f := range b {
		if set[f] {
			return true
		}
	}
	return false
}

// facDist computes min and max geodesic distance between two facility
// sets; ok is false when either set is empty.
func (p *pipeline) facDist(a, b []netsim.FacilityID) (minKm, maxKm float64, ok bool) {
	minKm = math.Inf(1)
	for _, fa := range a {
		la := p.in.World.Facility(fa)
		if la == nil {
			continue
		}
		for _, fb := range b {
			lb := p.in.World.Facility(fb)
			if lb == nil {
				continue
			}
			d := geo.DistanceKm(la.Loc, lb.Loc)
			if d < minKm {
				minKm = d
			}
			if d > maxKm {
				maxKm = d
			}
			ok = true
		}
	}
	return minKm, maxKm, ok
}
