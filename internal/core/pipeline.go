package core

import (
	"math"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"

	"rpeer/internal/alias"
	"rpeer/internal/geo"
	"rpeer/internal/ident"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

// Inputs bundles the observable artefacts the pipeline consumes.
//
// World is used only as the live network substrate (facility
// coordinates, which are public PDB/Inflect data, and alias probing);
// the pipeline never reads ground-truth membership kinds.
type Inputs struct {
	World   *netsim.World
	Dataset *registry.Dataset
	Colo    *registry.ColoDB
	Ping    *pingsim.Result
	Paths   []*traix.Path
	// Speed is the RTT-to-distance model of Step 3.
	Speed geo.SpeedModel
	// Seed drives alias-probing randomness.
	Seed int64
}

// Options toggles steps and knobs, mainly for the ablation benchmarks.
type Options struct {
	EnablePortCapacity bool // Step 1
	EnableRTTColo      bool // Steps 2+3
	EnableMultiIXP     bool // Step 4
	EnablePrivate      bool // Step 5
	// Workers bounds the shard pool every pipeline stage fans out over
	// (0 = GOMAXPROCS, 1 = serial). Steps 1, 2+3 and 5 classify each
	// membership independently from shared read-only state; Step 4's
	// propagation shards by member-run — all routers of one member —
	// whose read/write sets are disjoint across members. The report is
	// therefore bit-identical for every worker count.
	Workers int
	// DisableVminBound zeroes the lower distance bound (ablation: how
	// much does the fitted vmin curve matter?).
	DisableVminBound bool
	// UseTracerouteRTT enables the Section 8 "Beyond Pings" extension:
	// interfaces without ping coverage receive traceroute-derived RTT
	// minimums (see beyondpings.go).
	UseTracerouteRTT bool
	// AliasMode selects the alias-resolution confidence trade-off.
	AliasMode alias.Mode
}

// DefaultOptions enables the full methodology.
func DefaultOptions() Options {
	return Options{
		EnablePortCapacity: true,
		EnableRTTColo:      true,
		EnableMultiIXP:     true,
		EnablePrivate:      true,
		AliasMode:          alias.ModePrecision,
	}
}

// Run executes the methodology over all memberships known to the
// merged dataset and returns a verdict for each.
//
// Run builds a fresh Context per call. Callers that run the pipeline
// more than once over the same inputs (the ablation suite, the
// experiment harness) should build one Context with NewContext and use
// its Run method instead: the reports are identical and the shared
// substrate amortises all input-dependent precomputation.
func Run(in Inputs, opt Options) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.Run(opt)
}

// RunWithOrder executes the enabled steps in an explicit order instead
// of the paper's 1,2+3,4,5 sequence — the step-ordering ablation
// (DESIGN.md section 6). Steps absent from order do not run.
func RunWithOrder(in Inputs, opt Options, order []Step) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.RunWithOrder(opt, order)
}

// RunStep evaluates one step of the methodology in isolation: the full
// pipeline provides the seed context (needed by the multi-IXP rules),
// and the requested step is then re-applied over a fresh, all-unknown
// domain so that its own reach and error rates are visible (the
// per-step rows of Table 4, whose coverages overlap across steps).
func RunStep(in Inputs, opt Options, s Step) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.RunStep(opt, s)
}

// newDomain instantiates the inference domain: one unknown-classified
// entry per interface record of the merged dataset. The entry list is
// precomputed on the shared context; the per-run cost is one Inference
// array and its index map. The backing array is kept on the pipeline,
// aligned with the context's domain entries, so the sharded steps
// index straight into it instead of snapshotting the report map.
func (p *pipeline) newDomain() *Report {
	rep, infs := p.ctx.domainReport(p.rtt, func(inf *Inference, _ float64, e domEntry) {
		if p.traceDerived != nil {
			inf.TraceRTT = p.traceDerived.Get(uint32(e.iface))
		}
	})
	p.domFor, p.domInfs, p.domEntries = rep, infs, p.ctx.domainEntries()
	return rep
}

// pipeline is one run's view over the shared Context: the RTT columns
// matching Options.UseTracerouteRTT and the option knobs. It is cheap
// to build and must not outlive its context.
type pipeline struct {
	in  Inputs
	opt Options
	ctx *Context

	// rtt is the per-interface campaign minimum across usable VPs,
	// indexed by IfaceID (NaN = unmeasured).
	rtt []float64
	// bestVP is the VP slot that measured the interface's minimum
	// (-1 = none).
	bestVP []int32
	// rounds marks interfaces whose minimum came from a rounding LG.
	rounds *ident.Bits
	// traceDerived marks interfaces whose RTT came from traceroutes
	// (nil unless Options.UseTracerouteRTT).
	traceDerived *ident.Bits

	crossings []traix.Crossing

	// domFor / domInfs / domEntries bind the report produced by
	// newDomain to its backing inference array and the context's
	// aligned entry list.
	domFor     *Report
	domInfs    []Inference
	domEntries []domEntry
}

// scratch holds the per-shard reusable state of the classification hot
// path: feasible-ring result buffers plus the epoch-stamped mark
// columns Step 5's set logic runs on. Shards never share a scratch;
// instances are pooled on the context because the mark columns are
// sized to the ID spaces (far too large to allocate per run).
type scratch struct {
	// ringA and ringB are reusable feasible-ring result buffers.
	ringA, ringB []netsim.FacilityID

	// epoch stamps the mark columns; bumping it invalidates every mark
	// in O(1). ifaceMark doubles as "in the candidate set" (epoch e1)
	// and "in the member's alias cluster" (epoch e2).
	epoch     uint32
	ifaceMark []uint32
	memMark   []uint32
	facStamp  []uint32
	facCount  []int32

	ifaceIDs []ident.IfaceID
	members  []ident.MemberID
	facs     []netsim.FacilityID
	fCommon  []netsim.FacilityID
	keyBuf   []byte

	// ixpLocal/ixpRemote/ixpUnknown hold Step 4's per-router partition
	// of involved IXPs by prior verdict.
	ixpLocal, ixpRemote, ixpUnknown []ident.IXPID
}

// sizeTo grows the mark columns to the current ID spaces. Fresh
// (zeroed) segments can never collide with a live epoch because
// nextEpoch starts at 1 and wrap-around clears everything.
func (s *scratch) sizeTo(ifaces, members, facs int) {
	if len(s.ifaceMark) < ifaces {
		s.ifaceMark = append(s.ifaceMark, make([]uint32, ifaces-len(s.ifaceMark))...)
	}
	if len(s.memMark) < members {
		s.memMark = append(s.memMark, make([]uint32, members-len(s.memMark))...)
	}
	if len(s.facStamp) < facs {
		s.facStamp = append(s.facStamp, make([]uint32, facs-len(s.facStamp))...)
		s.facCount = append(s.facCount, make([]int32, facs-len(s.facCount))...)
	}
}

// growFacs widens the facility stamp columns to cover id: colo rows
// may name facilities beyond the geometry table, and stamping must
// never index out of range. Fresh segments are zeroed, so they can
// never collide with a live epoch.
func (s *scratch) growFacs(id netsim.FacilityID) {
	if n := int(id) + 1; n > len(s.facStamp) {
		s.facStamp = append(s.facStamp, make([]uint32, n-len(s.facStamp))...)
		s.facCount = append(s.facCount, make([]int32, n-len(s.facCount))...)
	}
}

// nextEpoch returns a fresh, never-live epoch value.
func (s *scratch) nextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.ifaceMark {
			s.ifaceMark[i] = 0
		}
		for i := range s.memMark {
			s.memMark[i] = 0
		}
		for i := range s.facStamp {
			s.facStamp[i] = 0
		}
		s.epoch = 1
	}
	return s.epoch
}

// getScratch pops a pooled scratch sized to the current ID spaces.
func (c *Context) getScratch() *scratch {
	s, _ := c.scratchPool.Get().(*scratch)
	if s == nil {
		s = &scratch{}
	}
	s.sizeTo(c.ids.NumIfaces(), c.ids.NumMembers(), len(c.facVecs))
	return s
}

func (c *Context) putScratch(s *scratch) { c.scratchPool.Put(s) }

// newPipeline binds a run view to the context. Every pipeline — cold
// package-level entry points included — runs over a Context; there is
// no separate context-free code path.
func (c *Context) newPipeline(opt Options) *pipeline {
	p := &pipeline{in: c.in, opt: opt, ctx: c}
	p.bind()
	return p
}

// bind selects the context columns matching the pipeline options.
func (p *pipeline) bind() {
	c := p.ctx
	if p.opt.UseTracerouteRTT {
		p.rtt, p.bestVP, p.rounds, p.traceDerived = c.traceAugmented()
	} else {
		p.rtt, p.bestVP, p.rounds, p.traceDerived = c.rtt, c.bestVP, &c.rounds, nil
	}
	p.crossings = c.crossings
}

// rttFor reports an interface's bound RTT minimum at the address edge
// (tests and diagnostics; the hot paths read the column by ID).
func (p *pipeline) rttFor(ip netip.Addr) (float64, bool) {
	id, ok := p.ctx.ids.Iface(ip)
	if !ok || int(id) >= len(p.rtt) {
		return 0, false
	}
	v := p.rtt[id]
	if math.IsNaN(v) {
		return 0, false
	}
	return v, true
}

// ---------------------------------------------------------------------------
// Sharded per-membership execution

// shardChunk is the number of entries a shard claims per grab: large
// enough to amortise the atomic increment, small enough to keep the
// tail balanced.
const shardChunk = 256

// parallelMinEntries is the domain size below which the fan-out
// overhead outweighs the shard parallelism.
const parallelMinEntries = 2 * shardChunk

// workers resolves the effective shard-pool size for n entries.
func (p *pipeline) workers(n int) int {
	w := p.opt.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if max := (n + shardChunk - 1) / shardChunk; w > max {
		w = max
	}
	return w
}

// forEachInference applies fn to every inference of the report,
// fanning the domain out across a shard pool when both the options and
// the domain size warrant it. fn must classify its entry from shared
// read-only state and write only through inf (plus its private
// scratch); because no entry reads another entry's verdict, the shard
// schedule cannot leak into the report and the output is bit-identical
// for every worker count — the merge is the writes themselves.
func (p *pipeline) forEachInference(rep *Report, fn func(*scratch, domEntry, *Inference)) {
	entries := p.domEntries
	n := len(entries)
	workers := p.workers(n)
	if workers <= 1 || n < parallelMinEntries {
		s := p.ctx.getScratch()
		for i := range entries {
			fn(s, entries[i], p.infAt(rep, i))
		}
		p.ctx.putScratch(s)
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := p.ctx.getScratch()
			defer p.ctx.putScratch(s)
			for {
				start := int(next.Add(shardChunk)) - shardChunk
				if start >= n {
					return
				}
				end := start + shardChunk
				if end > n {
					end = n
				}
				for i := start; i < end; i++ {
					fn(s, entries[i], p.infAt(rep, i))
				}
			}
		}()
	}
	wg.Wait()
}

// infAt returns the inference backing entry i of the domain. Reports
// built by this pipeline's newDomain hit the aligned backing array;
// anything else (there is no such caller today) falls back to the
// report map.
func (p *pipeline) infAt(rep *Report, i int) *Inference {
	if rep == p.domFor {
		return &p.domInfs[i]
	}
	return rep.Inferences[p.domEntries[i].key]
}

// ---------------------------------------------------------------------------
// Step 1: port capacities (Section 5.2, Step 1)

// stepPortCapacity flags reseller customers: a member whose reported
// port capacity is below the IXP's minimum physical capacity can only
// be buying a virtual port through a reseller, hence is remote.
func (p *pipeline) stepPortCapacity(rep *Report) {
	p.forEachInference(rep, p.classifyPortCapacity)
}

func (p *pipeline) classifyPortCapacity(_ *scratch, e domEntry, inf *Inference) {
	if inf.Class != ClassUnknown {
		return
	}
	cmin, ok := p.ctx.colo.MinPort(e.ixp)
	if !ok {
		return // no pricing data for this IXP
	}
	port, ok := p.ctx.colo.Port(e.ixp, e.member)
	if !ok {
		return
	}
	if port < cmin {
		inf.Class = ClassRemote
		inf.Step = StepPortCapacity
	}
}

// ---------------------------------------------------------------------------
// Steps 2+3: colocation-informed RTT interpretation (Section 5.2)

// feasibleRing returns the [dmin, dmax] distance ring for an interface
// measurement, applying the rounding-LG correction (dmin computed from
// RTT-1) and the vmin ablation toggle.
func (p *pipeline) feasibleRing(iface ident.IfaceID, rtt float64) (dMin, dMax float64) {
	dMax = p.in.Speed.DMax(rtt)
	low := rtt
	if p.rounds.Get(uint32(iface)) {
		low = rtt - 1
		if low < 0 {
			low = 0
		}
	}
	if p.opt.DisableVminBound {
		return 0, dMax
	}
	return p.in.Speed.DMin(low), dMax
}

// ixpRing filters the IXP's facilities to those inside [dMin, dMax]
// from the VP, through the context's memoized distance index, reusing
// buf.
func (p *pipeline) ixpRing(ixp ident.IXPID, slot int32, dMin, dMax float64, buf []netsim.FacilityID) []netsim.FacilityID {
	return p.ctx.ringQuery(slot, ringIXP, uint32(ixp), p.ctx.colo.IXPFacilities(ixp), dMin, dMax, buf[:0])
}

// asRing is ixpRing for a member's colocation facilities.
func (p *pipeline) asRing(m ident.MemberID, facs []netsim.FacilityID, slot int32, dMin, dMax float64, buf []netsim.FacilityID) []netsim.FacilityID {
	return p.ctx.ringQuery(slot, ringMember, uint32(m), facs, dMin, dMax, buf[:0])
}

// stepRTTColo applies the Step 3 rules to every membership with a
// usable RTT minimum.
func (p *pipeline) stepRTTColo(rep *Report) {
	p.forEachInference(rep, p.classifyRTTColo)
}

func (p *pipeline) classifyRTTColo(s *scratch, e domEntry, inf *Inference) {
	if inf.Class != ClassUnknown {
		return
	}
	rtt := p.rtt[e.iface]
	if math.IsNaN(rtt) {
		return
	}
	slot := p.bestVP[e.iface]
	dMin, dMax := p.feasibleRing(e.iface, rtt)

	feasIXP := p.ixpRing(e.ixp, slot, dMin, dMax, s.ringA)
	s.ringA = feasIXP[:0]
	inf.FeasibleIXPFacilities = len(feasIXP)

	asFacs, hasData := p.ctx.colo.Facilities(e.member)
	feasAS := p.asRing(e.member, asFacs, slot, dMin, dMax, s.ringB)
	s.ringB = feasAS[:0]

	switch {
	case len(feasIXP) == 0:
		// Rule 1(i): no IXP facility can explain the RTT.
		inf.Class = ClassRemote
		inf.Step = StepRTTColo
	case hasData && intersects(feasAS, feasIXP):
		// Rule 2: member colocated in a feasible IXP facility.
		inf.Class = ClassLocal
		inf.Step = StepRTTColo
	case hasData && len(feasAS) > 0:
		// Rule 1(ii): member sits in a feasible facility where the
		// IXP has no presence.
		inf.Class = ClassRemote
		inf.Step = StepRTTColo
	default:
		// Rule 3: colocation data likely incomplete; defer to the
		// following steps.
	}
}

func intersects(a, b []netsim.FacilityID) bool {
	for _, fa := range a {
		for _, fb := range b {
			if fa == fb {
				return true
			}
		}
	}
	return false
}

// facDist computes min and max distance between two facility sets via
// the context's precomputed unit vectors; ok is false when either set
// is empty.
func (p *pipeline) facDist(a, b []netsim.FacilityID) (minKm, maxKm float64, ok bool) {
	return p.ctx.facDist(a, b)
}
