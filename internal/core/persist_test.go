package core

import (
	"math"
	"net/netip"
	"testing"

	"rpeer/internal/pingsim"
	"rpeer/internal/snapshot"
)

// TestPersistRoundTrip is the dump/restore contract behind crash
// recovery: columns dumped from a churned context, pushed through the
// snapshot wire format, and restored over the pristine base inputs
// must yield a cold report byte-identical to the live context's.
func TestPersistRoundTrip(t *testing.T) {
	in := deltaInputs(t)
	base := in
	base.Dataset = in.Dataset.Clone() // pristine copy; ctx mutates in's

	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	d := churnDelta(t, in, 30, 30)
	pcfg := pingsim.DefaultCampaign()
	pcfg.Seed = 4321
	d.Ping = pingsim.Overrides(pingsim.Run(in.World, in.Ping.VPs, pcfg))
	// Include a measurement revocation so the NoPingVP/NaN path
	// round-trips too.
	for ip := range d.Ping {
		d.Ping[ip] = pingsim.Override{RTTMinMs: math.NaN()}
		break
	}
	if err := ctx.Apply(d); err != nil {
		t.Fatal(err)
	}
	// A second, stacked delta: the dump must capture cumulative state.
	if err := ctx.Apply(churnDelta(t, ctx.Inputs(), 10, 10)); err != nil {
		t.Fatal(err)
	}

	snap := ctx.DumpColumns()
	snap.Seq = 2
	snap.Fingerprint = Fingerprint(base)

	// Same history, same bytes: the dump order is pinned by intern-ID
	// and natural-key order, not map iteration.
	again := ctx.DumpColumns()
	again.Seq, again.Fingerprint = snap.Seq, snap.Fingerprint
	if string(snap.Encode()) != string(again.Encode()) {
		t.Fatal("DumpColumns is not deterministic")
	}

	decoded, err := snapshot.Decode(snap.Encode())
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreInputs(base, decoded)
	if err != nil {
		t.Fatal(err)
	}

	warm, err := ctx.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(restored, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "dump-restore", cold, warm)
}

// TestRestoreInputsValidation exercises the referential-integrity
// checks: a structurally valid snapshot referencing entities the base
// lacks must be rejected, not half-applied.
func TestRestoreInputsValidation(t *testing.T) {
	in := deltaInputs(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.Apply(churnDelta(t, in, 5, 5)); err != nil {
		t.Fatal(err)
	}
	// One measured override so the ping columns are populated.
	for ip := range in.Dataset.IfaceIXP {
		d := Delta{Ping: map[netip.Addr]pingsim.Override{
			ip: {RTTMinMs: 0.7, BestVP: in.Ping.VPs[0]},
		}}
		if err := ctx.Apply(d); err != nil {
			t.Fatal(err)
		}
		break
	}

	mutate := func(f func(s *snapshot.Snap)) error {
		s := ctx.DumpColumns()
		f(s)
		_, err := RestoreInputs(in, s)
		return err
	}
	if err := mutate(func(s *snapshot.Snap) {}); err != nil {
		t.Fatalf("unmutated dump must restore: %v", err)
	}
	cases := map[string]func(s *snapshot.Snap){
		"missing column": func(s *snapshot.Snap) {
			s.Columns = s.Columns[1:]
		},
		"iface ixp index out of range": func(s *snapshot.Snap) {
			c := s.Col("iface.ixp")
			if len(c.U32) == 0 {
				t.Fatal("no membership rows")
			}
			c.U32[0] = 1 << 30
		},
		"ragged column group": func(s *snapshot.Snap) {
			c := s.Col("iface.asn")
			c.U32 = c.U32[:len(c.U32)-1]
		},
		"unknown vantage point": func(s *snapshot.Snap) {
			c := s.Col("ping.vp")
			if len(c.U32) == 0 {
				t.Fatal("no ping rows")
			}
			c.U32[0] = 123456789
		},
	}
	for name, f := range cases {
		if err := mutate(f); err == nil {
			t.Errorf("%s: restore succeeded, want error", name)
		}
	}
}

func TestFingerprint(t *testing.T) {
	in := deltaInputs(t)
	if Fingerprint(in) != Fingerprint(in) {
		t.Fatal("fingerprint is not deterministic")
	}
	other := in
	other.Seed = in.Seed + 1
	if Fingerprint(other) == Fingerprint(in) {
		t.Fatal("seed change did not move the fingerprint")
	}
}
