package core

import (
	"fmt"
	"sync"
	"testing"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

// TestShardedRunBitIdenticalAcrossWorkerCounts pins the determinism
// contract of the sharded classification: for every option variant,
// reports must be bit-identical whether the per-membership steps run
// serially, on a few shards, or on far more shards than chunks of
// work.
func TestShardedRunBitIdenticalAcrossWorkerCounts(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range optionVariants() {
		serial := opt
		serial.Workers = 1
		ref, err := ctx.Run(serial)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8, 64} {
			par := opt
			par.Workers = workers
			got, err := ctx.Run(par)
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, name+"/serial-vs-sharded", ref, got)
		}
	}
}

// TestShardedRunStepAndOrderBitIdentical extends the worker-count
// invariance to the per-step evaluation and the explicit-order path.
func TestShardedRunStepAndOrderBitIdentical(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	serial, par := DefaultOptions(), DefaultOptions()
	serial.Workers, par.Workers = 1, 8
	for _, s := range []Step{StepPortCapacity, StepRTTColo, StepMultiIXP, StepPrivate} {
		ref, err := ctx.RunStep(serial, s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ctx.RunStep(par, s)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "step "+s.String(), ref, got)
	}
	order := []Step{StepPrivate, StepRTTColo, StepPortCapacity}
	ref, err := ctx.RunWithOrder(serial, order)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ctx.RunWithOrder(par, order)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "with-order", ref, got)
}

// TestConcurrentContextConstruction exercises the parallel substrate
// build under the race detector: several contexts constructed
// concurrently over the same (immutable) inputs must all come out
// identical to a reference built alone.
func TestConcurrentContextConstruction(t *testing.T) {
	in, _, _ := fixtures(t)
	ref, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	refRep, err := ref.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	ctxs := make([]*Context, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctxs[i], errs[i] = NewContext(in)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		rep, err := ctxs[i].Run(DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "concurrently-built context", refRep, rep)
	}
}

// TestRingMemoUnderParallelShardAccess hammers the geo ring memo the
// way parallel shards do: many goroutines querying the same
// (VP location, facility set) keys on a cold context, checking every
// result against a reference computed on a warm serial context. Run
// with -race this pins the first-touch construction of the memoized
// distance indexes.
func TestRingMemoUnderParallelShardAccess(t *testing.T) {
	in, _, _ := fixtures(t)
	warm, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}

	// Reference rings from the warm context, computed serially. Memo
	// keys are per-context (VP slots and interned IXP ids), so each
	// side derives its own key from the (vp, ixp) pair.
	type query struct {
		vp   *pingsim.VP
		ixp  string
		facs []netsim.FacilityID
		want []netsim.FacilityID
	}
	var queries []query
	var vps []*pingsim.VP
	for _, vp := range in.Ping.UsableVPs {
		vps = append(vps, vp)
		if len(vps) == 8 {
			break
		}
	}
	for ixp, facs := range in.Colo.IXPFacilities {
		id, ok := warm.ids.IXP(ixp)
		if !ok {
			continue // colo knows IXPs outside the merged dataset
		}
		for _, vp := range vps {
			want := warm.ringQuery(warm.vpSlotOf(vp), ringIXP, uint32(id), facs, 0, 500, nil)
			queries = append(queries, query{vp: vp, ixp: ixp, facs: facs, want: want})
		}
		if len(queries) >= 256 {
			break
		}
	}
	if len(queries) == 0 {
		t.Fatal("no ring queries derivable from fixtures")
	}

	const workers = 16
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var buf []netsim.FacilityID
			// Offset start per worker so first touches collide.
			for i := 0; i < len(queries); i++ {
				q := queries[(i+w*7)%len(queries)]
				id, _ := cold.ids.IXP(q.ixp)
				buf = cold.ringQuery(cold.vpSlotOf(q.vp), ringIXP, uint32(id), q.facs, 0, 500, buf[:0])
				if len(buf) != len(q.want) {
					errc <- fmt.Errorf("ring %s/vp%d: %d facilities, want %d", q.ixp, q.vp.ID, len(buf), len(q.want))
					return
				}
				for j := range buf {
					if buf[j] != q.want[j] {
						errc <- fmt.Errorf("ring %s/vp%d: facility %v at %d, want %v", q.ixp, q.vp.ID, buf[j], j, q.want[j])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
