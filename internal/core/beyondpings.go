package core

import (
	"math"
	"net/netip"
	"sort"

	"rpeer/internal/traix"
)

// This file implements the "Beyond Pings" extension sketched in the
// paper's Section 8: minimum RTTs derived from traceroute paths rather
// than from VPs inside the IXP. The RTT difference between the two
// consecutive interfaces of an IXP crossing approximates the delay
// between the near member's router and the far member's peering
// interface; taking the minimum difference over many crossings (whose
// near members are mostly routers patched into the IXP fabric) yields
// an estimate of the IXP-to-member delay that covers IXPs without any
// usable looking glass or Atlas probe.
//
// The estimator inherits traceroute's artefacts — asymmetric reverse
// paths, load balancing, per-hop jitter — so it is gated behind
// Options.UseTracerouteRTT and only ever fills interfaces the ping
// campaign could not measure.

// TraceRTTEstimate is one traceroute-derived minimum RTT.
type TraceRTTEstimate struct {
	Iface netip.Addr
	IXP   string
	// RTTMs is the minimum consecutive-hop difference observed.
	RTTMs float64
	// Samples is the number of crossings that contributed.
	Samples int
}

// DeriveTracerouteRTT extracts per-interface delay estimates from the
// IXP crossings of a traceroute corpus. Negative or zero differences
// (reverse-path artefacts) are discarded; the per-interface minimum
// over the remaining samples plays the role of RTTmin.
func DeriveTracerouteRTT(crossings []traix.Crossing) []TraceRTTEstimate {
	type acc struct {
		min     float64
		ixp     string
		samples int
	}
	accs := make(map[netip.Addr]*acc)
	for _, c := range crossings {
		hops := c.Path.Hops
		if c.Index == 0 || c.Index >= len(hops) {
			continue
		}
		delta := hops[c.Index].RTTMs - hops[c.Index-1].RTTMs
		if delta <= 0 || math.IsNaN(delta) {
			continue
		}
		a := accs[c.IXPIP]
		if a == nil {
			a = &acc{min: math.Inf(1), ixp: c.IXP}
			accs[c.IXPIP] = a
		}
		a.samples++
		if delta < a.min {
			a.min = delta
		}
	}
	out := make([]TraceRTTEstimate, 0, len(accs))
	for ip, a := range accs {
		out = append(out, TraceRTTEstimate{Iface: ip, IXP: a.ixp, RTTMs: a.min, Samples: a.samples})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Iface.Less(out[j].Iface) })
	return out
}

// The augmentation itself lives on Context.traceAugmented: the
// traceroute-derived RTT view (estimates for interfaces the ping
// campaign did not cover, anchored at a pseudo vantage point in the
// IXP's primary facility) is built once per context and shared by
// every run with Options.UseTracerouteRTT.

// TraceDerived reports how many interfaces of the last Run were
// classified using traceroute-derived rather than ping RTTs.
func (r *Report) TraceDerived() int {
	n := 0
	for _, inf := range r.Inferences {
		if inf.TraceRTT {
			n++
		}
	}
	return n
}
