package core

import (
	"net/netip"
	"sort"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
)

// ---------------------------------------------------------------------------
// Step 4: multi-IXP router inference (Section 5.2, Step 4)

// asObservations gathers, per AS, the near-side interfaces observed in
// IXP crossings together with the crossed IXP, plus the AS's own
// peering interfaces from the dataset.
type asObservations struct {
	asn netsim.ASN
	// nearIXPs maps each observed near interface to the set of IXPs it
	// preceded in crossings.
	nearIXPs map[netip.Addr]map[string]bool
	// memberIfaces maps each of the AS's peering-LAN interfaces to its
	// IXP.
	memberIfaces map[netip.Addr]string
}

// collectObservations indexes crossings and dataset interfaces per AS.
func (p *pipeline) collectObservations() map[netsim.ASN]*asObservations {
	out := make(map[netsim.ASN]*asObservations)
	get := func(asn netsim.ASN) *asObservations {
		o := out[asn]
		if o == nil {
			o = &asObservations{
				asn:          asn,
				nearIXPs:     make(map[netip.Addr]map[string]bool),
				memberIfaces: make(map[netip.Addr]string),
			}
			out[asn] = o
		}
		return o
	}
	for _, c := range p.crossings {
		o := get(c.NearAS)
		set := o.nearIXPs[c.NearIP]
		if set == nil {
			set = make(map[string]bool)
			o.nearIXPs[c.NearIP] = set
		}
		set[c.IXP] = true
	}
	for ip, ixp := range p.in.Dataset.IfaceIXP {
		get(p.in.Dataset.IfaceASN[ip]).memberIfaces[ip] = ixp
	}
	return out
}

// multiIXPClusters alias-resolves each candidate AS's interfaces and
// returns the clusters facing more than one IXP.
func (p *pipeline) multiIXPClusters(obs map[netsim.ASN]*asObservations) []*MultiIXPRouter {
	var asns []netsim.ASN
	for asn, o := range obs {
		// Candidate: the AS appears to peer at more than one IXP.
		ixps := make(map[string]bool)
		for _, set := range o.nearIXPs {
			for x := range set {
				ixps[x] = true
			}
		}
		for _, x := range o.memberIfaces {
			ixps[x] = true
		}
		if len(ixps) > 1 {
			asns = append(asns, asn)
		}
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })

	var routers []*MultiIXPRouter
	for _, asn := range asns {
		o := obs[asn]
		var ifaces []netip.Addr
		for ip := range o.nearIXPs {
			ifaces = append(ifaces, ip)
		}
		for ip := range o.memberIfaces {
			ifaces = append(ifaces, ip)
		}
		sort.Slice(ifaces, func(i, j int) bool { return ifaces[i].Less(ifaces[j]) })
		for _, cluster := range p.resolve(ifaces) {
			ixps := make(map[string]bool)
			for _, ip := range cluster {
				for x := range o.nearIXPs[ip] {
					ixps[x] = true
				}
				if x, ok := o.memberIfaces[ip]; ok {
					ixps[x] = true
				}
			}
			if len(ixps) < 2 {
				continue
			}
			names := make([]string, 0, len(ixps))
			for x := range ixps {
				names = append(names, x)
			}
			sort.Strings(names)
			// Copy the cluster out of the context's shared alias cache so
			// the public Report owns its slices.
			routers = append(routers, &MultiIXPRouter{
				ASN: asn, Ifaces: append([]netip.Addr(nil), cluster...), IXPs: names,
			})
		}
	}
	return routers
}

// stepMultiIXP classifies multi-IXP routers (Fig 3 taxonomy) and
// propagates local/remote verdicts to memberships the earlier steps
// left unknown. When seed is nil, prior classes are read from rep
// itself (the normal pipeline flow); a non-nil seed supplies them from
// elsewhere (the standalone per-step evaluation).
func (p *pipeline) stepMultiIXP(rep *Report, seed func(netsim.ASN, string) PeerClass) {
	obs := p.collectObservations()
	routers := p.multiIXPClusters(obs)
	rep.MultiRouters = routers

	// Index memberships by (AS, IXP) for O(1) lookup and propagation.
	type memKey struct {
		asn netsim.ASN
		ixp string
	}
	idx := make(map[memKey][]*Inference)
	for k, inf := range rep.Inferences {
		mk := memKey{inf.ASN, k.IXP}
		idx[mk] = append(idx[mk], inf)
	}
	// The map iteration above is randomised; order the per-membership
	// slices so classOf (which picks the first decided entry) cannot
	// depend on it.
	for _, infs := range idx {
		if len(infs) > 1 {
			sort.Slice(infs, func(i, j int) bool { return infs[i].Iface.Less(infs[j].Iface) })
		}
	}
	classOf := func(asn netsim.ASN, ixp string) PeerClass {
		if seed != nil {
			return seed(asn, ixp)
		}
		for _, inf := range idx[memKey{asn, ixp}] {
			if inf.Class != ClassUnknown {
				return inf.Class
			}
		}
		return ClassUnknown
	}
	// In the pipeline flow only unknowns are filled; the standalone
	// evaluation (seed != nil) records the step's verdict for every
	// involved membership, since the paper's rules phrase the outcome
	// as "the AS is inferred local/remote to all involved IXPs".
	standalone := seed != nil
	assign := func(asn netsim.ASN, ixp string, cls PeerClass) {
		for _, inf := range idx[memKey{asn, ixp}] {
			if inf.Class == ClassUnknown || (standalone && inf.Step == StepMultiIXP) {
				inf.Class = cls
				inf.Step = StepMultiIXP
			}
		}
	}

	for _, r := range routers {
		asFacs, _ := p.in.Colo.Facilities(r.ASN)
		var localIXPs, remoteIXPs, unknownIXPs []string
		for _, x := range r.IXPs {
			switch classOf(r.ASN, x) {
			case ClassLocal:
				localIXPs = append(localIXPs, x)
			case ClassRemote:
				remoteIXPs = append(remoteIXPs, x)
			default:
				unknownIXPs = append(unknownIXPs, x)
			}
		}
		targets := unknownIXPs
		if standalone {
			targets = r.IXPs
		}
		switch {
		case len(localIXPs) > 0 && len(remoteIXPs) == 0 && p.allShareFacility(r.IXPs):
			// Rule 1 (Fig 3a): local to one IXP and all involved IXPs
			// share a facility -> local to all.
			r.Class = RouterLocal
			for _, x := range targets {
				assign(r.ASN, x, ClassLocal)
			}
		case len(remoteIXPs) > 0 && len(localIXPs) == 0:
			// Rule 2 (Fig 3b): remote to one IXP; every other involved
			// IXP whose facilities all lie closer to the anchor than
			// the member possibly is (condition 2(b), applied per IXP —
			// a router at least dmin away from the anchor cannot sit in
			// any of them) inherits the remote verdict, as does
			// everything when all involved IXPs share one facility
			// (condition 2(a)).
			anchor := remoteIXPs[0]
			anchorFacs := p.in.Colo.IXPFacilities[anchor]
			dMinAS, _, okAS := p.facDist(asFacs, anchorFacs)
			if !okAS {
				dMinAS = anchorRingDMin(p, idx[memKey{r.ASN, anchor}])
			}
			all2a := p.allShareFacility(r.IXPs)
			assigned := 0
			for _, x := range targets {
				if x == anchor {
					continue
				}
				holds := all2a
				if !holds && dMinAS > 0 {
					_, maxD, ok := p.facDist(p.in.Colo.IXPFacilities[x], anchorFacs)
					holds = ok && maxD < dMinAS
				}
				if holds {
					assign(r.ASN, x, ClassRemote)
					assigned++
				}
			}
			if all2a || assigned > 0 {
				r.Class = RouterRemote
				if standalone {
					assign(r.ASN, anchor, ClassRemote)
				}
			}
		case len(localIXPs) > 0:
			// Rule 3 (Fig 3c): local to IXPL; other IXPs that share no
			// facility (or are provably too far) form the remote subset.
			r.Class = RouterHybrid
			ixpL := localIXPs[0]
			if standalone {
				assign(r.ASN, ixpL, ClassLocal)
			}
			for _, x := range targets {
				if x != ixpL && p.hybridRemoteCondition(r.ASN, ixpL, x) {
					assign(r.ASN, x, ClassRemote)
				}
			}
			if len(remoteIXPs) == 0 && len(unknownIXPs) == 0 {
				r.Class = RouterLocal
			}
		default:
			// No seed class at any involved IXP (or only non-propagating
			// remote evidence): the router stays unclassified.
			r.Class = RouterUnclassified
		}
		if r.Class == RouterUnclassified && len(remoteIXPs) > 0 && len(localIXPs) == 0 {
			// Remote evidence existed but the geometry could not extend
			// it: the router itself is still a remote one for the
			// Fig 9d taxonomy.
			r.Class = RouterRemote
		}
	}
}

// allShareFacility reports whether the named IXPs have at least one
// facility in common, per the colocation database.
func (p *pipeline) allShareFacility(ixps []string) bool {
	if len(ixps) == 0 {
		return false
	}
	common := append([]netsim.FacilityID(nil), p.in.Colo.IXPFacilities[ixps[0]]...)
	for _, x := range ixps[1:] {
		common = netsim.CommonFacilities(common, p.in.Colo.IXPFacilities[x])
		if len(common) == 0 {
			return false
		}
	}
	return true
}

// anchorRingDMin derives a lower bound on the member router's distance
// from the anchor IXP out of the Step-3 feasible ring of the anchor
// membership interface, for use when colocation data is missing. A
// metro-radius slack absorbs the VP-to-facility offset.
func anchorRingDMin(p *pipeline, infs []*Inference) float64 {
	best := 0.0
	for _, inf := range infs {
		rtt, ok := p.rtt[inf.Iface]
		if !ok {
			continue
		}
		dMin, _ := p.feasibleRing(inf.Iface, rtt)
		if d := dMin - 2*geo.MetroSeparationKm; d > best {
			best = d
		}
	}
	return best
}

// hybridRemoteCondition implements conditions 3(a)/3(b) for one other
// IXP: it belongs to the remote subset when it shares no facility with
// the local anchor, or when its closest facility is provably farther
// than the router can be from the anchor.
func (p *pipeline) hybridRemoteCondition(asn netsim.ASN, ixpL, other string) bool {
	lFacs := p.in.Colo.IXPFacilities[ixpL]
	oFacs := p.in.Colo.IXPFacilities[other]
	if len(netsim.CommonFacilities(lFacs, oFacs)) == 0 {
		return true // condition 3(a)
	}
	asFacs, ok := p.in.Colo.Facilities(asn)
	if !ok {
		return false
	}
	common := netsim.CommonFacilities(asFacs, lFacs)
	if len(common) == 0 {
		return false
	}
	// The router sits in one of the common facilities; if every
	// facility of the other IXP is farther from all of them than the
	// metro radius, the router cannot be local there.
	minD, _, ok := p.facDist(common, oFacs)
	return ok && minD > geo.MetroSeparationKm
}

// ---------------------------------------------------------------------------
// Step 5: private-connectivity voting (Section 5.2, Step 5)

// stepPrivate applies the Constrained-Facility-Search-style voting to
// memberships still unknown after Steps 1-4.
func (p *pipeline) stepPrivate(rep *Report) {
	if len(p.privHops) == 0 {
		return
	}
	p.forEachInference(rep, p.classifyPrivate)
}

func (p *pipeline) classifyPrivate(s *scratch, k Key, inf *Inference) {
	if inf.Class != ClassUnknown {
		return
	}
	// Private neighbours per AS come precomputed from the context.
	ns := p.ctx.byASPriv[inf.ASN]
	if len(ns) == 0 {
		return
	}
	// Alias-resolve the member interface together with the AS's
	// private-link interfaces; keep the cluster holding the member
	// interface (the router actually facing the IXP).
	ifaceSet := map[netip.Addr]bool{k.Iface: true}
	for _, n := range ns {
		ifaceSet[n.iface] = true
	}
	ifaces := make([]netip.Addr, 0, len(ifaceSet))
	for ip := range ifaceSet {
		ifaces = append(ifaces, ip)
	}
	sort.Slice(ifaces, func(i, j int) bool { return ifaces[i].Less(ifaces[j]) })

	var cluster []netip.Addr
	for _, c := range p.resolve(ifaces) {
		for _, ip := range c {
			if ip == k.Iface {
				cluster = c
				break
			}
		}
	}
	clusterSet := make(map[netip.Addr]bool, len(cluster))
	for _, ip := range cluster {
		clusterSet[ip] = true
	}
	// Private AS neighbours of this router.
	var neighbours []netsim.ASN
	seen := make(map[netsim.ASN]bool)
	for _, n := range ns {
		if clusterSet[n.iface] && !seen[n.other] {
			seen[n.other] = true
			neighbours = append(neighbours, n.other)
		}
	}
	if len(neighbours) == 0 {
		return
	}

	// Vote: the facilities most common among the neighbours, which
	// must also clear a majority of the voters (private
	// interconnects overwhelmingly live inside one facility, so the
	// top-voted facility is where this router most plausibly sits).
	counts := make(map[netsim.FacilityID]int)
	voters := 0
	for _, n := range neighbours {
		facs, ok := p.in.Colo.Facilities(n)
		if !ok {
			continue
		}
		voters++
		for _, f := range facs {
			counts[f]++
		}
	}
	if voters < 2 {
		return // a single voter cannot corroborate a facility
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	need := (voters + 1) / 2
	if maxCount < need {
		return // no facility is common to a neighbour majority
	}
	var fCommon []netsim.FacilityID
	for f, c := range counts {
		if c == maxCount {
			fCommon = append(fCommon, f)
		}
	}
	// FIXP: feasible IXP facilities when an RTT ring exists,
	// otherwise the IXP's full facility list.
	fIXP := p.in.Colo.IXPFacilities[k.IXP]
	if rtt, ok := p.rtt[k.Iface]; ok {
		vp := p.bestVP[k.Iface]
		dMin, dMax := p.feasibleRing(k.Iface, rtt)
		fIXP = p.ixpRing(k.IXP, vp, dMin, dMax, s.ringA)
		s.ringA = fIXP[:0]
	}
	// The paper requires |FIXP ∩ Fcommon| = 1 for a local verdict;
	// with top-count voting Fcommon is nearly always a single
	// facility, and restricting the intersection to the top-voted
	// facilities keeps the condition sharp even on vote ties inside
	// one exchange.
	// Local when the voting pins the router to exactly one feasible
	// IXP facility (the paper's |FIXP ∩ Fcommon| = 1 condition), or
	// when every top-voted candidate is an IXP facility — then the
	// member is colocated with the exchange whichever of them hosts
	// the router.
	common := netsim.CommonFacilities(fIXP, fCommon)
	if len(common) == 1 || (len(common) > 1 && len(common) == len(fCommon)) {
		inf.Class = ClassLocal
	} else {
		inf.Class = ClassRemote
	}
	inf.Step = StepPrivate
}
