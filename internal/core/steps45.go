package core

import (
	"math"
	"net/netip"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"rpeer/internal/alias"
	"rpeer/internal/geo"
	"rpeer/internal/ident"
	"rpeer/internal/netsim"
)

// ---------------------------------------------------------------------------
// Step 4: multi-IXP router inference (Section 5.2, Step 4)

// obsPair is one (interface, IXP) observation in ID space.
type obsPair struct {
	iface ident.IfaceID
	ixp   ident.IXPID
}

// asObs gathers, per member AS, the near-side interfaces observed in
// IXP crossings together with the crossed IXP, plus the AS's own
// peering interfaces from the dataset — the inputs of the multi-IXP
// candidate search. Everything is deduplicated and sorted so cluster
// IXP lookups are binary searches.
type asObs struct {
	member ident.MemberID
	// nears holds the deduplicated near (interface, IXP) pairs, sorted
	// by (iface, ixp); nearIfaces the distinct near interfaces.
	nears      []obsPair
	nearIfaces []ident.IfaceID
	// mems holds the AS's peering-LAN interfaces with their IXP,
	// sorted by iface (one entry per interface: the dataset maps each
	// interface to exactly one IXP).
	mems []obsPair
	// nixps is the number of distinct IXPs across nears and mems.
	nixps int
}

// nearIXPsOf iterates the IXPs observed behind one near interface.
func (o *asObs) nearIXPsOf(iface ident.IfaceID, fn func(ident.IXPID)) {
	i := sort.Search(len(o.nears), func(i int) bool { return o.nears[i].iface >= iface })
	for ; i < len(o.nears) && o.nears[i].iface == iface; i++ {
		fn(o.nears[i].ixp)
	}
}

// memIXPOf returns the IXP of one of the AS's peering interfaces.
func (o *asObs) memIXPOf(iface ident.IfaceID) (ident.IXPID, bool) {
	i := sort.Search(len(o.mems), func(i int) bool { return o.mems[i].iface >= iface })
	if i < len(o.mems) && o.mems[i].iface == iface {
		return o.mems[i].ixp, true
	}
	return 0, false
}

// obsIndex returns the per-AS crossing/membership observations,
// building them lazily. The index depends only on the substrate
// (crossings and the dataset's interface records), so it survives
// every run and is invalidated only by Apply. Entries are sorted by
// AS number — the deterministic candidate order of the Step 4 rules.
func (c *Context) obsIndex() []*asObs {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	if c.obsBuilt {
		return c.obs
	}
	// Member IDs are dense, so the per-member grouping runs on flat
	// count/offset columns and two contiguous pair slabs — no map of
	// individually-growing slices. The dataset map is walked twice
	// (count, then fill); its iteration order varies, but every pair
	// lands in its member's slab region and the regions are sorted
	// below, so the index is order-independent.
	nm := c.ids.NumMembers()
	nearOff := make([]int32, nm+1)
	memOff := make([]int32, nm+1)
	for i := 0; i < c.cross.Len(); i++ {
		nearOff[c.cross.NearAS[i]+1]++
	}
	memPair := func(ip netip.Addr, name string) (ident.MemberID, obsPair, bool) {
		iface, ok := c.ids.Iface(ip)
		if !ok {
			return 0, obsPair{}, false
		}
		member, ok := c.ids.Member(c.in.Dataset.IfaceASN[ip])
		if !ok {
			return 0, obsPair{}, false
		}
		ixp, ok := c.ids.IXP(name)
		if !ok {
			return 0, obsPair{}, false
		}
		return member, obsPair{iface, ixp}, true
	}
	for ip, name := range c.in.Dataset.IfaceIXP {
		if m, _, ok := memPair(ip, name); ok {
			memOff[m+1]++
		}
	}
	populated := 0
	for m := 0; m < nm; m++ {
		if nearOff[m+1] != 0 || memOff[m+1] != 0 {
			populated++
		}
		nearOff[m+1] += nearOff[m]
		memOff[m+1] += memOff[m]
	}
	nearSlab := make([]obsPair, nearOff[nm])
	memSlab := make([]obsPair, memOff[nm])
	nearCur := append([]int32(nil), nearOff[:nm]...)
	memCur := append([]int32(nil), memOff[:nm]...)
	for i := 0; i < c.cross.Len(); i++ {
		m := c.cross.NearAS[i]
		nearSlab[nearCur[m]] = obsPair{c.cross.Near[i], c.cross.IXP[i]}
		nearCur[m]++
	}
	for ip, name := range c.in.Dataset.IfaceIXP {
		if m, pr, ok := memPair(ip, name); ok {
			memSlab[memCur[m]] = pr
			memCur[m]++
		}
	}

	// Assembly: the asObs structs live in one arena and the distinct
	// near-interface lists in one shared slab; both are pre-sized so
	// the appends below can never reallocate out from under the
	// pointers already handed out.
	ixpMark := make([]uint32, c.ids.NumIXPs())
	epoch := uint32(0)
	arena := make([]asObs, 0, populated)
	obs := make([]*asObs, 0, populated)
	ifaceSlab := make([]ident.IfaceID, 0, len(nearSlab))
	for m := 0; m < nm; m++ {
		nears := nearSlab[nearOff[m]:nearOff[m+1]]
		mems := memSlab[memOff[m]:memOff[m+1]]
		if len(nears) == 0 && len(mems) == 0 {
			continue
		}
		sort.Slice(nears, func(i, j int) bool {
			if nears[i].iface != nears[j].iface {
				return nears[i].iface < nears[j].iface
			}
			return nears[i].ixp < nears[j].ixp
		})
		dedup := nears[:0]
		for i, pr := range nears {
			if i == 0 || pr != nears[i-1] {
				dedup = append(dedup, pr)
			}
		}
		sort.Slice(mems, func(i, j int) bool { return mems[i].iface < mems[j].iface })
		arena = append(arena, asObs{member: ident.MemberID(m), nears: dedup, mems: mems})
		o := &arena[len(arena)-1]
		start := len(ifaceSlab)
		for i, pr := range o.nears {
			if i == 0 || pr.iface != o.nears[i-1].iface {
				ifaceSlab = append(ifaceSlab, pr.iface)
			}
		}
		o.nearIfaces = ifaceSlab[start:len(ifaceSlab):len(ifaceSlab)]
		epoch++
		for _, pr := range o.nears {
			if ixpMark[pr.ixp] != epoch {
				ixpMark[pr.ixp] = epoch
				o.nixps++
			}
		}
		for _, pr := range o.mems {
			if ixpMark[pr.ixp] != epoch {
				ixpMark[pr.ixp] = epoch
				o.nixps++
			}
		}
		obs = append(obs, o)
	}
	sort.Slice(obs, func(i, j int) bool { return c.ids.ASN(obs[i].member) < c.ids.ASN(obs[j].member) })
	c.obs = obs
	c.obsBuilt = true
	return obs
}

// cachedRouter is one alias-resolved multi-IXP cluster in ID space,
// memoized per alias mode: the cluster interfaces (shared with the
// alias cache, read-only) and the distinct IXPs the cluster faces
// (sorted ascending, which for interned IXPs equals name order).
type cachedRouter struct {
	member ident.MemberID
	ifaces []ident.IfaceID
	ixps   []ident.IXPID
}

// multiRouters returns the clusters facing more than one IXP, built
// lazily per alias mode over the memoized observations. Candidate ASes
// are visited in ascending AS-number order and clusters keep resolver
// output order, matching the pre-interning report order exactly.
func (c *Context) multiRouters(mode alias.Mode) []cachedRouter {
	c.clusterMu.Lock()
	defer c.clusterMu.Unlock()
	if r, ok := c.clusters[mode]; ok {
		return r
	}
	obs := c.obsIndex()
	ixpMark := make([]uint32, c.ids.NumIXPs())
	epoch := uint32(0)
	var keyBuf []byte
	var idbuf []ident.IfaceID
	routers := []cachedRouter{}
	for _, o := range obs {
		if o.nixps < 2 {
			continue // candidate: the AS appears to peer at more than one IXP
		}
		idbuf = idbuf[:0]
		idbuf = append(idbuf, o.nearIfaces...)
		for _, pr := range o.mems {
			idbuf = append(idbuf, pr.iface)
		}
		sort.Slice(idbuf, func(i, j int) bool { return c.ids.AddrLess(idbuf[i], idbuf[j]) })
		var clusters [][]ident.IfaceID
		clusters, keyBuf = c.resolveIDs(mode, idbuf, keyBuf)
		for _, cluster := range clusters {
			epoch++
			var ixps []ident.IXPID
			for _, id := range cluster {
				o.nearIXPsOf(id, func(x ident.IXPID) {
					if ixpMark[x] != epoch {
						ixpMark[x] = epoch
						ixps = append(ixps, x)
					}
				})
				if x, ok := o.memIXPOf(id); ok && ixpMark[x] != epoch {
					ixpMark[x] = epoch
					ixps = append(ixps, x)
				}
			}
			if len(ixps) < 2 {
				continue
			}
			sort.Slice(ixps, func(i, j int) bool { return ixps[i] < ixps[j] })
			routers = append(routers, cachedRouter{member: o.member, ifaces: cluster, ixps: ixps})
		}
	}
	c.clusters[mode] = routers
	return routers
}

// stepMultiIXP classifies multi-IXP routers (Fig 3 taxonomy) and
// propagates local/remote verdicts to memberships the earlier steps
// left unknown. When seed is nil, prior classes are read from rep
// itself (the normal pipeline flow); a non-nil seed supplies them from
// elsewhere (the standalone per-step evaluation).
//
// The sweep is sharded by member-run: the cached router list is sorted
// by AS number, so one member's routers are contiguous, and a run —
// all routers of one member — is the unit workers claim atomically.
// This is safe because every read (classOf) and write (assign) of the
// propagation touches only domain entries of the run's own member:
// runs are disjoint in member, so no shard can observe another shard's
// writes, and processing runs in any order produces the same report as
// the serial in-order sweep. Within a run routers execute in cached
// order, preserving the intra-member read-after-write sequence (an
// earlier router's assignment is visible to a later router of the same
// member exactly as in the serial sweep). The geometry memos the sweep
// leans on (facDist, ringQuery, the alias cache) are mutex-guarded and
// value-deterministic, so the report is bit-identical for every worker
// count — pinned by TestStep4ShardDeterminism.
func (p *pipeline) stepMultiIXP(rep *Report, seed func(netsim.ASN, string) PeerClass) {
	c := p.ctx
	cached := c.multiRouters(p.opt.AliasMode)

	// Materialize the public router list fresh per run: Class is a
	// per-run verdict and the Report owns its slices (the cached
	// clusters are shared across runs and must stay immutable).
	routers := make([]*MultiIXPRouter, len(cached))
	for i := range cached {
		cr := &cached[i]
		ifaces := make([]netip.Addr, len(cr.ifaces))
		for j, id := range cr.ifaces {
			ifaces[j] = c.ids.Addr(id)
		}
		names := make([]string, len(cr.ixps))
		for j, x := range cr.ixps {
			names[j] = c.ids.IXPName(x)
		}
		routers[i] = &MultiIXPRouter{ASN: c.ids.ASN(cr.member), Ifaces: ifaces, IXPs: names}
	}
	rep.MultiRouters = routers

	// Memberships by (member, IXP) come pre-grouped from the context
	// (domain indexes, ascending by interface within each group — the
	// order classOf's first-decided rule requires).
	groups := c.memberGroups()

	// Partition into contiguous same-member runs: runStarts[k] is the
	// first router of run k, with a closing sentinel.
	runStarts := make([]int32, 0, len(cached)+1)
	for i := range cached {
		if i == 0 || cached[i].member != cached[i-1].member {
			runStarts = append(runStarts, int32(i))
		}
	}
	runStarts = append(runStarts, int32(len(cached)))
	nRuns := len(runStarts) - 1

	sweepRun := func(s *scratch, k int) {
		for i := runStarts[k]; i < runStarts[k+1]; i++ {
			p.classifyMultiRouter(s, rep, groups, &cached[i], routers[i], seed)
		}
	}

	workers := p.opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nRuns {
		workers = nRuns
	}
	if workers <= 1 {
		s := c.getScratch()
		for k := 0; k < nRuns; k++ {
			sweepRun(s, k)
		}
		c.putScratch(s)
		return
	}
	// Workers claim one run per atomic grab: runs are mostly single
	// routers, but the per-router geometry dwarfs the atomic, and
	// run-granular claiming keeps the tail balanced.
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := c.getScratch()
			defer c.putScratch(s)
			for {
				k := int(next.Add(1)) - 1
				if k >= nRuns {
					return
				}
				sweepRun(s, k)
			}
		}()
	}
	wg.Wait()
}

// classifyMultiRouter applies the Fig 3 rules to one cached cluster,
// writing the router's class and propagating verdicts into its
// member's domain entries. All side effects are confined to cr.member
// (see stepMultiIXP's sharding argument).
func (p *pipeline) classifyMultiRouter(s *scratch, rep *Report, groups map[uint64][]int32, cr *cachedRouter, r *MultiIXPRouter, seed func(netsim.ASN, string) PeerClass) {
	c := p.ctx
	classOf := func(m ident.MemberID, x ident.IXPID) PeerClass {
		if seed != nil {
			return seed(c.ids.ASN(m), c.ids.IXPName(x))
		}
		for _, di := range groups[groupKey(m, x)] {
			if inf := p.infAt(rep, int(di)); inf.Class != ClassUnknown {
				return inf.Class
			}
		}
		return ClassUnknown
	}
	// In the pipeline flow only unknowns are filled; the standalone
	// evaluation (seed != nil) records the step's verdict for every
	// involved membership, since the paper's rules phrase the outcome
	// as "the AS is inferred local/remote to all involved IXPs".
	standalone := seed != nil
	assign := func(m ident.MemberID, x ident.IXPID, cls PeerClass) {
		for _, di := range groups[groupKey(m, x)] {
			inf := p.infAt(rep, int(di))
			if inf.Class == ClassUnknown || (standalone && inf.Step == StepMultiIXP) {
				inf.Class = cls
				inf.Step = StepMultiIXP
			}
		}
	}

	// Step 4's per-router geometry runs at the edge maps (a handful
	// of routers per run, nothing per-membership). The IXP partition
	// lives on shard scratch — the sweep allocates nothing per router.
	asFacs, _ := p.in.Colo.Facilities(r.ASN)
	localIXPs, remoteIXPs, unknownIXPs := s.ixpLocal[:0], s.ixpRemote[:0], s.ixpUnknown[:0]
	for _, x := range cr.ixps {
		switch classOf(cr.member, x) {
		case ClassLocal:
			localIXPs = append(localIXPs, x)
		case ClassRemote:
			remoteIXPs = append(remoteIXPs, x)
		default:
			unknownIXPs = append(unknownIXPs, x)
		}
	}
	s.ixpLocal, s.ixpRemote, s.ixpUnknown = localIXPs, remoteIXPs, unknownIXPs
	targets := unknownIXPs
	if standalone {
		targets = cr.ixps
	}
	switch {
	case len(localIXPs) > 0 && len(remoteIXPs) == 0 && p.allShareFacility(s, r.IXPs):
		// Rule 1 (Fig 3a): local to one IXP and all involved IXPs
		// share a facility -> local to all.
		r.Class = RouterLocal
		for _, x := range targets {
			assign(cr.member, x, ClassLocal)
		}
	case len(remoteIXPs) > 0 && len(localIXPs) == 0:
		// Rule 2 (Fig 3b): remote to one IXP; every other involved
		// IXP whose facilities all lie closer to the anchor than
		// the member possibly is (condition 2(b), applied per IXP —
		// a router at least dmin away from the anchor cannot sit in
		// any of them) inherits the remote verdict, as does
		// everything when all involved IXPs share one facility
		// (condition 2(a)).
		anchor := remoteIXPs[0]
		anchorFacs := p.in.Colo.IXPFacilities[c.ids.IXPName(anchor)]
		dMinAS, _, okAS := p.facDist(asFacs, anchorFacs)
		if !okAS {
			dMinAS = p.anchorRingDMin(groups[groupKey(cr.member, anchor)])
		}
		all2a := p.allShareFacility(s, r.IXPs)
		assigned := 0
		for _, x := range targets {
			if x == anchor {
				continue
			}
			holds := all2a
			if !holds && dMinAS > 0 {
				_, maxD, ok := p.facDist(p.in.Colo.IXPFacilities[c.ids.IXPName(x)], anchorFacs)
				holds = ok && maxD < dMinAS
			}
			if holds {
				assign(cr.member, x, ClassRemote)
				assigned++
			}
		}
		if all2a || assigned > 0 {
			r.Class = RouterRemote
			if standalone {
				assign(cr.member, anchor, ClassRemote)
			}
		}
	case len(localIXPs) > 0:
		// Rule 3 (Fig 3c): local to IXPL; other IXPs that share no
		// facility (or are provably too far) form the remote subset.
		r.Class = RouterHybrid
		ixpL := localIXPs[0]
		if standalone {
			assign(cr.member, ixpL, ClassLocal)
		}
		for _, x := range targets {
			if x != ixpL && p.hybridRemoteCondition(s, r.ASN, c.ids.IXPName(ixpL), c.ids.IXPName(x)) {
				assign(cr.member, x, ClassRemote)
			}
		}
		if len(remoteIXPs) == 0 && len(unknownIXPs) == 0 {
			r.Class = RouterLocal
		}
	default:
		// No seed class at any involved IXP (or only non-propagating
		// remote evidence): the router stays unclassified.
		r.Class = RouterUnclassified
	}
	if r.Class == RouterUnclassified && len(remoteIXPs) > 0 && len(localIXPs) == 0 {
		// Remote evidence existed but the geometry could not extend
		// it: the router itself is still a remote one for the
		// Fig 9d taxonomy.
		r.Class = RouterRemote
	}
}

// allShareFacility reports whether the named IXPs have at least one
// facility in common, per the colocation database. The k-way
// intersection runs on the scratch's epoch-stamped facility counters:
// a facility survives round j when all of the first j lists contained
// it, so no per-call set materialises.
func (p *pipeline) allShareFacility(s *scratch, ixps []string) bool {
	if len(ixps) == 0 {
		return false
	}
	e := s.nextEpoch()
	alive := 0
	for _, f := range p.in.Colo.IXPFacilities[ixps[0]] {
		s.growFacs(f)
		if s.facStamp[f] != e {
			s.facStamp[f] = e
			s.facCount[f] = 1
			alive++
		}
	}
	for round := int32(2); round <= int32(len(ixps)); round++ {
		if alive == 0 {
			return false
		}
		alive = 0
		for _, f := range p.in.Colo.IXPFacilities[ixps[round-1]] {
			// An out-of-range facility was never stamped, so it cannot
			// be a survivor.
			if int(f) < len(s.facStamp) && s.facStamp[f] == e && s.facCount[f] == round-1 {
				s.facCount[f] = round
				alive++
			}
		}
	}
	return alive > 0
}

// anchorRingDMin derives a lower bound on the member router's distance
// from the anchor IXP out of the Step-3 feasible ring of the anchor
// membership interfaces (domain indexes of one (member, IXP) group),
// for use when colocation data is missing. A metro-radius slack
// absorbs the VP-to-facility offset.
func (p *pipeline) anchorRingDMin(group []int32) float64 {
	best := 0.0
	for _, di := range group {
		e := p.domEntries[di]
		rtt := p.rtt[e.iface]
		if math.IsNaN(rtt) {
			continue
		}
		dMin, _ := p.feasibleRing(e.iface, rtt)
		if d := dMin - 2*geo.MetroSeparationKm; d > best {
			best = d
		}
	}
	return best
}

// hybridRemoteCondition implements conditions 3(a)/3(b) for one other
// IXP: it belongs to the remote subset when it shares no facility with
// the local anchor, or when its closest facility is provably farther
// than the router can be from the anchor. Set membership runs on the
// scratch's epoch stamps and the AS∩anchor intersection lands in the
// scratch facility buffer, so the check allocates nothing.
func (p *pipeline) hybridRemoteCondition(s *scratch, asn netsim.ASN, ixpL, other string) bool {
	lFacs := p.in.Colo.IXPFacilities[ixpL]
	oFacs := p.in.Colo.IXPFacilities[other]
	e := s.nextEpoch()
	for _, f := range lFacs {
		s.growFacs(f)
		s.facStamp[f] = e
	}
	shared := false
	for _, f := range oFacs {
		if int(f) < len(s.facStamp) && s.facStamp[f] == e {
			shared = true
			break
		}
	}
	if !shared {
		return true // condition 3(a)
	}
	asFacs, ok := p.in.Colo.Facilities(asn)
	if !ok {
		return false
	}
	common := s.facs[:0]
	for _, f := range asFacs {
		if int(f) < len(s.facStamp) && s.facStamp[f] == e {
			common = append(common, f)
		}
	}
	s.facs = common
	if len(common) == 0 {
		return false
	}
	// The router sits in one of the common facilities; if every
	// facility of the other IXP is farther from all of them than the
	// metro radius, the router cannot be local there.
	minD, _, ok := p.facDist(common, oFacs)
	return ok && minD > geo.MetroSeparationKm
}

// ---------------------------------------------------------------------------
// Step 5: private-connectivity voting (Section 5.2, Step 5)

// stepPrivate applies the Constrained-Facility-Search-style voting to
// memberships still unknown after Steps 1-4.
func (p *pipeline) stepPrivate(rep *Report) {
	if p.ctx.priv.Len() == 0 {
		return
	}
	p.forEachInference(rep, p.classifyPrivate)
}

func (p *pipeline) classifyPrivate(s *scratch, e domEntry, inf *Inference) {
	if inf.Class != ClassUnknown {
		return
	}
	c := p.ctx
	// Private neighbours per member come precomputed from the context.
	ns := c.byASPriv[e.member]
	if len(ns) == 0 {
		return
	}
	// Candidate set: the member interface plus the AS's private-link
	// interfaces, deduplicated via the epoch marks, sorted by address
	// (the alias memo's canonical order).
	e1 := s.nextEpoch()
	s.ifaceIDs = s.ifaceIDs[:0]
	s.ifaceMark[e.iface] = e1
	s.ifaceIDs = append(s.ifaceIDs, e.iface)
	for _, n := range ns {
		if s.ifaceMark[n.iface] != e1 {
			s.ifaceMark[n.iface] = e1
			s.ifaceIDs = append(s.ifaceIDs, n.iface)
		}
	}
	sort.Slice(s.ifaceIDs, func(i, j int) bool { return c.ids.AddrLess(s.ifaceIDs[i], s.ifaceIDs[j]) })

	// Alias-resolve and keep the cluster holding the member interface
	// (the router actually facing the IXP).
	var clusters [][]ident.IfaceID
	clusters, s.keyBuf = c.resolveIDs(p.opt.AliasMode, s.ifaceIDs, s.keyBuf)
	var cluster []ident.IfaceID
	for _, cl := range clusters {
		for _, id := range cl {
			if id == e.iface {
				cluster = cl
				break
			}
		}
	}
	e2 := s.nextEpoch()
	for _, id := range cluster {
		s.ifaceMark[id] = e2
	}
	// Private AS neighbours of this router, deduplicated in first-
	// observation order.
	s.members = s.members[:0]
	for _, n := range ns {
		if s.ifaceMark[n.iface] == e2 && s.memMark[n.other] != e2 {
			s.memMark[n.other] = e2
			s.members = append(s.members, n.other)
		}
	}
	if len(s.members) == 0 {
		return
	}

	// Vote: the facilities most common among the neighbours, which
	// must also clear a majority of the voters (private
	// interconnects overwhelmingly live inside one facility, so the
	// top-voted facility is where this router most plausibly sits).
	s.facs = s.facs[:0]
	voters := 0
	for _, m := range s.members {
		facs, ok := c.colo.Facilities(m)
		if !ok {
			continue
		}
		voters++
		for _, f := range facs {
			if s.facStamp[f] != e2 {
				s.facStamp[f] = e2
				s.facCount[f] = 1
				s.facs = append(s.facs, f)
			} else {
				s.facCount[f]++
			}
		}
	}
	if voters < 2 {
		return // a single voter cannot corroborate a facility
	}
	maxCount := int32(0)
	for _, f := range s.facs {
		if n := s.facCount[f]; n > maxCount {
			maxCount = n
		}
	}
	need := int32(voters+1) / 2
	if maxCount < need {
		return // no facility is common to a neighbour majority
	}
	s.fCommon = s.fCommon[:0]
	for _, f := range s.facs {
		if s.facCount[f] == maxCount {
			s.fCommon = append(s.fCommon, f)
		}
	}
	// FIXP: feasible IXP facilities when an RTT ring exists,
	// otherwise the IXP's full facility list.
	fIXP := c.colo.IXPFacilities(e.ixp)
	if rtt := p.rtt[e.iface]; !math.IsNaN(rtt) {
		slot := p.bestVP[e.iface]
		dMin, dMax := p.feasibleRing(e.iface, rtt)
		fIXP = p.ixpRing(e.ixp, slot, dMin, dMax, s.ringA)
		s.ringA = fIXP[:0]
	}
	// The paper requires |FIXP ∩ Fcommon| = 1 for a local verdict;
	// with top-count voting Fcommon is nearly always a single
	// facility, and restricting the intersection to the top-voted
	// facilities keeps the condition sharp even on vote ties inside
	// one exchange.
	// Local when the voting pins the router to exactly one feasible
	// IXP facility (the paper's |FIXP ∩ Fcommon| = 1 condition), or
	// when every top-voted candidate is an IXP facility — then the
	// member is colocated with the exchange whichever of them hosts
	// the router. fCommon entries are distinct, so counting its
	// members present in FIXP equals the distinct-intersection size
	// netsim.CommonFacilities would report — without the allocation.
	common := 0
	for _, f := range s.fCommon {
		for _, x := range fIXP {
			if x == f {
				common++
				break
			}
		}
	}
	if common == 1 || (common > 1 && common == len(s.fCommon)) {
		inf.Class = ClassLocal
	} else {
		inf.Class = ClassRemote
	}
	inf.Step = StepPrivate
}
