package core

import (
	"math"
	"sort"
	"testing"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/tracesim"
)

var (
	cw   *netsim.World
	cin  Inputs
	crep *Report
	cval *Validation
)

func fixtures(t testing.TB) (Inputs, *Report, *Validation) {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
		ds := registry.Build(w, registry.DefaultNoise(), 42)
		colo := registry.BuildColo(w, registry.DefaultColoNoise(), 42)
		vps := pingsim.DeriveVPs(w, 11)
		ping := pingsim.Run(w, vps, pingsim.DefaultCampaign())
		paths := tracesim.Generate(w, tracesim.DefaultConfig())
		cin = Inputs{
			World: w, Dataset: ds, Colo: colo, Ping: ping, Paths: paths,
			Speed: geo.DefaultSpeedModel(), Seed: 7,
		}
		rep, err := Run(cin, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		crep = rep
		cval = BuildValidation(w, DefaultValidationConfig())
	}
	return cin, crep, cval
}

func TestRunRequiresInputs(t *testing.T) {
	if _, err := Run(Inputs{}, DefaultOptions()); err == nil {
		t.Error("want error for empty inputs")
	}
}

func TestPipelineCoversDataset(t *testing.T) {
	in, rep, _ := fixtures(t)
	if len(rep.Inferences) == 0 {
		t.Fatal("no inferences")
	}
	// Every dataset interface must be in the domain.
	if len(rep.Inferences) < len(in.Dataset.IfaceASN)*95/100 {
		t.Errorf("domain = %d of %d dataset interfaces", len(rep.Inferences), len(in.Dataset.IfaceASN))
	}
}

func TestCombinedAccuracyShape(t *testing.T) {
	_, rep, val := fixtures(t)
	test := val.InIXPs(val.TestIXPs)
	m := Evaluate(rep, test)
	t.Logf("combined: COV=%.3f ACC=%.3f PRE=%.3f FPR=%.3f FNR=%.3f (VD=%d INF=%d)",
		m.COV, m.ACC, m.PRE, m.FPR, m.FNR, m.Validated, m.Inferred)
	// Paper Table 4 combined row: ~95% ACC/PRE, 93% COV, FPR 4%, FNR 7.2%.
	if m.COV < 0.80 {
		t.Errorf("COV = %.3f, want >= 0.80", m.COV)
	}
	if m.ACC < 0.88 {
		t.Errorf("ACC = %.3f, want >= 0.88", m.ACC)
	}
	if m.PRE < 0.85 {
		t.Errorf("PRE = %.3f, want >= 0.85", m.PRE)
	}
	if m.FPR > 0.12 {
		t.Errorf("FPR = %.3f, want <= 0.12", m.FPR)
	}
	if m.FNR > 0.15 {
		t.Errorf("FNR = %.3f, want <= 0.15", m.FNR)
	}
}

func TestBaselineWorseThanCombined(t *testing.T) {
	in, rep, val := fixtures(t)
	test := val.InIXPs(val.TestIXPs)
	base, err := Baseline(in, DefaultBaselineThresholdMs)
	if err != nil {
		t.Fatal(err)
	}
	mb := Evaluate(base, test)
	mc := Evaluate(rep, test)
	t.Logf("baseline: COV=%.3f ACC=%.3f PRE=%.3f FPR=%.3f FNR=%.3f", mb.COV, mb.ACC, mb.PRE, mb.FPR, mb.FNR)
	if mb.ACC >= mc.ACC {
		t.Errorf("baseline ACC %.3f >= combined ACC %.3f", mb.ACC, mc.ACC)
	}
	if mb.FNR <= mc.FNR {
		t.Errorf("baseline FNR %.3f should exceed combined %.3f (close remotes fool the threshold)", mb.FNR, mc.FNR)
	}
}

func TestStepPortCapacityPrecision(t *testing.T) {
	_, rep, val := fixtures(t)
	test := val.InIXPs(val.TestIXPs)
	m := Evaluate(StepInferences(rep, StepPortCapacity), test)
	t.Logf("step1: PRE=%.3f COV=%.3f inferred=%d", m.PRE, m.COV, m.Inferred)
	// Table 4: 96% precision, ~11% coverage; it infers only remotes.
	if m.Inferred == 0 {
		t.Fatal("step 1 made no inferences")
	}
	if m.PRE < 0.90 {
		t.Errorf("step-1 PRE = %.3f, want >= 0.90", m.PRE)
	}
	if m.COV < 0.02 || m.COV > 0.35 {
		t.Errorf("step-1 COV = %.3f, want small-but-nonzero (~0.11)", m.COV)
	}
}

func TestStepRTTColoQuality(t *testing.T) {
	_, rep, val := fixtures(t)
	test := val.InIXPs(val.TestIXPs)
	m := Evaluate(StepInferences(rep, StepRTTColo), test)
	t.Logf("step2+3: ACC=%.3f PRE=%.3f COV=%.3f FPR=%.3f FNR=%.3f", m.ACC, m.PRE, m.COV, m.FPR, m.FNR)
	if m.Inferred == 0 {
		t.Fatal("steps 2+3 made no inferences")
	}
	if m.ACC < 0.88 {
		t.Errorf("step-2+3 ACC = %.3f, want >= 0.88", m.ACC)
	}
}

func TestStepsFillCoverage(t *testing.T) {
	_, rep, _ := fixtures(t)
	counts := make(map[Step]int)
	for _, inf := range rep.Inferences {
		if inf.Class != ClassUnknown {
			counts[inf.Step]++
		}
	}
	t.Logf("step contributions: %v", counts)
	for _, s := range []Step{StepPortCapacity, StepRTTColo} {
		if counts[s] == 0 {
			t.Errorf("step %v contributed nothing", s)
		}
	}
	if counts[StepMultiIXP]+counts[StepPrivate] == 0 {
		t.Error("steps 4+5 contributed nothing")
	}
}

func TestMultiIXPRoutersReported(t *testing.T) {
	_, rep, _ := fixtures(t)
	if len(rep.MultiRouters) == 0 {
		t.Fatal("no multi-IXP routers found")
	}
	classes := make(map[RouterClass]int)
	for _, r := range rep.MultiRouters {
		if len(r.IXPs) < 2 {
			t.Fatalf("multi-IXP router with %d IXPs", len(r.IXPs))
		}
		classes[r.Class]++
	}
	t.Logf("router classes: %v (total %d)", classes, len(rep.MultiRouters))
	if classes[RouterRemote] == 0 {
		t.Error("no remote multi-IXP routers (Fig 9d expects them to dominate)")
	}
}

func TestRemoteShareInTheWild(t *testing.T) {
	_, rep, _ := fixtures(t)
	var remote, decided int
	for _, inf := range rep.Inferences {
		switch inf.Class {
		case ClassRemote:
			remote++
			decided++
		case ClassLocal:
			decided++
		}
	}
	share := float64(remote) / float64(decided)
	t.Logf("wild remote share = %.3f (decided %d of %d)", share, decided, len(rep.Inferences))
	// Paper: 28% of inferred interfaces are remote.
	if share < 0.18 || share > 0.40 {
		t.Errorf("remote share = %.3f, want ~0.28", share)
	}
	if frac := float64(decided) / float64(len(rep.Inferences)); frac < 0.75 {
		t.Errorf("decided fraction = %.3f, want >= 0.75", frac)
	}
}

func TestEvaluateMetricIdentities(t *testing.T) {
	_, rep, val := fixtures(t)
	m := Evaluate(rep, val)
	if m.TruePosR+m.TruePosL+m.FalsePos+m.FalseNeg != m.Inferred {
		t.Error("confusion counts do not sum to inferred")
	}
	if m.ACC < 0 || m.ACC > 1 || m.COV < 0 || m.COV > 1 {
		t.Error("metrics out of [0,1]")
	}
	// ACC identity: ACC * Inferred == TP_R + TP_L.
	if got := m.ACC * float64(m.Inferred); math.Abs(got-float64(m.TruePosR+m.TruePosL)) > 1e-6 {
		t.Error("ACC identity violated")
	}
}

func TestValidationDisjointSets(t *testing.T) {
	_, _, val := fixtures(t)
	for k := range val.Remote {
		if val.Local[k] {
			t.Fatalf("interface %v in both VDR and VDL", k)
		}
	}
	if len(val.ControlIXPs) == 0 || len(val.TestIXPs) == 0 {
		t.Fatal("control/test split empty")
	}
	for _, c := range val.ControlIXPs {
		for _, x := range val.TestIXPs {
			if c == x {
				t.Fatalf("IXP %s in both control and test", c)
			}
		}
	}
}

func TestBaselineOnlyMeasured(t *testing.T) {
	in, _, _ := fixtures(t)
	base, err := Baseline(in, DefaultBaselineThresholdMs)
	if err != nil {
		t.Fatal(err)
	}
	for _, inf := range base.Inferences {
		if inf.Class != ClassUnknown && !inf.HasRTT() {
			t.Fatal("baseline inferred an unmeasured interface")
		}
	}
}

func BenchmarkPipeline(b *testing.B) {
	in, _, _ := fixtures(b)
	opt := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(in, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func TestBeyondPingsIncreasesCoverage(t *testing.T) {
	in, rep, val := fixtures(t)
	opt := DefaultOptions()
	opt.UseTracerouteRTT = true
	ext, err := Run(in, opt)
	if err != nil {
		t.Fatal(err)
	}
	if ext.TraceDerived() == 0 {
		t.Fatal("no traceroute-derived RTTs used")
	}
	baseMeasured, extMeasured := 0, 0
	for k, inf := range rep.Inferences {
		if inf.HasRTT() {
			baseMeasured++
		}
		if ext.Inferences[k] != nil && ext.Inferences[k].HasRTT() {
			extMeasured++
		}
	}
	if extMeasured <= baseMeasured {
		t.Errorf("beyond-pings measured %d interfaces, ping-only %d; want more", extMeasured, baseMeasured)
	}
	m := Evaluate(ext, val.InIXPs(val.TestIXPs))
	mb := Evaluate(rep, val.InIXPs(val.TestIXPs))
	t.Logf("beyond pings: COV=%.3f ACC=%.3f (ping-only COV=%.3f ACC=%.3f), trace-derived ifaces=%d",
		m.COV, m.ACC, mb.COV, mb.ACC, ext.TraceDerived())
	if m.COV < mb.COV-0.01 {
		t.Errorf("beyond-pings COV %.3f dropped below ping-only %.3f", m.COV, mb.COV)
	}
	if m.ACC < mb.ACC-0.08 {
		t.Errorf("beyond-pings ACC %.3f collapsed vs ping-only %.3f", m.ACC, mb.ACC)
	}
}

func TestDeriveTracerouteRTTPositive(t *testing.T) {
	in, _, _ := fixtures(t)
	p := newContext(in).newPipeline(DefaultOptions())
	ests := DeriveTracerouteRTT(p.crossings)
	if len(ests) < 1000 {
		t.Fatalf("only %d traceroute RTT estimates", len(ests))
	}
	for _, e := range ests {
		if e.RTTMs <= 0 || math.IsNaN(e.RTTMs) || math.IsInf(e.RTTMs, 0) {
			t.Fatalf("bad estimate %+v", e)
		}
		if e.Samples < 1 {
			t.Fatalf("estimate without samples: %+v", e)
		}
	}
}

func TestTracerouteRTTAgreesWithPing(t *testing.T) {
	// Where both measurements exist, the traceroute-derived estimate
	// should track the ping minimum (Fig 12b's premise): compare
	// medians of the two distributions over common interfaces.
	in, _, _ := fixtures(t)
	p := newContext(in).newPipeline(DefaultOptions())
	var pings, traces []float64
	for _, e := range DeriveTracerouteRTT(p.crossings) {
		if ping, ok := p.rttFor(e.Iface); ok {
			pings = append(pings, ping)
			traces = append(traces, e.RTTMs)
		}
	}
	if len(pings) < 500 {
		t.Fatalf("only %d common interfaces", len(pings))
	}
	med := func(v []float64) float64 {
		c := append([]float64(nil), v...)
		sort.Float64s(c)
		return c[len(c)/2]
	}
	mp, mt := med(pings), med(traces)
	t.Logf("median ping %.2fms vs traceroute-derived %.2fms over %d ifaces", mp, mt, len(pings))
	if mt > mp*3+5 || mp > mt*3+5 {
		t.Errorf("medians diverge: ping %.2f vs traceroute %.2f", mp, mt)
	}
}
