package core

import (
	"math"
	"sort"
)

// DefaultBaselineThresholdMs is the remoteness threshold of Castro et
// al. (CoNEXT 2014): members with RTTmin above 10 ms are inferred
// remote, everything measured below it local.
const DefaultBaselineThresholdMs = 10.0

// Baseline runs the state-of-the-art RTT-threshold inference the paper
// compares against (Section 4 / Table 4 first row). Only memberships
// with a usable campaign minimum receive a verdict.
func Baseline(in Inputs, thresholdMs float64) (*Report, error) {
	p := &pipeline{in: in, opt: DefaultOptions()}
	p.init()

	rep := &Report{Inferences: make(map[Key]*Inference)}
	for _, ixpName := range ixpNames(in) {
		for _, rec := range in.Dataset.MembersOf(ixpName) {
			k := Key{IXP: ixpName, Iface: rec.IP}
			inf := &Inference{
				IXP: ixpName, Iface: rec.IP, ASN: rec.ASN,
				RTTMinMs:              math.NaN(),
				FeasibleIXPFacilities: -1,
			}
			if rtt, ok := p.rtt[rec.IP]; ok {
				inf.RTTMinMs = rtt
				inf.Step = StepBaseline
				if rtt > thresholdMs {
					inf.Class = ClassRemote
				} else {
					inf.Class = ClassLocal
				}
			}
			rep.Inferences[k] = inf
		}
	}
	return rep, nil
}

// ixpNames lists the IXPs of the merged dataset, deterministically.
func ixpNames(in Inputs) []string {
	seen := make(map[string]bool)
	var names []string
	for _, name := range in.Dataset.PrefixIXP {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
