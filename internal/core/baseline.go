package core

import (
	"sort"
)

// DefaultBaselineThresholdMs is the remoteness threshold of Castro et
// al. (CoNEXT 2014): members with RTTmin above 10 ms are inferred
// remote, everything measured below it local.
const DefaultBaselineThresholdMs = 10.0

// Baseline runs the state-of-the-art RTT-threshold inference the paper
// compares against (Section 4 / Table 4 first row). Only memberships
// with a usable campaign minimum receive a verdict.
//
// Like Run, this builds a fresh Context per call; repeated callers
// should use Context.Baseline.
func Baseline(in Inputs, thresholdMs float64) (*Report, error) {
	c, err := NewContext(in)
	if err != nil {
		return nil, err
	}
	return c.Baseline(thresholdMs)
}

// ixpNames lists the IXPs of the merged dataset, deterministically.
func ixpNames(in Inputs) []string {
	seen := make(map[string]bool)
	var names []string
	for _, name := range in.Dataset.PrefixIXP {
		if !seen[name] {
			seen[name] = true
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}
