package core

import (
	"fmt"
	"net/netip"
	"runtime"
	"testing"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/registry"
	"rpeer/internal/traix"
)

// step4Fixture extends the tiny fixture with a second IXP and a
// hand-built traceroute corpus, so the multi-IXP router rules can be
// exercised on known geometry. The "member" is a real router of the
// tiny world (alias resolution must be able to probe it), observed
// entering both exchanges.
type step4Fixture struct {
	*tinyFixture
	ix2    *netsim.IXP
	member *netsim.Member // a real multi-IXP membership of the world
	router *netsim.Router
}

// newStep4Fixture picks a genuine multi-IXP router from the tiny world
// (so IP-ID probing works) and rebuilds a minimal dataset around its
// first two IXPs.
func newStep4Fixture(t *testing.T) *step4Fixture {
	t.Helper()
	f := newTinyFixture(t)
	// Find a router of the world facing >= 2 IXPs.
	for _, id := range f.w.RouterIDs {
		r := f.w.Router(id)
		if len(r.IXPs) < 2 {
			continue
		}
		var mem *netsim.Member
		for _, m := range f.w.MembershipsOf(r.Owner) {
			if m.Router == id && m.IXP == r.IXPs[0] {
				mem = m
				break
			}
		}
		if mem == nil {
			continue
		}
		ix1 := f.w.IXP(r.IXPs[0])
		ix2 := f.w.IXP(r.IXPs[1])
		s := &step4Fixture{tinyFixture: f, ix2: ix2, member: mem, router: r}
		s.ix = ix1
		// Rebuild the dataset around these two IXPs.
		s.in.Dataset = &registry.Dataset{
			PrefixIXP: map[netip.Prefix]string{
				ix1.PeeringLAN: ix1.Name,
				ix2.PeeringLAN: ix2.Name,
			},
			IfaceASN: map[netip.Addr]netsim.ASN{},
			IfaceIXP: map[netip.Addr]string{},
			Ports:    map[registry.PortKey]int{},
			MinPort:  map[string]int{},
		}
		s.in.Colo = &registry.ColoDB{
			ASFacilities: map[netsim.ASN][]netsim.FacilityID{},
			IXPFacilities: map[string][]netsim.FacilityID{
				ix1.Name: ix1.Facilities,
				ix2.Name: ix2.Facilities,
			},
		}
		// Register the member's interfaces at both IXPs.
		for _, m := range f.w.MembershipsOf(r.Owner) {
			if m.Router != id {
				continue
			}
			name := f.w.IXP(m.IXP).Name
			if m.IXP != ix1.ID && m.IXP != ix2.ID {
				continue
			}
			s.in.Dataset.IfaceASN[m.Iface] = m.ASN
			s.in.Dataset.IfaceIXP[m.Iface] = name
		}
		if len(s.in.Dataset.IfaceASN) >= 2 {
			return s
		}
	}
	t.Skip("no suitable multi-IXP router in tiny world")
	return nil
}

// iface returns the member's interface at the given IXP.
func (s *step4Fixture) iface(ix *netsim.IXP) netip.Addr {
	for ip, name := range s.in.Dataset.IfaceIXP {
		if name == ix.Name {
			return ip
		}
	}
	return netip.Addr{}
}

// crossingPaths fabricates one crossing per IXP with the member as the
// near AS (its infra interface preceding another member's IXP LAN IP).
// The far member interface is fabricated and registered to a second
// AS.
func (s *step4Fixture) crossingPaths(t *testing.T) []*traix.Path {
	t.Helper()
	var paths []*traix.Path
	for _, ix := range []*netsim.IXP{s.ix, s.ix2} {
		// The far side of each crossing is a real member of this IXP in
		// a different AS, so the interior hop resolves via its prefix.
		var far *netsim.Member
		for _, m := range s.w.MembersOf(ix.ID) {
			if m.ASN != s.router.Owner {
				far = m
				break
			}
		}
		if far == nil {
			t.Skip("no far member")
		}
		s.in.Dataset.IfaceASN[far.Iface] = far.ASN
		s.in.Dataset.IfaceIXP[far.Iface] = ix.Name
		interior := s.w.ASPrefixes(far.ASN)[0].Addr().Next()
		paths = append(paths, &traix.Path{Hops: []traix.Hop{
			{IP: s.router.Ifaces[0], RTTMs: 5},
			{IP: far.Iface, RTTMs: 6},
			{IP: interior, RTTMs: 6.5},
		}})
	}
	return paths
}

func TestStep4RemotePropagation(t *testing.T) {
	s := newStep4Fixture(t)
	s.in.Paths = s.crossingPaths(t)

	// Seed: the member is known remote at ix1 (fractional port) and its
	// colocation record places it very far from ix1 — farther than any
	// ix2 facility is from ix1, so condition 2(b) holds for ix2.
	owner := s.router.Owner
	s.in.Dataset.MinPort[s.ix.Name] = 1000
	s.in.Dataset.Ports[registry.PortKey{IXP: s.ix.Name, ASN: owner}] = 100

	// Give the AS a colo record at the facility geographically farthest
	// from ix1.
	far := farthestFacilityFrom(s, s.ix)
	if far < 0 {
		t.Skip("no distant facility")
	}
	s.in.Colo.ASFacilities[owner] = []netsim.FacilityID{far}

	rep, err := Run(s.in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if2 := s.iface(s.ix2)
	inf := rep.Inferences[Key{s.ix2.Name, if2}]
	if inf == nil {
		t.Fatal("no inference for second IXP membership")
	}
	// Whether 2(b) fires depends on the world geometry; when it does,
	// the verdict must be remote via step 4 and never local.
	if inf.Class == ClassLocal {
		t.Errorf("step 4 inferred local at %s for a router anchored remote at %s", s.ix2.Name, s.ix.Name)
	}
	if inf.Class == ClassRemote && inf.Step == StepMultiIXP {
		t.Logf("rule 2(b) propagated remote to %s as expected", s.ix2.Name)
	}
}

// farthestFacilityFrom returns the facility with the largest distance
// from the IXP's first facility.
func farthestFacilityFrom(s *step4Fixture, ix *netsim.IXP) netsim.FacilityID {
	base := s.w.Facility(ix.Facilities[0])
	best := netsim.FacilityID(-1)
	bestD := 0.0
	for _, f := range s.w.Facilities {
		d := distanceBetween(base, f)
		if d > bestD {
			bestD, best = d, f.ID
		}
	}
	return best
}

func distanceBetween(a, b *netsim.Facility) float64 {
	return geo.DistanceKm(a.Loc, b.Loc)
}

// TestStep4ShardDeterminism pins the bit-identity contract of the
// sharded Step-4 propagation: the member-run sweep must produce the
// same report — inferences AND router taxonomy — whether it runs
// serially or fanned out, in both the pipeline flow and the
// standalone per-step evaluation. Workers beyond the run count
// exercise the cap; NumCPU exercises whatever this host fans out to.
func TestStep4ShardDeterminism(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture world must actually contain several member runs, or
	// the parallel branch would silently collapse to serial.
	cached := ctx.multiRouters(DefaultOptions().AliasMode)
	runs := 0
	for i := range cached {
		if i == 0 || cached[i].member != cached[i-1].member {
			runs++
		}
	}
	if runs < 2 {
		t.Fatalf("fixture world has %d member runs; need >= 2 to exercise sharding", runs)
	}

	serial := DefaultOptions()
	serial.Workers = 1
	refRun, err := ctx.Run(serial)
	if err != nil {
		t.Fatal(err)
	}
	refStep, err := ctx.RunStep(serial, StepMultiIXP)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, runtime.NumCPU()} {
		par := DefaultOptions()
		par.Workers = workers
		got, err := ctx.Run(par)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, fmt.Sprintf("step4 pipeline workers=%d", workers), refRun, got)
		gotStep, err := ctx.RunStep(par, StepMultiIXP)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, fmt.Sprintf("step4 standalone workers=%d", workers), refStep, gotStep)
	}
}
