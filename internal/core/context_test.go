package core

import (
	"math"
	"sync"
	"testing"

	"rpeer/internal/alias"
)

// reportsEqual compares two reports field by field (NaN-aware on RTT).
func reportsEqual(t *testing.T, label string, a, b *Report) {
	t.Helper()
	if len(a.Inferences) != len(b.Inferences) {
		t.Fatalf("%s: inference counts differ: %d vs %d", label, len(a.Inferences), len(b.Inferences))
	}
	for k, ia := range a.Inferences {
		ib, ok := b.Inferences[k]
		if !ok {
			t.Fatalf("%s: %v missing from second report", label, k)
		}
		if ia.Class != ib.Class || ia.Step != ib.Step || ia.ASN != ib.ASN ||
			ia.FeasibleIXPFacilities != ib.FeasibleIXPFacilities || ia.TraceRTT != ib.TraceRTT {
			t.Fatalf("%s: %v differs: %+v vs %+v", label, k, ia, ib)
		}
		sameRTT := ia.RTTMinMs == ib.RTTMinMs || (math.IsNaN(ia.RTTMinMs) && math.IsNaN(ib.RTTMinMs))
		if !sameRTT {
			t.Fatalf("%s: %v RTT differs: %v vs %v", label, k, ia.RTTMinMs, ib.RTTMinMs)
		}
	}
	if len(a.MultiRouters) != len(b.MultiRouters) {
		t.Fatalf("%s: router counts differ: %d vs %d", label, len(a.MultiRouters), len(b.MultiRouters))
	}
	for i := range a.MultiRouters {
		ra, rb := a.MultiRouters[i], b.MultiRouters[i]
		if ra.ASN != rb.ASN || ra.Class != rb.Class ||
			len(ra.Ifaces) != len(rb.Ifaces) || len(ra.IXPs) != len(rb.IXPs) {
			t.Fatalf("%s: router %d differs: %+v vs %+v", label, i, ra, rb)
		}
		for j := range ra.Ifaces {
			if ra.Ifaces[j] != rb.Ifaces[j] {
				t.Fatalf("%s: router %d iface %d differs", label, i, j)
			}
		}
		for j := range ra.IXPs {
			if ra.IXPs[j] != rb.IXPs[j] {
				t.Fatalf("%s: router %d IXP %d differs", label, i, j)
			}
		}
	}
}

// optionVariants covers the knobs the ablation suite flips.
func optionVariants() map[string]Options {
	novmin := DefaultOptions()
	novmin.DisableVminBound = true
	coverage := DefaultOptions()
	coverage.AliasMode = alias.ModeCoverage
	trace := DefaultOptions()
	trace.UseTracerouteRTT = true
	noport := DefaultOptions()
	noport.EnablePortCapacity = false
	return map[string]Options{
		"default":      DefaultOptions(),
		"no-vmin":      novmin,
		"coverage":     coverage,
		"beyond-pings": trace,
		"no-port":      noport,
	}
}

// TestSharedContextMatchesColdRun is the determinism contract of the
// shared-context API: a context reused across many runs (with warm
// alias/ring caches) must produce reports identical to a cold
// package-level Run for every option set, and repeated shared runs
// must be self-identical.
func TestSharedContextMatchesColdRun(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	for name, opt := range optionVariants() {
		cold, err := Run(in, opt)
		if err != nil {
			t.Fatal(err)
		}
		warm1, err := ctx.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		warm2, err := ctx.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, name+"/cold-vs-shared", cold, warm1)
		reportsEqual(t, name+"/shared-vs-shared", warm1, warm2)
	}
}

func TestSharedContextRunStepMatchesCold(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []Step{StepPortCapacity, StepRTTColo, StepMultiIXP, StepPrivate} {
		cold, err := RunStep(in, DefaultOptions(), s)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := ctx.RunStep(DefaultOptions(), s)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "step "+s.String(), cold, warm)
	}
}

func TestSharedContextRunWithOrderMatchesCold(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	order := []Step{StepRTTColo, StepPortCapacity, StepMultiIXP, StepPrivate}
	cold, err := RunWithOrder(in, DefaultOptions(), order)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := ctx.RunWithOrder(DefaultOptions(), order)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "ordered", cold, warm)
}

func TestSharedContextBaselineMatchesCold(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range []float64{2, 10, 20} {
		cold, err := Baseline(in, th)
		if err != nil {
			t.Fatal(err)
		}
		warm, err := ctx.Baseline(th)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "baseline", cold, warm)
	}
}

// TestSharedContextConcurrentRuns exercises the context's concurrency
// contract: parallel runs over one context (as exp.All does) must each
// match the cold report.
func TestSharedContextConcurrentRuns(t *testing.T) {
	in, _, _ := fixtures(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Run(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	const workers = 4
	reports := make([]*Report, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = ctx.Run(DefaultOptions())
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		reportsEqual(t, "concurrent", cold, reports[i])
	}
}

func TestNewContextRequiresInputs(t *testing.T) {
	if _, err := NewContext(Inputs{}); err == nil {
		t.Error("want error for empty inputs")
	}
}

func BenchmarkContextBuild(b *testing.B) {
	in, _, _ := fixtures(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := NewContext(in)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = c
	}
}

// BenchmarkSharedContextRun is the warm-path counterpart of
// BenchmarkPipeline (which pays the cold context build every
// iteration).
func BenchmarkSharedContextRun(b *testing.B) {
	in, _, _ := fixtures(b)
	ctx, err := NewContext(in)
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	if _, err := ctx.Run(opt); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := ctx.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = rep
	}
}

var benchSink interface{}
