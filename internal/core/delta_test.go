package core

import (
	"net/netip"
	"sort"
	"testing"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

// deltaInputs returns the shared fixture inputs with a private dataset
// clone, so Apply's mutations cannot leak into other tests.
func deltaInputs(t testing.TB) Inputs {
	in, _, _ := fixtures(t)
	in.Dataset = in.Dataset.Clone()
	return in
}

// churnDelta assembles a realistic membership delta from the fixture
// world: leaves sampled from the dataset, joins sampled from the
// ground-truth members the registry noise had hidden.
func churnDelta(t testing.TB, in Inputs, nJoin, nLeave int) Delta {
	t.Helper()
	ds := in.Dataset
	known := make([]netip.Addr, 0, len(ds.IfaceIXP))
	for ip := range ds.IfaceIXP {
		known = append(known, ip)
	}
	sort.Slice(known, func(i, j int) bool { return known[i].Less(known[j]) })

	ixpSet := make(map[string]bool)
	for _, name := range ds.PrefixIXP {
		ixpSet[name] = true
	}
	var hidden []*netsim.Member
	for _, m := range in.World.Members {
		if _, ok := ds.IfaceIXP[m.Iface]; ok {
			continue
		}
		if !ixpSet[in.World.IXP(m.IXP).Name] {
			continue
		}
		hidden = append(hidden, m)
	}
	sort.Slice(hidden, func(i, j int) bool { return hidden[i].Iface.Less(hidden[j].Iface) })
	if len(known) < nLeave {
		t.Fatalf("fixture too small for churn: %d known", len(known))
	}

	var d Delta
	for i := 0; i < nLeave; i++ {
		ip := known[(i*37)%len(known)]
		d.Leaves = append(d.Leaves, Key{IXP: ds.IfaceIXP[ip], Iface: ip})
	}
	seen := make(map[netip.Addr]bool)
	for _, k := range d.Leaves {
		seen[k.Iface] = true
	}
	d.Leaves = dedupLeaves(d.Leaves)
	// Join the members the registry noise had hidden first...
	for i := 0; len(d.Joins) < nJoin && i < len(hidden); i++ {
		m := hidden[i]
		if seen[m.Iface] {
			continue
		}
		seen[m.Iface] = true
		j := Join{IXP: in.World.IXP(m.IXP).Name, Iface: m.Iface, ASN: m.ASN}
		if i%3 == 0 {
			j.PortMbps = m.PortMbps
		}
		d.Joins = append(d.Joins, j)
	}
	// ... then mint brand-new members on free peering-LAN addresses.
	d.Joins = append(d.Joins, mintJoins(in, nJoin-len(d.Joins), seen)...)
	return d
}

// mintJoins fabricates n new memberships on unused peering-LAN
// addresses, walking each LAN from its top end (world members are
// allocated from the bottom).
func mintJoins(in Inputs, n int, seen map[netip.Addr]bool) []Join {
	if n <= 0 {
		return nil
	}
	ds := in.Dataset
	taken := make(map[netip.Addr]bool, len(in.World.Members))
	for _, m := range in.World.Members {
		taken[m.Iface] = true
	}
	var prefixes []netip.Prefix
	for p := range ds.PrefixIXP {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].Addr().Less(prefixes[j].Addr()) })

	var out []Join
	asn := netsim.ASN(900001)
	for _, p := range prefixes {
		ip := lastAddrIn(p)
		for i := 0; i < 8 && len(out) < n; i++ {
			if _, known := ds.IfaceIXP[ip]; !known && !taken[ip] && !seen[ip] {
				seen[ip] = true
				out = append(out, Join{IXP: ds.PrefixIXP[p], Iface: ip, ASN: asn, PortMbps: 1000})
				asn++
			}
			ip = ip.Prev()
			if !p.Contains(ip) {
				break
			}
		}
		if len(out) >= n {
			break
		}
	}
	return out
}

// lastAddrIn returns the highest address of a prefix.
func lastAddrIn(p netip.Prefix) netip.Addr {
	b := p.Addr().As4()
	bits := p.Bits()
	for i := 0; i < 32-bits; i++ {
		b[3-(i/8)] |= 1 << (i % 8)
	}
	return netip.AddrFrom4(b)
}

func dedupLeaves(ls []Key) []Key {
	seen := make(map[Key]bool, len(ls))
	out := ls[:0]
	for _, k := range ls {
		if !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	return out
}

// TestApplyMatchesColdRebuild is the incremental-update contract: a
// context that absorbed a churn delta must be report-identical to a
// context built cold over the post-delta inputs, for every option
// variant, including a second stacked delta.
func TestApplyMatchesColdRebuild(t *testing.T) {
	in := deltaInputs(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	// Warm every memoized view first, so the test catches stale-cache
	// bugs, not just cold-path agreement.
	warmOpts := DefaultOptions()
	warmOpts.UseTracerouteRTT = true
	if _, err := ctx.Run(warmOpts); err != nil {
		t.Fatal(err)
	}

	d := churnDelta(t, in, 40, 40)
	// Fold in a partial re-campaign as well.
	pcfg := pingsim.DefaultCampaign()
	pcfg.Seed = 1234
	refresh := pingsim.Run(in.World, in.Ping.VPs, pcfg)
	d.Ping = pingsim.Overrides(refresh)

	if err := ctx.Apply(d); err != nil {
		t.Fatal(err)
	}

	for name, opt := range optionVariants() {
		warm, err := ctx.Run(opt)
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Run(ctx.Inputs(), opt)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "post-delta/"+name, cold, warm)
	}
	warmBase, err := ctx.Baseline(DefaultBaselineThresholdMs)
	if err != nil {
		t.Fatal(err)
	}
	coldBase, err := Baseline(ctx.Inputs(), DefaultBaselineThresholdMs)
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "post-delta/baseline", coldBase, warmBase)

	// A second, stacked delta over the already-patched context.
	d2 := churnDelta(t, ctx.Inputs(), 15, 15)
	if err := ctx.Apply(d2); err != nil {
		t.Fatal(err)
	}
	warm2, err := ctx.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	cold2, err := Run(ctx.Inputs(), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "stacked-delta", cold2, warm2)
}

// TestApplyChangesDomain sanity-checks that joins and leaves actually
// land in the report domain.
func TestApplyChangesDomain(t *testing.T) {
	in := deltaInputs(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ctx.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	d := churnDelta(t, in, 10, 10)
	if err := ctx.Apply(d); err != nil {
		t.Fatal(err)
	}
	after, err := ctx.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Inferences) != len(before.Inferences)+len(d.Joins)-len(d.Leaves) {
		t.Fatalf("domain size %d, want %d", len(after.Inferences),
			len(before.Inferences)+len(d.Joins)-len(d.Leaves))
	}
	for _, j := range d.Joins {
		if _, ok := after.Inferences[Key{IXP: j.IXP, Iface: j.Iface}]; !ok {
			t.Fatalf("joined membership %s/%s missing from report", j.IXP, j.Iface)
		}
	}
	for _, k := range d.Leaves {
		if _, ok := after.Inferences[k]; ok {
			t.Fatalf("departed membership %v still in report", k)
		}
	}
}

// TestApplyValidation pins the all-or-nothing error contract.
func TestApplyValidation(t *testing.T) {
	in := deltaInputs(t)
	ctx, err := NewContext(in)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ctx.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var knownIface netip.Addr
	var knownIXP string
	for ip, name := range in.Dataset.IfaceIXP {
		knownIface, knownIXP = ip, name
		break
	}
	offLAN := netip.MustParseAddr("203.0.113.200")
	// An address on some OTHER IXP's peering LAN, for the foreign-LAN
	// join case.
	var foreignLAN netip.Addr
	for p, name := range in.Dataset.PrefixIXP {
		if name != knownIXP && p.Addr().Is4() {
			foreignLAN = lastAddrIn(p)
			break
		}
	}

	bad := []Delta{
		{Joins: []Join{{IXP: knownIXP, Iface: knownIface, ASN: 4242}}},
		{Joins: []Join{{IXP: "no-such-ixp", Iface: knownIface, ASN: 4242}}},
		{Joins: []Join{{IXP: knownIXP, Iface: offLAN, ASN: 4242}}},
		{Joins: []Join{{IXP: knownIXP, Iface: foreignLAN, ASN: 4242}}},
		{Leaves: []Key{{IXP: knownIXP, Iface: offLAN}}},
		{Leaves: []Key{{IXP: "wrong-ixp", Iface: knownIface}}},
		{Ping: map[netip.Addr]pingsim.Override{knownIface: {RTTMinMs: 5}}},  // no VP
		{Ping: map[netip.Addr]pingsim.Override{knownIface: {RTTMinMs: -5}}}, // non-positive RTT
		{Ping: map[netip.Addr]pingsim.Override{knownIface: {RTTMinMs: 0}}},
	}
	for i, d := range bad {
		if err := ctx.Apply(d); err == nil {
			t.Fatalf("bad delta %d accepted", i)
		}
	}
	after, err := ctx.Run(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reportsEqual(t, "rejected deltas must not mutate", before, after)
}
