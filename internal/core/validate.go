package core

import (
	"math/rand"
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
)

// Validation is the best-effort ground-truth dataset of Section 3.5:
// partial local/remote member lists for a set of IXPs, split into a
// "control" subset (used to study inference challenges) and a "test"
// subset (used to score the methodology). This is the only place the
// reproduction reads ground-truth membership kinds.
type Validation struct {
	// ControlIXPs and TestIXPs are IXP names.
	ControlIXPs []string
	TestIXPs    []string
	// Remote and Local are the validated interface sets (VDR / VDL in
	// Table 3); an interface appears in at most one of them.
	Remote map[Key]bool
	Local  map[Key]bool
	// FromOperator marks IXPs whose lists came from operators rather
	// than websites (Table 2 grouping).
	FromOperator map[string]bool
}

// ValidationConfig controls dataset construction.
type ValidationConfig struct {
	Seed int64
	// OperatorIXPs and WebsiteIXPs are how many IXPs contribute
	// operator-provided vs website-scraped lists (Table 2: 6 + 9).
	OperatorIXPs int
	WebsiteIXPs  int
	// CoverageMin and CoverageMax bound the fraction of each IXP's
	// members the list covers (operators rarely know everything).
	CoverageMin, CoverageMax float64
	// ControlFrac is the fraction of validation IXPs placed in the
	// control subset.
	ControlFrac float64
}

// DefaultValidationConfig mirrors Table 2's scale: 15 IXPs, roughly
// half the members validated, 7 control / 8 test.
func DefaultValidationConfig() ValidationConfig {
	return ValidationConfig{
		Seed:         1,
		OperatorIXPs: 6,
		WebsiteIXPs:  9,
		CoverageMin:  0.35,
		CoverageMax:  0.85,
		ControlFrac:  0.47,
	}
}

// BuildValidation assembles the validation dataset from the world's
// hidden ground truth. IXPs are picked from the largest down, matching
// the paper's operator contacts (AMS-IX, DE-CIX, LINX, ...).
func BuildValidation(w *netsim.World, cfg ValidationConfig) *Validation {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.OperatorIXPs + cfg.WebsiteIXPs
	ixps := w.LargestIXPs(n + 4) // a few spares in case of tiny IXPs
	v := &Validation{
		Remote:       make(map[Key]bool),
		Local:        make(map[Key]bool),
		FromOperator: make(map[string]bool),
	}
	picked := 0
	nControl := int(cfg.ControlFrac * float64(n))
	wideIncluded := 0
	for _, ix := range ixps {
		if picked >= n {
			break
		}
		members := w.MembersOf(ix.ID)
		if len(members) < 10 {
			continue
		}
		// Ground truth is scarce for geographically distributed IXPs
		// (their operators know even less about "what goes on beyond
		// that cable"); keep at most two of them, enough to expose the
		// baseline's wide-area failure mode without dominating the
		// validation set.
		if ix.WideArea {
			if wideIncluded >= 2 {
				continue
			}
			wideIncluded++
		}
		cov := cfg.CoverageMin + rng.Float64()*(cfg.CoverageMax-cfg.CoverageMin)
		for _, m := range members {
			if rng.Float64() >= cov {
				continue
			}
			k := Key{IXP: ix.Name, Iface: m.Iface}
			if m.Remote() {
				v.Remote[k] = true
			} else {
				v.Local[k] = true
			}
		}
		if picked < cfg.OperatorIXPs {
			v.FromOperator[ix.Name] = true
		}
		// Wide-area IXPs always land in the test subset: the control
		// subset is used to study single-metro latency behaviour
		// (Fig 1b), matching the paper's control IXP selection, while
		// wide-area fabrics are exactly what the test subset must
		// stress (they break the RTT-threshold baseline).
		if len(v.ControlIXPs) < nControl && !ix.WideArea {
			v.ControlIXPs = append(v.ControlIXPs, ix.Name)
		} else {
			v.TestIXPs = append(v.TestIXPs, ix.Name)
		}
		picked++
	}
	sort.Strings(v.ControlIXPs)
	sort.Strings(v.TestIXPs)
	return v
}

// InIXPs filters the validation sets down to the named IXPs.
func (v *Validation) InIXPs(names []string) *Validation {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	out := &Validation{
		ControlIXPs:  v.ControlIXPs,
		TestIXPs:     v.TestIXPs,
		Remote:       make(map[Key]bool),
		Local:        make(map[Key]bool),
		FromOperator: v.FromOperator,
	}
	for k := range v.Remote {
		if set[k.IXP] {
			out.Remote[k] = true
		}
	}
	for k := range v.Local {
		if set[k.IXP] {
			out.Local[k] = true
		}
	}
	return out
}

// Size returns |VD|.
func (v *Validation) Size() int { return len(v.Remote) + len(v.Local) }

// Metrics are the Table 3 validation metrics.
type Metrics struct {
	// COV is |INF ∩ VD| / |VD|.
	COV float64
	// FPR is |INFR ∩ VDL| / |INF ∩ VDL|.
	FPR float64
	// FNR is |INFL ∩ VDR| / |INF ∩ VDR|.
	FNR float64
	// PRE is |INFR ∩ VDR| / |INFR| (within VD).
	PRE float64
	// ACC is (|INFR ∩ VDR| + |INFL ∩ VDL|) / |INF| (within VD).
	ACC float64
	// Counts backing the ratios.
	Validated, Inferred int
	TruePosR, TruePosL  int
	FalsePos, FalseNeg  int
}

// Evaluate scores a report against the validation sets, considering
// only memberships present in the validation data (INF - VD = ∅ by
// construction of the metrics).
func Evaluate(rep *Report, v *Validation) Metrics {
	var m Metrics
	m.Validated = v.Size()
	for k, truthRemote := range flatten(v) {
		inf, ok := rep.Inferences[k]
		if !ok || inf.Class == ClassUnknown {
			continue
		}
		m.Inferred++
		switch {
		case inf.Class == ClassRemote && truthRemote:
			m.TruePosR++
		case inf.Class == ClassLocal && !truthRemote:
			m.TruePosL++
		case inf.Class == ClassRemote && !truthRemote:
			m.FalsePos++
		case inf.Class == ClassLocal && truthRemote:
			m.FalseNeg++
		}
	}
	infL := m.TruePosL + m.FalseNeg // inferred-local within VD... see below
	_ = infL
	if m.Validated > 0 {
		m.COV = float64(m.Inferred) / float64(m.Validated)
	}
	if d := m.TruePosL + m.FalsePos; d > 0 {
		m.FPR = float64(m.FalsePos) / float64(d)
	}
	if d := m.TruePosR + m.FalseNeg; d > 0 {
		m.FNR = float64(m.FalseNeg) / float64(d)
	}
	if d := m.TruePosR + m.FalsePos; d > 0 {
		m.PRE = float64(m.TruePosR) / float64(d)
	}
	if m.Inferred > 0 {
		m.ACC = float64(m.TruePosR+m.TruePosL) / float64(m.Inferred)
	}
	return m
}

// flatten merges the two validation sets into iface -> isRemote.
func flatten(v *Validation) map[Key]bool {
	out := make(map[Key]bool, v.Size())
	for k := range v.Remote {
		out[k] = true
	}
	for k := range v.Local {
		out[k] = false
	}
	return out
}

// EvaluatePerIXP scores the report separately for each IXP present in
// the validation data (Fig 8).
func EvaluatePerIXP(rep *Report, v *Validation) map[string]Metrics {
	names := make(map[string]bool)
	for k := range v.Remote {
		names[k.IXP] = true
	}
	for k := range v.Local {
		names[k.IXP] = true
	}
	out := make(map[string]Metrics, len(names))
	for name := range names {
		out[name] = Evaluate(rep, v.InIXPs([]string{name}))
	}
	return out
}

// StepInferences returns the inferences attributed to one step,
// as a report (for the per-step rows of Table 4).
func StepInferences(rep *Report, s Step) *Report {
	out := &Report{Inferences: make(map[Key]*Inference)}
	for k, inf := range rep.Inferences {
		if inf.Step == s && inf.Class != ClassUnknown {
			out.Inferences[k] = inf
		}
	}
	return out
}

// GroundTruthRemote exposes the world's hidden membership kind for one
// interface; it exists for experiment harnesses that need full-world
// truth (e.g. Fig 10b sanity lines) and must never be called from the
// pipeline.
func GroundTruthRemote(w *netsim.World, iface netip.Addr) (bool, bool) {
	for _, m := range w.Members {
		if m.Iface == iface {
			return m.Remote(), true
		}
	}
	return false, false
}
