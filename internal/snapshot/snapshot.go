// Package snapshot persists the engine's columnar state: a snapshot
// file is a small manifest header followed by named, typed columns —
// the columns themselves (interface addresses, ASNs, IXP ids, port
// capacities, campaign overrides), not the object graph they back
// (DESIGN.md §9/§10: strings and maps live at the edges; durable state
// is flat arrays).
//
// File layout (little-endian):
//
//	magic "RPISNP01" | u32 format version | u64 seq | u64 fingerprint
//	u32 #columns | column... | u32 CRC32C(everything before)
//
// and each column is
//
//	u16 name length | name | u8 kind | u32 #values | packed values
//
// A snapshot is published atomically: written to a .tmp name, fsynced,
// renamed into place, directory fsynced. Readers validate the trailing
// checksum over the whole file before trusting anything, so a torn or
// bit-rotted snapshot is skipped (recovery falls back to the previous
// one plus a longer log replay), never half-loaded.
package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"net/netip"
	"sort"
	"strconv"
	"strings"

	"rpeer/internal/wal"
)

// Magic identifies a snapshot file.
const Magic = "RPISNP01"

// FormatVersion is the current snapshot format.
const FormatVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrInvalid marks a snapshot file that failed validation (bad magic,
// bad checksum, truncated, unknown column kind). Wrapped errors carry
// detail.
var ErrInvalid = errors.New("snapshot: invalid snapshot file")

// Kind tags a column's element type.
type Kind uint8

// Column kinds.
const (
	KindU32 Kind = iota + 1
	KindU64
	KindF64
	KindU8
	// KindAddr packs netip addresses as len-prefixed bytes (4 or 16).
	KindAddr
	// KindString packs strings as u16-len-prefixed UTF-8.
	KindString
)

// Column is one named, typed value column. Exactly the field matching
// Kind is populated.
type Column struct {
	Name string
	Kind Kind
	U32  []uint32
	U64  []uint64
	F64  []float64
	U8   []uint8
	Addr []netip.Addr
	Str  []string
}

// Len returns the column's value count.
func (c *Column) Len() int {
	switch c.Kind {
	case KindU32:
		return len(c.U32)
	case KindU64:
		return len(c.U64)
	case KindF64:
		return len(c.F64)
	case KindU8:
		return len(c.U8)
	case KindAddr:
		return len(c.Addr)
	case KindString:
		return len(c.Str)
	}
	return 0
}

// Snap is one decoded snapshot: a manifest (sequence number plus the
// base-world fingerprint it extends) and its columns.
type Snap struct {
	// Seq is the engine delta sequence the snapshot captures: a
	// recovery that loads it replays only log records with seq > Seq.
	Seq uint64
	// Fingerprint identifies the base inputs the columns patch; Open
	// refuses to marry a snapshot to a different world.
	Fingerprint uint64
	Columns     []Column
}

// Add appends a column.
func (s *Snap) Add(c Column) { s.Columns = append(s.Columns, c) }

// Col returns the named column, or nil.
func (s *Snap) Col(name string) *Column {
	for i := range s.Columns {
		if s.Columns[i].Name == name {
			return &s.Columns[i]
		}
	}
	return nil
}

// Encode serializes the snapshot with its trailing checksum.
func (s *Snap) Encode() []byte {
	b := make([]byte, 0, 1024)
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint32(b, FormatVersion)
	b = binary.LittleEndian.AppendUint64(b, s.Seq)
	b = binary.LittleEndian.AppendUint64(b, s.Fingerprint)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s.Columns)))
	for i := range s.Columns {
		b = appendColumn(b, &s.Columns[i])
	}
	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, castagnoli))
}

func appendColumn(b []byte, c *Column) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(c.Name)))
	b = append(b, c.Name...)
	b = append(b, byte(c.Kind))
	b = binary.LittleEndian.AppendUint32(b, uint32(c.Len()))
	switch c.Kind {
	case KindU32:
		for _, v := range c.U32 {
			b = binary.LittleEndian.AppendUint32(b, v)
		}
	case KindU64:
		for _, v := range c.U64 {
			b = binary.LittleEndian.AppendUint64(b, v)
		}
	case KindF64:
		for _, v := range c.F64 {
			b = binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
		}
	case KindU8:
		b = append(b, c.U8...)
	case KindAddr:
		for _, a := range c.Addr {
			raw := a.AsSlice()
			b = append(b, byte(len(raw)))
			b = append(b, raw...)
		}
	case KindString:
		for _, v := range c.Str {
			b = binary.LittleEndian.AppendUint16(b, uint16(len(v)))
			b = append(b, v...)
		}
	}
	return b
}

// EncodeColumns serializes a bare column group — u32 column count
// followed by the columns in the snapshot wire encoding — without the
// snapshot header or trailing checksum. Containers that frame and
// checksum their own sections (internal/worldfile) embed column groups
// this way.
func EncodeColumns(cols []Column) []byte {
	b := make([]byte, 0, 1024)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(cols)))
	for i := range cols {
		b = appendColumn(b, &cols[i])
	}
	return b
}

// DecodeColumns parses a column group written by EncodeColumns. The
// whole payload must be consumed; trailing garbage is an error.
func DecodeColumns(data []byte) ([]Column, error) {
	d := &dec{b: data}
	nCols := int(d.u32())
	cols := make([]Column, 0, nCols)
	for i := 0; i < nCols && d.err == nil; i++ {
		c, err := decodeColumn(d)
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, d.err)
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after column group", ErrInvalid, len(d.b))
	}
	return cols, nil
}

// decodeColumn parses one column off the reader. Kind errors are
// returned directly; length errors surface through d.err.
func decodeColumn(d *dec) (Column, error) {
	c := Column{}
	c.Name = string(d.take(int(d.u16())))
	c.Kind = Kind(d.u8())
	n := int(d.u32())
	switch c.Kind {
	case KindU32:
		c.U32 = make([]uint32, n)
		for j := range c.U32 {
			c.U32[j] = d.u32()
		}
	case KindU64:
		c.U64 = make([]uint64, n)
		for j := range c.U64 {
			c.U64[j] = d.u64()
		}
	case KindF64:
		c.F64 = make([]float64, n)
		for j := range c.F64 {
			c.F64[j] = math.Float64frombits(d.u64())
		}
	case KindU8:
		c.U8 = append([]uint8(nil), d.take(n)...)
	case KindAddr:
		c.Addr = make([]netip.Addr, n)
		for j := range c.Addr {
			raw := d.take(int(d.u8()))
			a, ok := netip.AddrFromSlice(raw)
			if !ok && d.err == nil {
				d.err = fmt.Errorf("bad address of %d bytes", len(raw))
			}
			c.Addr[j] = a
		}
	case KindString:
		c.Str = make([]string, n)
		for j := range c.Str {
			c.Str[j] = string(d.take(int(d.u16())))
		}
	default:
		if d.err == nil {
			return c, fmt.Errorf("%w: unknown column kind %d", ErrInvalid, c.Kind)
		}
	}
	return c, nil
}

// Decode parses and validates a snapshot file image.
func Decode(data []byte) (*Snap, error) {
	if len(data) < len(Magic)+4+8+8+4+4 {
		return nil, fmt.Errorf("%w: %d bytes is too short", ErrInvalid, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrInvalid)
	}
	d := &dec{b: body[len(Magic):]}
	ver := d.u32()
	if ver > FormatVersion {
		return nil, fmt.Errorf("%w: format v%d newer than supported v%d", ErrInvalid, ver, FormatVersion)
	}
	s := &Snap{Seq: d.u64(), Fingerprint: d.u64()}
	nCols := int(d.u32())
	for i := 0; i < nCols && d.err == nil; i++ {
		c, err := decodeColumn(d)
		if err != nil {
			return nil, err
		}
		s.Columns = append(s.Columns, c)
	}
	if d.err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, d.err)
	}
	return s, nil
}

// dec is a bounds-checked little-endian reader.
type dec struct {
	b   []byte
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.b) {
		if d.err == nil {
			d.err = io.ErrUnexpectedEOF
		}
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// ---------------------------------------------------------------------------
// Directory layout

const (
	filePrefix = "snap-"
	fileSuffix = ".rpisnap"
	tmpSuffix  = ".tmp"
)

// FileName returns the published name of a snapshot at seq.
func FileName(seq uint64) string {
	return fmt.Sprintf("%s%016x%s", filePrefix, seq, fileSuffix)
}

// seqOf parses a published snapshot file name.
func seqOf(name string) (uint64, bool) {
	if !strings.HasPrefix(name, filePrefix) || !strings.HasSuffix(name, fileSuffix) {
		return 0, false
	}
	hex := strings.TrimSuffix(strings.TrimPrefix(name, filePrefix), fileSuffix)
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Write publishes a snapshot into dir atomically: tmp file, fsync,
// rename to the seq-derived name, directory fsync. On any error the
// tmp file is removed (best-effort) and nothing is published.
func Write(fsys wal.FS, dir string, s *Snap) (string, error) {
	name := FileName(s.Seq)
	tmp := dir + "/" + name + tmpSuffix
	f, err := fsys.Create(tmp)
	if err != nil {
		return "", fmt.Errorf("snapshot: create %s: %w", tmp, err)
	}
	cleanup := func() { _ = fsys.Remove(tmp) }
	if _, err := f.Write(s.Encode()); err != nil {
		f.Close()
		cleanup()
		return "", fmt.Errorf("snapshot: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return "", fmt.Errorf("snapshot: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return "", fmt.Errorf("snapshot: close %s: %w", tmp, err)
	}
	final := dir + "/" + name
	if err := fsys.Rename(tmp, final); err != nil {
		cleanup()
		return "", fmt.Errorf("snapshot: publish %s: %w", name, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return "", fmt.Errorf("snapshot: sync dir after publishing %s: %w", name, err)
	}
	return final, nil
}

// Entry is one published snapshot found in a directory.
type Entry struct {
	Name string
	Seq  uint64
}

// List returns the published snapshots in dir, newest (highest seq)
// first. Tmp leftovers and foreign files are ignored.
func List(fsys wal.FS, dir string) ([]Entry, error) {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, n := range names {
		if seq, ok := seqOf(n); ok {
			out = append(out, Entry{Name: n, Seq: seq})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq > out[j].Seq })
	return out, nil
}

// Load reads and validates one snapshot file.
func Load(fsys wal.FS, dir, name string) (*Snap, error) {
	f, err := fsys.Open(dir + "/" + name)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Latest loads the newest valid snapshot in dir whose seq is <= maxSeq
// (use ^uint64(0) for "any"). Invalid snapshots are skipped — recovery
// prefers an older good snapshot plus more log replay over trusting
// damaged columns — and their names are reported in skipped. ok is
// false when no valid snapshot exists.
func Latest(fsys wal.FS, dir string, maxSeq uint64) (s *Snap, name string, skipped []string, ok bool, err error) {
	entries, err := List(fsys, dir)
	if err != nil {
		return nil, "", nil, false, err
	}
	for _, e := range entries {
		if e.Seq > maxSeq {
			continue
		}
		snap, lerr := Load(fsys, dir, e.Name)
		if lerr != nil {
			skipped = append(skipped, fmt.Sprintf("%s (%v)", e.Name, lerr))
			continue
		}
		return snap, e.Name, skipped, true, nil
	}
	return nil, "", skipped, false, nil
}
