package snapshot

import (
	"errors"
	"net/netip"
	"testing"

	"rpeer/internal/wal"
)

func sample() *Snap {
	s := &Snap{Seq: 12, Fingerprint: 0xfeedface}
	s.Add(Column{Name: "iface.addr", Kind: KindAddr, Addr: []netip.Addr{
		netip.MustParseAddr("185.0.0.9"),
		netip.MustParseAddr("2001:db8::1"),
	}})
	s.Add(Column{Name: "iface.asn", Kind: KindU32, U32: []uint32{64500, 64501}})
	s.Add(Column{Name: "ping.rtt", Kind: KindF64, F64: []float64{0.42, 117.5}})
	s.Add(Column{Name: "ixp.names", Kind: KindString, Str: []string{"Frankfurt-IX", "Tokyo-IX"}})
	s.Add(Column{Name: "flags", Kind: KindU8, U8: []uint8{1, 0}})
	s.Add(Column{Name: "seqs", Kind: KindU64, U64: []uint64{1, 1 << 40}})
	return s
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := sample()
	got, err := Decode(s.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != s.Seq || got.Fingerprint != s.Fingerprint || len(got.Columns) != len(s.Columns) {
		t.Fatalf("manifest mismatch: %+v", got)
	}
	if got.Col("iface.addr").Addr[1] != netip.MustParseAddr("2001:db8::1") {
		t.Fatal("address column mangled")
	}
	if got.Col("ixp.names").Str[0] != "Frankfurt-IX" {
		t.Fatal("string column mangled")
	}
	if got.Col("ping.rtt").F64[1] != 117.5 {
		t.Fatal("float column mangled")
	}
	// Deterministic bytes: same snapshot encodes identically.
	if string(s.Encode()) != string(sample().Encode()) {
		t.Fatal("encoding is not deterministic")
	}
}

// TestEveryFlipDetected flips each byte of an encoded snapshot and
// expects validation to fail — the trailing CRC covers the whole file.
func TestEveryFlipDetected(t *testing.T) {
	enc := sample().Encode()
	for pos := range enc {
		bad := append([]byte(nil), enc...)
		bad[pos] ^= 0xff
		if _, err := Decode(bad); !errors.Is(err, ErrInvalid) {
			t.Fatalf("flip at %d: err = %v, want ErrInvalid", pos, err)
		}
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, err := Decode(enc[:cut]); !errors.Is(err, ErrInvalid) {
			t.Fatalf("truncate to %d: err = %v, want ErrInvalid", cut, err)
		}
	}
}

func TestWriteLatestAndFallback(t *testing.T) {
	fsys := wal.NewMemFS()
	if err := fsys.MkdirAll("d"); err != nil {
		t.Fatal(err)
	}
	a := sample()
	a.Seq = 5
	if _, err := Write(fsys, "d", a); err != nil {
		t.Fatal(err)
	}
	b := sample()
	b.Seq = 9
	if _, err := Write(fsys, "d", b); err != nil {
		t.Fatal(err)
	}

	got, name, skipped, ok, err := Latest(fsys, "d", ^uint64(0))
	if err != nil || !ok || got.Seq != 9 || len(skipped) != 0 {
		t.Fatalf("Latest = %v seq=%d name=%s skipped=%v ok=%v", err, got.Seq, name, skipped, ok)
	}

	// Bounded by maxSeq: time-travel to seq 7 must pick the seq-5 one.
	got, _, _, ok, err = Latest(fsys, "d", 7)
	if err != nil || !ok || got.Seq != 5 {
		t.Fatalf("Latest(<=7) seq = %d, want 5", got.Seq)
	}

	// Corrupt the newest: Latest falls back to the older valid one and
	// reports the skip.
	raw, _ := fsys.ReadFile("d/" + FileName(9))
	raw[len(raw)/2] ^= 0xff
	fsys.WriteFile("d/"+FileName(9), raw)
	got, _, skipped, ok, err = Latest(fsys, "d", ^uint64(0))
	if err != nil || !ok || got.Seq != 5 || len(skipped) != 1 {
		t.Fatalf("fallback: seq=%d skipped=%v ok=%v err=%v", got.Seq, skipped, ok, err)
	}
}

// TestPublishIsAtomic crashes at every mutating-op index during a
// Write and verifies the directory never holds a half-published
// snapshot: after power failure either the old state or the fully
// valid new snapshot is visible.
func TestPublishIsAtomic(t *testing.T) {
	for crashAt := 1; ; crashAt++ {
		fsys := wal.NewMemFS()
		if err := fsys.MkdirAll("d"); err != nil {
			t.Fatal(err)
		}
		old := sample()
		old.Seq = 3
		if _, err := Write(fsys, "d", old); err != nil {
			t.Fatal(err)
		}
		baseline := fsys.Ops()

		fsys.InjectAt(crashAt, wal.Fault{Mode: wal.FaultCrash})
		nu := sample()
		nu.Seq = 8
		_, err := Write(fsys, "d", nu)
		crashed := fsys.Crashed()
		fsys.PowerFail(0)

		got, _, _, ok, lerr := Latest(fsys, "d", ^uint64(0))
		if lerr != nil || !ok {
			t.Fatalf("crash at op %d: recovery found no snapshot (%v)", crashAt, lerr)
		}
		if got.Seq != 3 && got.Seq != 8 {
			t.Fatalf("crash at op %d: recovered seq %d", crashAt, got.Seq)
		}
		if err == nil && !crashed {
			// The write outran the injection point: matrix exhausted.
			if fsys.Ops()-baseline < crashAt {
				return
			}
			if got.Seq != 8 {
				t.Fatalf("clean write at op %d left old snapshot current", crashAt)
			}
		}
	}
}
