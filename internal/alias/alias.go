// Package alias implements MIDAR-style IPv4 alias resolution
// (Keys et al., ToN 2013; paper Section 5.2, Step 4) over the
// simulated Internet: routers expose a shared, monotonically
// increasing IP-ID counter across all their interfaces, and the
// resolver probes candidate interfaces in interleaved rounds, applying
// a Monotonic Bounds Test (MBT) to decide whether two interfaces share
// one counter — i.e. belong to one physical router.
//
// Two confidence modes mirror the two CAIDA datasets the paper chooses
// between: ModePrecision (MIDAR + iffinder: strict, very low false
// positives) and ModeCoverage (adding kapar-style looser matching:
// higher coverage, more errors).
package alias

import (
	"hash/fnv"
	"math"
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
)

// Mode selects the precision/coverage trade-off.
type Mode int

const (
	// ModePrecision accepts only pairs passing the strict MBT
	// (highest-confidence aliases, very low false positives).
	ModePrecision Mode = iota
	// ModeCoverage additionally accepts pairs with merely similar
	// counter velocities, boosting coverage at the cost of accuracy.
	ModeCoverage
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModePrecision {
		return "midar+iffinder"
	}
	return "midar+kapar"
}

// Prober simulates probing an interface for its IP-ID value. A
// fraction of routers use randomized or zero IP-IDs and are therefore
// unresolvable — the real-world phenomenon that caps Step 4 coverage.
//
// Probing is a pure function of (seed, interface, probe time): per-probe
// randomness (loss, counter jitter) is derived from a stable hash rather
// than a shared RNG stream. This makes Resolve a pure function of its
// input set, so callers (core.Context) can memoize resolution results
// across pipeline runs without changing any outcome.
type Prober struct {
	w *netsim.World
	// RandomIPIDFrac is the fraction of routers with unusable IP-ID
	// behaviour.
	RandomIPIDFrac float64
	// NoReplyProb is the per-probe loss probability.
	NoReplyProb float64
	seed        int64
}

// NewProber builds a prober over the world.
func NewProber(w *netsim.World, seed int64) *Prober {
	return &Prober{
		w:              w,
		RandomIPIDFrac: 0.15,
		NoReplyProb:    0.05,
		seed:           seed,
	}
}

// noise derives a deterministic uniform [0,1) value for one probe event
// from (seed, interface, time, salt).
func (p *Prober) noise(iface netip.Addr, t float64, salt uint64) float64 {
	h := fnv.New64a()
	var buf [36]byte
	b16 := iface.As16()
	copy(buf[0:16], b16[:])
	for i := 0; i < 8; i++ {
		buf[16+i] = byte(uint64(p.seed) >> (8 * i))
		buf[24+i] = byte(math.Float64bits(t) >> (8 * i))
	}
	buf[32] = byte(salt)
	buf[33] = byte(salt >> 8)
	buf[34] = byte(salt >> 16)
	buf[35] = byte(salt >> 24)
	_, _ = h.Write(buf[:])
	return float64(h.Sum64()>>11) / (1 << 53)
}

// usableCounter reports whether the router exposes a shared monotonic
// IP-ID counter (deterministic per router and seed).
func (p *Prober) usableCounter(r *netsim.Router) bool {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(uint64(r.ID) >> (8 * i))
		buf[8+i] = byte(uint64(p.seed) >> (8 * i))
	}
	_, _ = h.Write(buf[:])
	return float64(h.Sum64()%10000)/10000 >= p.RandomIPIDFrac
}

// Probe returns the IP-ID value of the interface at (virtual) time t
// seconds, and whether a usable reply arrived.
func (p *Prober) Probe(iface netip.Addr, t float64) (uint16, bool) {
	rid, ok := p.w.RouterOf(iface)
	if !ok {
		return 0, false
	}
	r := p.w.Router(rid)
	if !p.usableCounter(r) {
		// Randomized IP-ID: reply arrives but carries no signal.
		return uint16(p.noise(iface, t, 0xA5) * 65536), false
	}
	if p.noise(iface, t, 0x5A) < p.NoReplyProb {
		return 0, false
	}
	// Shared counter: base progression plus cross-traffic increments.
	v := float64(r.IPIDInit) + r.IPIDRate*t + p.noise(iface, t, 0x33)*3
	return uint16(uint64(v) % 65536), true
}

// sample is one (time, unwrapped-id) observation.
type sample struct {
	t  float64
	id uint16
}

// Resolver clusters interfaces into routers.
type Resolver struct {
	Prober *Prober
	Mode   Mode
	// Rounds is the number of interleaved probe rounds per interface.
	Rounds int
	// Spacing is the inter-round spacing in seconds.
	Spacing float64
}

// NewResolver returns a resolver with MIDAR-like defaults (30 rounds,
// 10 s spacing).
func NewResolver(p *Prober, mode Mode) *Resolver {
	return &Resolver{Prober: p, Mode: mode, Rounds: 30, Spacing: 10}
}

// series probes one interface across all rounds, offset within the
// round to interleave with other interfaces.
func (r *Resolver) series(iface netip.Addr, offset float64) []sample {
	var out []sample
	for i := 0; i < r.Rounds; i++ {
		t := float64(i)*r.Spacing + offset
		if id, ok := r.Prober.Probe(iface, t); ok {
			out = append(out, sample{t, id})
		}
	}
	return out
}

// velocity estimates the counter rate (IDs per second) of a series by
// unwrapping 16-bit wraparounds, returning ok=false for short series.
func velocity(s []sample) (rate float64, ok bool) {
	if len(s) < 5 {
		return 0, false
	}
	// Unwrap: assume the counter advances less than 2^16 between
	// consecutive samples (true for MIDAR-scale spacing and rates).
	unwrapped := make([]float64, len(s))
	offset := 0.0
	unwrapped[0] = float64(s[0].id)
	for i := 1; i < len(s); i++ {
		prev := float64(s[i-1].id)
		cur := float64(s[i].id)
		if cur < prev {
			offset += 65536
		}
		unwrapped[i] = cur + offset
	}
	// Least-squares slope over time.
	var sx, sy, sxx, sxy float64
	for i, v := range unwrapped {
		sx += s[i].t
		sy += v
		sxx += s[i].t * s[i].t
		sxy += s[i].t * v
	}
	n := float64(len(s))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// mbt runs the Monotonic Bounds Test on two interleaved series: merged
// by time, the unwrapped sequence must be strictly non-decreasing and
// consistent with a single linear counter.
func (r *Resolver) mbt(a, b []sample) bool {
	if len(a) < 5 || len(b) < 5 {
		return false
	}
	merged := make([]sample, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	sort.Slice(merged, func(i, j int) bool { return merged[i].t < merged[j].t })

	va, okA := velocity(a)
	vb, okB := velocity(b)
	if !okA || !okB {
		return false
	}
	// Velocities of a shared counter agree closely.
	if math.Abs(va-vb) > 0.05*math.Max(va, vb)+2 {
		return false
	}
	// Monotonicity of the merged unwrapped sequence with the common
	// velocity: successive samples must advance by roughly rate*dt.
	rate := (va + vb) / 2
	for i := 1; i < len(merged); i++ {
		dt := merged[i].t - merged[i-1].t
		expect := rate * dt
		diff := float64(merged[i].id) - float64(merged[i-1].id)
		if diff < 0 {
			diff += 65536 // wraparound
		}
		// Allow generous jitter around the expected advance.
		if math.Abs(diff-expect) > 0.35*expect+25 {
			return false
		}
	}
	return true
}

// Resolve clusters the given interfaces into alias sets (routers).
// Interfaces that resolve with nothing form singleton clusters. The
// result is deterministic for a given prober seed and input order is
// normalised internally.
func (r *Resolver) Resolve(ifaces []netip.Addr) [][]netip.Addr {
	sorted := append([]netip.Addr(nil), ifaces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	series := make(map[netip.Addr][]sample, len(sorted))
	vel := make(map[netip.Addr]float64, len(sorted))
	for i, ip := range sorted {
		s := r.series(ip, float64(i%7)*(r.Spacing/7))
		series[ip] = s
		if v, ok := velocity(s); ok {
			vel[ip] = v
		}
	}

	// Union-find over alias-positive pairs.
	parent := make(map[netip.Addr]netip.Addr, len(sorted))
	var find func(netip.Addr) netip.Addr
	find = func(x netip.Addr) netip.Addr {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		root := find(p)
		parent[x] = root
		return root
	}
	union := func(a, b netip.Addr) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb.Less(ra) {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	for i := 0; i < len(sorted); i++ {
		for j := i + 1; j < len(sorted); j++ {
			a, b := sorted[i], sorted[j]
			if find(a) == find(b) {
				continue
			}
			va, okA := vel[a]
			vb, okB := vel[b]
			if !okA || !okB {
				continue
			}
			// Cheap velocity pre-filter before the expensive MBT.
			if math.Abs(va-vb) > 0.10*math.Max(va, vb)+5 {
				continue
			}
			switch r.Mode {
			case ModePrecision:
				if r.mbt(series[a], series[b]) {
					union(a, b)
				}
			case ModeCoverage:
				if r.mbt(series[a], series[b]) || math.Abs(va-vb) < 0.02*math.Max(va, vb)+1 {
					union(a, b)
				}
			}
		}
	}

	groups := make(map[netip.Addr][]netip.Addr)
	for _, ip := range sorted {
		root := find(ip)
		groups[root] = append(groups[root], ip)
	}
	var roots []netip.Addr
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].Less(roots[j]) })
	out := make([][]netip.Addr, 0, len(roots))
	for _, root := range roots {
		out = append(out, groups[root])
	}
	return out
}
