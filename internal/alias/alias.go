// Package alias implements MIDAR-style IPv4 alias resolution
// (Keys et al., ToN 2013; paper Section 5.2, Step 4) over the
// simulated Internet: routers expose a shared, monotonically
// increasing IP-ID counter across all their interfaces, and the
// resolver probes candidate interfaces in interleaved rounds, applying
// a Monotonic Bounds Test (MBT) to decide whether two interfaces share
// one counter — i.e. belong to one physical router.
//
// Two confidence modes mirror the two CAIDA datasets the paper chooses
// between: ModePrecision (MIDAR + iffinder: strict, very low false
// positives) and ModeCoverage (adding kapar-style looser matching:
// higher coverage, more errors).
package alias

import (
	"math"
	"net/netip"
	"sort"
	"sync"

	"rpeer/internal/netsim"
	"rpeer/internal/rng"
)

// Mode selects the precision/coverage trade-off.
type Mode int

const (
	// ModePrecision accepts only pairs passing the strict MBT
	// (highest-confidence aliases, very low false positives).
	ModePrecision Mode = iota
	// ModeCoverage additionally accepts pairs with merely similar
	// counter velocities, boosting coverage at the cost of accuracy.
	ModeCoverage
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == ModePrecision {
		return "midar+iffinder"
	}
	return "midar+kapar"
}

// Prober simulates probing an interface for its IP-ID value. A
// fraction of routers use randomized or zero IP-IDs and are therefore
// unresolvable — the real-world phenomenon that caps Step 4 coverage.
//
// Probing is a pure function of (seed, interface, probe time): per-probe
// randomness (loss, counter jitter) is derived from a stable hash rather
// than a shared RNG stream. This makes Resolve a pure function of its
// input set, so callers (core.Context) can memoize resolution results
// across pipeline runs without changing any outcome.
type Prober struct {
	w *netsim.World
	// RandomIPIDFrac is the fraction of routers with unusable IP-ID
	// behaviour.
	RandomIPIDFrac float64
	// NoReplyProb is the per-probe loss probability.
	NoReplyProb float64
	seed        int64

	// usable caches the per-router counter-usability verdict (pure in
	// (seed, router), recomputed tens of times per router by the
	// resolver's probe rounds before the cache). Built on first probe so
	// post-construction tuning of RandomIPIDFrac still takes effect.
	usableOnce sync.Once
	usable     []bool
}

// NewProber builds a prober over the world.
func NewProber(w *netsim.World, seed int64) *Prober {
	return &Prober{
		w:              w,
		RandomIPIDFrac: 0.15,
		NoReplyProb:    0.05,
		seed:           seed,
	}
}

// addrWords folds an address into two 64-bit identity words.
func addrWords(a netip.Addr) (lo, hi uint64) {
	if a.Is4() {
		b := a.As4()
		return uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]), 4
	}
	b := a.As16()
	for i := 0; i < 8; i++ {
		lo |= uint64(b[i]) << (8 * i)
		hi |= uint64(b[8+i]) << (8 * i)
	}
	return lo, hi
}

// noise derives a deterministic uniform [0,1) value for one probe event
// from (seed, interface, time, salt).
func (p *Prober) noise(iface netip.Addr, t float64, salt uint64) float64 {
	lo, hi := addrWords(iface)
	h := rng.Mix(rng.Key3(p.seed, lo, hi, math.Float64bits(t)), salt)
	return float64(h>>11) / (1 << 53)
}

// usableCounter reports whether the router exposes a shared monotonic
// IP-ID counter (deterministic per router and seed).
func (p *Prober) usableCounter(r *netsim.Router) bool {
	p.usableOnce.Do(p.buildUsable)
	if int(r.ID) < len(p.usable) {
		return p.usable[r.ID]
	}
	return p.usableVerdict(r.ID)
}

// buildUsable precomputes the usability column for the world's dense
// router ID space.
func (p *Prober) buildUsable() {
	maxID := netsim.RouterID(-1)
	for _, id := range p.w.RouterIDs {
		if id > maxID {
			maxID = id
		}
	}
	col := make([]bool, maxID+1)
	for _, id := range p.w.RouterIDs {
		col[id] = p.usableVerdict(id)
	}
	p.usable = col
}

// usableVerdict is the pure per-router verdict backing the cache.
func (p *Prober) usableVerdict(id netsim.RouterID) bool {
	h := rng.Key2(p.seed, uint64(id), 0x1d)
	return float64(h%10000)/10000 >= p.RandomIPIDFrac
}

// Probe returns the IP-ID value of the interface at (virtual) time t
// seconds, and whether a usable reply arrived.
func (p *Prober) Probe(iface netip.Addr, t float64) (uint16, bool) {
	rid, ok := p.w.RouterOf(iface)
	if !ok {
		return 0, false
	}
	r := p.w.Router(rid)
	if !p.usableCounter(r) {
		// Randomized IP-ID: reply arrives but carries no signal.
		return uint16(p.noise(iface, t, 0xA5) * 65536), false
	}
	if p.noise(iface, t, 0x5A) < p.NoReplyProb {
		return 0, false
	}
	// Shared counter: base progression plus cross-traffic increments.
	v := float64(r.IPIDInit) + r.IPIDRate*t + p.noise(iface, t, 0x33)*3
	return uint16(uint64(v) % 65536), true
}

// sampleSeries probes one interface across rounds, hoisting the
// router resolution, usability verdict and address words out of the
// per-round loop (Probe re-derives all three per call; a MIDAR series
// touches the same interface 30 times). Identical outcomes to calling
// Probe round by round.
func (p *Prober) sampleSeries(iface netip.Addr, rounds int, spacing, offset float64) []sample {
	rid, ok := p.w.RouterOf(iface)
	if !ok {
		return nil
	}
	r := p.w.Router(rid)
	if !p.usableCounter(r) {
		return nil // every probe replies without signal
	}
	lo, hi := addrWords(iface)
	base := rng.Key2(p.seed, lo, hi)
	out := make([]sample, 0, rounds)
	for i := 0; i < rounds; i++ {
		t := float64(i)*spacing + offset
		ht := rng.Mix(base, math.Float64bits(t))
		if float64(rng.Mix(ht, 0x5A)>>11)/(1<<53) < p.NoReplyProb {
			continue
		}
		jitter := float64(rng.Mix(ht, 0x33)>>11) / (1 << 53)
		v := float64(r.IPIDInit) + r.IPIDRate*t + jitter*3
		out = append(out, sample{t, uint16(uint64(v) % 65536)})
	}
	return out
}

// sample is one (time, unwrapped-id) observation.
type sample struct {
	t  float64
	id uint16
}

// ifaceSeries is the memoized probe outcome for one interface: the
// time-ordered sample series and its fitted counter velocity. Probing
// is a pure function of (prober seed, interface), so one record serves
// every Resolve call that touches the interface.
type ifaceSeries struct {
	samples []sample
	vel     float64
	velOK   bool
}

// Resolver clusters interfaces into routers.
type Resolver struct {
	Prober *Prober
	Mode   Mode
	// Rounds is the number of interleaved probe rounds per interface.
	Rounds int
	// Spacing is the inter-round spacing in seconds.
	Spacing float64

	// memo caches the per-interface series across Resolve calls. The
	// probe schedule offsets by a hash of the address (not the position
	// of the interface within one call's input set), so a series is a
	// pure function of the interface and can be shared by every call.
	memoMu sync.RWMutex
	memo   map[netip.Addr]*ifaceSeries
}

// NewResolver returns a resolver with MIDAR-like defaults (30 rounds,
// 10 s spacing).
func NewResolver(p *Prober, mode Mode) *Resolver {
	return &Resolver{
		Prober: p, Mode: mode, Rounds: 30, Spacing: 10,
		memo: make(map[netip.Addr]*ifaceSeries),
	}
}

// seriesFor returns the memoized series of one interface, probing it
// across all rounds on first use. The round offset interleaves
// interfaces MIDAR-style; it is derived from the address so that the
// series does not depend on which other interfaces share the call.
func (r *Resolver) seriesFor(iface netip.Addr) *ifaceSeries {
	r.memoMu.RLock()
	s, ok := r.memo[iface]
	r.memoMu.RUnlock()
	if ok {
		return s
	}

	lo, hi := addrWords(iface)
	offset := float64(rng.Key3(r.Prober.seed, lo, hi, 0x0f)%7) * (r.Spacing / 7)
	s = &ifaceSeries{samples: r.Prober.sampleSeries(iface, r.Rounds, r.Spacing, offset)}
	s.vel, s.velOK = velocity(s.samples)

	r.memoMu.Lock()
	if prev, ok := r.memo[iface]; ok {
		s = prev // concurrent duplicate computed the identical value
	} else {
		r.memo[iface] = s
	}
	r.memoMu.Unlock()
	return s
}

// velocity estimates the counter rate (IDs per second) of a series by
// unwrapping 16-bit wraparounds, returning ok=false for short series.
func velocity(s []sample) (rate float64, ok bool) {
	if len(s) < 5 {
		return 0, false
	}
	// Unwrap: assume the counter advances less than 2^16 between
	// consecutive samples (true for MIDAR-scale spacing and rates),
	// accumulating the least-squares terms in one pass.
	var sx, sy, sxx, sxy float64
	offset := 0.0
	prev := float64(s[0].id)
	for i, smp := range s {
		cur := float64(smp.id)
		if i > 0 && cur < prev {
			offset += 65536
		}
		prev = cur
		v := cur + offset
		sx += smp.t
		sy += v
		sxx += smp.t * smp.t
		sxy += smp.t * v
	}
	n := float64(len(s))
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, false
	}
	return (n*sxy - sx*sy) / den, true
}

// mbt runs the Monotonic Bounds Test on two interleaved series: merged
// by time, the unwrapped sequence must be strictly non-decreasing and
// consistent with a single linear counter. Both series are already
// time-ordered, so the merge is a two-pointer walk with no allocation.
func (r *Resolver) mbt(sa, sb *ifaceSeries) bool {
	a, b := sa.samples, sb.samples
	if len(a) < 5 || len(b) < 5 {
		return false
	}
	if !sa.velOK || !sb.velOK {
		return false
	}
	va, vb := sa.vel, sb.vel
	// Velocities of a shared counter agree closely.
	if math.Abs(va-vb) > 0.05*math.Max(va, vb)+2 {
		return false
	}
	// Monotonicity of the merged sequence with the common velocity:
	// successive samples must advance by roughly rate*dt.
	rate := (va + vb) / 2
	i, j := 0, 0
	var prev sample
	for i < len(a) || j < len(b) {
		var cur sample
		if j >= len(b) || (i < len(a) && a[i].t <= b[j].t) {
			cur = a[i]
			i++
		} else {
			cur = b[j]
			j++
		}
		if i+j > 1 {
			dt := cur.t - prev.t
			expect := rate * dt
			diff := float64(cur.id) - float64(prev.id)
			if diff < 0 {
				diff += 65536 // wraparound
			}
			// Allow generous jitter around the expected advance.
			if math.Abs(diff-expect) > 0.35*expect+25 {
				return false
			}
		}
		prev = cur
	}
	return true
}

// Resolve clusters the given interfaces into alias sets (routers).
// Interfaces that resolve with nothing form singleton clusters. The
// result is deterministic for a given prober seed and input order is
// normalised internally.
func (r *Resolver) Resolve(ifaces []netip.Addr) [][]netip.Addr {
	sorted := append([]netip.Addr(nil), ifaces...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
	// Dedup so the union-find indexes are one-per-interface.
	dedup := sorted[:0]
	for i, ip := range sorted {
		if i == 0 || ip != sorted[i-1] {
			dedup = append(dedup, ip)
		}
	}
	sorted = dedup

	series := make([]*ifaceSeries, len(sorted))
	for i, ip := range sorted {
		series[i] = r.seriesFor(ip)
	}

	// Union-find over alias-positive pairs, by index into sorted.
	parent := make([]int32, len(sorted))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if rb < ra {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}

	for i := 0; i < len(sorted); i++ {
		si := series[i]
		if !si.velOK {
			continue
		}
		for j := i + 1; j < len(sorted); j++ {
			sj := series[j]
			if !sj.velOK || find(int32(i)) == find(int32(j)) {
				continue
			}
			va, vb := si.vel, sj.vel
			// Cheap velocity pre-filter before the expensive MBT.
			if math.Abs(va-vb) > 0.10*math.Max(va, vb)+5 {
				continue
			}
			switch r.Mode {
			case ModePrecision:
				if r.mbt(si, sj) {
					union(int32(i), int32(j))
				}
			case ModeCoverage:
				if r.mbt(si, sj) || math.Abs(va-vb) < 0.02*math.Max(va, vb)+1 {
					union(int32(i), int32(j))
				}
			}
		}
	}

	// Emit clusters in ascending order of their smallest member (the
	// root, since union keeps the lower index as root and indexes are
	// address-ordered).
	groups := make(map[int32][]netip.Addr, len(sorted))
	var roots []int32
	for i, ip := range sorted {
		root := find(int32(i))
		if _, ok := groups[root]; !ok {
			roots = append(roots, root)
		}
		groups[root] = append(groups[root], ip)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	out := make([][]netip.Addr, 0, len(roots))
	for _, root := range roots {
		out = append(out, groups[root])
	}
	return out
}
