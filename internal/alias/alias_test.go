package alias

import (
	"net/netip"
	"testing"

	"rpeer/internal/netsim"
)

var cw *netsim.World

func world(t testing.TB) *netsim.World {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
	}
	return cw
}

// multiIfaceRouter finds a router with >= n interfaces and a usable
// counter.
func multiIfaceRouter(t *testing.T, w *netsim.World, p *Prober, n int, skip int) *netsim.Router {
	t.Helper()
	for _, id := range w.RouterIDs {
		r := w.Router(id)
		if len(r.Ifaces) >= n && p.usableCounter(r) {
			if skip == 0 {
				return r
			}
			skip--
		}
	}
	t.Skip("no suitable router")
	return nil
}

func TestProbeSharedCounter(t *testing.T) {
	w := world(t)
	p := NewProber(w, 9)
	r := multiIfaceRouter(t, w, p, 2, 0)
	id1, ok1 := p.Probe(r.Ifaces[0], 0)
	id2, ok2 := p.Probe(r.Ifaces[1], 1)
	if !ok1 || !ok2 {
		t.Skip("probe loss")
	}
	// One second apart on a shared counter: the delta must be near the
	// router's rate.
	diff := int(id2) - int(id1)
	if diff < 0 {
		diff += 65536
	}
	if float64(diff) > r.IPIDRate+20 {
		t.Errorf("counter delta %d for rate %.0f", diff, r.IPIDRate)
	}
}

func TestProbeUnknownInterface(t *testing.T) {
	w := world(t)
	p := NewProber(w, 9)
	if _, ok := p.Probe(netip.MustParseAddr("203.0.113.7"), 0); ok {
		t.Error("unknown interface produced usable reply")
	}
}

func TestResolveGroupsSameRouter(t *testing.T) {
	w := world(t)
	p := NewProber(w, 9)
	r := multiIfaceRouter(t, w, p, 3, 0)
	res := NewResolver(p, ModePrecision)
	clusters := res.Resolve(r.Ifaces[:3])
	if len(clusters) != 1 {
		t.Fatalf("clusters = %d, want 1 (all interfaces share the router)", len(clusters))
	}
	if len(clusters[0]) != 3 {
		t.Fatalf("cluster size = %d, want 3", len(clusters[0]))
	}
}

func TestResolveSeparatesDifferentRouters(t *testing.T) {
	w := world(t)
	p := NewProber(w, 9)
	r1 := multiIfaceRouter(t, w, p, 2, 0)
	r2 := multiIfaceRouter(t, w, p, 2, 1)
	res := NewResolver(p, ModePrecision)
	in := []netip.Addr{r1.Ifaces[0], r1.Ifaces[1], r2.Ifaces[0], r2.Ifaces[1]}
	clusters := res.Resolve(in)

	// The two routers must never be merged in precision mode.
	idx := make(map[netip.Addr]int)
	for ci, c := range clusters {
		for _, ip := range c {
			idx[ip] = ci
		}
	}
	if idx[r1.Ifaces[0]] == idx[r2.Ifaces[0]] {
		t.Errorf("precision mode merged two distinct routers (rates %.1f vs %.1f)", r1.IPIDRate, r2.IPIDRate)
	}
}

func TestResolvePrecisionAccuracyAtScale(t *testing.T) {
	w := world(t)
	p := NewProber(w, 9)
	res := NewResolver(p, ModePrecision)

	// Take interfaces from many routers of one AS-like pool and check
	// pairwise precision: no cluster may span routers.
	var ifaces []netip.Addr
	truth := make(map[netip.Addr]netsim.RouterID)
	count := 0
	for _, id := range w.RouterIDs {
		r := w.Router(id)
		if len(r.Ifaces) < 2 {
			continue
		}
		for _, ip := range r.Ifaces[:2] {
			ifaces = append(ifaces, ip)
			truth[ip] = id
		}
		count++
		if count >= 40 {
			break
		}
	}
	clusters := res.Resolve(ifaces)
	falseMerges := 0
	resolvedPairs := 0
	for _, c := range clusters {
		for i := 0; i < len(c); i++ {
			for j := i + 1; j < len(c); j++ {
				resolvedPairs++
				if truth[c[i]] != truth[c[j]] {
					falseMerges++
				}
			}
		}
	}
	if resolvedPairs == 0 {
		t.Fatal("nothing resolved")
	}
	if rate := float64(falseMerges) / float64(resolvedPairs); rate > 0.02 {
		t.Errorf("false-alias rate = %.3f over %d pairs, want <= 0.02", rate, resolvedPairs)
	}
}

func TestCoverageModeResolvesMore(t *testing.T) {
	w := world(t)
	p := NewProber(w, 9)
	var ifaces []netip.Addr
	count := 0
	for _, id := range w.RouterIDs {
		r := w.Router(id)
		if len(r.Ifaces) >= 2 {
			ifaces = append(ifaces, r.Ifaces[0], r.Ifaces[1])
			count++
		}
		if count >= 30 {
			break
		}
	}
	nonSingleton := func(cs [][]netip.Addr) int {
		n := 0
		for _, c := range cs {
			if len(c) > 1 {
				n += len(c)
			}
		}
		return n
	}
	prec := nonSingleton(NewResolver(p, ModePrecision).Resolve(ifaces))
	cov := nonSingleton(NewResolver(p, ModeCoverage).Resolve(ifaces))
	if cov < prec {
		t.Errorf("coverage mode resolved %d ifaces vs precision %d; want >=", cov, prec)
	}
}

func TestResolveDeterministic(t *testing.T) {
	w := world(t)
	var ifaces []netip.Addr
	for _, id := range w.RouterIDs[:20] {
		ifaces = append(ifaces, w.Router(id).Ifaces...)
	}
	a := NewResolver(NewProber(w, 9), ModePrecision).Resolve(ifaces)
	b := NewResolver(NewProber(w, 9), ModePrecision).Resolve(ifaces)
	if len(a) != len(b) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("cluster %d member %d differs", i, j)
			}
		}
	}
}

func TestTransitivityProperty(t *testing.T) {
	// Union-find output must be a partition: every input interface in
	// exactly one cluster.
	w := world(t)
	var ifaces []netip.Addr
	for _, id := range w.RouterIDs[:30] {
		ifaces = append(ifaces, w.Router(id).Ifaces...)
	}
	clusters := NewResolver(NewProber(w, 9), ModeCoverage).Resolve(ifaces)
	seen := make(map[netip.Addr]int)
	for _, c := range clusters {
		for _, ip := range c {
			seen[ip]++
		}
	}
	if len(seen) != len(uniqueAddrs(ifaces)) {
		t.Fatalf("partition covers %d ifaces, want %d", len(seen), len(uniqueAddrs(ifaces)))
	}
	for ip, n := range seen {
		if n != 1 {
			t.Fatalf("interface %v appears in %d clusters", ip, n)
		}
	}
}

func uniqueAddrs(in []netip.Addr) map[netip.Addr]bool {
	m := make(map[netip.Addr]bool, len(in))
	for _, ip := range in {
		m[ip] = true
	}
	return m
}
