package resilience

import (
	"testing"

	"rpeer/internal/netsim"
)

var cw *netsim.World

func world(t testing.TB) *netsim.World {
	t.Helper()
	if cw == nil {
		w, err := netsim.Generate(netsim.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		cw = w
	}
	return cw
}

func TestAnalyzeFindsSharedPorts(t *testing.T) {
	w := world(t)
	a := Analyze(w)
	if len(a.SharedPorts) == 0 {
		t.Fatal("no shared reseller ports found")
	}
	for _, g := range a.SharedPorts {
		if len(g.Members) < 2 {
			t.Fatal("port group with fewer than 2 customers")
		}
		for _, m := range g.Members {
			if m.Kind != netsim.ConnReseller || m.Reseller != g.Reseller || m.IXP != g.IXP {
				t.Fatalf("member %+v does not belong to group (%v,%v)", m, g.Reseller, g.IXP)
			}
		}
		if g.MaxKm < 0 {
			t.Fatal("negative propagation distance")
		}
	}
}

func TestAnalyzeFindsMultiIXPRouters(t *testing.T) {
	w := world(t)
	a := Analyze(w)
	if len(a.MultiIXPRouters) == 0 {
		t.Fatal("no multi-IXP router failure domains")
	}
	for _, g := range a.MultiIXPRouters {
		if len(g.IXPs) < 2 {
			t.Fatal("router group spanning fewer than 2 IXPs")
		}
		seen := make(map[netsim.IXPID]bool)
		for _, m := range g.Members {
			if m.Router != g.Router {
				t.Fatal("member on wrong router")
			}
			seen[m.IXP] = true
		}
		if len(seen) != len(g.IXPs) {
			t.Fatal("IXP set inconsistent with memberships")
		}
	}
}

func TestSummaryShape(t *testing.T) {
	w := world(t)
	s := Analyze(w).Summarize()
	t.Logf("resilience: %+v", s)
	if s.SharedPorts == 0 || s.MultiIXPRouters == 0 {
		t.Fatal("empty summary")
	}
	if s.MeanCustomersPerPort < 2 {
		t.Errorf("mean customers per shared port = %.1f, want >= 2", s.MeanCustomersPerPort)
	}
	if s.MaxCustomersPerPort < int(s.MeanCustomersPerPort) {
		t.Error("max < mean")
	}
	// The paper's core resilience claim: outages do not stay local.
	if s.PortsReachingOver500Km == 0 {
		t.Error("no shared port reaches beyond 500 km; remote peering should propagate outages far")
	}
	if s.MaxIXPsPerRouter < 3 {
		t.Errorf("max IXPs per router = %d, want >= 3", s.MaxIXPsPerRouter)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	w := world(t)
	a := Analyze(w)
	b := Analyze(w)
	if len(a.SharedPorts) != len(b.SharedPorts) || len(a.MultiIXPRouters) != len(b.MultiIXPRouters) {
		t.Fatal("analysis not deterministic")
	}
	for i := range a.SharedPorts {
		if a.SharedPorts[i].Reseller != b.SharedPorts[i].Reseller ||
			a.SharedPorts[i].IXP != b.SharedPorts[i].IXP {
			t.Fatal("port group order not deterministic")
		}
	}
}
