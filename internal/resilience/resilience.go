// Package resilience quantifies the failure-propagation implications
// of remote peering discussed in the paper's Sections 2 and 7: reseller
// customers share fractions of one physical IXP port, and remote
// members reach many IXPs over a single router, so one port or router
// failure can take down interconnections for networks hundreds or
// thousands of kilometres away — neither traffic nor outages "stay
// local".
package resilience

import (
	"math"
	"sort"

	"rpeer/internal/geo"
	"rpeer/internal/netsim"
)

// PortGroup is one reseller's shared physical port at one IXP: the set
// of customer memberships multiplexed onto it.
type PortGroup struct {
	Reseller netsim.ASN
	IXP      netsim.IXPID
	// Members are the customer memberships sharing the port.
	Members []*netsim.Member
	// MaxKm is the maximum distance between the IXP and any affected
	// member router: how far the outage propagates.
	MaxKm float64
}

// RouterGroup is one multi-IXP router and the memberships that die
// with it.
type RouterGroup struct {
	Router  netsim.RouterID
	Owner   netsim.ASN
	IXPs    []netsim.IXPID
	Members []*netsim.Member
}

// Analysis is the resilience report for one world.
type Analysis struct {
	// SharedPorts lists reseller port groups with at least two
	// customers (the single-port failure domain of Section 2).
	SharedPorts []PortGroup
	// MultiIXPRouters lists routers whose failure severs memberships
	// at two or more exchanges.
	MultiIXPRouters []RouterGroup
}

// Analyze computes the failure domains of the world's ground truth.
// (This is an oracle-side analysis, like the paper's discussion: it
// reasons about what an operator with full knowledge would see; the
// inference pipeline is what approximates this knowledge in practice.)
func Analyze(w *netsim.World) *Analysis {
	a := &Analysis{}

	// Reseller shared ports: group reseller memberships per
	// (reseller, IXP).
	type pk struct {
		r  netsim.ASN
		ix netsim.IXPID
	}
	ports := make(map[pk][]*netsim.Member)
	for _, m := range w.Members {
		if m.Kind == netsim.ConnReseller && m.Reseller != 0 {
			k := pk{m.Reseller, m.IXP}
			ports[k] = append(ports[k], m)
		}
	}
	var keys []pk
	for k := range ports {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].r != keys[j].r {
			return keys[i].r < keys[j].r
		}
		return keys[i].ix < keys[j].ix
	})
	for _, k := range keys {
		ms := ports[k]
		if len(ms) < 2 {
			continue
		}
		g := PortGroup{Reseller: k.r, IXP: k.ix, Members: ms}
		ixLocs := w.FacilityLocs(k.ix)
		for _, m := range ms {
			r := w.Router(m.Router)
			if r == nil {
				continue
			}
			d := math.Inf(1)
			for _, loc := range ixLocs {
				if dd := geo.DistanceKm(r.Loc, loc); dd < d {
					d = dd
				}
			}
			if !math.IsInf(d, 1) && d > g.MaxKm {
				g.MaxKm = d
			}
		}
		a.SharedPorts = append(a.SharedPorts, g)
	}

	// Multi-IXP routers: memberships per router.
	byRouter := make(map[netsim.RouterID][]*netsim.Member)
	for _, m := range w.Members {
		byRouter[m.Router] = append(byRouter[m.Router], m)
	}
	for _, id := range w.RouterIDs {
		ms := byRouter[id]
		ixps := make(map[netsim.IXPID]bool)
		for _, m := range ms {
			ixps[m.IXP] = true
		}
		if len(ixps) < 2 {
			continue
		}
		r := w.Router(id)
		var ids []netsim.IXPID
		for ix := range ixps {
			ids = append(ids, ix)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		a.MultiIXPRouters = append(a.MultiIXPRouters, RouterGroup{
			Router: id, Owner: r.Owner, IXPs: ids, Members: ms,
		})
	}
	return a
}

// Summary condenses an analysis into the headline resilience numbers.
type Summary struct {
	// SharedPorts is the number of reseller ports with >= 2 customers.
	SharedPorts int
	// MaxCustomersPerPort is the largest single-port failure domain.
	MaxCustomersPerPort int
	// MeanCustomersPerPort is the mean failure-domain size.
	MeanCustomersPerPort float64
	// PortsReachingOver500Km counts ports whose failure affects a
	// member more than 500 km away.
	PortsReachingOver500Km int
	// MultiIXPRouters is the number of single-router multi-exchange
	// failure domains.
	MultiIXPRouters int
	// MaxIXPsPerRouter is the largest per-router exchange count.
	MaxIXPsPerRouter int
	// MembershipsBehindMultiIXPRouters counts memberships that share a
	// router with at least one other exchange.
	MembershipsBehindMultiIXPRouters int
}

// Summarize derives the Summary from an Analysis.
func (a *Analysis) Summarize() Summary {
	var s Summary
	s.SharedPorts = len(a.SharedPorts)
	tot := 0
	for _, g := range a.SharedPorts {
		tot += len(g.Members)
		if len(g.Members) > s.MaxCustomersPerPort {
			s.MaxCustomersPerPort = len(g.Members)
		}
		if g.MaxKm > 500 {
			s.PortsReachingOver500Km++
		}
	}
	if s.SharedPorts > 0 {
		s.MeanCustomersPerPort = float64(tot) / float64(s.SharedPorts)
	}
	s.MultiIXPRouters = len(a.MultiIXPRouters)
	for _, g := range a.MultiIXPRouters {
		if len(g.IXPs) > s.MaxIXPsPerRouter {
			s.MaxIXPsPerRouter = len(g.IXPs)
		}
		s.MembershipsBehindMultiIXPRouters += len(g.Members)
	}
	return s
}
