package worldfile

import (
	"encoding/json"
	"fmt"
	"math"
	"net/netip"
	"sort"

	"rpeer/internal/core"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/snapshot"
	"rpeer/internal/traix"
)

// This file maps each input bundle component to and from its section's
// column group. Encoding is deterministic: map-backed data is emitted
// in sorted natural-key order, slice-backed data in slice order (which
// generation fixes), so the same bundle always encodes byte-identical.
// Decoding validates every cross-column length and reference and
// reports failures through ErrInvalid — the checksum layer has already
// run, so anything caught here is a malformed writer, not bit rot.

// Variable-length list convention: a list-valued field of an entity
// table is stored as a parallel "<name>.n" u32 count column plus a flat
// "<name>" value column whose length is the sum of counts.

// ---------------------------------------------------------------------------
// Column-group plumbing

// colset accumulates a section's columns in encode order.
type colset struct{ cols []snapshot.Column }

func (c *colset) u32(name string, v []uint32) {
	c.cols = append(c.cols, snapshot.Column{Name: name, Kind: snapshot.KindU32, U32: v})
}
func (c *colset) u64(name string, v []uint64) {
	c.cols = append(c.cols, snapshot.Column{Name: name, Kind: snapshot.KindU64, U64: v})
}
func (c *colset) f64(name string, v []float64) {
	c.cols = append(c.cols, snapshot.Column{Name: name, Kind: snapshot.KindF64, F64: v})
}
func (c *colset) u8(name string, v []uint8) {
	c.cols = append(c.cols, snapshot.Column{Name: name, Kind: snapshot.KindU8, U8: v})
}
func (c *colset) addr(name string, v []netip.Addr) {
	c.cols = append(c.cols, snapshot.Column{Name: name, Kind: snapshot.KindAddr, Addr: v})
}
func (c *colset) str(name string, v []string) {
	c.cols = append(c.cols, snapshot.Column{Name: name, Kind: snapshot.KindString, Str: v})
}
func (c *colset) encode() []byte { return snapshot.EncodeColumns(c.cols) }

// secdec is the section decoder: name-indexed columns with sticky
// error accumulation, so decode code reads top-to-bottom and checks
// err once per logical block.
type secdec struct {
	cols map[string]*snapshot.Column
	err  error
}

func newSecdec(payload []byte) (*secdec, error) {
	cols, err := snapshot.DecodeColumns(payload)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	d := &secdec{cols: make(map[string]*snapshot.Column, len(cols))}
	for i := range cols {
		d.cols[cols[i].Name] = &cols[i]
	}
	return d, nil
}

func (d *secdec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
	}
}

func (d *secdec) col(name string, kind snapshot.Kind) *snapshot.Column {
	c := d.cols[name]
	if c == nil {
		d.fail("missing column %q", name)
		return nil
	}
	if c.Kind != kind {
		d.fail("column %q has kind %d, want %d", name, c.Kind, kind)
		return nil
	}
	return c
}

func (d *secdec) u32(name string) []uint32 {
	if c := d.col(name, snapshot.KindU32); c != nil {
		return c.U32
	}
	return nil
}
func (d *secdec) u64(name string) []uint64 {
	if c := d.col(name, snapshot.KindU64); c != nil {
		return c.U64
	}
	return nil
}
func (d *secdec) f64(name string) []float64 {
	if c := d.col(name, snapshot.KindF64); c != nil {
		return c.F64
	}
	return nil
}
func (d *secdec) u8(name string) []uint8 {
	if c := d.col(name, snapshot.KindU8); c != nil {
		return c.U8
	}
	return nil
}
func (d *secdec) addrs(name string) []netip.Addr {
	if c := d.col(name, snapshot.KindAddr); c != nil {
		return c.Addr
	}
	return nil
}
func (d *secdec) strs(name string) []string {
	if c := d.col(name, snapshot.KindString); c != nil {
		return c.Str
	}
	return nil
}

// rows checks that the named columns are parallel and returns the
// shared row count.
func (d *secdec) rows(names ...string) int {
	if d.err != nil {
		return 0
	}
	n := -1
	for _, name := range names {
		c := d.cols[name]
		if c == nil {
			d.fail("missing column %q", name)
			return 0
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			d.fail("column %q has %d rows, %q has %d", name, c.Len(), names[0], n)
			return 0
		}
	}
	return n
}

// flatLen checks a flat list column's length against the sum of its
// count column.
func (d *secdec) flatLen(counts []uint32, flat string) {
	if d.err != nil {
		return
	}
	sum := 0
	for _, n := range counts {
		sum += int(n)
	}
	if c := d.cols[flat]; c == nil {
		d.fail("missing column %q", flat)
	} else if c.Len() != sum {
		d.fail("column %q has %d values, counts sum to %d", flat, c.Len(), sum)
	}
}

// packAddrs encodes addresses as u8-length-prefixed raw bytes inside a
// KindU8 column — length zero meaning the zero netip.Addr, which
// KindAddr cannot represent (non-responding traceroute hops, VPs whose
// management address assignment failed).
func packAddrs(addrs []netip.Addr) []uint8 {
	b := make([]uint8, 0, len(addrs)*5)
	for _, a := range addrs {
		raw := a.AsSlice()
		b = append(b, uint8(len(raw)))
		b = append(b, raw...)
	}
	return b
}

func unpackAddrs(b []uint8, n int) ([]netip.Addr, error) {
	out := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: packed address column exhausted at row %d of %d", ErrInvalid, i, n)
		}
		l := int(b[0])
		b = b[1:]
		if l > len(b) {
			return nil, fmt.Errorf("%w: packed address row %d claims %d bytes, %d remain", ErrInvalid, i, l, len(b))
		}
		if l == 0 {
			out = append(out, netip.Addr{})
			continue
		}
		a, ok := netip.AddrFromSlice(b[:l])
		if !ok {
			return nil, fmt.Errorf("%w: packed address row %d has bad length %d", ErrInvalid, i, l)
		}
		out = append(out, a)
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in packed address column", ErrInvalid, len(b))
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// config

func encodeConfig(cfg netsim.Config) ([]byte, error) {
	b, err := json.Marshal(cfg)
	if err != nil {
		return nil, fmt.Errorf("worldfile: encode config: %w", err)
	}
	return b, nil
}

func decodeConfig(payload []byte) (netsim.Config, error) {
	var cfg netsim.Config
	if err := json.Unmarshal(payload, &cfg); err != nil {
		return netsim.Config{}, fmt.Errorf("%w: config: %v", ErrInvalid, err)
	}
	return cfg, nil
}

// ---------------------------------------------------------------------------
// world

// ixp.flags / as.flags / vp.flags bits.
const (
	ixpFlagResellers = 1 << 0
	ixpFlagLG        = 1 << 1
	ixpFlagWideArea  = 1 << 2

	asFlagReseller = 1 << 0

	vpFlagRoundsUp = 1 << 0
	vpFlagMgmtLAN  = 1 << 1
	vpFlagDead     = 1 << 2

	aggFlagBestRoundsUp = 1 << 0
	aggFlagAnyRounding  = 1 << 1
)

// noVP is the agg.vp / rs sentinel for "no vantage point".
const noVP = ^uint32(0)

func encodeWorld(w *netsim.World) ([]byte, error) {
	p := w.Parts()
	var c colset

	// Cities.
	n := len(p.Cities)
	cityName := make([]string, n)
	cityCountry := make([]string, n)
	cityLat := make([]float64, n)
	cityLon := make([]float64, n)
	cityWeight := make([]float64, n)
	for i, ct := range p.Cities {
		cityName[i], cityCountry[i] = ct.Name, ct.Country
		cityLat[i], cityLon[i], cityWeight[i] = ct.Loc.Lat, ct.Loc.Lon, ct.Weight
	}
	c.str("city.name", cityName)
	c.str("city.country", cityCountry)
	c.f64("city.lat", cityLat)
	c.f64("city.lon", cityLon)
	c.f64("city.weight", cityWeight)

	// Facilities.
	n = len(p.Facilities)
	facID := make([]uint32, n)
	facName := make([]string, n)
	facCity := make([]string, n)
	facCountry := make([]string, n)
	facLat := make([]float64, n)
	facLon := make([]float64, n)
	for i, f := range p.Facilities {
		facID[i] = uint32(f.ID)
		facName[i], facCity[i], facCountry[i] = f.Name, f.City, f.Country
		facLat[i], facLon[i] = f.Loc.Lat, f.Loc.Lon
	}
	c.u32("fac.id", facID)
	c.str("fac.name", facName)
	c.str("fac.city", facCity)
	c.str("fac.country", facCountry)
	c.f64("fac.lat", facLat)
	c.f64("fac.lon", facLon)

	// IXPs.
	n = len(p.IXPs)
	ixpID := make([]uint32, n)
	ixpName := make([]string, n)
	ixpLAN := make([]string, n)
	ixpMgmt := make([]string, n)
	ixpRS := make([]netip.Addr, n)
	ixpMinPort := make([]uint32, n)
	ixpFed := make([]uint32, n)
	ixpAtlas := make([]uint32, n)
	ixpFlags := make([]uint8, n)
	ixpFacN := make([]uint32, n)
	var ixpFac []uint32
	ixpPortN := make([]uint32, n)
	var ixpPort []uint32
	for i, ix := range p.IXPs {
		ixpID[i] = uint32(ix.ID)
		ixpName[i] = ix.Name
		ixpLAN[i] = ix.PeeringLAN.String()
		ixpMgmt[i] = ix.MgmtLAN.String()
		ixpRS[i] = ix.RouteServer
		ixpMinPort[i] = uint32(ix.MinPortMbps)
		ixpFed[i] = uint32(ix.FederationID)
		ixpAtlas[i] = uint32(ix.AtlasProbes)
		var fl uint8
		if ix.AllowsResellers {
			fl |= ixpFlagResellers
		}
		if ix.HasLG {
			fl |= ixpFlagLG
		}
		if ix.WideArea {
			fl |= ixpFlagWideArea
		}
		ixpFlags[i] = fl
		ixpFacN[i] = uint32(len(ix.Facilities))
		for _, f := range ix.Facilities {
			ixpFac = append(ixpFac, uint32(f))
		}
		ixpPortN[i] = uint32(len(ix.PortOptionsMbps))
		for _, mbps := range ix.PortOptionsMbps {
			ixpPort = append(ixpPort, uint32(mbps))
		}
	}
	c.u32("ixp.id", ixpID)
	c.str("ixp.name", ixpName)
	c.str("ixp.lan", ixpLAN)
	c.str("ixp.mgmt", ixpMgmt)
	c.addr("ixp.rs", ixpRS)
	c.u32("ixp.minport", ixpMinPort)
	c.u32("ixp.fed", ixpFed)
	c.u32("ixp.atlas", ixpAtlas)
	c.u8("ixp.flags", ixpFlags)
	c.u32("ixp.facs.n", ixpFacN)
	c.u32("ixp.facs", ixpFac)
	c.u32("ixp.portopts.n", ixpPortN)
	c.u32("ixp.portopts", ixpPort)

	// ASes (sorted ASN order via Parts).
	n = len(p.ASes)
	asASN := make([]uint32, n)
	asName := make([]string, n)
	asCountry := make([]string, n)
	asHomeCity := make([]string, n)
	asHomeLat := make([]float64, n)
	asHomeLon := make([]float64, n)
	asTraffic := make([]float64, n)
	asTier := make([]uint8, n)
	asFlags := make([]uint8, n)
	asFacN := make([]uint32, n)
	var asFac []uint32
	asProvN := make([]uint32, n)
	var asProv []uint32
	asPopN := make([]uint32, n)
	var asPop []uint32
	for i, as := range p.ASes {
		asASN[i] = uint32(as.ASN)
		asName[i], asCountry[i], asHomeCity[i] = as.Name, as.Country, as.HomeCity
		asHomeLat[i], asHomeLon[i] = as.HomeLoc.Lat, as.HomeLoc.Lon
		asTraffic[i] = as.TrafficMbps
		asTier[i] = uint8(as.Tier)
		if as.IsReseller {
			asFlags[i] |= asFlagReseller
		}
		asFacN[i] = uint32(len(as.Facilities))
		for _, f := range as.Facilities {
			asFac = append(asFac, uint32(f))
		}
		asProvN[i] = uint32(len(as.Providers))
		for _, pr := range as.Providers {
			asProv = append(asProv, uint32(pr))
		}
		asPopN[i] = uint32(len(as.ResellerPOPs))
		for _, f := range as.ResellerPOPs {
			asPop = append(asPop, uint32(f))
		}
	}
	c.u32("as.asn", asASN)
	c.str("as.name", asName)
	c.str("as.country", asCountry)
	c.str("as.homecity", asHomeCity)
	c.f64("as.homelat", asHomeLat)
	c.f64("as.homelon", asHomeLon)
	c.f64("as.traffic", asTraffic)
	c.u8("as.tier", asTier)
	c.u8("as.flags", asFlags)
	c.u32("as.facs.n", asFacN)
	c.u32("as.facs", asFac)
	c.u32("as.providers.n", asProvN)
	c.u32("as.providers", asProv)
	c.u32("as.pops.n", asPopN)
	c.u32("as.pops", asPop)

	// Routers (sorted ID order via Parts).
	n = len(p.Routers)
	rtrID := make([]uint32, n)
	rtrOwner := make([]uint32, n)
	rtrFac := make([]uint32, n)
	rtrLat := make([]float64, n)
	rtrLon := make([]float64, n)
	rtrIPIDInit := make([]uint32, n)
	rtrIPIDRate := make([]float64, n)
	rtrIfaceN := make([]uint32, n)
	var rtrIface []netip.Addr
	rtrIXPN := make([]uint32, n)
	var rtrIXP []uint32
	for i, r := range p.Routers {
		rtrID[i] = uint32(r.ID)
		rtrOwner[i] = uint32(r.Owner)
		rtrFac[i] = uint32(int32(r.Facility))
		rtrLat[i], rtrLon[i] = r.Loc.Lat, r.Loc.Lon
		rtrIPIDInit[i] = r.IPIDInit
		rtrIPIDRate[i] = r.IPIDRate
		rtrIfaceN[i] = uint32(len(r.Ifaces))
		rtrIface = append(rtrIface, r.Ifaces...)
		rtrIXPN[i] = uint32(len(r.IXPs))
		for _, x := range r.IXPs {
			rtrIXP = append(rtrIXP, uint32(x))
		}
	}
	c.u32("rtr.id", rtrID)
	c.u32("rtr.owner", rtrOwner)
	c.u32("rtr.fac", rtrFac)
	c.f64("rtr.lat", rtrLat)
	c.f64("rtr.lon", rtrLon)
	c.u32("rtr.ipidinit", rtrIPIDInit)
	c.f64("rtr.ipidrate", rtrIPIDRate)
	c.u32("rtr.ifaces.n", rtrIfaceN)
	c.addr("rtr.ifaces", rtrIface)
	c.u32("rtr.ixps.n", rtrIXPN)
	c.u32("rtr.ixps", rtrIXP)

	// Members.
	n = len(p.Members)
	memASN := make([]uint32, n)
	memIXP := make([]uint32, n)
	memIface := make([]netip.Addr, n)
	memRouter := make([]uint32, n)
	memPort := make([]uint32, n)
	memKind := make([]uint8, n)
	memReseller := make([]uint32, n)
	memViaFed := make([]uint32, n)
	for i, m := range p.Members {
		memASN[i] = uint32(m.ASN)
		memIXP[i] = uint32(m.IXP)
		memIface[i] = m.Iface
		memRouter[i] = uint32(m.Router)
		memPort[i] = uint32(m.PortMbps)
		memKind[i] = uint8(m.Kind)
		memReseller[i] = uint32(m.Reseller)
		memViaFed[i] = uint32(int32(m.ViaFed))
	}
	c.u32("mem.asn", memASN)
	c.u32("mem.ixp", memIXP)
	c.addr("mem.iface", memIface)
	c.u32("mem.router", memRouter)
	c.u32("mem.port", memPort)
	c.u8("mem.kind", memKind)
	c.u32("mem.reseller", memReseller)
	c.u32("mem.viafed", memViaFed)

	// Private links.
	n = len(p.Private)
	privA := make([]uint32, n)
	privB := make([]uint32, n)
	privAIface := make([]netip.Addr, n)
	privBIface := make([]netip.Addr, n)
	privFac := make([]uint32, n)
	for i, pl := range p.Private {
		privA[i] = uint32(pl.A)
		privB[i] = uint32(pl.B)
		privAIface[i] = pl.AIface
		privBIface[i] = pl.BIface
		privFac[i] = uint32(int32(pl.Facility))
	}
	c.u32("priv.a", privA)
	c.u32("priv.b", privB)
	c.addr("priv.aiface", privAIface)
	c.addr("priv.biface", privBIface)
	c.u32("priv.fac", privFac)

	// Resellers.
	resellers := make([]uint32, len(p.Resellers))
	for i, asn := range p.Resellers {
		resellers[i] = uint32(asn)
	}
	c.u32("reseller.asn", resellers)

	// Infrastructure prefixes, in sorted-ASN order (Parts order).
	var pfxASN []uint32
	var pfxStr []string
	for _, as := range p.ASes {
		for _, pfx := range p.Prefixes[as.ASN] {
			pfxASN = append(pfxASN, uint32(as.ASN))
			pfxStr = append(pfxStr, pfx.String())
		}
	}
	c.u32("pfx.asn", pfxASN)
	c.str("pfx.prefix", pfxStr)

	return c.encode(), nil
}

func decodeWorld(cfg netsim.Config, payload []byte) (*netsim.World, error) {
	d, err := newSecdec(payload)
	if err != nil {
		return nil, err
	}
	parts := netsim.WorldParts{Cfg: cfg, Prefixes: make(map[netsim.ASN][]netip.Prefix)}

	n := d.rows("city.name", "city.country", "city.lat", "city.lon", "city.weight")
	cityName, cityCountry := d.strs("city.name"), d.strs("city.country")
	cityLat, cityLon, cityWeight := d.f64("city.lat"), d.f64("city.lon"), d.f64("city.weight")
	if d.err == nil {
		parts.Cities = make([]netsim.City, n)
		for i := range parts.Cities {
			parts.Cities[i] = netsim.City{
				Name: cityName[i], Country: cityCountry[i],
				Loc:    geo.Point{Lat: cityLat[i], Lon: cityLon[i]},
				Weight: cityWeight[i],
			}
		}
	}

	n = d.rows("fac.id", "fac.name", "fac.city", "fac.country", "fac.lat", "fac.lon")
	facID, facName, facCity := d.u32("fac.id"), d.strs("fac.name"), d.strs("fac.city")
	facCountry, facLat, facLon := d.strs("fac.country"), d.f64("fac.lat"), d.f64("fac.lon")
	if d.err == nil {
		parts.Facilities = make([]*netsim.Facility, n)
		for i := range parts.Facilities {
			parts.Facilities[i] = &netsim.Facility{
				ID: netsim.FacilityID(int32(facID[i])), Name: facName[i],
				City: facCity[i], Country: facCountry[i],
				Loc: geo.Point{Lat: facLat[i], Lon: facLon[i]},
			}
		}
	}

	n = d.rows("ixp.id", "ixp.name", "ixp.lan", "ixp.mgmt", "ixp.rs", "ixp.minport",
		"ixp.fed", "ixp.atlas", "ixp.flags", "ixp.facs.n", "ixp.portopts.n")
	d.flatLen(d.u32("ixp.facs.n"), "ixp.facs")
	d.flatLen(d.u32("ixp.portopts.n"), "ixp.portopts")
	if d.err == nil {
		ixpID, ixpName := d.u32("ixp.id"), d.strs("ixp.name")
		ixpLAN, ixpMgmt, ixpRS := d.strs("ixp.lan"), d.strs("ixp.mgmt"), d.addrs("ixp.rs")
		ixpMinPort, ixpFed, ixpAtlas := d.u32("ixp.minport"), d.u32("ixp.fed"), d.u32("ixp.atlas")
		ixpFlags := d.u8("ixp.flags")
		facN, fac := d.u32("ixp.facs.n"), d.u32("ixp.facs")
		portN, port := d.u32("ixp.portopts.n"), d.u32("ixp.portopts")
		facOff, portOff := 0, 0
		parts.IXPs = make([]*netsim.IXP, n)
		for i := range parts.IXPs {
			lan, err := netip.ParsePrefix(ixpLAN[i])
			if err != nil {
				return nil, fmt.Errorf("%w: IXP %q peering LAN %q: %v", ErrInvalid, ixpName[i], ixpLAN[i], err)
			}
			mgmt, err := netip.ParsePrefix(ixpMgmt[i])
			if err != nil {
				return nil, fmt.Errorf("%w: IXP %q mgmt LAN %q: %v", ErrInvalid, ixpName[i], ixpMgmt[i], err)
			}
			ix := &netsim.IXP{
				ID: netsim.IXPID(int32(ixpID[i])), Name: ixpName[i],
				PeeringLAN: lan, MgmtLAN: mgmt, RouteServer: ixpRS[i],
				MinPortMbps:     int(ixpMinPort[i]),
				FederationID:    int(ixpFed[i]),
				AtlasProbes:     int(ixpAtlas[i]),
				AllowsResellers: ixpFlags[i]&ixpFlagResellers != 0,
				HasLG:           ixpFlags[i]&ixpFlagLG != 0,
				WideArea:        ixpFlags[i]&ixpFlagWideArea != 0,
			}
			for j := 0; j < int(facN[i]); j++ {
				ix.Facilities = append(ix.Facilities, netsim.FacilityID(int32(fac[facOff+j])))
			}
			facOff += int(facN[i])
			for j := 0; j < int(portN[i]); j++ {
				ix.PortOptionsMbps = append(ix.PortOptionsMbps, int(port[portOff+j]))
			}
			portOff += int(portN[i])
			parts.IXPs[i] = ix
		}
	}

	n = d.rows("as.asn", "as.name", "as.country", "as.homecity", "as.homelat",
		"as.homelon", "as.traffic", "as.tier", "as.flags", "as.facs.n",
		"as.providers.n", "as.pops.n")
	d.flatLen(d.u32("as.facs.n"), "as.facs")
	d.flatLen(d.u32("as.providers.n"), "as.providers")
	d.flatLen(d.u32("as.pops.n"), "as.pops")
	if d.err == nil {
		asASN, asName, asCountry := d.u32("as.asn"), d.strs("as.name"), d.strs("as.country")
		asHomeCity, asHomeLat, asHomeLon := d.strs("as.homecity"), d.f64("as.homelat"), d.f64("as.homelon")
		asTraffic, asTier, asFlags := d.f64("as.traffic"), d.u8("as.tier"), d.u8("as.flags")
		facN, fac := d.u32("as.facs.n"), d.u32("as.facs")
		provN, prov := d.u32("as.providers.n"), d.u32("as.providers")
		popN, pop := d.u32("as.pops.n"), d.u32("as.pops")
		facOff, provOff, popOff := 0, 0, 0
		parts.ASes = make([]*netsim.AS, n)
		for i := range parts.ASes {
			as := &netsim.AS{
				ASN: netsim.ASN(asASN[i]), Name: asName[i], Country: asCountry[i],
				HomeCity:    asHomeCity[i],
				HomeLoc:     geo.Point{Lat: asHomeLat[i], Lon: asHomeLon[i]},
				TrafficMbps: asTraffic[i],
				Tier:        int(asTier[i]),
				IsReseller:  asFlags[i]&asFlagReseller != 0,
			}
			for j := 0; j < int(facN[i]); j++ {
				as.Facilities = append(as.Facilities, netsim.FacilityID(int32(fac[facOff+j])))
			}
			facOff += int(facN[i])
			for j := 0; j < int(provN[i]); j++ {
				as.Providers = append(as.Providers, netsim.ASN(prov[provOff+j]))
			}
			provOff += int(provN[i])
			for j := 0; j < int(popN[i]); j++ {
				as.ResellerPOPs = append(as.ResellerPOPs, netsim.FacilityID(int32(pop[popOff+j])))
			}
			popOff += int(popN[i])
			parts.ASes[i] = as
		}
	}

	n = d.rows("rtr.id", "rtr.owner", "rtr.fac", "rtr.lat", "rtr.lon",
		"rtr.ipidinit", "rtr.ipidrate", "rtr.ifaces.n", "rtr.ixps.n")
	d.flatLen(d.u32("rtr.ifaces.n"), "rtr.ifaces")
	d.flatLen(d.u32("rtr.ixps.n"), "rtr.ixps")
	if d.err == nil {
		rtrID, rtrOwner, rtrFac := d.u32("rtr.id"), d.u32("rtr.owner"), d.u32("rtr.fac")
		rtrLat, rtrLon := d.f64("rtr.lat"), d.f64("rtr.lon")
		rtrInit, rtrRate := d.u32("rtr.ipidinit"), d.f64("rtr.ipidrate")
		ifaceN, iface := d.u32("rtr.ifaces.n"), d.addrs("rtr.ifaces")
		ixpN, ixp := d.u32("rtr.ixps.n"), d.u32("rtr.ixps")
		ifaceOff, ixpOff := 0, 0
		parts.Routers = make([]*netsim.Router, n)
		for i := range parts.Routers {
			r := &netsim.Router{
				ID: netsim.RouterID(int32(rtrID[i])), Owner: netsim.ASN(rtrOwner[i]),
				Facility: netsim.FacilityID(int32(rtrFac[i])),
				Loc:      geo.Point{Lat: rtrLat[i], Lon: rtrLon[i]},
				IPIDInit: rtrInit[i], IPIDRate: rtrRate[i],
			}
			r.Ifaces = append(r.Ifaces, iface[ifaceOff:ifaceOff+int(ifaceN[i])]...)
			ifaceOff += int(ifaceN[i])
			for j := 0; j < int(ixpN[i]); j++ {
				r.IXPs = append(r.IXPs, netsim.IXPID(int32(ixp[ixpOff+j])))
			}
			ixpOff += int(ixpN[i])
			parts.Routers[i] = r
		}
	}

	n = d.rows("mem.asn", "mem.ixp", "mem.iface", "mem.router", "mem.port",
		"mem.kind", "mem.reseller", "mem.viafed")
	if d.err == nil {
		memASN, memIXP, memIface := d.u32("mem.asn"), d.u32("mem.ixp"), d.addrs("mem.iface")
		memRouter, memPort, memKind := d.u32("mem.router"), d.u32("mem.port"), d.u8("mem.kind")
		memReseller, memViaFed := d.u32("mem.reseller"), d.u32("mem.viafed")
		parts.Members = make([]*netsim.Member, n)
		for i := range parts.Members {
			parts.Members[i] = &netsim.Member{
				ASN: netsim.ASN(memASN[i]), IXP: netsim.IXPID(int32(memIXP[i])),
				Iface: memIface[i], Router: netsim.RouterID(int32(memRouter[i])),
				PortMbps: int(memPort[i]), Kind: netsim.ConnKind(memKind[i]),
				Reseller: netsim.ASN(memReseller[i]),
				ViaFed:   netsim.IXPID(int32(memViaFed[i])),
			}
		}
	}

	n = d.rows("priv.a", "priv.b", "priv.aiface", "priv.biface", "priv.fac")
	if d.err == nil {
		privA, privB := d.u32("priv.a"), d.u32("priv.b")
		privAI, privBI, privFac := d.addrs("priv.aiface"), d.addrs("priv.biface"), d.u32("priv.fac")
		parts.Private = make([]netsim.PrivateLink, n)
		for i := range parts.Private {
			parts.Private[i] = netsim.PrivateLink{
				A: netsim.RouterID(int32(privA[i])), B: netsim.RouterID(int32(privB[i])),
				AIface: privAI[i], BIface: privBI[i],
				Facility: netsim.FacilityID(int32(privFac[i])),
			}
		}
	}

	for _, asn := range d.u32("reseller.asn") {
		parts.Resellers = append(parts.Resellers, netsim.ASN(asn))
	}

	n = d.rows("pfx.asn", "pfx.prefix")
	if d.err == nil {
		pfxASN, pfxStr := d.u32("pfx.asn"), d.strs("pfx.prefix")
		for i := 0; i < n; i++ {
			pfx, err := netip.ParsePrefix(pfxStr[i])
			if err != nil {
				return nil, fmt.Errorf("%w: AS%d prefix %q: %v", ErrInvalid, pfxASN[i], pfxStr[i], err)
			}
			asn := netsim.ASN(pfxASN[i])
			parts.Prefixes[asn] = append(parts.Prefixes[asn], pfx)
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	w, err := netsim.FromParts(parts)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return w, nil
}

// ---------------------------------------------------------------------------
// dataset

func encodeDataset(ds *registry.Dataset) []byte {
	// Shared IXP name table: every name any row references, sorted.
	nameSet := make(map[string]struct{})
	for _, name := range ds.PrefixIXP {
		nameSet[name] = struct{}{}
	}
	for _, name := range ds.IfaceIXP {
		nameSet[name] = struct{}{}
	}
	for k := range ds.Ports {
		nameSet[k.IXP] = struct{}{}
	}
	for name := range ds.MinPort {
		nameSet[name] = struct{}{}
	}
	names := make([]string, 0, len(nameSet))
	for name := range nameSet {
		names = append(names, name)
	}
	sort.Strings(names)
	nameIdx := make(map[string]uint32, len(names))
	for i, name := range names {
		nameIdx[name] = uint32(i)
	}

	var c colset
	c.str("ds.name", names)

	// Prefix plane, sorted by prefix string.
	pfxs := make([]netip.Prefix, 0, len(ds.PrefixIXP))
	for p := range ds.PrefixIXP {
		pfxs = append(pfxs, p)
	}
	sort.Slice(pfxs, func(i, j int) bool { return pfxs[i].String() < pfxs[j].String() })
	pfxStr := make([]string, len(pfxs))
	pfxIXP := make([]uint32, len(pfxs))
	for i, p := range pfxs {
		pfxStr[i] = p.String()
		pfxIXP[i] = nameIdx[ds.PrefixIXP[p]]
	}
	c.str("ds.pfx.prefix", pfxStr)
	c.u32("ds.pfx.ixp", pfxIXP)

	// Interface records, sorted by address.
	addrs := make([]netip.Addr, 0, len(ds.IfaceIXP))
	for a := range ds.IfaceIXP {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })
	ifASN := make([]uint32, len(addrs))
	ifIXP := make([]uint32, len(addrs))
	for i, a := range addrs {
		ifASN[i] = uint32(ds.IfaceASN[a])
		ifIXP[i] = nameIdx[ds.IfaceIXP[a]]
	}
	c.addr("ds.if.addr", addrs)
	c.u32("ds.if.asn", ifASN)
	c.u32("ds.if.ixp", ifIXP)

	// Port records, sorted by (IXP name, ASN).
	portKeys := make([]registry.PortKey, 0, len(ds.Ports))
	for k := range ds.Ports {
		portKeys = append(portKeys, k)
	}
	sort.Slice(portKeys, func(i, j int) bool {
		if portKeys[i].IXP != portKeys[j].IXP {
			return portKeys[i].IXP < portKeys[j].IXP
		}
		return portKeys[i].ASN < portKeys[j].ASN
	})
	portIXP := make([]uint32, len(portKeys))
	portASN := make([]uint32, len(portKeys))
	portMbps := make([]uint64, len(portKeys))
	for i, k := range portKeys {
		portIXP[i] = nameIdx[k.IXP]
		portASN[i] = uint32(k.ASN)
		portMbps[i] = uint64(ds.Ports[k])
	}
	c.u32("ds.port.ixp", portIXP)
	c.u32("ds.port.asn", portASN)
	c.u64("ds.port.mbps", portMbps)

	// Advertised minimum ports, sorted by IXP name.
	minNames := make([]string, 0, len(ds.MinPort))
	for name := range ds.MinPort {
		minNames = append(minNames, name)
	}
	sort.Strings(minNames)
	minIXP := make([]uint32, len(minNames))
	minMbps := make([]uint64, len(minNames))
	for i, name := range minNames {
		minIXP[i] = nameIdx[name]
		minMbps[i] = uint64(ds.MinPort[name])
	}
	c.u32("ds.minport.ixp", minIXP)
	c.u64("ds.minport.mbps", minMbps)

	// Per-source stats, in stored (preference) order.
	stSrc := make([]uint8, len(ds.Stats))
	stPfx := make([]uint32, len(ds.Stats))
	stUPfx := make([]uint32, len(ds.Stats))
	stCPfx := make([]uint32, len(ds.Stats))
	stIf := make([]uint32, len(ds.Stats))
	stUIf := make([]uint32, len(ds.Stats))
	stCIf := make([]uint32, len(ds.Stats))
	for i, st := range ds.Stats {
		stSrc[i] = uint8(st.Source)
		stPfx[i] = uint32(st.Prefixes)
		stUPfx[i] = uint32(st.UniquePrefixes)
		stCPfx[i] = uint32(st.ConflictPrefixes)
		stIf[i] = uint32(st.Interfaces)
		stUIf[i] = uint32(st.UniqueInterfaces)
		stCIf[i] = uint32(st.ConflictInterfaces)
	}
	c.u8("ds.stats.src", stSrc)
	c.u32("ds.stats.pfx", stPfx)
	c.u32("ds.stats.upfx", stUPfx)
	c.u32("ds.stats.cpfx", stCPfx)
	c.u32("ds.stats.if", stIf)
	c.u32("ds.stats.uif", stUIf)
	c.u32("ds.stats.cif", stCIf)

	return c.encode()
}

func decodeDataset(payload []byte) (*registry.Dataset, error) {
	d, err := newSecdec(payload)
	if err != nil {
		return nil, err
	}
	names := d.strs("ds.name")
	name := func(idx uint32, what string, row int) (string, bool) {
		if int(idx) >= len(names) {
			d.fail("%s row %d references IXP name %d of %d", what, row, idx, len(names))
			return "", false
		}
		return names[idx], true
	}
	ds := &registry.Dataset{
		PrefixIXP: make(map[netip.Prefix]string),
		IfaceASN:  make(map[netip.Addr]netsim.ASN),
		IfaceIXP:  make(map[netip.Addr]string),
		Ports:     make(map[registry.PortKey]int),
		MinPort:   make(map[string]int),
	}

	n := d.rows("ds.pfx.prefix", "ds.pfx.ixp")
	if d.err == nil {
		pfxStr, pfxIXP := d.strs("ds.pfx.prefix"), d.u32("ds.pfx.ixp")
		for i := 0; i < n; i++ {
			p, err := netip.ParsePrefix(pfxStr[i])
			if err != nil {
				return nil, fmt.Errorf("%w: dataset prefix %q: %v", ErrInvalid, pfxStr[i], err)
			}
			nm, ok := name(pfxIXP[i], "prefix", i)
			if !ok {
				break
			}
			ds.PrefixIXP[p] = nm
		}
	}

	n = d.rows("ds.if.addr", "ds.if.asn", "ds.if.ixp")
	if d.err == nil {
		addrs, asns, ixps := d.addrs("ds.if.addr"), d.u32("ds.if.asn"), d.u32("ds.if.ixp")
		for i := 0; i < n; i++ {
			nm, ok := name(ixps[i], "interface", i)
			if !ok {
				break
			}
			ds.IfaceASN[addrs[i]] = netsim.ASN(asns[i])
			ds.IfaceIXP[addrs[i]] = nm
		}
	}

	n = d.rows("ds.port.ixp", "ds.port.asn", "ds.port.mbps")
	if d.err == nil {
		ixps, asns, mbps := d.u32("ds.port.ixp"), d.u32("ds.port.asn"), d.u64("ds.port.mbps")
		for i := 0; i < n; i++ {
			nm, ok := name(ixps[i], "port", i)
			if !ok {
				break
			}
			ds.Ports[registry.PortKey{IXP: nm, ASN: netsim.ASN(asns[i])}] = int(mbps[i])
		}
	}

	n = d.rows("ds.minport.ixp", "ds.minport.mbps")
	if d.err == nil {
		ixps, mbps := d.u32("ds.minport.ixp"), d.u64("ds.minport.mbps")
		for i := 0; i < n; i++ {
			nm, ok := name(ixps[i], "min-port", i)
			if !ok {
				break
			}
			ds.MinPort[nm] = int(mbps[i])
		}
	}

	n = d.rows("ds.stats.src", "ds.stats.pfx", "ds.stats.upfx", "ds.stats.cpfx",
		"ds.stats.if", "ds.stats.uif", "ds.stats.cif")
	if d.err == nil {
		src := d.u8("ds.stats.src")
		pfx, upfx, cpfx := d.u32("ds.stats.pfx"), d.u32("ds.stats.upfx"), d.u32("ds.stats.cpfx")
		ifs, uif, cif := d.u32("ds.stats.if"), d.u32("ds.stats.uif"), d.u32("ds.stats.cif")
		ds.Stats = make([]registry.SourceStats, n)
		for i := 0; i < n; i++ {
			ds.Stats[i] = registry.SourceStats{
				Source:   registry.Source(src[i]),
				Prefixes: int(pfx[i]), UniquePrefixes: int(upfx[i]), ConflictPrefixes: int(cpfx[i]),
				Interfaces: int(ifs[i]), UniqueInterfaces: int(uif[i]), ConflictInterfaces: int(cif[i]),
			}
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	return ds, nil
}

// ---------------------------------------------------------------------------
// colo

func encodeColo(colo *registry.ColoDB) []byte {
	var c colset

	asns := make([]netsim.ASN, 0, len(colo.ASFacilities))
	for asn := range colo.ASFacilities {
		asns = append(asns, asn)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	asASN := make([]uint32, len(asns))
	asN := make([]uint32, len(asns))
	var asFac []uint32
	for i, asn := range asns {
		asASN[i] = uint32(asn)
		facs := colo.ASFacilities[asn]
		asN[i] = uint32(len(facs))
		for _, f := range facs {
			asFac = append(asFac, uint32(f))
		}
	}
	c.u32("colo.as.asn", asASN)
	c.u32("colo.as.n", asN)
	c.u32("colo.as.fac", asFac)

	ixps := make([]string, 0, len(colo.IXPFacilities))
	for name := range colo.IXPFacilities {
		ixps = append(ixps, name)
	}
	sort.Strings(ixps)
	ixpN := make([]uint32, len(ixps))
	var ixpFac []uint32
	for i, name := range ixps {
		facs := colo.IXPFacilities[name]
		ixpN[i] = uint32(len(facs))
		for _, f := range facs {
			ixpFac = append(ixpFac, uint32(f))
		}
	}
	c.str("colo.ixp.name", ixps)
	c.u32("colo.ixp.n", ixpN)
	c.u32("colo.ixp.fac", ixpFac)

	return c.encode()
}

func decodeColo(payload []byte) (*registry.ColoDB, error) {
	d, err := newSecdec(payload)
	if err != nil {
		return nil, err
	}
	colo := &registry.ColoDB{
		ASFacilities:  make(map[netsim.ASN][]netsim.FacilityID),
		IXPFacilities: make(map[string][]netsim.FacilityID),
	}

	n := d.rows("colo.as.asn", "colo.as.n")
	d.flatLen(d.u32("colo.as.n"), "colo.as.fac")
	if d.err == nil {
		asns, counts, fac := d.u32("colo.as.asn"), d.u32("colo.as.n"), d.u32("colo.as.fac")
		off := 0
		for i := 0; i < n; i++ {
			// Present-with-no-facilities stays a nil slice, matching
			// what registry.BuildColo produces for such entries.
			var facs []netsim.FacilityID
			if counts[i] > 0 {
				facs = make([]netsim.FacilityID, int(counts[i]))
				for j := range facs {
					facs[j] = netsim.FacilityID(int32(fac[off+j]))
				}
			}
			off += int(counts[i])
			colo.ASFacilities[netsim.ASN(asns[i])] = facs
		}
	}

	n = d.rows("colo.ixp.name", "colo.ixp.n")
	d.flatLen(d.u32("colo.ixp.n"), "colo.ixp.fac")
	if d.err == nil {
		names, counts, fac := d.strs("colo.ixp.name"), d.u32("colo.ixp.n"), d.u32("colo.ixp.fac")
		off := 0
		for i := 0; i < n; i++ {
			var facs []netsim.FacilityID
			if counts[i] > 0 {
				facs = make([]netsim.FacilityID, int(counts[i]))
				for j := range facs {
					facs[j] = netsim.FacilityID(int32(fac[off+j]))
				}
			}
			off += int(counts[i])
			colo.IXPFacilities[names[i]] = facs
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	return colo, nil
}

// ---------------------------------------------------------------------------
// ping

func encodePing(r *pingsim.Result) ([]byte, error) {
	var c colset

	// VP roster, in roster order, hidden ground-truth attributes
	// included (restored rosters must still drive re-campaigns).
	n := len(r.VPs)
	vpID := make([]uint32, n)
	vpIXP := make([]uint32, n)
	vpKind := make([]uint8, n)
	vpFac := make([]uint32, n)
	vpLat := make([]float64, n)
	vpLon := make([]float64, n)
	vpSrc := make([]netip.Addr, n)
	vpFlags := make([]uint8, n)
	vpExtra := make([]float64, n)
	for i, vp := range r.VPs {
		vpID[i] = uint32(vp.ID)
		vpIXP[i] = uint32(vp.IXP)
		vpKind[i] = uint8(vp.Kind)
		vpFac[i] = uint32(int32(vp.Facility))
		vpLat[i], vpLon[i] = vp.Loc.Lat, vp.Loc.Lon
		vpSrc[i] = vp.SrcIP
		h := vp.Hidden()
		var fl uint8
		if vp.RoundsUp {
			fl |= vpFlagRoundsUp
		}
		if h.MgmtLAN {
			fl |= vpFlagMgmtLAN
		}
		if h.Dead {
			fl |= vpFlagDead
		}
		vpFlags[i] = fl
		vpExtra[i] = h.MgmtExtraMs
	}
	c.u32("vp.id", vpID)
	c.u32("vp.ixp", vpIXP)
	c.u8("vp.kind", vpKind)
	c.u32("vp.fac", vpFac)
	c.f64("vp.lat", vpLat)
	c.f64("vp.lon", vpLon)
	c.u8("vp.src", packAddrs(vpSrc))
	c.u32("vp.src.n", []uint32{uint32(n)})
	c.u8("vp.flags", vpFlags)
	c.f64("vp.mgmtextra", vpExtra)

	// Usable selection, in UsableVPs order.
	usable := make([]uint32, len(r.UsableVPs))
	for i, vp := range r.UsableVPs {
		usable[i] = uint32(vp.ID)
	}
	c.u32("vp.usable", usable)

	// Route-server RTTs, sorted by VP id.
	rsIDs := make([]int, 0, len(r.RouteServerRTT))
	for id := range r.RouteServerRTT {
		rsIDs = append(rsIDs, id)
	}
	sort.Ints(rsIDs)
	rsVP := make([]uint32, len(rsIDs))
	rsRTT := make([]float64, len(rsIDs))
	for i, id := range rsIDs {
		rsVP[i] = uint32(id)
		rsRTT[i] = r.RouteServerRTT[id]
	}
	c.u32("rs.vp", rsVP)
	c.f64("rs.rtt", rsRTT)

	// Folded per-interface aggregates, in address order (AggRows). Any
	// override overlay is already folded in by the index — a decoded
	// campaign starts with a clean overlay over these aggregates.
	rows := r.AggRows()
	aggIface := make([]netip.Addr, len(rows))
	aggRTT := make([]float64, len(rows))
	aggVP := make([]uint32, len(rows))
	aggFlags := make([]uint8, len(rows))
	for i, row := range rows {
		aggIface[i] = row.Iface
		aggRTT[i] = row.Agg.RTTMinMs
		aggVP[i] = noVP
		if row.Agg.BestVP != nil {
			aggVP[i] = uint32(row.Agg.BestVP.ID)
		}
		var fl uint8
		if row.Agg.BestRoundsUp {
			fl |= aggFlagBestRoundsUp
		}
		if row.Agg.AnyRounding {
			fl |= aggFlagAnyRounding
		}
		aggFlags[i] = fl
	}
	c.addr("agg.iface", aggIface)
	c.f64("agg.rtt", aggRTT)
	c.u32("agg.vp", aggVP)
	c.u8("agg.flags", aggFlags)

	return c.encode(), nil
}

func decodePing(payload []byte) (*pingsim.Result, error) {
	d, err := newSecdec(payload)
	if err != nil {
		return nil, err
	}
	n := d.rows("vp.id", "vp.ixp", "vp.kind", "vp.fac", "vp.lat", "vp.lon",
		"vp.flags", "vp.mgmtextra")
	if cnt := d.u32("vp.src.n"); d.err == nil && (len(cnt) != 1 || int(cnt[0]) != n) {
		d.fail("vp.src.n disagrees with the roster size")
	}
	if d.err != nil {
		return nil, d.err
	}
	srcs, err := unpackAddrs(d.u8("vp.src"), n)
	if err != nil {
		return nil, err
	}
	vpID, vpIXP, vpKind := d.u32("vp.id"), d.u32("vp.ixp"), d.u8("vp.kind")
	vpFac, vpLat, vpLon := d.u32("vp.fac"), d.f64("vp.lat"), d.f64("vp.lon")
	vpFlags, vpExtra := d.u8("vp.flags"), d.f64("vp.mgmtextra")
	vps := make([]*pingsim.VP, n)
	byID := make(map[uint32]*pingsim.VP, n)
	for i := range vps {
		vp := &pingsim.VP{
			ID: int(vpID[i]), IXP: netsim.IXPID(int32(vpIXP[i])),
			Kind:     pingsim.VPKind(vpKind[i]),
			Facility: netsim.FacilityID(int32(vpFac[i])),
			Loc:      geo.Point{Lat: vpLat[i], Lon: vpLon[i]},
			SrcIP:    srcs[i],
			RoundsUp: vpFlags[i]&vpFlagRoundsUp != 0,
		}
		vp.SetHidden(pingsim.VPHidden{
			MgmtLAN:     vpFlags[i]&vpFlagMgmtLAN != 0,
			MgmtExtraMs: vpExtra[i],
			Dead:        vpFlags[i]&vpFlagDead != 0,
		})
		vps[i] = vp
		byID[vpID[i]] = vp
	}

	usableIDs := make([]int, 0)
	for _, id := range d.u32("vp.usable") {
		usableIDs = append(usableIDs, int(id))
	}

	nRS := d.rows("rs.vp", "rs.rtt")
	rsRTT := make(map[int]float64, nRS)
	if d.err == nil {
		rsVP, rtts := d.u32("rs.vp"), d.f64("rs.rtt")
		for i := 0; i < nRS; i++ {
			rsRTT[int(rsVP[i])] = rtts[i]
		}
	}

	nAgg := d.rows("agg.iface", "agg.rtt", "agg.vp", "agg.flags")
	aggs := make(map[netip.Addr]*pingsim.IfaceAgg, nAgg)
	if d.err == nil {
		iface, rtt, best, flags := d.addrs("agg.iface"), d.f64("agg.rtt"), d.u32("agg.vp"), d.u8("agg.flags")
		for i := 0; i < nAgg; i++ {
			a := &pingsim.IfaceAgg{
				RTTMinMs:     rtt[i],
				BestRoundsUp: flags[i]&aggFlagBestRoundsUp != 0,
				AnyRounding:  flags[i]&aggFlagAnyRounding != 0,
			}
			if best[i] != noVP {
				vp := byID[best[i]]
				if vp == nil {
					return nil, fmt.Errorf("%w: aggregate for %s references unknown VP %d", ErrInvalid, iface[i], best[i])
				}
				a.BestVP = vp
			}
			aggs[iface[i]] = a
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	r, err := pingsim.RestoredResult(vps, usableIDs, rsRTT, aggs)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// paths

func encodePaths(paths []*traix.Path) []byte {
	var c colset
	n := len(paths)
	src := make([]uint32, n)
	dst := make([]netip.Addr, n)
	hopN := make([]uint32, n)
	totalHops := 0
	for _, p := range paths {
		totalHops += len(p.Hops)
	}
	hopIP := make([]netip.Addr, 0, totalHops)
	hopRTT := make([]float64, 0, totalHops)
	for i, p := range paths {
		src[i] = uint32(p.SrcASN)
		dst[i] = p.Dst
		hopN[i] = uint32(len(p.Hops))
		for _, h := range p.Hops {
			hopIP = append(hopIP, h.IP)
			hopRTT = append(hopRTT, h.RTTMs)
		}
	}
	c.u32("path.src", src)
	c.u8("path.dst", packAddrs(dst))
	c.u32("path.hops.n", hopN)
	c.u8("hop.ip", packAddrs(hopIP))
	c.f64("hop.rtt", hopRTT)
	return c.encode()
}

func decodePaths(payload []byte) ([]*traix.Path, error) {
	d, err := newSecdec(payload)
	if err != nil {
		return nil, err
	}
	n := d.rows("path.src", "path.hops.n")
	if d.err != nil {
		return nil, d.err
	}
	src, hopN := d.u32("path.src"), d.u32("path.hops.n")
	dsts, err := unpackAddrs(d.u8("path.dst"), n)
	if err != nil {
		return nil, err
	}
	totalHops := 0
	for _, h := range hopN {
		totalHops += int(h)
	}
	hopRTT := d.f64("hop.rtt")
	if d.err != nil {
		return nil, d.err
	}
	if len(hopRTT) != totalHops {
		return nil, fmt.Errorf("%w: hop.rtt has %d values, counts sum to %d", ErrInvalid, len(hopRTT), totalHops)
	}
	hopIPs, err := unpackAddrs(d.u8("hop.ip"), totalHops)
	if err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	paths := make([]*traix.Path, n)
	// One contiguous hop slab for the whole corpus: 1024x carries tens
	// of millions of hops, and per-path slices would fragment the heap.
	hops := make([]traix.Hop, totalHops)
	for i := range hops {
		hops[i] = traix.Hop{IP: hopIPs[i], RTTMs: hopRTT[i]}
	}
	off := 0
	for i := range paths {
		cnt := int(hopN[i])
		paths[i] = &traix.Path{
			SrcASN: netsim.ASN(src[i]),
			Dst:    dsts[i],
			Hops:   hops[off : off+cnt : off+cnt],
		}
		off += cnt
	}
	return paths, nil
}

// ---------------------------------------------------------------------------
// meta

func encodeMeta(in core.Inputs) []byte {
	var c colset
	c.u64("seed", []uint64{uint64(in.Seed)})
	c.f64("speed", []float64{in.Speed.VMaxKmPerMs, in.Speed.A, in.Speed.B})
	return c.encode()
}

func decodeMeta(payload []byte, in *core.Inputs) error {
	d, err := newSecdec(payload)
	if err != nil {
		return err
	}
	seed := d.u64("seed")
	speed := d.f64("speed")
	if d.err != nil {
		return d.err
	}
	if len(seed) != 1 || len(speed) != 3 {
		return fmt.Errorf("%w: meta section has %d seed and %d speed values", ErrInvalid, len(seed), len(speed))
	}
	in.Seed = int64(seed[0])
	in.Speed = geo.SpeedModel{VMaxKmPerMs: speed[0], A: speed[1], B: speed[2]}
	for _, v := range speed {
		if math.IsNaN(v) {
			return fmt.Errorf("%w: NaN speed-model parameter", ErrInvalid)
		}
	}
	return nil
}
