package worldfile_test

import (
	"bytes"
	"errors"
	"math"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"rpeer/internal/core"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/worldfile"
	"rpeer/pkg/rpi"
)

// testInputs builds a small but complete bundle (tiny world, full
// registry/colo/ping/trace stages) once per test binary.
func testInputs(t *testing.T) core.Inputs {
	t.Helper()
	in, err := rpi.InputsFromConfig(netsim.TinyConfig(), 42)
	if err != nil {
		t.Fatalf("build inputs: %v", err)
	}
	return in
}

func encode(t *testing.T, in core.Inputs) []byte {
	t.Helper()
	b, err := worldfile.Encode(in)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	return b
}

func feq(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// TestWorldFileRoundTrip pins the tentpole guarantee: a loaded bundle
// is byte-identical to the in-process generated one, down to the
// inference report the pipeline produces over it.
func TestWorldFileRoundTrip(t *testing.T) {
	in := testInputs(t)
	b := encode(t, in)
	got, err := worldfile.Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	// World: byte-identical JSON serialisation.
	var want, have bytes.Buffer
	if err := in.World.Save(&want); err != nil {
		t.Fatalf("save original: %v", err)
	}
	if err := got.World.Save(&have); err != nil {
		t.Fatalf("save decoded: %v", err)
	}
	if !bytes.Equal(want.Bytes(), have.Bytes()) {
		t.Fatalf("decoded world JSON differs from generated world (%d vs %d bytes)",
			want.Len(), have.Len())
	}

	// Fingerprint, dataset, colo, paths.
	if fa, fb := core.Fingerprint(in), core.Fingerprint(got); fa != fb {
		t.Fatalf("fingerprint changed across round trip: %016x vs %016x", fa, fb)
	}
	if !reflect.DeepEqual(in.Dataset, got.Dataset) {
		t.Fatalf("dataset differs after round trip")
	}
	if !reflect.DeepEqual(in.Colo, got.Colo) {
		t.Fatalf("colo differs after round trip")
	}
	if !reflect.DeepEqual(in.Paths, got.Paths) {
		t.Fatalf("traceroute corpus differs after round trip")
	}
	if in.Seed != got.Seed || in.Speed != got.Speed {
		t.Fatalf("seed/speed differ: (%d,%v) vs (%d,%v)", in.Seed, in.Speed, got.Seed, got.Speed)
	}

	// Ping campaign: roster, usable set, route-server RTTs, folded
	// aggregates.
	if len(in.Ping.VPs) != len(got.Ping.VPs) {
		t.Fatalf("roster size %d vs %d", len(in.Ping.VPs), len(got.Ping.VPs))
	}
	for i, vp := range in.Ping.VPs {
		g := got.Ping.VPs[i]
		if vp.ID != g.ID || vp.IXP != g.IXP || vp.Kind != g.Kind ||
			vp.Facility != g.Facility || vp.Loc != g.Loc || vp.SrcIP != g.SrcIP ||
			vp.RoundsUp != g.RoundsUp || vp.Hidden() != g.Hidden() {
			t.Fatalf("VP %d differs after round trip: %+v vs %+v", vp.ID, vp, g)
		}
	}
	if len(in.Ping.UsableVPs) != len(got.Ping.UsableVPs) {
		t.Fatalf("usable VP count %d vs %d", len(in.Ping.UsableVPs), len(got.Ping.UsableVPs))
	}
	for i, vp := range in.Ping.UsableVPs {
		if got.Ping.UsableVPs[i].ID != vp.ID {
			t.Fatalf("usable VP %d is %d, want %d", i, got.Ping.UsableVPs[i].ID, vp.ID)
		}
	}
	if len(in.Ping.RouteServerRTT) != len(got.Ping.RouteServerRTT) {
		t.Fatalf("route server RTT count %d vs %d",
			len(in.Ping.RouteServerRTT), len(got.Ping.RouteServerRTT))
	}
	for id, rtt := range in.Ping.RouteServerRTT {
		g, ok := got.Ping.RouteServerRTT[id]
		if !ok || !feq(rtt, g) {
			t.Fatalf("route server RTT for VP %d: %v vs %v (present=%v)", id, rtt, g, ok)
		}
	}
	wantIdx, haveIdx := in.Ping.IfaceIndex(), got.Ping.IfaceIndex()
	if len(wantIdx) != len(haveIdx) {
		t.Fatalf("aggregate index size %d vs %d", len(wantIdx), len(haveIdx))
	}
	for ip, wa := range wantIdx {
		ha := haveIdx[ip]
		if ha == nil {
			t.Fatalf("aggregate for %s missing after round trip", ip)
		}
		if !feq(wa.RTTMinMs, ha.RTTMinMs) || wa.BestRoundsUp != ha.BestRoundsUp ||
			wa.AnyRounding != ha.AnyRounding {
			t.Fatalf("aggregate for %s differs: %+v vs %+v", ip, wa, ha)
		}
		wantBest, haveBest := -1, -1
		if wa.BestVP != nil {
			wantBest = wa.BestVP.ID
		}
		if ha.BestVP != nil {
			haveBest = ha.BestVP.ID
		}
		if wantBest != haveBest {
			t.Fatalf("aggregate for %s has best VP %d, want %d", ip, haveBest, wantBest)
		}
	}

	// The pipeline over the decoded bundle must produce the same report.
	wantRep, err := core.Run(in, core.DefaultOptions())
	if err != nil {
		t.Fatalf("run original: %v", err)
	}
	haveRep, err := core.Run(got, core.DefaultOptions())
	if err != nil {
		t.Fatalf("run decoded: %v", err)
	}
	if len(wantRep.Inferences) != len(haveRep.Inferences) {
		t.Fatalf("report size %d vs %d", len(wantRep.Inferences), len(haveRep.Inferences))
	}
	for k, wi := range wantRep.Inferences {
		hi := haveRep.Inferences[k]
		if hi == nil {
			t.Fatalf("inference for %s missing from decoded-world report", k)
		}
		wc, hc := *wi, *hi
		if !feq(wc.RTTMinMs, hc.RTTMinMs) {
			t.Fatalf("inference %s RTT %v vs %v", k, wc.RTTMinMs, hc.RTTMinMs)
		}
		wc.RTTMinMs, hc.RTTMinMs = 0, 0
		if wc != hc {
			t.Fatalf("inference %s differs: %+v vs %+v", k, wi, hi)
		}
	}
	if !reflect.DeepEqual(wantRep.MultiRouters, haveRep.MultiRouters) {
		t.Fatalf("multi-IXP router sets differ between generated and loaded world")
	}
}

// TestEncodeDeterministic pins byte-for-byte deterministic encoding —
// the property CI world caching and fingerprint pinning rely on.
func TestEncodeDeterministic(t *testing.T) {
	in := testInputs(t)
	a, b := encode(t, in), encode(t, in)
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodes of the same bundle differ (%d vs %d bytes)", len(a), len(b))
	}
	// And re-encoding a decoded bundle is also byte-identical.
	got, err := worldfile.Decode(a)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	c := encode(t, got)
	if !bytes.Equal(a, c) {
		t.Fatalf("re-encode of decoded bundle differs (%d vs %d bytes)", len(a), len(c))
	}
}

func TestWriteLoadFile(t *testing.T) {
	in := testInputs(t)
	path := filepath.Join(t.TempDir(), "world.rpw")
	if err := worldfile.WriteFile(path, in); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file left behind after publish")
	}
	got, err := worldfile.Load(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if fa, fb := core.Fingerprint(in), core.Fingerprint(got); fa != fb {
		t.Fatalf("fingerprint changed across file round trip: %016x vs %016x", fa, fb)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := worldfile.LoadReader(f); err != nil {
		t.Fatalf("load via reader: %v", err)
	}
}

// TestCorruptTruncated: every truncation of a valid file must fail
// with ErrInvalid — never panic, never return a partial world.
func TestCorruptTruncated(t *testing.T) {
	b := encode(t, testInputs(t))
	// Exhaustive near the header, then sampled through the body.
	cuts := make([]int, 0, 512)
	for i := 0; i < 256 && i < len(b); i++ {
		cuts = append(cuts, i)
	}
	for i := 256; i < len(b); i += 997 {
		cuts = append(cuts, i)
	}
	cuts = append(cuts, len(b)-1)
	for _, n := range cuts {
		if _, err := worldfile.Decode(b[:n]); !errors.Is(err, worldfile.ErrInvalid) {
			t.Fatalf("truncation to %d of %d bytes: got %v, want ErrInvalid", n, len(b), err)
		}
	}
}

// TestCorruptFlippedByte: flipping any byte inside a section payload
// must be caught by that section's checksum.
func TestCorruptFlippedByte(t *testing.T) {
	b := encode(t, testInputs(t))
	header := len("RPWFILE1") + 4 + 8 + 4
	for off := header; off < len(b); off += 499 {
		mut := bytes.Clone(b)
		mut[off] ^= 0x40
		_, err := worldfile.Decode(mut)
		if err == nil {
			t.Fatalf("flipping byte %d went undetected", off)
		}
		if !errors.Is(err, worldfile.ErrInvalid) && !errors.Is(err, worldfile.ErrFingerprint) {
			t.Fatalf("flipping byte %d: got untyped error %v", off, err)
		}
	}
}

func TestCorruptVersionMismatch(t *testing.T) {
	b := bytes.Clone(encode(t, testInputs(t)))
	b[len("RPWFILE1")] = byte(worldfile.FormatVersion + 1)
	if _, err := worldfile.Decode(b); !errors.Is(err, worldfile.ErrVersion) {
		t.Fatalf("future version: got %v, want ErrVersion", err)
	}
}

func TestCorruptFingerprintMismatch(t *testing.T) {
	b := bytes.Clone(encode(t, testInputs(t)))
	b[len("RPWFILE1")+4] ^= 0xFF // low byte of the header fingerprint
	if _, err := worldfile.Decode(b); !errors.Is(err, worldfile.ErrFingerprint) {
		t.Fatalf("tampered fingerprint: got %v, want ErrFingerprint", err)
	}
}

func TestCorruptBadMagic(t *testing.T) {
	b := bytes.Clone(encode(t, testInputs(t)))
	b[0] ^= 0xFF
	if _, err := worldfile.Decode(b); !errors.Is(err, worldfile.ErrInvalid) {
		t.Fatalf("bad magic: got %v, want ErrInvalid", err)
	}
}

// TestOverridesComposeOnRestoredCampaign: a restored campaign must
// accept override overlays (the serving plane's live-measurement path)
// exactly like a fresh one.
func TestOverridesComposeOnRestoredCampaign(t *testing.T) {
	in := testInputs(t)
	got, err := worldfile.Decode(encode(t, in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	idx := got.Ping.IfaceIndex()
	if len(idx) == 0 {
		t.Fatal("restored campaign has no aggregates")
	}
	for ip, agg := range idx {
		over := got.Ping.WithOverrides(map[netip.Addr]pingsim.Override{
			ip: {RTTMinMs: agg.RTTMinMs + 5, BestVP: agg.BestVP},
		})
		oidx := over.IfaceIndex()
		if oa := oidx[ip]; oa == nil || !feq(oa.RTTMinMs, agg.RTTMinMs+5) {
			t.Fatalf("override on restored campaign not applied for %s: %+v", ip, oidx[ip])
		}
		// The base view must be untouched.
		if ba := got.Ping.IfaceIndex()[ip]; !feq(ba.RTTMinMs, agg.RTTMinMs) {
			t.Fatalf("override leaked into base view for %s", ip)
		}
		break
	}
}
