// Package worldfile is the binary columnar world interchange format:
// one .rpw file carries a complete inference input bundle (world,
// merged registry dataset, colocation database, ping campaign in folded
// aggregate form, traceroute corpus, speed model, seed), so world
// generation is paid once per world — by cmd/rpi-gen — and every
// serving process (rpi-serve, rpi-bot, the scaling benchmarks) loads it
// back in seconds with one large read and column slicing.
//
// File layout (little-endian):
//
//	magic "RPWFILE1" | u32 format version | u64 fingerprint | u32 #sections
//	section...
//
// and each section is
//
//	u16 name length | name | u32 payload length | payload | u32 CRC32C(payload)
//
// — the same Castagnoli checksum discipline as internal/wal frames and
// internal/snapshot files. Section payloads are column groups in the
// internal/snapshot wire encoding (except "config", which is a small
// JSON document). The header fingerprint is core.Fingerprint of the
// decoded bundle, recomputed and compared at load time, so a file
// cannot silently impersonate a different (seed, scale) world — and a
// loaded bundle is pinned byte-identical to in-process generation by
// TestWorldFileRoundTrip.
//
// Decoding validates every section checksum before trusting a byte and
// every cross-column reference after; any failure is a typed error
// (ErrInvalid, ErrVersion, ErrFingerprint), never a panic or a silently
// partial world.
package worldfile

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"rpeer/internal/core"
	"rpeer/internal/wal"
)

// Magic identifies a world file.
const Magic = "RPWFILE1"

// FormatVersion is the current world file format.
const FormatVersion = 1

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Typed failure modes. All decode errors wrap exactly one of these, so
// callers can distinguish corruption from version skew from a
// wrong-world file with errors.Is.
var (
	// ErrInvalid marks a corrupt or truncated file: bad magic, a
	// section checksum mismatch, a malformed column, or a dangling
	// cross-column reference.
	ErrInvalid = errors.New("worldfile: invalid world file")
	// ErrVersion marks a file written by a newer format version.
	ErrVersion = errors.New("worldfile: unsupported format version")
	// ErrFingerprint marks a structurally valid file whose content does
	// not hash to the fingerprint stamped in its header — a tampered
	// header or a bundle that is not what it claims to be.
	ErrFingerprint = errors.New("worldfile: fingerprint mismatch")
)

// Section names. Order in the file is fixed (the encode order below),
// but the decoder indexes by name and does not rely on it.
const (
	secConfig  = "config"
	secWorld   = "world"
	secDataset = "dataset"
	secColo    = "colo"
	secPing    = "ping"
	secPaths   = "paths"
	secMeta    = "meta"
)

// Encode serialises a complete input bundle into the .rpw wire form.
// The bundle's ping campaign is folded: per-interface aggregates (with
// any override overlay already applied) are written, raw per-VP
// measurements are not — see internal/pingsim.RestoredResult for what
// a decoded campaign answers.
func Encode(in core.Inputs) ([]byte, error) {
	if in.World == nil || in.Dataset == nil || in.Colo == nil || in.Ping == nil {
		return nil, fmt.Errorf("worldfile: encode needs a complete input bundle (world, dataset, colo, ping)")
	}
	sections := make([]section, 0, 7)
	add := func(name string, payload []byte) {
		sections = append(sections, section{name: name, payload: payload})
	}
	cfg, err := encodeConfig(in.World.Cfg)
	if err != nil {
		return nil, err
	}
	add(secConfig, cfg)
	world, err := encodeWorld(in.World)
	if err != nil {
		return nil, err
	}
	add(secWorld, world)
	add(secDataset, encodeDataset(in.Dataset))
	add(secColo, encodeColo(in.Colo))
	ping, err := encodePing(in.Ping)
	if err != nil {
		return nil, err
	}
	add(secPing, ping)
	add(secPaths, encodePaths(in.Paths))
	add(secMeta, encodeMeta(in))

	size := len(Magic) + 4 + 8 + 4
	for _, s := range sections {
		size += 2 + len(s.name) + 4 + len(s.payload) + 4
	}
	b := make([]byte, 0, size)
	b = append(b, Magic...)
	b = binary.LittleEndian.AppendUint32(b, FormatVersion)
	b = binary.LittleEndian.AppendUint64(b, core.Fingerprint(in))
	b = binary.LittleEndian.AppendUint32(b, uint32(len(sections)))
	for _, s := range sections {
		b = binary.LittleEndian.AppendUint16(b, uint16(len(s.name)))
		b = append(b, s.name...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(s.payload)))
		b = append(b, s.payload...)
		b = binary.LittleEndian.AppendUint32(b, crc32.Checksum(s.payload, castagnoli))
	}
	return b, nil
}

type section struct {
	name    string
	payload []byte
}

// Decode parses and validates a world file image, reassembling the
// full input bundle. Section payloads are sliced out of data without
// copying; the caller must not mutate data afterwards.
func Decode(data []byte) (core.Inputs, error) {
	payloads, fp, err := splitSections(data)
	if err != nil {
		return core.Inputs{}, err
	}
	need := func(name string) ([]byte, error) {
		p, ok := payloads[name]
		if !ok {
			return nil, fmt.Errorf("%w: missing section %q", ErrInvalid, name)
		}
		return p, nil
	}
	var in core.Inputs
	for _, step := range []struct {
		name string
		dec  func([]byte) error
	}{
		{secConfig, func(p []byte) error { return nil }}, // consumed by secWorld below
		{secWorld, func(p []byte) error {
			cfgRaw, err := need(secConfig)
			if err != nil {
				return err
			}
			cfg, err := decodeConfig(cfgRaw)
			if err != nil {
				return err
			}
			w, err := decodeWorld(cfg, p)
			if err != nil {
				return err
			}
			in.World = w
			return nil
		}},
		{secDataset, func(p []byte) error {
			ds, err := decodeDataset(p)
			if err != nil {
				return err
			}
			in.Dataset = ds
			return nil
		}},
		{secColo, func(p []byte) error {
			colo, err := decodeColo(p)
			if err != nil {
				return err
			}
			in.Colo = colo
			return nil
		}},
		{secPing, func(p []byte) error {
			ping, err := decodePing(p)
			if err != nil {
				return err
			}
			in.Ping = ping
			return nil
		}},
		{secPaths, func(p []byte) error {
			paths, err := decodePaths(p)
			if err != nil {
				return err
			}
			in.Paths = paths
			return nil
		}},
		{secMeta, func(p []byte) error { return decodeMeta(p, &in) }},
	} {
		p, err := need(step.name)
		if err != nil {
			return core.Inputs{}, err
		}
		if err := step.dec(p); err != nil {
			return core.Inputs{}, fmt.Errorf("section %q: %w", step.name, err)
		}
	}
	if got := core.Fingerprint(in); got != fp {
		return core.Inputs{}, fmt.Errorf("%w: header says %016x, content hashes to %016x", ErrFingerprint, fp, got)
	}
	return in, nil
}

// splitSections validates the container framing and returns the
// checksum-verified payload of each section (zero-copy slices of data)
// plus the header fingerprint.
func splitSections(data []byte) (map[string][]byte, uint64, error) {
	headerLen := len(Magic) + 4 + 8 + 4
	if len(data) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d bytes is too short", ErrInvalid, len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrInvalid)
	}
	off := len(Magic)
	ver := binary.LittleEndian.Uint32(data[off:])
	off += 4
	if ver > FormatVersion {
		return nil, 0, fmt.Errorf("%w: file is v%d, newest supported is v%d", ErrVersion, ver, FormatVersion)
	}
	fp := binary.LittleEndian.Uint64(data[off:])
	off += 8
	nSections := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	payloads := make(map[string][]byte, nSections)
	for i := 0; i < nSections; i++ {
		if off+2 > len(data) {
			return nil, 0, fmt.Errorf("%w: truncated in section %d header", ErrInvalid, i)
		}
		nameLen := int(binary.LittleEndian.Uint16(data[off:]))
		off += 2
		if off+nameLen+4 > len(data) {
			return nil, 0, fmt.Errorf("%w: truncated in section %d name", ErrInvalid, i)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		payloadLen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if payloadLen < 0 || off+payloadLen+4 > len(data) {
			return nil, 0, fmt.Errorf("%w: section %q truncated (%d payload bytes claimed, %d remain)",
				ErrInvalid, name, payloadLen, len(data)-off)
		}
		payload := data[off : off+payloadLen]
		off += payloadLen
		sum := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if crc32.Checksum(payload, castagnoli) != sum {
			return nil, 0, fmt.Errorf("%w: section %q checksum mismatch", ErrInvalid, name)
		}
		if _, dup := payloads[name]; dup {
			return nil, 0, fmt.Errorf("%w: duplicate section %q", ErrInvalid, name)
		}
		payloads[name] = payload
	}
	if off != len(data) {
		return nil, 0, fmt.Errorf("%w: %d trailing bytes after last section", ErrInvalid, len(data)-off)
	}
	return payloads, fp, nil
}

// Write publishes the bundle to path atomically: tmp file, fsync,
// rename, directory fsync — the internal/wal durability discipline, so
// a crash mid-write never leaves a half world behind the final name.
func Write(fsys wal.FS, path string, in core.Inputs) error {
	b, err := Encode(in)
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("worldfile: create %s: %w", tmp, err)
	}
	cleanup := func() { _ = fsys.Remove(tmp) }
	if _, err := f.Write(b); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("worldfile: write %s: %w", tmp, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		cleanup()
		return fmt.Errorf("worldfile: sync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		cleanup()
		return fmt.Errorf("worldfile: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		cleanup()
		return fmt.Errorf("worldfile: publish %s: %w", path, err)
	}
	if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("worldfile: sync dir after publishing %s: %w", path, err)
	}
	return nil
}

// WriteFile is Write over the real filesystem.
func WriteFile(path string, in core.Inputs) error {
	return Write(wal.OS(), path, in)
}

// Load reads a world file with one large read and decodes it.
func Load(path string) (core.Inputs, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return core.Inputs{}, fmt.Errorf("worldfile: read %s: %w", path, err)
	}
	in, err := Decode(data)
	if err != nil {
		return core.Inputs{}, fmt.Errorf("worldfile: load %s: %w", path, err)
	}
	return in, nil
}

// LoadReader decodes a world file from a stream (io.ReadAll, then
// Decode) — for callers that already hold an open handle.
func LoadReader(r io.Reader) (core.Inputs, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return core.Inputs{}, fmt.Errorf("worldfile: read: %w", err)
	}
	return Decode(data)
}
