package rpi

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"rpeer/internal/core"
)

// WireVersion is the current report wire-schema version. The golden
// test in wire_test.go pins the serialized form: any schema change
// must bump this constant and regenerate the golden on purpose.
const WireVersion = 1

// WireReport is the versioned JSON form of a Report. Inferences are
// ordered by (IXP, interface) and routers by (ASN, first interface),
// so marshalling is deterministic: two equal reports produce identical
// bytes.
type WireReport struct {
	Version int         `json:"version"`
	Summary WireSummary `json:"summary"`
	// Inferences holds one entry per known membership.
	Inferences []WireInference `json:"inferences"`
	// Routers lists the classified multi-IXP routers.
	Routers []WireRouter `json:"multi_ixp_routers,omitempty"`
}

// WireSummary is the headline verdict count.
type WireSummary struct {
	Total   int `json:"total"`
	Local   int `json:"local"`
	Remote  int `json:"remote"`
	Unknown int `json:"unknown"`
}

// WireInference is one membership verdict on the wire.
type WireInference struct {
	IXP   string `json:"ixp"`
	Iface string `json:"iface"`
	ASN   uint32 `json:"asn"`
	Class string `json:"class"`
	Step  string `json:"step,omitempty"`
	// RTTMinMs is omitted for unmeasured interfaces (JSON has no NaN).
	RTTMinMs *float64 `json:"rtt_min_ms,omitempty"`
	// FeasibleIXPFacilities is omitted when Step 3 did not run.
	FeasibleIXPFacilities *int `json:"feasible_ixp_facilities,omitempty"`
	TraceRTT              bool `json:"trace_rtt,omitempty"`
}

// WireRouter is one multi-IXP router on the wire.
type WireRouter struct {
	ASN    uint32   `json:"asn"`
	Ifaces []string `json:"ifaces"`
	IXPs   []string `json:"ixps"`
	Class  string   `json:"class"`
}

// ToWire converts a report to its wire form.
func ToWire(rep *Report) *WireReport {
	w := &WireReport{Version: WireVersion}
	w.Inferences = make([]WireInference, 0, len(rep.Inferences))
	for k, inf := range rep.Inferences {
		wi := WireInference{
			IXP:   k.IXP,
			Iface: k.Iface.String(),
			ASN:   uint32(inf.ASN),
			Class: inf.Class.String(),
			Step:  stepName(inf.Step),
		}
		if !math.IsNaN(inf.RTTMinMs) {
			v := inf.RTTMinMs
			wi.RTTMinMs = &v
		}
		if inf.FeasibleIXPFacilities >= 0 {
			v := inf.FeasibleIXPFacilities
			wi.FeasibleIXPFacilities = &v
		}
		wi.TraceRTT = inf.TraceRTT
		w.Inferences = append(w.Inferences, wi)
		switch inf.Class {
		case core.ClassLocal:
			w.Summary.Local++
		case core.ClassRemote:
			w.Summary.Remote++
		default:
			w.Summary.Unknown++
		}
	}
	w.Summary.Total = len(w.Inferences)
	sort.Slice(w.Inferences, func(i, j int) bool {
		if w.Inferences[i].IXP != w.Inferences[j].IXP {
			return w.Inferences[i].IXP < w.Inferences[j].IXP
		}
		return w.Inferences[i].Iface < w.Inferences[j].Iface
	})
	for _, r := range rep.MultiRouters {
		wr := WireRouter{ASN: uint32(r.ASN), Class: r.Class.String()}
		for _, ip := range r.Ifaces {
			wr.Ifaces = append(wr.Ifaces, ip.String())
		}
		wr.IXPs = append(wr.IXPs, r.IXPs...)
		w.Routers = append(w.Routers, wr)
	}
	sort.Slice(w.Routers, func(i, j int) bool {
		if w.Routers[i].ASN != w.Routers[j].ASN {
			return w.Routers[i].ASN < w.Routers[j].ASN
		}
		return w.Routers[i].Ifaces[0] < w.Routers[j].Ifaces[0]
	})
	return w
}

// MarshalReport serializes a report to the versioned JSON wire form.
// The output is deterministic: equal reports marshal to equal bytes
// (the rpi-serve API contract, pinned by the golden test).
func MarshalReport(rep *Report) ([]byte, error) {
	return json.MarshalIndent(ToWire(rep), "", " ")
}

// MarshalReportCtx is MarshalReport with a cancellation checkpoint
// before each of the two expensive phases (wire conversion, JSON
// encoding): a handler whose client already disconnected returns
// ErrCanceled instead of marshalling a multi-megabyte report nobody
// will read.
func MarshalReportCtx(ctx context.Context, rep *Report) ([]byte, error) {
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	w := ToWire(rep)
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	return json.MarshalIndent(w, "", " ")
}

// UnmarshalReport parses a wire report, rejecting unknown schema
// versions with ErrWireVersion.
func UnmarshalReport(b []byte) (*WireReport, error) {
	var w WireReport
	if err := json.Unmarshal(b, &w); err != nil {
		return nil, fmt.Errorf("rpi: parse wire report: %w", err)
	}
	if w.Version != WireVersion {
		return nil, fmt.Errorf("%w: got %d, support %d", ErrWireVersion, w.Version, WireVersion)
	}
	return &w, nil
}
