package rpi

import (
	"bytes"
	"context"
	"os"
	"testing"

	"rpeer/internal/rng"
	"rpeer/internal/wal"
)

// TestChurnSoak is the long-haul regression: a thousand randomized
// join/leave/re-join deltas (every leave makes its interface a
// re-join candidate for a later delta) driven through one persistent
// engine, with the incremental-update contract re-proven every 100
// deltas — the live report must be byte-identical to a cold engine
// built over the churned Inputs(). Gated behind RPEER_SOAK=1 (make
// soak runs it under the race detector); the tier-1 suite skips it.
func TestChurnSoak(t *testing.T) {
	if os.Getenv("RPEER_SOAK") == "" {
		t.Skip("soak test: set RPEER_SOAK=1 (or run `make soak`)")
	}
	const (
		deltas     = 1000
		checkEvery = 100
	)
	in := tinyInputs(t)
	fsys := wal.NewMemFS()
	// Persistence rides along: SyncOff keeps the soak fast while still
	// exercising the append and snapshot paths at full churn volume.
	eng, _, err := Open("soak", in, WithWALFS(fsys),
		WithLogger(quietLogger()), WithSync(SyncOff), WithSnapshotEvery(250))
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// One update stream rides along to exercise publish/shed under
	// -race; drained at the end so drops stay deterministic-ish.
	updates, cancel := eng.Subscribe(64)
	defer cancel()

	r := rng.New(rng.Key(0x50a7, 7))
	for i := 1; i <= deltas; i++ {
		frac := 0.01 + 0.03*r.Float64()
		d := ChurnDelta(eng.Inputs(), frac, int64(r.Uint64()>>1))
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatalf("delta %d: %v", i, err)
		}
		for len(updates) > 32 {
			<-updates
		}
		if i%checkEvery != 0 {
			continue
		}
		warm, err := MarshalReport(eng.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		cold, err := New(eng.Inputs())
		if err != nil {
			t.Fatalf("cold rebuild at delta %d: %v", i, err)
		}
		coldRep, err := MarshalReport(cold.Snapshot())
		cold.Close()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(warm, coldRep) {
			t.Fatalf("delta %d: incremental report diverged from cold rebuild", i)
		}
		t.Logf("delta %d: %d memberships, report identical to cold rebuild", i, len(eng.Snapshot().Inferences))
	}

	// The soaked log must also recover: close (final snapshot) and
	// reopen, expecting the exact end state.
	want, err := MarshalReport(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	endSeq := eng.Seq()
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	rec, _, err := Open("soak", in, WithWALFS(fsys), WithLogger(quietLogger()))
	if err != nil {
		t.Fatalf("recovery after soak: %v", err)
	}
	defer rec.Close()
	if rec.Seq() != endSeq {
		t.Fatalf("recovered seq %d, want %d", rec.Seq(), endSeq)
	}
	got, err := MarshalReport(rec.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered report differs from pre-shutdown state")
	}
}

// TestSoakSeedDeterminism pins the rng helper the soak derives its
// randomness from: the soak must be reproducible run to run.
func TestSoakSeedDeterminism(t *testing.T) {
	a, b := rng.New(rng.Key(0x50a7, 7)), rng.New(rng.Key(0x50a7, 7))
	for i := 0; i < 8; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: %x != %x", i, x, y)
		}
	}
}
