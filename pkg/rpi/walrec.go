package rpi

import (
	"encoding/binary"
	"fmt"
	"math"
	"net/netip"
	"sort"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

// WAL record codec: one applied delta per record, in a compact
// little-endian binary layout (JSON cannot carry the NaN that marks a
// measurement revocation). Vantage points are persisted by ID — the
// record must stay meaningful across processes, and the base campaign
// regenerates the same VP roster deterministically.
//
//	u8 record version
//	u32 #joins    | per join:  addr, u32 asn, u32 portMbps, name
//	u32 #leaves   | per leave: addr, name
//	u32 #pings    | per row:   addr, u64 rttBits, u32 vpID, u8 flags
//
// where addr is a u8 length (4 or 16) + raw bytes and name is a u16
// length + UTF-8. Ping rows are sorted by address so that the same
// delta always encodes to the same bytes (map iteration order must not
// leak into what lands on disk).

// recVersion is the current WAL record layout version.
const recVersion = 1

// noRecVP is the on-disk vantage-point-ID sentinel for an override
// without a VP (a revocation).
const noRecVP = ^uint32(0)

const (
	recFlagBestRoundsUp = 1 << 0
	recFlagAnyRounding  = 1 << 1
)

func appendAddr(b []byte, a netip.Addr) []byte {
	raw := a.AsSlice()
	b = append(b, byte(len(raw)))
	return append(b, raw...)
}

func appendName(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(s)))
	return append(b, s...)
}

// encodeDelta serializes a resolved delta (measured overrides carry
// their vantage point; Apply resolves before logging).
func encodeDelta(d Delta) []byte {
	b := make([]byte, 0, 64+32*(len(d.Joins)+len(d.Leaves)+len(d.Ping)))
	b = append(b, recVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.Joins)))
	for _, j := range d.Joins {
		b = appendAddr(b, j.Iface)
		b = binary.LittleEndian.AppendUint32(b, uint32(j.ASN))
		b = binary.LittleEndian.AppendUint32(b, uint32(j.PortMbps))
		b = appendName(b, j.IXP)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(d.Leaves)))
	for _, k := range d.Leaves {
		b = appendAddr(b, k.Iface)
		b = appendName(b, k.IXP)
	}
	ips := make([]netip.Addr, 0, len(d.Ping))
	for ip := range d.Ping {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i].Less(ips[j]) })
	b = binary.LittleEndian.AppendUint32(b, uint32(len(ips)))
	for _, ip := range ips {
		ov := d.Ping[ip]
		b = appendAddr(b, ip)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ov.RTTMinMs))
		id := noRecVP
		if ov.BestVP != nil {
			id = uint32(ov.BestVP.ID)
		}
		b = binary.LittleEndian.AppendUint32(b, id)
		var fl uint8
		if ov.BestRoundsUp {
			fl |= recFlagBestRoundsUp
		}
		if ov.AnyRounding {
			fl |= recFlagAnyRounding
		}
		b = append(b, fl)
	}
	return b
}

// recDec is a bounds-checked reader over one record payload.
type recDec struct {
	b   []byte
	err error
}

func (d *recDec) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.b) {
		if d.err == nil {
			d.err = fmt.Errorf("record truncated")
		}
		return nil
	}
	out := d.b[:n]
	d.b = d.b[n:]
	return out
}

func (d *recDec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *recDec) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *recDec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *recDec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *recDec) addr() netip.Addr {
	raw := d.take(int(d.u8()))
	a, ok := netip.AddrFromSlice(raw)
	if !ok && d.err == nil {
		d.err = fmt.Errorf("bad address of %d bytes", len(raw))
	}
	return a
}

func (d *recDec) name() string { return string(d.take(int(d.u16()))) }

// decodeDelta parses one WAL record, resolving persisted vantage-point
// IDs against the base campaign roster.
func decodeDelta(payload []byte, vpByID map[uint32]*pingsim.VP) (Delta, error) {
	d := &recDec{b: payload}
	if v := d.u8(); v > recVersion {
		return Delta{}, fmt.Errorf("record version %d is newer than supported %d", v, recVersion)
	}
	var out Delta
	nJoins := int(d.u32())
	for i := 0; i < nJoins && d.err == nil; i++ {
		j := Join{Iface: d.addr()}
		j.ASN = netsim.ASN(d.u32())
		j.PortMbps = int(d.u32())
		j.IXP = d.name()
		out.Joins = append(out.Joins, j)
	}
	nLeaves := int(d.u32())
	for i := 0; i < nLeaves && d.err == nil; i++ {
		k := Key{Iface: d.addr()}
		k.IXP = d.name()
		out.Leaves = append(out.Leaves, k)
	}
	nPing := int(d.u32())
	if nPing > 0 && d.err == nil {
		out.Ping = make(map[netip.Addr]pingsim.Override, nPing)
	}
	for i := 0; i < nPing && d.err == nil; i++ {
		ip := d.addr()
		ov := pingsim.Override{RTTMinMs: math.Float64frombits(d.u64())}
		id := d.u32()
		fl := d.u8()
		if id != noRecVP {
			vp, ok := vpByID[id]
			if !ok {
				return Delta{}, fmt.Errorf("record references unknown vantage point %d", id)
			}
			ov.BestVP = vp
		}
		ov.BestRoundsUp = fl&recFlagBestRoundsUp != 0
		ov.AnyRounding = fl&recFlagAnyRounding != 0
		out.Ping[ip] = ov
	}
	if d.err != nil {
		return Delta{}, d.err
	}
	if len(d.b) != 0 {
		return Delta{}, fmt.Errorf("record has %d trailing bytes", len(d.b))
	}
	return out, nil
}
