package rpi

import (
	"errors"
	"fmt"
	"log"
	"time"

	"rpeer/internal/core"
	"rpeer/internal/pingsim"
	"rpeer/internal/snapshot"
	"rpeer/internal/wal"
)

// Crash safety. A persistent engine (Open) journals every applied
// delta to an append-only, checksummed write-ahead log and
// periodically publishes columnar snapshots of its mutable state; the
// immutable bulk — the world, the colo database, the base campaign,
// the traceroute corpus — is regenerated from the base inputs, never
// stored. Recovery is
//
//	latest valid snapshot  →  restore columns over base  →  replay log tail
//
// and the determinism contract of the engine (post-Apply state ≡ cold
// rebuild over Inputs()) guarantees the recovered engine serves
// byte-identical reports.
//
// Ordering inside Apply is validate → log → mutate: the delta is fully
// validated first (a validated delta cannot fail to apply), then
// appended and — per the sync policy — fsynced, then applied in
// memory. A crash can therefore lose at most the one delta whose
// Apply never returned; every acknowledged delta is recovered under
// SyncEveryDelta. If an append or fsync fails, the engine declares
// persistence broken: reads keep serving, further Applies fail with
// ErrPersistence, and no more snapshots are published, so the durable
// state remains exactly the acknowledged prefix.

// SyncMode selects when the delta log is fsynced.
type SyncMode int

const (
	// SyncEveryDelta fsyncs the log record before Apply returns: an
	// acknowledged delta survives any crash. The default.
	SyncEveryDelta SyncMode = iota
	// SyncInterval fsyncs at most once per WithSyncInterval duration; a
	// crash can lose up to one interval of acknowledged deltas.
	SyncInterval
	// SyncOff leaves flushing to the OS. Benchmarks and bulk loads.
	SyncOff
)

// DefaultSnapshotEvery is how many deltas pass between automatic
// snapshots when WithSnapshotEvery is not given.
const DefaultSnapshotEvery = 64

// WithSync selects the delta-log fsync policy of a persistent engine.
func WithSync(m SyncMode) Option {
	return func(c *config) { c.sync.Mode = walMode(m) }
}

// WithSyncInterval selects SyncInterval with the given flush period.
func WithSyncInterval(d time.Duration) Option {
	return func(c *config) {
		c.sync.Mode = wal.SyncEveryInterval
		c.sync.Interval = d
	}
}

// WithSnapshotEvery sets how many applied deltas pass between
// automatic snapshots (0 disables automatic snapshots; Close still
// publishes a final one).
func WithSnapshotEvery(n int) Option {
	return func(c *config) {
		c.snapEvery = uint64(n)
		c.snapSet = true
	}
}

// WithLogger routes recovery and persistence warnings (torn-tail
// truncation, skipped snapshots, failed background snapshots) to l
// instead of the process-default logger.
func WithLogger(l *log.Logger) Option {
	return func(c *config) { c.logger = l }
}

func walMode(m SyncMode) wal.SyncMode {
	switch m {
	case SyncInterval:
		return wal.SyncEveryInterval
	case SyncOff:
		return wal.SyncNever
	}
	return wal.SyncEveryRecord
}

// persister is the engine's durable half: the open log segment and the
// snapshot directory state. Guarded by the engine's write lock.
type persister struct {
	fsys      wal.FS
	dir       string
	pol       wal.Policy
	snapEvery uint64
	logger    *log.Logger
	fp        uint64
	w         *wal.Writer
	// lastSnap is the seq of the newest published snapshot.
	lastSnap uint64
	// broken, once set, fails every further Apply with ErrPersistence:
	// the durable state is frozen at the acknowledged prefix.
	broken error
}

// RecoveryInfo reports what Open (or Replay) found in a data
// directory.
type RecoveryInfo struct {
	// SnapshotName and SnapshotSeq identify the snapshot recovery
	// started from ("" / 0 when recovery replayed from an empty state).
	SnapshotName string
	SnapshotSeq  uint64
	// SkippedSnapshots lists invalid snapshot files that were passed
	// over (with reasons) before a valid one was found.
	SkippedSnapshots []string
	// Replayed is the number of log records applied on top of the
	// snapshot.
	Replayed int
	// TornTail reports that the final log segment ended in a torn
	// record (the signature of a crash mid-append); TornReason says
	// what was wrong and TruncatedAt the byte offset the segment was
	// cut back to.
	TornTail    bool
	TornReason  string
	TruncatedAt int64
	// Seq is the engine's delta sequence after recovery.
	Seq uint64
}

// Open builds a persistent engine over a data directory. base must be
// the same inputs every run of this directory uses (same generator
// seed and scale — the fingerprint is checked against the durable
// state, and a mismatch fails with ErrBaseMismatch). An empty or
// missing directory starts a fresh engine at seq 0.
//
// Recovery loads the newest valid snapshot, restores its columns over
// base, replays every log record past the snapshot, truncates a torn
// final record (logging a warning — a torn tail is a crash artifact,
// not corruption), and fails with ErrCorruptLog if a damaged record
// has intact records after it (those cannot be trusted to be what was
// written). The returned RecoveryInfo says which path was taken.
func Open(dir string, base Inputs, opts ...Option) (*Engine, *RecoveryInfo, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.snapSet {
		cfg.snapEvery = DefaultSnapshotEvery
	}
	fsys := cfg.walFS
	if fsys == nil {
		fsys = wal.OS()
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, nil, fmt.Errorf("%w: create data dir: %v", ErrPersistence, err)
	}
	ctx, info, err := recoverState(fsys, dir, base, cfg, ^uint64(0), false)
	if err != nil {
		return nil, nil, err
	}
	e, err := buildEngine(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	e.seq = info.Seq
	fp := core.Fingerprint(base)
	w, err := wal.Create(fsys, dir, wal.SegmentName(e.seq),
		wal.Header{Fingerprint: fp, FirstSeq: e.seq}, cfg.sync)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: open log segment: %v", ErrPersistence, err)
	}
	e.pers = &persister{
		fsys: fsys, dir: dir, pol: cfg.sync,
		snapEvery: cfg.snapEvery, logger: cfg.logger,
		fp: fp, w: w, lastSnap: info.SnapshotSeq,
	}
	return e, info, nil
}

// Replay rebuilds an engine from a data directory's durable state up
// to (and including) delta sequence upTo, without attaching to the
// directory: the returned engine is in-memory (its Applies are not
// logged) and the directory is not written — a torn tail is tolerated
// but not truncated. Use ^uint64(0) to replay everything;
// cmd/rpi-replay drives this to inspect any historical state.
func Replay(dir string, base Inputs, upTo uint64, opts ...Option) (*Engine, *RecoveryInfo, error) {
	cfg := defaultConfig()
	for _, o := range opts {
		o(&cfg)
	}
	fsys := cfg.walFS
	if fsys == nil {
		fsys = wal.OS()
	}
	ctx, info, err := recoverState(fsys, dir, base, cfg, upTo, true)
	if err != nil {
		return nil, nil, err
	}
	e, err := buildEngine(ctx, cfg)
	if err != nil {
		return nil, nil, err
	}
	e.seq = info.Seq
	return e, info, nil
}

// recoverState restores a context from snapshot + log tail, applying
// only records with seq <= maxSeq. In readOnly mode the directory is
// never written (no torn-tail truncation).
func recoverState(fsys wal.FS, dir string, base Inputs, cfg config, maxSeq uint64, readOnly bool) (*core.Context, *RecoveryInfo, error) {
	if base.World == nil || base.Dataset == nil || base.Colo == nil {
		return nil, nil, fmt.Errorf("%w: World, Dataset and Colo are required", ErrMissingInput)
	}
	logger := cfg.logger
	if logger == nil {
		logger = log.Default()
	}
	fp := core.Fingerprint(base)
	info := &RecoveryInfo{}

	snap, snapName, skipped, ok, err := snapshot.Latest(fsys, dir, maxSeq)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: list snapshots: %v", ErrBadSnapshot, err)
	}
	info.SkippedSnapshots = skipped
	for _, s := range skipped {
		logger.Printf("rpi: recovery skipped invalid snapshot %s", s)
	}
	in := base
	if ok {
		if snap.Fingerprint != fp {
			return nil, nil, fmt.Errorf("%w: snapshot %s has fingerprint %016x, base is %016x",
				ErrBaseMismatch, snapName, snap.Fingerprint, fp)
		}
		in, err = core.RestoreInputs(base, snap)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
		}
		info.SnapshotName, info.SnapshotSeq = snapName, snap.Seq
		info.Seq = snap.Seq
	} else {
		in.Dataset = base.Dataset.Clone()
	}
	ctx, err := core.NewContext(in)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrMissingInput, err)
	}

	vpByID := make(map[uint32]*pingsim.VP)
	if base.Ping != nil {
		for _, vp := range base.Ping.VPs {
			vpByID[uint32(vp.ID)] = vp
		}
	}

	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: list log segments: %v", ErrCorruptLog, err)
	}
	var segs []string
	for _, n := range names {
		if _, isSeg := wal.ParseSegmentName(n); isSeg {
			segs = append(segs, n) // ReadDir sorts; fixed-width hex = seq order
		}
	}
	return replaySegments(fsys, dir, segs, ctx, vpByID, fp, maxSeq, readOnly, logger, info)
}

// replaySegments applies every log record past info.Seq (and <=
// maxSeq) to ctx, handling torn tails and corruption per the recovery
// state machine documented on Open.
func replaySegments(fsys wal.FS, dir string, segs []string, ctx *core.Context, vpByID map[uint32]*pingsim.VP, fp, maxSeq uint64, readOnly bool, logger *log.Logger, info *RecoveryInfo) (*core.Context, *RecoveryInfo, error) {
	cur := info.Seq
	for i, name := range segs {
		path := dir + "/" + name
		last := i == len(segs)-1
		type rec struct {
			seq     uint64
			payload []byte
		}
		// Records are buffered and applied only after the whole segment
		// scans clean: applying as we go would leave the context mutated
		// by records that precede an interior corruption. Tails are
		// short (a snapshot rotates the log), so the buffer stays small.
		var pending []rec
		nameSeq, _ := wal.ParseSegmentName(name)
		recSeq := nameSeq
		scan, err := wal.Scan(fsys, path, func(off int64, payload []byte) error {
			recSeq++
			if recSeq <= info.Seq || recSeq > maxSeq {
				return nil // covered by the snapshot / past the replay bound
			}
			pending = append(pending, rec{seq: recSeq, payload: append([]byte(nil), payload...)})
			return nil
		})
		if err != nil {
			var ce *wal.CorruptError
			if errors.As(err, &ce) {
				// Both sentinels stay unwrappable: errors.Is(err,
				// ErrCorruptLog) for the caller's dispatch, errors.As for
				// the damage offset.
				return nil, nil, fmt.Errorf("%w: %w", ErrCorruptLog, ce)
			}
			return nil, nil, fmt.Errorf("%w: scan %s: %v", ErrCorruptLog, name, err)
		}
		if scan.GoodLen > 0 { // a valid header frame was read
			if scan.Header.Fingerprint != fp {
				return nil, nil, fmt.Errorf("%w: segment %s has fingerprint %016x, base is %016x",
					ErrBaseMismatch, name, scan.Header.Fingerprint, fp)
			}
			if scan.Header.FirstSeq != nameSeq {
				return nil, nil, fmt.Errorf("%w: segment %s header claims first seq %d", ErrCorruptLog, name, scan.Header.FirstSeq)
			}
		}
		if scan.Torn {
			if !last {
				// A torn interior segment means records were lost with
				// later segments present: not a tail crash.
				return nil, nil, fmt.Errorf("%w: segment %s is torn (%s) but later segments exist",
					ErrCorruptLog, name, scan.TornReason)
			}
			info.TornTail = true
			info.TornReason = scan.TornReason
			info.TruncatedAt = scan.GoodLen
			if readOnly {
				logger.Printf("rpi: recovery found torn log tail in %s (%s); read-only replay, not truncating", name, scan.TornReason)
			} else {
				logger.Printf("rpi: recovery truncating torn log tail in %s at byte %d (%s)", name, scan.GoodLen, scan.TornReason)
				if err := fsys.Truncate(path, scan.GoodLen); err != nil {
					return nil, nil, fmt.Errorf("%w: truncate torn tail of %s: %v", ErrPersistence, name, err)
				}
			}
		}
		for _, r := range pending {
			if r.seq != cur+1 {
				return nil, nil, fmt.Errorf("%w: segment %s jumps from seq %d to %d (missing records)",
					ErrCorruptLog, name, cur, r.seq)
			}
			d, err := decodeDelta(r.payload, vpByID)
			if err != nil {
				return nil, nil, fmt.Errorf("%w: record %d in %s: %v", ErrCorruptLog, r.seq, name, err)
			}
			if err := ctx.Apply(core.Delta(d)); err != nil {
				return nil, nil, fmt.Errorf("%w: record %d in %s does not apply: %v", ErrCorruptLog, r.seq, name, err)
			}
			cur = r.seq
			info.Replayed++
		}
	}
	info.Seq = cur
	return ctx, info, nil
}

// Checkpoint publishes a snapshot of the engine's current state and
// rotates the delta log, shortening the next recovery's replay to
// zero. It is a no-op (and returns nil) on an in-memory engine or when
// the current seq is already snapshotted.
func (e *Engine) Checkpoint() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.pers == nil || e.pers.lastSnap == e.seq {
		return nil
	}
	if e.pers.broken != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, e.pers.broken)
	}
	return e.snapshotLocked(true)
}

// snapshotLocked publishes a snapshot at the current seq and, when
// rotate is set, starts a fresh log segment (records at or below the
// snapshot seq are then never replayed). Caller holds the write lock.
func (e *Engine) snapshotLocked(rotate bool) error {
	p := e.pers
	s := e.ctx.DumpColumns()
	s.Seq, s.Fingerprint = e.seq, p.fp
	if _, err := snapshot.Write(p.fsys, p.dir, s); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	p.lastSnap = e.seq
	if !rotate {
		return nil
	}
	if err := p.w.Close(); err != nil {
		p.broken = err
		return fmt.Errorf("%w: close log segment: %v", ErrPersistence, err)
	}
	w, err := wal.Create(p.fsys, p.dir, wal.SegmentName(e.seq),
		wal.Header{Fingerprint: p.fp, FirstSeq: e.seq}, p.pol)
	if err != nil {
		p.broken = err
		return fmt.Errorf("%w: rotate log segment: %v", ErrPersistence, err)
	}
	p.w = w
	return nil
}

// logDelta journals a validated, resolved delta before it mutates the
// engine. Caller holds the write lock.
func (e *Engine) logDelta(d Delta) error {
	p := e.pers
	if p.broken != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, p.broken)
	}
	if err := e.ctx.ValidateDelta(core.Delta(d)); err != nil {
		return fmt.Errorf("%w: %v", ErrBadDelta, err)
	}
	if err := p.w.Append(encodeDelta(d)); err != nil {
		p.broken = err
		return fmt.Errorf("%w: append delta record: %v", ErrPersistence, err)
	}
	return nil
}

// maybeSnapshot publishes an automatic snapshot when enough deltas
// have accumulated since the last one. Failures are logged, not
// returned: a missed snapshot only lengthens the next recovery's
// replay, and the log append that matters has already succeeded.
func (e *Engine) maybeSnapshot() {
	p := e.pers
	if p == nil || p.broken != nil || p.snapEvery == 0 || e.seq-p.lastSnap < p.snapEvery {
		return
	}
	if err := e.snapshotLocked(true); err != nil {
		logger := p.logger
		if logger == nil {
			logger = log.Default()
		}
		logger.Printf("rpi: automatic snapshot at seq %d failed: %v", e.seq, err)
	}
}
