package rpi

import (
	"fmt"
	"sync"

	"rpeer/internal/alias"
	"rpeer/internal/core"
	"rpeer/internal/geo"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/registry"
	"rpeer/internal/tracesim"
	"rpeer/internal/traix"
)

// The SDK re-exports the inference data model, so consumers never
// import internal/core directly.
type (
	// Inputs bundles the observable artefacts the engine consumes.
	Inputs = core.Inputs
	// Report is the inference output: one verdict per membership plus
	// the classified multi-IXP routers.
	Report = core.Report
	// Inference is the verdict for one member interface at one IXP.
	Inference = core.Inference
	// Key identifies one membership.
	Key = core.Key
	// PeerClass is the inference outcome (local / remote / unknown).
	PeerClass = core.PeerClass
	// Step identifies which methodology step decided a verdict.
	Step = core.Step
	// RouterClass is the multi-IXP router taxonomy.
	RouterClass = core.RouterClass
	// MultiIXPRouter is one alias-resolved router facing several IXPs.
	MultiIXPRouter = core.MultiIXPRouter
	// Metrics are the validation metrics (Table 3).
	Metrics = core.Metrics
	// Validation is the ground-truth validation dataset.
	Validation = core.Validation
	// ValidationConfig controls validation-set construction.
	ValidationConfig = core.ValidationConfig
	// AliasMode selects the alias-resolution trade-off.
	AliasMode = alias.Mode
	// PingResult is a ping campaign outcome (Inputs.Ping).
	PingResult = pingsim.Result
)

// Verdict classes.
const (
	ClassUnknown = core.ClassUnknown
	ClassLocal   = core.ClassLocal
	ClassRemote  = core.ClassRemote
)

// Methodology steps.
const (
	StepNone         = core.StepNone
	StepPortCapacity = core.StepPortCapacity
	StepRTTColo      = core.StepRTTColo
	StepMultiIXP     = core.StepMultiIXP
	StepPrivate      = core.StepPrivate
	StepBaseline     = core.StepBaseline
)

// Multi-IXP router classes.
const (
	RouterUnclassified = core.RouterUnclassified
	RouterLocal        = core.RouterLocal
	RouterRemote       = core.RouterRemote
	RouterHybrid       = core.RouterHybrid
)

// Alias-resolution modes.
const (
	AliasPrecision = alias.ModePrecision
	AliasCoverage  = alias.ModeCoverage
)

// DefaultBaselineThresholdMs is the Castro et al. remoteness
// threshold (10 ms).
const DefaultBaselineThresholdMs = core.DefaultBaselineThresholdMs

// BuildValidation assembles the ground-truth validation dataset from a
// world (the only ground-truth read in the system).
func BuildValidation(w *netsim.World, cfg ValidationConfig) *Validation {
	return core.BuildValidation(w, cfg)
}

// DefaultValidationConfig mirrors the paper's Table 2 scale.
func DefaultValidationConfig() ValidationConfig {
	return core.DefaultValidationConfig()
}

// Evaluate scores a report against a validation dataset.
func Evaluate(rep *Report, v *Validation) Metrics {
	return core.Evaluate(rep, v)
}

// StepInferences filters a report down to one step's verdicts.
func StepInferences(rep *Report, s Step) *Report {
	return core.StepInferences(rep, s)
}

// SyntheticInputs generates a complete synthetic input world at the
// given scale factor (1 = the paper-sized default world; see
// netsim.ScaledConfig): the seeded world, the merged registry dataset,
// the colocation database, a full ping campaign and a traceroute
// corpus. The independent stages build concurrently; the result is
// deterministic in (seed, scale).
func SyntheticInputs(seed int64, scale int) (Inputs, error) {
	cfg := netsim.DefaultConfig()
	if scale > 1 {
		cfg = netsim.ScaledConfig(scale)
	}
	return syntheticInputs(cfg, seed)
}

// InputsFromConfig builds the full input bundle over an explicit world
// config — the seam in-module tooling (cmd/rpi-chaos) uses to run real
// engine histories over a netsim.TinyConfig world in milliseconds
// instead of the paper-sized default.
func InputsFromConfig(cfg netsim.Config, seed int64) (Inputs, error) {
	return syntheticInputs(cfg, seed)
}

// syntheticInputs builds the full input bundle over any world config —
// the seam the crash-recovery tests use to run real engine histories
// over a netsim.TinyConfig world in milliseconds.
func syntheticInputs(cfg netsim.Config, seed int64) (Inputs, error) {
	cfg.Seed = seed
	w, err := netsim.Generate(cfg)
	if err != nil {
		return Inputs{}, fmt.Errorf("rpi: generate world: %w", err)
	}
	var (
		wg    sync.WaitGroup
		ds    *registry.Dataset
		colo  *registry.ColoDB
		ping  *pingsim.Result
		paths []*traix.Path
	)
	wg.Add(4)
	go func() {
		defer wg.Done()
		ds = registry.Build(w, registry.DefaultNoise(), seed+1)
	}()
	go func() {
		defer wg.Done()
		colo = registry.BuildColo(w, registry.DefaultColoNoise(), seed+2)
	}()
	go func() {
		defer wg.Done()
		vps := pingsim.DeriveVPs(w, seed+3)
		pcfg := pingsim.DefaultCampaign()
		pcfg.Seed = seed + 4
		ping = pingsim.RunParallel(w, vps, pcfg, 0)
	}()
	go func() {
		defer wg.Done()
		tcfg := tracesim.DefaultConfig()
		tcfg.Seed = seed + 5
		paths = tracesim.Generate(w, tcfg)
	}()
	wg.Wait()
	return Inputs{
		World: w, Dataset: ds, Colo: colo, Ping: ping, Paths: paths,
		Speed: geo.DefaultSpeedModel(), Seed: seed + 6,
	}, nil
}
