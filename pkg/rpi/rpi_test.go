package rpi

import (
	"bytes"
	"context"
	"errors"
	"net/netip"
	"sync"
	"testing"

	"rpeer/internal/evolve"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
)

var (
	fixOnce sync.Once
	fixIn   Inputs
	fixErr  error
)

func testInputs(t testing.TB) Inputs {
	t.Helper()
	fixOnce.Do(func() {
		fixIn, fixErr = SyntheticInputs(1, 1)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixIn
}

func TestNewRequiresInputs(t *testing.T) {
	if _, err := New(Inputs{}); !errors.Is(err, ErrMissingInput) {
		t.Fatalf("err = %v, want ErrMissingInput", err)
	}
}

func TestEngineSnapshotShape(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	rep := eng.Snapshot()
	if len(rep.Inferences) == 0 || len(rep.MultiRouters) == 0 {
		t.Fatalf("degenerate snapshot: %d inferences, %d routers",
			len(rep.Inferences), len(rep.MultiRouters))
	}
	base, err := eng.Baseline()
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Inferences) != len(rep.Inferences) {
		t.Fatal("baseline domain differs from pipeline domain")
	}
	if _, err := eng.ReportFor(context.Background(), "no-such-ixp"); !errors.Is(err, ErrUnknownIXP) {
		t.Fatalf("err = %v, want ErrUnknownIXP", err)
	}
}

// TestEngineDoesNotMutateCallerInputs pins the ownership contract: the
// engine clones the dataset, so applied deltas never leak out.
func TestEngineDoesNotMutateCallerInputs(t *testing.T) {
	in := testInputs(t)
	before := len(in.Dataset.IfaceIXP)
	eng, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), ChurnDelta(eng.Inputs(), 0.01, 7)); err != nil {
		t.Fatal(err)
	}
	if len(in.Dataset.IfaceIXP) != before {
		t.Fatal("Apply mutated the caller's dataset")
	}
}

// TestApplyMatchesColdEngine is the acceptance contract of the
// incremental path: after a 1% churn delta, the engine's snapshot must
// be byte-identical (on the wire) to a cold engine built over the
// post-delta inputs.
func TestApplyMatchesColdEngine(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	d := ChurnDelta(eng.Inputs(), 0.01, 42)
	if len(d.Joins) == 0 || len(d.Leaves) == 0 {
		t.Fatalf("degenerate churn delta: %d joins, %d leaves", len(d.Joins), len(d.Leaves))
	}
	up, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if up.Seq != 1 || len(up.Changes) == 0 {
		t.Fatalf("update = seq %d with %d changes, want seq 1 with changes", up.Seq, len(up.Changes))
	}

	cold, err := New(eng.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	warmBytes, err := MarshalReport(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	coldBytes, err := MarshalReport(cold.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmBytes, coldBytes) {
		t.Fatalf("incremental snapshot diverges from cold rebuild (%d vs %d bytes)",
			len(warmBytes), len(coldBytes))
	}
}

// TestApplyEvolveAndRecampaign wires the delta constructors end to
// end: a simulated churn month and a refreshed ping campaign, applied
// incrementally, must still match a cold rebuild.
func TestApplyEvolveAndRecampaign(t *testing.T) {
	in := testInputs(t)
	eng, err := New(in)
	if err != nil {
		t.Fatal(err)
	}
	var ixps []netsim.IXPID
	for _, ix := range in.World.IXPs {
		ixps = append(ixps, ix.ID)
	}
	series := evolve.Simulate(in.World, ixps, evolve.DefaultConfig())
	month := series.Months[0]
	if _, err := eng.Apply(context.Background(), DeltaFromChurn(eng.Inputs(), month, 5)); err != nil {
		t.Fatal(err)
	}

	pcfg := pingsim.DefaultCampaign()
	pcfg.Seed = 777
	refresh := pingsim.Run(in.World, in.Ping.VPs, pcfg)
	if _, err := eng.Apply(context.Background(), RecampaignDelta(refresh)); err != nil {
		t.Fatal(err)
	}
	if eng.Seq() != 2 {
		t.Fatalf("seq = %d, want 2", eng.Seq())
	}

	cold, err := New(eng.Inputs())
	if err != nil {
		t.Fatal(err)
	}
	a, _ := MarshalReport(eng.Snapshot())
	b, _ := MarshalReport(cold.Snapshot())
	if !bytes.Equal(a, b) {
		t.Fatal("evolve+recampaign deltas diverge from cold rebuild")
	}
}

// TestApplyInverseRoundTrip pins the benchmark workload: a delta
// followed by its inverse restores the original verdict set.
func TestApplyInverseRoundTrip(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	before, err := MarshalReport(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	d := ChurnDelta(eng.Inputs(), 0.01, 13)
	inv := InvertDelta(eng.Inputs(), d)
	if _, err := eng.Apply(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Apply(context.Background(), inv); err != nil {
		t.Fatal(err)
	}
	after, err := MarshalReport(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	// Port refreshes are not rolled back; compare domains only when the
	// delta carried no port rows, otherwise compare sizes.
	if !bytes.Equal(before, after) {
		repA, _ := UnmarshalReport(before)
		repB, _ := UnmarshalReport(after)
		if repA.Summary.Total != repB.Summary.Total {
			t.Fatalf("round trip changed the domain: %d vs %d memberships",
				repA.Summary.Total, repB.Summary.Total)
		}
	}
}

func TestSubscribeStreamsChanges(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := eng.Subscribe(4)
	defer cancel()
	d := ChurnDelta(eng.Inputs(), 0.005, 21)
	up, err := eng.Apply(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	got := <-ch
	if got.Seq != up.Seq || len(got.Changes) != len(up.Changes) {
		t.Fatalf("subscriber saw seq %d (%d changes), apply returned seq %d (%d changes)",
			got.Seq, len(got.Changes), up.Seq, len(up.Changes))
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("cancel did not close the channel")
	}

	eng.Close()
	if _, err := eng.Apply(context.Background(), d); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

func TestApplyRejectsBadDelta(t *testing.T) {
	eng, err := New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	var k Key
	for key := range eng.Snapshot().Inferences {
		k = key
		break
	}
	bad := Delta{Joins: []Join{{IXP: k.IXP, Iface: k.Iface, ASN: 99}}}
	if _, err := eng.Apply(context.Background(), bad); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta", err)
	}
	if eng.Seq() != 0 {
		t.Fatal("rejected delta bumped the sequence number")
	}
	// An empty delta is a no-op: no re-run, no sequence bump.
	up, err := eng.Apply(context.Background(), Delta{})
	if err != nil || up.Seq != 0 || len(up.Changes) != 0 {
		t.Fatalf("empty delta: up=%+v err=%v, want no-op", up, err)
	}
	// A measured override without a vantage point resolves to the
	// interface's current best VP — and fails cleanly when it has none.
	var unmeasured Key
	for key, inf := range eng.Snapshot().Inferences {
		if !inf.HasRTT() {
			unmeasured = key
			break
		}
	}
	if !unmeasured.Iface.IsValid() {
		t.Fatal("fixture has no unmeasured interface")
	}
	noVP := Delta{Ping: map[netip.Addr]pingsim.Override{unmeasured.Iface: {RTTMinMs: 5}}}
	if _, err := eng.Apply(context.Background(), noVP); !errors.Is(err, ErrBadDelta) {
		t.Fatalf("err = %v, want ErrBadDelta for unmeasured iface without VP", err)
	}
	var measured Key
	for key, inf := range eng.Snapshot().Inferences {
		if inf.HasRTT() && !inf.TraceRTT {
			measured = key
			break
		}
	}
	inherit := Delta{Ping: map[netip.Addr]pingsim.Override{measured.Iface: {RTTMinMs: 5}}}
	if _, err := eng.Apply(context.Background(), inherit); err != nil {
		t.Fatalf("VP inheritance failed for measured iface: %v", err)
	}
}

func TestWithStepsRestrictsPipeline(t *testing.T) {
	eng, err := New(testInputs(t), WithSteps(StepPortCapacity), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, inf := range eng.Snapshot().Inferences {
		if inf.Class != ClassUnknown && inf.Step != StepPortCapacity {
			t.Fatalf("step %v decided a verdict despite WithSteps(StepPortCapacity)", inf.Step)
		}
	}
}
