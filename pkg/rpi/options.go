package rpi

import (
	"log"

	"rpeer/internal/core"
	"rpeer/internal/wal"
)

// config is the resolved engine configuration.
type config struct {
	opt       core.Options
	order     []core.Step // nil = the paper's 1, 2+3, 4, 5 order
	threshold float64

	// Persistence knobs (Open/Replay only; New ignores them).
	sync      wal.Policy
	snapEvery uint64
	snapSet   bool // WithSnapshotEvery given (0 means "disabled", not "default")
	logger    *log.Logger
	walFS     wal.FS

	// applyHook, when set, runs inside Apply after the delta is
	// journaled and before memory is mutated (WithApplyHook).
	applyHook func(seq uint64, d Delta)
}

func defaultConfig() config {
	return config{
		opt:       core.DefaultOptions(),
		threshold: core.DefaultBaselineThresholdMs,
	}
}

// Option configures an Engine at construction.
type Option func(*config)

// WithWorkers bounds the shard pool the per-membership classification
// fans out over: 0 (the default) uses one worker per CPU, 1 runs
// serially. Reports are bit-identical for every worker count.
func WithWorkers(n int) Option {
	return func(c *config) { c.opt.Workers = n }
}

// WithThreshold sets the RTT threshold (milliseconds) of the Castro et
// al. baseline served by Engine.Baseline. The default is 10 ms.
func WithThreshold(ms float64) Option {
	return func(c *config) { c.threshold = ms }
}

// WithSteps restricts the pipeline to the given steps, in the given
// order (the step-ordering ablation). The default is the paper's full
// sequence: port capacity, RTT+colocation, multi-IXP, private links.
func WithSteps(steps ...Step) Option {
	return func(c *config) {
		c.order = append([]core.Step(nil), steps...)
		c.opt.EnablePortCapacity = false
		c.opt.EnableRTTColo = false
		c.opt.EnableMultiIXP = false
		c.opt.EnablePrivate = false
		for _, s := range steps {
			switch s {
			case core.StepPortCapacity:
				c.opt.EnablePortCapacity = true
			case core.StepRTTColo:
				c.opt.EnableRTTColo = true
			case core.StepMultiIXP:
				c.opt.EnableMultiIXP = true
			case core.StepPrivate:
				c.opt.EnablePrivate = true
			}
		}
	}
}

// WithAliasMode selects the alias-resolution confidence trade-off
// (AliasPrecision by default, AliasCoverage for broader clusters).
func WithAliasMode(m AliasMode) Option {
	return func(c *config) { c.opt.AliasMode = m }
}

// WithTracerouteRTT enables the "Beyond Pings" extension: interfaces
// without ping coverage receive traceroute-derived RTT minimums.
func WithTracerouteRTT() Option {
	return func(c *config) { c.opt.UseTracerouteRTT = true }
}

// WithoutVminBound zeroes the lower distance bound of the feasible
// ring (the vmin ablation).
func WithoutVminBound() Option {
	return func(c *config) { c.opt.DisableVminBound = true }
}

// WithApplyHook installs a fault-injection hook that Apply calls with
// the sequence number it is about to commit, after the delta is
// journaled and before memory is mutated. A hook that panics models an
// engine bug at the worst possible moment (delta durable, state not
// yet updated) — the lever the supervisor quarantine tests and the
// chaos harness pull. Production engines leave it nil.
func WithApplyHook(h func(seq uint64, d Delta)) Option {
	return func(c *config) { c.applyHook = h }
}

// WithWALFS swaps the filesystem seam underneath a persistent engine's
// log and snapshot stores. The fault-injection hook of the crash tests
// and the chaos harness (wal.NewMemFS); production engines keep the
// default OS filesystem.
func WithWALFS(fsys wal.FS) Option {
	return func(c *config) { c.walFS = fsys }
}
