// Package serve exposes rpi engines over HTTP/JSON: the
// traffic-serving front end of the inference system (cmd/rpi-serve is
// the binary). All responses use the versioned /v1 wire schema of
// package rpi.
//
// Two front ends share one handler core:
//
//   - Server wraps a single supervised engine (the original
//     single-tenant plane);
//   - HostServer (host.go) wraps an internal/host multi-engine host —
//     one engine per tenant behind /v1/t/{tenant}/..., with tenant
//     lifecycle endpoints and the legacy single-tenant routes aliased
//     to a default tenant.
//
// Single-tenant endpoints:
//
//	GET  /healthz          liveness + delta sequence number
//	GET  /readyz           readiness: 200 once the engine is built/recovered
//	GET  /v1/infer         full wire report (current snapshot)
//	GET  /v1/report/{ixp}  one IXP's wire report
//	POST /v1/apply         apply a world delta, returns the verdict changes
//	GET  /v1/stream        server-sent events: verdict changes as they land
//
// Liveness and readiness are distinct probes: /healthz answers 200 as
// soon as the listener is up (the process is alive — don't kill it),
// while /readyz answers 503 until the engine has finished building or
// recovering from its data directory, and again while a quarantined
// engine is healing (don't route traffic yet — though reads that do
// arrive are still served from the last good snapshot).
//
// The server is overload-safe by construction: every /v1 endpoint
// passes through per-class admission control (internal/admission) and
// answers 503 + Retry-After instead of queueing unboundedly; request
// deadlines propagate into the engine (a caller that gives up stops
// costing anything); and the engine sits behind a supervisor.Guard, so
// a panic escaping Apply quarantines the engine (reads keep serving,
// writes answer 503) while a background re-Open heals it from the
// write-ahead log.
//
// Full-report reads are served from a per-publication byte cache: the
// wire report is marshaled once per (guard generation, delta seq) and
// every further GET /v1/infer at that publication is a buffer write,
// not a re-marshal — under heavy read load the hot path does no
// allocation proportional to the world.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math"
	"net/http"
	"net/netip"
	"sync/atomic"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/host"
	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/internal/supervisor"
	"rpeer/pkg/rpi"
)

// StatusClientClosedRequest is the nginx-convention status for "the
// client disconnected before the response was ready". It never reaches
// the (gone) client; it makes access logs and metrics tell the truth.
const StatusClientClosedRequest = 499

// Config tunes the serving plane. The zero value is production-safe:
// machine-scaled admission limits, no request timeout, 5s stream write
// timeout, 15s stream heartbeat, 64-update stream buffers.
type Config struct {
	// Admission bounds per-class concurrency; zero-valued classes take
	// admission.DefaultConfig. Admission.TenantShare bounds one
	// tenant's share of each class on a HostServer.
	Admission admission.Config
	// RequestTimeout caps the end-to-end time of non-streaming requests
	// (queue wait + engine work + marshal). Zero means no cap.
	RequestTimeout time.Duration
	// StreamWriteTimeout bounds one SSE write: a consumer that cannot
	// drain an event batch within it is disconnected (it can resubscribe
	// and resynchronize from /v1/infer).
	StreamWriteTimeout time.Duration
	// StreamHeartbeat is the idle keep-alive interval on /v1/stream.
	StreamHeartbeat time.Duration
	// StreamBuffer is the per-subscriber update buffer; a consumer that
	// falls further behind has its oldest updates shed by the engine
	// (rpi.dropped_updates counts them).
	StreamBuffer int
	// Logger receives handler panics and client-gone notices (default
	// log.Default()).
	Logger *log.Logger
}

func (c Config) withDefaults() Config {
	if c.StreamWriteTimeout <= 0 {
		c.StreamWriteTimeout = 5 * time.Second
	}
	if c.StreamHeartbeat <= 0 {
		c.StreamHeartbeat = 15 * time.Second
	}
	if c.StreamBuffer <= 0 {
		c.StreamBuffer = 64
	}
	if c.Logger == nil {
		c.Logger = log.Default()
	}
	return c
}

// backend is one supervised engine as the handler core sees it: the
// guard plus the per-publication caches that make repeated reads
// cheap. The single-tenant Server owns exactly one; the HostServer
// keeps one per tenant (reset when a tenant's guard is replaced after
// idle eviction).
type backend struct {
	tenant string // "" on the single-tenant plane
	g      *supervisor.Guard

	// vps caches the VP index of the current engine publication (see
	// vpIndex); rebuilt only when the supervisor swaps engines.
	vps atomic.Pointer[vpCache]
	// rep caches the marshaled full wire report of the current
	// publication, keyed on (generation, seq): under read load
	// GET /v1/infer is a buffer write, not a re-marshal.
	rep atomic.Pointer[cachedReport]
}

// cachedReport is one publication's pre-marshaled /v1 wire bytes.
type cachedReport struct {
	gen, seq uint64
	body     []byte
}

// plane is the handler core shared by the single-tenant Server and the
// multi-tenant HostServer: admission, config, panic net, and the
// per-backend endpoint logic.
type plane struct {
	adm *admission.Controller
	cfg Config
	mux *http.ServeMux

	// panics counts handler panics absorbed by the recover middleware
	// (read-path bugs: the engine quarantine is the guard's job).
	panics atomic.Uint64
}

func newPlane(cfg Config) plane {
	return plane{adm: admission.New(cfg.Admission), cfg: cfg.withDefaults(), mux: http.NewServeMux()}
}

// Server is the HTTP facade over one supervised engine. Queries run
// under the engine's read lock and scale across connections; applies
// serialize behind its write lock; all of it is bounded by admission
// control and survives engine faults via the supervisor.
type Server struct {
	plane
	be backend
}

// New builds the HTTP handler over a shared engine, ready immediately.
// The engine is wrapped in a supervisor without a reopen path: a fault
// quarantines it permanently (reads keep serving). Binaries that want
// self-healing build the guard themselves and use NewSupervised.
func New(eng *rpi.Engine) *Server {
	s := NewPending()
	s.SetEngine(eng)
	return s
}

// NewPending builds the HTTP handler with no engine yet: /healthz
// reports alive, /readyz and every /v1 endpoint answer 503 until
// SetEngine. This is how a binary can bind its port before recovery
// so that orchestrators see liveness during a long replay.
func NewPending() *Server {
	return NewSupervised(supervisor.New(supervisor.Options{}), Config{})
}

// NewSupervised builds the HTTP handler over a caller-owned supervisor
// guard — the full-fat constructor: the guard brings quarantine and
// self-healing, cfg brings admission limits and deadlines.
func NewSupervised(g *supervisor.Guard, cfg Config) *Server {
	s := &Server{plane: newPlane(cfg), be: backend{g: g}}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/infer", s.admitted(admission.Read, "", func(w http.ResponseWriter, r *http.Request) {
		s.infer(w, r, &s.be)
	}))
	s.mux.HandleFunc("GET /v1/report/{ixp}", s.admitted(admission.Cheap, "", func(w http.ResponseWriter, r *http.Request) {
		s.report(w, r, &s.be, r.PathValue("ixp"))
	}))
	s.mux.HandleFunc("POST /v1/apply", s.admitted(admission.Write, "", func(w http.ResponseWriter, r *http.Request) {
		s.apply(w, r, &s.be)
	}))
	s.mux.HandleFunc("GET /v1/stream", s.admitted(admission.Stream, "", func(w http.ResponseWriter, r *http.Request) {
		s.stream(w, r, &s.be)
	}))
	return s
}

// SetEngine publishes the engine and flips the server ready. Safe to
// call from the recovery goroutine while requests are being served.
func (s *Server) SetEngine(eng *rpi.Engine) { s.be.g.Publish(eng) }

// Ready reports whether an engine is published and writable.
func (s *Server) Ready() bool { return s.be.g.Ready() }

// Guard exposes the supervisor for binaries that wire recovery or
// publish its stats.
func (s *Server) Guard() *supervisor.Guard { return s.be.g }

// Admission exposes the admission controller (expvar publication).
func (p *plane) Admission() *admission.Controller { return p.adm }

// HandlerPanics returns the number of handler panics absorbed so far.
func (p *plane) HandlerPanics() uint64 { return p.panics.Load() }

// respWriter tracks whether the response has been committed, so the
// panic middleware knows if a 500 can still be sent, and unreachable
// clients can be detected. Unwrap keeps http.ResponseController (SSE
// flushes and write deadlines) working through the wrapper.
type respWriter struct {
	http.ResponseWriter
	wroteHeader bool
}

func (rw *respWriter) WriteHeader(code int) {
	rw.wroteHeader = true
	rw.ResponseWriter.WriteHeader(code)
}

func (rw *respWriter) Write(b []byte) (int, error) {
	rw.wroteHeader = true
	return rw.ResponseWriter.Write(b)
}

func (rw *respWriter) Unwrap() http.ResponseWriter { return rw.ResponseWriter }

// ServeHTTP implements http.Handler: no-store headers (every response
// reflects live, churning state), then the panic net, then the mux.
func (p *plane) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rw := &respWriter{ResponseWriter: w}
	rw.Header().Set("Cache-Control", "no-store")
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler { //nolint:errorlint // sentinel by identity, per net/http docs
				panic(rec)
			}
			p.panics.Add(1)
			p.cfg.Logger.Printf("serve: panic in %s %s: %v", r.Method, r.URL.Path, rec)
			if !rw.wroteHeader {
				http.Error(rw, "internal error", http.StatusInternalServerError)
			}
		}
	}()
	p.mux.ServeHTTP(rw, r)
}

// admitted wraps a handler in admission control and the request
// deadline: the slot is held for the handler's whole run, and the
// request context carries the configured timeout so the deadline
// reaches the engine (streams are exempt from the timeout — they are
// supposed to be long-lived). A non-empty tenant attributes the
// request and applies the per-tenant fairness cap.
func (p *plane) admitted(cl admission.Class, tenant string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if p.cfg.RequestTimeout > 0 && cl != admission.Stream {
			ctx, cancel := context.WithTimeout(r.Context(), p.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := p.adm.AdmitTenant(r.Context(), cl, tenant)
		if err != nil {
			p.writeError(w, r, err)
			return
		}
		defer release()
		h(w, r)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"ok": true}
	if eng := s.be.g.Engine(); eng != nil {
		body["seq"] = eng.Seq()
	} else {
		body["recovering"] = true
	}
	if s.be.g.Quarantined() {
		body["quarantined"] = true
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	eng := s.be.g.Engine()
	switch {
	case eng == nil:
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
	case s.be.g.Quarantined():
		// Healing: stop routing new traffic here, but requests that do
		// arrive are answered from the last good snapshot.
		w.Header().Set("Retry-After", "1")
		s.writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "quarantined": true})
	default:
		s.writeJSON(w, http.StatusOK, map[string]any{"ready": true, "seq": eng.Seq()})
	}
}

// infer serves the full wire report, from the backend's byte cache
// when the publication has not moved since the last marshal.
func (p *plane) infer(w http.ResponseWriter, r *http.Request, be *backend) {
	rep, gen, seq, err := be.g.Published()
	if err != nil {
		p.writeError(w, r, err)
		return
	}
	if c := be.rep.Load(); c != nil && c.gen == gen && c.seq == seq {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(c.body)
		return
	}
	b, err := rpi.MarshalReportCtx(r.Context(), rep)
	if err != nil {
		p.writeError(w, r, err)
		return
	}
	// Concurrent misses marshal the same publication to identical
	// bytes; last store wins, all are correct.
	be.rep.Store(&cachedReport{gen: gen, seq: seq, body: b})
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (p *plane) report(w http.ResponseWriter, r *http.Request, be *backend, ixp string) {
	rep, err := be.g.ReportFor(r.Context(), ixp)
	if err != nil {
		p.writeError(w, r, err)
		return
	}
	p.writeReport(w, r, rep)
}

// WireDelta is the JSON body of POST /v1/apply.
type WireDelta struct {
	Joins  []WireJoin `json:"joins,omitempty"`
	Leaves []WireKey  `json:"leaves,omitempty"`
	RTT    []WireRTT  `json:"rtt,omitempty"`
}

// WireJoin is one membership join.
type WireJoin struct {
	IXP      string `json:"ixp"`
	Iface    string `json:"iface"`
	ASN      uint32 `json:"asn"`
	PortMbps int    `json:"port_mbps,omitempty"`
}

// WireKey identifies one membership.
type WireKey struct {
	IXP   string `json:"ixp"`
	Iface string `json:"iface"`
}

// WireRTT is one refreshed RTT aggregate. VPID selects the measuring
// vantage point; when omitted the interface's current best VP is kept.
// Drop revokes the interface's measurement instead.
type WireRTT struct {
	Iface    string  `json:"iface"`
	RTTMinMs float64 `json:"rtt_min_ms"`
	VPID     *int    `json:"vp_id,omitempty"`
	RoundsUp bool    `json:"rounds_up,omitempty"`
	Drop     bool    `json:"drop,omitempty"`
}

func (p *plane) apply(w http.ResponseWriter, r *http.Request, be *backend) {
	eng := be.g.Engine()
	if eng == nil {
		p.writeError(w, r, supervisor.ErrNoEngine)
		return
	}
	var wd WireDelta
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wd); err != nil {
		// Malformed JSON, unknown fields and an oversized body are all
		// the client's fault: 400, never 500. (MaxBytesReader surfaces
		// the size breach as *http.MaxBytesError through Decode.)
		http.Error(w, fmt.Sprintf("bad delta body: %v", err), http.StatusBadRequest)
		return
	}
	d, err := toDelta(eng, be, wd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	up, err := be.g.Apply(r.Context(), d)
	if err != nil {
		p.writeError(w, r, err)
		return
	}
	p.writeJSON(w, http.StatusOK, up)
}

// vpCache is the vantage-point index of one engine publication. The VP
// set is frozen per engine (deltas refresh RTTs, never the VP roster),
// so the index is built once per supervisor generation instead of on
// every /v1/apply.
type vpCache struct {
	gen     uint64
	hasPing bool
	byID    map[int]*pingsim.VP
}

// vpIndex returns the cached VP index for the backend's current
// publication, building it on first use after an engine swap.
func vpIndex(eng *rpi.Engine, be *backend) *vpCache {
	gen := be.g.Generation()
	if c := be.vps.Load(); c != nil && c.gen == gen {
		return c
	}
	c := &vpCache{gen: gen}
	if in := eng.Inputs(); in.Ping != nil {
		c.hasPing = true
		c.byID = make(map[int]*pingsim.VP, len(in.Ping.VPs))
		for _, vp := range in.Ping.VPs {
			c.byID[vp.ID] = vp
		}
	}
	be.vps.Store(c)
	return c
}

// toDelta resolves a wire delta against the engine's current state.
func toDelta(eng *rpi.Engine, be *backend, wd WireDelta) (rpi.Delta, error) {
	var d rpi.Delta
	for _, j := range wd.Joins {
		ip, err := netip.ParseAddr(j.Iface)
		if err != nil {
			return d, fmt.Errorf("join: bad interface %q", j.Iface)
		}
		d.Joins = append(d.Joins, rpi.Join{
			IXP: j.IXP, Iface: ip, ASN: netsim.ASN(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range wd.Leaves {
		ip, err := netip.ParseAddr(l.Iface)
		if err != nil {
			return d, fmt.Errorf("leave: bad interface %q", l.Iface)
		}
		d.Leaves = append(d.Leaves, rpi.Key{IXP: l.IXP, Iface: ip})
	}
	if len(wd.RTT) == 0 {
		return d, nil
	}
	vps := vpIndex(eng, be)
	if !vps.hasPing {
		return d, fmt.Errorf("rtt: engine has no ping campaign")
	}
	d.Ping = make(map[netip.Addr]pingsim.Override, len(wd.RTT))
	for _, u := range wd.RTT {
		ip, err := netip.ParseAddr(u.Iface)
		if err != nil {
			return d, fmt.Errorf("rtt: bad interface %q", u.Iface)
		}
		if u.Drop {
			d.Ping[ip] = pingsim.Override{RTTMinMs: math.NaN()}
			continue
		}
		if u.RTTMinMs <= 0 || math.IsInf(u.RTTMinMs, 0) || math.IsNaN(u.RTTMinMs) {
			return d, fmt.Errorf("rtt: %s: rtt_min_ms must be positive (got %v); use drop to revoke", ip, u.RTTMinMs)
		}
		// A nil BestVP means "keep the interface's current best VP";
		// the engine resolves it under the apply lock, so a concurrent
		// apply cannot slip between resolution and application.
		var vp *pingsim.VP
		if u.VPID != nil {
			if vp = vps.byID[*u.VPID]; vp == nil {
				return d, fmt.Errorf("rtt: unknown vp_id %d", *u.VPID)
			}
		}
		d.Ping[ip] = pingsim.Override{
			RTTMinMs: u.RTTMinMs, BestVP: vp,
			BestRoundsUp: u.RoundsUp, AnyRounding: u.RoundsUp,
		}
	}
	return d, nil
}

// streamEvent is the SSE hello/reset payload.
type streamEvent struct {
	Seq        uint64 `json:"seq"`
	Generation uint64 `json:"generation"`
}

// stream serves /v1/stream: server-sent events carrying verdict
// changes as deltas land. Consecutive updates a slow reader has not
// consumed are coalesced into one batch write; a reader that cannot
// drain a batch within StreamWriteTimeout is disconnected (and the
// engine sheds its oldest pending updates meanwhile — the server never
// blocks on a stalled consumer). An engine swap (quarantine recovery)
// closes the stream with a "reset" event: resynchronize from /v1/infer
// and resubscribe.
func (p *plane) stream(w http.ResponseWriter, r *http.Request, be *backend) {
	eng := be.g.Engine()
	if eng == nil {
		p.writeError(w, r, supervisor.ErrNoEngine)
		return
	}
	gen := be.g.Generation()
	updates, cancel := eng.Subscribe(p.cfg.StreamBuffer)
	defer cancel()

	rc := http.NewResponseController(w)
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	if err := p.sseWrite(rc, w, "hello", streamEvent{Seq: eng.Seq(), Generation: gen}); err != nil {
		return
	}

	heartbeat := time.NewTicker(p.cfg.StreamHeartbeat)
	defer heartbeat.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-heartbeat.C:
			// A comment line: keeps NATs and proxies from reaping the
			// connection, and detects dead clients on idle streams.
			_ = rc.SetWriteDeadline(time.Now().Add(p.cfg.StreamWriteTimeout))
			if _, err := io.WriteString(w, ": keep-alive\n\n"); err != nil {
				return
			}
			if err := rc.Flush(); err != nil {
				return
			}
		case up, ok := <-updates:
			if !ok {
				// Engine closed or quarantined underneath us.
				_ = p.sseWrite(rc, w, "reset", streamEvent{Generation: be.g.Generation()})
				return
			}
			batch := []rpi.Update{up}
			closed := false
		coalesce:
			for len(batch) < 16 {
				select {
				case more, ok := <-updates:
					if !ok {
						closed = true
						break coalesce
					}
					batch = append(batch, more)
				default:
					break coalesce
				}
			}
			if err := p.sseWrite(rc, w, "updates", batch); err != nil {
				return
			}
			if closed {
				_ = p.sseWrite(rc, w, "reset", streamEvent{Generation: be.g.Generation()})
				return
			}
		}
	}
}

// sseWrite emits one SSE event under the stream write deadline.
func (p *plane) sseWrite(rc *http.ResponseController, w http.ResponseWriter, event string, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	_ = rc.SetWriteDeadline(time.Now().Add(p.cfg.StreamWriteTimeout))
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return err
	}
	return rc.Flush()
}

func (p *plane) writeReport(w http.ResponseWriter, r *http.Request, rep *rpi.Report) {
	b, err := rpi.MarshalReportCtx(r.Context(), rep)
	if err != nil {
		p.writeError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (p *plane) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps SDK, admission, supervisor and host errors to HTTP
// statuses. Cancellation is special-cased: when the caller is already
// gone there is nobody to answer, so it is logged and recorded as the
// 499 convention instead of surfacing as a fake 500.
func (p *plane) writeError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, rpi.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		p.cfg.Logger.Printf("serve: %s %s abandoned: %v", r.Method, r.URL.Path, err)
		w.WriteHeader(StatusClientClosedRequest)
		return
	}
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, rpi.ErrUnknownIXP),
		errors.Is(err, host.ErrUnknownTenant):
		status = http.StatusNotFound
	case errors.Is(err, host.ErrTenantExists):
		status = http.StatusConflict
	case errors.Is(err, host.ErrBadTenantName),
		errors.Is(err, host.ErrTooManyTenants):
		status = http.StatusBadRequest
	case errors.Is(err, rpi.ErrBadDelta):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, admission.ErrOverloaded),
		errors.Is(err, rpi.ErrOverloaded),
		errors.Is(err, supervisor.ErrQuarantined),
		errors.Is(err, supervisor.ErrNoEngine),
		errors.Is(err, host.ErrHostClosed),
		errors.Is(err, rpi.ErrClosed),
		errors.Is(err, rpi.ErrPersistence):
		// Transient serving-plane states: shed load, healing engine,
		// recovery still running, or a log that can no longer promise
		// durability. All of them clear up (or at worst persist) without
		// the client changing its request: retry shortly.
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	http.Error(w, err.Error(), status)
}
