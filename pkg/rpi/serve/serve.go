// Package serve exposes one shared rpi.Engine over HTTP/JSON: the
// traffic-serving front end of the inference system (cmd/rpi-serve is
// the binary). All responses use the versioned /v1 wire schema of
// package rpi.
//
// Endpoints:
//
//	GET  /healthz          liveness + delta sequence number
//	GET  /readyz           readiness: 200 once the engine is built/recovered
//	GET  /v1/infer         full wire report (current snapshot)
//	GET  /v1/report/{ixp}  one IXP's wire report
//	POST /v1/apply         apply a world delta, returns the verdict changes
//
// Liveness and readiness are distinct probes: /healthz answers 200 as
// soon as the listener is up (the process is alive — don't kill it),
// while /readyz answers 503 until the engine has finished building or
// recovering from its data directory (don't route traffic yet). Every
// /v1 endpoint is gated the same way as /readyz.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/netip"
	"sync/atomic"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/pkg/rpi"
)

// Server is the HTTP facade over one engine. Queries run under the
// engine's read lock and scale across connections; applies serialize
// behind its write lock.
type Server struct {
	// eng is nil until SetEngine: the pending window where the listener
	// is up but cold start or crash recovery is still running.
	eng atomic.Pointer[rpi.Engine]
	mux *http.ServeMux
}

// New builds the HTTP handler over a shared engine, ready immediately.
func New(eng *rpi.Engine) *Server {
	s := NewPending()
	s.SetEngine(eng)
	return s
}

// NewPending builds the HTTP handler with no engine yet: /healthz
// reports alive, /readyz and every /v1 endpoint answer 503 until
// SetEngine. This is how cmd/rpi-serve binds its port before recovery
// so that orchestrators see liveness during a long replay.
func NewPending() *Server {
	s := &Server{mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /v1/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v1/report/{ixp}", s.handleReport)
	s.mux.HandleFunc("POST /v1/apply", s.handleApply)
	return s
}

// SetEngine publishes the engine and flips the server ready. Safe to
// call from the recovery goroutine while requests are being served.
func (s *Server) SetEngine(eng *rpi.Engine) { s.eng.Store(eng) }

// Ready reports whether the engine has been published.
func (s *Server) Ready() bool { return s.eng.Load() != nil }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// engine returns the published engine, or replies 503 and returns nil
// while the server is still pending.
func (s *Server) engine(w http.ResponseWriter) *rpi.Engine {
	eng := s.eng.Load()
	if eng == nil {
		s.writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"ready": false, "error": "engine is recovering"})
	}
	return eng
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body := map[string]any{"ok": true}
	if eng := s.eng.Load(); eng != nil {
		body["seq"] = eng.Seq()
	} else {
		body["recovering"] = true
	}
	s.writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	eng := s.eng.Load()
	if eng == nil {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false})
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{"ready": true, "seq": eng.Seq()})
}

func (s *Server) handleInfer(w http.ResponseWriter, _ *http.Request) {
	eng := s.engine(w)
	if eng == nil {
		return
	}
	s.writeReport(w, eng.Snapshot())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	eng := s.engine(w)
	if eng == nil {
		return
	}
	rep, err := eng.ReportFor(r.PathValue("ixp"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeReport(w, rep)
}

// WireDelta is the JSON body of POST /v1/apply.
type WireDelta struct {
	Joins  []WireJoin `json:"joins,omitempty"`
	Leaves []WireKey  `json:"leaves,omitempty"`
	RTT    []WireRTT  `json:"rtt,omitempty"`
}

// WireJoin is one membership join.
type WireJoin struct {
	IXP      string `json:"ixp"`
	Iface    string `json:"iface"`
	ASN      uint32 `json:"asn"`
	PortMbps int    `json:"port_mbps,omitempty"`
}

// WireKey identifies one membership.
type WireKey struct {
	IXP   string `json:"ixp"`
	Iface string `json:"iface"`
}

// WireRTT is one refreshed RTT aggregate. VPID selects the measuring
// vantage point; when omitted the interface's current best VP is kept.
// Drop revokes the interface's measurement instead.
type WireRTT struct {
	Iface    string  `json:"iface"`
	RTTMinMs float64 `json:"rtt_min_ms"`
	VPID     *int    `json:"vp_id,omitempty"`
	RoundsUp bool    `json:"rounds_up,omitempty"`
	Drop     bool    `json:"drop,omitempty"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	eng := s.engine(w)
	if eng == nil {
		return
	}
	var wd WireDelta
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wd); err != nil {
		http.Error(w, fmt.Sprintf("bad delta body: %v", err), http.StatusBadRequest)
		return
	}
	d, err := s.toDelta(eng, wd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	up, err := eng.Apply(d)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, up)
}

// toDelta resolves a wire delta against the engine's current state.
func (s *Server) toDelta(eng *rpi.Engine, wd WireDelta) (rpi.Delta, error) {
	var d rpi.Delta
	for _, j := range wd.Joins {
		ip, err := netip.ParseAddr(j.Iface)
		if err != nil {
			return d, fmt.Errorf("join: bad interface %q", j.Iface)
		}
		d.Joins = append(d.Joins, rpi.Join{
			IXP: j.IXP, Iface: ip, ASN: netsim.ASN(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range wd.Leaves {
		ip, err := netip.ParseAddr(l.Iface)
		if err != nil {
			return d, fmt.Errorf("leave: bad interface %q", l.Iface)
		}
		d.Leaves = append(d.Leaves, rpi.Key{IXP: l.IXP, Iface: ip})
	}
	if len(wd.RTT) == 0 {
		return d, nil
	}
	in := eng.Inputs()
	if in.Ping == nil {
		return d, fmt.Errorf("rtt: engine has no ping campaign")
	}
	byID := make(map[int]*pingsim.VP, len(in.Ping.VPs))
	for _, vp := range in.Ping.VPs {
		byID[vp.ID] = vp
	}
	d.Ping = make(map[netip.Addr]pingsim.Override, len(wd.RTT))
	for _, u := range wd.RTT {
		ip, err := netip.ParseAddr(u.Iface)
		if err != nil {
			return d, fmt.Errorf("rtt: bad interface %q", u.Iface)
		}
		if u.Drop {
			d.Ping[ip] = pingsim.Override{RTTMinMs: math.NaN()}
			continue
		}
		if u.RTTMinMs <= 0 || math.IsInf(u.RTTMinMs, 0) || math.IsNaN(u.RTTMinMs) {
			return d, fmt.Errorf("rtt: %s: rtt_min_ms must be positive (got %v); use drop to revoke", ip, u.RTTMinMs)
		}
		// A nil BestVP means "keep the interface's current best VP";
		// the engine resolves it under the apply lock, so a concurrent
		// apply cannot slip between resolution and application.
		var vp *pingsim.VP
		if u.VPID != nil {
			if vp = byID[*u.VPID]; vp == nil {
				return d, fmt.Errorf("rtt: unknown vp_id %d", *u.VPID)
			}
		}
		d.Ping[ip] = pingsim.Override{
			RTTMinMs: u.RTTMinMs, BestVP: vp,
			BestRoundsUp: u.RoundsUp, AnyRounding: u.RoundsUp,
		}
	}
	return d, nil
}

func (s *Server) writeReport(w http.ResponseWriter, rep *rpi.Report) {
	b, err := rpi.MarshalReport(rep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps SDK sentinel errors to HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, rpi.ErrUnknownIXP):
		status = http.StatusNotFound
	case errors.Is(err, rpi.ErrBadDelta):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, rpi.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, rpi.ErrPersistence):
		// The log is broken: writes are refused (durability can no
		// longer be promised) while reads keep serving the last state.
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}
