// Package serve exposes one shared rpi.Engine over HTTP/JSON: the
// traffic-serving front end of the inference system (cmd/rpi-serve is
// the binary). All responses use the versioned /v1 wire schema of
// package rpi.
//
// Endpoints:
//
//	GET  /healthz          liveness + delta sequence number
//	GET  /v1/infer         full wire report (current snapshot)
//	GET  /v1/report/{ixp}  one IXP's wire report
//	POST /v1/apply         apply a world delta, returns the verdict changes
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/netip"

	"rpeer/internal/netsim"
	"rpeer/internal/pingsim"
	"rpeer/pkg/rpi"
)

// Server is the HTTP facade over one engine. Queries run under the
// engine's read lock and scale across connections; applies serialize
// behind its write lock.
type Server struct {
	eng *rpi.Engine
	mux *http.ServeMux
}

// New builds the HTTP handler over a shared engine.
func New(eng *rpi.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/infer", s.handleInfer)
	s.mux.HandleFunc("GET /v1/report/{ixp}", s.handleReport)
	s.mux.HandleFunc("POST /v1/apply", s.handleApply)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "seq": s.eng.Seq()})
}

func (s *Server) handleInfer(w http.ResponseWriter, _ *http.Request) {
	s.writeReport(w, s.eng.Snapshot())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	rep, err := s.eng.ReportFor(r.PathValue("ixp"))
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeReport(w, rep)
}

// WireDelta is the JSON body of POST /v1/apply.
type WireDelta struct {
	Joins  []WireJoin `json:"joins,omitempty"`
	Leaves []WireKey  `json:"leaves,omitempty"`
	RTT    []WireRTT  `json:"rtt,omitempty"`
}

// WireJoin is one membership join.
type WireJoin struct {
	IXP      string `json:"ixp"`
	Iface    string `json:"iface"`
	ASN      uint32 `json:"asn"`
	PortMbps int    `json:"port_mbps,omitempty"`
}

// WireKey identifies one membership.
type WireKey struct {
	IXP   string `json:"ixp"`
	Iface string `json:"iface"`
}

// WireRTT is one refreshed RTT aggregate. VPID selects the measuring
// vantage point; when omitted the interface's current best VP is kept.
// Drop revokes the interface's measurement instead.
type WireRTT struct {
	Iface    string  `json:"iface"`
	RTTMinMs float64 `json:"rtt_min_ms"`
	VPID     *int    `json:"vp_id,omitempty"`
	RoundsUp bool    `json:"rounds_up,omitempty"`
	Drop     bool    `json:"drop,omitempty"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request) {
	var wd WireDelta
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&wd); err != nil {
		http.Error(w, fmt.Sprintf("bad delta body: %v", err), http.StatusBadRequest)
		return
	}
	d, err := s.toDelta(wd)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	up, err := s.eng.Apply(d)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, up)
}

// toDelta resolves a wire delta against the engine's current state.
func (s *Server) toDelta(wd WireDelta) (rpi.Delta, error) {
	var d rpi.Delta
	for _, j := range wd.Joins {
		ip, err := netip.ParseAddr(j.Iface)
		if err != nil {
			return d, fmt.Errorf("join: bad interface %q", j.Iface)
		}
		d.Joins = append(d.Joins, rpi.Join{
			IXP: j.IXP, Iface: ip, ASN: netsim.ASN(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range wd.Leaves {
		ip, err := netip.ParseAddr(l.Iface)
		if err != nil {
			return d, fmt.Errorf("leave: bad interface %q", l.Iface)
		}
		d.Leaves = append(d.Leaves, rpi.Key{IXP: l.IXP, Iface: ip})
	}
	if len(wd.RTT) == 0 {
		return d, nil
	}
	in := s.eng.Inputs()
	if in.Ping == nil {
		return d, fmt.Errorf("rtt: engine has no ping campaign")
	}
	byID := make(map[int]*pingsim.VP, len(in.Ping.VPs))
	for _, vp := range in.Ping.VPs {
		byID[vp.ID] = vp
	}
	d.Ping = make(map[netip.Addr]pingsim.Override, len(wd.RTT))
	for _, u := range wd.RTT {
		ip, err := netip.ParseAddr(u.Iface)
		if err != nil {
			return d, fmt.Errorf("rtt: bad interface %q", u.Iface)
		}
		if u.Drop {
			d.Ping[ip] = pingsim.Override{RTTMinMs: math.NaN()}
			continue
		}
		if u.RTTMinMs <= 0 || math.IsInf(u.RTTMinMs, 0) || math.IsNaN(u.RTTMinMs) {
			return d, fmt.Errorf("rtt: %s: rtt_min_ms must be positive (got %v); use drop to revoke", ip, u.RTTMinMs)
		}
		// A nil BestVP means "keep the interface's current best VP";
		// the engine resolves it under the apply lock, so a concurrent
		// apply cannot slip between resolution and application.
		var vp *pingsim.VP
		if u.VPID != nil {
			if vp = byID[*u.VPID]; vp == nil {
				return d, fmt.Errorf("rtt: unknown vp_id %d", *u.VPID)
			}
		}
		d.Ping[ip] = pingsim.Override{
			RTTMinMs: u.RTTMinMs, BestVP: vp,
			BestRoundsUp: u.RoundsUp, AnyRounding: u.RoundsUp,
		}
	}
	return d, nil
}

func (s *Server) writeReport(w http.ResponseWriter, rep *rpi.Report) {
	b, err := rpi.MarshalReport(rep)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError maps SDK sentinel errors to HTTP statuses.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, rpi.ErrUnknownIXP):
		status = http.StatusNotFound
	case errors.Is(err, rpi.ErrBadDelta):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, rpi.ErrClosed):
		status = http.StatusServiceUnavailable
	}
	http.Error(w, err.Error(), status)
}
