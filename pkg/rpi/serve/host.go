package serve

// HostServer: the multi-tenant front end. One listener, one admission
// controller, many engines — each tenant's world served under
// /v1/t/{tenant}/... with the same handler core (and the same wire
// bytes) as the single-tenant Server, plus tenant lifecycle endpoints:
//
//	POST   /v1/tenants              create a tenant (JSON TenantSpec)
//	GET    /v1/tenants              list tenants + live state
//	GET    /v1/tenants/{tenant}     one tenant's state
//	DELETE /v1/tenants/{tenant}     delete (durable state kept; ?purge=1 removes it)
//	GET    /v1/t/{tenant}/infer     full wire report
//	GET    /v1/t/{tenant}/report/{ixp}
//	POST   /v1/t/{tenant}/apply
//	GET    /v1/t/{tenant}/stream    SSE verdict changes
//
// When built with a default tenant, the single-tenant routes
// (/v1/infer, /v1/report/{ixp}, /v1/apply, /v1/stream) keep working as
// aliases for it, so existing clients, the README quickstart and the
// chaos harness run unchanged against a multi-tenant deployment.
//
// Admission is shared across tenants (one machine's worth of limits)
// with per-tenant fairness on top: every request is attributed to its
// tenant and one tenant may hold at most Admission.TenantShare of a
// class's slots, so a hot tenant sheds before it starves its siblings.
// Requests hold a host lease for their lifetime — a stream pins its
// tenant's engine against idle eviction for exactly as long as the
// subscriber is attached.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"rpeer/internal/admission"
	"rpeer/internal/host"
)

// HostServer is the HTTP facade over a multi-tenant engine host.
type HostServer struct {
	plane
	h   *host.Host
	def string // default tenant for the legacy single-tenant routes; "" disables them

	// bes holds one backend per tenant, replaced whenever the tenant's
	// guard changes (evict + reopen, delete + recreate).
	bes sync.Map // string -> *backend
}

// NewHost builds the multi-tenant HTTP handler over a caller-owned
// host. defaultTenant, when non-empty, must name a tenant that exists
// (or will exist) in the host: the legacy single-tenant routes alias
// to it.
func NewHost(h *host.Host, defaultTenant string, cfg Config) *HostServer {
	s := &HostServer{plane: newPlane(cfg), h: h, def: defaultTenant}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)

	s.mux.HandleFunc("POST /v1/tenants", s.lifecycle(s.handleCreate))
	s.mux.HandleFunc("GET /v1/tenants", s.lifecycle(s.handleList))
	s.mux.HandleFunc("GET /v1/tenants/{tenant}", s.lifecycle(s.handleGet))
	s.mux.HandleFunc("DELETE /v1/tenants/{tenant}", s.lifecycle(s.handleDelete))

	pathTenant := func(r *http.Request) string { return r.PathValue("tenant") }
	s.mux.HandleFunc("GET /v1/t/{tenant}/infer", s.forTenant(admission.Read, pathTenant, s.infer))
	s.mux.HandleFunc("GET /v1/t/{tenant}/report/{ixp}", s.forTenant(admission.Cheap, pathTenant, func(w http.ResponseWriter, r *http.Request, be *backend) {
		s.report(w, r, be, r.PathValue("ixp"))
	}))
	s.mux.HandleFunc("POST /v1/t/{tenant}/apply", s.forTenant(admission.Write, pathTenant, s.apply))
	s.mux.HandleFunc("GET /v1/t/{tenant}/stream", s.forTenant(admission.Stream, pathTenant, s.stream))

	if defaultTenant != "" {
		def := func(*http.Request) string { return defaultTenant }
		s.mux.HandleFunc("GET /v1/infer", s.forTenant(admission.Read, def, s.infer))
		s.mux.HandleFunc("GET /v1/report/{ixp}", s.forTenant(admission.Cheap, def, func(w http.ResponseWriter, r *http.Request, be *backend) {
			s.report(w, r, be, r.PathValue("ixp"))
		}))
		s.mux.HandleFunc("POST /v1/apply", s.forTenant(admission.Write, def, s.apply))
		s.mux.HandleFunc("GET /v1/stream", s.forTenant(admission.Stream, def, s.stream))
	}
	return s
}

// Host exposes the underlying tenant host (expvar publication,
// shutdown wiring in the serving binary).
func (s *HostServer) Host() *host.Host { return s.h }

// forTenant is the per-tenant request spine: resolve the tenant name,
// apply the request deadline, pass shared admission with per-tenant
// fairness, take a host lease (first touch opens or recovers the
// engine — inside the admission slot, so cold starts are bounded by
// the class gate too), and hand the tenant's backend to the shared
// handler core.
func (s *HostServer) forTenant(cl admission.Class, name func(*http.Request) string, fn func(http.ResponseWriter, *http.Request, *backend)) http.HandlerFunc {
	return s.admitTenantFn(cl, name, func(w http.ResponseWriter, r *http.Request, tn string) {
		lease, err := s.h.Lease(r.Context(), tn)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		defer lease.Release()
		fn(w, r, s.backendFor(tn, lease))
	})
}

// admitTenantFn is plane.admitted with the tenant resolved per request.
func (s *HostServer) admitTenantFn(cl admission.Class, name func(*http.Request) string, h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tn := name(r)
		if s.cfg.RequestTimeout > 0 && cl != admission.Stream {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		release, err := s.adm.AdmitTenant(r.Context(), cl, tn)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		defer release()
		h(w, r, tn)
	}
}

// backendFor returns the tenant's backend — guard plus report/VP
// caches — creating or replacing it when the guard changed (the tenant
// was evicted and reopened, or deleted and recreated). Matching on the
// guard pointer is what keeps cached bytes from ever crossing engine
// instances: a backend only serves requests whose lease holds the same
// guard it was built for.
func (s *HostServer) backendFor(tn string, lease *host.Lease) *backend {
	g := lease.Guard()
	if v, ok := s.bes.Load(tn); ok {
		if be := v.(*backend); be.g == g {
			return be
		}
	}
	be := &backend{tenant: tn, g: g}
	s.bes.Store(tn, be)
	return be
}

// lifecycle wraps tenant-management endpoints: cheap-class admission,
// no tenant attribution (they are control plane, not tenant traffic).
func (s *HostServer) lifecycle(h http.HandlerFunc) http.HandlerFunc {
	return s.admitted(admission.Cheap, "", h)
}

func (s *HostServer) handleCreate(w http.ResponseWriter, r *http.Request) {
	var sp host.TenantSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sp); err != nil {
		http.Error(w, fmt.Sprintf("bad tenant spec: %v", err), http.StatusBadRequest)
		return
	}
	if err := s.h.Create(sp); err != nil {
		s.writeError(w, r, err)
		return
	}
	s.writeJSON(w, http.StatusCreated, sp)
}

func (s *HostServer) handleList(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"tenants": s.h.Tenants()})
}

func (s *HostServer) handleGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	for _, st := range s.h.Tenants() {
		if st.Name == name {
			s.writeJSON(w, http.StatusOK, st)
			return
		}
	}
	s.writeError(w, r, fmt.Errorf("%w: %q", host.ErrUnknownTenant, name))
}

func (s *HostServer) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("tenant")
	purge := r.URL.Query().Get("purge") == "1"
	if err := s.h.Delete(name, purge); err != nil {
		s.writeError(w, r, err)
		return
	}
	// The tenant's admission attribution and cached backend go with it;
	// a recreated tenant starts from zero on both.
	s.adm.ForgetTenant(name)
	s.bes.Delete(name)
	w.WriteHeader(http.StatusNoContent)
}

// handleHealthz: host-level liveness — the process and registry are up.
func (s *HostServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ok": true, "tenants": len(s.h.Tenants())})
}

// handleReadyz: a host is ready as soon as the registry is loaded —
// engines open lazily per tenant, and per-tenant health is what
// GET /v1/tenants reports.
func (s *HostServer) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]any{"ready": true, "tenants": len(s.h.Tenants())})
}
