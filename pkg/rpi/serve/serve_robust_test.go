package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/netsim"
	"rpeer/internal/supervisor"
	"rpeer/internal/wal"
	"rpeer/pkg/rpi"
)

var quiet = log.New(io.Discard, "", 0)

var (
	tinyOnce sync.Once
	tinyIn   rpi.Inputs
	tinyErr  error
)

// tinyInputs is the small world the robustness tests run on: engine
// lifecycles in milliseconds instead of seconds.
func tinyInputs(t testing.TB) rpi.Inputs {
	t.Helper()
	tinyOnce.Do(func() {
		tinyIn, tinyErr = rpi.InputsFromConfig(netsim.TinyConfig(), 21)
	})
	if tinyErr != nil {
		t.Fatal(tinyErr)
	}
	return tinyIn
}

// supervisedServer is a self-healing serving plane over a fault-
// injectable persistent engine: the full production wiring, in-process.
type supervisedServer struct {
	fsys  *wal.MemFS
	g     *supervisor.Guard
	s     *Server
	srv   *httptest.Server
	armed atomic.Bool
}

func newSupervisedServer(t *testing.T, cfg Config) *supervisedServer {
	t.Helper()
	in := tinyInputs(t)
	h := &supervisedServer{fsys: wal.NewMemFS()}
	open := func() (*rpi.Engine, *rpi.RecoveryInfo, error) {
		return rpi.Open("data", in,
			rpi.WithWALFS(h.fsys),
			rpi.WithSnapshotEvery(0),
			rpi.WithLogger(quiet),
			rpi.WithApplyHook(func(uint64, rpi.Delta) {
				if h.armed.CompareAndSwap(true, false) {
					panic("serve_test: injected engine fault")
				}
			}),
		)
	}
	h.g = supervisor.New(supervisor.Options{
		Reopen:        open,
		RetryInterval: 5 * time.Millisecond,
		Logger:        quiet,
	})
	eng, _, err := open()
	if err != nil {
		t.Fatal(err)
	}
	h.g.Publish(eng)
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	h.s = NewSupervised(h.g, cfg)
	h.srv = httptest.NewServer(h.s)
	t.Cleanup(func() {
		h.srv.Close()
		_ = h.g.Close()
	})
	return h
}

func (h *supervisedServer) applyHTTP(t *testing.T, d rpi.Delta) *http.Response {
	t.Helper()
	body, err := marshalWire(d)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(h.srv.URL+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func marshalWire(d rpi.Delta) ([]byte, error) {
	return json.Marshal(wireChurn(d))
}

// TestApplyBodyLimits: an oversized (>16MB) body and a body with
// unknown fields are both the client's fault — 400, never 500 — and
// every /v1 response carries Cache-Control: no-store.
func TestApplyBodyLimits(t *testing.T) {
	_, srv := testServer(t)

	// 17MB of valid JSON structure: the limit, not the parser, rejects it.
	big := `{"joins":[` + strings.Repeat(`{"ixp":"pad","iface":"203.0.113.1","asn":1},`, 400_000)
	big += `{"ixp":"pad","iface":"203.0.113.1","asn":1}]}`
	if len(big) <= 16<<20 {
		t.Fatalf("test body too small: %d", len(big))
	}
	resp, err := http.Post(srv.URL+"/v1/apply", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized body: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/apply", "application/json",
		strings.NewReader(`{"joins":[],"bogus_field":1}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown-field body: status %d, want 400", resp.StatusCode)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Fatalf("Cache-Control = %q, want no-store", cc)
	}
}

// TestQuarantineOverHTTP drives the full fault lifecycle through the
// HTTP surface: a poisoned apply 503s and quarantines the engine,
// reads keep answering from the last good snapshot, concurrent applies
// racing the quarantine and the re-publication get clean 503s (never a
// 500 or a hung connection), and once the supervisor re-Opens from the
// WAL the plane is writable again and /v1/infer serves exactly the
// recovered engine's report.
func TestQuarantineOverHTTP(t *testing.T) {
	h := newSupervisedServer(t, Config{})
	eng := h.g.Engine()
	d1 := rpi.ChurnDelta(eng.Inputs(), 0.05, 1)
	if resp := h.applyHTTP(t, d1); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy apply: %d", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	goodInfer := get(t, h.srv.URL+"/v1/infer", http.StatusOK)

	// Poison the next apply: it journals, panics inside the engine, and
	// must come back as a clean 503 with the guard quarantined.
	h.armed.Store(true)
	resp := h.applyHTTP(t, rpi.ChurnDelta(h.g.Engine().Inputs(), 0.05, 2))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("poisoned apply: status %d, want 503", resp.StatusCode)
	}

	// Race applies against the quarantine and the re-publication: every
	// response must be a clean status (never a 500, never a hang).
	var wg sync.WaitGroup
	statuses := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := h.applyHTTP(t, rpi.ChurnDelta(tinyInputs(t), 0.05, int64(10+i)))
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(statuses)
	for st := range statuses {
		switch st {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity, http.StatusServiceUnavailable:
		default:
			t.Fatalf("racing apply: unexpected status %d", st)
		}
	}

	// While still quarantined (recovery may already have won the race),
	// reads keep serving the last good state and readyz says "not yet".
	if h.g.Quarantined() {
		resp, err := http.Get(h.srv.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
			t.Fatalf("quarantined readyz: status %d, Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
		}
		if b := get(t, h.srv.URL+"/v1/infer", http.StatusOK); len(b) == 0 {
			t.Fatal("quarantined infer served nothing")
		}
		_ = goodInfer // reads during quarantine include at least the pre-fault state
	}

	// Recovery: the guard re-Opens in the background; the plane must be
	// writable again within the bound.
	deadline := time.Now().Add(10 * time.Second)
	for !h.g.Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("not writable 10s after fault: %+v", h.g.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := h.g.Stats(); st.ContinuityViolations != 0 {
		t.Fatalf("continuity violations: %+v", st)
	}
	resp = h.applyHTTP(t, rpi.ChurnDelta(h.g.Engine().Inputs(), 0.05, 99))
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-recovery apply: %d", resp.StatusCode)
	}
	want, _ := rpi.MarshalReport(h.g.Engine().Snapshot())
	if got := get(t, h.srv.URL+"/v1/infer", http.StatusOK); !bytes.Equal(got, want) {
		t.Fatal("post-recovery /v1/infer differs from engine snapshot")
	}
	if h.s.HandlerPanics() != 0 {
		t.Fatalf("engine fault leaked into handler panic counter: %d", h.s.HandlerPanics())
	}
}

// TestStreamDeliversUpdates: a well-behaved SSE consumer gets a hello
// and then coalesced update batches as deltas land.
func TestStreamDeliversUpdates(t *testing.T) {
	in := tinyInputs(t)
	eng, err := rpi.New(in)
	if err != nil {
		t.Fatal(err)
	}
	g := supervisor.New(supervisor.Options{Logger: quiet})
	g.Publish(eng)
	s := NewSupervised(g, Config{Logger: quiet})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	events := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if strings.HasPrefix(line, "event: ") {
				events <- strings.TrimPrefix(line, "event: ")
			}
		}
		close(events)
	}()
	waitEvent := func(want string) {
		t.Helper()
		select {
		case ev, ok := <-events:
			if !ok || ev != want {
				t.Fatalf("event = %q (ok=%v), want %q", ev, ok, want)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("no %q event within 10s", want)
		}
	}
	waitEvent("hello")
	if _, err := eng.Apply(context.Background(), rpi.ChurnDelta(eng.Inputs(), 0.05, 7)); err != nil {
		t.Fatal(err)
	}
	waitEvent("updates")
}

// TestStalledStreamConsumer: a subscriber that never reads must not
// wedge the serving plane. The engine sheds its oldest pending updates
// (rpi.dropped_updates counts them), the write deadline disconnects
// the dead stream, and the server keeps answering other traffic.
func TestStalledStreamConsumer(t *testing.T) {
	in := tinyInputs(t)
	eng, err := rpi.New(in)
	if err != nil {
		t.Fatal(err)
	}
	g := supervisor.New(supervisor.Options{Logger: quiet})
	g.Publish(eng)
	s := NewSupervised(g, Config{
		StreamBuffer:       1,
		StreamWriteTimeout: 300 * time.Millisecond,
		Logger:             quiet,
	})
	srv := httptest.NewUnstartedServer(s)
	// Shrink the server-side socket buffer so a non-reading client
	// exerts backpressure after a few KB instead of a few hundred.
	srv.Config.ConnContext = func(ctx context.Context, c net.Conn) context.Context {
		if tc, ok := c.(*net.TCPConn); ok {
			_ = tc.SetWriteBuffer(2048)
		}
		return ctx
	}
	srv.Start()
	t.Cleanup(srv.Close)

	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if tc, ok := conn.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(2048)
	}
	fmt.Fprintf(conn, "GET /v1/stream HTTP/1.1\r\nHost: stalled\r\nAccept: text/event-stream\r\n\r\n")
	// The client now goes silent: it never reads a byte of the response.

	// Churn deltas back and forth until the engine visibly sheds.
	fwd := rpi.ChurnDelta(eng.Inputs(), 0.3, 31)
	rev := rpi.InvertDelta(eng.Inputs(), fwd)
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; eng.DroppedUpdates() == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatalf("engine never shed for the stalled consumer (%d applies)", i)
		}
		d := fwd
		if i%2 == 1 {
			d = rev
		}
		if _, err := eng.Apply(context.Background(), d); err != nil {
			t.Fatal(err)
		}
	}
	if eng.DroppedUpdates() == 0 {
		t.Fatal("no updates dropped")
	}
	// The plane is still live for everyone else.
	cl := http.Client{Timeout: 5 * time.Second}
	resp, err := cl.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatalf("server wedged by stalled stream: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz during stall: %d", resp.StatusCode)
	}
}

// TestRequestTimeoutMapsTo499: a request whose deadline expires before
// the response is built is logged and answered with the 499 convention,
// not a fake 500.
func TestRequestTimeoutMapsTo499(t *testing.T) {
	eng, err := rpi.New(tinyInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	g := supervisor.New(supervisor.Options{Logger: quiet})
	g.Publish(eng)
	s := NewSupervised(g, Config{RequestTimeout: time.Nanosecond, Logger: quiet})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != StatusClientClosedRequest {
		t.Fatalf("expired request: status %d, want %d", resp.StatusCode, StatusClientClosedRequest)
	}
}

// TestStreamSheds503: the stream class has no queue — once its slots
// are taken, the next subscriber gets an immediate 503 + Retry-After.
func TestStreamSheds503(t *testing.T) {
	eng, err := rpi.New(tinyInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	g := supervisor.New(supervisor.Options{Logger: quiet})
	g.Publish(eng)
	s := NewSupervised(g, Config{
		Admission: admission.Config{Stream: admission.Limits{Slots: 1}},
		Logger:    quiet,
	})
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	first, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { first.Body.Close() })
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first stream: %d", first.StatusCode)
	}
	// Read the hello so the handler is parked in its select (slot held).
	buf := make([]byte, 1)
	if _, err := first.Body.Read(buf); err != nil {
		t.Fatal(err)
	}

	second, err := http.Get(srv.URL + "/v1/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, second.Body)
	second.Body.Close()
	if second.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("second stream: status %d, want 503", second.StatusCode)
	}
	if second.Header.Get("Retry-After") == "" {
		t.Fatal("shed stream response missing Retry-After")
	}
	if s.Admission().TotalShed() == 0 {
		t.Fatal("shed counter did not move")
	}
}
