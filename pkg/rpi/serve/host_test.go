package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"rpeer/internal/admission"
	"rpeer/internal/host"
	"rpeer/internal/netsim"
	"rpeer/pkg/rpi"
)

// tinyHostInputs is the tenant world factory for host tests:
// millisecond-scale worlds derived from the tenant's seed.
func tinyHostInputs(sp host.TenantSpec) (rpi.Inputs, error) {
	cfg := netsim.TinyConfig()
	if sp.Seed != 0 {
		cfg.Seed = sp.Seed
	}
	return rpi.InputsFromConfig(cfg, sp.Seed)
}

func testHost(t *testing.T, cfg Config, defaultTenant string, specs ...host.TenantSpec) (*host.Host, *HostServer, *httptest.Server) {
	t.Helper()
	quiet := log.New(io.Discard, "", 0)
	h, err := host.Open(host.Config{
		Dir:         t.TempDir(),
		Inputs:      tinyHostInputs,
		IdleTimeout: time.Hour, // sweeps only when a test forces them
		Logger:      quiet,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = h.Close() })
	for _, sp := range specs {
		if err := h.Create(sp); err != nil {
			t.Fatal(err)
		}
	}
	if cfg.Logger == nil {
		cfg.Logger = quiet
	}
	hs := NewHost(h, defaultTenant, cfg)
	srv := httptest.NewServer(hs)
	t.Cleanup(srv.Close)
	return h, hs, srv
}

func postJSON(t *testing.T, url string, v any, wantStatus int) []byte {
	t.Helper()
	body, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d (%s)", url, resp.StatusCode, wantStatus, b)
	}
	return b
}

// TestInferReportCache: repeated full-report reads at one publication
// are served from the pre-marshaled byte cache (same buffer, identical
// bytes); an apply (seq bump) or an engine swap (generation bump)
// invalidates it and the served bytes track the live report exactly.
func TestInferReportCache(t *testing.T) {
	eng, err := rpi.New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	s := New(eng)
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	b1 := get(t, srv.URL+"/v1/infer", http.StatusOK)
	c1 := s.be.rep.Load()
	if c1 == nil || c1.seq != 0 {
		t.Fatalf("cache after first read: %+v", c1)
	}
	b2 := get(t, srv.URL+"/v1/infer", http.StatusOK)
	if !bytes.Equal(b1, b2) {
		t.Fatal("repeated reads at one publication differ")
	}
	if s.be.rep.Load() != c1 {
		t.Fatal("second read re-marshaled instead of hitting the cache")
	}

	// Seq bump: the cache must follow the applied delta.
	postApply(t, srv.URL, wireChurn(rpi.ChurnDelta(eng.Inputs(), 0.005, 11)), http.StatusOK)
	b3 := get(t, srv.URL+"/v1/infer", http.StatusOK)
	want, err := rpi.MarshalReport(eng.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b3, want) {
		t.Fatal("post-apply read served stale cached bytes")
	}
	if c3 := s.be.rep.Load(); c3.seq != 1 {
		t.Fatalf("cache seq = %d, want 1", c3.seq)
	}

	// Generation bump: swapping the engine must not serve the old world.
	in2, err := rpi.InputsFromConfig(netsim.TinyConfig(), 99)
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := rpi.New(in2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(eng2)
	b4 := get(t, srv.URL+"/v1/infer", http.StatusOK)
	want2, err := rpi.MarshalReport(eng2.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b4, want2) {
		t.Fatal("post-swap read served the previous engine's bytes")
	}
}

func TestHostTenantLifecycleHTTP(t *testing.T) {
	_, _, srv := testHost(t, Config{}, "")

	postJSON(t, srv.URL+"/v1/tenants", host.TenantSpec{Name: "a", Seed: 1}, http.StatusCreated)
	postJSON(t, srv.URL+"/v1/tenants", host.TenantSpec{Name: "a", Seed: 1}, http.StatusConflict)
	postJSON(t, srv.URL+"/v1/tenants", host.TenantSpec{Name: "no/slashes"}, http.StatusBadRequest)

	var list struct {
		Tenants []host.TenantStatus `json:"tenants"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/v1/tenants", http.StatusOK), &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Tenants) != 1 || list.Tenants[0].Name != "a" || list.Tenants[0].State != "cold" {
		t.Fatalf("tenant list: %+v", list.Tenants)
	}

	// First read opens the engine lazily; the status flips to serving.
	if b := get(t, srv.URL+"/v1/t/a/infer", http.StatusOK); !json.Valid(b) {
		t.Fatal("infer body is not JSON")
	}
	var st host.TenantStatus
	if err := json.Unmarshal(get(t, srv.URL+"/v1/tenants/a", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.State != "serving" || st.Opens != 1 {
		t.Fatalf("tenant status after first read: %+v", st)
	}

	get(t, srv.URL+"/v1/t/ghost/infer", http.StatusNotFound)
	get(t, srv.URL+"/v1/tenants/ghost", http.StatusNotFound)

	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/tenants/a?purge=1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
	get(t, srv.URL+"/v1/t/a/infer", http.StatusNotFound)
}

// TestHostByteIdentity is the acceptance check: a tenant served
// through the host answers byte-identical /v1 reports to a
// single-engine server over the same inputs and the same deltas —
// multi-tenancy changes routing, never results.
func TestHostByteIdentity(t *testing.T) {
	_, _, srv := testHost(t, Config{}, "", host.TenantSpec{Name: "a", Seed: 3})

	in, err := tinyHostInputs(host.TenantSpec{Name: "a", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	single, err := rpi.New(in)
	if err != nil {
		t.Fatal(err)
	}
	ssrv := httptest.NewServer(New(single))
	t.Cleanup(ssrv.Close)

	wd := wireChurn(rpi.ChurnDelta(in, 0.02, 9))
	postJSON(t, srv.URL+"/v1/t/a/apply", wd, http.StatusOK)
	postJSON(t, ssrv.URL+"/v1/apply", wd, http.StatusOK)

	hostBytes := get(t, srv.URL+"/v1/t/a/infer", http.StatusOK)
	singleBytes := get(t, ssrv.URL+"/v1/infer", http.StatusOK)
	if !bytes.Equal(hostBytes, singleBytes) {
		t.Fatalf("host and single-engine reports differ (%d vs %d bytes)", len(hostBytes), len(singleBytes))
	}
	// And the cached re-read is the same bytes again.
	if !bytes.Equal(get(t, srv.URL+"/v1/t/a/infer", http.StatusOK), hostBytes) {
		t.Fatal("cached host read differs")
	}
}

// TestHostLegacyAliases: with a default tenant, the original
// single-tenant routes keep working and answer that tenant's bytes.
func TestHostLegacyAliases(t *testing.T) {
	h, _, srv := testHost(t, Config{}, "default",
		host.TenantSpec{Name: "default", Seed: 1}, host.TenantSpec{Name: "other", Seed: 2})

	legacy := get(t, srv.URL+"/v1/infer", http.StatusOK)
	routed := get(t, srv.URL+"/v1/t/default/infer", http.StatusOK)
	if !bytes.Equal(legacy, routed) {
		t.Fatal("legacy alias and tenant route disagree")
	}
	if other := get(t, srv.URL+"/v1/t/other/infer", http.StatusOK); bytes.Equal(other, legacy) {
		t.Fatal("distinct tenants served identical worlds (seeds differ)")
	}

	// Legacy apply lands on the default tenant.
	lease, err := h.Lease(context.Background(), "default")
	if err != nil {
		t.Fatal(err)
	}
	in := lease.Guard().Engine().Inputs()
	lease.Release()
	postJSON(t, srv.URL+"/v1/apply", wireChurn(rpi.ChurnDelta(in, 0.01, 4)), http.StatusOK)
	var st host.TenantStatus
	if err := json.Unmarshal(get(t, srv.URL+"/v1/tenants/default", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.AckedSeq != 1 {
		t.Fatalf("default tenant seq = %d after legacy apply, want 1", st.AckedSeq)
	}
}

// TestHostCacheSurvivesEviction: eviction closes the engine with a
// final checkpoint; the next read reopens it under a fresh guard and
// serves the same bytes (stale cross-guard cache hits are impossible —
// backends key on the guard pointer).
func TestHostCacheSurvivesEviction(t *testing.T) {
	h, _, srv := testHost(t, Config{}, "", host.TenantSpec{Name: "a", Seed: 5})

	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	in := lease.Guard().Engine().Inputs()
	lease.Release()
	postJSON(t, srv.URL+"/v1/t/a/apply", wireChurn(rpi.ChurnDelta(in, 0.02, 6)), http.StatusOK)
	before := get(t, srv.URL+"/v1/t/a/infer", http.StatusOK)

	if n := h.Sweep(time.Now().Add(2 * time.Hour)); n != 1 {
		t.Fatalf("sweep evicted %d tenants, want 1", n)
	}
	after := get(t, srv.URL+"/v1/t/a/infer", http.StatusOK)
	if !bytes.Equal(before, after) {
		t.Fatal("report bytes changed across evict + reopen")
	}
	var st host.TenantStatus
	if err := json.Unmarshal(get(t, srv.URL+"/v1/tenants/a", http.StatusOK), &st); err != nil {
		t.Fatal(err)
	}
	if st.Opens != 2 || st.Evictions != 1 {
		t.Fatalf("tenant status after evict/reopen: %+v", st)
	}
}

// TestHostPerTenantAdmission: traffic through tenant routes is
// attributed per tenant, and one tenant at its fair-share cap is shed
// while a sibling still gets in.
func TestHostPerTenantAdmission(t *testing.T) {
	_, hs, srv := testHost(t, Config{
		Admission: admission.Config{
			Read:        admission.Limits{Slots: 2, Queue: 0, MaxWait: time.Millisecond},
			TenantShare: 0.5,
		},
	}, "", host.TenantSpec{Name: "hot", Seed: 1}, host.TenantSpec{Name: "cold", Seed: 2})

	// Warm both so admission, not world building, dominates.
	get(t, srv.URL+"/v1/t/hot/infer", http.StatusOK)
	get(t, srv.URL+"/v1/t/cold/infer", http.StatusOK)

	// Hold the hot tenant's entire fair share (1 of 2 slots) open with
	// a stalled... simpler: cap is 1, so one in-flight hot read blocks a
	// second. Drive it through the admission controller directly to
	// avoid timing on HTTP.
	adm := hs.Admission()
	rel, err := adm.AdmitTenant(context.Background(), admission.Read, "hot")
	if err != nil {
		t.Fatal(err)
	}
	defer rel()
	if _, err := adm.AdmitTenant(context.Background(), admission.Read, "hot"); err == nil {
		t.Fatal("hot tenant exceeded its fair share")
	}
	get(t, srv.URL+"/v1/t/cold/infer", http.StatusOK) // sibling headroom intact

	ts := adm.TenantStats()
	if ts["hot"]["read"].Shed == 0 {
		t.Fatalf("hot tenant shed not attributed: %+v", ts["hot"])
	}
	if ts["cold"]["read"].Admitted < 2 || ts["cold"]["read"].Shed != 0 {
		t.Fatalf("cold tenant stats: %+v", ts["cold"])
	}
}

// TestHostStreamPinsTenant: an SSE subscriber holds its tenant's lease
// — eviction skips the tenant for as long as the stream is attached,
// and streamed updates carry applies routed through the tenant path.
func TestHostStreamPinsTenant(t *testing.T) {
	h, _, srv := testHost(t, Config{}, "", host.TenantSpec{Name: "a", Seed: 1})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/v1/t/a/stream", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream: status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	readEvent := func() string {
		for sc.Scan() {
			if line := sc.Text(); strings.HasPrefix(line, "event: ") {
				return strings.TrimPrefix(line, "event: ")
			}
		}
		t.Fatalf("stream ended early: %v", sc.Err())
		return ""
	}
	if ev := readEvent(); ev != "hello" {
		t.Fatalf("first event %q, want hello", ev)
	}

	// The subscriber pins the tenant against eviction.
	if n := h.Sweep(time.Now().Add(2 * time.Hour)); n != 0 {
		t.Fatalf("sweep evicted %d tenants under a live stream", n)
	}

	lease, err := h.Lease(context.Background(), "a")
	if err != nil {
		t.Fatal(err)
	}
	in := lease.Guard().Engine().Inputs()
	lease.Release()
	postJSON(t, srv.URL+"/v1/t/a/apply", wireChurn(rpi.ChurnDelta(in, 0.01, 8)), http.StatusOK)
	if ev := readEvent(); ev != "updates" {
		t.Fatalf("after apply: event %q, want updates", ev)
	}

	// Close the stream; now the idle tenant is evictable.
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for h.Sweep(time.Now().Add(2*time.Hour)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("tenant never became evictable after the stream closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
