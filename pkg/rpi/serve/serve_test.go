package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"rpeer/pkg/rpi"
)

var (
	fixOnce sync.Once
	fixIn   rpi.Inputs
	fixErr  error
)

func testInputs(t testing.TB) rpi.Inputs {
	t.Helper()
	fixOnce.Do(func() {
		fixIn, fixErr = rpi.SyntheticInputs(1, 1)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixIn
}

func testServer(t testing.TB) (*rpi.Engine, *httptest.Server) {
	t.Helper()
	eng, err := rpi.New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(eng))
	t.Cleanup(srv.Close)
	return eng, srv
}

func get(t *testing.T, url string, wantStatus int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (%s)", url, resp.StatusCode, wantStatus, b)
	}
	return b
}

// TestReadinessGating: a pending server is alive but not ready — every
// /v1 endpoint and /readyz answer 503 until SetEngine, 200 after.
func TestReadinessGating(t *testing.T) {
	s := NewPending()
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	var health struct {
		OK         bool `json:"ok"`
		Recovering bool `json:"recovering"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/healthz", http.StatusOK), &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || !health.Recovering {
		t.Fatalf("pending healthz = %+v", health)
	}
	get(t, srv.URL+"/readyz", http.StatusServiceUnavailable)
	get(t, srv.URL+"/v1/infer", http.StatusServiceUnavailable)
	get(t, srv.URL+"/v1/report/any", http.StatusServiceUnavailable)
	resp, err := http.Post(srv.URL+"/v1/apply", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pending apply: status %d, want 503", resp.StatusCode)
	}
	if s.Ready() {
		t.Fatal("Ready() before SetEngine")
	}

	eng, err := rpi.New(testInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	s.SetEngine(eng)
	if !s.Ready() {
		t.Fatal("Ready() false after SetEngine")
	}
	var ready struct {
		Ready bool   `json:"ready"`
		Seq   uint64 `json:"seq"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/readyz", http.StatusOK), &ready); err != nil {
		t.Fatal(err)
	}
	if !ready.Ready {
		t.Fatalf("readyz = %+v", ready)
	}
	get(t, srv.URL+"/v1/infer", http.StatusOK)
}

func TestHealthz(t *testing.T) {
	_, srv := testServer(t)
	var body struct {
		OK  bool   `json:"ok"`
		Seq uint64 `json:"seq"`
	}
	if err := json.Unmarshal(get(t, srv.URL+"/healthz", http.StatusOK), &body); err != nil {
		t.Fatal(err)
	}
	if !body.OK || body.Seq != 0 {
		t.Fatalf("healthz = %+v", body)
	}
}

func TestInferServesWireReport(t *testing.T) {
	eng, srv := testServer(t)
	b := get(t, srv.URL+"/v1/infer", http.StatusOK)
	w, err := rpi.UnmarshalReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if w.Summary.Total != len(eng.Snapshot().Inferences) {
		t.Fatalf("served %d memberships, engine has %d", w.Summary.Total, len(eng.Snapshot().Inferences))
	}
	want, _ := rpi.MarshalReport(eng.Snapshot())
	if !bytes.Equal(b, want) {
		t.Fatal("served bytes differ from MarshalReport")
	}
}

func TestReportPerIXP(t *testing.T) {
	eng, srv := testServer(t)
	var ixp string
	for k := range eng.Snapshot().Inferences {
		ixp = k.IXP
		break
	}
	b := get(t, srv.URL+"/v1/report/"+ixp, http.StatusOK)
	w, err := rpi.UnmarshalReport(b)
	if err != nil {
		t.Fatal(err)
	}
	if w.Summary.Total == 0 {
		t.Fatalf("empty report for %s", ixp)
	}
	for _, inf := range w.Inferences {
		if inf.IXP != ixp {
			t.Fatalf("foreign inference %+v in %s report", inf, ixp)
		}
	}
	get(t, srv.URL+"/v1/report/no-such-ixp", http.StatusNotFound)
}

func postApply(t *testing.T, url string, wd WireDelta, wantStatus int) *rpi.Update {
	t.Helper()
	body, err := json.Marshal(wd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/apply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST /v1/apply: status %d, want %d (%s)", resp.StatusCode, wantStatus, b)
	}
	if wantStatus != http.StatusOK {
		return nil
	}
	var up rpi.Update
	if err := json.Unmarshal(b, &up); err != nil {
		t.Fatal(err)
	}
	return &up
}

// wireChurn renders a churn delta into the wire form.
func wireChurn(d rpi.Delta) WireDelta {
	var wd WireDelta
	for _, j := range d.Joins {
		wd.Joins = append(wd.Joins, WireJoin{
			IXP: j.IXP, Iface: j.Iface.String(), ASN: uint32(j.ASN), PortMbps: j.PortMbps,
		})
	}
	for _, l := range d.Leaves {
		wd.Leaves = append(wd.Leaves, WireKey{IXP: l.IXP, Iface: l.Iface.String()})
	}
	return wd
}

func TestApplyOverHTTP(t *testing.T) {
	eng, srv := testServer(t)
	d := rpi.ChurnDelta(eng.Inputs(), 0.005, 5)
	up := postApply(t, srv.URL, wireChurn(d), http.StatusOK)
	if up.Seq != 1 || up.Joined != len(d.Joins) || up.Left != len(d.Leaves) {
		t.Fatalf("update = %+v", up)
	}

	// An RTT refresh for a currently measured interface, no vp_id.
	idx := eng.Inputs().Ping.IfaceIndex()
	var iface string
	for ip := range idx {
		iface = ip.String()
		break
	}
	up = postApply(t, srv.URL, WireDelta{RTT: []WireRTT{{Iface: iface, RTTMinMs: 42.5}}}, http.StatusOK)
	if up.RTTRefreshed != 1 {
		t.Fatalf("update = %+v", up)
	}

	// Bad deltas: malformed address, poisoned RTT, unknown membership,
	// garbage body.
	postApply(t, srv.URL, WireDelta{Leaves: []WireKey{{IXP: "x", Iface: "not-an-ip"}}}, http.StatusBadRequest)
	postApply(t, srv.URL, WireDelta{RTT: []WireRTT{{Iface: iface, RTTMinMs: -3}}}, http.StatusBadRequest)
	postApply(t, srv.URL, WireDelta{RTT: []WireRTT{{Iface: iface}}}, http.StatusBadRequest)
	postApply(t, srv.URL, WireDelta{Leaves: []WireKey{{IXP: "no-such-ixp", Iface: "203.0.113.1"}}}, http.StatusUnprocessableEntity)
	resp, err := http.Post(srv.URL+"/v1/apply", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", resp.StatusCode)
	}
}

// TestConcurrentInferAndApply exercises the engine's locking under the
// race detector: readers hammer /v1/infer and /v1/report while applies
// churn memberships back and forth.
func TestConcurrentInferAndApply(t *testing.T) {
	eng, srv := testServer(t)
	fwd := rpi.ChurnDelta(eng.Inputs(), 0.005, 11)
	rev := rpi.InvertDelta(eng.Inputs(), fwd)

	var ixp string
	for k := range eng.Snapshot().Inferences {
		ixp = k.IXP
		break
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				url := srv.URL + "/v1/infer"
				if i%2 == r%2 {
					url = srv.URL + "/v1/report/" + ixp
				}
				resp, err := http.Get(url)
				if err != nil {
					errs <- err
					return
				}
				b, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("GET %s: %d", url, resp.StatusCode)
					return
				}
				if _, err := rpi.UnmarshalReport(b); err != nil {
					errs <- err
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			wd := wireChurn(fwd)
			if i%2 == 1 {
				wd = wireChurn(rev)
			}
			body, _ := json.Marshal(wd)
			resp, err := http.Post(srv.URL+"/v1/apply", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("apply %d: %d (%s)", i, resp.StatusCode, b)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if eng.Seq() != 6 {
		t.Fatalf("seq = %d, want 6", eng.Seq())
	}
}
